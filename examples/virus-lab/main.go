// Virus lab: the Section 3.B stress-test development workflow — evolve
// diagnostic viruses with the genetic algorithm against a specific
// machine specimen, compare the margins they reveal against real
// workloads and the manufacturer guardband, and persist the resulting
// EOP table the way the StressLog would.
package main

import (
	"fmt"
	"log"
	"os"

	"uniserver/internal/cpu"
	"uniserver/internal/rng"
	"uniserver/internal/stress"
	"uniserver/internal/vfr"
)

func crashOf(m *cpu.Machine, core int, b cpu.Benchmark) int {
	total := 0
	const sweeps = 5
	for i := 0; i < sweeps; i++ {
		total += cpu.WorstCrash(m.UndervoltSweep(core, b, 1)).CrashVoltageMV
	}
	return total / sweeps
}

func main() {
	log.SetFlags(0)
	spec := cpu.PartI5_4200U()
	machine := cpu.NewMachine(spec, 2024)
	core := machine.Chip.WorstCore()
	fmt.Printf("specimen: %s, characterizing worst core %d (nominal %s)\n\n",
		spec.Model, core, spec.Nominal)

	// Evolve one virus per objective.
	for _, obj := range []stress.Objective{stress.MaxVoltageNoise, stress.MaxCacheStress, stress.MaxPower} {
		res, err := stress.Evolve(stress.DefaultGAConfig(), obj, machine, core, rng.New(99))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-18s droop=%.2f cache=%.2f activity=%.2f (fitness %.1f, %d generations)\n",
			obj, res.Virus.DroopIntensity, res.Virus.CacheStress, res.Virus.Activity,
			res.Fitness, len(res.History))
	}

	// The margin story: guardband >> virus crash >= every real workload.
	voltVirus, err := stress.Evolve(stress.DefaultGAConfig(), stress.MaxVoltageNoise, machine, core, rng.New(99))
	if err != nil {
		log.Fatal(err)
	}
	virusCrash := crashOf(machine, core, voltVirus.Virus)
	fmt.Printf("\ncrash voltages on core %d:\n", core)
	fmt.Printf("  %-22s %4.0f mV (Table 1 guardbands applied)\n",
		"manufacturer rating", machine.Chip.GuardbandedVminMV(spec.Nominal.FreqMHz))
	fmt.Printf("  %-22s %4d mV  <- margins derive from this\n", "GA voltage virus", virusCrash)
	for _, b := range cpu.SPECSuite() {
		fmt.Printf("  %-22s %4d mV\n", b.Name, crashOf(machine, core, b))
	}

	// Publish the virus-derived margins as the StressLog would.
	table := vfr.NewEOPTable()
	for c := 0; c < spec.Cores; c++ {
		crash := crashOf(machine, c, voltVirus.Virus)
		table.Set(vfr.Margin{
			Component:  fmt.Sprintf("%s/core%d", spec.Model, c),
			Nominal:    spec.Nominal,
			CrashPoint: spec.Nominal.WithVoltage(crash),
			Safe:       spec.Nominal.WithVoltage(crash + cpu.SafeCushionMV),
			CushionMV:  cpu.SafeCushionMV,
		})
	}
	fmt.Printf("\npublished EOP table (JSON, as persisted by the StressLog):\n")
	if err := table.Save(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
