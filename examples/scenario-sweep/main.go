// Scenario sweep: compare fleet behaviour across operating scenarios
// — the baseline, a thermal season, mode churn and a droop attack —
// by fanning a scenario×seed campaign grid out in parallel and
// reading the merged comparative report.
//
// Every cell of the grid is an independent, fully deterministic fleet
// run; the campaign runner merges them in grid order, so this program
// prints the same table on every machine.
package main

import (
	"fmt"
	"log"
	"os"

	"uniserver/internal/scenario"
)

func main() {
	log.SetFlags(0)

	// 1. Pick scenarios from the bundled catalogue and scale them to
	//    a sweep-sized grid: 3 nodes, 24 windows each.
	names := []string{"baseline", "thermal-summer", "mode-churn", "droop-attack"}
	var scenarios []scenario.Scenario
	for _, name := range names {
		s, err := scenario.ByName(name)
		if err != nil {
			log.Fatal(err)
		}
		scenarios = append(scenarios, s.Scale(3, 24))
	}

	// 2. Run the scenario×seed grid. Each cell is one fleet.Run; the
	//    campaign fans cells across GOMAXPROCS goroutines.
	rep, err := scenario.RunCampaign(scenario.Campaign{
		Scenarios: scenarios,
		Seeds:     []uint64{1, 2, 3},
	})
	if err != nil {
		log.Fatal(err)
	}

	// 3. Compare: the per-scenario aggregates are the point — how
	//    does each operating condition move availability, energy and
	//    incident counts against the baseline?
	fmt.Printf("%-16s %7s %9s %9s %7s %6s %5s %5s\n",
		"SCENARIO", "AVAIL", "KWH", "SAVED_WH", "TEMP_C", "CRASH", "MIGR", "SLA")
	for _, sr := range rep.Scenarios {
		fmt.Printf("%-16s %7.4f %9.4f %9.2f %7.1f %6d %5d %5d\n",
			sr.Scenario, sr.MeanAvailability, sr.EnergyKWh, sr.EnergySavedWh,
			sr.MeanCPUTempC, sr.Crashes, sr.Migrations, sr.SLAViolations)
	}
	fmt.Printf("\ncampaign fingerprint sha256:%.16s...\n", rep.FingerprintSHA256)

	// 4. The full machine-readable report (every grid cell, per-run
	//    fingerprint hashes) serializes to JSON for downstream tools.
	if len(os.Args) > 1 && os.Args[1] == "-json" {
		if err := rep.WriteJSON(os.Stdout); err != nil {
			log.Fatal(err)
		}
	}
}
