// Quickstart: discover a node's extended operating points, deploy at
// the advised point, and run a monitored workload — the minimal
// end-to-end use of the UniServer API.
package main

import (
	"fmt"
	"log"

	"uniserver/internal/core"
	"uniserver/internal/dram"
	"uniserver/internal/vfr"
	"uniserver/internal/workload"
)

func main() {
	log.SetFlags(0)

	// 1. Build a node: CPU part + DRAM system + hypervisor, all wired
	//    to the monitoring daemons.
	opts := core.DefaultOptions()
	opts.Seed = 7
	opts.Mem = dram.Config{Channels: 2, DIMMsPerChannel: 1, DIMMBytes: 8 << 30, DeviceGb: 2, TempC: 45}
	eco, err := core.New(opts)
	if err != nil {
		log.Fatal(err)
	}

	// 2. Pre-deployment: stress campaigns reveal per-core voltage
	//    margins and the safe DRAM refresh; fault injection teaches
	//    the hypervisor which of its objects to protect.
	rep, err := eco.PreDeployment()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("characterized components:")
	for _, comp := range eco.Table().Components() {
		m, _ := eco.Table().Lookup(comp)
		fmt.Printf("  %-20s safe point %s\n", comp, m.Safe)
	}
	fmt.Printf("predictor trained to %.1f%% accuracy\n\n", rep.PredictorAcc*100)

	// 3. Deploy: enter high-performance mode under a 1% per-window
	//    risk budget and measure the recovered power.
	wl := workload.WebFrontend()
	point, err := eco.EnterMode(vfr.ModeHighPerformance, 0.01, wl)
	if err != nil {
		log.Fatal(err)
	}
	pw := eco.Power(wl.CPUActivity)
	fmt.Printf("deployed at %s: %.1f%% CPU power saved, %.1f%% refresh power saved\n",
		point, pw.SavingsPct, pw.RefreshSavingsPct)

	// 4. Run: the HealthLog records every window; the hypervisor
	//    masks whatever the margins let through.
	crashes := 0
	for i := 0; i < 60; i++ {
		if eco.RuntimeWindow(wl).Crashed {
			crashes++
		}
	}
	fmt.Printf("60 windows executed, %d crashes, %d vectors logged\n",
		crashes, eco.Health.Stats().Recorded)
}
