// Edge analytics: the Section 6.D scenario — a latency-sensitive IoT
// service placed at the Edge spends its network savings on a slower,
// lower-voltage operating point, then runs on an undervolted UniServer
// node under an SLA.
package main

import (
	"fmt"
	"log"

	"uniserver/internal/core"
	"uniserver/internal/dram"
	"uniserver/internal/edge"
	"uniserver/internal/vfr"
	"uniserver/internal/workload"
)

func main() {
	log.SetFlags(0)

	// 1. Placement analysis: where should the 200 ms IoT service run?
	svc := edge.PaperExample()
	cmp, err := edge.Compare(svc, edge.DefaultCloud(), edge.DefaultEdge())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("service %q: %v end-to-end budget, %v of work at peak frequency\n",
		svc.Name, svc.TargetLatency, svc.WorkAtPeak)
	fmt.Printf("  cloud: RTT %v -> must run at %.0f%% of peak frequency\n",
		cmp.Cloud.RTT, cmp.CloudFreqScale*100)
	fmt.Printf("  edge:  RTT %v -> can run at %.0f%% of peak frequency\n",
		cmp.Edge.RTT, cmp.EdgeFreqScale*100)
	fmt.Printf("  edge vs cloud: %.0f%% less power, %.0f%% less energy (paper: 75%%, 50%%)\n\n",
		(1-cmp.EdgePowerScale)*100, (1-cmp.EdgeEnergyScale)*100)

	// 2. Deploy the service on an edge micro-server in low-power mode.
	opts := core.DefaultOptions()
	opts.Seed = 11
	opts.Mem = dram.Config{Channels: 2, DIMMsPerChannel: 1, DIMMBytes: 8 << 30, DeviceGb: 2, TempC: 45}
	eco, err := core.New(opts)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := eco.PreDeployment(); err != nil {
		log.Fatal(err)
	}
	wl := workload.IoTEdgeAnalytics()
	point, err := eco.EnterMode(vfr.ModeLowPower, 0.005, wl)
	if err != nil {
		log.Fatal(err)
	}
	pw := eco.Power(wl.CPUActivity)
	fmt.Printf("edge node deployed at %s (low-power mode)\n", point)
	fmt.Printf("  CPU power %.2fW vs %.2fW nominal: %.1f%% saved\n",
		pw.CurrentW, pw.NominalW, pw.SavingsPct)

	// 3. Serve a day of 1-minute windows under the gold SLA risk
	//    budget; the HealthLog watches every window.
	crashes := 0
	const windows = 24 * 60
	for i := 0; i < windows; i++ {
		if eco.RuntimeWindow(wl).Crashed {
			crashes++
		}
	}
	fmt.Printf("  %d windows served, %d crashes (%.4f%% of windows)\n",
		windows, crashes, 100*float64(crashes)/windows)
	fmt.Println("edge deployment holds the latency budget at a fraction of the cloud's energy")
}
