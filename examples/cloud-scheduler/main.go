// Cloud scheduler: the Section 4.B resource-management scenario — an
// OpenStack-style control plane schedules a stream of VMs over a
// degrading fleet, comparing the UniServer reliability-aware policy
// (SLA filter + node reliability metric + proactive migration) against
// the legacy utilization-only baseline.
package main

import (
	"fmt"
	"log"
	"time"

	"uniserver/internal/openstack"
	"uniserver/internal/rng"
	"uniserver/internal/workload"
)

func run(name string, policy openstack.Policy, seed uint64) openstack.SimResult {
	nodes := openstack.Fleet(12, 16, 64<<30, rng.New(seed))
	mgr, err := openstack.NewManager(policy, nodes...)
	if err != nil {
		log.Fatal(err)
	}
	stream, err := workload.Stream(workload.StreamConfig{
		N:            80,
		MeanGap:      3 * time.Minute,
		MeanLifetime: 3 * time.Hour,
		MinLifetime:  10 * time.Minute,
	}, rng.New(seed+1))
	if err != nil {
		log.Fatal(err)
	}
	res, err := openstack.RunStream(mgr, stream, openstack.DefaultSimConfig(), rng.New(seed+2))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-10s scheduled %3d  rejected %2d  migrations %3d  SLA violations %2d  crashes %2d  %.1f kWh  availability %.4f\n",
		name, res.Scheduled, res.Rejected, res.Migrations, res.SLAViolations,
		res.Crashes, res.EnergyKWh, res.MeanAvailability)
	return res
}

func main() {
	log.SetFlags(0)
	fmt.Println("24h VM stream over a 12-node fleet with aging-driven degradation events")
	fmt.Println()
	var uniViol, legViol int
	for seed := uint64(0); seed < 3; seed++ {
		u := run("uniserver", openstack.UniServerPolicy(), 500+seed*10)
		l := run("legacy", openstack.LegacyPolicy(), 500+seed*10)
		uniViol += u.SLAViolations
		legViol += l.SLAViolations
		fmt.Println()
	}
	fmt.Printf("total SLA violations: uniserver %d vs legacy %d\n", uniViol, legViol)
	fmt.Println("the reliability metric + proactive migration keep user-facing VMs off failing nodes")
}
