// DRAM tuning: the Section 6.B experiment as a library user would run
// it — split memory into refresh domains, pin the kernel to a reliable
// domain, sweep the refresh interval, and quantify the safe margin and
// the refresh-power savings.
package main

import (
	"fmt"
	"log"
	"time"

	"uniserver/internal/dram"
	"uniserver/internal/power"
	"uniserver/internal/rng"
	"uniserver/internal/vfr"
)

func main() {
	log.SetFlags(0)

	// A commodity server: 4 channels of 8 GB DDR3, channel0 reliable.
	ms, err := dram.New(dram.DefaultConfig(), dram.DefaultRetentionModel(), rng.New(3))
	if err != nil {
		log.Fatal(err)
	}

	// Place critical kernel code/stack on the reliable domain and a
	// tenant database on the relaxed domains.
	alloc := dram.NewAllocator(ms)
	if _, err := alloc.Alloc("kernel", dram.CriticalityKernel, 1<<16); err != nil { // 256 MiB
		log.Fatal(err)
	}
	if _, err := alloc.Alloc("graphdb", dram.CriticalityNormal, 1<<20); err != nil { // 4 GiB
		log.Fatal(err)
	}

	// Sweep the refresh interval on the relaxed domains.
	intervals := []time.Duration{
		64 * time.Millisecond, 256 * time.Millisecond, time.Second,
		1500 * time.Millisecond, 2 * time.Second, 3 * time.Second,
		4 * time.Second, 5 * time.Second,
	}
	points, err := ms.CharacterizeRefresh(intervals, 3, rng.New(4))
	if err != nil {
		log.Fatal(err)
	}
	refresh := power.DRAMRefreshModel{DeviceGb: 2, TotalMemW: 10}
	fmt.Printf("%10s  %10s  %12s  %s\n", "refresh", "bit errors", "BER", "memory power saved")
	for _, p := range points {
		fmt.Printf("%10v  %10d  %12.2e  %.1f%%\n",
			p.Refresh, p.BitErrors, p.CumulativeBER, refresh.SavingsPct(p.Refresh))
	}

	safe, ok := dram.MaxSafeRefresh(points)
	if !ok {
		log.Fatal("no safe relaxed interval found")
	}
	// Publish with a 2x cushion, then deploy it.
	deploy := safe / 2
	if deploy < vfr.NominalRefresh {
		deploy = vfr.NominalRefresh
	}
	for _, dom := range ms.RelaxedDomains() {
		if err := dom.SetRefresh(deploy); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("\ndeployed refresh %v on relaxed domains (zero-error margin %v)\n", deploy, safe)

	// The payoff of placement: expected errors per refresh window.
	var kernelExp, dbExp float64
	for _, e := range alloc.Exposure() {
		switch e.Owner {
		case "kernel":
			kernelExp += e.ExpectedErrors
		case "graphdb":
			dbExp += e.ExpectedErrors
		}
	}
	fmt.Printf("expected errors/window: kernel %.2e (reliable domain), graphdb %.2e\n", kernelExp, dbExp)
	fmt.Printf("graphdb errors are within SECDED capability: BER %.2e <= 1e-6\n",
		points[len(points)-1].CumulativeBER)
}
