module uniserver

go 1.24
