// Command benchgraph renders the repo's run-over-run benchmark
// histories (BENCH_fleet.json, BENCH_campaign.json) as a markdown
// report: one table per benchmark plus an ASCII sparkline of the
// ns/op trajectory, so a perf trend is visible at a glance — in the
// terminal, in a CI artifact, or pasted into a PR. It is read-only:
// the benchmarks own the histories; this tool only draws them.
//
//	go run ./cmd/benchgraph                 # render both histories to stdout
//	go run ./cmd/benchgraph -o BENCH_HISTORY.md
//	go run ./cmd/benchgraph -merge artifact/BENCH_fleet.json
//
// -merge is the one write operation: it folds the records of a
// CI-produced bench artifact into the committed history, deduplicated
// by date+environment, so committing a runner's multi-core
// measurements (the records that arm the CI-class regression fences)
// is one command plus `git commit` instead of hand-edited JSON.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchgraph: ")
	fleetPath := flag.String("fleet", "BENCH_fleet.json", "fleet benchmark history (empty to skip)")
	campaignPath := flag.String("campaign", "BENCH_campaign.json", "campaign benchmark history (empty to skip)")
	outPath := flag.String("o", "", "write the markdown report here (default stdout)")
	mergePath := flag.String("merge", "", "merge the records of this downloaded bench artifact into -fleet, then exit")
	flag.Parse()

	if *mergePath != "" {
		if err := mergeFleet(*fleetPath, *mergePath); err != nil {
			log.Fatal(err)
		}
		return
	}

	var out io.Writer = os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			log.Fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
		}()
		out = f
	}
	fmt.Fprintf(out, "# Benchmark history\n")
	if *fleetPath != "" {
		if err := renderFleet(out, *fleetPath); err != nil {
			log.Fatal(err)
		}
	}
	if *campaignPath != "" {
		if err := renderCampaign(out, *campaignPath); err != nil {
			log.Fatal(err)
		}
	}
}

// fleetFile mirrors BENCH_fleet.json (the fields this tool draws).
type fleetFile struct {
	Benchmark string `json:"benchmark"`
	Nodes     int    `json:"nodes"`
	Windows   int    `json:"windows"`
	Records   []struct {
		Date        string `json:"date"`
		Env         string `json:"env"`
		GOMAXPROCS  int    `json:"gomaxprocs"`
		Fingerprint string `json:"fingerprint_sha256"`
		Variants    []struct {
			Workers    int     `json:"workers"`
			NsPerOp    int64   `json:"ns_per_op"`
			Speedup    float64 `json:"speedup_vs_1_worker"`
			Efficiency float64 `json:"efficiency"`
			PeakBytes  int64   `json:"peak_bytes"`
		} `json:"variants"`
	} `json:"records"`
	Restore []struct {
		Date            string  `json:"date"`
		Env             string  `json:"env"`
		GOMAXPROCS      int     `json:"gomaxprocs"`
		LegacyNsPerOp   int64   `json:"legacy_ns_per_op"`
		LegacyAllocs    float64 `json:"legacy_allocs_per_op"`
		TemplateNsPerOp int64   `json:"template_ns_per_op"`
		TemplateAllocs  float64 `json:"template_allocs_per_op"`
		Speedup         float64 `json:"speedup_vs_legacy"`
	} `json:"restore"`
}

// campaignFile mirrors BENCH_campaign.json.
type campaignFile struct {
	Benchmark string `json:"benchmark"`
	Scenarios int    `json:"scenarios"`
	Seeds     int    `json:"seeds"`
	Nodes     int    `json:"nodes"`
	Windows   int    `json:"windows"`
	BeforeNs  int64  `json:"before_ns_per_op"`
	Records   []struct {
		Date        string  `json:"date"`
		Env         string  `json:"env"`
		GOMAXPROCS  int     `json:"gomaxprocs"`
		NsPerOp     int64   `json:"ns_per_op"`
		Speedup     float64 `json:"speedup_vs_pre_optimization"`
		CacheHits   uint64  `json:"charact_cache_hits"`
		CacheMisses uint64  `json:"charact_cache_misses"`
	} `json:"records"`
}

// mergeHistoryCap mirrors the benchmarks' own history cap: merging
// never grows a record slice past what a benchmark run would keep.
const mergeHistoryCap = 100

// mergeFleet folds the "records" and "restore" histories of a
// downloaded bench artifact into the committed fleet history. It works
// on raw JSON values (json.Number, no struct round-trip) so fields
// this tool does not draw survive the rewrite, and deduplicates by
// date+env+gomaxprocs — re-merging the same artifact is a no-op.
func mergeFleet(committedPath, artifactPath string) error {
	var committed, artifact map[string]any
	if err := loadRaw(committedPath, &committed); err != nil {
		return err
	}
	if err := loadRaw(artifactPath, &artifact); err != nil {
		return err
	}
	added := 0
	for _, key := range []string{"records", "restore"} {
		have, _ := committed[key].([]any)
		seen := make(map[string]bool, len(have))
		for _, r := range have {
			seen[recordIdentity(r)] = true
		}
		incoming, _ := artifact[key].([]any)
		for _, r := range incoming {
			if id := recordIdentity(r); !seen[id] {
				have = append(have, r)
				seen[id] = true
				added++
			}
		}
		if len(have) > mergeHistoryCap {
			have = have[len(have)-mergeHistoryCap:]
		}
		if have != nil {
			committed[key] = have
		}
	}
	buf, err := json.MarshalIndent(committed, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(committedPath, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	log.Printf("merged %d new record(s) from %s into %s", added, artifactPath, committedPath)
	return nil
}

// recordIdentity keys a history record for merge deduplication. Dated
// records (every record the current benchmarks write) are identified
// by when and where they were measured; anything undated falls back to
// its full serialized form.
func recordIdentity(r any) string {
	if m, ok := r.(map[string]any); ok {
		if d, _ := m["date"].(string); d != "" {
			return fmt.Sprintf("%s|%v|%v", d, m["env"], m["gomaxprocs"])
		}
	}
	b, _ := json.Marshal(r)
	return string(b)
}

// loadRaw decodes path preserving numeric literals (json.Number), for
// the merge path that rewrites the file.
func loadRaw(path string, v any) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.UseNumber()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	return nil
}

func load(path string, v any) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if err := json.Unmarshal(data, v); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	return nil
}

func renderFleet(out io.Writer, path string) error {
	var f fleetFile
	if err := load(path, &f); err != nil {
		return err
	}
	fmt.Fprintf(out, "\n## %s (%d nodes × %d windows)\n\n", f.Benchmark, f.Nodes, f.Windows)
	fmt.Fprintf(out, "| run | date | env | gomaxprocs | ns/op @1w | best ns/op | best speedup | efficiency | scaling | peak heap |\n")
	fmt.Fprintf(out, "|----:|------|-----|-----------:|----------:|-----------:|-------------:|-----------:|---------|----------:|\n")
	var series, effSeries []float64
	for i, r := range f.Records {
		var oneW, best int64
		var bestSpeed float64
		// Efficiency (speedup per worker) and peak heap are reported at
		// the record's highest worker count: that is where the ROADMAP's
		// scaling stall lives and where memory pressure peaks. Old
		// records predate both fields; efficiency falls back to
		// speedup/workers, peak renders as a dash.
		var maxWorkers int
		var eff float64
		var peak int64
		// recordEffs is the record's efficiency at each worker count, in
		// variant order — the per-record scaling curve. Rendered on an
		// absolute 0..1 scale (1.0 = perfect scaling) so the curves are
		// comparable across rows: a record whose glyphs sag left-to-right
		// is losing efficiency as workers are added.
		var recordEffs []float64
		for _, v := range r.Variants {
			if v.Workers == 1 {
				oneW = v.NsPerOp
			}
			if best == 0 || v.NsPerOp < best {
				best = v.NsPerOp
			}
			if v.Speedup > bestSpeed {
				bestSpeed = v.Speedup
			}
			ve := v.Efficiency
			if ve == 0 && v.Workers > 0 {
				ve = v.Speedup / float64(v.Workers)
			}
			recordEffs = append(recordEffs, ve)
			if v.Workers > maxWorkers {
				maxWorkers = v.Workers
				eff = ve
				peak = v.PeakBytes
			}
		}
		fmt.Fprintf(out, "| %d | %s | %s | %d | %s | %s | %.2fx | %.2f @%dw | `%s` | %s |\n",
			i+1, orDash(r.Date), orDash(r.Env), r.GOMAXPROCS, ns(oneW), ns(best), bestSpeed,
			eff, maxWorkers, absSparkline(recordEffs, 0, 1), mib(peak))
		series = append(series, float64(oneW))
		effSeries = append(effSeries, eff)
	}
	fmt.Fprintf(out, "\nns/op @1 worker, run over run (lower is better):\n\n    %s\n", sparkline(series))
	fmt.Fprintf(out, "\nmax-worker parallel efficiency (speedup/worker), run over run on a 0..1 scale (higher is better):\n\n    %s\n",
		absSparkline(effSeries, 0, 1))
	if len(f.Restore) > 0 {
		renderRestore(out, f)
	}
	return nil
}

// renderRestore draws BenchmarkSnapshotRestore's history: the fixed
// per-node cost of materializing a cached characterization, legacy
// deep restore vs the compiled template stamp the fleet runs.
func renderRestore(out io.Writer, f fleetFile) {
	fmt.Fprintf(out, "\n## BenchmarkSnapshotRestore (per-node restore from a cached characterization)\n\n")
	fmt.Fprintf(out, "| run | date | env | gomaxprocs | legacy ns/op | legacy allocs/op | template ns/op | template allocs/op | speedup |\n")
	fmt.Fprintf(out, "|----:|------|-----|-----------:|-------------:|-----------------:|---------------:|-------------------:|--------:|\n")
	var series []float64
	for i, r := range f.Restore {
		fmt.Fprintf(out, "| %d | %s | %s | %d | %s | %.0f | %s | %.0f | %.2fx |\n",
			i+1, orDash(r.Date), orDash(r.Env), r.GOMAXPROCS,
			nsFine(r.LegacyNsPerOp), r.LegacyAllocs, nsFine(r.TemplateNsPerOp), r.TemplateAllocs, r.Speedup)
		series = append(series, float64(r.TemplateNsPerOp))
	}
	fmt.Fprintf(out, "\ntemplate ns/op, run over run (lower is better):\n\n    %s\n", sparkline(series))
}

// mib renders a byte count as MiB; zero (pre-field records) as a dash.
func mib(v int64) string {
	if v == 0 {
		return "—"
	}
	return fmt.Sprintf("%.1fMiB", float64(v)/(1<<20))
}

func renderCampaign(out io.Writer, path string) error {
	var f campaignFile
	if err := load(path, &f); err != nil {
		return err
	}
	fmt.Fprintf(out, "\n## %s (%d presets × %d seeds, %d nodes × %d windows)\n\n",
		f.Benchmark, f.Scenarios, f.Seeds, f.Nodes, f.Windows)
	fmt.Fprintf(out, "pre-optimization reference: %s ns/op\n\n", ns(f.BeforeNs))
	fmt.Fprintf(out, "| run | date | env | gomaxprocs | ns/op | speedup vs pre-opt | cache hits/misses |\n")
	fmt.Fprintf(out, "|----:|------|-----|-----------:|------:|-------------------:|------------------:|\n")
	var series []float64
	for i, r := range f.Records {
		fmt.Fprintf(out, "| %d | %s | %s | %d | %s | %.2fx | %d/%d |\n",
			i+1, orDash(r.Date), orDash(r.Env), r.GOMAXPROCS, ns(r.NsPerOp), r.Speedup, r.CacheHits, r.CacheMisses)
		series = append(series, float64(r.NsPerOp))
	}
	fmt.Fprintf(out, "\nns/op, run over run (lower is better):\n\n    %s\n", sparkline(series))
	return nil
}

// nsFine renders nanoseconds at two-decimal ms resolution, for
// operations (like a single restore) that complete in a few ms.
func nsFine(v int64) string {
	if v == 0 {
		return "—"
	}
	return fmt.Sprintf("%.2fms", float64(v)/1e6)
}

// ns renders nanoseconds human-readably (ms resolution).
func ns(v int64) string {
	if v == 0 {
		return "—"
	}
	return fmt.Sprintf("%.0fms", float64(v)/1e6)
}

func orDash(s string) string {
	if s == "" {
		return "—"
	}
	return s
}

// absSparkline draws the series on a fixed lo..hi scale (values
// clamped), so separately-rendered lines are directly comparable —
// used for efficiency, whose natural scale is 0..1.
func absSparkline(series []float64, lo, hi float64) string {
	if len(series) == 0 {
		return "(no records)"
	}
	glyphs := []rune("▁▂▃▄▅▆▇█")
	var b strings.Builder
	for _, v := range series {
		frac := (v - lo) / (hi - lo)
		if frac < 0 {
			frac = 0
		}
		if frac > 1 {
			frac = 1
		}
		b.WriteRune(glyphs[int(frac*float64(len(glyphs)-1))])
	}
	return b.String()
}

// sparkline draws the series with the classic eight block glyphs,
// scaled min→max; a flat series renders mid-height.
func sparkline(series []float64) string {
	if len(series) == 0 {
		return "(no records)"
	}
	glyphs := []rune("▁▂▃▄▅▆▇█")
	lo, hi := series[0], series[0]
	for _, v := range series {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	var b strings.Builder
	for _, v := range series {
		idx := len(glyphs) / 2
		if hi > lo {
			idx = int((v - lo) / (hi - lo) * float64(len(glyphs)-1))
		}
		b.WriteRune(glyphs[idx])
	}
	return b.String()
}
