// Command healthlogcat inspects a HealthLog JSON-lines system logfile:
// it validates every line, prints a summary (components, error counts,
// time range), and optionally filters the vectors of one component —
// the operator-facing half of the HealthLog's on-demand service.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"uniserver/internal/healthlog"
	"uniserver/internal/telemetry"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("healthlogcat: ")

	component := flag.String("component", "", "print only this component's vectors")
	errorsOnly := flag.Bool("errors-only", false, "print only vectors carrying error events")
	flag.Parse()

	if flag.NArg() != 1 {
		log.Fatal("usage: healthlogcat [-component NAME] [-errors-only] LOGFILE")
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()

	vectors, err := healthlog.ReadLog(f)
	if err != nil {
		log.Fatal(err)
	}
	s := healthlog.Summarize(vectors)
	fmt.Printf("%s: %d vectors, %d components, %s .. %s\n",
		flag.Arg(0), s.Vectors, s.Components,
		s.First.Format("2006-01-02T15:04:05"), s.Last.Format("2006-01-02T15:04:05"))
	fmt.Printf("errors: %d correctable, %d uncorrectable, %d crashes\n",
		s.Correctable, s.Uncorrectable, s.Crashes)

	if *component == "" && !*errorsOnly {
		return
	}
	for _, v := range vectors {
		if *component != "" && v.Component != *component {
			continue
		}
		if *errorsOnly && len(v.Errors) == 0 {
			continue
		}
		printVector(v)
	}
}

func printVector(v telemetry.InfoVector) {
	fmt.Printf("%s %-20s %s", v.Time.Format("15:04:05"), v.Component, v.Point)
	for _, e := range v.Errors {
		fmt.Printf("  [%s x%d %s]", e.Kind, e.Count, e.Component)
	}
	fmt.Println()
}
