// Command tcotool is the TCO estimation tool of innovation (vii):
// it reproduces Table 3's energy-efficiency and TCO projection and
// explores the design space across cloud and edge deployments,
// including the yield-driven chip-cost discount the paper anticipates.
package main

import (
	"flag"
	"fmt"
	"log"

	"uniserver/internal/tco"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tcotool: ")

	scaling := flag.Float64("scaling", 1.5, "EE gain from technology scaling / FinFET")
	sw := flag.Float64("sw", 4, "EE gain from ARM server software maturity")
	fog := flag.Float64("fog", 2, "EE gain from running at the Edge")
	margins := flag.Float64("margins", 3, "EE gain from extended operating points")
	yield := flag.Float64("yield-discount", 0.10, "chip-cost discount from higher yield (0..1)")
	flag.Parse()

	gains := tco.GainSources{Scaling: *scaling, SWMaturity: *sw, Fog: *fog, Margins: *margins}
	if err := gains.Validate(); err != nil {
		log.Fatal(err)
	}

	fmt.Println("== Table 3: energy efficiency and TCO improvement estimation ==")
	for _, dc := range []tco.DataCenter{tco.DefaultCloudDC(), tco.DefaultEdgeDC()} {
		p, err := tco.ProjectTable3(dc, gains)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s (%d servers, %.0fW avg, PUE %.2f, %.0fy lifetime)\n",
			dc.Name, dc.Servers, dc.ServerAvgPowerW, dc.PUE, dc.LifetimeYears)
		fmt.Printf("  TCO baseline:   $%.0f (energy share %.1f%%)\n", dc.TCOUSD(), dc.EnergyShare()*100)
		fmt.Printf("  %s\n", p)

		improved, err := dc.ApplyEnergyEfficiency(gains.OverallEE())
		if err != nil {
			log.Fatal(err)
		}
		withYield, err := improved.ApplyYieldDiscount(*yield)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  with %.0f%% yield discount on chip cost: TCO %.3fx\n",
			*yield*100, tco.Improvement(dc, withYield))
	}
	fmt.Println("\n== design-space exploration: TCO versus margins gain (cloud deployment) ==")
	sweep, err := tco.SweepMargins(tco.DefaultCloudDC(), gains,
		[]float64{1, 1.5, 2, 2.5, 3, 4, 6, 8})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(tco.RenderSweep(sweep))

	fmt.Println("\npaper Table 3: 1.5 x 4 x 2 x 3 = 36x overall EE, 1.15x TCO from energy alone,")
	fmt.Println("\"actual TCO improvement will be even more because of lower chip cost due to higher yield\"")
}
