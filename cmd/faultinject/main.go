// Command faultinject regenerates Figure 4: SDC injection into the
// 16,820 statically allocated hypervisor objects, with and without VM
// load, plus the selective-protection plan the campaign implies.
package main

import (
	"flag"
	"fmt"
	"log"

	"uniserver/internal/faultinject"
	"uniserver/internal/hypervisor"
	"uniserver/internal/rng"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("faultinject: ")

	seed := flag.Uint64("seed", 42, "simulation seed")
	runs := flag.Int("runs", faultinject.PaperRuns, "independent executions per object (paper: 5)")
	protect := flag.Bool("protect", true, "also evaluate the derived selective-protection plan")
	flag.Parse()

	om := hypervisor.NewObjectMap(hypervisor.DefaultProfiles(), rng.New(*seed))
	loaded, unloaded, err := faultinject.Figure4(om, *runs, rng.New(*seed))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== Figure 4: hypervisor fatal failures under SDC injection ==")
	fmt.Printf("%-10s  %-14s  %-14s\n", "category", "with workload", "no workload")
	for _, c := range hypervisor.Categories() {
		fmt.Printf("%-10s  %-14d  %-14d\n", c, loaded.Failures[c], unloaded.Failures[c])
	}
	fmt.Printf("\ntotal: %d loaded vs %d unloaded (%.1fx amplification; paper: ~10x)\n",
		loaded.Total, unloaded.Total, faultinject.LoadAmplification(loaded, unloaded))
	top := faultinject.SensitiveCategories(loaded)[:3]
	fmt.Printf("most sensitive: %v (paper: fs, kernel, net)\n", top)

	if *protect {
		plan := faultinject.PlanProtection(loaded, 0.15)
		covered := plan.Apply(om)
		after, err := faultinject.RunCampaign(om, true, *runs, rng.New(*seed+1))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nselective protection: %d objects covered (%.1f KiB checkpoints)\n",
			covered, float64(om.ProtectedBytes())/1024)
		fmt.Printf("fatal failures after protection: %d (%.1f%% reduction), %d corruptions restored\n",
			after.Total, 100*(1-float64(after.Total)/float64(loaded.Total)), after.Restored)
	}
}
