// Command characterize regenerates the hardware characterization of
// Section 6: Table 2 (CPU undervolting on the i5-4200U and i7-3970X)
// and the Section 6.B DRAM refresh-relaxation sweep.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"uniserver/internal/cpu"
	"uniserver/internal/dram"
	"uniserver/internal/power"
	"uniserver/internal/rng"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("characterize: ")

	seed := flag.Uint64("seed", 42, "simulation seed")
	runs := flag.Int("runs", 3, "consecutive runs per benchmark (paper: 3)")
	what := flag.String("what", "all", "what to characterize: cpu | dram | all")
	flag.Parse()

	if *what == "cpu" || *what == "all" {
		characterizeCPU(*seed, *runs)
	}
	if *what == "dram" || *what == "all" {
		characterizeDRAM(*seed)
	}
}

func characterizeCPU(seed uint64, runs int) {
	fmt.Println("== Table 2: undervolt characterization, 8 SPEC CPU2006 benchmarks ==")
	suite := cpu.SPECSuite()
	for _, spec := range []cpu.PartSpec{cpu.PartI5_4200U(), cpu.PartI7_3970X()} {
		fmt.Printf("\n%s (nominal %s, %d cores, %d runs/benchmark)\n",
			spec.Model, spec.Nominal, spec.Cores, runs)
		row := cpu.Characterize(spec, suite, runs, seed)
		fmt.Print(row)
	}
	fmt.Println("\npaper: i5 crash -10%/-11.2%, core-to-core 0%/2.7%, ECC 1..17 (~15mV onset);")
	fmt.Println("       i7 crash -8.4%/-15.4%, core-to-core 3.7%/8%, ECC not exposed")
}

func characterizeDRAM(seed uint64) {
	fmt.Println("\n== Section 6.B: DRAM refresh-rate relaxation (8GB DDR3 DIMMs) ==")
	cfg := dram.Config{Channels: 4, DIMMsPerChannel: 1, DIMMBytes: 8 << 30, DeviceGb: 2, TempC: 45}
	ms, err := dram.New(cfg, dram.DefaultRetentionModel(), rng.New(seed))
	if err != nil {
		log.Fatal(err)
	}
	intervals := []time.Duration{
		64 * time.Millisecond, 128 * time.Millisecond, 256 * time.Millisecond,
		512 * time.Millisecond, time.Second, 1500 * time.Millisecond,
		2 * time.Second, 3 * time.Second, 4 * time.Second, 5 * time.Second,
	}
	points, err := ms.CharacterizeRefresh(intervals, 3, rng.New(seed+1))
	if err != nil {
		log.Fatal(err)
	}
	refresh := power.DRAMRefreshModel{DeviceGb: cfg.DeviceGb, TotalMemW: 10}
	fmt.Printf("%10s  %10s  %12s  %12s  %s\n", "refresh", "bit errors", "BER", "power saved", "SECDED ok")
	for _, p := range points {
		fmt.Printf("%10v  %10d  %12.2e  %11.1f%%  %v\n",
			p.Refresh, p.BitErrors, p.CumulativeBER, refresh.SavingsPct(p.Refresh), p.SECDEDSafe)
	}
	if safe, ok := dram.MaxSafeRefresh(points); ok {
		fmt.Printf("\nlongest zero-error interval: %v (paper: relaxation to 1.5s error-free;\n", safe)
		fmt.Println("BER ~1e-9 at 5s, within commercial targets and SECDED's 1e-6 capability)")
	}
}
