package main

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"

	"uniserver/internal/scenario"
)

// testCampaignOpts is the small grid the CLI tests run: two presets
// scaled to 4 fast cells, sequential for determinism.
func testCampaignOpts(storeDir string) campaignOpts {
	return campaignOpts{
		spec:            "baseline,mode-churn",
		nodesOverride:   2,
		windowsOverride: 6,
		seed:            11,
		seedCount:       2,
		parallel:        1,
		shareCharact:    true,
		storeDir:        storeDir,
	}
}

// TestInterruptedCampaignEmitsResumableState is the regression test
// for the interrupt path: a canceled campaign must still print the
// partial fingerprint and the result store's state (the run used to
// silently lose both), and the store must then actually resume — the
// rerun serves completed cells without re-executing and lands on the
// uninterrupted fingerprint.
func TestInterruptedCampaignEmitsResumableState(t *testing.T) {
	dir := t.TempDir()
	opts := testCampaignOpts(dir)

	// Reference: the uninterrupted campaign, straight through the
	// scenario engine.
	camp, err := buildCampaign(opts)
	if err != nil {
		t.Fatalf("buildCampaign: %v", err)
	}
	ref, err := scenario.RunCampaign(camp)
	if err != nil {
		t.Fatalf("reference campaign: %v", err)
	}

	// Interrupt before the first cell: a pre-canceled context models
	// SIGINT landing at the earliest boundary. Every cell cancels; the
	// run must still report itself as resumable.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var buf bytes.Buffer
	err = runCampaignCLI(ctx, &buf, opts)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted campaign error = %v, want context.Canceled", err)
	}
	out := buf.String()
	for _, want := range []string{
		"INTERRUPTED: 0 of 4 cells complete",
		"partial campaign fingerprint sha256:",
		"result store " + dir,
		"resume: rerun the same command",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("interrupted output lacks %q:\n%s", want, out)
		}
	}

	// Rerun with a live context: the run completes, lands on the
	// reference fingerprint, and prints the stored run ID.
	var buf2 bytes.Buffer
	if err := runCampaignCLI(context.Background(), &buf2, opts); err != nil {
		t.Fatalf("resumed campaign: %v", err)
	}
	out2 := buf2.String()
	if !strings.Contains(out2, "campaign fingerprint sha256:"+ref.FingerprintSHA256) {
		t.Errorf("resumed campaign fingerprint diverged from the direct run:\n%s", out2)
	}
	if !strings.Contains(out2, "complete in store") {
		t.Errorf("completed run does not print its stored run ID:\n%s", out2)
	}

	// Third run on the same store: every cell served from the store
	// (4 hits, 0 executions), same fingerprint — completed cells never
	// re-execute.
	var buf3 bytes.Buffer
	if err := runCampaignCLI(context.Background(), &buf3, opts); err != nil {
		t.Fatalf("fully-cached campaign: %v", err)
	}
	out3 := buf3.String()
	if !strings.Contains(out3, "campaign fingerprint sha256:"+ref.FingerprintSHA256) {
		t.Errorf("cache-served campaign fingerprint diverged:\n%s", out3)
	}
	if !strings.Contains(out3, "4 served from store, 0 executed") {
		t.Errorf("cache-served campaign re-executed cells:\n%s", out3)
	}
}

// TestInterruptedCampaignWithoutStoreStillPrintsFingerprint: even with
// no store attached, interruption must emit the partial fingerprint
// and say the work is not persisted.
func TestInterruptedCampaignWithoutStoreStillPrintsFingerprint(t *testing.T) {
	opts := testCampaignOpts("")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var buf bytes.Buffer
	err := runCampaignCLI(ctx, &buf, opts)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted campaign error = %v, want context.Canceled", err)
	}
	out := buf.String()
	if !strings.Contains(out, "partial campaign fingerprint sha256:") {
		t.Errorf("interrupted output lacks the partial fingerprint:\n%s", out)
	}
	if !strings.Contains(out, "without -result-store") {
		t.Errorf("interrupted output does not warn that nothing persisted:\n%s", out)
	}
}

// TestDiffCLI drives the diff subcommand end to end over two stored
// runs with different seeds: the report renders, the JSON lands, and
// matching runs pass -fail-on-regression while self-identical runs
// report a match.
func TestDiffCLI(t *testing.T) {
	dir := t.TempDir()

	optsA := testCampaignOpts(dir)
	var outA bytes.Buffer
	if err := runCampaignCLI(context.Background(), &outA, optsA); err != nil {
		t.Fatalf("run A: %v", err)
	}
	optsB := testCampaignOpts(dir)
	optsB.seed = 31
	var outB bytes.Buffer
	if err := runCampaignCLI(context.Background(), &outB, optsB); err != nil {
		t.Fatalf("run B: %v", err)
	}
	idA, idB := storedRunID(t, outA.String()), storedRunID(t, outB.String())
	if idA == idB {
		t.Fatalf("different seeds landed on the same run ID")
	}

	jsonPath := dir + "/diff.json"
	var diffOut bytes.Buffer
	if err := runDiff([]string{"-store", dir, "-json", jsonPath, idA, idB}, &diffOut); err != nil {
		t.Fatalf("diff: %v", err)
	}
	if !strings.Contains(diffOut.String(), "campaign fingerprints MISMATCH") {
		t.Errorf("different-seed diff did not flag the fingerprint mismatch:\n%s", diffOut.String())
	}

	// Self-diff: identical runs match, and -fail-on-regression passes.
	var selfOut bytes.Buffer
	if err := runDiff([]string{"-store", dir, "-fail-on-regression", idA, idA}, &selfOut); err != nil {
		t.Fatalf("self-diff: %v", err)
	}
	if !strings.Contains(selfOut.String(), "campaign fingerprints match") {
		t.Errorf("self-diff did not report a match:\n%s", selfOut.String())
	}

	// Unknown run IDs are refused.
	if err := runDiff([]string{"-store", dir, "r0000000000000000", idB}, &bytes.Buffer{}); err == nil {
		t.Errorf("diff accepted an unknown run ID")
	}
}

// storedRunID extracts the run ID from runCampaignCLI's store line.
func storedRunID(t *testing.T, out string) string {
	t.Helper()
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "run r") && strings.Contains(line, "complete in store") {
			return strings.Fields(line)[1]
		}
	}
	t.Fatalf("no stored run ID in output:\n%s", out)
	return ""
}
