// Command uniserver runs the full cross-layer ecosystem of Figure 2.
// With -nodes 1 (the default) it narrates one simulated node:
// pre-deployment characterization (StressLog with GA viruses, fault
// injection with selective protection, Predictor training), then
// deployment at the advised extended operating point, then a monitored
// runtime with error masking. With -nodes N it drives the concurrent
// fleet engine: N nodes characterize and step in parallel across
// -workers goroutines, feeding per-epoch health into the
// reliability-aware cloud scheduler, with a deterministic aggregate
// summary (same seed, same summary, at any worker count).
//
// The scenario layer sits on top: -list-scenarios names the bundled
// presets, -scenario runs one of them (silicon-bin mixes, thermal
// seasons, bursty tenants, mode churn, droop attacks), and -campaign
// fans a scenario×seed grid out in parallel, printing the comparative
// per-scenario metrics and (with -report) a machine-readable JSON
// report. Scenario runs print a fingerprint hash: same preset, same
// seed — same hash, at any worker count.
//
// Two subcommands wrap the campaign layer in a persistent service:
// `uniserver serve` runs the HTTP campaign service (submissions stream
// NDJSON, every completed cell persists into a content-addressed
// result store, killed servers resume incomplete runs on restart), and
// `uniserver diff` compares two stored runs scenario by scenario. The
// flag-based campaign mode gains -result-store, which runs the same
// engine one-shot: interrupted campaigns leave a resumable store
// behind, and rerunning the command serves completed cells from it.
package main

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"syscall"
	"time"

	"uniserver/internal/campaignd"
	"uniserver/internal/core"
	"uniserver/internal/dram"
	"uniserver/internal/fleet"
	"uniserver/internal/resultstore"
	"uniserver/internal/scenario"
	"uniserver/internal/vfr"
	"uniserver/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("uniserver: ")
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "serve":
			if err := runServe(os.Args[2:]); err != nil {
				log.Fatal(err)
			}
			return
		case "diff":
			if err := runDiff(os.Args[2:], os.Stdout); err != nil {
				log.Fatal(err)
			}
			return
		}
	}
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	seed := flag.Uint64("seed", 1, "simulation seed (same seed, same outcomes)")
	mode := flag.String("mode", "high-performance", "operating mode: nominal | high-performance | low-power")
	risk := flag.Float64("risk", 0.01, "per-window failure-probability target")
	windows := flag.Int("windows", 120, "runtime observation windows to simulate")
	logfile := flag.String("healthlog", "", "write the HealthLog JSON-lines file here")
	closedLoop := flag.Bool("closed-loop", false,
		"run the supervised deployment loop (crash fallback, aging, auto re-characterization)")
	nodes := flag.Int("nodes", 1, "fleet size; >1 runs the concurrent multi-node engine")
	workers := flag.Int("workers", 0,
		"worker goroutines for the fleet engine (0 = GOMAXPROCS; campaigns parallelize across cells instead, so 0 = 1 worker per cell)")
	shards := flag.Int("shards", 0,
		"fleet/scenario runs: execute the node range in this many sequential shards (0 = the scenario's choice, else unsharded); never changes results, bounds coordinator memory for population-scale fleets")
	archetypes := flag.Bool("archetypes", false,
		"fleet mode: characterize once per silicon/DRAM bin and clone per node (O(bins) campaigns instead of O(nodes); deterministic, but a different experiment than per-node characterization)")
	compare := flag.Bool("compare", false,
		"fleet mode: also run a 1-worker reference pass, verify the summaries are identical, and report the measured speedup")
	listScenarios := flag.Bool("list-scenarios", false, "list the bundled scenario presets and exit")
	scenarioName := flag.String("scenario", "", "run a scenario preset (see -list-scenarios); -nodes/-windows rescale it")
	campaignSpec := flag.String("campaign", "",
		"run a scenario campaign: 'smoke', 'all', or comma-separated preset names; grid is scenarios x -seeds")
	seedCount := flag.Int("seeds", 1, "campaign: seeds per scenario (seed, seed+1, ...)")
	parallel := flag.Int("parallel", 0,
		"campaign: concurrent grid cells (0 = GOMAXPROCS); workers pull cells as they free up, results stay in grid order")
	shareCharact := flag.Bool("share-charact", true,
		"campaign: share pre-deployment characterization across cells via ecosystem snapshots (byte-identical results, several-fold faster; disable to measure the uncached cost)")
	charactDir := flag.String("charact-dir", "",
		"campaign: spill characterization snapshots to this versioned cache dir so separate runs (CLI, CI) share them across processes; refuses a dir written by a different snapshot-format version")
	reportPath := flag.String("report", "", "campaign: write the machine-readable JSON report to this file")
	resultStore := flag.String("result-store", "",
		"campaign: persist every completed cell into this content-addressed result store; interrupted runs resume from it (rerun the same command), identical cells are served without re-executing, and stored runs feed 'uniserver diff'")
	lifetimeSpec := flag.String("lifetime", "",
		"run a multi-epoch lifetime 'EPOCHSxGAPDAYS' (e.g. 4x90): each epoch simulates -windows windows, gaps fast-forward aging between them")
	gapDuty := flag.Float64("gap-duty", 0.6,
		"lifetime: mean silicon stress (activity) across fast-forward gaps, in [0,1]")
	recharactEvery := flag.Int("recharact-every", 0,
		"lifetime: scheduled re-characterization cadence in days (0 = the core default, ~75 days); campaigns run at epoch entries when due")
	driftMargin := flag.Float64("drift-margin", -1,
		"fleet lifetime: drift-gate scheduled re-characterizations — run one only when predicted margin drift since the last campaign exceeds this fraction of the advised headroom (0 = always run, i.e. the plain cadence; negative = off)")
	eccLoop := flag.Bool("ecc-loop", false,
		"fleet mode: closed-loop undervolting — each node steps its point below the advised one while correctable ECC stays quiet and backs off on onset")
	cpuProfile := flag.String("cpuprofile", "",
		"write a CPU profile to this file (pprof format); covers the whole run, any mode")
	memProfile := flag.String("memprofile", "",
		"write a heap profile to this file at exit (after a final GC), for peak-memory and allocation analysis")
	mutexProfile := flag.String("mutexprofile", "",
		"write a mutex-contention profile to this file at exit — the parallel-efficiency tool: it names the locks workers serialize on")
	flag.Parse()

	// Which flags did the user set explicitly? -nodes/-windows double
	// as scenario rescale overrides, but only when actually given.
	set := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })

	if *listScenarios {
		fmt.Printf("%-16s %6s %8s %5s  %s\n", "NAME", "NODES", "WINDOWS", "VMS", "DESCRIPTION")
		for _, s := range scenario.Presets() {
			vms := s.VMs
			if vms <= 0 {
				vms = 3 * s.Nodes
			}
			fmt.Printf("%-16s %6d %8d %5d  %s\n", s.Name, s.Nodes, s.Windows, vms, s.Description)
		}
		return nil
	}

	var m vfr.Mode
	switch *mode {
	case "nominal":
		m = vfr.ModeNominal
	case "high-performance":
		m = vfr.ModeHighPerformance
	case "low-power":
		m = vfr.ModeLowPower
	default:
		return fmt.Errorf("unknown mode %q", *mode)
	}
	// Reject meaningless flag combinations before touching the
	// filesystem: os.Create truncates, and a usage error must not cost
	// the user an existing health log.
	scenarioMode := *scenarioName != "" || *campaignSpec != ""
	if *scenarioName != "" && *campaignSpec != "" {
		return fmt.Errorf("-scenario and -campaign are mutually exclusive")
	}
	if scenarioMode {
		if *closedLoop || *compare {
			return fmt.Errorf("-closed-loop and -compare do not apply to scenario runs")
		}
		if set["mode"] || set["risk"] {
			return fmt.Errorf("scenarios declare their own mode and risk target; -mode/-risk do not apply")
		}
		if set["lifetime"] || set["recharact-every"] || set["gap-duty"] {
			return fmt.Errorf("scenarios declare their own lifetime (see the aging-year and recharact-* presets); -lifetime/-recharact-every/-gap-duty do not apply")
		}
		if set["archetypes"] {
			return fmt.Errorf("scenarios declare their own characterization strategy (see the fleet-100k preset); -archetypes does not apply")
		}
		if set["drift-margin"] || set["ecc-loop"] {
			return fmt.Errorf("scenarios declare their own adaptive policies (see the drift-cadence and ecc-closedloop presets); -drift-margin/-ecc-loop do not apply")
		}
		if set["shards"] && *campaignSpec != "" {
			return fmt.Errorf("-shards does not apply to campaigns; each scenario declares its own shard count")
		}
	} else {
		if *nodes > 1 && *closedLoop {
			return fmt.Errorf("-closed-loop only applies to -nodes 1; the fleet engine always runs the supervised loop")
		}
		if *nodes <= 1 && *compare {
			return fmt.Errorf("-compare only applies to fleet mode (-nodes > 1)")
		}
		if *nodes <= 1 && *workers != 0 {
			return fmt.Errorf("-workers only applies to fleet mode (-nodes > 1); the single-node loop is sequential")
		}
		if *nodes <= 1 && (set["shards"] || set["archetypes"]) {
			return fmt.Errorf("-shards and -archetypes only apply to fleet mode (-nodes > 1)")
		}
		if *nodes <= 1 && (set["drift-margin"] || set["ecc-loop"]) {
			return fmt.Errorf("-drift-margin and -ecc-loop only apply to fleet mode (-nodes > 1)")
		}
		if set["drift-margin"] && *lifetimeSpec == "" {
			return fmt.Errorf("-drift-margin needs -lifetime: the cadence it gates only ticks across lifetime gaps")
		}
	}
	if *campaignSpec != "" && *logfile != "" {
		return fmt.Errorf("-healthlog does not apply to campaigns (many runs, one file)")
	}
	if *reportPath != "" && *campaignSpec == "" {
		return fmt.Errorf("-report only applies to -campaign")
	}
	if set["seeds"] && *campaignSpec == "" {
		return fmt.Errorf("-seeds only applies to -campaign; use -seed for a single run")
	}
	if set["parallel"] && *campaignSpec == "" {
		return fmt.Errorf("-parallel only applies to -campaign; use -workers for a single fleet run")
	}
	if set["share-charact"] && *campaignSpec == "" {
		return fmt.Errorf("-share-charact only applies to -campaign; single runs have nothing to share")
	}
	if *charactDir != "" && *campaignSpec == "" {
		return fmt.Errorf("-charact-dir only applies to -campaign")
	}
	if *charactDir != "" && !*shareCharact {
		return fmt.Errorf("-charact-dir needs -share-charact=true (the dir spills the shared snapshot cache)")
	}
	if *resultStore != "" && *campaignSpec == "" {
		return fmt.Errorf("-result-store only applies to -campaign")
	}
	if *resultStore != "" && *charactDir != "" {
		return fmt.Errorf("-result-store keeps characterization snapshots inside the store; -charact-dir does not apply")
	}
	if *resultStore != "" && !*shareCharact {
		return fmt.Errorf("-result-store needs -share-charact=true (resume shares snapshots through the store)")
	}
	if (set["recharact-every"] || set["gap-duty"]) && *lifetimeSpec == "" {
		return fmt.Errorf("-recharact-every and -gap-duty only apply with -lifetime")
	}
	var plan *core.LifetimePlan
	if *lifetimeSpec != "" {
		p, err := parseLifetime(*lifetimeSpec, *windows, *gapDuty, *recharactEvery)
		if err != nil {
			return err
		}
		plan = &p
	}

	// Profiling hooks: armed before any simulation work so the CPU
	// profile covers characterization through replay. The deferred stop
	// runs on every exit path; profile-write failures warn rather than
	// change the run's exit code — the simulation result is already
	// correct.
	stopProfiles, err := startProfiles(*cpuProfile, *memProfile, *mutexProfile)
	if err != nil {
		return err
	}
	defer func() {
		if err := stopProfiles(); err != nil {
			log.Printf("WARNING: %v", err)
		}
	}()

	// The health log must be closed (flushing the JSON lines) on every
	// exit path, including errors — hence the run()/error shape instead
	// of log.Fatal, which would skip deferred closes.
	var healthOut *os.File
	if *logfile != "" {
		f, err := os.Create(*logfile)
		if err != nil {
			return fmt.Errorf("healthlog file: %v", err)
		}
		healthOut = f
		defer func() {
			if healthOut != nil {
				healthOut.Close()
			}
		}()
	}
	closeHealthLog := func() error {
		if healthOut == nil {
			return nil
		}
		err := healthOut.Close()
		healthOut = nil
		if err != nil {
			return fmt.Errorf("closing healthlog: %w", err)
		}
		return nil
	}

	// -nodes/-windows rescale scenarios only when given explicitly
	// (their defaults mean "preset size" here, not 1 node).
	nodesOverride, windowsOverride := 0, 0
	if set["nodes"] {
		nodesOverride = *nodes
	}
	if set["windows"] {
		windowsOverride = *windows
	}

	switch {
	case *scenarioName != "":
		if err := runScenario(*scenarioName, nodesOverride, windowsOverride, *seed, *workers, *shards, healthOut); err != nil {
			return err
		}
	case *campaignSpec != "":
		// SIGINT/SIGTERM cancel the campaign at cell boundaries instead
		// of killing the process mid-print: the partial fingerprint and
		// store state are emitted, so interrupted runs are resumable.
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		err := runCampaignCLI(ctx, os.Stdout, campaignOpts{
			spec:            *campaignSpec,
			nodesOverride:   nodesOverride,
			windowsOverride: windowsOverride,
			seed:            *seed,
			seedCount:       *seedCount,
			workers:         *workers,
			parallel:        *parallel,
			shareCharact:    *shareCharact,
			charactDir:      *charactDir,
			reportPath:      *reportPath,
			storeDir:        *resultStore,
		})
		if err != nil {
			return err
		}
	case *nodes > 1:
		if err := runFleet(*nodes, *workers, *shards, *seed, m, *risk, *windows, *compare, *archetypes, *driftMargin, *eccLoop, plan, healthOut); err != nil {
			return err
		}
	default:
		if err := runSingleNode(*seed, m, *risk, *windows, *closedLoop, plan, healthOut); err != nil {
			return err
		}
	}
	return closeHealthLog()
}

// parseLifetime turns the -lifetime 'EPOCHSxGAPDAYS' spec plus the
// cadence flags into a core plan: uniform epochs of `windows` windows
// each, identical gaps.
// startProfiles arms the requested pprof outputs and returns the
// teardown that writes and closes them. CPU profiling streams from
// start; the heap profile snapshots at stop (after a forced GC, so it
// reflects live objects, not garbage); mutex profiling samples lock
// contention from start and dumps at stop. An empty path disables that
// profile. The returned stop is safe to call exactly once.
func startProfiles(cpuPath, memPath, mutexPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("cpuprofile: %v", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("cpuprofile: %v", err)
		}
	}
	if mutexPath != "" {
		// Sample every contention event: simulator runs hold locks rarely
		// enough that full sampling is affordable, and an efficiency
		// investigation wants the complete picture.
		runtime.SetMutexProfileFraction(1)
	}
	return func() error {
		var errs []error
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				errs = append(errs, fmt.Errorf("cpuprofile: %v", err))
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				errs = append(errs, fmt.Errorf("memprofile: %v", err))
			} else {
				runtime.GC()
				if err := pprof.WriteHeapProfile(f); err != nil {
					errs = append(errs, fmt.Errorf("memprofile: %v", err))
				}
				if err := f.Close(); err != nil {
					errs = append(errs, fmt.Errorf("memprofile: %v", err))
				}
			}
		}
		if mutexPath != "" {
			f, err := os.Create(mutexPath)
			if err != nil {
				errs = append(errs, fmt.Errorf("mutexprofile: %v", err))
			} else {
				if err := pprof.Lookup("mutex").WriteTo(f, 0); err != nil {
					errs = append(errs, fmt.Errorf("mutexprofile: %v", err))
				}
				if err := f.Close(); err != nil {
					errs = append(errs, fmt.Errorf("mutexprofile: %v", err))
				}
			}
			runtime.SetMutexProfileFraction(0)
		}
		return errors.Join(errs...)
	}, nil
}

func parseLifetime(spec string, windows int, duty float64, recharactDays int) (core.LifetimePlan, error) {
	parts := strings.SplitN(spec, "x", 2)
	if len(parts) != 2 {
		return core.LifetimePlan{}, fmt.Errorf("-lifetime wants EPOCHSxGAPDAYS (e.g. 4x90), got %q", spec)
	}
	epochs, err1 := strconv.Atoi(parts[0])
	gapDays, err2 := strconv.Atoi(parts[1])
	if err1 != nil || err2 != nil || epochs < 2 {
		return core.LifetimePlan{}, fmt.Errorf("-lifetime wants EPOCHSxGAPDAYS with at least 2 epochs, got %q", spec)
	}
	plan := core.UniformPlan(epochs, windows, gapDays, duty)
	plan.RecharactEvery = time.Duration(recharactDays) * 24 * time.Hour
	if err := plan.Validate(); err != nil {
		return core.LifetimePlan{}, err
	}
	return plan, nil
}

// printTrajectory renders a node's per-epoch margin trajectory.
func printTrajectory(epochs []core.EpochSummary, finalAge float64) {
	for _, ep := range epochs {
		gap := "deployment"
		if ep.GapDays > 0 {
			gap = fmt.Sprintf("+%d days", ep.GapDays)
		}
		fmt.Printf("    epoch %d (%-10s): age drift %5.1f mV, safe point %d mV, %d windows, %d re-characterizations\n",
			ep.Epoch, gap, ep.AgeShiftMV, ep.SafeVoltageMV, ep.Windows, ep.Recharacterized)
	}
	fmt.Printf("    end of life: +%.1f mV accumulated critical-voltage drift\n", finalAge)
}

// maxPerNodePrint bounds the per-node detail a run retains and
// prints: above it the engine streams per-node summaries through the
// OnNode callback instead of holding O(nodes) reports, so
// population-scale runs stay in bounded memory. The cut depends only
// on the node count, so the printed fingerprint stays deterministic —
// but a streamed run's fingerprint carries aggregate lines only and is
// not comparable against a small retained run's.
const maxPerNodePrint = 64

// runScenario runs one preset (optionally rescaled) and prints its
// summary plus the determinism fingerprint hash.
func runScenario(name string, nodesOverride, windowsOverride int, seed uint64, workers, shards int, healthOut *os.File) error {
	s, err := scenario.ByName(name)
	if err != nil {
		return err
	}
	if nodesOverride > 0 || windowsOverride > 0 {
		s = s.Scale(nodesOverride, windowsOverride)
	}
	if shards > 0 {
		s.Shards = shards
	}
	cfg, err := s.FleetConfig(seed)
	if err != nil {
		return err
	}
	cfg.Workers = workers
	if healthOut != nil {
		cfg.HealthLogOut = healthOut
	}
	var cache *fleet.CharactCache
	if s.Archetypes {
		cache = fleet.NewCharactCache()
		cfg.Charact = cache
	}
	streamed := 0
	if s.Nodes > maxPerNodePrint {
		cfg.OnNode = func(fleet.NodeSummary) { streamed++ }
	}
	fmt.Printf("== scenario %s: %s ==\n", s.Name, s.Description)
	fmt.Printf("   %d nodes, %d windows, seed %d, %d workers (GOMAXPROCS %d), %d shards\n",
		s.Nodes, s.Windows, seed, fleet.EffectiveWorkers(workers, s.Nodes), runtime.GOMAXPROCS(0),
		fleet.EffectiveShards(s.Shards, s.Nodes))
	var sum fleet.Summary
	var runErr error
	peak := fleet.HeapWatermark(func() { sum, runErr = fleet.Run(cfg) })
	if runErr != nil {
		return runErr
	}
	fmt.Printf("  windows at EOP:           %d of %d node-windows\n", sum.WindowsAtEOP, sum.Nodes*sum.Windows)
	fmt.Printf("  node crashes (recovered): %d (%d re-characterizations)\n", sum.Crashes, sum.Recharacterized)
	fmt.Printf("  correctable masked:       %d\n", sum.CorrectableMasked)
	fmt.Printf("  node energy saved:        %.2f Wh\n", sum.EnergySavedWh)
	fmt.Printf("  VMs scheduled/rejected:   %d / %d\n", sum.Scheduled, sum.Rejected)
	fmt.Printf("  proactive migrations:     %d\n", sum.Migrations)
	fmt.Printf("  SLA violations:           %d (%d user-facing)\n", sum.SLAViolations, sum.UserFacingViolations)
	fmt.Printf("  fleet energy:             %.3f kWh, mean availability %.4f\n", sum.EnergyKWh, sum.MeanAvailability)
	fmt.Printf("  wall-clock:               %v at %d workers, %d shards\n",
		sum.WallClock.Round(time.Millisecond), sum.Workers, sum.Shards)
	fmt.Printf("  peak heap:                %.1f MiB\n", float64(peak)/(1<<20))
	if cache != nil {
		st := cache.Stats()
		fmt.Printf("  archetype bins:           %d characterized, %d templates compiled, %d nodes cloned\n",
			st.Misses, st.Compiled, st.Hits)
	}
	if streamed > 0 {
		fmt.Printf("  per-node summaries:       %d streamed, none retained (fleet > %d nodes)\n",
			streamed, maxPerNodePrint)
	}
	for _, n := range sum.PerNode {
		fmt.Printf("    %-14s %-9s crashes %2d  eop %3d/%d  saved %7.2f Wh  safe %d mV\n",
			n.Name, n.Model, n.Crashes, n.WindowsAtEOP, sum.Windows, n.EnergySavedWh, n.FinalSafeVoltageMV)
	}
	if len(sum.PerNode) > 0 && len(sum.PerNode[0].Epochs) > 0 {
		fmt.Printf("\n  margin trajectory (%s; %d re-characterizations fleet-wide):\n",
			sum.PerNode[0].Name, sum.Recharacterized)
		printTrajectory(sum.PerNode[0].Epochs, sum.PerNode[0].FinalAgeShiftMV)
	}
	fp := sha256.Sum256([]byte(sum.Fingerprint()))
	fmt.Printf("\nfingerprint sha256:%s\n", hex.EncodeToString(fp[:]))
	fmt.Println("(same preset + same seed => same fingerprint, at any -workers/-shards)")
	return nil
}

// campaignOpts bundles the -campaign flag set for runCampaignCLI.
type campaignOpts struct {
	spec                           string
	nodesOverride, windowsOverride int
	seed                           uint64
	seedCount                      int
	workers, parallel              int
	shareCharact                   bool
	charactDir, reportPath         string
	// storeDir, when set, routes the run through the campaignd engine
	// against a persistent result store: cells persist as they finish,
	// interruption leaves a resumable manifest, identical cells are
	// served from the store.
	storeDir string
}

// buildCampaign assembles the requested scenario×seed grid.
func buildCampaign(o campaignOpts) (scenario.Campaign, error) {
	if o.seedCount <= 0 {
		return scenario.Campaign{}, fmt.Errorf("-seeds must be positive")
	}
	var camp scenario.Campaign
	if o.spec == "smoke" {
		camp = scenario.SmokeCampaign(o.nodesOverride)
		if o.windowsOverride > 0 {
			for i, s := range camp.Scenarios {
				camp.Scenarios[i] = s.Scale(0, o.windowsOverride)
			}
		}
	} else {
		names := scenario.Names()
		if o.spec != "all" {
			names = strings.Split(o.spec, ",")
		}
		for _, name := range names {
			s, err := scenario.ByName(strings.TrimSpace(name))
			if err != nil {
				return scenario.Campaign{}, err
			}
			if o.nodesOverride > 0 || o.windowsOverride > 0 {
				s = s.Scale(o.nodesOverride, o.windowsOverride)
			}
			camp.Scenarios = append(camp.Scenarios, s)
		}
	}
	camp.Seeds = nil // -seed/-seeds own the grid's seed axis, even for smoke
	for i := 0; i < o.seedCount; i++ {
		camp.Seeds = append(camp.Seeds, o.seed+uint64(i))
	}
	camp.FleetWorkers = o.workers
	camp.Parallel = o.parallel
	camp.DisableCharactShare = !o.shareCharact
	camp.CharactDir = o.charactDir
	return camp, nil
}

// runCampaignCLI runs the campaign and prints the comparative table.
// Cancellation (SIGINT/SIGTERM via ctx) lands at cell boundaries: the
// partial table, the partial campaign fingerprint, and — with a store
// attached — the store's state are emitted before the error returns,
// so an interrupted run is a resumable artifact, not a lost one.
func runCampaignCLI(ctx context.Context, out io.Writer, o campaignOpts) error {
	camp, err := buildCampaign(o)
	if err != nil {
		return err
	}
	camp.Context = ctx

	fmt.Fprintf(out, "== campaign: %d scenarios x %d seeds (%d cells, %d-way parallel, charact sharing %s) ==\n",
		len(camp.Scenarios), len(camp.Seeds), len(camp.Scenarios)*len(camp.Seeds), camp.EffectiveParallel(),
		map[bool]string{true: "on", false: "off"}[o.shareCharact])
	start := time.Now()

	var rep scenario.Report
	var st *resultstore.Store
	var runID string
	if o.storeDir != "" {
		st, err = resultstore.Open(o.storeDir)
		if err != nil {
			return err
		}
		srv := campaignd.New(campaignd.Options{Store: st, Pool: camp.EffectiveParallel(), FleetWorkers: o.workers})
		defer srv.Close()
		if ctx.Err() != nil {
			// Already canceled before launch (or a signal raced us):
			// shut the engine down synchronously so every cell lands
			// canceled instead of racing the watcher goroutine.
			srv.Shutdown()
		}
		watch := make(chan struct{})
		go func() {
			select {
			case <-ctx.Done():
				srv.Shutdown()
			case <-watch:
			}
		}()
		defer close(watch)
		runID, rep, err = srv.Submit(camp.Scenarios, camp.Seeds, o.workers, o.parallel, nil)
	} else {
		rep, err = scenario.RunCampaign(camp)
	}
	interrupted := errors.Is(err, context.Canceled)
	if err != nil && !interrupted {
		return err
	}

	fmt.Fprintf(out, "%-16s %5s %7s %9s %8s %7s %6s %5s %6s %5s %6s %10s  %s\n",
		"SCENARIO", "RUNS", "AVAIL", "KWH", "SAVED_WH", "TEMP_C", "CRASH", "MIGR", "SLA", "RECH", "AGE_MV", "SCHED/REJ", "FINGERPRINT")
	for _, sr := range rep.Scenarios {
		fmt.Fprintf(out, "%-16s %5d %7.4f %9.3f %8.2f %7.1f %6d %5d %6d %5d %6.1f %6d/%-3d  %.12s\n",
			sr.Scenario, sr.Runs, sr.MeanAvailability, sr.EnergyKWh, sr.EnergySavedWh,
			sr.MeanCPUTempC, sr.Crashes, sr.Migrations, sr.SLAViolations, sr.Recharacterized,
			sr.MeanFinalAgeShiftMV, sr.Scheduled, sr.Rejected, sr.FingerprintSHA256)
	}
	if interrupted {
		total := len(camp.Scenarios) * len(camp.Seeds)
		fmt.Fprintf(out, "\nINTERRUPTED: %d of %d cells complete (%d canceled at cell boundaries; completed cells are whole)\n",
			total-rep.CanceledCells, total, rep.CanceledCells)
		fmt.Fprintf(out, "partial campaign fingerprint sha256:%s\n", rep.FingerprintSHA256)
	} else {
		fmt.Fprintf(out, "\ncampaign fingerprint sha256:%s  (%v wall-clock)\n",
			rep.FingerprintSHA256, time.Since(start).Round(time.Millisecond))
	}
	if o.shareCharact {
		hits, misses := rep.CharactCacheHits, rep.CharactCacheMisses
		reuse := 1.0
		if work := misses + rep.CharactDiskHits; work > 0 {
			reuse = float64(hits+work) / float64(work)
		}
		fmt.Fprintf(out, "snapshot cache: %d hits / %d misses across %d-way parallel cells (%.1fx characterization reuse)\n",
			hits, misses, rep.EffectiveParallel, reuse)
		if rep.CharactCompiled > 0 {
			fmt.Fprintf(out, "snapshot cache: %d restore templates compiled; every hit stamped from a template instead of deep-restoring\n",
				rep.CharactCompiled)
		}
		if rep.CharactCoalesced > 0 {
			fmt.Fprintf(out, "snapshot cache: %d concurrent misses coalesced onto in-flight characterizations\n",
				rep.CharactCoalesced)
		}
		if o.charactDir != "" {
			fmt.Fprintf(out, "snapshot cache dir %s: %d entries served from disk (characterizations shared across processes)\n",
				o.charactDir, rep.CharactDiskHits)
			if rep.CharactDiskErr != "" {
				fmt.Fprintf(out, "WARNING: snapshot cache dir is not accumulating: %s\n", rep.CharactDiskErr)
			}
		}
	} else {
		fmt.Fprintf(out, "snapshot cache: disabled (-share-charact=false); every cell characterized its own nodes\n")
	}
	if st != nil {
		stats := st.Stats()
		cells, cerr := st.CellCount()
		if cerr != nil {
			return cerr
		}
		fmt.Fprintf(out, "result store %s: %d cells on disk (this run: %d served from store, %d executed, %d quarantined)\n",
			o.storeDir, cells, stats.Hits, stats.Puts, stats.Quarantined)
		if interrupted {
			fmt.Fprintf(out, "resume: rerun the same command; run %s stays 'running' in the store and completed cells will not re-execute\n", runID)
		} else {
			fmt.Fprintf(out, "run %s complete in store (compare stored runs: uniserver diff -store %s RUN_A RUN_B)\n", runID, o.storeDir)
		}
	} else if interrupted {
		fmt.Fprintf(out, "note: without -result-store the completed cells are not persisted; rerunning restarts from scratch\n")
	}
	if interrupted {
		return err
	}
	if o.reportPath != "" {
		f, err := os.Create(o.reportPath)
		if err != nil {
			return fmt.Errorf("report file: %w", err)
		}
		if err := rep.WriteJSON(f); err != nil {
			f.Close()
			return fmt.Errorf("writing report: %w", err)
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("closing report: %w", err)
		}
		fmt.Fprintf(out, "report written to %s\n", o.reportPath)
	}
	return nil
}

// runServe starts the HTTP campaign service: a campaignd.Server over a
// persistent result store, resuming any runs a previous life left
// incomplete. SIGINT/SIGTERM stop it cleanly at cell boundaries —
// interrupted runs resume on the next start.
func runServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:8077", "listen address")
	storeDir := fs.String("store", "", "persistent result store directory (required; created and version-stamped on first use)")
	pool := fs.Int("pool", 0, "concurrent campaign cells across all submissions (0 = GOMAXPROCS)")
	fleetWorkers := fs.Int("workers", 0, "default per-cell fleet worker goroutines for submissions that set none (0 = 1)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *storeDir == "" {
		return fmt.Errorf("serve: -store is required (the persistent result store)")
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("serve: unexpected arguments %v", fs.Args())
	}
	st, err := resultstore.Open(*storeDir)
	if err != nil {
		return err
	}
	srv := campaignd.New(campaignd.Options{Store: st, Pool: *pool, FleetWorkers: *fleetWorkers})
	resumed, err := srv.ResumeIncomplete()
	if err != nil {
		return err
	}
	if resumed > 0 {
		fmt.Printf("resuming %d incomplete run(s) from %s (completed cells served from the store)\n", resumed, *storeDir)
	}

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		// Stop the engine first: campaigns halt at cell boundaries and
		// their NDJSON streams finish, then the listener drains.
		srv.Shutdown()
		sctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		httpSrv.Shutdown(sctx)
	}()
	fmt.Printf("uniserver campaign service listening on %s (store %s, pool %d)\n", *addr, *storeDir, *pool)
	if err := httpSrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	srv.Close()
	fmt.Println("serve: shut down; incomplete runs resume on next start")
	return nil
}

// runDiff compares two stored runs and prints the per-scenario report:
// availability and energy deltas, fingerprint match/mismatch, and
// regression flags.
func runDiff(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("diff", flag.ContinueOnError)
	storeDir := fs.String("store", "", "result store directory holding both runs (required)")
	jsonPath := fs.String("json", "", "also write the machine-readable diff report to this file")
	failOnRegression := fs.Bool("fail-on-regression", false, "exit non-zero when run B regresses run A (availability, energy, new failures, missing scenarios)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *storeDir == "" {
		return fmt.Errorf("diff: -store is required")
	}
	if fs.NArg() != 2 {
		return fmt.Errorf("diff wants two run IDs: uniserver diff -store DIR RUN_A RUN_B (IDs are printed by -campaign -result-store and listed at /api/v1/runs)")
	}
	st, err := resultstore.Open(*storeDir)
	if err != nil {
		return err
	}
	a, ok := st.GetRun(fs.Arg(0))
	if !ok {
		return fmt.Errorf("diff: no run %q in %s", fs.Arg(0), *storeDir)
	}
	b, ok := st.GetRun(fs.Arg(1))
	if !ok {
		return fmt.Errorf("diff: no run %q in %s", fs.Arg(1), *storeDir)
	}
	d, err := resultstore.DiffRuns(a, b, resultstore.DiffOptions{})
	if err != nil {
		return err
	}
	if err := d.WriteText(out); err != nil {
		return err
	}
	if *jsonPath != "" {
		f, err := os.Create(*jsonPath)
		if err != nil {
			return fmt.Errorf("diff report file: %w", err)
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(d); err != nil {
			f.Close()
			return fmt.Errorf("writing diff report: %w", err)
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("closing diff report: %w", err)
		}
		fmt.Fprintf(out, "diff report written to %s\n", *jsonPath)
	}
	if *failOnRegression && len(d.Regressions) > 0 {
		return fmt.Errorf("diff: %d regression(s): %s", len(d.Regressions), strings.Join(d.Regressions, "; "))
	}
	return nil
}

// runFleet drives the concurrent multi-node engine and prints the
// aggregate fleet summary.
func runFleet(nodes, workers, shards int, seed uint64, m vfr.Mode, risk float64, windows int, compare, archetypes bool, driftMargin float64, eccLoop bool, plan *core.LifetimePlan, healthOut *os.File) error {
	cfg := fleet.DefaultConfig(nodes)
	cfg.Workers = workers
	cfg.Shards = shards
	cfg.Seed = seed
	cfg.Mode = m
	cfg.RiskTarget = risk
	cfg.Windows = windows
	cfg.Lifetime = plan
	cfg.Archetypes = archetypes
	if driftMargin >= 0 {
		cfg.Drift = &fleet.DriftPolicy{MarginFrac: driftMargin}
	}
	if eccLoop {
		cfg.ECC = &fleet.ECCPolicy{}
	}
	if healthOut != nil {
		cfg.HealthLogOut = healthOut
	}
	var cache *fleet.CharactCache
	if archetypes {
		cache = fleet.NewCharactCache()
		cfg.Charact = cache
	}
	streamed := 0
	if nodes > maxPerNodePrint {
		cfg.OnNode = func(fleet.NodeSummary) { streamed++ }
	}

	fmt.Printf("== UniServer fleet: %d nodes, %d workers (GOMAXPROCS %d), %d shards, seed %d ==\n",
		nodes, fleet.EffectiveWorkers(workers, nodes), runtime.GOMAXPROCS(0),
		fleet.EffectiveShards(shards, nodes), seed)
	if plan != nil {
		fmt.Printf("\n[1/2] parallel characterization + %d-epoch lifetime (%d windows per epoch, %d-day gaps)\n",
			plan.Epochs(), windows, plan.Gaps[0].Days)
	} else {
		fmt.Printf("\n[1/2] parallel pre-deployment characterization + %d runtime epochs\n", windows)
	}

	var sum fleet.Summary
	var runErr error
	peak := fleet.HeapWatermark(func() { sum, runErr = fleet.Run(cfg) })
	if runErr != nil {
		return runErr
	}
	// Snapshot the cache counters now, before the -compare reference
	// pass below reuses the same cache: its nodes are all served as
	// hits, and reading Stats() after it would report the two runs'
	// traffic conflated as if it were the measured run's. (HeapWatermark
	// needs no such care — its sampler is scoped to the one closure and
	// joined before it returns.)
	var cacheStats fleet.CacheStats
	if cache != nil {
		cacheStats = cache.Stats()
	}

	var ref fleet.Summary
	var err error
	if compare {
		refCfg := cfg
		refCfg.Workers = 1
		refCfg.HealthLogOut = nil // already written by the parallel pass
		fmt.Println("      running the 1-worker reference pass for comparison")
		ref, err = fleet.Run(refCfg)
		if err != nil {
			return fmt.Errorf("reference pass: %w", err)
		}
		if ref.Fingerprint() != sum.Fingerprint() {
			return fmt.Errorf("determinism violated: %d-worker summary differs from the 1-worker reference\n--- workers=1 ---\n%s--- workers=%d ---\n%s",
				sum.Workers, ref.Fingerprint(), sum.Workers, sum.Fingerprint())
		}
	}

	fmt.Println("\n[2/2] fleet summary (deterministic: same seed, same numbers, any worker count)")
	fmt.Printf("  windows at EOP:           %d of %d node-windows\n", sum.WindowsAtEOP, sum.Nodes*sum.Windows)
	fmt.Printf("  node crashes (recovered): %d (%d re-characterizations)\n", sum.Crashes, sum.Recharacterized)
	fmt.Printf("  correctable masked:       %d\n", sum.CorrectableMasked)
	fmt.Printf("  node energy saved:        %.2f Wh\n", sum.EnergySavedWh)
	fmt.Printf("  VMs scheduled/rejected:   %d / %d\n", sum.Scheduled, sum.Rejected)
	fmt.Printf("  proactive migrations:     %d\n", sum.Migrations)
	fmt.Printf("  SLA violations:           %d (%d user-facing)\n", sum.SLAViolations, sum.UserFacingViolations)
	fmt.Printf("  fleet energy:             %.3f kWh, mean availability %.4f\n", sum.EnergyKWh, sum.MeanAvailability)
	fmt.Printf("  wall-clock:               %v at %d workers, %d shards\n",
		sum.WallClock.Round(time.Millisecond), sum.Workers, sum.Shards)
	fmt.Printf("  peak heap:                %.1f MiB\n", float64(peak)/(1<<20))
	if cache != nil {
		fmt.Printf("  archetype bins:           %d characterized, %d templates compiled, %d nodes cloned\n",
			cacheStats.Misses, cacheStats.Compiled, cacheStats.Hits)
	}
	if streamed > 0 {
		fmt.Printf("  per-node summaries:       %d streamed, none retained (fleet > %d nodes)\n",
			streamed, maxPerNodePrint)
	}
	if compare {
		fmt.Printf("  1-worker reference:       %v — summaries byte-identical, measured speedup %.2fx\n",
			ref.WallClock.Round(time.Millisecond),
			ref.WallClock.Seconds()/sum.WallClock.Seconds())
	}
	for _, n := range sum.PerNode {
		fmt.Printf("    %-14s crashes %2d  eop %3d/%d  saved %7.2f Wh  safe %d mV\n",
			n.Name, n.Crashes, n.WindowsAtEOP, sum.Windows, n.EnergySavedWh, n.FinalSafeVoltageMV)
	}
	if plan != nil && len(sum.PerNode) > 0 && len(sum.PerNode[0].Epochs) > 0 {
		fmt.Printf("\n  margin trajectory (%s):\n", sum.PerNode[0].Name)
		printTrajectory(sum.PerNode[0].Epochs, sum.PerNode[0].FinalAgeShiftMV)
	}
	fp := sha256.Sum256([]byte(sum.Fingerprint()))
	fmt.Printf("\nfingerprint sha256:%s\n", hex.EncodeToString(fp[:]))
	fmt.Println("\ndone: fleet ran at extended operating points with reliability-aware scheduling")
	return nil
}

// runSingleNode is the original one-node narration.
func runSingleNode(seed uint64, m vfr.Mode, risk float64, windows int, closedLoop bool, plan *core.LifetimePlan, healthOut *os.File) error {
	opts := core.DefaultOptions()
	opts.Seed = seed
	opts.Mem = dram.Config{Channels: 4, DIMMsPerChannel: 1, DIMMBytes: 8 << 30, DeviceGb: 2, TempC: 45}
	if healthOut != nil {
		opts.HealthLogOut = healthOut
	}

	eco, err := core.New(opts)
	if err != nil {
		return err
	}

	fmt.Printf("== UniServer node (%s, %d cores, seed %d) ==\n",
		eco.Machine.Spec.Model, eco.Machine.Spec.Cores, seed)

	fmt.Println("\n[1/3] pre-deployment characterization")
	rep, err := eco.PreDeployment()
	if err != nil {
		return err
	}
	fmt.Printf("  stress sweeps run:        %d (ECC events observed: %d)\n",
		rep.Margins.SweepsRun, rep.Margins.ECCEvents)
	for _, comp := range eco.Table().Components() {
		mg, _ := eco.Table().Lookup(comp)
		if comp == "dram/relaxed" {
			fmt.Printf("  %-20s safe refresh %v (zero errors up to %v)\n",
				comp, mg.Safe.Refresh, rep.Margins.ZeroErrorRefresh)
			continue
		}
		fmt.Printf("  %-20s safe %s (%.1f%% below nominal)\n",
			comp, mg.Safe, mg.UndervoltHeadroomPct())
	}
	fmt.Printf("  fault injections:         %d SDCs, %d objects protected\n",
		rep.FaultsInjected, rep.ProtectedObjects)
	fmt.Printf("  predictor accuracy:       %.1f%% on %d samples\n",
		rep.PredictorAcc*100, rep.PredictorSamples)

	wl := workload.WebFrontend()
	if plan != nil {
		fmt.Printf("\n[2/3] supervised lifetime: %d epochs x %d windows, %d-day gaps, %s mode\n",
			plan.Epochs(), windows, plan.Gaps[0].Days, m)
		sum, err := eco.RunLifetime(m, risk, wl, *plan)
		if err != nil {
			return err
		}
		fmt.Printf("  windows at EOP / nominal:  %d / %d\n", sum.WindowsAtEOP, sum.WindowsAtNominal)
		fmt.Printf("  crashes (all recovered):   %d\n", sum.Crashes)
		fmt.Printf("  re-characterizations:      %d\n", sum.Recharacterized)
		fmt.Printf("  energy saved:              %.2f Wh\n", sum.EnergySavedWh)
		fmt.Println("  margin trajectory:")
		printTrajectory(sum.Epochs, sum.FinalAgeShiftMV)
		fmt.Println("\n[3/3] done: the EOP table tracked the aging margins across the lifetime")
		return nil
	}
	if closedLoop {
		fmt.Printf("\n[2/3] supervised closed-loop deployment: %s mode, %d windows\n", m, windows)
		sum, err := eco.RunDeployment(m, risk, wl, windows)
		if err != nil {
			return err
		}
		fmt.Printf("  windows at EOP / nominal:  %d / %d\n", sum.WindowsAtEOP, sum.WindowsAtNominal)
		fmt.Printf("  crashes (all recovered):   %d\n", sum.Crashes)
		fmt.Printf("  re-characterizations:      %d\n", sum.Recharacterized)
		fmt.Printf("  energy saved:              %.2f Wh\n", sum.EnergySavedWh)
		fmt.Printf("  aging drift:               +%.1f mV (final safe point %d mV)\n",
			sum.FinalAgeShiftMV, sum.FinalSafeVoltageMV)
		fmt.Println("\n[3/3] done: closed loop kept the node at extended operating points")
		return nil
	}

	fmt.Printf("\n[2/3] entering %s mode (risk target %.3g)\n", m, risk)
	point, err := eco.EnterMode(m, risk, wl)
	if err != nil {
		return err
	}
	pw := eco.Power(wl.CPUActivity)
	fmt.Printf("  operating point:          %s\n", point)
	fmt.Printf("  CPU power:                %.2fW vs %.2fW nominal (%.1f%% saved)\n",
		pw.CurrentW, pw.NominalW, pw.SavingsPct)
	fmt.Printf("  DRAM refresh power saved: %.1f%%\n", pw.RefreshSavingsPct)

	fmt.Printf("\n[3/3] runtime: %d observation windows of %s\n", windows, wl.Name)
	crashes, correctable, dramHits := 0, 0, 0
	for i := 0; i < windows; i++ {
		wrep := eco.RuntimeWindow(wl)
		if wrep.Crashed {
			crashes++
		}
		correctable += wrep.Correctable
		for _, n := range wrep.DRAMHits {
			dramHits += n
		}
	}
	stats := eco.Hypervisor.Stats()
	fmt.Printf("  crashes:                  %d\n", crashes)
	fmt.Printf("  cache ECC corrections:    %d (masked by hypervisor)\n", correctable)
	fmt.Printf("  DRAM retention hits:      %d (corrected by SECDED)\n", dramHits)
	fmt.Printf("  hypervisor masked:        %d events, %d cores isolated\n",
		stats.ErrorsMasked, stats.CoresIsolated)
	fmt.Printf("  pending stress requests:  %d\n", len(eco.Stress.Pending()))
	fmt.Println("\ndone: node ran at extended operating points with non-disruptive operation")
	return nil
}
