// Command uniserver runs the full cross-layer ecosystem of Figure 2 on
// one simulated node: pre-deployment characterization (StressLog with
// GA viruses, fault injection with selective protection, Predictor
// training), then deployment at the advised extended operating point,
// then a monitored runtime with error masking.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"uniserver/internal/core"
	"uniserver/internal/dram"
	"uniserver/internal/vfr"
	"uniserver/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("uniserver: ")

	seed := flag.Uint64("seed", 1, "simulation seed (same seed, same outcomes)")
	mode := flag.String("mode", "high-performance", "operating mode: nominal | high-performance | low-power")
	risk := flag.Float64("risk", 0.01, "per-window failure-probability target")
	windows := flag.Int("windows", 120, "runtime observation windows to simulate")
	logfile := flag.String("healthlog", "", "write the HealthLog JSON-lines file here")
	closedLoop := flag.Bool("closed-loop", false,
		"run the supervised deployment loop (crash fallback, aging, auto re-characterization)")
	flag.Parse()

	var m vfr.Mode
	switch *mode {
	case "nominal":
		m = vfr.ModeNominal
	case "high-performance":
		m = vfr.ModeHighPerformance
	case "low-power":
		m = vfr.ModeLowPower
	default:
		log.Fatalf("unknown mode %q", *mode)
	}

	opts := core.DefaultOptions()
	opts.Seed = *seed
	opts.Mem = dram.Config{Channels: 4, DIMMsPerChannel: 1, DIMMBytes: 8 << 30, DeviceGb: 2, TempC: 45}
	if *logfile != "" {
		f, err := os.Create(*logfile)
		if err != nil {
			log.Fatalf("healthlog file: %v", err)
		}
		defer f.Close()
		opts.HealthLogOut = f
	}

	eco, err := core.New(opts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("== UniServer node (%s, %d cores, seed %d) ==\n",
		eco.Machine.Spec.Model, eco.Machine.Spec.Cores, *seed)

	fmt.Println("\n[1/3] pre-deployment characterization")
	rep, err := eco.PreDeployment()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  stress sweeps run:        %d (ECC events observed: %d)\n",
		rep.Margins.SweepsRun, rep.Margins.ECCEvents)
	for _, comp := range eco.Table().Components() {
		mg, _ := eco.Table().Lookup(comp)
		if comp == "dram/relaxed" {
			fmt.Printf("  %-20s safe refresh %v (zero errors up to %v)\n",
				comp, mg.Safe.Refresh, rep.Margins.ZeroErrorRefresh)
			continue
		}
		fmt.Printf("  %-20s safe %s (%.1f%% below nominal)\n",
			comp, mg.Safe, mg.UndervoltHeadroomPct())
	}
	fmt.Printf("  fault injections:         %d SDCs, %d objects protected\n",
		rep.FaultsInjected, rep.ProtectedObjects)
	fmt.Printf("  predictor accuracy:       %.1f%% on %d samples\n",
		rep.PredictorAcc*100, rep.PredictorSamples)

	wl := workload.WebFrontend()
	if *closedLoop {
		fmt.Printf("\n[2/3] supervised closed-loop deployment: %s mode, %d windows\n", m, *windows)
		sum, err := eco.RunDeployment(m, *risk, wl, *windows)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  windows at EOP / nominal:  %d / %d\n", sum.WindowsAtEOP, sum.WindowsAtNominal)
		fmt.Printf("  crashes (all recovered):   %d\n", sum.Crashes)
		fmt.Printf("  re-characterizations:      %d\n", sum.Recharacterized)
		fmt.Printf("  energy saved:              %.2f Wh\n", sum.EnergySavedWh)
		fmt.Printf("  aging drift:               +%.1f mV (final safe point %d mV)\n",
			sum.FinalAgeShiftMV, sum.FinalSafeVoltageMV)
		fmt.Println("\n[3/3] done: closed loop kept the node at extended operating points")
		return
	}

	fmt.Printf("\n[2/3] entering %s mode (risk target %.3g)\n", m, *risk)
	point, err := eco.EnterMode(m, *risk, wl)
	if err != nil {
		log.Fatal(err)
	}
	pw := eco.Power(wl.CPUActivity)
	fmt.Printf("  operating point:          %s\n", point)
	fmt.Printf("  CPU power:                %.2fW vs %.2fW nominal (%.1f%% saved)\n",
		pw.CurrentW, pw.NominalW, pw.SavingsPct)
	fmt.Printf("  DRAM refresh power saved: %.1f%%\n", pw.RefreshSavingsPct)

	fmt.Printf("\n[3/3] runtime: %d observation windows of %s\n", *windows, wl.Name)
	crashes, correctable, dramHits := 0, 0, 0
	for i := 0; i < *windows; i++ {
		wrep := eco.RuntimeWindow(wl)
		if wrep.Crashed {
			crashes++
		}
		correctable += wrep.Correctable
		for _, n := range wrep.DRAMHits {
			dramHits += n
		}
	}
	stats := eco.Hypervisor.Stats()
	fmt.Printf("  crashes:                  %d\n", crashes)
	fmt.Printf("  cache ECC corrections:    %d (masked by hypervisor)\n", correctable)
	fmt.Printf("  DRAM retention hits:      %d (corrected by SECDED)\n", dramHits)
	fmt.Printf("  hypervisor masked:        %d events, %d cores isolated\n",
		stats.ErrorsMasked, stats.CoresIsolated)
	fmt.Printf("  pending stress requests:  %d\n", len(eco.Stress.Pending()))
	fmt.Println("\ndone: node ran at extended operating points with non-disruptive operation")
}
