// Command uniserver runs the full cross-layer ecosystem of Figure 2.
// With -nodes 1 (the default) it narrates one simulated node:
// pre-deployment characterization (StressLog with GA viruses, fault
// injection with selective protection, Predictor training), then
// deployment at the advised extended operating point, then a monitored
// runtime with error masking. With -nodes N it drives the concurrent
// fleet engine: N nodes characterize and step in parallel across
// -workers goroutines, feeding per-epoch health into the
// reliability-aware cloud scheduler, with a deterministic aggregate
// summary (same seed, same summary, at any worker count).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"time"

	"uniserver/internal/core"
	"uniserver/internal/dram"
	"uniserver/internal/fleet"
	"uniserver/internal/vfr"
	"uniserver/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("uniserver: ")
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	seed := flag.Uint64("seed", 1, "simulation seed (same seed, same outcomes)")
	mode := flag.String("mode", "high-performance", "operating mode: nominal | high-performance | low-power")
	risk := flag.Float64("risk", 0.01, "per-window failure-probability target")
	windows := flag.Int("windows", 120, "runtime observation windows to simulate")
	logfile := flag.String("healthlog", "", "write the HealthLog JSON-lines file here")
	closedLoop := flag.Bool("closed-loop", false,
		"run the supervised deployment loop (crash fallback, aging, auto re-characterization)")
	nodes := flag.Int("nodes", 1, "fleet size; >1 runs the concurrent multi-node engine")
	workers := flag.Int("workers", 0, "worker goroutines for the fleet engine (0 = GOMAXPROCS)")
	compare := flag.Bool("compare", false,
		"fleet mode: also run a 1-worker reference pass, verify the summaries are identical, and report the measured speedup")
	flag.Parse()

	var m vfr.Mode
	switch *mode {
	case "nominal":
		m = vfr.ModeNominal
	case "high-performance":
		m = vfr.ModeHighPerformance
	case "low-power":
		m = vfr.ModeLowPower
	default:
		return fmt.Errorf("unknown mode %q", *mode)
	}
	// Reject meaningless flag combinations before touching the
	// filesystem: os.Create truncates, and a usage error must not cost
	// the user an existing health log.
	if *nodes > 1 && *closedLoop {
		return fmt.Errorf("-closed-loop only applies to -nodes 1; the fleet engine always runs the supervised loop")
	}
	if *nodes <= 1 && *compare {
		return fmt.Errorf("-compare only applies to fleet mode (-nodes > 1)")
	}
	if *nodes <= 1 && *workers != 0 {
		return fmt.Errorf("-workers only applies to fleet mode (-nodes > 1); the single-node loop is sequential")
	}

	// The health log must be closed (flushing the JSON lines) on every
	// exit path, including errors — hence the run()/error shape instead
	// of log.Fatal, which would skip deferred closes.
	var healthOut *os.File
	if *logfile != "" {
		f, err := os.Create(*logfile)
		if err != nil {
			return fmt.Errorf("healthlog file: %v", err)
		}
		healthOut = f
		defer func() {
			if healthOut != nil {
				healthOut.Close()
			}
		}()
	}
	closeHealthLog := func() error {
		if healthOut == nil {
			return nil
		}
		err := healthOut.Close()
		healthOut = nil
		if err != nil {
			return fmt.Errorf("closing healthlog: %w", err)
		}
		return nil
	}

	if *nodes > 1 {
		if err := runFleet(*nodes, *workers, *seed, m, *risk, *windows, *compare, healthOut); err != nil {
			return err
		}
		return closeHealthLog()
	}
	if err := runSingleNode(*seed, m, *risk, *windows, *closedLoop, healthOut); err != nil {
		return err
	}
	return closeHealthLog()
}

// runFleet drives the concurrent multi-node engine and prints the
// aggregate fleet summary.
func runFleet(nodes, workers int, seed uint64, m vfr.Mode, risk float64, windows int, compare bool, healthOut *os.File) error {
	cfg := fleet.DefaultConfig(nodes)
	cfg.Workers = workers
	cfg.Seed = seed
	cfg.Mode = m
	cfg.RiskTarget = risk
	cfg.Windows = windows
	if healthOut != nil {
		cfg.HealthLogOut = healthOut
	}

	fmt.Printf("== UniServer fleet: %d nodes, %d workers (GOMAXPROCS %d), seed %d ==\n",
		nodes, fleet.EffectiveWorkers(workers, nodes), runtime.GOMAXPROCS(0), seed)
	fmt.Printf("\n[1/2] parallel pre-deployment characterization + %d runtime epochs\n", windows)

	sum, err := fleet.Run(cfg)
	if err != nil {
		return err
	}

	var ref fleet.Summary
	if compare {
		refCfg := cfg
		refCfg.Workers = 1
		refCfg.HealthLogOut = nil // already written by the parallel pass
		fmt.Println("      running the 1-worker reference pass for comparison")
		ref, err = fleet.Run(refCfg)
		if err != nil {
			return fmt.Errorf("reference pass: %w", err)
		}
		if ref.Fingerprint() != sum.Fingerprint() {
			return fmt.Errorf("determinism violated: %d-worker summary differs from the 1-worker reference\n--- workers=1 ---\n%s--- workers=%d ---\n%s",
				sum.Workers, ref.Fingerprint(), sum.Workers, sum.Fingerprint())
		}
	}

	fmt.Println("\n[2/2] fleet summary (deterministic: same seed, same numbers, any worker count)")
	fmt.Printf("  windows at EOP:           %d of %d node-windows\n", sum.WindowsAtEOP, sum.Nodes*sum.Windows)
	fmt.Printf("  node crashes (recovered): %d (%d re-characterizations)\n", sum.Crashes, sum.Recharacterized)
	fmt.Printf("  correctable masked:       %d\n", sum.CorrectableMasked)
	fmt.Printf("  node energy saved:        %.2f Wh\n", sum.EnergySavedWh)
	fmt.Printf("  VMs scheduled/rejected:   %d / %d\n", sum.Scheduled, sum.Rejected)
	fmt.Printf("  proactive migrations:     %d\n", sum.Migrations)
	fmt.Printf("  SLA violations:           %d (%d user-facing)\n", sum.SLAViolations, sum.UserFacingViolations)
	fmt.Printf("  fleet energy:             %.3f kWh, mean availability %.4f\n", sum.EnergyKWh, sum.MeanAvailability)
	fmt.Printf("  wall-clock:               %v at %d workers\n", sum.WallClock.Round(time.Millisecond), sum.Workers)
	if compare {
		fmt.Printf("  1-worker reference:       %v — summaries byte-identical, measured speedup %.2fx\n",
			ref.WallClock.Round(time.Millisecond),
			ref.WallClock.Seconds()/sum.WallClock.Seconds())
	}
	for _, n := range sum.PerNode {
		fmt.Printf("    %-14s crashes %2d  eop %3d/%d  saved %7.2f Wh  safe %d mV\n",
			n.Name, n.Crashes, n.WindowsAtEOP, sum.Windows, n.EnergySavedWh, n.FinalSafeVoltageMV)
	}
	fmt.Println("\ndone: fleet ran at extended operating points with reliability-aware scheduling")
	return nil
}

// runSingleNode is the original one-node narration.
func runSingleNode(seed uint64, m vfr.Mode, risk float64, windows int, closedLoop bool, healthOut *os.File) error {
	opts := core.DefaultOptions()
	opts.Seed = seed
	opts.Mem = dram.Config{Channels: 4, DIMMsPerChannel: 1, DIMMBytes: 8 << 30, DeviceGb: 2, TempC: 45}
	if healthOut != nil {
		opts.HealthLogOut = healthOut
	}

	eco, err := core.New(opts)
	if err != nil {
		return err
	}

	fmt.Printf("== UniServer node (%s, %d cores, seed %d) ==\n",
		eco.Machine.Spec.Model, eco.Machine.Spec.Cores, seed)

	fmt.Println("\n[1/3] pre-deployment characterization")
	rep, err := eco.PreDeployment()
	if err != nil {
		return err
	}
	fmt.Printf("  stress sweeps run:        %d (ECC events observed: %d)\n",
		rep.Margins.SweepsRun, rep.Margins.ECCEvents)
	for _, comp := range eco.Table().Components() {
		mg, _ := eco.Table().Lookup(comp)
		if comp == "dram/relaxed" {
			fmt.Printf("  %-20s safe refresh %v (zero errors up to %v)\n",
				comp, mg.Safe.Refresh, rep.Margins.ZeroErrorRefresh)
			continue
		}
		fmt.Printf("  %-20s safe %s (%.1f%% below nominal)\n",
			comp, mg.Safe, mg.UndervoltHeadroomPct())
	}
	fmt.Printf("  fault injections:         %d SDCs, %d objects protected\n",
		rep.FaultsInjected, rep.ProtectedObjects)
	fmt.Printf("  predictor accuracy:       %.1f%% on %d samples\n",
		rep.PredictorAcc*100, rep.PredictorSamples)

	wl := workload.WebFrontend()
	if closedLoop {
		fmt.Printf("\n[2/3] supervised closed-loop deployment: %s mode, %d windows\n", m, windows)
		sum, err := eco.RunDeployment(m, risk, wl, windows)
		if err != nil {
			return err
		}
		fmt.Printf("  windows at EOP / nominal:  %d / %d\n", sum.WindowsAtEOP, sum.WindowsAtNominal)
		fmt.Printf("  crashes (all recovered):   %d\n", sum.Crashes)
		fmt.Printf("  re-characterizations:      %d\n", sum.Recharacterized)
		fmt.Printf("  energy saved:              %.2f Wh\n", sum.EnergySavedWh)
		fmt.Printf("  aging drift:               +%.1f mV (final safe point %d mV)\n",
			sum.FinalAgeShiftMV, sum.FinalSafeVoltageMV)
		fmt.Println("\n[3/3] done: closed loop kept the node at extended operating points")
		return nil
	}

	fmt.Printf("\n[2/3] entering %s mode (risk target %.3g)\n", m, risk)
	point, err := eco.EnterMode(m, risk, wl)
	if err != nil {
		return err
	}
	pw := eco.Power(wl.CPUActivity)
	fmt.Printf("  operating point:          %s\n", point)
	fmt.Printf("  CPU power:                %.2fW vs %.2fW nominal (%.1f%% saved)\n",
		pw.CurrentW, pw.NominalW, pw.SavingsPct)
	fmt.Printf("  DRAM refresh power saved: %.1f%%\n", pw.RefreshSavingsPct)

	fmt.Printf("\n[3/3] runtime: %d observation windows of %s\n", windows, wl.Name)
	crashes, correctable, dramHits := 0, 0, 0
	for i := 0; i < windows; i++ {
		wrep := eco.RuntimeWindow(wl)
		if wrep.Crashed {
			crashes++
		}
		correctable += wrep.Correctable
		for _, n := range wrep.DRAMHits {
			dramHits += n
		}
	}
	stats := eco.Hypervisor.Stats()
	fmt.Printf("  crashes:                  %d\n", crashes)
	fmt.Printf("  cache ECC corrections:    %d (masked by hypervisor)\n", correctable)
	fmt.Printf("  DRAM retention hits:      %d (corrected by SECDED)\n", dramHits)
	fmt.Printf("  hypervisor masked:        %d events, %d cores isolated\n",
		stats.ErrorsMasked, stats.CoresIsolated)
	fmt.Printf("  pending stress requests:  %d\n", len(eco.Stress.Pending()))
	fmt.Println("\ndone: node ran at extended operating points with non-disruptive operation")
	return nil
}
