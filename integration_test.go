// Cross-module integration tests: full-stack scenarios that exercise
// several subsystems against each other, beyond what each package's
// unit tests cover.
package uniserver_test

import (
	"testing"
	"time"

	"uniserver/internal/core"
	"uniserver/internal/cpu"
	"uniserver/internal/dram"
	"uniserver/internal/ecc"
	"uniserver/internal/fleet"
	"uniserver/internal/rng"
	"uniserver/internal/security"
	"uniserver/internal/stress"
	"uniserver/internal/vfr"
	"uniserver/internal/workload"
)

func smallEcosystem(t *testing.T, seed uint64) *core.Ecosystem {
	t.Helper()
	opts := core.DefaultOptions()
	opts.Seed = seed
	opts.Mem = dram.Config{Channels: 2, DIMMsPerChannel: 1, DIMMBytes: 8 << 30, DeviceGb: 2, TempC: 45}
	e, err := core.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.PreDeployment(); err != nil {
		t.Fatal(err)
	}
	return e
}

// TestIntegrationDroopAttackDetection runs the security detector
// against an undervolted node hosting both benign guests and a
// malicious VM executing a GA-grade dI/dt virus: the detector flags
// only the attacker, and evicting it removes the elevated crash risk.
func TestIntegrationDroopAttackDetection(t *testing.T) {
	e := smallEcosystem(t, 41)
	if _, err := e.EnterMode(vfr.ModeHighPerformance, 0.01, workload.WebFrontend()); err != nil {
		t.Fatal(err)
	}

	virus := stress.HandCodedViruses()[0]
	benign := workload.WebFrontend()
	det := security.NewDetector(security.DefaultDetectorConfig())

	flagged := false
	for w := 0; w < 10 && !flagged; w++ {
		det.Observe("benign-vm", benign.DroopIntensity)
		flagged = det.Observe("evil-vm", virus.DroopIntensity)
	}
	if !flagged {
		t.Fatal("droop virus not detected on undervolted node")
	}
	if got := det.Flagged(); len(got) != 1 || got[0] != "evil-vm" {
		t.Fatalf("flagged = %v; benign guest must not be flagged", got)
	}

	// Quantify the risk the detector removed: crash probability of the
	// virus at the advised point versus the benign workload. The EOP
	// margin was characterized against viruses, so even the attacker
	// should mostly fail to crash the node — but it must be at least
	// as dangerous as the benign tenant.
	point := e.Hypervisor.Point()
	benignBench := cpu.Benchmark{
		Name:           benign.Name,
		DroopIntensity: benign.DroopIntensity,
		CacheStress:    0.5,
		Activity:       benign.CPUActivity,
	}
	virusCrashes, benignCrashes := 0, 0
	for i := 0; i < 200; i++ {
		if e.Machine.RunAt(0, virus, point.VoltageMV).Crashed {
			virusCrashes++
		}
		if e.Machine.RunAt(0, benignBench, point.VoltageMV).Crashed {
			benignCrashes++
		}
	}
	if virusCrashes < benignCrashes {
		t.Fatalf("virus (%d crashes) should be at least as dangerous as benign (%d) at the EOP point",
			virusCrashes, benignCrashes)
	}
}

// TestIntegrationSECDEDUnderRelaxedRefresh wires the DRAM controller
// over a relaxed domain and checks the full §6.B argument: at the
// margin the StressLog publishes, tenant reads remain correct because
// SECDED absorbs the (rare) retention upsets.
func TestIntegrationSECDEDUnderRelaxedRefresh(t *testing.T) {
	cfg := dram.Config{Channels: 2, DIMMsPerChannel: 1, DIMMBytes: 8 << 30, DeviceGb: 2, TempC: 45}
	ms, err := dram.New(cfg, dram.DefaultRetentionModel(), rng.New(43))
	if err != nil {
		t.Fatal(err)
	}
	dom := ms.RelaxedDomains()[0]
	// Deep relaxation: 5 s (78x nominal), the paper's extreme point.
	if err := dom.SetRefresh(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	ctl, err := dram.NewController(dom, ms.Model, ms.TempC)
	if err != nil {
		t.Fatal(err)
	}

	now := time.Unix(0, 0)
	src := rng.New(44)
	const words = 5000
	for i := uint64(0); i < words; i++ {
		if err := ctl.Write(i, i^0xA5A5A5A5A5A5A5A5, now); err != nil {
			t.Fatal(err)
		}
	}
	wrong, uncorrectable := 0, 0
	for i := uint64(0); i < words; i++ {
		data, res, err := ctl.Read(i, now.Add(10*time.Second), src)
		if err != nil {
			t.Fatal(err)
		}
		if res == ecc.Detected {
			uncorrectable++
			continue
		}
		if data != i^0xA5A5A5A5A5A5A5A5 {
			wrong++
		}
	}
	if wrong != 0 {
		t.Fatalf("%d silently wrong reads; SECDED must not lie", wrong)
	}
	if uncorrectable != 0 {
		t.Fatalf("%d uncorrectable words at BER ~1e-9; double upsets should be absent at this scale", uncorrectable)
	}
}

// TestIntegrationYearOfService runs the closed deployment loop for a
// simulated stretch with aging, verifying the ecosystem keeps the node
// at EOP while margins drift and campaigns track them.
func TestIntegrationYearOfService(t *testing.T) {
	e := smallEcosystem(t, 45)
	// Accelerate: pre-age the chip as if months have passed, then run
	// the supervised loop.
	sum, err := e.RunDeployment(vfr.ModeHighPerformance, 0.01, workload.WebFrontend(), 500)
	if err != nil {
		t.Fatal(err)
	}
	if sum.WindowsAtEOP < sum.Windows*8/10 {
		t.Fatalf("spent only %d/%d windows at EOP", sum.WindowsAtEOP, sum.Windows)
	}
	if sum.EnergySavedWh <= 0 {
		t.Fatal("no energy recovered over the service period")
	}
	// HealthLog saw the whole deployment.
	if e.Health.Stats().Recorded < uint64(sum.Windows) {
		t.Fatalf("health log recorded %d < %d windows", e.Health.Stats().Recorded, sum.Windows)
	}
}

// TestIntegrationFleetNodeEqualsStandaloneNode pins the fleet engine's
// core invariant across layers: a node inside a concurrently stepped
// fleet runs the exact same closed-loop deployment as a standalone
// ecosystem built from the same derived seed. Parallelism must be pure
// orchestration — zero semantic drift from the single-node paper
// reproduction.
func TestIntegrationFleetNodeEqualsStandaloneNode(t *testing.T) {
	cfg := fleet.DefaultConfig(2)
	cfg.Seed = 77
	cfg.Windows = 30
	cfg.Workers = 2
	sum, err := fleet.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, got := range sum.PerNode {
		opts := core.DefaultOptions()
		opts.Seed = fleet.NodeSeed(cfg.Seed, i)
		opts.Mem = cfg.Mem
		eco, err := core.New(opts)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := eco.PreDeployment(); err != nil {
			t.Fatal(err)
		}
		want, err := eco.RunDeployment(cfg.Mode, cfg.RiskTarget, cfg.Workload, cfg.Windows)
		if err != nil {
			t.Fatal(err)
		}
		if got.Crashes != want.Crashes ||
			got.Recharacterized != want.Recharacterized ||
			got.WindowsAtEOP != want.WindowsAtEOP ||
			got.CorrectableMasked != want.CorrectableMasked ||
			got.DRAMCorrected != want.DRAMCorrected ||
			got.MeanCPUTempC != want.MeanCPUTempC ||
			got.EnergySavedWh != want.EnergySavedWh ||
			got.FinalSafeVoltageMV != want.FinalSafeVoltageMV {
			t.Fatalf("fleet node %d diverged from standalone run:\nfleet:      %+v\nstandalone: %+v", i, got, want)
		}
	}
}

// TestIntegrationWorstCaseTableIsSafeEverywhere cross-checks the vfr
// worst-case reduction against the machine: the system-wide worst-case
// EOP voltage must be safe for every core under every SPEC workload.
func TestIntegrationWorstCaseTableIsSafeEverywhere(t *testing.T) {
	e := smallEcosystem(t, 46)
	worst, err := e.Table().WorstCase()
	if err != nil {
		t.Fatal(err)
	}
	// The table also contains the DRAM pseudo-margin whose voltage is
	// 1 mV; the worst-case voltage comes from the CPU cores.
	if worst.VoltageMV < 700 {
		t.Fatalf("worst-case voltage %d implausible", worst.VoltageMV)
	}
	crashes, runs := 0, 0
	for core := 0; core < e.Machine.Spec.Cores; core++ {
		for i := 0; i < 50; i++ {
			for _, bname := range []string{"mcf", "milc", "gobmk"} {
				bench, err := cpu.BenchmarkByName(bname)
				if err != nil {
					t.Fatal(err)
				}
				if e.Machine.RunAt(core, bench, worst.VoltageMV).Crashed {
					crashes++
				}
				runs++
			}
		}
	}
	if crashes > runs/20 {
		t.Fatalf("%d/%d crashes at the worst-case table point", crashes, runs)
	}
}
