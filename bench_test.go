// Benchmark harness regenerating every table and figure of the
// paper's evaluation (Section 6), plus ablation benches for the design
// choices DESIGN.md calls out. Run with:
//
//	go test -bench=. -benchmem
//
// Each benchmark executes the full experiment per iteration and
// reports the headline quantities as custom metrics, so `-bench`
// output is a machine-readable record of the reproduction. The rows
// themselves are logged once per run via b.Logf (visible with -v).
package uniserver_test

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"uniserver/internal/core"
	"uniserver/internal/cpu"
	"uniserver/internal/dram"
	"uniserver/internal/edge"
	"uniserver/internal/faultinject"
	"uniserver/internal/fleet"
	"uniserver/internal/hypervisor"
	"uniserver/internal/openstack"
	"uniserver/internal/power"
	"uniserver/internal/rng"
	"uniserver/internal/scenario"
	"uniserver/internal/silicon"
	"uniserver/internal/stress"
	"uniserver/internal/tco"
	"uniserver/internal/vfr"
	"uniserver/internal/workload"
)

// BenchmarkTable1GuardbandSources regenerates Table 1: the voltage
// guardband decomposition (droops ~20%, Vmin ~15%, core-to-core ~5%).
func BenchmarkTable1GuardbandSources(b *testing.B) {
	var total float64
	for i := 0; i < b.N; i++ {
		gs := vfr.Table1Guardbands()
		total = vfr.TotalGuardbandPct(gs)
	}
	b.ReportMetric(total, "guardband_%")
	b.Logf("Table 1: sources of variations and voltage guard-bands")
	for _, g := range vfr.Table1Guardbands() {
		b.Logf("  %-25s ~%.0f%%", g.Source, g.Pct)
	}
}

// BenchmarkTable2CPUCharacterization regenerates Table 2: the
// undervolt characterization of the i5-4200U and i7-3970X (crash
// points, core-to-core variation, cache ECC errors).
func BenchmarkTable2CPUCharacterization(b *testing.B) {
	suite := cpu.SPECSuite()
	var i5, i7 cpu.Table2Row
	for i := 0; i < b.N; i++ {
		i5 = cpu.Characterize(cpu.PartI5_4200U(), suite, 3, 42)
		i7 = cpu.Characterize(cpu.PartI7_3970X(), suite, 3, 42)
	}
	b.ReportMetric(i5.CrashMinPct, "i5_crash_min_%")
	b.ReportMetric(i5.CrashMaxPct, "i5_crash_max_%")
	b.ReportMetric(i7.CrashMinPct, "i7_crash_min_%")
	b.ReportMetric(i7.CrashMaxPct, "i7_crash_max_%")
	b.ReportMetric(float64(i5.ECCMax), "i5_ecc_max")
	b.Logf("Table 2 (paper: i5 -10/-11.2%%, 0/2.7%%, ECC 1..17; i7 -8.4/-15.4%%, 3.7/8%%)\n%s%s", i5, i7)
}

// BenchmarkDRAMRefreshCharacterization regenerates the Section 6.B
// DRAM experiment: refresh relaxed from 64 ms with no errors through
// 1.5 s, BER ~1e-9 at 5 s, within SECDED's 1e-6 capability.
func BenchmarkDRAMRefreshCharacterization(b *testing.B) {
	cfg := dram.Config{Channels: 2, DIMMsPerChannel: 1, DIMMBytes: 8 << 30, DeviceGb: 2, TempC: 45}
	intervals := []time.Duration{
		64 * time.Millisecond, 512 * time.Millisecond, time.Second,
		1500 * time.Millisecond, 3 * time.Second, 5 * time.Second,
	}
	var points []dram.SweepPoint
	for i := 0; i < b.N; i++ {
		ms, err := dram.New(cfg, dram.DefaultRetentionModel(), rng.New(19))
		if err != nil {
			b.Fatal(err)
		}
		points, err = ms.CharacterizeRefresh(intervals, 3, rng.New(2))
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, p := range points {
		b.Logf("refresh %8v: %3d bit errors, BER %.2e, SECDED-safe=%v",
			p.Refresh, p.BitErrors, p.CumulativeBER, p.SECDEDSafe)
	}
	safe, _ := dram.MaxSafeRefresh(points)
	b.ReportMetric(safe.Seconds(), "zero_error_refresh_s")
	b.ReportMetric(points[len(points)-1].CumulativeBER*1e9, "ber_at_5s_1e-9")
	refresh := power.DRAMRefreshModel{DeviceGb: 2, TotalMemW: 10}
	b.ReportMetric(refresh.SavingsPct(1500*time.Millisecond), "power_savings_%_at_1.5s")
}

// BenchmarkFigure1PerformanceBins regenerates Figure 1: a fabricated
// population spreads over distinct performance bins.
func BenchmarkFigure1PerformanceBins(b *testing.B) {
	nominal := vfr.Point{VoltageMV: 844, FreqMHz: 2600}
	ladder := silicon.BinLadder(3600, 100, 12)
	var stats silicon.PopulationStats
	for i := 0; i < b.N; i++ {
		stats = silicon.BinPopulation(silicon.Process28nm(), 2000, 4, nominal, ladder, rng.New(47))
	}
	b.ReportMetric(float64(len(stats.PerBin)), "distinct_bins")
	b.ReportMetric(stats.Yield()*100, "yield_%")
	for _, bin := range ladder {
		if n := stats.PerBin[bin.GradeMHz]; n > 0 {
			b.Logf("bin %4d MHz: %4d parts", bin.GradeMHz, n)
		}
	}
	b.Logf("discarded: %d of %d", stats.Discarded, stats.Total)
}

// BenchmarkFigure3HypervisorFootprint regenerates Figure 3: four LDBC
// VM instances; hypervisor footprint stays under 7% of utilized
// memory.
func BenchmarkFigure3HypervisorFootprint(b *testing.B) {
	var res hypervisor.FootprintResult
	for i := 0; i < b.N; i++ {
		om := hypervisor.NewObjectMap(hypervisor.DefaultProfiles(), rng.New(29))
		mem, err := dram.New(dram.Config{Channels: 4, DIMMsPerChannel: 2, DIMMBytes: 8 << 30, DeviceGb: 2, TempC: 45},
			dram.DefaultRetentionModel(), rng.New(29))
		if err != nil {
			b.Fatal(err)
		}
		h, err := hypervisor.New(hypervisor.DefaultConfig(), om, mem)
		if err != nil {
			b.Fatal(err)
		}
		res, err = hypervisor.FootprintExperiment(h, 4, 96, workload.LDBCSocialNetwork())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.MaxRatio, "max_footprint_%")
	b.Logf("Figure 3: max hypervisor footprint %.2f%% of utilized memory (paper: < 7%%), claim holds: %v",
		res.MaxRatio, res.Claim7Pct)
}

// BenchmarkFigure4FaultInjectionCampaign regenerates Figure 4: SDC
// injection into 16,820 hypervisor objects x 5 runs, loaded and
// unloaded.
func BenchmarkFigure4FaultInjectionCampaign(b *testing.B) {
	var loaded, unloaded faultinject.Report
	for i := 0; i < b.N; i++ {
		om := hypervisor.NewObjectMap(hypervisor.DefaultProfiles(), rng.New(42))
		var err error
		loaded, unloaded, err = faultinject.Figure4(om, faultinject.PaperRuns, rng.New(42))
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(loaded.Total), "failures_loaded")
	b.ReportMetric(float64(unloaded.Total), "failures_unloaded")
	b.ReportMetric(faultinject.LoadAmplification(loaded, unloaded), "load_amplification_x")
	b.Logf("Figure 4 (paper: ~10x more failures with workload; fs/kernel/net sensitive)")
	for _, c := range hypervisor.Categories() {
		b.Logf("  %-10s loaded %4d   unloaded %3d", c, loaded.Failures[c], unloaded.Failures[c])
	}
}

// BenchmarkTable3TCOProjection regenerates Table 3: EE sources
// 1.5 x 4 x 2 x 3 = 36x overall, 1.15x TCO from energy alone.
func BenchmarkTable3TCOProjection(b *testing.B) {
	var p tco.Table3Projection
	var err error
	for i := 0; i < b.N; i++ {
		p, err = tco.ProjectTable3(tco.DefaultCloudDC(), tco.Table3Gains())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(p.OverallEE, "overall_ee_x")
	b.ReportMetric(p.TCOImprovement, "tco_improvement_x")
	b.Logf("Table 3: %s", p)
}

// BenchmarkEdgeEnergyProjection regenerates the Section 6.D worked
// example: edge runs the 200 ms service at ~50% frequency / 70%
// voltage for ~75% less power and ~50% less energy.
func BenchmarkEdgeEnergyProjection(b *testing.B) {
	var c edge.Comparison
	var err error
	for i := 0; i < b.N; i++ {
		c, err = edge.Compare(edge.PaperExample(), edge.DefaultCloud(), edge.DefaultEdge())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(c.EdgeFreqScale, "edge_freq_scale")
	b.ReportMetric((1-c.EdgePowerScale)*100, "power_savings_%")
	b.ReportMetric((1-c.EdgeEnergyScale)*100, "energy_savings_%")
	b.Logf("Section 6.D: edge freq %.2fx, power -%.0f%%, energy -%.0f%% (paper: -75%%, -50%%)",
		c.EdgeFreqScale, (1-c.EdgePowerScale)*100, (1-c.EdgeEnergyScale)*100)
}

// --- Ablations -------------------------------------------------------

// BenchmarkAblationReliableDomain compares kernel exposure with and
// without the reliable-domain placement at a 5 s relaxed refresh.
func BenchmarkAblationReliableDomain(b *testing.B) {
	cfg := dram.Config{Channels: 2, DIMMsPerChannel: 1, DIMMBytes: 8 << 30, DeviceGb: 2, TempC: 45}
	var protectedExp, unprotectedExp float64
	for i := 0; i < b.N; i++ {
		ms, err := dram.New(cfg, dram.DefaultRetentionModel(), rng.New(47))
		if err != nil {
			b.Fatal(err)
		}
		for _, dom := range ms.RelaxedDomains() {
			if err := dom.SetRefresh(5 * time.Second); err != nil {
				b.Fatal(err)
			}
		}
		al := dram.NewAllocator(ms)
		if _, err := al.Alloc("kernel", dram.CriticalityKernel, 1<<16); err != nil {
			b.Fatal(err)
		}
		if _, err := al.Alloc("kernel-unprotected", dram.CriticalityNormal, 1<<16); err != nil {
			b.Fatal(err)
		}
		protectedExp, unprotectedExp = 0, 0
		for _, e := range al.Exposure() {
			switch e.Owner {
			case "kernel":
				protectedExp += e.ExpectedErrors
			case "kernel-unprotected":
				unprotectedExp += e.ExpectedErrors
			}
		}
	}
	b.ReportMetric(protectedExp, "kernel_exp_errors_reliable")
	b.ReportMetric(unprotectedExp, "kernel_exp_errors_relaxed")
	b.Logf("reliable-domain kernel exposure %.3g vs relaxed placement %.3g errors/window",
		protectedExp, unprotectedExp)
}

// BenchmarkAblationSelectiveProtection compares fatal-failure counts
// across protection strategies: none, selective (campaign-derived),
// and full checkpointing, with the checkpoint byte cost of each.
func BenchmarkAblationSelectiveProtection(b *testing.B) {
	var none, selective, full int
	var selBytes, fullBytes uint64
	for i := 0; i < b.N; i++ {
		baselineOM := hypervisor.NewObjectMap(hypervisor.DefaultProfiles(), rng.New(11))
		baseline, err := faultinject.RunCampaign(baselineOM, true, faultinject.PaperRuns, rng.New(11))
		if err != nil {
			b.Fatal(err)
		}
		none = baseline.Total

		selOM := hypervisor.NewObjectMap(hypervisor.DefaultProfiles(), rng.New(11))
		faultinject.PlanProtection(baseline, 0.15).Apply(selOM)
		selBytes = selOM.ProtectedBytes()
		rep, err := faultinject.RunCampaign(selOM, true, faultinject.PaperRuns, rng.New(12))
		if err != nil {
			b.Fatal(err)
		}
		selective = rep.Total

		fullOM := hypervisor.NewObjectMap(hypervisor.DefaultProfiles(), rng.New(11))
		fullOM.Protect(hypervisor.Categories()...)
		fullBytes = fullOM.ProtectedBytes()
		rep, err = faultinject.RunCampaign(fullOM, true, faultinject.PaperRuns, rng.New(12))
		if err != nil {
			b.Fatal(err)
		}
		full = rep.Total
	}
	b.ReportMetric(float64(none), "failures_unprotected")
	b.ReportMetric(float64(selective), "failures_selective")
	b.ReportMetric(float64(full), "failures_full")
	b.Logf("protection: none=%d selective=%d (%.1f KiB) full=%d (%.1f KiB)",
		none, selective, float64(selBytes)/1024, full, float64(fullBytes)/1024)
}

// BenchmarkAblationVirusGeneration compares the margins revealed by
// GA-evolved viruses against random kernels and real workloads: the
// virus crashes at the highest voltage, so its margin is the safe one.
func BenchmarkAblationVirusGeneration(b *testing.B) {
	var virusCrash, randomCrash, benchCrash int
	for i := 0; i < b.N; i++ {
		m := cpu.NewMachine(cpu.PartI5_4200U(), 17)
		res, err := stress.Evolve(stress.DefaultGAConfig(), stress.MaxVoltageNoise, m, 0, rng.New(11))
		if err != nil {
			b.Fatal(err)
		}
		virusCrash = cpu.WorstCrash(m.UndervoltSweep(0, res.Virus, 3)).CrashVoltageMV
		randomSrc := rng.New(13)
		randomCrash = 0
		for r := 0; r < 8; r++ {
			g := stress.Genome{
				VecFrac: randomSrc.Float64(), ALUFrac: randomSrc.Float64(),
				MemFrac: randomSrc.Float64(), BranchFrac: randomSrc.Float64(),
				NopFrac: randomSrc.Float64(), BurstPeriod: 1 + randomSrc.Intn(64),
			}
			if c := cpu.WorstCrash(m.UndervoltSweep(0, g.Express("rand"), 1)).CrashVoltageMV; c > randomCrash {
				randomCrash = c
			}
		}
		benchCrash = 0
		for _, bench := range cpu.SPECSuite() {
			if c := cpu.WorstCrash(m.UndervoltSweep(0, bench, 3)).CrashVoltageMV; c > benchCrash {
				benchCrash = c
			}
		}
	}
	b.ReportMetric(float64(virusCrash), "virus_crash_mV")
	b.ReportMetric(float64(randomCrash), "random_crash_mV")
	b.ReportMetric(float64(benchCrash), "spec_crash_mV")
	b.Logf("crash voltage: GA virus %dmV >= random kernels %dmV ~ SPEC %dmV", virusCrash, randomCrash, benchCrash)
}

// BenchmarkAblationReliabilityScheduling compares SLA violations under
// the UniServer policy (reliability metric + SLA filter + proactive
// migration) against the legacy utilization/energy-only policy.
func BenchmarkAblationReliabilityScheduling(b *testing.B) {
	run := func(policy openstack.Policy, seed uint64) openstack.SimResult {
		nodes := openstack.Fleet(8, 16, 64<<30, rng.New(seed))
		m, err := openstack.NewManager(policy, nodes...)
		if err != nil {
			b.Fatal(err)
		}
		arrivals, err := workload.Stream(workload.DefaultStreamConfig(), rng.New(seed+1))
		if err != nil {
			b.Fatal(err)
		}
		res, err := openstack.RunStream(m, arrivals, openstack.DefaultSimConfig(), rng.New(seed+2))
		if err != nil {
			b.Fatal(err)
		}
		return res
	}
	var uni, legacy openstack.SimResult
	for i := 0; i < b.N; i++ {
		uni = run(openstack.UniServerPolicy(), 100)
		legacy = run(openstack.LegacyPolicy(), 100)
	}
	b.ReportMetric(float64(uni.SLAViolations), "uniserver_sla_violations")
	b.ReportMetric(float64(legacy.SLAViolations), "legacy_sla_violations")
	b.ReportMetric(float64(uni.Migrations), "uniserver_migrations")
	b.Logf("24h stream: UniServer %d violations (%d migrations) vs legacy %d violations",
		uni.SLAViolations, uni.Migrations, legacy.SLAViolations)
}

// BenchmarkAblationPredictorGuidance compares crash rates at the
// predictor-advised point against a fixed aggressive undervolt and
// nominal guardbands, at matched window counts.
func BenchmarkAblationPredictorGuidance(b *testing.B) {
	var advisedCrashes, aggressiveCrashes int
	var advisedSavings float64
	for i := 0; i < b.N; i++ {
		m := cpu.NewMachine(cpu.PartI5_4200U(), 23)
		margins := cpu.Margins(cpu.PartI5_4200U(), cpu.SPECSuite(), 3, 23)
		safe := margins[0].Safe
		aggressive := safe.WithVoltage(margins[0].CrashPoint.VoltageMV - 5)
		bench := cpu.SPECSuite()[1] // mcf, the droopiest
		advisedCrashes, aggressiveCrashes = 0, 0
		for w := 0; w < 200; w++ {
			if m.RunAt(0, bench, safe.VoltageMV).Crashed {
				advisedCrashes++
			}
			if m.RunAt(0, bench, aggressive.VoltageMV).Crashed {
				aggressiveCrashes++
			}
		}
		pm := power.DefaultCPUModel()
		nominal := cpu.PartI5_4200U().Nominal
		advisedSavings = 100 * (pm.TotalW(nominal, 0.7, 55) - pm.TotalW(safe, 0.7, 55)) / pm.TotalW(nominal, 0.7, 55)
	}
	b.ReportMetric(float64(advisedCrashes), "crashes_at_advised")
	b.ReportMetric(float64(aggressiveCrashes), "crashes_at_aggressive")
	b.ReportMetric(advisedSavings, "advised_power_savings_%")
	b.Logf("200 windows of mcf: advised point %d crashes (%.1f%% power saved), past-margin point %d crashes",
		advisedCrashes, advisedSavings, aggressiveCrashes)
}

// BenchmarkAblationEOPFleet compares fleet energy and SLA damage when
// every node runs at extended operating points versus nominal
// guardbands, under the UniServer policy.
func BenchmarkAblationEOPFleet(b *testing.B) {
	run := func(mode vfr.Mode, seed uint64) openstack.SimResult {
		nodes := openstack.Fleet(8, 16, 64<<30, rng.New(seed))
		for _, n := range nodes {
			n.Mode = mode
		}
		m, err := openstack.NewManager(openstack.UniServerPolicy(), nodes...)
		if err != nil {
			b.Fatal(err)
		}
		arrivals, err := workload.Stream(workload.DefaultStreamConfig(), rng.New(seed+1))
		if err != nil {
			b.Fatal(err)
		}
		res, err := openstack.RunStream(m, arrivals, openstack.DefaultSimConfig(), rng.New(seed+2))
		if err != nil {
			b.Fatal(err)
		}
		return res
	}
	var eop, nominal openstack.SimResult
	for i := 0; i < b.N; i++ {
		eop = run(vfr.ModeHighPerformance, 300)
		nominal = run(vfr.ModeNominal, 300)
	}
	b.ReportMetric(eop.EnergyKWh, "eop_kwh")
	b.ReportMetric(nominal.EnergyKWh, "nominal_kwh")
	b.ReportMetric(float64(eop.SLAViolations), "eop_sla_violations")
	b.ReportMetric(float64(nominal.SLAViolations), "nominal_sla_violations")
	b.Logf("24h fleet: EOP %.1f kWh / %d violations vs nominal %.1f kWh / %d violations",
		eop.EnergyKWh, eop.SLAViolations, nominal.EnergyKWh, nominal.SLAViolations)
}

// BenchmarkFigure2EcosystemLoop exercises the full cross-layer loop of
// Figure 2 end to end: pre-deployment, mode entry, runtime windows.
func BenchmarkFigure2EcosystemLoop(b *testing.B) {
	// Figure 2 is the architecture diagram; this bench demonstrates
	// the wiring rather than a numeric series. See cmd/uniserver for
	// the narrated version.
	for i := 0; i < b.N; i++ {
		if err := runEcosystemOnce(uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkClosedLoopDeployment runs the complete supervised lifecycle
// (characterize -> deploy -> monitor -> fallback/re-characterize, with
// aging) and reports the outcome metrics.
func BenchmarkClosedLoopDeployment(b *testing.B) {
	var sum core.DeploymentSummary
	for i := 0; i < b.N; i++ {
		opts := core.DefaultOptions()
		opts.Seed = 33
		opts.Mem = dram.Config{Channels: 2, DIMMsPerChannel: 1, DIMMBytes: 8 << 30, DeviceGb: 2, TempC: 45}
		eco, err := core.New(opts)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := eco.PreDeployment(); err != nil {
			b.Fatal(err)
		}
		sum, err = eco.RunDeployment(vfr.ModeHighPerformance, 0.01, workload.WebFrontend(), 240)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(sum.WindowsAtEOP), "windows_at_eop")
	b.ReportMetric(float64(sum.Crashes), "crashes")
	b.ReportMetric(sum.EnergySavedWh, "energy_saved_wh")
	b.Logf("closed loop: %d/%d windows at EOP, %d crashes, %.1f Wh saved, aging +%.1f mV",
		sum.WindowsAtEOP, sum.Windows, sum.Crashes, sum.EnergySavedWh, sum.FinalAgeShiftMV)
}

// BenchmarkFleetRuntime measures the concurrent multi-node engine:
// one iteration is a full fleet lifecycle (parallel pre-deployment
// characterization of every node, then barrier-synchronized runtime
// epochs feeding the reliability-aware scheduler). The sub-benchmarks
// vary only the worker count; the fleet summary is byte-identical
// across them (asserted once per run), so comparing their ns/op is a
// pure wall-clock speedup measurement. On a machine with 4+ cores the
// workers=4 variant should run >2x faster than workers=1.
func BenchmarkFleetRuntime(b *testing.B) {
	const (
		benchNodes   = 8
		benchWindows = 60
	)
	config := func(workers int) fleet.Config {
		cfg := fleet.DefaultConfig(benchNodes)
		cfg.Workers = workers
		cfg.Windows = benchWindows
		cfg.Seed = 1
		return cfg
	}
	baseline, err := fleet.Run(config(1))
	if err != nil {
		b.Fatal(err)
	}
	workerCounts := []int{1, 2, 4, 8}
	// The framework invokes each sub-benchmark body several times while
	// calibrating b.N; overwriting the slot keeps only the final
	// (largest-N) measurement instead of accumulating probe runs.
	nsPerOp := make(map[int]int64, len(workerCounts))
	peakBytes := make(map[int]int64, len(workerCounts))
	for _, workers := range workerCounts {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			var sum fleet.Summary
			// Peak live heap is sampled across the whole measurement loop:
			// the bounded-memory claim (peak tracks workers, not nodes) is
			// recorded per variant so BENCH_fleet.json carries it
			// longitudinally.
			peak := fleet.HeapWatermark(func() {
				for i := 0; i < b.N; i++ {
					var err error
					sum, err = fleet.Run(config(workers))
					if err != nil {
						b.Fatal(err)
					}
				}
			})
			if sum.Fingerprint() != baseline.Fingerprint() {
				b.Fatalf("summary at %d workers diverged from the 1-worker baseline", workers)
			}
			b.ReportMetric(float64(sum.WindowsAtEOP), "windows_at_eop")
			b.ReportMetric(sum.EnergySavedWh, "energy_saved_wh")
			b.ReportMetric(float64(sum.Migrations), "migrations")
			b.ReportMetric(float64(sum.Crashes), "node_crashes")
			b.ReportMetric(float64(peak), "peak_bytes")
			nsPerOp[workers] = b.Elapsed().Nanoseconds() / int64(b.N)
			peakBytes[workers] = int64(peak)
		})
	}
	// Append the machine-readable perf record to BENCH_fleet.json so
	// the repo's performance trajectory accumulates run over run — a
	// record per (date, gomaxprocs) execution, so multi-core hosts and
	// the single-vCPU reference container coexist in one history and
	// parallel-speedup claims are measured, not asserted. Speedup is
	// measured wall-clock against the 1-worker variant of the same
	// process — never estimated from goroutine-elapsed sums.
	if nsPerOp[1] > 0 {
		variants := make([]variant, 0, len(workerCounts))
		for _, workers := range workerCounts {
			if nsPerOp[workers] == 0 {
				continue
			}
			speedup := float64(nsPerOp[1]) / float64(nsPerOp[workers])
			variants = append(variants, variant{
				Workers:    workers,
				NsPerOp:    nsPerOp[workers],
				Speedup:    speedup,
				Efficiency: speedup / float64(workers),
				PeakBytes:  peakBytes[workers],
			})
		}
		var hist fleetBenchFile
		loadBenchHistory(b, "BENCH_fleet.json", &hist)
		if hist.Legacy.Variants != nil {
			// Migrate a pre-history single-record file: its measurement
			// becomes the first history entry (date unknown).
			hist.Records = append(hist.Records, fleetBenchRecord{
				GOMAXPROCS:  hist.Legacy.GOMAXPROCS,
				Fingerprint: hist.Legacy.Fingerprint,
				Variants:    hist.Legacy.Variants,
			})
		}
		// Efficiency fence: the max-worker variant's parallel efficiency
		// (speedup ÷ workers) may not drop more than 15% below the most
		// recent record of the same GOMAXPROCS and environment class —
		// the regression gate behind the coordinator-pipelining work,
		// fatal under CI on the full-core leg, a warning interactively.
		// ns/op alone would miss this failure mode: a uniformly-slower
		// build keeps its efficiency, while a new serial phase or lock
		// shows up here first. Calibration re-runs are exempt, like the
		// campaign gate's.
		if _, rerun := benchRecordSlot["BENCH_fleet.json"]; !rerun {
			checkEfficiencyFence(b, hist.Records, variants)
		}
		hist.Benchmark = "BenchmarkFleetRuntime"
		hist.Nodes, hist.Windows = benchNodes, benchWindows
		hist.Records = appendBenchRecord("BENCH_fleet.json", hist.Records, fleetBenchRecord{
			Date:        time.Now().UTC().Format(time.RFC3339),
			Env:         benchEnv(),
			GOMAXPROCS:  runtime.GOMAXPROCS(0),
			Fingerprint: fmt.Sprintf("%x", sha256.Sum256([]byte(baseline.Fingerprint()))),
			Variants:    variants,
		})
		hist.Legacy = legacyFleetRecord{}
		writeBenchHistory(b, "BENCH_fleet.json", hist)
	}
}

// efficiencyTolerance is the floor of the parallel-efficiency fence:
// the max-worker variant's speedup/worker may fall to 85% of the
// previous comparable record's before the benchmark is treated as a
// scaling regression (>15% drop fails). Wall-clock noise largely
// cancels out of the ratio — both legs ran in the same process — so
// the fence is tighter than the 20% ns/op gate.
const efficiencyTolerance = 0.85

// maxWorkerEfficiency extracts the highest-worker-count variant's
// efficiency from a variant set, deriving it from speedup for records
// that predate the efficiency field. Returns zeros on empty sets.
func maxWorkerEfficiency(vs []variant) (workers int, eff float64) {
	for _, v := range vs {
		if v.Workers <= workers {
			continue
		}
		workers = v.Workers
		eff = v.Efficiency
		if eff == 0 && v.Workers > 0 {
			eff = v.Speedup / float64(v.Workers)
		}
	}
	return workers, eff
}

// checkEfficiencyFence compares this run's max-worker efficiency
// against the most recent history record of the same GOMAXPROCS and
// environment class (records without an env stamp are the committed
// "local" reference numbers). A >15% drop is fatal under CI and a
// warning interactively. Records measured at a different max worker
// count don't gate — their efficiency is not comparable.
func checkEfficiencyFence(b *testing.B, records []fleetBenchRecord, current []variant) {
	workers, eff := maxWorkerEfficiency(current)
	if workers == 0 || eff <= 0 {
		return
	}
	for i := len(records) - 1; i >= 0; i-- {
		prev := records[i]
		prevEnv := prev.Env
		if prevEnv == "" {
			prevEnv = "local"
		}
		if prev.GOMAXPROCS != runtime.GOMAXPROCS(0) || prevEnv != benchEnv() {
			continue
		}
		prevWorkers, prevEff := maxWorkerEfficiency(prev.Variants)
		if prevWorkers != workers || prevEff <= 0 {
			return
		}
		if eff < prevEff*efficiencyTolerance {
			msg := fmt.Sprintf("parallel efficiency regressed: %d-worker speedup/worker %.3f vs %.3f in the previous record (GOMAXPROCS=%d env=%s, recorded %s) — a new serial phase or lock contention, not plain slowness",
				workers, eff, prevEff, prev.GOMAXPROCS, prevEnv, prev.Date)
			if os.Getenv("CI") != "" {
				b.Fatal(msg)
			}
			b.Logf("WARNING: %s (non-fatal outside CI)", msg)
		}
		return
	}
}

// variant is one worker-count leg of a fleet measurement. Efficiency
// is speedup per worker (1.0 = perfect scaling) — the first-class
// number behind the ROADMAP's 8-worker-stall observation — and
// PeakBytes is the HeapAlloc high-water across the variant's
// measurement loop, the bounded-memory claim in longitudinal form.
// Both are zero in records that predate them.
type variant struct {
	Workers    int     `json:"workers"`
	NsPerOp    int64   `json:"ns_per_op"`
	Speedup    float64 `json:"speedup_vs_1_worker"`
	Efficiency float64 `json:"efficiency,omitempty"`
	PeakBytes  int64   `json:"peak_bytes,omitempty"`
}

// fleetBenchRecord is one dated BenchmarkFleetRuntime measurement.
type fleetBenchRecord struct {
	Date        string    `json:"date,omitempty"`
	Env         string    `json:"env,omitempty"`
	GOMAXPROCS  int       `json:"gomaxprocs"`
	Fingerprint string    `json:"fingerprint_sha256"`
	Variants    []variant `json:"variants"`
}

// legacyFleetRecord matches the pre-history single-record layout of
// BENCH_fleet.json so an old file's measurement survives migration.
type legacyFleetRecord struct {
	GOMAXPROCS  int       `json:"gomaxprocs,omitempty"`
	Fingerprint string    `json:"fingerprint_sha256,omitempty"`
	Variants    []variant `json:"variants,omitempty"`
}

// fleetBenchFile is the run-over-run BENCH_fleet.json layout.
type fleetBenchFile struct {
	Benchmark string             `json:"benchmark"`
	Nodes     int                `json:"nodes"`
	Windows   int                `json:"windows"`
	Records   []fleetBenchRecord `json:"records"`
	// Restore is BenchmarkSnapshotRestore's history: the per-node fixed
	// cost of materializing a cached characterization, legacy deep
	// restore vs compiled template stamp, tracked run over run in the
	// same file the fleet-scaling records live in.
	Restore []restoreBenchRecord `json:"restore,omitempty"`
	Legacy  legacyFleetRecord    `json:"-"`
}

// restoreBenchRecord is one dated BenchmarkSnapshotRestore
// measurement: both paths from the same snapshot in the same process,
// so the speedup column compares like with like.
type restoreBenchRecord struct {
	Date            string  `json:"date,omitempty"`
	Env             string  `json:"env,omitempty"`
	GOMAXPROCS      int     `json:"gomaxprocs"`
	LegacyNsPerOp   int64   `json:"legacy_ns_per_op"`
	LegacyAllocs    float64 `json:"legacy_allocs_per_op"`
	TemplateNsPerOp int64   `json:"template_ns_per_op"`
	TemplateAllocs  float64 `json:"template_allocs_per_op"`
	Speedup         float64 `json:"speedup_vs_legacy"`
}

// benchHistoryCap bounds the retained history so the committed records
// stay reviewable; 100 runs is years of CI at current cadence.
const benchHistoryCap = 100

func capRecords[T any](rs []T) []T {
	if len(rs) > benchHistoryCap {
		rs = rs[len(rs)-benchHistoryCap:]
	}
	return rs
}

// benchEnv classifies the measuring environment. Records only compare
// against records of the same class: committed numbers come from the
// reference container ("local"), CI runners are their own class, and
// a >20% gap between the two classes measures the hosts, not the
// code. The CI-side gate therefore arms once a CI-produced record
// (from the uploaded artifact) is committed into the history.
func benchEnv() string {
	if os.Getenv("CI") != "" {
		return "ci"
	}
	return "local"
}

// benchRecordSlot remembers, per BENCH file, the record index this
// process already wrote. The benchmark framework re-invokes a
// benchmark body while calibrating b.N; without this, every
// calibration pass would append a near-duplicate record. With it, the
// final (largest-N) measurement of the run overwrites the earlier
// ones, which is the single-record-per-run semantics the history
// wants.
var benchRecordSlot = map[string]int{}

// appendBenchRecord places rec into hist's record slice: appending on
// the process's first write to path, replacing that same slot on
// calibration re-runs.
func appendBenchRecord[T any](path string, records []T, rec T) []T {
	if idx, ok := benchRecordSlot[path]; ok && idx < len(records) {
		records[idx] = rec
		return records
	}
	records = capRecords(append(records, rec))
	benchRecordSlot[path] = len(records) - 1
	return records
}

// loadBenchHistory reads an existing BENCH file into v (new layout)
// and, when the file predates the history format, probes its single
// record into v's Legacy field for migration. A missing file starts a
// fresh history; a malformed one fails the benchmark rather than
// silently clobbering the committed run-over-run record.
func loadBenchHistory(b *testing.B, path string, v any) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return
	}
	if err != nil {
		b.Fatalf("reading %s: %v — refusing to overwrite the committed history", path, err)
	}
	if err := json.Unmarshal(data, v); err != nil {
		b.Fatalf("%s is malformed (%v) — fix or delete it before benchmarking, or the history would be lost", path, err)
	}
	// The legacy probe cannot fail: the same bytes just unmarshaled
	// into the sibling layout of the identical field types.
	switch f := v.(type) {
	case *fleetBenchFile:
		if len(f.Records) == 0 {
			_ = json.Unmarshal(data, &f.Legacy)
		}
	case *campaignBenchFile:
		if len(f.Records) == 0 {
			_ = json.Unmarshal(data, &f.Legacy)
		}
	}
}

// writeBenchHistory rewrites the BENCH file with the appended history.
func writeBenchHistory(b *testing.B, path string, v any) {
	buf, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		b.Fatalf("marshaling %s: %v", path, err)
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		b.Logf("writing %s: %v (perf record not updated)", path, err)
	}
}

// Campaign benchmark constants: the 6-preset × 3-seed grid (4 nodes,
// 16 windows per cell) that BENCH_campaign.json tracks.
const (
	campaignNodes   = 4
	campaignWindows = 16
	campaignSeeds   = 3

	// campaignGoldenSHA is the campaign fingerprint recorded BEFORE the
	// zero-allocation/hot-path optimization pass (at commit 2ee2578,
	// "PR 2: Scenario campaign engine"). The benchmark fails if the
	// optimized engine's results diverge from it by a single byte:
	// perf work here must never move a simulation outcome. Re-record
	// only when a PR intentionally changes simulation semantics, and
	// say so in EXPERIMENTS.md.
	campaignGoldenSHA = "4768b42dbb52c1578c203da357462c81840278c9c6b8e4aaf1046ceda9d8b592"

	// campaignBeforeNsPerOp is the same grid's wall-clock measured at
	// commit 2ee2578 on the reference container (GOMAXPROCS=1, Xeon @
	// 2.10 GHz) — the "before" leg of the speedup this PR's hot-path
	// pass is accountable for.
	campaignBeforeNsPerOp = 3_313_541_000
)

// campaignBenchRecord is one dated BenchmarkCampaign measurement. The
// cache counters make a perf claim auditable from the record alone: a
// speedup with zero hits did not come from the snapshot cache.
type campaignBenchRecord struct {
	Date        string  `json:"date,omitempty"`
	Env         string  `json:"env,omitempty"`
	GOMAXPROCS  int     `json:"gomaxprocs"`
	Fingerprint string  `json:"fingerprint_sha256"`
	NsPerOp     int64   `json:"ns_per_op"`
	Speedup     float64 `json:"speedup_vs_pre_optimization"`
	CacheHits   uint64  `json:"charact_cache_hits"`
	CacheMisses uint64  `json:"charact_cache_misses"`
}

// legacyCampaignRecord matches the pre-history single-record layout.
type legacyCampaignRecord struct {
	GOMAXPROCS  int     `json:"gomaxprocs,omitempty"`
	Fingerprint string  `json:"fingerprint_sha256,omitempty"`
	NsPerOp     int64   `json:"ns_per_op,omitempty"`
	Speedup     float64 `json:"speedup_vs_pre_optimization,omitempty"`
}

// campaignBenchFile is the run-over-run BENCH_campaign.json layout.
type campaignBenchFile struct {
	Benchmark string                `json:"benchmark"`
	Scenarios int                   `json:"scenarios"`
	Seeds     int                   `json:"seeds"`
	Nodes     int                   `json:"nodes"`
	Windows   int                   `json:"windows"`
	BeforeNs  int64                 `json:"before_ns_per_op"`
	Records   []campaignBenchRecord `json:"records"`
	Legacy    legacyCampaignRecord  `json:"-"`
}

// campaignRegressionTolerance is how much slower than the previous
// record of the same shape — same GOMAXPROCS *and* same environment
// class (see benchEnv) — the campaign may run before the benchmark is
// treated as a perf regression. Enforcement is fatal under CI and a
// warning interactively (laptops throttle). The CI-side gate arms
// when a CI-produced record from the uploaded artifact is committed
// into BENCH_campaign.json; until then CI still hard-fails on golden
// fingerprint divergence, and the gate protects the committed
// reference-container records.
const campaignRegressionTolerance = 1.20

// BenchmarkCampaign measures the scenario campaign engine end to end:
// one iteration is the full bundled-preset grid — every preset scaled
// to 4 nodes × 16 windows, swept over 3 seeds (18 fleet lifecycles)
// sharing one characterization snapshot cache, as RunCampaign does by
// default. It asserts the grid's fingerprint against the
// pre-optimization golden record, appends a dated record to
// BENCH_campaign.json's run-over-run history, and gates on the
// previous record: a >20% ns/op regression at the same GOMAXPROCS
// fails the benchmark in CI.
func BenchmarkCampaign(b *testing.B) {
	// The measured grid is pinned to the six classic presets by name:
	// BENCH_campaign.json is a run-over-run history, and silently
	// growing the grid whenever a preset lands (the lifetime presets
	// arrived after the golden was recorded) would make every ns/op
	// and fingerprint incomparable with the trajectory so far.
	names := []string{"baseline", "diurnal-burst", "droop-attack", "hetero-bins", "mode-churn", "thermal-summer"}
	scaled := make([]scenario.Scenario, len(names))
	for i, name := range names {
		s, err := scenario.ByName(name)
		if err != nil {
			b.Fatal(err)
		}
		scaled[i] = s.Scale(campaignNodes, campaignWindows)
	}
	seeds := make([]uint64, campaignSeeds)
	for i := range seeds {
		seeds[i] = uint64(i + 1)
	}
	c := scenario.Campaign{Scenarios: scaled, Seeds: seeds}
	var rep scenario.Report
	for i := 0; i < b.N; i++ {
		var err error
		rep, err = scenario.RunCampaign(c)
		if err != nil {
			b.Fatal(err)
		}
	}
	switch {
	case runtime.GOOS != "linux" || runtime.GOARCH != "amd64":
		// The golden was recorded on linux/amd64; other math-library
		// builds may round transcendentals differently. Determinism
		// within this host is still covered by the scenario tests.
		b.Logf("skipping golden comparison on %s/%s (recorded on linux/amd64)", runtime.GOOS, runtime.GOARCH)
	case rep.FingerprintSHA256 != campaignGoldenSHA:
		b.Fatalf("campaign fingerprint diverged from the pre-optimization record:\n got %s\nwant %s",
			rep.FingerprintSHA256, campaignGoldenSHA)
	}
	nsPerOp := b.Elapsed().Nanoseconds() / int64(b.N)
	speedup := float64(campaignBeforeNsPerOp) / float64(nsPerOp)
	b.ReportMetric(speedup, "speedup_vs_pre_opt")
	b.ReportMetric(float64(rep.CharactCacheHits), "cache_hits")

	var hist campaignBenchFile
	loadBenchHistory(b, "BENCH_campaign.json", &hist)
	if hist.Legacy.NsPerOp > 0 {
		hist.Records = append(hist.Records, campaignBenchRecord{
			GOMAXPROCS:  hist.Legacy.GOMAXPROCS,
			Fingerprint: hist.Legacy.Fingerprint,
			NsPerOp:     hist.Legacy.NsPerOp,
			Speedup:     hist.Legacy.Speedup,
		})
	}

	// Regression gate: compare against the most recent record of the
	// same GOMAXPROCS and environment class (ns/op across different
	// core counts or host classes measures the machine, not the code;
	// records with no env stamp are the committed "local" reference
	// numbers). Under CI the gate is fatal; interactively it warns,
	// since laptops throttle. Calibration re-runs of this function are
	// exempt: they would compare against their own just-written record.
	if _, rerun := benchRecordSlot["BENCH_campaign.json"]; !rerun {
		for i := len(hist.Records) - 1; i >= 0; i-- {
			prev := hist.Records[i]
			prevEnv := prev.Env
			if prevEnv == "" {
				prevEnv = "local"
			}
			if prev.GOMAXPROCS != runtime.GOMAXPROCS(0) || prev.NsPerOp <= 0 || prevEnv != benchEnv() {
				continue
			}
			if ratio := float64(nsPerOp) / float64(prev.NsPerOp); ratio > campaignRegressionTolerance {
				// Confirm before condemning: a -benchtime 1x sample on a
				// shared runner can catch one noisy-neighbor iteration.
				// Rerun the grid a few times and gate on the best — a
				// real code regression is slow every time, noise is not.
				best := nsPerOp
				for retry := 0; retry < 2 && float64(best)/float64(prev.NsPerOp) > campaignRegressionTolerance; retry++ {
					start := time.Now()
					if _, err := scenario.RunCampaign(c); err != nil {
						b.Fatal(err)
					}
					if ns := time.Since(start).Nanoseconds(); ns < best {
						best = ns
					}
				}
				ratio = float64(best) / float64(prev.NsPerOp)
				if ratio > campaignRegressionTolerance {
					msg := fmt.Sprintf("campaign regressed %.0f%% vs the previous record (%d -> %d ns/op best-of-retries at GOMAXPROCS=%d env=%s, recorded %s)",
						(ratio-1)*100, prev.NsPerOp, best, prev.GOMAXPROCS, prevEnv, prev.Date)
					if os.Getenv("CI") != "" {
						b.Fatal(msg)
					}
					b.Logf("WARNING: %s (non-fatal outside CI)", msg)
				}
			}
			break
		}
	}

	hist.Benchmark = "BenchmarkCampaign"
	hist.Scenarios, hist.Seeds = len(scaled), campaignSeeds
	hist.Nodes, hist.Windows = campaignNodes, campaignWindows
	hist.BeforeNs = campaignBeforeNsPerOp
	hist.Records = appendBenchRecord("BENCH_campaign.json", hist.Records, campaignBenchRecord{
		Date:        time.Now().UTC().Format(time.RFC3339),
		Env:         benchEnv(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Fingerprint: rep.FingerprintSHA256,
		NsPerOp:     nsPerOp,
		Speedup:     speedup,
		CacheHits:   rep.CharactCacheHits,
		CacheMisses: rep.CharactCacheMisses,
	})
	hist.Legacy = legacyCampaignRecord{}
	writeBenchHistory(b, "BENCH_campaign.json", hist)
}

// restoreRegressionTolerance is the BenchmarkSnapshotRestore gate,
// matching the campaign fence: the template stamp may run at most 20%
// slower than the previous record of the same GOMAXPROCS and
// environment class before CI fails.
const restoreRegressionTolerance = 1.20

// BenchmarkSnapshotRestore measures the per-node fixed cost the
// characterization cache charges on every hit: materializing an
// ecosystem from a snapshot. The legacy leg is the reference deep
// restore (Snapshot.Restore — full object-graph rebuild); the template
// leg is the compiled fast path (RestoreTemplate.RestoreInto into a
// warm worker arena — bulk copies, near-zero allocations), which the
// fleet engine now runs by default. Both legs restore the same
// default-spec snapshot, and the ≥5× allocation reduction plus the
// measured ns/op win are enforced, not asserted: the benchmark fails
// if the template path stops beating the legacy one.
func BenchmarkSnapshotRestore(b *testing.B) {
	opts := core.DefaultOptions()
	opts.Seed = 1
	eco, err := core.New(opts)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := eco.PreDeployment(); err != nil {
		b.Fatal(err)
	}
	snap, err := eco.Snapshot()
	if err != nil {
		b.Fatal(err)
	}
	tmpl := snap.Compile()
	arena := core.NewRestoreArena()
	if _, err := tmpl.RestoreInto(arena, core.RestoreOptions{}); err != nil {
		b.Fatal(err) // cold stamp: later iterations measure the warm path
	}

	// measure runs one leg, returning ns/op and allocs/op. Allocations
	// come from the runtime's malloc counter around the timed loop —
	// the same number -benchmem prints, but available programmatically
	// for the history record.
	measure := func(b *testing.B, run func()) (int64, float64) {
		b.ReportAllocs()
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			run()
		}
		b.StopTimer()
		runtime.ReadMemStats(&after)
		return b.Elapsed().Nanoseconds() / int64(b.N),
			float64(after.Mallocs-before.Mallocs) / float64(b.N)
	}

	var legacyNs, tmplNs int64
	var legacyAllocs, tmplAllocs float64
	b.Run("legacy", func(b *testing.B) {
		legacyNs, legacyAllocs = measure(b, func() {
			if _, err := snap.Restore(core.RestoreOptions{}); err != nil {
				b.Fatal(err)
			}
		})
	})
	b.Run("template", func(b *testing.B) {
		tmplNs, tmplAllocs = measure(b, func() {
			if _, err := tmpl.RestoreInto(arena, core.RestoreOptions{}); err != nil {
				b.Fatal(err)
			}
		})
	})
	if legacyNs == 0 || tmplNs == 0 {
		return // a -bench filter skipped a leg; nothing comparable to record
	}
	speedup := float64(legacyNs) / float64(tmplNs)
	b.ReportMetric(speedup, "template_speedup")

	// The tentpole's acceptance criteria, as fences: ≥5× fewer
	// allocations and a measured wall-clock win for the template path.
	if tmplAllocs*5 > legacyAllocs {
		b.Fatalf("template stamp allocates %.1f/op vs legacy %.1f/op — less than the required 5x reduction",
			tmplAllocs, legacyAllocs)
	}
	if tmplNs >= legacyNs {
		msg := fmt.Sprintf("template stamp (%d ns/op) is not faster than legacy deep restore (%d ns/op)",
			tmplNs, legacyNs)
		if os.Getenv("CI") != "" {
			b.Fatal(msg)
		}
		b.Logf("WARNING: %s (non-fatal outside CI)", msg)
	}

	var hist fleetBenchFile
	loadBenchHistory(b, "BENCH_fleet.json", &hist)
	if hist.Legacy.Variants != nil {
		// Same migration BenchmarkFleetRuntime performs, for when this
		// benchmark is the only one run against a pre-history file.
		hist.Records = append(hist.Records, fleetBenchRecord{
			GOMAXPROCS:  hist.Legacy.GOMAXPROCS,
			Fingerprint: hist.Legacy.Fingerprint,
			Variants:    hist.Legacy.Variants,
		})
	}

	// Regression gate on the path the fleet actually runs: compare the
	// template ns/op against the most recent record of the same
	// GOMAXPROCS and environment class. Fatal under CI, a warning
	// interactively; calibration re-runs are exempt; a flagged run is
	// re-measured best-of-retries before being condemned, since a
	// microsecond-scale loop on a shared runner can catch a noisy
	// neighbor.
	const slotKey = "BENCH_fleet.json#restore"
	if _, rerun := benchRecordSlot[slotKey]; !rerun {
		for i := len(hist.Restore) - 1; i >= 0; i-- {
			prev := hist.Restore[i]
			prevEnv := prev.Env
			if prevEnv == "" {
				prevEnv = "local"
			}
			if prev.GOMAXPROCS != runtime.GOMAXPROCS(0) || prev.TemplateNsPerOp <= 0 || prevEnv != benchEnv() {
				continue
			}
			if ratio := float64(tmplNs) / float64(prev.TemplateNsPerOp); ratio > restoreRegressionTolerance {
				best := tmplNs
				for retry := 0; retry < 2 && float64(best)/float64(prev.TemplateNsPerOp) > restoreRegressionTolerance; retry++ {
					const n = 2000
					start := time.Now()
					for i := 0; i < n; i++ {
						if _, err := tmpl.RestoreInto(arena, core.RestoreOptions{}); err != nil {
							b.Fatal(err)
						}
					}
					if ns := time.Since(start).Nanoseconds() / n; ns < best {
						best = ns
					}
				}
				ratio = float64(best) / float64(prev.TemplateNsPerOp)
				if ratio > restoreRegressionTolerance {
					msg := fmt.Sprintf("snapshot restore regressed %.0f%% vs the previous record (%d -> %d ns/op best-of-retries at GOMAXPROCS=%d env=%s, recorded %s)",
						(ratio-1)*100, prev.TemplateNsPerOp, best, prev.GOMAXPROCS, prevEnv, prev.Date)
					if os.Getenv("CI") != "" {
						b.Fatal(msg)
					}
					b.Logf("WARNING: %s (non-fatal outside CI)", msg)
				}
			}
			break
		}
	}

	hist.Restore = appendBenchRecord(slotKey, hist.Restore, restoreBenchRecord{
		Date:            time.Now().UTC().Format(time.RFC3339),
		Env:             benchEnv(),
		GOMAXPROCS:      runtime.GOMAXPROCS(0),
		LegacyNsPerOp:   legacyNs,
		LegacyAllocs:    legacyAllocs,
		TemplateNsPerOp: tmplNs,
		TemplateAllocs:  tmplAllocs,
		Speedup:         speedup,
	})
	hist.Legacy = legacyFleetRecord{}
	writeBenchHistory(b, "BENCH_fleet.json", hist)
}

func runEcosystemOnce(seed uint64) error {
	m := cpu.NewMachine(cpu.PartI5_4200U(), seed)
	margins := cpu.Margins(cpu.PartI5_4200U(), cpu.SPECSuite(), 1, seed)
	if len(margins) == 0 {
		return fmt.Errorf("no margins")
	}
	for w := 0; w < 20; w++ {
		if m.RunAt(0, cpu.SPECSuite()[w%8], margins[0].Safe.VoltageMV).Crashed {
			// Sporadic crash at the safe point is tolerable; the
			// hypervisor masks it.
			continue
		}
	}
	return nil
}
