package telemetry

import (
	"testing"
	"time"

	"uniserver/internal/vfr"
)

func TestClock(t *testing.T) {
	origin := time.Date(2017, 6, 1, 0, 0, 0, 0, time.UTC)
	c := NewClock(origin)
	if !c.Now().Equal(origin) {
		t.Fatal("clock origin wrong")
	}
	got := c.Advance(90 * time.Minute)
	if !got.Equal(origin.Add(90 * time.Minute)) {
		t.Fatal("Advance arithmetic wrong")
	}
	if !c.Now().Equal(got) {
		t.Fatal("Now after Advance wrong")
	}
}

func TestClockPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative Advance did not panic")
		}
	}()
	NewClock(time.Unix(0, 0)).Advance(-time.Second)
}

func TestClockConcurrent(t *testing.T) {
	c := NewClock(time.Unix(0, 0))
	done := make(chan struct{})
	for i := 0; i < 4; i++ {
		go func() {
			for j := 0; j < 1000; j++ {
				c.Advance(time.Millisecond)
			}
			done <- struct{}{}
		}()
	}
	for i := 0; i < 4; i++ {
		<-done
	}
	if got := c.Now(); !got.Equal(time.Unix(0, 0).Add(4 * time.Second)) {
		t.Fatalf("concurrent advances lost updates: %v", got)
	}
}

func TestSensorKindString(t *testing.T) {
	kinds := []SensorKind{SensorVoltage, SensorTemperature, SensorPower, SensorFrequency, SensorRefresh}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if seen[s] {
			t.Fatalf("duplicate sensor name %q", s)
		}
		seen[s] = true
	}
	if SensorKind(99).String() != "sensor(99)" {
		t.Fatal("unknown sensor fallback wrong")
	}
}

func TestPerfCounters(t *testing.T) {
	p := PerfCounters{Instructions: 300, Cycles: 100, CacheMisses: 5}
	if p.IPC() != 3 {
		t.Fatalf("IPC = %v", p.IPC())
	}
	if (PerfCounters{}).IPC() != 0 {
		t.Fatal("zero-cycle IPC should be 0")
	}
	sum := p.Add(PerfCounters{Instructions: 100, Cycles: 100, BranchMisses: 2})
	if sum.Instructions != 400 || sum.Cycles != 200 || sum.CacheMisses != 5 || sum.BranchMisses != 2 {
		t.Fatalf("Add = %+v", sum)
	}
}

func TestErrorKindString(t *testing.T) {
	if ErrCorrectable.String() != "correctable" || ErrCrash.String() != "crash" {
		t.Fatal("error kind names wrong")
	}
	if ErrorKind(42).String() != "error(42)" {
		t.Fatal("unknown error kind fallback wrong")
	}
}

func sampleVector() InfoVector {
	return InfoVector{
		Time:      time.Date(2017, 6, 1, 12, 0, 0, 0, time.UTC),
		Component: "core0",
		Point:     vfr.Point{VoltageMV: 790, FreqMHz: 2600},
		Sensors: []Reading{
			{Kind: SensorVoltage, Value: 790},
			{Kind: SensorTemperature, Value: 61.5},
		},
		Counters: PerfCounters{Instructions: 1e6, Cycles: 5e5},
		Errors: []ErrorEvent{
			{Kind: ErrCorrectable, Component: "core0/L2", Count: 3},
			{Kind: ErrCorrectable, Component: "core0/L1", Count: 2},
		},
	}
}

func TestInfoVectorAccessors(t *testing.T) {
	v := sampleVector()
	if v.CorrectableCount() != 5 {
		t.Fatalf("CorrectableCount = %d", v.CorrectableCount())
	}
	if v.HasCrash() {
		t.Fatal("no crash expected")
	}
	v.Errors = append(v.Errors, ErrorEvent{Kind: ErrCrash, Component: "core0", Count: 1})
	if !v.HasCrash() {
		t.Fatal("crash not detected")
	}
	if temp, ok := v.Sensor(SensorTemperature); !ok || temp != 61.5 {
		t.Fatalf("Sensor(temp) = %v, %v", temp, ok)
	}
	if _, ok := v.Sensor(SensorPower); ok {
		t.Fatal("missing sensor reported present")
	}
}

func TestInfoVectorRoundTrip(t *testing.T) {
	v := sampleVector()
	line, err := v.MarshalLine()
	if err != nil {
		t.Fatal(err)
	}
	if line[len(line)-1] != '\n' {
		t.Fatal("log line must end with newline")
	}
	got, err := UnmarshalLine(line[:len(line)-1])
	if err != nil {
		t.Fatal(err)
	}
	if !got.Time.Equal(v.Time) || got.Component != v.Component ||
		got.Point != v.Point || got.Counters != v.Counters ||
		len(got.Sensors) != len(v.Sensors) || len(got.Errors) != len(v.Errors) {
		t.Fatalf("round trip mismatch:\n%+v\n%+v", v, got)
	}
}

func TestUnmarshalLineError(t *testing.T) {
	if _, err := UnmarshalLine([]byte("{not json")); err == nil {
		t.Fatal("bad line should error")
	}
}

// TestAdvanceCoarseValidates pins the fast-forward primitive's
// contract: unlike Advance (panic on negative, silent on zero),
// AdvanceCoarse rejects non-positive jumps, fractional-window jumps,
// and any jump attempted while the clock sits mid-window.
func TestAdvanceCoarseValidates(t *testing.T) {
	origin := time.Date(2017, 2, 1, 0, 0, 0, 0, time.UTC)
	c := NewClock(origin)
	if _, err := c.AdvanceCoarse(-time.Hour); err == nil {
		t.Fatal("negative coarse advance accepted")
	}
	if _, err := c.AdvanceCoarse(0); err == nil {
		t.Fatal("zero coarse advance accepted")
	}
	if _, err := c.AdvanceCoarse(90 * time.Second); err == nil {
		t.Fatal("fractional-window coarse advance accepted")
	}
	got, err := c.AdvanceCoarse(48 * time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if want := origin.Add(48 * time.Hour); !got.Equal(want) {
		t.Fatalf("coarse advance landed at %v, want %v", got, want)
	}

	// Mid-window: a fine advance that leaves the clock off the window
	// boundary makes every subsequent fast-forward illegal until the
	// window completes.
	c.Advance(30 * time.Second)
	if _, err := c.AdvanceCoarse(24 * time.Hour); err == nil {
		t.Fatal("mid-window fast-forward accepted")
	}
	c.Advance(30 * time.Second) // back on the boundary
	if _, err := c.AdvanceCoarse(24 * time.Hour); err != nil {
		t.Fatalf("boundary fast-forward rejected: %v", err)
	}
}
