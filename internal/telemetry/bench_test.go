package telemetry

import (
	"testing"
	"time"

	"uniserver/internal/vfr"
)

func BenchmarkMarshalLine(b *testing.B) {
	v := InfoVector{
		Time:      time.Unix(1e9, 0),
		Component: "core0",
		Point:     vfr.Point{VoltageMV: 790, FreqMHz: 2600},
		Sensors: []Reading{
			{Kind: SensorVoltage, Value: 790},
			{Kind: SensorTemperature, Value: 61.5},
			{Kind: SensorPower, Value: 7.2},
		},
		Counters: PerfCounters{Instructions: 1e9, Cycles: 5e8, CacheMisses: 1e6},
		Errors:   []ErrorEvent{{Kind: ErrCorrectable, Component: "core0/L2", Count: 3}},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := v.MarshalLine(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkUnmarshalLine(b *testing.B) {
	v := InfoVector{Time: time.Unix(1e9, 0), Component: "core0",
		Point: vfr.Point{VoltageMV: 790, FreqMHz: 2600}}
	line, err := v.MarshalLine()
	if err != nil {
		b.Fatal(err)
	}
	line = line[:len(line)-1]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := UnmarshalLine(line); err != nil {
			b.Fatal(err)
		}
	}
}
