// Package telemetry defines the monitoring vocabulary shared by the
// UniServer daemons: sensor readings, performance counters, hardware
// error events and the "information vector" format in which the
// HealthLog reports the health status of the hardware to the system
// software (Section 3.C of the paper: "records runtime system metrics
// in the form of an information vector, stored in a system logfile",
// extending plain error reporting "with system configuration values,
// sensor readings and performance counters").
//
// The package also provides the simulated clock every daemon runs on,
// so that campaigns spanning simulated months execute in microseconds
// and remain deterministic.
package telemetry

import (
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"uniserver/internal/vfr"
)

// Clock is a manually advanced simulation clock. The zero value starts
// at the Unix epoch; use NewClock to pick an explicit origin. Clock is
// safe for concurrent use.
type Clock struct {
	mu  sync.Mutex
	now time.Time
}

// NewClock returns a clock set to the given origin.
func NewClock(origin time.Time) *Clock {
	return &Clock{now: origin}
}

// Now returns the current simulated time.
func (c *Clock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Advance moves the clock forward by d and returns the new time.
// It panics on negative d: simulated time never flows backwards.
func (c *Clock) Advance(d time.Duration) time.Time {
	if d < 0 {
		panic("telemetry: Advance with negative duration")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
	return c.now
}

// Reset rewinds the clock to an arbitrary origin. Unlike Advance it
// may move time backwards: it exists for arena reuse, where a clock
// object is re-seated at a restore template's snapshot instant before
// a fresh simulation run. Callers must not Reset a clock that other
// goroutines are concurrently advancing.
func (c *Clock) Reset(origin time.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = origin
}

// WindowQuantum is the fine observation-window granularity of the
// runtime loop: one simulated minute. Fast-forward gaps are coarse
// jumps measured in multiples of it.
const WindowQuantum = time.Minute

// AdvanceCoarse is the fast-forward primitive for lifetime gaps: it
// jumps the clock across an unsimulated span (days to months) in one
// call. Unlike Advance — whose panic-on-negative contract silently
// accepts zero — AdvanceCoarse validates and returns errors: the jump
// must be a positive whole number of observation windows, and the
// clock must sit on a window boundary (fast-forwarding mid-window
// would tear the window the fine loop is in the middle of).
func (c *Clock) AdvanceCoarse(d time.Duration) (time.Time, error) {
	if d <= 0 {
		return time.Time{}, fmt.Errorf("telemetry: AdvanceCoarse needs a positive duration, got %v", d)
	}
	if d%WindowQuantum != 0 {
		return time.Time{}, fmt.Errorf("telemetry: AdvanceCoarse duration %v is not a whole number of %v windows", d, WindowQuantum)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.now.Truncate(WindowQuantum).Equal(c.now) {
		return time.Time{}, fmt.Errorf("telemetry: refusing mid-window fast-forward at %v (not on a %v boundary)",
			c.now.Format(time.RFC3339Nano), WindowQuantum)
	}
	c.now = c.now.Add(d)
	return c.now, nil
}

// SensorKind identifies a hardware sensor class.
type SensorKind int

const (
	SensorVoltage     SensorKind = iota // millivolts
	SensorTemperature                   // degrees Celsius
	SensorPower                         // watts
	SensorFrequency                     // MHz
	SensorRefresh                       // refresh interval, milliseconds
)

// String implements fmt.Stringer.
func (k SensorKind) String() string {
	switch k {
	case SensorVoltage:
		return "voltage_mv"
	case SensorTemperature:
		return "temp_c"
	case SensorPower:
		return "power_w"
	case SensorFrequency:
		return "freq_mhz"
	case SensorRefresh:
		return "refresh_ms"
	default:
		return fmt.Sprintf("sensor(%d)", int(k))
	}
}

// Reading is one sensor sample.
type Reading struct {
	Kind  SensorKind `json:"kind"`
	Value float64    `json:"value"`
}

// PerfCounters is the architectural counter snapshot attached to
// information vectors.
type PerfCounters struct {
	Instructions uint64 `json:"instructions"`
	Cycles       uint64 `json:"cycles"`
	CacheMisses  uint64 `json:"cache_misses"`
	BranchMisses uint64 `json:"branch_misses"`
}

// IPC returns instructions per cycle, or 0 when no cycles elapsed.
func (p PerfCounters) IPC() float64 {
	if p.Cycles == 0 {
		return 0
	}
	return float64(p.Instructions) / float64(p.Cycles)
}

// Add returns the sum of two counter snapshots.
func (p PerfCounters) Add(o PerfCounters) PerfCounters {
	return PerfCounters{
		Instructions: p.Instructions + o.Instructions,
		Cycles:       p.Cycles + o.Cycles,
		CacheMisses:  p.CacheMisses + o.CacheMisses,
		BranchMisses: p.BranchMisses + o.BranchMisses,
	}
}

// ErrorKind classifies a hardware error event.
type ErrorKind int

const (
	// ErrCorrectable is a corrected error (cache or DRAM ECC).
	ErrCorrectable ErrorKind = iota
	// ErrUncorrectable is a detected-but-uncorrectable error.
	ErrUncorrectable
	// ErrCrash is a component crash / lockup.
	ErrCrash
	// ErrThermal is a thermal excursion event.
	ErrThermal
)

// String implements fmt.Stringer.
func (k ErrorKind) String() string {
	switch k {
	case ErrCorrectable:
		return "correctable"
	case ErrUncorrectable:
		return "uncorrectable"
	case ErrCrash:
		return "crash"
	case ErrThermal:
		return "thermal"
	default:
		return fmt.Sprintf("error(%d)", int(k))
	}
}

// ErrorEvent is one hardware error observation.
type ErrorEvent struct {
	Kind      ErrorKind `json:"kind"`
	Component string    `json:"component"`
	Count     int       `json:"count"`
	Detail    string    `json:"detail,omitempty"`
}

// InfoVector is the HealthLog's unit of reporting: everything the
// upper layers need to reason about one component over one observation
// window.
type InfoVector struct {
	Time      time.Time    `json:"time"`
	Component string       `json:"component"`
	Point     vfr.Point    `json:"point"`
	Sensors   []Reading    `json:"sensors,omitempty"`
	Counters  PerfCounters `json:"counters"`
	Errors    []ErrorEvent `json:"errors,omitempty"`
}

// CorrectableCount sums correctable error counts in the vector.
func (v InfoVector) CorrectableCount() int {
	n := 0
	for _, e := range v.Errors {
		if e.Kind == ErrCorrectable {
			n += e.Count
		}
	}
	return n
}

// HasCrash reports whether the vector carries a crash event.
func (v InfoVector) HasCrash() bool {
	for _, e := range v.Errors {
		if e.Kind == ErrCrash {
			return true
		}
	}
	return false
}

// Sensor returns the first reading of the given kind.
func (v InfoVector) Sensor(kind SensorKind) (float64, bool) {
	for _, r := range v.Sensors {
		if r.Kind == kind {
			return r.Value, true
		}
	}
	return 0, false
}

// MarshalLine encodes the vector as a single JSON line, the on-disk
// log format of the HealthLog daemon.
func (v InfoVector) MarshalLine() ([]byte, error) {
	b, err := json.Marshal(v)
	if err != nil {
		return nil, fmt.Errorf("telemetry: marshal info vector: %w", err)
	}
	return append(b, '\n'), nil
}

// UnmarshalLine decodes one JSON log line into an InfoVector.
func UnmarshalLine(line []byte) (InfoVector, error) {
	var v InfoVector
	if err := json.Unmarshal(line, &v); err != nil {
		return InfoVector{}, fmt.Errorf("telemetry: unmarshal info vector: %w", err)
	}
	return v, nil
}
