package stats

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Fatalf("Mean = %v, want 2.5", got)
	}
	if got := Mean(nil); got != 0 {
		t.Fatalf("Mean(nil) = %v, want 0", got)
	}
}

func TestVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Variance(xs); !almost(got, 4, 1e-12) {
		t.Fatalf("Variance = %v, want 4", got)
	}
	if got := StdDev(xs); !almost(got, 2, 1e-12) {
		t.Fatalf("StdDev = %v, want 2", got)
	}
	if got := Variance([]float64{1}); got != 0 {
		t.Fatalf("Variance single = %v, want 0", got)
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 0}
	if got := Min(xs); got != -1 {
		t.Fatalf("Min = %v", got)
	}
	if got := Max(xs); got != 7 {
		t.Fatalf("Max = %v", got)
	}
}

func TestMinPanicsEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Min(empty) did not panic")
		}
	}()
	Min(nil)
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ p, want float64 }{
		{0, 1}, {25, 2}, {50, 3}, {75, 4}, {100, 5},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); !almost(got, c.want, 1e-12) {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if got := Percentile([]float64{42}, 99); got != 42 {
		t.Errorf("Percentile single = %v, want 42", got)
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{5, 1, 3}
	Percentile(xs, 50)
	if xs[0] != 5 || xs[1] != 1 || xs[2] != 3 {
		t.Fatalf("Percentile mutated input: %v", xs)
	}
}

func TestPercentileBoundsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Percentile(101) did not panic")
		}
	}()
	Percentile([]float64{1}, 101)
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.P50 != 3 {
		t.Fatalf("unexpected summary: %+v", s)
	}
	if !strings.Contains(s.String(), "n=5") {
		t.Fatalf("summary string missing n: %s", s)
	}
	if z := Summarize(nil); z.N != 0 {
		t.Fatalf("Summarize(nil) = %+v", z)
	}
}

func TestPercentileOrderProperty(t *testing.T) {
	err := quick.Check(func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		p25 := Percentile(xs, 25)
		p50 := Percentile(xs, 50)
		p75 := Percentile(xs, 75)
		return p25 <= p50 && p50 <= p75 && Min(xs) <= p25 && p75 <= Max(xs)
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestPercentileMatchesSortEndpoints(t *testing.T) {
	err := quick.Check(func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		return Percentile(xs, 0) == sorted[0] && Percentile(xs, 100) == sorted[len(sorted)-1]
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, v := range []float64{-1, 0, 1.9, 2, 5, 9.99, 10, 11} {
		h.Add(v)
	}
	if h.Underflow != 1 {
		t.Errorf("Underflow = %d, want 1", h.Underflow)
	}
	if h.Overflow != 2 {
		t.Errorf("Overflow = %d, want 2", h.Overflow)
	}
	if h.Total() != 5 {
		t.Errorf("Total = %d, want 5", h.Total())
	}
	if h.Counts[0] != 2 { // 0 and 1.9
		t.Errorf("bucket 0 = %d, want 2", h.Counts[0])
	}
	if h.Counts[1] != 1 { // 2
		t.Errorf("bucket 1 = %d, want 1", h.Counts[1])
	}
	if h.Counts[4] != 1 { // 9.99
		t.Errorf("bucket 4 = %d, want 1", h.Counts[4])
	}
}

func TestHistogramBucketCenter(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	if got := h.BucketCenter(0); got != 1 {
		t.Fatalf("BucketCenter(0) = %v, want 1", got)
	}
	if got := h.BucketCenter(4); got != 9 {
		t.Fatalf("BucketCenter(4) = %v, want 9", got)
	}
}

func TestHistogramString(t *testing.T) {
	h := NewHistogram(0, 2, 2)
	h.Add(0.5)
	h.Add(1.5)
	h.Add(1.6)
	s := h.String()
	if !strings.Contains(s, "#") {
		t.Fatalf("histogram rendering missing bars:\n%s", s)
	}
	if len(strings.Split(strings.TrimSpace(s), "\n")) != 2 {
		t.Fatalf("histogram should render 2 lines:\n%s", s)
	}
}

func TestHistogramPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewHistogram(0,0,1) did not panic")
		}
	}()
	NewHistogram(0, 0, 1)
}

func TestHistogramConservesCount(t *testing.T) {
	err := quick.Check(func(raw []float64) bool {
		h := NewHistogram(-100, 100, 13)
		n := 0
		for _, v := range raw {
			if math.IsNaN(v) {
				continue
			}
			h.Add(v)
			n++
		}
		return h.Total()+h.Underflow+h.Overflow == n
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}
