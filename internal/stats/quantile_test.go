package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNormalQuantileKnownValues(t *testing.T) {
	cases := []struct{ p, want, tol float64 }{
		{0.5, 0, 1e-9},
		{0.8413447460685429, 1, 1e-6},
		{0.15865525393145707, -1, 1e-6},
		{0.9772498680518208, 2, 1e-6},
		{0.9999997133484281, 5, 1e-5},
		{1e-9, -5.9978, 1e-3},
	}
	for _, c := range cases {
		if got := NormalQuantile(c.p); math.Abs(got-c.want) > c.tol {
			t.Errorf("NormalQuantile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestNormalQuantilePanics(t *testing.T) {
	for _, p := range []float64{0, 1, -0.5, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NormalQuantile(%v) did not panic", p)
				}
			}()
			NormalQuantile(p)
		}()
	}
}

func TestNormalCDFKnownValues(t *testing.T) {
	if got := NormalCDF(0); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("Phi(0) = %v", got)
	}
	if got := NormalCDF(1.96); math.Abs(got-0.975) > 1e-3 {
		t.Errorf("Phi(1.96) = %v", got)
	}
	if got := NormalCDF(-6); got > 1.1e-9 || got < 0.9e-9 {
		t.Errorf("Phi(-6) = %v, want ~1e-9", got)
	}
}

func TestQuantileCDFInverseProperty(t *testing.T) {
	err := quick.Check(func(raw uint32) bool {
		// p spread across (1e-12, 1-1e-12) with log emphasis on tails.
		u := float64(raw)/float64(math.MaxUint32)*0.999998 + 1e-6
		x := NormalQuantile(u)
		back := NormalCDF(x)
		return math.Abs(back-u) < 1e-6
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestQuantileMonotoneProperty(t *testing.T) {
	err := quick.Check(func(ra, rb uint32) bool {
		pa := float64(ra)/float64(math.MaxUint32)*0.998 + 0.001
		pb := float64(rb)/float64(math.MaxUint32)*0.998 + 0.001
		if pa == pb {
			return true
		}
		if pa > pb {
			pa, pb = pb, pa
		}
		return NormalQuantile(pa) <= NormalQuantile(pb)
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestQuantileDeepTail(t *testing.T) {
	// The DRAM simulator samples at p ~ 1e-12; verify sane values.
	x := NormalQuantile(1e-12)
	if x > -6.5 || x < -7.5 {
		t.Fatalf("NormalQuantile(1e-12) = %v, want ~-7.03", x)
	}
}
