// Package stats provides the small set of descriptive statistics used
// by the characterization harnesses and benchmark reporters: means,
// standard deviations, percentiles, min/max summaries and fixed-width
// histograms. It exists so that every experiment reports numbers
// through one audited code path.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the population variance of xs, or 0 when fewer than
// two samples are present.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return sum / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	return math.Sqrt(Variance(xs))
}

// Min returns the minimum of xs. It panics on an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Min of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs. It panics on an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Max of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using
// linear interpolation between closest ranks. It panics on an empty
// slice or an out-of-range p.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		panic("stats: Percentile of empty slice")
	}
	if p < 0 || p > 100 {
		panic("stats: Percentile out of range")
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median returns the 50th percentile of xs.
func Median(xs []float64) float64 { return Percentile(xs, 50) }

// Summary captures the descriptive statistics of one metric series.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	Min    float64
	P50    float64
	P95    float64
	Max    float64
}

// Summarize computes a Summary for xs. An empty input yields a zero
// Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	return Summary{
		N:      len(xs),
		Mean:   Mean(xs),
		StdDev: StdDev(xs),
		Min:    Min(xs),
		P50:    Median(xs),
		P95:    Percentile(xs, 95),
		Max:    Max(xs),
	}
}

// String renders the summary as a single human-readable line.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g sd=%.4g min=%.4g p50=%.4g p95=%.4g max=%.4g",
		s.N, s.Mean, s.StdDev, s.Min, s.P50, s.P95, s.Max)
}

// Histogram is a fixed-width histogram over [Lo, Hi) with overflow and
// underflow buckets tracked separately.
type Histogram struct {
	Lo, Hi    float64
	Counts    []int
	Underflow int
	Overflow  int
}

// NewHistogram returns a histogram with the given number of equal-width
// buckets spanning [lo, hi). It panics if buckets <= 0 or hi <= lo.
func NewHistogram(lo, hi float64, buckets int) *Histogram {
	if buckets <= 0 {
		panic("stats: NewHistogram with non-positive bucket count")
	}
	if hi <= lo {
		panic("stats: NewHistogram with hi <= lo")
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, buckets)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	switch {
	case x < h.Lo:
		h.Underflow++
	case x >= h.Hi:
		h.Overflow++
	default:
		idx := int((x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Counts)))
		if idx == len(h.Counts) { // guard float rounding at upper edge
			idx--
		}
		h.Counts[idx]++
	}
}

// Total returns the number of in-range observations.
func (h *Histogram) Total() int {
	t := 0
	for _, c := range h.Counts {
		t += c
	}
	return t
}

// BucketCenter returns the midpoint of bucket i.
func (h *Histogram) BucketCenter(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + w*(float64(i)+0.5)
}

// String renders the histogram as an ASCII bar chart, one bucket per
// line, scaled so the widest bar is 40 characters.
func (h *Histogram) String() string {
	max := 0
	for _, c := range h.Counts {
		if c > max {
			max = c
		}
	}
	var b strings.Builder
	for i, c := range h.Counts {
		bar := 0
		if max > 0 {
			bar = c * 40 / max
		}
		fmt.Fprintf(&b, "%10.4g | %-40s %d\n", h.BucketCenter(i), strings.Repeat("#", bar), c)
	}
	return b.String()
}
