// Package power implements the analytical power and energy models the
// UniServer stack uses to price operating points: CMOS dynamic and
// leakage power for the CPU domain, DRAM refresh power, and the
// edge-versus-cloud voltage/frequency scaling arithmetic of Section
// 6.D of the paper ("operating at 50% of the peak frequency with 30%
// less voltage translates to running with 50% less energy and 75% less
// power").
package power

import (
	"fmt"
	"math"
	"time"

	"uniserver/internal/vfr"
)

// CPUModel prices a CPU domain at arbitrary operating points using the
// classic decomposition P = alpha·C·V²·f + V·Ileak(V, T).
type CPUModel struct {
	// SwitchedCapNF is the effective switched capacitance alpha·C in
	// nanofarads, aggregated over the modeled cores.
	SwitchedCapNF float64
	// LeakRefMA is the leakage current in milliamperes at the
	// reference voltage and temperature.
	LeakRefMA float64
	// RefVoltageMV and RefTempC anchor the leakage model.
	RefVoltageMV int
	RefTempC     float64
	// VoltExp models the super-linear dependence of leakage on supply
	// voltage (DIBL); a typical value is 2-3.
	VoltExp float64
	// TempCoeffPerC models the exponential dependence of leakage on
	// temperature; a typical value is ~0.02/°C (doubling every ~35°C).
	TempCoeffPerC float64
}

// DefaultCPUModel returns a model calibrated so that a 4-core mobile
// part at 0.844 V / 2.6 GHz dissipates on the order of 15 W, with
// leakage contributing roughly a quarter at reference conditions —
// representative of the low-end i5-4200U class used in the paper.
func DefaultCPUModel() CPUModel {
	return CPUModel{
		SwitchedCapNF: 6.2,
		LeakRefMA:     4400,
		RefVoltageMV:  844,
		RefTempC:      55,
		VoltExp:       2.4,
		TempCoeffPerC: 0.018,
	}
}

// DynamicW returns the dynamic power in watts at the given point,
// scaled by the activity factor (0..1, where 1 is a power virus).
func (m CPUModel) DynamicW(p vfr.Point, activity float64) float64 {
	v := float64(p.VoltageMV) / 1000
	f := float64(p.FreqMHz) * 1e6
	return activity * m.SwitchedCapNF * 1e-9 * v * v * f
}

// LeakageW returns the static power in watts at the given voltage and
// temperature.
func (m CPUModel) LeakageW(p vfr.Point, tempC float64) float64 {
	v := float64(p.VoltageMV) / 1000
	vref := float64(m.RefVoltageMV) / 1000
	scale := math.Pow(v/vref, m.VoltExp) * math.Exp(m.TempCoeffPerC*(tempC-m.RefTempC))
	return v * m.LeakRefMA * 1e-3 * scale
}

// TotalW returns dynamic plus leakage power in watts.
func (m CPUModel) TotalW(p vfr.Point, activity, tempC float64) float64 {
	return m.DynamicW(p, activity) + m.LeakageW(p, tempC)
}

// EnergyJ returns the energy in joules to run for the given duration
// at constant activity and temperature.
func (m CPUModel) EnergyJ(p vfr.Point, activity, tempC float64, d time.Duration) float64 {
	return m.TotalW(p, activity, tempC) * d.Seconds()
}

// EnergyPerWorkJ returns the energy to complete a fixed amount of work
// (cycles) at the given point: work that takes baselineSeconds at
// baselineFreqMHz stretches inversely with frequency.
func (m CPUModel) EnergyPerWorkJ(p vfr.Point, activity, tempC float64, baselineSeconds float64, baselineFreqMHz int) float64 {
	if p.FreqMHz <= 0 {
		return math.Inf(1)
	}
	runtime := baselineSeconds * float64(baselineFreqMHz) / float64(p.FreqMHz)
	return m.TotalW(p, activity, tempC) * runtime
}

// DynamicScalingFactor returns the ratio of dynamic power at
// (voltageScale, freqScale) relative to nominal: voltageScale²·freqScale.
// This is the pure-CMOS arithmetic behind the paper's Section 6.D
// numbers: voltageScale=0.7, freqScale=0.5 gives 0.245 (≈75% less
// power), and with runtime doubled, energy scale 0.49 (≈50% less
// energy).
func DynamicScalingFactor(voltageScale, freqScale float64) float64 {
	return voltageScale * voltageScale * freqScale
}

// EnergyScalingFactor returns the ratio of energy-to-completion for a
// fixed amount of work at the scaled point relative to nominal,
// assuming runtime scales as 1/freqScale.
func EnergyScalingFactor(voltageScale, freqScale float64) float64 {
	if freqScale <= 0 {
		return math.Inf(1)
	}
	return DynamicScalingFactor(voltageScale, freqScale) / freqScale
}

// DRAMRefreshModel prices DRAM refresh power as a share of total
// memory power. The paper (citing RAIDR, ISCA 2013) notes refresh is
// ~9% of memory power for 2 Gb DIMMs and is projected to exceed 34%
// for 32 Gb DIMMs; refresh energy scales inversely with the refresh
// interval.
type DRAMRefreshModel struct {
	// DeviceGb is the per-device density in gigabits.
	DeviceGb int
	// TotalMemW is the total memory-subsystem power at the nominal
	// 64 ms refresh interval, in watts.
	TotalMemW float64
}

// refreshShareByDensity interpolates the refresh share of total memory
// power as a function of device density, anchored at the two published
// points (2 Gb → 9%, 32 Gb → 34%) with log2 interpolation between and
// beyond (clamped to [0.02, 0.60]).
func refreshShareByDensity(deviceGb int) float64 {
	if deviceGb <= 0 {
		return 0
	}
	// Anchors: log2(2)=1 → 0.09, log2(32)=5 → 0.34.
	l := math.Log2(float64(deviceGb))
	share := 0.09 + (0.34-0.09)*(l-1)/4
	if share < 0.02 {
		share = 0.02
	}
	if share > 0.60 {
		share = 0.60
	}
	return share
}

// NominalRefreshShare returns the fraction of total memory power spent
// on refresh at the nominal 64 ms interval for this device density.
func (m DRAMRefreshModel) NominalRefreshShare() float64 {
	return refreshShareByDensity(m.DeviceGb)
}

// RefreshW returns the refresh power in watts at the given refresh
// interval: refresh operations per second scale as 64ms/interval.
func (m DRAMRefreshModel) RefreshW(interval time.Duration) float64 {
	if interval <= 0 {
		return math.Inf(1)
	}
	nominal := m.TotalMemW * m.NominalRefreshShare()
	return nominal * float64(vfr.NominalRefresh) / float64(interval)
}

// TotalW returns the total memory power at the given refresh interval,
// holding the non-refresh component constant.
func (m DRAMRefreshModel) TotalW(interval time.Duration) float64 {
	base := m.TotalMemW * (1 - m.NominalRefreshShare())
	return base + m.RefreshW(interval)
}

// SavingsPct returns the percentage of total memory power saved by
// relaxing refresh from nominal (64 ms) to the given interval.
func (m DRAMRefreshModel) SavingsPct(interval time.Duration) float64 {
	return 100 * (m.TotalW(vfr.NominalRefresh) - m.TotalW(interval)) / m.TotalW(vfr.NominalRefresh)
}

// Budget tracks a node power budget and utilization against it.
type Budget struct {
	CapW float64
}

// Headroom returns how many watts remain under the cap for the given
// draw; negative means the cap is exceeded.
func (b Budget) Headroom(drawW float64) float64 { return b.CapW - drawW }

// Validate returns an error when the budget is non-positive.
func (b Budget) Validate() error {
	if b.CapW <= 0 {
		return fmt.Errorf("power: non-positive budget cap %v", b.CapW)
	}
	return nil
}
