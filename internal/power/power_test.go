package power

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"uniserver/internal/vfr"
)

var nominal = vfr.Point{VoltageMV: 844, FreqMHz: 2600}

func TestDynamicScalesQuadraticallyWithVoltage(t *testing.T) {
	m := DefaultCPUModel()
	p1 := m.DynamicW(nominal, 1)
	p2 := m.DynamicW(nominal.WithVoltage(422), 1) // half voltage
	ratio := p1 / p2
	if math.Abs(ratio-4) > 1e-9 {
		t.Fatalf("dynamic power ratio at half voltage = %v, want 4", ratio)
	}
}

func TestDynamicScalesLinearlyWithFrequency(t *testing.T) {
	m := DefaultCPUModel()
	half := nominal
	half.FreqMHz = nominal.FreqMHz / 2
	ratio := m.DynamicW(nominal, 1) / m.DynamicW(half, 1)
	if math.Abs(ratio-2) > 1e-9 {
		t.Fatalf("dynamic power ratio at half frequency = %v, want 2", ratio)
	}
}

func TestDynamicScalesWithActivity(t *testing.T) {
	m := DefaultCPUModel()
	if m.DynamicW(nominal, 0) != 0 {
		t.Fatal("zero activity should dissipate zero dynamic power")
	}
	if m.DynamicW(nominal, 0.5) >= m.DynamicW(nominal, 1.0) {
		t.Fatal("dynamic power should increase with activity")
	}
}

func TestLeakageIncreasesWithTemperatureAndVoltage(t *testing.T) {
	m := DefaultCPUModel()
	cold := m.LeakageW(nominal, 40)
	hot := m.LeakageW(nominal, 90)
	if hot <= cold {
		t.Fatalf("leakage at 90C (%v) should exceed 40C (%v)", hot, cold)
	}
	low := m.LeakageW(nominal.WithVoltage(700), 55)
	high := m.LeakageW(nominal, 55)
	if high <= low {
		t.Fatalf("leakage at 844mV (%v) should exceed 700mV (%v)", high, low)
	}
}

func TestDefaultModelMagnitude(t *testing.T) {
	m := DefaultCPUModel()
	w := m.TotalW(nominal, 0.7, 55)
	if w < 5 || w > 40 {
		t.Fatalf("total power at nominal = %vW, want a plausible 5-40W", w)
	}
}

func TestEnergyIntegration(t *testing.T) {
	m := DefaultCPUModel()
	w := m.TotalW(nominal, 0.5, 55)
	e := m.EnergyJ(nominal, 0.5, 55, 2*time.Second)
	if math.Abs(e-2*w) > 1e-9 {
		t.Fatalf("EnergyJ = %v, want %v", e, 2*w)
	}
}

func TestEnergyPerWorkRuntimeStretch(t *testing.T) {
	m := DefaultCPUModel()
	// Same work at half frequency takes 2x the time.
	half := nominal
	half.FreqMHz = nominal.FreqMHz / 2
	eNom := m.EnergyPerWorkJ(nominal, 1, 55, 10, nominal.FreqMHz)
	eHalf := m.EnergyPerWorkJ(half, 1, 55, 10, nominal.FreqMHz)
	// At equal voltage, halving f halves dynamic power but doubles
	// runtime: dynamic energy unchanged, leakage energy doubled, so
	// total energy must rise.
	if eHalf <= eNom {
		t.Fatalf("half-frequency same-voltage energy (%v) should exceed nominal (%v)", eHalf, eNom)
	}
	if got := m.EnergyPerWorkJ(nominal.WithVoltage(844), 1, 55, 10, 0); !math.IsInf(m.EnergyPerWorkJ(vfr.Point{VoltageMV: 844}, 1, 55, 10, 2600), 1) {
		_ = got
		t.Fatal("zero frequency should yield infinite energy")
	}
}

func TestSection6DScalingNumbers(t *testing.T) {
	// Paper: 50% frequency with 30% less voltage -> 75% less power,
	// 50% less energy.
	power := DynamicScalingFactor(0.7, 0.5)
	if math.Abs(power-0.245) > 1e-12 {
		t.Fatalf("power scale = %v, want 0.245 (75.5%% reduction)", power)
	}
	energy := EnergyScalingFactor(0.7, 0.5)
	if math.Abs(energy-0.49) > 1e-12 {
		t.Fatalf("energy scale = %v, want 0.49 (51%% reduction)", energy)
	}
	if !math.IsInf(EnergyScalingFactor(0.7, 0), 1) {
		t.Fatal("zero frequency scale should be infinite energy")
	}
}

func TestRefreshShareAnchors(t *testing.T) {
	m2 := DRAMRefreshModel{DeviceGb: 2, TotalMemW: 10}
	if got := m2.NominalRefreshShare(); math.Abs(got-0.09) > 1e-12 {
		t.Fatalf("2Gb refresh share = %v, want 0.09", got)
	}
	m32 := DRAMRefreshModel{DeviceGb: 32, TotalMemW: 10}
	if got := m32.NominalRefreshShare(); math.Abs(got-0.34) > 1e-12 {
		t.Fatalf("32Gb refresh share = %v, want 0.34", got)
	}
	if refreshShareByDensity(0) != 0 {
		t.Fatal("zero density should have zero share")
	}
	if s := refreshShareByDensity(1 << 10); s > 0.60 {
		t.Fatalf("share should clamp at 0.60, got %v", s)
	}
}

func TestRefreshPowerScalesInversely(t *testing.T) {
	m := DRAMRefreshModel{DeviceGb: 2, TotalMemW: 10}
	at64 := m.RefreshW(vfr.NominalRefresh)
	at128 := m.RefreshW(128 * time.Millisecond)
	if math.Abs(at64/at128-2) > 1e-9 {
		t.Fatalf("refresh power ratio 64ms/128ms = %v, want 2", at64/at128)
	}
	if !math.IsInf(m.RefreshW(0), 1) {
		t.Fatal("zero interval should be infinite power")
	}
}

func TestRefreshSavings(t *testing.T) {
	m := DRAMRefreshModel{DeviceGb: 2, TotalMemW: 10}
	// Relaxing 64ms -> 1.5s should recover nearly the whole 9% share.
	s := m.SavingsPct(1500 * time.Millisecond)
	if s < 8.5 || s > 9 {
		t.Fatalf("savings at 1.5s = %v%%, want ~8.6-9%%", s)
	}
	if m.SavingsPct(vfr.NominalRefresh) != 0 {
		t.Fatal("no savings at nominal refresh")
	}
	m32 := DRAMRefreshModel{DeviceGb: 32, TotalMemW: 10}
	if s32 := m32.SavingsPct(5 * time.Second); s32 < 33 {
		t.Fatalf("32Gb savings at 5s = %v%%, want >33%%", s32)
	}
}

func TestBudget(t *testing.T) {
	b := Budget{CapW: 100}
	if b.Headroom(70) != 30 {
		t.Fatal("headroom arithmetic wrong")
	}
	if b.Headroom(130) != -30 {
		t.Fatal("negative headroom arithmetic wrong")
	}
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Budget{}).Validate(); err == nil {
		t.Fatal("zero budget should be invalid")
	}
}

func TestPowerMonotonicInVoltageProperty(t *testing.T) {
	m := DefaultCPUModel()
	err := quick.Check(func(raw uint16, delta uint8) bool {
		v := 500 + int(raw)%800  // 500..1299 mV
		dv := 1 + int(delta)%200 // 1..200 mV
		p1 := vfr.Point{VoltageMV: v, FreqMHz: 2000}
		p2 := vfr.Point{VoltageMV: v + dv, FreqMHz: 2000}
		return m.TotalW(p2, 0.8, 55) > m.TotalW(p1, 0.8, 55)
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestEnergyScalingConsistencyProperty(t *testing.T) {
	err := quick.Check(func(rv, rf uint8) bool {
		vs := 0.5 + float64(rv%50)/100 // 0.5..0.99
		fs := 0.3 + float64(rf%70)/100 // 0.3..0.99
		// Energy scale = power scale / freq scale, always.
		return math.Abs(EnergyScalingFactor(vs, fs)-DynamicScalingFactor(vs, fs)/fs) < 1e-12
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}
