package openstack

import (
	"testing"

	"uniserver/internal/rng"
	"uniserver/internal/workload"
)

func monitoredManager(t *testing.T) (*Manager, *Monitor) {
	t.Helper()
	m, _, _ := twoNodeManager(t, UniServerPolicy())
	if _, err := m.Schedule(spec("vm-a", 2, 4<<30), SLAGold); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Schedule(spec("vm-b", 1, 2<<30), SLABronze); err != nil {
		t.Fatal(err)
	}
	return m, NewMonitor(64)
}

func TestSampleFleetBuildsHistory(t *testing.T) {
	m, mon := monitoredManager(t)
	src := rng.New(1)
	for w := 0; w < 20; w++ {
		mon.SampleFleet(m, src)
	}
	names := mon.Monitored()
	if len(names) != 2 || names[0] != "vm-a" || names[1] != "vm-b" {
		t.Fatalf("monitored = %v", names)
	}
	d, err := mon.Dynamics(m, "vm-a")
	if err != nil {
		t.Fatal(err)
	}
	if d.Samples != 20 {
		t.Fatalf("samples = %d", d.Samples)
	}
	p := workload.IoTEdgeAnalytics()
	if d.CPUMean < p.CPUActivity-0.1 || d.CPUMean > p.CPUActivity+0.1 {
		t.Fatalf("cpu mean = %v, profile activity %v", d.CPUMean, p.CPUActivity)
	}
	if d.CPUStdDev <= 0 || d.CPUStdDev > 0.2 {
		t.Fatalf("cpu stddev = %v", d.CPUStdDev)
	}
	if d.MemMeanBytes == 0 || d.MemMeanBytes > 4<<30 {
		t.Fatalf("mem mean = %d", d.MemMeanBytes)
	}
}

func TestDynamicsErrorsForUnknown(t *testing.T) {
	m, mon := monitoredManager(t)
	if _, err := mon.Dynamics(m, "ghost"); err == nil {
		t.Fatal("unknown VM accepted")
	}
}

func TestHistoryRetentionBound(t *testing.T) {
	m, mon := monitoredManager(t)
	src := rng.New(2)
	for w := 0; w < 200; w++ {
		mon.SampleFleet(m, src)
	}
	d, err := mon.Dynamics(m, "vm-a")
	if err != nil {
		t.Fatal(err)
	}
	if d.Samples != 64 {
		t.Fatalf("retained %d samples, want 64", d.Samples)
	}
}

func TestRightSizingCandidates(t *testing.T) {
	m, mon := monitoredManager(t)
	src := rng.New(3)
	for w := 0; w < 30; w++ {
		mon.SampleFleet(m, src)
	}
	// vm-a was allocated 4 GiB against a 512 MiB working set: heavily
	// over-allocated once the ramp finishes.
	cands := mon.RightSizingCandidates(m, 3)
	found := false
	for _, d := range cands {
		if d.VM == "vm-a" {
			found = true
			if d.OverallocRatio < 3 {
				t.Fatalf("overalloc = %v", d.OverallocRatio)
			}
		}
	}
	if !found {
		t.Fatalf("vm-a not flagged for right-sizing: %+v", cands)
	}
	if len(mon.RightSizingCandidates(m, 1e9)) != 0 {
		t.Fatal("absurd threshold should match nothing")
	}
}

func TestSampleSkipsOfflineNodes(t *testing.T) {
	m, a, b := twoNodeManager(t, UniServerPolicy())
	if _, err := m.Schedule(spec("vm", 1, 2<<30), SLABronze); err != nil {
		t.Fatal(err)
	}
	a.online = false
	b.online = false
	mon := NewMonitor(8)
	mon.SampleFleet(m, rng.New(4))
	if len(mon.Monitored()) != 0 {
		t.Fatal("offline nodes sampled")
	}
}
