package openstack

import (
	"testing"
	"time"

	"uniserver/internal/rng"
	"uniserver/internal/vfr"
	"uniserver/internal/workload"
)

func spec(name string, vcpus int, mem uint64) workload.VMSpec {
	p := workload.IoTEdgeAnalytics()
	if mem < p.MemTargetBytes {
		mem = p.MemTargetBytes
	}
	return workload.VMSpec{Name: name, VCPUs: vcpus, MemBytes: mem, Profile: p}
}

func twoNodeManager(t *testing.T, policy Policy) (*Manager, *Node, *Node) {
	t.Helper()
	a := NewNode("node-a", 8, 32<<30, 0.0001)
	b := NewNode("node-b", 8, 32<<30, 0.0001)
	m, err := NewManager(policy, a, b)
	if err != nil {
		t.Fatal(err)
	}
	return m, a, b
}

func TestNewManagerValidation(t *testing.T) {
	if _, err := NewManager(UniServerPolicy()); err == nil {
		t.Fatal("empty fleet accepted")
	}
	n := NewNode("x", 4, 1<<30, 0.001)
	if _, err := NewManager(UniServerPolicy(), n, n); err == nil {
		t.Fatal("duplicate node accepted")
	}
}

func TestNodeFailProbByMode(t *testing.T) {
	n := NewNode("x", 4, 1<<30, 0.001)
	nominal := n.FailProb()
	n.Mode = vfr.ModeLowPower
	eop := n.FailProb()
	if eop <= nominal {
		t.Fatalf("EOP mode should raise failure probability: %v <= %v", eop, nominal)
	}
	n.BaseFailProb = 0.9
	if n.FailProb() > 1 {
		t.Fatal("failure probability must clamp at 1")
	}
}

func TestNodePowerByMode(t *testing.T) {
	n := NewNode("x", 4, 8<<30, 0.001)
	n.place(&Instance{Spec: spec("v", 2, 1<<30)})
	nominal := n.Metrics().PowerW
	n.Mode = vfr.ModeHighPerformance
	hp := n.Metrics().PowerW
	n.Mode = vfr.ModeLowPower
	lp := n.Metrics().PowerW
	if !(lp < hp && hp < nominal) {
		t.Fatalf("power ordering wrong: lp=%v hp=%v nominal=%v", lp, hp, nominal)
	}
}

func TestScheduleFiltersCapacity(t *testing.T) {
	m, a, _ := twoNodeManager(t, UniServerPolicy())
	// Fill node-a's memory so only node-b fits.
	a.usedMem = a.MemBytes
	node, err := m.Schedule(spec("vm1", 2, 1<<30), SLABronze)
	if err != nil {
		t.Fatal(err)
	}
	if node != "node-b" {
		t.Fatalf("scheduled on %s, want node-b", node)
	}
}

func TestScheduleEnforcesSLA(t *testing.T) {
	m, a, b := twoNodeManager(t, UniServerPolicy())
	a.BaseFailProb = 0.03 // too flaky for gold (0.0005)
	b.BaseFailProb = 0.0001
	node, err := m.Schedule(spec("gold-vm", 2, 1<<30), SLAGold)
	if err != nil {
		t.Fatal(err)
	}
	if node != "node-b" {
		t.Fatalf("gold VM scheduled on flaky node %s", node)
	}
	// A request no node satisfies is rejected.
	b.BaseFailProb = 0.03
	if _, err := m.Schedule(spec("gold-vm2", 2, 1<<30), SLAGold); err == nil {
		t.Fatal("infeasible gold request accepted")
	}
	if m.Rejected != 1 {
		t.Fatalf("rejected = %d", m.Rejected)
	}
}

func TestLegacyPolicyIgnoresReliability(t *testing.T) {
	m, a, b := twoNodeManager(t, LegacyPolicy())
	a.BaseFailProb = 0.2 // terrible, but legacy does not care
	b.BaseFailProb = 0.0001
	b.usedVCPUs = 7 // make b look busy so spread prefers a
	node, err := m.Schedule(spec("vm1", 1, 1<<30), SLAGold)
	if err != nil {
		t.Fatal(err)
	}
	if node != "node-a" {
		t.Fatalf("legacy policy scheduled on %s; expected utilization-driven node-a", node)
	}
}

func TestSchedulePrefersReliableNode(t *testing.T) {
	m, a, b := twoNodeManager(t, UniServerPolicy())
	a.BaseFailProb = 0.04
	b.BaseFailProb = 0.0001
	node, err := m.Schedule(spec("vm1", 1, 1<<30), SLABronze) // bronze tolerates both
	if err != nil {
		t.Fatal(err)
	}
	if node != "node-b" {
		t.Fatalf("reliability-aware policy chose %s", node)
	}
}

func TestScheduleValidatesSpec(t *testing.T) {
	m, _, _ := twoNodeManager(t, UniServerPolicy())
	bad := workload.VMSpec{Name: "", VCPUs: 1, MemBytes: 1 << 30}
	if _, err := m.Schedule(bad, SLABronze); err == nil {
		t.Fatal("invalid spec accepted")
	}
}

func TestTerminate(t *testing.T) {
	m, _, _ := twoNodeManager(t, UniServerPolicy())
	if _, err := m.Schedule(spec("vm1", 1, 1<<30), SLABronze); err != nil {
		t.Fatal(err)
	}
	if !m.Terminate("vm1") {
		t.Fatal("terminate failed")
	}
	if m.Terminate("vm1") {
		t.Fatal("double terminate succeeded")
	}
	for _, n := range m.Nodes() {
		if len(n.Instances()) != 0 {
			t.Fatal("instance left behind")
		}
		if n.usedVCPUs != 0 || n.usedMem != 0 {
			t.Fatal("resources not released")
		}
	}
}

func TestProactiveMigrationDrainsRiskyNode(t *testing.T) {
	m, a, b := twoNodeManager(t, UniServerPolicy())
	if _, err := m.Schedule(spec("gold-vm", 1, 1<<30), SLAGold); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Schedule(spec("bronze-vm", 1, 1<<30), SLABronze); err != nil {
		t.Fatal(err)
	}
	// Everything lands somewhere across a/b; force both onto a.
	for _, inst := range b.Instances() {
		b.remove(inst.Spec.Name)
		a.place(inst)
	}
	a.BaseFailProb = 0.1 // predictor flags node-a
	moved := m.ProactiveMigration()
	if moved != 2 {
		t.Fatalf("moved = %d, want 2", moved)
	}
	if len(a.Instances()) != 0 {
		t.Fatal("risky node not drained")
	}
	if len(b.Instances()) != 2 {
		t.Fatal("instances did not land on healthy node")
	}
	if m.Migrations != 2 {
		t.Fatalf("migration count = %d", m.Migrations)
	}
}

func TestProactiveMigrationDisabledByPolicy(t *testing.T) {
	m, a, _ := twoNodeManager(t, LegacyPolicy())
	if _, err := m.Schedule(spec("vm1", 1, 1<<30), SLABronze); err != nil {
		t.Fatal(err)
	}
	a.BaseFailProb = 0.5
	if m.ProactiveMigration() != 0 {
		t.Fatal("legacy policy migrated")
	}
}

func TestTickCrashAndRepair(t *testing.T) {
	a := NewNode("node-a", 8, 32<<30, 1.0) // certain crash
	m, err := NewManager(UniServerPolicy(), a)
	if err != nil {
		t.Fatal(err)
	}
	// SLA filter would refuse placement on a doomed node; bypass via
	// direct placement to observe violation accounting.
	a.place(&Instance{Spec: spec("vm1", 1, 1<<30), SLA: SLABronze})
	src := rng.New(1)
	m.Tick(time.Minute, 0, 10*time.Minute, src)
	if m.Crashes != 1 || m.SLAViolations != 1 {
		t.Fatalf("crash accounting: %+v", m)
	}
	if a.Online() {
		t.Fatal("crashed node still online")
	}
	// Before repair completes the node stays down.
	m.Tick(time.Minute, 5*time.Minute, 10*time.Minute, src)
	if a.Online() {
		t.Fatal("node repaired too early")
	}
	a.BaseFailProb = 0 // repaired hardware behaves
	m.Tick(time.Minute, 11*time.Minute, 10*time.Minute, src)
	if !a.Online() {
		t.Fatal("node not repaired")
	}
	met := a.Metrics()
	if met.Availability >= 1 {
		t.Fatalf("availability should reflect downtime: %v", met.Availability)
	}
}

func TestMetricsUtilization(t *testing.T) {
	n := NewNode("x", 4, 8<<30, 0.001)
	n.place(&Instance{Spec: spec("v", 2, 4<<30)})
	met := n.Metrics()
	if met.UtilizationCPU != 0.5 {
		t.Fatalf("cpu util = %v", met.UtilizationCPU)
	}
	if met.UtilizationMem != 0.5 {
		t.Fatalf("mem util = %v", met.UtilizationMem)
	}
	if met.Reliability <= 0.99 {
		t.Fatalf("reliability = %v", met.Reliability)
	}
}

// TestStreamUniServerBeatsLegacy is the Section 4.B end-to-end claim:
// with the reliability metric, SLA filtering and proactive migration,
// the UniServer policy suffers far fewer SLA violations than the
// legacy policy on an identical degrading fleet and workload stream.
func TestStreamUniServerBeatsLegacy(t *testing.T) {
	run := func(policy Policy, seed uint64) SimResult {
		nodes := Fleet(8, 16, 64<<30, rng.New(seed))
		m, err := NewManager(policy, nodes...)
		if err != nil {
			t.Fatal(err)
		}
		arrivals, err := workload.Stream(workload.DefaultStreamConfig(), rng.New(seed+1))
		if err != nil {
			t.Fatal(err)
		}
		res, err := RunStream(m, arrivals, DefaultSimConfig(), rng.New(seed+2))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	var uniViol, legViol, uniMigr int
	for seed := uint64(0); seed < 5; seed++ {
		u := run(UniServerPolicy(), 100+seed)
		l := run(LegacyPolicy(), 100+seed)
		uniViol += u.SLAViolations
		legViol += l.SLAViolations
		uniMigr += u.Migrations
	}
	if uniMigr == 0 {
		t.Fatal("UniServer policy never migrated")
	}
	if uniViol >= legViol {
		t.Fatalf("UniServer violations (%d) not below legacy (%d)", uniViol, legViol)
	}
}

func TestRunStreamValidation(t *testing.T) {
	m, _, _ := twoNodeManager(t, UniServerPolicy())
	if _, err := RunStream(m, nil, SimConfig{}, rng.New(1)); err == nil {
		t.Fatal("zero config accepted")
	}
}

func TestRunStreamBasicAccounting(t *testing.T) {
	nodes := Fleet(4, 16, 64<<30, rng.New(7))
	m, err := NewManager(UniServerPolicy(), nodes...)
	if err != nil {
		t.Fatal(err)
	}
	arrivals, err := workload.Stream(workload.StreamConfig{
		N: 10, MeanGap: time.Minute, MeanLifetime: time.Hour, MinLifetime: 10 * time.Minute,
	}, rng.New(8))
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultSimConfig()
	cfg.Horizon = 4 * time.Hour
	res, err := RunStream(m, arrivals, cfg, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	if res.Scheduled+res.Rejected < 10 {
		t.Fatalf("arrivals unaccounted: %+v", res)
	}
	if res.EnergyKWh <= 0 {
		t.Fatal("no energy integrated")
	}
	if res.Windows != int(cfg.Horizon/cfg.Window) {
		t.Fatalf("windows = %d", res.Windows)
	}
	if res.MeanAvailability <= 0 || res.MeanAvailability > 1 {
		t.Fatalf("availability = %v", res.MeanAvailability)
	}
}

func TestFleetConstruction(t *testing.T) {
	nodes := Fleet(30, 8, 16<<30, rng.New(3))
	if len(nodes) != 30 {
		t.Fatalf("fleet size = %d", len(nodes))
	}
	names := map[string]bool{}
	for _, n := range nodes {
		if names[n.Name] {
			t.Fatalf("duplicate node name %s", n.Name)
		}
		names[n.Name] = true
		if n.BaseFailProb <= 0 || n.BaseFailProb > 0.001 {
			t.Fatalf("fail prob %v out of range", n.BaseFailProb)
		}
	}
}
