package openstack

import (
	"fmt"
	"testing"

	"uniserver/internal/rng"
	"uniserver/internal/workload"
)

func BenchmarkSchedule(b *testing.B) {
	nodes := Fleet(32, 64, 512<<30, rng.New(1))
	m, err := NewManager(UniServerPolicy(), nodes...)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		name := fmt.Sprintf("vm-%d", i)
		if _, err := m.Schedule(spec(name, 1, 1<<30), SLASilver); err != nil {
			b.Fatal(err)
		}
		m.Terminate(name)
	}
}

func BenchmarkRunStream24h(b *testing.B) {
	for i := 0; i < b.N; i++ {
		nodes := Fleet(8, 16, 64<<30, rng.New(uint64(i)))
		m, err := NewManager(UniServerPolicy(), nodes...)
		if err != nil {
			b.Fatal(err)
		}
		arrivals, err := workload.Stream(workload.DefaultStreamConfig(), rng.New(uint64(i)+1))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := RunStream(m, arrivals, DefaultSimConfig(), rng.New(uint64(i)+2)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkProactiveMigration(b *testing.B) {
	nodes := Fleet(16, 32, 256<<30, rng.New(2))
	m, err := NewManager(UniServerPolicy(), nodes...)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		if _, err := m.Schedule(spec(fmt.Sprintf("vm-%d", i), 1, 1<<30), SLABronze); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.ProactiveMigration()
	}
}
