package openstack

import (
	"testing"
	"time"
)

func TestStepFleetValidation(t *testing.T) {
	m, _, _ := twoNodeManager(t, UniServerPolicy())
	if _, err := m.StepFleet([]NodeHealth{{Name: "ghost"}}, time.Minute, 0, time.Hour); err == nil {
		t.Fatal("health report for unknown node accepted")
	}
	dup := []NodeHealth{{Name: "node-a"}, {Name: "node-a"}}
	if _, err := m.StepFleet(dup, time.Minute, 0, time.Hour); err == nil {
		t.Fatal("duplicate health report accepted")
	}
}

func TestStepFleetHealthDrivenCrash(t *testing.T) {
	m, a, b := twoNodeManager(t, LegacyPolicy())
	if _, err := m.Schedule(spec("vm-a", 2, 4<<30), SLAGold); err != nil {
		t.Fatal(err)
	}
	// vm lands on one of the nodes; crash that node via health.
	victim, other := a, b
	if len(b.Instances()) > 0 {
		victim, other = b, a
	}
	health := []NodeHealth{
		{Name: victim.Name, FailProb: 0.2, Crashed: true},
		{Name: other.Name, FailProb: 0.0001},
	}
	stats, err := m.StepFleet(health, 5*time.Minute, 0, 30*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Crashes != 1 || stats.EvictedVMs != 1 {
		t.Fatalf("stats = %+v; want 1 crash, 1 eviction", stats)
	}
	if victim.Online() {
		t.Fatal("crashed node still online")
	}
	if m.SLAViolations != 1 || m.UserFacingViolations != 1 {
		t.Fatalf("violations = %d/%d; want 1/1", m.SLAViolations, m.UserFacingViolations)
	}
	// The repair interval elapses; the node comes back online and the
	// updated FailProb landed in the reliability metric.
	stats, err = m.StepFleet(nil, 5*time.Minute, 30*time.Minute, 30*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if stats.OnlineNodes != 2 {
		t.Fatalf("online = %d after repair; want 2", stats.OnlineNodes)
	}
	if victim.BaseFailProb != 0.2 {
		t.Fatalf("health FailProb not applied: %v", victim.BaseFailProb)
	}
}

func TestStepFleetProactiveMigrationSeesHealthFirst(t *testing.T) {
	m, a, b := twoNodeManager(t, UniServerPolicy())
	if _, err := m.Schedule(spec("vm-a", 2, 4<<30), SLASilver); err != nil {
		t.Fatal(err)
	}
	hosting, spare := a, b
	if len(b.Instances()) > 0 {
		hosting, spare = b, a
	}
	// The hosting node's predicted failure probability jumps above the
	// migration threshold AND it crashes this same window. Proactive
	// migration must move the VM off before the crash resolves, so no
	// SLA violation occurs.
	health := []NodeHealth{
		{Name: hosting.Name, FailProb: 0.05, Crashed: true},
		{Name: spare.Name, FailProb: 0.0001},
	}
	stats, err := m.StepFleet(health, 5*time.Minute, 0, 30*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Migrations != 1 {
		t.Fatalf("migrations = %d; want 1", stats.Migrations)
	}
	if stats.EvictedVMs != 0 || m.SLAViolations != 0 {
		t.Fatalf("vm lost despite proactive migration: %+v", stats)
	}
	if len(spare.Instances()) != 1 {
		t.Fatal("vm did not land on the spare node")
	}
}

func TestStepFleetDeterministicEnergy(t *testing.T) {
	run := func() float64 {
		m, _, _ := twoNodeManager(t, LegacyPolicy())
		for w := 0; w < 10; w++ {
			now := time.Duration(w) * 5 * time.Minute
			if _, err := m.StepFleet([]NodeHealth{
				{Name: "node-a", FailProb: 0.001, Crashed: w == 3},
				{Name: "node-b", FailProb: 0.001},
			}, 5*time.Minute, now, 15*time.Minute); err != nil {
				t.Fatal(err)
			}
		}
		return m.EnergyJ
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("fleet stepping not deterministic: %v != %v", a, b)
	}
}
