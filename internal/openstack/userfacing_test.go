package openstack

import (
	"testing"

	"uniserver/internal/rng"
	"uniserver/internal/workload"
)

// TestUserFacingViolationAccounting kills a node directly and checks
// the gold-instance loss is tallied separately.
func TestUserFacingViolationAccounting(t *testing.T) {
	a := NewNode("node-a", 8, 32<<30, 1.0)
	m, err := NewManager(UniServerPolicy(), a)
	if err != nil {
		t.Fatal(err)
	}
	a.place(&Instance{Spec: spec("gold", 1, 1<<30), SLA: SLAGold})
	a.place(&Instance{Spec: spec("bronze", 1, 1<<30), SLA: SLABronze})
	m.Tick(1, 0, 1, rng.New(1))
	if m.SLAViolations != 2 {
		t.Fatalf("violations = %d", m.SLAViolations)
	}
	if m.UserFacingViolations != 1 {
		t.Fatalf("user-facing violations = %d, want 1", m.UserFacingViolations)
	}
}

// TestProactiveMigrationShieldsUserFacing runs matched streams and
// verifies the UniServer policy loses fewer user-facing instances than
// the legacy policy — the paper's "critical to sustain
// high-availability especially for high value and user-facing
// workloads".
func TestProactiveMigrationShieldsUserFacing(t *testing.T) {
	run := func(policy Policy, seed uint64) SimResult {
		nodes := Fleet(8, 16, 64<<30, rng.New(seed))
		m, err := NewManager(policy, nodes...)
		if err != nil {
			t.Fatal(err)
		}
		arrivals, err := workload.Stream(workload.DefaultStreamConfig(), rng.New(seed+1))
		if err != nil {
			t.Fatal(err)
		}
		res, err := RunStream(m, arrivals, DefaultSimConfig(), rng.New(seed+2))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	var uni, leg int
	for seed := uint64(0); seed < 8; seed++ {
		uni += run(UniServerPolicy(), 700+seed*10).UserFacingViolations
		leg += run(LegacyPolicy(), 700+seed*10).UserFacingViolations
	}
	if uni >= leg {
		t.Fatalf("user-facing violations: uniserver %d, legacy %d", uni, leg)
	}
}
