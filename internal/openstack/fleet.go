package openstack

import (
	"fmt"
	"time"
)

// NodeHealth is the per-epoch health vector one node's ecosystem
// simulation feeds into the cloud layer: the paper's "failure
// prediction from node health data" input, produced by the HealthLog/
// Predictor pipeline rather than by the manager's own crash lottery.
// A fleet engine collects one NodeHealth per node per barrier epoch
// (the reports may be produced concurrently, but are merged in node
// order before they reach the manager, so the outcome is independent
// of worker scheduling).
type NodeHealth struct {
	// Name identifies the managed node.
	Name string
	// FailProb is the Predictor's current per-window crash probability
	// at the node's live operating point. It replaces the node's
	// BaseFailProb, so scheduling and proactive migration track the
	// node's drifting health.
	FailProb float64
	// Crashed reports that the node's own simulation crashed this
	// window. The manager treats it as ground truth: the node goes
	// offline for the repair interval and its instances are lost.
	Crashed bool
	// Correctable and ThermalAlarm ride along for fleet observability.
	Correctable  int
	ThermalAlarm int
}

// FleetStepStats summarizes one barrier-synchronized fleet epoch.
type FleetStepStats struct {
	Migrations  int
	Crashes     int
	EvictedVMs  int
	OnlineNodes int
	PowerW      float64
}

// StepFleet advances the fleet by one observation window driven by
// externally simulated node health instead of the manager's internal
// crash lottery (compare Tick). The sequence per epoch is the paper's
// Section 4.B loop: (1) node health lands in the scheduler's
// reliability metric, (2) proactive migration drains nodes predicted
// to fail, (3) the window resolves — health-reported crashes take
// their nodes down, repairs complete, availability and energy are
// accounted. It is fully deterministic: same health sequence, same
// outcome, regardless of how many goroutines produced the reports.
func (m *Manager) StepFleet(health []NodeHealth, window, now, repair time.Duration) (FleetStepStats, error) {
	var stats FleetStepStats
	// The lookup table is manager-owned scratch, rebuilt every epoch:
	// fleet runs call StepFleet once per simulated minute, and the
	// per-call map allocation was the epoch loop's largest garbage
	// source. Lookup-only usage keeps map iteration order irrelevant.
	if m.healthScratch == nil {
		m.healthScratch = make(map[string]NodeHealth, len(health))
	}
	clear(m.healthScratch)
	byName := m.healthScratch
	for _, h := range health {
		if _, ok := m.nodes[h.Name]; !ok {
			return stats, fmt.Errorf("openstack: health report for unknown node %q", h.Name)
		}
		if _, dup := byName[h.Name]; dup {
			return stats, fmt.Errorf("openstack: duplicate health report for node %q", h.Name)
		}
		byName[h.Name] = h
	}

	// (1) The predictor's live failure probability becomes the node's
	// reliability input before any placement decision this window.
	// Offline nodes update too: their simulation keeps characterizing,
	// and a repaired node must rejoin the pool with its current health,
	// not a repair-interval-stale probability.
	for _, n := range m.sorted {
		if h, ok := byName[n.Name]; ok {
			n.BaseFailProb = h.FailProb
		}
	}

	// (2) Proactive migration sees the updated health before the
	// window's crashes resolve — that ordering is the whole point of
	// predictive draining.
	stats.Migrations = m.ProactiveMigration()

	// (3) Resolve the window: repairs, accounting, health-driven
	// crashes — the node simulation's crash is ground truth, so the
	// resolution loop runs with the health report as its crash
	// predicate instead of Tick's lottery.
	m.resolveWindow(window, now, repair, func(n *Node) bool {
		h, ok := byName[n.Name]
		return ok && h.Crashed
	}, &stats)
	return stats, nil
}

// MeanAvailability averages the per-node availability across the
// fleet. It sums in sorted node order: float addition is
// non-associative, and this value feeds deterministic fingerprints.
func (m *Manager) MeanAvailability() float64 {
	if len(m.nodes) == 0 {
		return 0
	}
	total := 0.0
	for _, n := range m.sorted {
		total += n.Metrics().Availability
	}
	return total / float64(len(m.nodes))
}
