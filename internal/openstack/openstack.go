// Package openstack implements the cloud resource-management layer of
// Section 4.B: an OpenStack-style scheduler and node manager extended,
// as the paper proposes, with (a) a node reliability metric alongside
// the traditional availability, utilization and energy metrics,
// (b) fine-grained VM monitoring, (c) failure prediction from node
// health data, and (d) proactive live migration of workloads off
// nodes predicted to fail — "proactively migrate the running
// workloads on the healthy nodes, which is critical to sustain
// high-availability especially for high value and user-facing
// workloads".
package openstack

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"uniserver/internal/rng"
	"uniserver/internal/vfr"
	"uniserver/internal/workload"
)

// SLA is the service-level agreement attached to a VM request. The
// paper: "the optimization of operations at the EOP is guided by the
// system requirements of the end-user for each VM, which are typically
// communicated through Service Level Agreements".
type SLA struct {
	Name string
	// MaxFailProb is the maximum acceptable per-window crash
	// probability of the hosting node.
	MaxFailProb float64
	// UserFacing marks high-value latency-sensitive services that are
	// prioritized during proactive migration.
	UserFacing bool
}

// Standard SLA tiers.
var (
	SLAGold   = SLA{Name: "gold", MaxFailProb: 0.0005, UserFacing: true}
	SLASilver = SLA{Name: "silver", MaxFailProb: 0.005, UserFacing: false}
	SLABronze = SLA{Name: "bronze", MaxFailProb: 0.05, UserFacing: false}
)

// SLAFor cycles arrival index i through the standard tiers — the VM
// mix shared by the stream simulator and the fleet engine.
func SLAFor(i int) SLA {
	switch i % 3 {
	case 0:
		return SLAGold
	case 1:
		return SLASilver
	default:
		return SLABronze
	}
}

// NodeMetrics are the per-node quantities the scheduler weighs. The
// reliability metric is UniServer's addition to the traditional trio.
type NodeMetrics struct {
	Availability   float64 // fraction of windows online
	UtilizationCPU float64 // vCPU utilization in [0,1]
	UtilizationMem float64 // memory utilization in [0,1]
	PowerW         float64 // current draw
	Reliability    float64 // 1 - predicted per-window crash probability
}

// Node is one schedulable UniServer host.
type Node struct {
	Name     string
	Cores    int
	MemBytes uint64
	// Mode is the node's current operating regime; deeper EOP lowers
	// power and raises the baseline failure probability.
	Mode vfr.Mode
	// BaseFailProb is the node's per-window crash probability at
	// nominal operation (hardware lottery + age).
	BaseFailProb float64
	// EOPRiskFactor scales BaseFailProb when running at extended
	// operating points.
	EOPRiskFactor float64
	// IdlePowerW / BusyPowerW bound the node's power draw; EOP modes
	// scale it down.
	IdlePowerW, BusyPowerW float64

	online       bool
	repairUntil  time.Duration
	usedVCPUs    int
	usedMem      uint64
	vms          map[string]*Instance
	windowsUp    int
	windowsTotal int
}

// Instance is a placed VM.
type Instance struct {
	Spec workload.VMSpec
	SLA  SLA
	Node string
}

// NewNode builds a host.
func NewNode(name string, cores int, memBytes uint64, baseFailProb float64) *Node {
	return &Node{
		Name:          name,
		Cores:         cores,
		MemBytes:      memBytes,
		Mode:          vfr.ModeNominal,
		BaseFailProb:  baseFailProb,
		EOPRiskFactor: 3,
		IdlePowerW:    45,
		BusyPowerW:    140,
		online:        true,
		vms:           make(map[string]*Instance),
	}
}

// Online reports whether the node is serving.
func (n *Node) Online() bool { return n.online }

// FailProb returns the node's per-window crash probability at its
// current mode: UniServer's predictor-informed reliability input.
func (n *Node) FailProb() float64 {
	p := n.BaseFailProb
	if n.Mode != vfr.ModeNominal {
		p *= n.EOPRiskFactor
	}
	if p > 1 {
		p = 1
	}
	return p
}

// powerScale returns the mode's power multiplier: high-performance
// shaves the voltage guardband (~25% dynamic power), low-power halves
// frequency with lower voltage (Section 6.D arithmetic).
func (n *Node) powerScale() float64 {
	switch n.Mode {
	case vfr.ModeHighPerformance:
		return 0.75
	case vfr.ModeLowPower:
		return 0.35
	default:
		return 1
	}
}

// Metrics returns the node's current metric vector.
func (n *Node) Metrics() NodeMetrics {
	util := 0.0
	if n.Cores > 0 {
		util = float64(n.usedVCPUs) / float64(n.Cores)
		if util > 1 {
			util = 1
		}
	}
	memUtil := 0.0
	if n.MemBytes > 0 {
		memUtil = float64(n.usedMem) / float64(n.MemBytes)
	}
	avail := 1.0
	if n.windowsTotal > 0 {
		avail = float64(n.windowsUp) / float64(n.windowsTotal)
	}
	power := (n.IdlePowerW + (n.BusyPowerW-n.IdlePowerW)*util) * n.powerScale()
	if !n.online {
		power = 0
	}
	return NodeMetrics{
		Availability:   avail,
		UtilizationCPU: util,
		UtilizationMem: memUtil,
		PowerW:         power,
		Reliability:    1 - n.FailProb(),
	}
}

// fits reports whether the node can host the request.
func (n *Node) fits(spec workload.VMSpec) bool {
	return n.online &&
		n.usedVCPUs+spec.VCPUs <= n.Cores*2 && // 2x oversubscription
		n.usedMem+spec.MemBytes <= n.MemBytes
}

// place installs an instance (caller has validated fit).
func (n *Node) place(inst *Instance) {
	n.vms[inst.Spec.Name] = inst
	n.usedVCPUs += inst.Spec.VCPUs
	n.usedMem += inst.Spec.MemBytes
	inst.Node = n.Name
}

// remove evicts an instance by name.
func (n *Node) remove(name string) (*Instance, bool) {
	inst, ok := n.vms[name]
	if !ok {
		return nil, false
	}
	delete(n.vms, name)
	n.usedVCPUs -= inst.Spec.VCPUs
	n.usedMem -= inst.Spec.MemBytes
	return inst, true
}

// Instances returns the node's instances sorted by name.
func (n *Node) Instances() []*Instance {
	out := make([]*Instance, 0, len(n.vms))
	for _, inst := range n.vms {
		out = append(out, inst)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Spec.Name < out[j].Spec.Name })
	return out
}

// Policy selects and weighs candidate nodes.
type Policy struct {
	// ReliabilityWeight scales the reliability term; setting it to 0
	// recovers a traditional utilization/energy-only scheduler (the
	// ablation baseline).
	ReliabilityWeight float64
	// SpreadWeight rewards low-utilization nodes (load balancing).
	SpreadWeight float64
	// EnergyWeight rewards low-power nodes.
	EnergyWeight float64
	// EnforceSLA filters out nodes whose failure probability exceeds
	// the request's SLA bound.
	EnforceSLA bool
	// PredictiveMigration enables draining nodes whose predicted
	// failure probability crosses MigrationThreshold.
	PredictiveMigration bool
	MigrationThreshold  float64
}

// UniServerPolicy returns the paper's reliability-aware policy.
func UniServerPolicy() Policy {
	return Policy{
		ReliabilityWeight:   4,
		SpreadWeight:        1,
		EnergyWeight:        1,
		EnforceSLA:          true,
		PredictiveMigration: true,
		MigrationThreshold:  0.005,
	}
}

// LegacyPolicy returns the pre-UniServer baseline: no reliability
// term, no SLA filter, no proactive migration.
func LegacyPolicy() Policy {
	return Policy{ReliabilityWeight: 0, SpreadWeight: 1, EnergyWeight: 1}
}

// Manager is the cloud control plane over a fleet of nodes.
type Manager struct {
	Policy Policy
	nodes  map[string]*Node
	// sorted is the fleet in name order, built once: the node set is
	// fixed at construction, and every scheduling walk (which must be
	// deterministic, hence ordered) reuses this slice instead of
	// sorting the map per call.
	sorted []*Node
	// healthScratch is StepFleet's reusable per-epoch lookup table.
	healthScratch map[string]NodeHealth

	// Stats.
	Scheduled     int
	Rejected      int
	Migrations    int
	SLAViolations int
	// UserFacingViolations counts SLA violations that hit user-facing
	// (gold) instances — the losses the paper's proactive migration is
	// specifically meant to prevent.
	UserFacingViolations int
	Crashes              int
	EnergyJ              float64
}

// NewManager returns a manager over the nodes.
func NewManager(policy Policy, nodes ...*Node) (*Manager, error) {
	if len(nodes) == 0 {
		return nil, errors.New("openstack: manager needs nodes")
	}
	m := &Manager{Policy: policy, nodes: make(map[string]*Node, len(nodes))}
	for _, n := range nodes {
		if _, dup := m.nodes[n.Name]; dup {
			return nil, fmt.Errorf("openstack: duplicate node %q", n.Name)
		}
		m.nodes[n.Name] = n
	}
	m.sorted = make([]*Node, 0, len(nodes))
	for _, n := range m.nodes {
		m.sorted = append(m.sorted, n)
	}
	sort.Slice(m.sorted, func(i, j int) bool { return m.sorted[i].Name < m.sorted[j].Name })
	return m, nil
}

// Nodes returns the fleet sorted by name. The slice is the caller's
// to keep (reordering it cannot perturb the manager's own walks);
// in-package hot paths range m.sorted directly to skip the copy.
func (m *Manager) Nodes() []*Node {
	return append([]*Node(nil), m.sorted...)
}

// score weighs a candidate node for placement.
func (m *Manager) score(n *Node) float64 {
	met := n.Metrics()
	return m.Policy.ReliabilityWeight*met.Reliability +
		m.Policy.SpreadWeight*(1-met.UtilizationCPU) +
		m.Policy.EnergyWeight*(1-met.PowerW/150)
}

// Schedule places a VM request, returning the chosen node name.
// Filtering: capacity, liveness, and (if enforced) the SLA's failure
// bound; weighing: the policy's weighted metric sum.
func (m *Manager) Schedule(spec workload.VMSpec, sla SLA) (string, error) {
	if err := spec.Validate(); err != nil {
		m.Rejected++
		return "", err
	}
	var best *Node
	bestScore := 0.0
	for _, n := range m.sorted {
		if !n.fits(spec) {
			continue
		}
		if m.Policy.EnforceSLA && n.FailProb() > sla.MaxFailProb {
			continue
		}
		if s := m.score(n); best == nil || s > bestScore {
			best, bestScore = n, s
		}
	}
	if best == nil {
		m.Rejected++
		return "", fmt.Errorf("openstack: no feasible node for %q (sla %s)", spec.Name, sla.Name)
	}
	best.place(&Instance{Spec: spec, SLA: sla})
	m.Scheduled++
	return best.Name, nil
}

// Terminate removes a VM from whichever node hosts it.
func (m *Manager) Terminate(name string) bool {
	for _, n := range m.nodes {
		if _, ok := n.remove(name); ok {
			return true
		}
	}
	return false
}

// migrate moves an instance to the best other feasible node; returns
// false when no target exists.
func (m *Manager) migrate(inst *Instance, from *Node) bool {
	var best *Node
	bestScore := 0.0
	for _, n := range m.sorted {
		if n.Name == from.Name || !n.fits(inst.Spec) {
			continue
		}
		if m.Policy.EnforceSLA && n.FailProb() > inst.SLA.MaxFailProb {
			continue
		}
		if s := m.score(n); best == nil || s > bestScore {
			best, bestScore = n, s
		}
	}
	if best == nil {
		return false
	}
	from.remove(inst.Spec.Name)
	best.place(inst)
	m.Migrations++
	return true
}

// ProactiveMigration drains nodes whose predicted failure probability
// crosses the policy threshold, user-facing instances first. It
// returns the number of instances moved.
func (m *Manager) ProactiveMigration() int {
	if !m.Policy.PredictiveMigration {
		return 0
	}
	moved := 0
	for _, n := range m.sorted {
		if !n.online || n.FailProb() < m.Policy.MigrationThreshold {
			continue
		}
		insts := n.Instances()
		// User-facing first.
		sort.SliceStable(insts, func(i, j int) bool {
			return insts[i].SLA.UserFacing && !insts[j].SLA.UserFacing
		})
		for _, inst := range insts {
			if m.migrate(inst, n) {
				moved++
			}
		}
	}
	return moved
}

// Tick advances the fleet by one observation window of the given
// duration: node crash lottery, repairs, availability accounting and
// energy integration. Crashed nodes lose their instances (each loss is
// an SLA violation) and come back after repair.
func (m *Manager) Tick(window time.Duration, now time.Duration, repair time.Duration, src *rng.Source) {
	m.resolveWindow(window, now, repair, func(n *Node) bool {
		return src.Bernoulli(n.FailProb())
	}, nil)
}

// resolveWindow is the single per-window node-resolution loop shared
// by Tick and StepFleet: repairs complete, availability and energy
// are accounted, and nodes for which crashed reports true go down for
// the repair interval, losing their instances (each loss is an SLA
// violation). Nodes resolve in sorted order; crashed is only called
// for online nodes, in that order. stats, when non-nil, receives the
// epoch's counters.
func (m *Manager) resolveWindow(window, now, repair time.Duration, crashed func(*Node) bool, stats *FleetStepStats) {
	for _, n := range m.sorted {
		n.windowsTotal++
		if !n.online {
			if now >= n.repairUntil {
				n.online = true
			} else {
				continue
			}
		}
		n.windowsUp++
		met := n.Metrics()
		m.EnergyJ += met.PowerW * window.Seconds()
		if stats != nil {
			stats.OnlineNodes++
			stats.PowerW += met.PowerW
		}
		if crashed(n) {
			m.Crashes++
			if stats != nil {
				stats.Crashes++
			}
			n.online = false
			n.repairUntil = now + repair
			for _, inst := range n.Instances() {
				n.remove(inst.Spec.Name)
				m.SLAViolations++
				if stats != nil {
					stats.EvictedVMs++
				}
				if inst.SLA.UserFacing {
					m.UserFacingViolations++
				}
			}
		}
	}
}
