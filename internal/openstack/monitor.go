package openstack

import (
	"fmt"
	"sort"

	"uniserver/internal/rng"
	"uniserver/internal/stats"
)

// UtilSample is one per-instance utilization observation: the
// fine-grained VM monitoring of Section 4.B ("determining their
// dynamically changing characteristics and virtual resource
// utilization at a finer granularity than the existing
// state-of-the-art").
type UtilSample struct {
	Window  int
	CPUUtil float64 // of the instance's vCPUs, in [0,1]
	MemUsed uint64  // bytes actually touched (vs allocated)
}

// Monitor retains per-instance utilization histories.
type Monitor struct {
	retain  int
	history map[string][]UtilSample
	window  int
}

// NewMonitor returns a monitor retaining `retain` samples per VM.
func NewMonitor(retain int) *Monitor {
	if retain <= 0 {
		retain = 256
	}
	return &Monitor{retain: retain, history: make(map[string][]UtilSample)}
}

// SampleFleet observes every running instance on every node: actual
// CPU use is the workload profile's activity with per-window jitter,
// and actual memory use follows the profile's ramp/sawtooth, which is
// typically well below the allocation.
func (mon *Monitor) SampleFleet(m *Manager, src *rng.Source) {
	mon.window++
	for _, n := range m.sorted {
		if !n.Online() {
			continue
		}
		for _, inst := range n.Instances() {
			p := inst.Spec.Profile
			cpu := p.CPUActivity + src.Normal(0, 0.05)
			if cpu < 0 {
				cpu = 0
			}
			if cpu > 1 {
				cpu = 1
			}
			s := UtilSample{
				Window:  mon.window,
				CPUUtil: cpu,
				MemUsed: p.MemAtWindow(mon.window),
			}
			if s.MemUsed > inst.Spec.MemBytes {
				s.MemUsed = inst.Spec.MemBytes
			}
			h := append(mon.history[inst.Spec.Name], s)
			if len(h) > mon.retain {
				h = h[len(h)-mon.retain:]
			}
			mon.history[inst.Spec.Name] = h
		}
	}
}

// Dynamics summarizes an instance's observed behaviour.
type Dynamics struct {
	VM           string
	Samples      int
	CPUMean      float64
	CPUStdDev    float64
	MemMeanBytes uint64
	// OverallocRatio is allocated memory over mean used memory; large
	// values flag right-sizing opportunities.
	OverallocRatio float64
}

// Dynamics returns the observed characteristics of one instance.
func (mon *Monitor) Dynamics(m *Manager, vm string) (Dynamics, error) {
	h := mon.history[vm]
	if len(h) == 0 {
		return Dynamics{}, fmt.Errorf("openstack: no samples for %q", vm)
	}
	cpu := make([]float64, len(h))
	memSum := uint64(0)
	for i, s := range h {
		cpu[i] = s.CPUUtil
		memSum += s.MemUsed
	}
	d := Dynamics{
		VM:           vm,
		Samples:      len(h),
		CPUMean:      stats.Mean(cpu),
		CPUStdDev:    stats.StdDev(cpu),
		MemMeanBytes: memSum / uint64(len(h)),
	}
	var alloc uint64
	for _, n := range m.sorted {
		for _, inst := range n.Instances() {
			if inst.Spec.Name == vm {
				alloc = inst.Spec.MemBytes
			}
		}
	}
	if alloc > 0 && d.MemMeanBytes > 0 {
		d.OverallocRatio = float64(alloc) / float64(d.MemMeanBytes)
	}
	return d, nil
}

// Monitored returns the instance names with at least one sample,
// sorted.
func (mon *Monitor) Monitored() []string {
	out := make([]string, 0, len(mon.history))
	for vm := range mon.history {
		out = append(out, vm)
	}
	sort.Strings(out)
	return out
}

// RightSizingCandidates returns instances whose memory over-allocation
// exceeds the threshold ratio — input for the scheduler's packing
// decisions.
func (mon *Monitor) RightSizingCandidates(m *Manager, ratio float64) []Dynamics {
	var out []Dynamics
	for _, vm := range mon.Monitored() {
		d, err := mon.Dynamics(m, vm)
		if err != nil {
			continue
		}
		if d.OverallocRatio >= ratio {
			out = append(out, d)
		}
	}
	return out
}
