package openstack

import (
	"testing"

	"uniserver/internal/rng"
	"uniserver/internal/vfr"
	"uniserver/internal/workload"
)

// runFleet simulates a day-long stream over a fleet pinned to the
// given operating mode.
func runFleet(t *testing.T, mode vfr.Mode, policy Policy, seed uint64) SimResult {
	t.Helper()
	nodes := Fleet(8, 16, 64<<30, rng.New(seed))
	for _, n := range nodes {
		n.Mode = mode
	}
	m, err := NewManager(policy, nodes...)
	if err != nil {
		t.Fatal(err)
	}
	arrivals, err := workload.Stream(workload.DefaultStreamConfig(), rng.New(seed+1))
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunStream(m, arrivals, DefaultSimConfig(), rng.New(seed+2))
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestEOPFleetSavesEnergy verifies the fleet-level energy ordering:
// low-power EOP < high-performance EOP < nominal, for the same stream.
func TestEOPFleetSavesEnergy(t *testing.T) {
	nominal := runFleet(t, vfr.ModeNominal, UniServerPolicy(), 300)
	hp := runFleet(t, vfr.ModeHighPerformance, UniServerPolicy(), 300)
	lp := runFleet(t, vfr.ModeLowPower, UniServerPolicy(), 300)
	if !(lp.EnergyKWh < hp.EnergyKWh && hp.EnergyKWh < nominal.EnergyKWh) {
		t.Fatalf("energy ordering wrong: lp=%.1f hp=%.1f nominal=%.1f",
			lp.EnergyKWh, hp.EnergyKWh, nominal.EnergyKWh)
	}
	// The EOP fleet must save a meaningful fraction.
	if hp.EnergyKWh > nominal.EnergyKWh*0.85 {
		t.Fatalf("high-performance EOP saved too little: %.1f vs %.1f kWh",
			hp.EnergyKWh, nominal.EnergyKWh)
	}
}

// TestEOPFleetRiskManagedByPolicy verifies the resilience story at
// fleet scale: EOP operation raises the hardware failure rate, but the
// UniServer policy keeps the SLA damage in check compared with running
// the same EOP fleet under the legacy policy.
func TestEOPFleetRiskManagedByPolicy(t *testing.T) {
	var uniViol, legViol, uniCrashes, nomCrashes int
	for seed := uint64(0); seed < 5; seed++ {
		uni := runFleet(t, vfr.ModeHighPerformance, UniServerPolicy(), 400+seed*10)
		leg := runFleet(t, vfr.ModeHighPerformance, LegacyPolicy(), 400+seed*10)
		nom := runFleet(t, vfr.ModeNominal, UniServerPolicy(), 400+seed*10)
		uniViol += uni.SLAViolations
		legViol += leg.SLAViolations
		uniCrashes += uni.Crashes
		nomCrashes += nom.Crashes
	}
	if uniCrashes <= nomCrashes {
		t.Fatalf("EOP fleet should crash more than nominal: %d vs %d", uniCrashes, nomCrashes)
	}
	if uniViol >= legViol {
		t.Fatalf("UniServer policy on EOP fleet: %d violations, legacy %d", uniViol, legViol)
	}
}
