package openstack

import (
	"errors"
	"time"

	"uniserver/internal/rng"
	"uniserver/internal/workload"
)

// SimConfig shapes a VM-stream simulation.
type SimConfig struct {
	// Window is the observation/scheduling window length.
	Window time.Duration
	// Repair is how long a crashed node stays offline.
	Repair time.Duration
	// Horizon bounds the simulation length.
	Horizon time.Duration
	// DegradeProb is the per-window probability that some online node
	// starts behaving erratically (aging, marginal EOP): its failure
	// probability is multiplied by DegradeFactor. The HealthLog/
	// Predictor pipeline surfaces this as a raised FailProb, which the
	// proactive-migration policy acts on.
	DegradeProb   float64
	DegradeFactor float64
}

// DefaultSimConfig returns a day-long simulation with 5-minute windows.
func DefaultSimConfig() SimConfig {
	return SimConfig{
		Window:        5 * time.Minute,
		Repair:        30 * time.Minute,
		Horizon:       24 * time.Hour,
		DegradeProb:   0.03,
		DegradeFactor: 40,
	}
}

// SimResult summarizes a stream simulation.
type SimResult struct {
	Windows              int
	Scheduled            int
	Rejected             int
	Migrations           int
	SLAViolations        int
	UserFacingViolations int
	Crashes              int
	EnergyKWh            float64
	// MeanAvailability averages the per-node availability.
	MeanAvailability float64
}

// StreamCursor replays a VM arrival stream against a manager, one
// observation window at a time: due arrivals are scheduled with the
// standard SLA mix, expired VMs terminate. It is the single
// arrival/departure bookkeeping shared by the stream simulator and
// the fleet engine, so the two stay behaviorally identical.
type StreamCursor struct {
	arrivals   []workload.Arrival
	next       int
	departures []departure
}

type departure struct {
	at   time.Duration
	name string
}

// NewStreamCursor returns a cursor at the start of the stream.
func NewStreamCursor(arrivals []workload.Arrival) *StreamCursor {
	return &StreamCursor{arrivals: arrivals}
}

// Advance schedules the arrivals due at now (failed placements are
// dropped, counted by the manager as rejections) and terminates the
// VMs whose lifetime has expired.
func (c *StreamCursor) Advance(m *Manager, now time.Duration) {
	for c.next < len(c.arrivals) && c.arrivals[c.next].At <= now {
		a := c.arrivals[c.next]
		if _, err := m.Schedule(a.Spec, SLAFor(c.next)); err == nil {
			c.departures = append(c.departures, departure{at: now + a.Lifetime, name: a.Spec.Name})
		}
		c.next++
	}
	kept := c.departures[:0]
	for _, d := range c.departures {
		if d.at <= now {
			m.Terminate(d.name)
			continue
		}
		kept = append(kept, d)
	}
	c.departures = kept
}

// RunStream drives an arrival stream through the manager: VMs arrive
// and terminate on schedule, nodes degrade, crash and repair, and the
// policy's proactive migration runs every window. Crashed-node repairs
// include re-characterization, restoring the node's original failure
// probability (the StressLog's role in the full system).
func RunStream(m *Manager, arrivals []workload.Arrival, cfg SimConfig, src *rng.Source) (SimResult, error) {
	if cfg.Window <= 0 || cfg.Horizon <= 0 {
		return SimResult{}, errors.New("openstack: sim needs positive window and horizon")
	}
	cursor := NewStreamCursor(arrivals)
	original := make(map[string]float64, len(m.nodes))
	for name, n := range m.nodes {
		original[name] = n.BaseFailProb
	}

	res := SimResult{}
	for now := time.Duration(0); now < cfg.Horizon; now += cfg.Window {
		res.Windows++
		cursor.Advance(m, now)

		// Degradation lottery: an online node turns erratic.
		if src.Bernoulli(cfg.DegradeProb) {
			online := make([]*Node, 0, len(m.nodes))
			for _, n := range m.sorted {
				if n.Online() {
					online = append(online, n)
				}
			}
			if len(online) > 0 {
				victim := online[src.Intn(len(online))]
				victim.BaseFailProb *= cfg.DegradeFactor
				if victim.BaseFailProb > 0.5 {
					victim.BaseFailProb = 0.5
				}
			}
		}

		// Proactive migration sees the raised FailProb before the
		// crash lottery of this window resolves.
		res.Migrations += m.ProactiveMigration()

		wasOffline := map[string]bool{}
		for _, n := range m.sorted {
			wasOffline[n.Name] = !n.Online()
		}
		m.Tick(cfg.Window, now, cfg.Repair, src)

		// Nodes returning from repair have been re-characterized.
		for _, n := range m.sorted {
			if wasOffline[n.Name] && n.Online() {
				n.BaseFailProb = original[n.Name]
			}
		}
	}

	res.Scheduled = m.Scheduled
	res.Rejected = m.Rejected
	res.SLAViolations = m.SLAViolations
	res.UserFacingViolations = m.UserFacingViolations
	res.Crashes = m.Crashes
	res.EnergyKWh = m.EnergyJ / 3.6e6

	res.MeanAvailability = m.MeanAvailability()
	return res, nil
}

// Fleet builds a homogeneous fleet of n nodes with mild hardware
// lottery on the base failure probability.
func Fleet(n int, cores int, memBytes uint64, src *rng.Source) []*Node {
	nodes := make([]*Node, n)
	for i := 0; i < n; i++ {
		base := 0.0004 * (0.5 + src.Float64()) // 0.0002..0.0006 per window
		nodes[i] = NewNode(nodeName(i), cores, memBytes, base)
	}
	return nodes
}

func nodeName(i int) string {
	const letters = "abcdefghijklmnopqrstuvwxyz"
	return "node-" + string(letters[i%26]) + string('0'+byte(i/26%10))
}
