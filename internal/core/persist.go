package core

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"time"

	"uniserver/internal/cpu"
	"uniserver/internal/dram"
	"uniserver/internal/healthlog"
	"uniserver/internal/hypervisor"
	"uniserver/internal/power"
	"uniserver/internal/predictor"
	"uniserver/internal/rng"
	"uniserver/internal/silicon"
	"uniserver/internal/stresslog"
	"uniserver/internal/telemetry"
	"uniserver/internal/thermal"
	"uniserver/internal/vfr"
)

// SnapshotFormatVersion identifies the on-disk snapshot encoding.
// Readers refuse any other version: the wire form mirrors internal
// simulator state, so a silent cross-version read would corrupt
// results instead of failing loudly. Bump it whenever serialized
// state changes shape or meaning.
const SnapshotFormatVersion = 1

// optionsState is Options minus the log writer (an io.Writer has no
// wire form; restored ecosystems get their writer from
// RestoreOptions, exactly as in-memory restores do).
type optionsState struct {
	Seed         uint64
	Part         cpu.PartSpec
	Mem          dram.Config
	Hyp          hypervisor.Config
	StressPeriod time.Duration
	AmbientCPUC  float64
	AmbientDIMMC float64
}

// snapshotState is the gob wire form of a characterized ecosystem:
// every deep-copied surface of Snapshot (see snapshot.go's ownership
// table), flattened into exported state via the per-package
// persistence hooks. Re-derived surfaces (trigger wiring, advisor,
// thermal nodes, per-window scratch) are reconstructed on read, not
// transmitted.
type snapshotState struct {
	Options optionsState
	Clock   time.Time
	Src     uint64
	Mode    vfr.Mode

	Chip          *silicon.Chip
	StressedHours float64
	MachineStream uint64

	Mem *dram.MemorySystem

	Health healthlog.DaemonState
	Stress stresslog.DaemonState

	Model      predictor.Model
	Table      *vfr.EOPTable
	HasAdvisor bool
	MaxBackoff int

	Objects  []hypervisor.Object
	Profiles []hypervisor.CategoryProfile
}

// Save serializes the snapshot in the versioned gob format
// LoadSnapshot inverts. Only pre-deployment characterization
// snapshots are writable: once a mode has been entered or guests
// placed, the hypervisor carries applied-point and placement state
// the wire form does not model (the on-disk cache, like the in-memory
// one, spills the post-PreDeployment checkpoint and re-enters the
// mode after restore).
func (s *Snapshot) Save(w io.Writer) error {
	e := s.proto
	if e.windowsRun > 0 {
		return fmt.Errorf("core: refusing to serialize a mid-life snapshot (%d windows run); only pre-deployment characterization snapshots persist", e.windowsRun)
	}
	if e.mode != vfr.ModeNominal {
		return errors.New("core: refusing to serialize a snapshot taken after mode entry; snapshot between PreDeployment and EnterMode")
	}
	if len(e.Hypervisor.VMNames()) > 0 {
		return errors.New("core: refusing to serialize a snapshot with placed guests")
	}
	st := snapshotState{
		Options: optionsState{
			Seed:         e.opts.Seed,
			Part:         e.opts.Part,
			Mem:          e.opts.Mem,
			Hyp:          e.opts.Hyp,
			StressPeriod: e.opts.StressPeriod,
			AmbientCPUC:  e.opts.AmbientCPUC,
			AmbientDIMMC: e.opts.AmbientDIMMC,
		},
		Clock:         e.Clock.Now(),
		Src:           e.src.State(),
		Mode:          e.mode,
		Chip:          e.Machine.Chip,
		StressedHours: e.Machine.Chip.StressedHours(),
		MachineStream: e.Machine.StreamState(),
		Mem:           e.Mem,
		Health:        e.Health.ExportState(),
		Stress:        e.Stress.ExportState(),
		Model:         *e.Model,
		Table:         e.table,
		HasAdvisor:    e.advisor != nil,
		Objects:       e.Hypervisor.Objects().Objects,
		Profiles:      e.Hypervisor.Objects().Profiles(),
	}
	if e.advisor != nil {
		st.MaxBackoff = e.advisor.MaxBackoffMV
	}
	enc := gob.NewEncoder(w)
	if err := enc.Encode(SnapshotFormatVersion); err != nil {
		return fmt.Errorf("core: writing snapshot version: %w", err)
	}
	if err := enc.Encode(&st); err != nil {
		return fmt.Errorf("core: writing snapshot state: %w", err)
	}
	return nil
}

// LoadSnapshot reads a snapshot written by Save, refusing
// mismatched format versions. The reconstructed ecosystem is
// assembled exactly as New + the serialized history would have left
// it — same stream positions, same clock, same fabricated and aged
// hardware, same daemon state — so Restores from it are
// bit-indistinguishable from Restores of the original in-memory
// snapshot (pinned by TestSnapshotDiskRoundTrip).
func LoadSnapshot(r io.Reader) (*Snapshot, error) {
	dec := gob.NewDecoder(r)
	var version int
	if err := dec.Decode(&version); err != nil {
		return nil, fmt.Errorf("core: reading snapshot version: %w", err)
	}
	if version != SnapshotFormatVersion {
		return nil, fmt.Errorf("core: snapshot format version %d does not match this build's %d; refusing to load",
			version, SnapshotFormatVersion)
	}
	var st snapshotState
	if err := dec.Decode(&st); err != nil {
		return nil, fmt.Errorf("core: reading snapshot state: %w", err)
	}
	opts := Options{
		Seed:         st.Options.Seed,
		Part:         st.Options.Part,
		Mem:          st.Options.Mem,
		Hyp:          st.Options.Hyp,
		StressPeriod: st.Options.StressPeriod,
		AmbientCPUC:  st.Options.AmbientCPUC,
		AmbientDIMMC: st.Options.AmbientDIMMC,
	}
	if st.Chip == nil || st.Mem == nil {
		return nil, errors.New("core: snapshot state missing chip or memory system")
	}

	clock := telemetry.NewClock(st.Clock)
	st.Chip.SetStressedHours(st.StressedHours)
	machine := cpu.RestoreMachine(opts.Part, st.Chip, st.MachineStream)
	st.Mem.Reindex()
	health := healthlog.NewFromState(st.Health, clock, nil)
	refresh := power.DRAMRefreshModel{DeviceGb: opts.Mem.DeviceGb, TotalMemW: 12}
	stressd, err := stresslog.NewFromState(st.Stress, clock, machine, st.Mem, health, refresh)
	if err != nil {
		return nil, fmt.Errorf("core: restoring stresslog: %w", err)
	}
	health.OnStressTrigger(stressd.TriggerHandler())
	hyp, err := hypervisor.New(opts.Hyp, hypervisor.ObjectMapFromState(st.Objects, st.Profiles), st.Mem)
	if err != nil {
		return nil, fmt.Errorf("core: rebuilding hypervisor: %w", err)
	}
	model := st.Model

	e := &Ecosystem{
		Clock:      clock,
		Machine:    machine,
		Mem:        st.Mem,
		Health:     health,
		Stress:     stressd,
		Model:      &model,
		Hypervisor: hyp,

		opts:     opts,
		src:      rng.FromState(st.Src),
		power:    power.DefaultCPUModel(),
		refresh:  refresh,
		mode:     st.Mode,
		cpuTherm: thermal.CPUNode(opts.AmbientCPUC),
		memTherm: thermal.DIMMNode(opts.AmbientDIMMC),
		trip:     thermal.DefaultTrip(),
		dramHits: make(map[string]int),
	}
	if st.Table != nil {
		e.setTable(st.Table)
	}
	if st.HasAdvisor {
		e.advisor = predictor.NewAdvisor(e.Model, e.table)
		e.advisor.MaxBackoffMV = st.MaxBackoff
	}
	e.coreNames = make([]string, opts.Part.Cores)
	for c := range e.coreNames {
		e.coreNames[c] = fmt.Sprintf("%s/core%d", opts.Part.Model, c)
	}
	e.coreOf = func(string) int { return e.curCore }
	return &Snapshot{proto: e}, nil
}
