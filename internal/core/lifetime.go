package core

import (
	"errors"
	"fmt"
	"time"

	"uniserver/internal/dram"
	"uniserver/internal/silicon"
	"uniserver/internal/telemetry"
	"uniserver/internal/vfr"
	"uniserver/internal/workload"
)

// This file is the lifetime engine: the multi-epoch time model of
// Section 3.D. A deployment's lifetime is a sequence of windowed
// epochs separated by fast-forward gaps — weeks-to-months spans that
// advance the slow state (silicon aging, DRAM telegraph noise, the
// season, the re-characterization schedule) analytically instead of
// stepping half a million one-minute windows — with scheduled
// re-characterizations refreshing the EOP table mid-life ("these new
// values may need to be updated several times over the lifetime of a
// server", and AVATAR's argument that one-shot characterization
// cannot be trusted in the field).

// Gap is one fast-forward interval between lifetime epochs.
type Gap struct {
	// Days is the gap length in whole days. Fast-forward advances in
	// one-day coarse steps, which is what makes splitting a gap exact:
	// a 90-day gap and three 30-day gaps perform the identical
	// sequence of per-day aging and telegraph draws.
	Days int
	// Duty is the mean silicon stress (activity) the machine sustains
	// across the unsimulated span, in [0,1]. The aging power law
	// accumulates Days×24h at this stress.
	Duty float64
	// AmbientCPUC and AmbientDIMMC, when non-zero, retarget the
	// ambient temperatures at the start of the gap — the seasonal
	// lever (a gap from spring into summer lands the next epoch in a
	// hot machine room). Zero keeps the current ambient.
	AmbientCPUC  float64
	AmbientDIMMC float64
}

// Validate reports declaration errors.
func (g Gap) Validate() error {
	if g.Days <= 0 {
		return fmt.Errorf("core: gap needs positive days, got %d", g.Days)
	}
	if g.Duty < 0 || g.Duty > 1 {
		return fmt.Errorf("core: gap duty %g outside [0,1]", g.Duty)
	}
	return nil
}

// LifetimePlan is a deployment's multi-epoch phase plan.
type LifetimePlan struct {
	// EpochWindows[i] is the number of runtime windows epoch i
	// simulates. At least one epoch is required.
	EpochWindows []int
	// Gaps[i] is the fast-forward interval preceding epoch i+1; its
	// length must be len(EpochWindows)-1.
	Gaps []Gap
	// RecharactEvery, when positive, is the scheduled
	// re-characterization cadence: the StressLog period is retargeted
	// to it, and every epoch entry where the cadence has elapsed since
	// the last campaign runs one before serving resumes. Zero keeps
	// the ecosystem's configured StressPeriod.
	RecharactEvery time.Duration
}

// UniformPlan is the common shape — `epochs` equal epochs of
// `windows` windows, separated by identical gaps — used by the CLI's
// -lifetime flag and the scenario compiler.
func UniformPlan(epochs, windows, gapDays int, duty float64) LifetimePlan {
	p := LifetimePlan{EpochWindows: make([]int, epochs)}
	for i := range p.EpochWindows {
		p.EpochWindows[i] = windows
	}
	if epochs > 1 {
		p.Gaps = make([]Gap, epochs-1)
		for i := range p.Gaps {
			p.Gaps[i] = Gap{Days: gapDays, Duty: duty}
		}
	}
	return p
}

// Validate reports declaration errors.
func (p LifetimePlan) Validate() error {
	if len(p.EpochWindows) == 0 {
		return errors.New("core: lifetime plan needs at least one epoch")
	}
	for i, w := range p.EpochWindows {
		if w <= 0 {
			return fmt.Errorf("core: epoch %d needs positive windows, got %d", i, w)
		}
	}
	if len(p.Gaps) != len(p.EpochWindows)-1 {
		return fmt.Errorf("core: plan has %d epochs but %d gaps (want %d)",
			len(p.EpochWindows), len(p.Gaps), len(p.EpochWindows)-1)
	}
	for i, g := range p.Gaps {
		if err := g.Validate(); err != nil {
			return fmt.Errorf("core: gap %d: %w", i, err)
		}
	}
	if p.RecharactEvery < 0 {
		return fmt.Errorf("core: negative re-characterization cadence %v", p.RecharactEvery)
	}
	return nil
}

// TotalWindows returns the number of runtime windows the plan
// simulates across all epochs.
func (p LifetimePlan) TotalWindows() int {
	total := 0
	for _, w := range p.EpochWindows {
		total += w
	}
	return total
}

// Epochs returns the number of epochs in the plan.
func (p LifetimePlan) Epochs() int { return len(p.EpochWindows) }

// EpochSummary is one epoch's row of a deployment's margin
// trajectory: the aging and published-margin state the epoch entered
// with, and what happened during it. AgeShiftMV is nondecreasing
// across a lifetime (aging only accumulates), which is the
// monotone-drift signature lifetime scenarios assert.
type EpochSummary struct {
	// Epoch is the epoch index (0 = the initial deployment).
	Epoch int `json:"epoch"`
	// GapDays is the fast-forward span that preceded this epoch (0
	// for epoch 0).
	GapDays int `json:"gap_days"`
	// Windows is the number of runtime windows the epoch simulated.
	Windows int `json:"windows"`
	// AgeShiftMV is the chip's accumulated critical-voltage drift at
	// epoch entry, after the preceding gap's aging.
	AgeShiftMV float64 `json:"age_shift_mv"`
	// SafeVoltageMV is the worst-core published safe point the epoch
	// ran at (refreshed when an entry campaign ran).
	SafeVoltageMV int `json:"safe_voltage_mv"`
	// Recharacterized counts the StressLog campaigns during the epoch,
	// the cadence-driven entry campaign included.
	Recharacterized int `json:"recharacterized"`
}

// windowsPerDay is how many observation windows one coarse
// fast-forward day stands for.
const windowsPerDay = int(24 * time.Hour / telemetry.WindowQuantum)

// FastForward advances the ecosystem across a gap without stepping
// windows. Per coarse day it jumps the clock, ages the silicon at the
// gap's duty (the same closed-form power law the windowed path
// accumulates), and advances every DRAM VRT cell's telegraph state by
// a day's worth of switching in one draw (dram.CoarseToggleProb). At
// the end the thermal nodes and the DRAM temperature re-seat at
// ambient — months dwarf their RC constants — which is also what
// makes a post-gap ecosystem snapshot-legal (see Snapshot).
//
// What fast-forward deliberately does NOT touch: the guests and the
// hypervisor (tenant traffic across gaps is not modeled), the
// HealthLog history (no windows, no information vectors), and the EOP
// table (only campaigns publish margins). The caller decides whether
// a re-characterization is due after the jump.
//
// Determinism: the only stream draws are one child split plus the VRT
// draws per day, so state after fast-forwarding N days is a pure
// function of the entry state and N — splitting one gap into several
// with the same total days and duty is exactly equivalent.
func (e *Ecosystem) FastForward(g Gap, model silicon.AgingModel) error {
	if err := g.Validate(); err != nil {
		return err
	}
	if g.AmbientCPUC != 0 || g.AmbientDIMMC != 0 {
		cpuC, dimmC := e.cpuTherm.AmbientC, e.memTherm.AmbientC
		if g.AmbientCPUC != 0 {
			cpuC = g.AmbientCPUC
		}
		if g.AmbientDIMMC != 0 {
			dimmC = g.AmbientDIMMC
		}
		e.SetAmbient(cpuC, dimmC)
	}
	for day := 0; day < g.Days; day++ {
		if _, err := e.Clock.AdvanceCoarse(24 * time.Hour); err != nil {
			return fmt.Errorf("core: fast-forward day %d: %w", day, err)
		}
		e.Machine.Chip.Age(model, 24*time.Hour, g.Duty)
		daySrc := e.src.Split()
		for _, dom := range e.Mem.Domains {
			dram.ToggleVRTCoarse(dom, windowsPerDay, daySrc)
		}
		// Weak-cell population growth (SetWeakGrowth) appends its draws
		// to the same per-day child stream: a zero rate draws nothing,
		// and the parent stream never sees how much a child consumed, so
		// growth-free runs are bit-identical to the pre-growth engine.
		if e.weakGrowthPerDay > 0 {
			for _, dom := range e.Mem.Domains {
				dram.GrowWeakCells(dom, 1, e.weakGrowthPerDay, e.Mem.Model, daySrc)
			}
		}
	}
	// Months at ambient: die, DIMM and memory-system temperatures have
	// fully relaxed.
	e.cpuTherm.TempC = e.cpuTherm.AmbientC
	e.memTherm.TempC = e.memTherm.AmbientC
	e.Mem.TempC = e.memTherm.AmbientC
	e.atEpochBoundary = true
	return nil
}

// FastForward advances the deployment across a gap: the current epoch
// is closed into the margin trajectory, the ecosystem fast-forwards
// (aging at the deployment's model), and the next epoch's entry state
// is recorded. Call MaybeRecharacterize afterwards to honour the
// re-characterization cadence before stepping the new epoch.
func (d *Deployment) FastForward(g Gap) error {
	if err := d.eco.FastForward(g, d.aging); err != nil {
		return err
	}
	d.closeEpoch()
	d.epochGapDays = g.Days
	d.epochStartWindows = d.sum.Windows
	d.epochStartRechar = d.sum.Recharacterized
	d.epochEntryAge = d.eco.Machine.Chip.AgeShiftMV
	if m, err := d.eco.worstCPUMargin(); err == nil {
		d.epochEntrySafe = m.Safe.VoltageMV
	}
	return nil
}

// openEpochRow renders the in-progress epoch's trajectory row from
// the current counters — shared by closeEpoch (gap boundaries) and
// Summary (the final, still-open epoch), so the two can never drift.
func (d *Deployment) openEpochRow() EpochSummary {
	return EpochSummary{
		Epoch:           len(d.epochs),
		GapDays:         d.epochGapDays,
		Windows:         d.sum.Windows - d.epochStartWindows,
		AgeShiftMV:      d.epochEntryAge,
		SafeVoltageMV:   d.epochEntrySafe,
		Recharacterized: d.sum.Recharacterized - d.epochStartRechar,
	}
}

// closeEpoch appends the finished epoch to the trajectory.
func (d *Deployment) closeEpoch() {
	d.epochs = append(d.epochs, d.openEpochRow())
}

// SetCadence retargets the StressLog's periodic re-characterization
// interval — the lifetime plan's cadence dial. Zero or negative
// leaves the configured StressPeriod in place.
func (d *Deployment) SetCadence(every time.Duration) {
	if every > 0 {
		d.eco.Stress.SetPeriod(every)
	}
}

// MaybeRecharacterize runs a scheduled campaign if the periodic
// cadence has elapsed — the epoch-entry check the paper's "every 2-3
// months" schedule implies — and reports whether one ran. An armed
// drift policy gates the decision exactly as it does inside Step.
func (d *Deployment) MaybeRecharacterize() (bool, error) {
	if !d.scheduledCampaignDue() {
		return false, nil
	}
	if err := d.RecharacterizeNow(); err != nil {
		return true, err
	}
	return true, nil
}

// RecharacterizeNow takes the node offline for a StressLog campaign,
// refreshes the EOP table, and re-enters the deployment's mode at the
// drifted margins. It is the single re-characterization path: crash-
// and threshold-triggered campaigns inside Step and cadence-driven
// epoch-entry campaigns all land here, so the Recharacterized counter
// means the same thing everywhere.
func (d *Deployment) RecharacterizeNow() error {
	e := d.eco
	if _, err := e.Recharacterize(); err != nil {
		return err
	}
	d.sum.Recharacterized++
	if _, err := e.EnterMode(d.mode, d.risk, d.wl); err != nil {
		return err
	}
	// The fresh table is the new drift baseline, and the re-derived
	// point supersedes any closed-loop offset.
	d.lastCampaignAge = e.Machine.Chip.AgeShiftMV
	d.eccExtraMV = 0
	if d.sum.Windows == d.epochStartWindows {
		// Entry campaign: the epoch runs at the refreshed point, so the
		// trajectory records the post-campaign margin.
		if m, err := e.worstCPUMargin(); err == nil {
			d.epochEntrySafe = m.Safe.VoltageMV
		}
	}
	return nil
}

// RunLifetime supervises a full multi-epoch lifetime: epoch 0's
// windows, then per subsequent epoch a fast-forward gap, a
// cadence-driven re-characterization check, and the epoch's windows.
// It is the batch form the CLI's single-node -lifetime mode uses; the
// fleet engine drives the same primitives per node with its own
// stepping loop.
func (e *Ecosystem) RunLifetime(mode vfr.Mode, riskTarget float64, wl workload.Profile, plan LifetimePlan) (DeploymentSummary, error) {
	if err := plan.Validate(); err != nil {
		return DeploymentSummary{}, err
	}
	d, err := e.StartDeployment(mode, riskTarget, wl)
	if err != nil {
		return DeploymentSummary{}, err
	}
	d.SetCadence(plan.RecharactEvery)
	for ei, windows := range plan.EpochWindows {
		if ei > 0 {
			if err := d.FastForward(plan.Gaps[ei-1]); err != nil {
				return d.Summary(), err
			}
			if _, err := d.MaybeRecharacterize(); err != nil {
				return d.Summary(), err
			}
		}
		for w := 0; w < windows; w++ {
			if _, err := d.Step(); err != nil {
				return d.Summary(), err
			}
		}
	}
	return d.Summary(), nil
}
