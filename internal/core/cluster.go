package core

import (
	"errors"
	"fmt"

	"uniserver/internal/openstack"
	"uniserver/internal/predictor"
	"uniserver/internal/vfr"
	"uniserver/internal/workload"
)

// clusterReferenceWorkload is the profile the cluster constructor uses
// to pick each node's operating point.
func clusterReferenceWorkload() workload.Profile { return workload.WebFrontend() }

// PredictedFailProb returns the node's per-window crash probability at
// its current operating point for a mid-droop workload, as the trained
// Predictor sees it. This is the reliability input the cloud layer
// consumes, both at node export and on every fleet epoch, so scheduling
// decisions track the node's live health rather than a stale snapshot.
func (e *Ecosystem) PredictedFailProb() (float64, error) {
	if e.advisor == nil {
		return 0, ErrNotCharacterized
	}
	point := e.Hypervisor.Point()
	nominal := e.Machine.Spec.Nominal
	f := predictor.Features{
		UndervoltPct:   -point.VoltageOffsetPct(nominal.VoltageMV),
		DroopIntensity: 0.5,
		TempC:          55,
	}
	failProb := e.Model.Predict(f)
	// The logistic model saturates near 0 at safe points; floor at a
	// tiny hardware-lottery baseline so scheduling still discriminates.
	if failProb < 1e-4 {
		failProb = 1e-4
	}
	return failProb, nil
}

// Node exports the characterized ecosystem as a schedulable cloud
// node: its failure probability comes from the trained Predictor at
// the node's current operating point, and its power envelope from the
// CPU power model — so the OpenStack layer's reliability metric is
// grounded in the same models that drive the node-level decisions.
func (e *Ecosystem) Node(name string, memBytes uint64) (*openstack.Node, error) {
	failProb, err := e.PredictedFailProb()
	if err != nil {
		return nil, fmt.Errorf("core: exporting node %q: %w", name, err)
	}
	point := e.Hypervisor.Point()

	n := openstack.NewNode(name, e.Hypervisor.AvailableCores(), memBytes, failProb)
	n.Mode = e.mode
	n.IdlePowerW = e.power.TotalW(point, 0.05, 45)
	n.BusyPowerW = e.power.TotalW(point, 0.9, 65)
	if n.BusyPowerW <= n.IdlePowerW {
		return nil, fmt.Errorf("core: degenerate power envelope for %q", name)
	}
	// The mode's risk premium is already baked into failProb via the
	// operating point; disable the abstract multiplier.
	n.EOPRiskFactor = 1
	return n, nil
}

// Cluster builds a manager over n ecosystems exported as nodes, all
// entered into the same mode. It is the Figure 2 story at rack scale:
// every node runs its own daemons and margins; the resource manager
// sees their reliability and energy characteristics.
func Cluster(ecos []*Ecosystem, mode vfr.Mode, riskTarget float64, memBytesPerNode uint64, policy openstack.Policy) (*openstack.Manager, error) {
	if len(ecos) == 0 {
		return nil, errors.New("core: empty cluster")
	}
	nodes := make([]*openstack.Node, 0, len(ecos))
	for i, e := range ecos {
		wl := clusterReferenceWorkload()
		if _, err := e.EnterMode(mode, riskTarget, wl); err != nil {
			return nil, fmt.Errorf("core: node %d enter mode: %w", i, err)
		}
		n, err := e.Node(fmt.Sprintf("uniserver-%02d", i), memBytesPerNode)
		if err != nil {
			return nil, err
		}
		nodes = append(nodes, n)
	}
	return openstack.NewManager(policy, nodes...)
}
