package core

import (
	"fmt"
	"io"

	"uniserver/internal/rng"
	"uniserver/internal/telemetry"
	"uniserver/internal/thermal"
)

// Snapshot is a deep, alias-free copy of a characterized ecosystem:
// the CPU and silicon state (per-core margins, aging drift), the DRAM
// weak-cell population with VRT telegraph states, the published EOP
// table, the StressLog history and virus archive, the HealthLog's
// retained vectors and rolling error windows, the hypervisor's object
// inventory, placements and pinning, the thermal nodes, and — the part
// that makes byte-identical restoration possible — the exact positions
// of every labeled RNG stream and the simulated clock.
//
// The intended use is checkpoint/restore of pre-deployment
// characterization (the gem5-style trick): run core.New +
// PreDeployment once per distinct (seed, part, memory) configuration,
// Snapshot the result, and Restore a fresh ecosystem per consumer
// instead of re-running the multi-second campaign. Restores are fully
// independent of each other and of the snapshot source: no mutable
// state is shared, so restored ecosystems can be stepped concurrently.
//
// Take the snapshot when the thermal state is re-derivable from
// ambient: after PreDeployment and before the first runtime window,
// or — since the lifetime engine — on an epoch boundary right after a
// fast-forward gap, which re-seats the thermal nodes at ambient
// exactly as Restore does. In both positions a restored ecosystem is
// indistinguishable, stream for stream and byte for byte, from its
// source (pass the source's current ambient in RestoreOptions for
// mid-life snapshots). Snapshotting mid-epoch would lose the
// accumulated die/DIMM temperatures, so Snapshot refuses it with an
// error rather than corrupting restores silently.
type Snapshot struct {
	proto *Ecosystem
}

// Snapshot captures the ecosystem's current state. The capture is
// itself a deep copy, so the live ecosystem can keep running (or be
// discarded) without disturbing later Restores. It returns an error
// when runtime windows have run and the ecosystem is not on an epoch
// boundary: Restore re-derives the thermal nodes from ambient, which
// is exact only where the thermal state already sits at ambient.
func (e *Ecosystem) Snapshot() (*Snapshot, error) {
	if e.windowsRun > 0 && !e.atEpochBoundary {
		return nil, fmt.Errorf("core: snapshot after %d runtime windows is unsupported mid-epoch (thermal state would be lost on restore); snapshot before the first window or on a fast-forward epoch boundary", e.windowsRun)
	}
	proto, err := e.clone(nil)
	if err != nil {
		return nil, fmt.Errorf("core: snapshot: %w", err)
	}
	return &Snapshot{proto: proto}, nil
}

// RestoreOptions rebind the per-node surfaces a restored ecosystem
// must not share with its snapshot siblings.
type RestoreOptions struct {
	// HealthLogOut receives the restored ecosystem's JSON-lines health
	// log from here on; nil discards. Lines recorded before the
	// snapshot were written to the original's writer and are not
	// replayed (the fleet cache captures and replays them itself).
	HealthLogOut io.Writer
	// AmbientCPUC and AmbientDIMMC re-seat the thermal nodes, with
	// exactly the Options semantics: zero means the defaults (28 and
	// 34 °C). This is what lets cells that differ only in environment
	// share one characterization — pre-deployment never touches the
	// thermal state, so re-seating reproduces core.New verbatim.
	AmbientCPUC  float64
	AmbientDIMMC float64
}

// Restore materializes an independent ecosystem from the snapshot.
// Every restore is a fresh deep copy: restores never share mutable
// state with each other or with the snapshot.
func (s *Snapshot) Restore(opts RestoreOptions) (*Ecosystem, error) {
	c, err := s.proto.clone(opts.HealthLogOut)
	if err != nil {
		return nil, fmt.Errorf("core: restore: %w", err)
	}
	ambCPU, ambDIMM := opts.AmbientCPUC, opts.AmbientDIMMC
	if ambCPU == 0 {
		ambCPU = 28
	}
	if ambDIMM == 0 {
		ambDIMM = 34
	}
	c.opts.AmbientCPUC, c.opts.AmbientDIMMC = ambCPU, ambDIMM
	c.cpuTherm = thermal.CPUNode(ambCPU)
	c.memTherm = thermal.DIMMNode(ambDIMM)
	return c, nil
}

// Reseed re-keys the ecosystem's runtime-facing random streams to a
// fresh seed — the archetype-clone hook. A fleet that characterizes
// one ecosystem per silicon/DRAM bin Restores a deep copy per node
// and Reseeds each copy with the node's own seed, so everything the
// deployment draws from here on — per-window core sampling, DRAM
// retention windows, fast-forward telegraph draws, re-characterization
// campaigns, machine measurement noise — diverges per node while the
// characterized state (published EOP table, weak-cell population,
// trained predictor, protected objects) stays the bin's.
//
// The main stream is repositioned at exactly the state a fresh
// New(seed) ecosystem carries into deployment: construction and
// PreDeployment consume only labeled child streams, never the main
// stream, so rng.New(seed) is that state verbatim. The machine's
// measurement stream moves to a labeled split of the same seed
// ("machine/runtime" — a label no construction-time consumer uses),
// repositioned in place so the StressLog daemon's machine reference
// observes it too. Like Snapshot, reseeding is only exact where no
// mid-epoch runtime state could alias the old streams: before the
// first window or on an epoch boundary.
func (e *Ecosystem) Reseed(seed uint64) error {
	if e.windowsRun > 0 && !e.atEpochBoundary {
		return fmt.Errorf("core: reseed after %d runtime windows is unsupported mid-epoch; reseed before the first window or on a fast-forward epoch boundary", e.windowsRun)
	}
	e.opts.Seed = seed
	e.src = rng.New(seed)
	e.Machine.ReseedStream(rng.New(seed).SplitLabeled("machine/runtime").State())
	return nil
}

// clone deep-copies the ecosystem, directing future health-log lines
// to out. The ownership rules (see DESIGN.md "Snapshot ownership"):
//
//   - Deep-copied: the rng stream positions and the clock; the machine
//     (silicon margins, aging, measurement stream); the memory system
//     (weak cells, VRT states, refresh intervals); the HealthLog's
//     retained history and counters; the StressLog's schedule,
//     history and virus archive; the hypervisor (objects, guests,
//     pins, placements, isolation, counters); the predictor model and
//     the published EOP table.
//   - Re-derived, exactly as New would: the HealthLog→StressLog
//     trigger wiring, the advisor (rebound to the cloned model and
//     table), the per-window scratch (component names, DRAM hit map,
//     core resolver), and — in Restore — the thermal nodes.
//   - Shared: nothing mutable. The only aliases the clone keeps are
//     immutable values (strings, specs, model parameters by value).
func (e *Ecosystem) clone(out io.Writer) (*Ecosystem, error) {
	opts := e.opts
	opts.HealthLogOut = out

	clock := telemetry.NewClock(e.Clock.Now())
	machine := e.Machine.Clone()
	mem := e.Mem.Clone()
	health := e.Health.Clone(clock, out)
	stressd := e.Stress.Clone(clock, machine, mem, health)
	health.OnStressTrigger(stressd.TriggerHandler())
	hyp, err := e.Hypervisor.Clone(mem)
	if err != nil {
		return nil, err
	}
	src := *e.src
	model := *e.Model

	c := &Ecosystem{
		Clock:      clock,
		Machine:    machine,
		Mem:        mem,
		Health:     health,
		Stress:     stressd,
		Model:      &model,
		Hypervisor: hyp,

		opts:             opts,
		src:              &src,
		power:            e.power,
		refresh:          e.refresh,
		mode:             e.mode,
		weakGrowthPerDay: e.weakGrowthPerDay,
		cpuTherm:         &thermal.Node{},
		memTherm:         &thermal.Node{},
		trip:             e.trip,
		worstComp:        e.worstComp,
		worstMargin:      e.worstMargin,
		windowsRun:       e.windowsRun,
		atEpochBoundary:  e.atEpochBoundary,
		dramHits:         make(map[string]int),
	}
	*c.cpuTherm = *e.cpuTherm
	*c.memTherm = *e.memTherm
	if e.table != nil {
		c.table = e.table.Clone()
	}
	if e.advisor != nil {
		adv := *e.advisor
		adv.Model = c.Model
		adv.Table = c.table
		c.advisor = &adv
	}
	c.coreNames = make([]string, opts.Part.Cores)
	for i := range c.coreNames {
		c.coreNames[i] = fmt.Sprintf("%s/core%d", opts.Part.Model, i)
	}
	c.coreOf = func(string) int { return c.curCore }
	return c, nil
}
