package core

import (
	"fmt"
	"time"

	"uniserver/internal/dram"
	"uniserver/internal/healthlog"
	"uniserver/internal/predictor"
	"uniserver/internal/stresslog"
	"uniserver/internal/thermal"
	"uniserver/internal/vfr"
)

// RestoreTemplate is a Snapshot compiled for mass restoration: the
// snapshot's object graph flattened once into immutable, pointer-free
// images (DRAM weak-cell and VRT slabs, health-log sensor/error
// slabs, stress history, precomputed derived state such as the
// per-core component names and the snapshot clock origin), so that
// stamping a node becomes bulk copies into a reusable arena instead of
// an allocation walk over the graph. A template is immutable after
// Compile and safe for concurrent RestoreInto calls from any number of
// workers with zero shared-lock acquisitions: every mutex the legacy
// deep-restore path had to take on the shared snapshot is paid once at
// compile time.
//
// RestoreInto is pinned byte-for-byte against Snapshot.Restore by the
// equivalence tests: same fingerprints, same health-log bytes, same
// stream positions. The legacy path stays as the reference
// implementation.
type RestoreTemplate struct {
	proto     *Ecosystem // immutable; shared with the Snapshot
	origin    time.Time  // proto clock position, read once at compile
	health    *healthlog.Compiled
	stressd   *stresslog.Compiled
	flatMem   *dram.FlatMemory
	coreNames []string // precomputed "%s/core%d" setTable names
}

// Compile flattens the snapshot into its template form. The snapshot
// stays valid; template and snapshot share only immutable state.
func (s *Snapshot) Compile() *RestoreTemplate {
	t := &RestoreTemplate{
		proto:   s.proto,
		origin:  s.proto.Clock.Now(),
		health:  s.proto.Health.Compile(),
		stressd: s.proto.Stress.Compile(),
		flatMem: s.proto.Mem.Flatten(),
	}
	t.coreNames = make([]string, s.proto.opts.Part.Cores)
	for i := range t.coreNames {
		t.coreNames[i] = fmt.Sprintf("%s/core%d", s.proto.opts.Part.Model, i)
	}
	return t
}

// RestoreArena is one worker's reusable restore destination: an
// ecosystem whose object graph is built once (on the first stamp) and
// overwritten in place by every later RestoreInto, so steady-state
// restores allocate almost nothing. An arena is single-owner — one
// worker goroutine stamps and runs one node at a time — and must not
// be handed to a consumer that outlives the next stamp, which the
// fleet engine's node lifecycle guarantees (nothing retained from a
// finished node aliases ecosystem internals).
type RestoreArena struct {
	eco *Ecosystem
	// trigger is the arena stress daemon's campaign-request callback,
	// created once: the daemon pointer is stable across stamps, so the
	// closure stays valid and re-wiring it is allocation-free.
	trigger func(healthlog.TriggerReason)
}

// NewRestoreArena returns an empty arena; the first RestoreInto
// populates it.
func NewRestoreArena() *RestoreArena { return &RestoreArena{} }

// RestoreInto materializes an independent ecosystem from the template
// into the arena, equivalent in every observable way to
// Snapshot.Restore with the same options. The returned ecosystem IS
// the arena's (reused across calls): it is valid until the next
// RestoreInto on the same arena.
func (t *RestoreTemplate) RestoreInto(a *RestoreArena, opts RestoreOptions) (*Ecosystem, error) {
	if a.eco == nil {
		// Cold path: build the arena graph with the reference deep
		// clone, then cache the trigger closure for later re-wires.
		c, err := t.proto.clone(opts.HealthLogOut)
		if err != nil {
			return nil, fmt.Errorf("core: template restore: %w", err)
		}
		seatAmbient(c, opts)
		a.eco = c
		a.trigger = c.Stress.TriggerHandler()
		return c, nil
	}

	c := a.eco
	c.opts = t.proto.opts
	c.opts.HealthLogOut = opts.HealthLogOut

	c.Clock.Reset(t.origin)
	c.Machine.StampFrom(t.proto.Machine)
	t.flatMem.StampInto(c.Mem)
	t.health.StampInto(c.Health, c.Clock, opts.HealthLogOut)
	c.Health.RewireStressTrigger(a.trigger)
	t.stressd.StampInto(c.Stress, c.Clock, c.Machine, c.Mem, c.Health)
	if err := c.Hypervisor.StampFrom(t.proto.Hypervisor, c.Mem); err != nil {
		return nil, fmt.Errorf("core: template restore: %w", err)
	}

	*c.src = *t.proto.src
	*c.Model = *t.proto.Model
	c.power = t.proto.power
	c.refresh = t.proto.refresh
	c.mode = t.proto.mode
	c.weakGrowthPerDay = t.proto.weakGrowthPerDay
	c.trip = t.proto.trip
	c.worstComp = t.proto.worstComp
	c.worstMargin = t.proto.worstMargin
	c.windowsRun = t.proto.windowsRun
	c.atEpochBoundary = t.proto.atEpochBoundary

	if t.proto.table == nil {
		c.table = nil
	} else {
		if c.table == nil {
			c.table = vfr.NewEOPTable()
		}
		c.table.CopyFrom(t.proto.table)
	}
	if t.proto.advisor == nil {
		c.advisor = nil
	} else {
		if c.advisor == nil {
			c.advisor = &predictor.Advisor{}
		}
		*c.advisor = *t.proto.advisor
		c.advisor.Model = c.Model
		c.advisor.Table = c.table
	}

	c.coreNames = append(c.coreNames[:0], t.coreNames...)
	clear(c.dramHits)
	// c.coreOf was created by the cold path's clone and captures the
	// (stable) arena ecosystem; c.curCore and c.dramSrc are per-window
	// scratch, always written before read.

	seatAmbient(c, opts)
	return c, nil
}

// seatAmbient applies RestoreOptions' thermal re-seat with exactly
// Restore's semantics, writing through the existing thermal nodes so
// arena stamps keep their pointers.
func seatAmbient(c *Ecosystem, opts RestoreOptions) {
	ambCPU, ambDIMM := opts.AmbientCPUC, opts.AmbientDIMMC
	if ambCPU == 0 {
		ambCPU = 28
	}
	if ambDIMM == 0 {
		ambDIMM = 34
	}
	c.opts.AmbientCPUC, c.opts.AmbientDIMMC = ambCPU, ambDIMM
	*c.cpuTherm = *thermal.CPUNode(ambCPU)
	*c.memTherm = *thermal.DIMMNode(ambDIMM)
}
