package core

import (
	"testing"
	"time"

	"uniserver/internal/silicon"
	"uniserver/internal/vfr"
	"uniserver/internal/workload"
)

func TestHandleCrashFallsBackToNominal(t *testing.T) {
	e, _ := readyEcosystem(t, 31)
	if _, err := e.EnterMode(vfr.ModeHighPerformance, 0.05, workload.WebFrontend()); err != nil {
		t.Fatal(err)
	}
	if e.Hypervisor.Point().VoltageMV >= e.Machine.Spec.Nominal.VoltageMV {
		t.Fatal("precondition: should be undervolted")
	}
	if err := e.HandleCrash(); err != nil {
		t.Fatal(err)
	}
	if e.Hypervisor.Point() != e.Machine.Spec.Nominal {
		t.Fatalf("not at nominal after crash: %v", e.Hypervisor.Point())
	}
	if e.Mode() != vfr.ModeNominal {
		t.Fatalf("mode = %v", e.Mode())
	}
	for _, dom := range e.Mem.RelaxedDomains() {
		if dom.Refresh != vfr.NominalRefresh {
			t.Fatalf("domain %s still relaxed: %v", dom.Name, dom.Refresh)
		}
	}
}

func TestRecharacterizeRefreshesTable(t *testing.T) {
	e, _ := readyEcosystem(t, 32)
	before, err := e.Table().Lookup("i5-4200U/core0")
	if err != nil {
		t.Fatal(err)
	}
	// Age the part so the new campaign must publish a different point.
	e.Machine.Chip.Age(silicon.DefaultAgingModel(), 300*24*time.Hour, 1)
	vec, err := e.Recharacterize()
	if err != nil {
		t.Fatal(err)
	}
	after, err := e.Table().Lookup("i5-4200U/core0")
	if err != nil {
		t.Fatal(err)
	}
	if after.Safe.VoltageMV <= before.Safe.VoltageMV {
		t.Fatalf("aged recharacterization did not tighten margin: %d vs %d",
			after.Safe.VoltageMV, before.Safe.VoltageMV)
	}
	if vec.Table != e.Table() {
		t.Fatal("table not swapped")
	}
	// Advisor follows the new table.
	p, err := e.EnterMode(vfr.ModeHighPerformance, 0.05, workload.WebFrontend())
	if err != nil {
		t.Fatal(err)
	}
	if p.VoltageMV < after.Safe.VoltageMV {
		t.Fatalf("advice %d below the refreshed safe point %d", p.VoltageMV, after.Safe.VoltageMV)
	}
}

func TestRunDeploymentClosedLoop(t *testing.T) {
	e, _ := readyEcosystem(t, 33)
	sum, err := e.RunDeployment(vfr.ModeHighPerformance, 0.01, workload.WebFrontend(), 240)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Windows != 240 {
		t.Fatalf("windows = %d", sum.Windows)
	}
	if sum.WindowsAtEOP+sum.WindowsAtNominal != sum.Windows {
		t.Fatal("window accounting inconsistent")
	}
	// The whole point: the node spends the overwhelming majority of
	// its life at the extended point, not at nominal.
	if sum.WindowsAtEOP < sum.Windows*9/10 {
		t.Fatalf("only %d/%d windows at EOP", sum.WindowsAtEOP, sum.Windows)
	}
	if sum.EnergySavedWh <= 0 {
		t.Fatal("no energy saved")
	}
	if sum.FinalAgeShiftMV <= 0 {
		t.Fatal("aging never advanced")
	}
	if sum.FinalSafeVoltageMV == 0 {
		t.Fatal("final margin missing")
	}
	// Crashes, if any, must all have been recovered via fallback.
	if sum.Crashes != sum.Fallbacks {
		t.Fatalf("crashes %d != fallbacks %d", sum.Crashes, sum.Fallbacks)
	}
}

func TestRunDeploymentRespectsMode(t *testing.T) {
	e, _ := readyEcosystem(t, 34)
	sum, err := e.RunDeployment(vfr.ModeLowPower, 0.01, workload.IoTEdgeAnalytics(), 60)
	if err != nil {
		t.Fatal(err)
	}
	if e.Mode() != vfr.ModeLowPower && sum.Crashes == 0 {
		t.Fatalf("mode = %v with no crash to explain it", e.Mode())
	}
	if e.Hypervisor.Point().FreqMHz >= e.Machine.Spec.Nominal.FreqMHz && sum.Crashes == 0 {
		t.Fatal("low-power deployment running at full frequency")
	}
}
