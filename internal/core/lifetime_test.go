package core

import (
	"testing"
	"time"

	"uniserver/internal/dram"
	"uniserver/internal/vfr"
	"uniserver/internal/workload"
)

// lifetimeTestOptions keeps lifetime tests fast: a small memory
// system makes characterization and fabrication cheap.
func lifetimeTestOptions(seed uint64) Options {
	opts := DefaultOptions()
	opts.Seed = seed
	opts.Mem = dram.Config{Channels: 2, DIMMsPerChannel: 1, DIMMBytes: 1 << 30, DeviceGb: 2, TempC: 45}
	return opts
}

// characterized builds and characterizes one test ecosystem.
func characterized(t *testing.T, seed uint64) *Ecosystem {
	t.Helper()
	eco, err := New(lifetimeTestOptions(seed))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eco.PreDeployment(); err != nil {
		t.Fatal(err)
	}
	return eco
}

// vrtStates flattens every weak cell's current telegraph state.
func vrtStates(e *Ecosystem) []bool {
	var out []bool
	for _, dom := range e.Mem.Domains {
		for _, dimm := range dom.DIMMs {
			for _, c := range dimm.Weak {
				out = append(out, c.LowState)
			}
		}
	}
	return out
}

// TestFastForwardSplitEquivalence is the aging-equivalence contract:
// fast-forwarding N days in one gap and the same N days split across
// several gaps (same duty) must produce bit-identical silicon and
// DRAM aging state — stressed hours, Vcrit shift, every VRT telegraph
// state, the clock, and the subsequent window trace. The per-day
// coarse stepping makes this exact by construction: both paths
// perform the identical sequence of per-day aging adds and telegraph
// draws.
func TestFastForwardSplitEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("characterization is slow; skipping in -short")
	}
	one := characterized(t, 7)
	split := characterized(t, 7)

	whole := Gap{Days: 90, Duty: 0.6, AmbientCPUC: 36, AmbientDIMMC: 42}
	dOne, err := one.StartDeployment(vfr.ModeHighPerformance, 0.01, workload.WebFrontend())
	if err != nil {
		t.Fatal(err)
	}
	dSplit, err := split.StartDeployment(vfr.ModeHighPerformance, 0.01, workload.WebFrontend())
	if err != nil {
		t.Fatal(err)
	}
	if err := dOne.FastForward(whole); err != nil {
		t.Fatal(err)
	}
	for _, days := range []int{30, 45, 15} {
		g := Gap{Days: days, Duty: 0.6, AmbientCPUC: 36, AmbientDIMMC: 42}
		if err := dSplit.FastForward(g); err != nil {
			t.Fatal(err)
		}
	}

	if a, b := one.Machine.Chip.StressedHours(), split.Machine.Chip.StressedHours(); a != b {
		t.Fatalf("stressed hours diverged: %v vs %v", a, b)
	}
	if a, b := one.Machine.Chip.AgeShiftMV, split.Machine.Chip.AgeShiftMV; a != b {
		t.Fatalf("age shift diverged: %v vs %v", a, b)
	}
	if a, b := one.Clock.Now(), split.Clock.Now(); !a.Equal(b) {
		t.Fatalf("clocks diverged: %v vs %v", a, b)
	}
	sa, sb := vrtStates(one), vrtStates(split)
	if len(sa) != len(sb) {
		t.Fatalf("weak-cell population sizes diverged: %d vs %d", len(sa), len(sb))
	}
	for i := range sa {
		if sa[i] != sb[i] {
			t.Fatalf("VRT telegraph state diverged at cell %d", i)
		}
	}
	// The forward trace must agree too: stream positions, thermal
	// state and aging all feed the next windows.
	for w := 0; w < 8; w++ {
		ra, err := dOne.Step()
		if err != nil {
			t.Fatal(err)
		}
		rb, err := dSplit.Step()
		if err != nil {
			t.Fatal(err)
		}
		if ra.Crashed != rb.Crashed || ra.Correctable != rb.Correctable ||
			ra.CPUTempC != rb.CPUTempC || ra.ThermalAlarm != rb.ThermalAlarm {
			t.Fatalf("window %d diverged after split vs whole gap:\n%+v\n%+v", w, ra, rb)
		}
	}
}

// TestFastForwardAgesAndReseats checks the gap actually moves the
// slow state: the clock jumps, aging accumulates at the duty, ambient
// retargets land, and the thermal state sits exactly at ambient.
func TestFastForwardAgesAndReseats(t *testing.T) {
	if testing.Short() {
		t.Skip("characterization is slow; skipping in -short")
	}
	eco := characterized(t, 3)
	d, err := eco.StartDeployment(vfr.ModeHighPerformance, 0.01, workload.WebFrontend())
	if err != nil {
		t.Fatal(err)
	}
	before := eco.Clock.Now()
	h0 := eco.Machine.Chip.StressedHours()
	if err := d.FastForward(Gap{Days: 75, Duty: 0.5, AmbientCPUC: 38, AmbientDIMMC: 44}); err != nil {
		t.Fatal(err)
	}
	if got, want := eco.Clock.Now().Sub(before), 75*24*time.Hour; got != want {
		t.Fatalf("clock advanced %v, want %v", got, want)
	}
	if got, want := eco.Machine.Chip.StressedHours()-h0, 75.0*24*0.5; got != want {
		t.Fatalf("gap accumulated %v stressed hours, want %v", got, want)
	}
	if eco.Machine.Chip.AgeShiftMV <= 0 {
		t.Fatal("gap produced no aging shift")
	}
	cpuC, dimmC := eco.Temperatures()
	if cpuC != 38 || dimmC != 44 {
		t.Fatalf("thermal state not re-seated at the gap ambient: %v / %v", cpuC, dimmC)
	}
	if eco.Mem.TempC != 44 {
		t.Fatalf("DRAM temperature %v not re-seated at ambient 44", eco.Mem.TempC)
	}
}

// TestSnapshotAtEpochBoundary pins the extended snapshot legality:
// mid-epoch snapshots still refuse, but a post-gap boundary snapshot
// restores an ecosystem whose forward window trace is bit-identical
// to the original's.
func TestSnapshotAtEpochBoundary(t *testing.T) {
	if testing.Short() {
		t.Skip("characterization is slow; skipping in -short")
	}
	eco := characterized(t, 9)
	d, err := eco.StartDeployment(vfr.ModeHighPerformance, 0.01, workload.WebFrontend())
	if err != nil {
		t.Fatal(err)
	}
	for w := 0; w < 5; w++ {
		if _, err := d.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := eco.Snapshot(); err == nil {
		t.Fatal("mid-epoch snapshot accepted")
	}
	if err := d.FastForward(Gap{Days: 30, Duty: 0.6, AmbientCPUC: 33, AmbientDIMMC: 39}); err != nil {
		t.Fatal(err)
	}
	snap, err := eco.Snapshot()
	if err != nil {
		t.Fatalf("boundary snapshot refused: %v", err)
	}
	// Restore must re-seat at the CURRENT ambient for exactness.
	restored, err := snap.Restore(RestoreOptions{AmbientCPUC: 33, AmbientDIMMC: 39})
	if err != nil {
		t.Fatal(err)
	}
	wl := d.Workload()
	for w := 0; w < 6; w++ {
		ra := eco.RuntimeWindow(wl)
		rb := restored.RuntimeWindow(wl)
		if ra.Crashed != rb.Crashed || ra.Correctable != rb.Correctable ||
			ra.CPUTempC != rb.CPUTempC || ra.PendingTests != rb.PendingTests {
			t.Fatalf("restored boundary snapshot diverged at window %d:\n%+v\n%+v", w, ra, rb)
		}
	}
	// And the restored ecosystem is mid-epoch again: snapshots refuse.
	if _, err := restored.Snapshot(); err == nil {
		t.Fatal("mid-epoch snapshot accepted on restored ecosystem")
	}
}

// TestRunLifetimeCadenceAndTrajectory drives a full multi-epoch
// lifetime and checks the tentpole observables: the cadence-driven
// re-characterizations actually run, the margin trajectory has one
// row per epoch, and the aging drift is monotone nondecreasing.
func TestRunLifetimeCadenceAndTrajectory(t *testing.T) {
	if testing.Short() {
		t.Skip("characterization is slow; skipping in -short")
	}
	eco := characterized(t, 5)
	plan := UniformPlan(4, 6, 91, 0.6)
	plan.RecharactEvery = 90 * 24 * time.Hour
	sum, err := eco.RunLifetime(vfr.ModeHighPerformance, 0.01, workload.WebFrontend(), plan)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Windows != plan.TotalWindows() {
		t.Fatalf("ran %d windows, want %d", sum.Windows, plan.TotalWindows())
	}
	if len(sum.Epochs) != plan.Epochs() {
		t.Fatalf("trajectory has %d epochs, want %d", len(sum.Epochs), plan.Epochs())
	}
	// 91-day gaps against a 90-day cadence: every epoch entry is due.
	if sum.Recharacterized < 3 {
		t.Fatalf("cadence produced only %d re-characterizations, want >= 3", sum.Recharacterized)
	}
	for i, ep := range sum.Epochs {
		if ep.Epoch != i {
			t.Fatalf("epoch %d labeled %d", i, ep.Epoch)
		}
		if i > 0 {
			if ep.GapDays != 91 {
				t.Fatalf("epoch %d records gap %d days, want 91", i, ep.GapDays)
			}
			if ep.AgeShiftMV < sum.Epochs[i-1].AgeShiftMV {
				t.Fatalf("margin drift not monotone: epoch %d age %v < epoch %d age %v",
					i, ep.AgeShiftMV, i-1, sum.Epochs[i-1].AgeShiftMV)
			}
			if ep.Recharacterized < 1 {
				t.Fatalf("epoch %d entry campaign missing", i)
			}
		}
		if ep.SafeVoltageMV == 0 {
			t.Fatalf("epoch %d has no published safe point", i)
		}
	}
	if last := sum.Epochs[len(sum.Epochs)-1]; last.AgeShiftMV <= sum.Epochs[0].AgeShiftMV {
		t.Fatal("lifetime produced no aging drift across epochs")
	}
	if sum.FinalAgeShiftMV < sum.Epochs[len(sum.Epochs)-1].AgeShiftMV {
		t.Fatal("final age shift below last epoch entry")
	}
}

// TestLifetimePlanValidate spot-checks the plan validator.
func TestLifetimePlanValidate(t *testing.T) {
	cases := []struct {
		name string
		plan LifetimePlan
	}{
		{"no epochs", LifetimePlan{}},
		{"zero windows", LifetimePlan{EpochWindows: []int{0}}},
		{"gap count mismatch", LifetimePlan{EpochWindows: []int{4, 4}}},
		{"bad gap days", LifetimePlan{EpochWindows: []int{4, 4}, Gaps: []Gap{{Days: 0, Duty: 0.5}}}},
		{"bad duty", LifetimePlan{EpochWindows: []int{4, 4}, Gaps: []Gap{{Days: 10, Duty: 1.5}}}},
		{"negative cadence", LifetimePlan{EpochWindows: []int{4}, RecharactEvery: -time.Hour}},
	}
	for _, c := range cases {
		if err := c.plan.Validate(); err == nil {
			t.Errorf("%s: Validate accepted the plan", c.name)
		}
	}
	good := UniformPlan(3, 8, 30, 0.7)
	good.RecharactEvery = 30 * 24 * time.Hour
	if err := good.Validate(); err != nil {
		t.Errorf("uniform plan rejected: %v", err)
	}
	if got, want := good.TotalWindows(), 24; got != want {
		t.Errorf("TotalWindows = %d, want %d", got, want)
	}
}
