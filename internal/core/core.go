// Package core wires the full UniServer ecosystem of Figure 2: the
// characterization and monitoring daemons (StressLog, HealthLog,
// Predictor) under the error-resilient hypervisor, on top of the
// simulated silicon, cache and DRAM substrates.
//
// The lifecycle follows Section 2 and 3 of the paper:
//
//  1. Pre-deployment: stress-test the hardware (benchmarks + GA
//     viruses) to reveal per-component Extended Operating Points;
//     fault-inject the hypervisor to learn which of its objects need
//     selective protection; train the failure Predictor on the
//     campaign's labeled data.
//  2. Deployment: the Hypervisor applies the Predictor-advised V-F-R
//     point for the requested mode (high-performance or low-power)
//     and places critical state on the reliable memory domain.
//  3. Runtime: the HealthLog records information vectors every window;
//     the Hypervisor masks errors, isolates faulty resources, and a
//     correctable-error flood triggers StressLog re-characterization.
package core

import (
	"errors"
	"fmt"
	"io"
	"time"

	"uniserver/internal/cpu"
	"uniserver/internal/dram"
	"uniserver/internal/faultinject"
	"uniserver/internal/healthlog"
	"uniserver/internal/hypervisor"
	"uniserver/internal/power"
	"uniserver/internal/predictor"
	"uniserver/internal/rng"
	"uniserver/internal/stresslog"
	"uniserver/internal/telemetry"
	"uniserver/internal/thermal"
	"uniserver/internal/vfr"
	"uniserver/internal/workload"
)

// Options configure an Ecosystem.
type Options struct {
	// Seed drives every stochastic component; identical seeds yield
	// identical ecosystems and experiment outcomes.
	Seed uint64
	// Part selects the CPU model (defaults to the i5-4200U of Table 2).
	Part cpu.PartSpec
	// Mem configures the DRAM system (defaults to the paper's testbed).
	Mem dram.Config
	// Hyp configures the hypervisor host.
	Hyp hypervisor.Config
	// StressPeriod is the periodic re-characterization interval
	// (paper: every 2-3 months).
	StressPeriod time.Duration
	// HealthLogOut optionally receives the JSON-lines system logfile.
	HealthLogOut io.Writer
	// AmbientCPUC and AmbientDIMMC set the initial ambient
	// temperatures the die and DIMM thermal nodes relax toward; zero
	// means the defaults (28 and 34 °C — an air-conditioned room).
	// Scenario layers change ambient mid-run via SetAmbient.
	AmbientCPUC  float64
	AmbientDIMMC float64
}

// DefaultOptions returns the paper-shaped configuration.
func DefaultOptions() Options {
	hcfg := hypervisor.DefaultConfig()
	part := cpu.PartI5_4200U()
	hcfg.Cores = part.Cores * 4 // SMT-ish host threads for vCPUs
	hcfg.Nominal = part.Nominal
	return Options{
		Seed:         1,
		Part:         part,
		Mem:          dram.DefaultConfig(),
		Hyp:          hcfg,
		StressPeriod: 75 * 24 * time.Hour, // ~2.5 months
	}
}

// SetPart rebinds the options to a different CPU part — a silicon bin
// in a heterogeneous fleet — rewiring the hypervisor host shape
// (thread count, nominal point) that DefaultOptions derived from the
// default part.
func (o *Options) SetPart(part cpu.PartSpec) {
	o.Part = part
	o.Hyp.Cores = part.Cores * 4
	o.Hyp.Nominal = part.Nominal
}

// Ecosystem is one fully wired UniServer node.
type Ecosystem struct {
	Clock      *telemetry.Clock
	Machine    *cpu.Machine
	Mem        *dram.MemorySystem
	Health     *healthlog.Daemon
	Stress     *stresslog.Daemon
	Model      *predictor.Model
	Hypervisor *hypervisor.Hypervisor

	opts     Options
	src      *rng.Source
	table    *vfr.EOPTable
	advisor  *predictor.Advisor
	power    power.CPUModel
	refresh  power.DRAMRefreshModel
	mode     vfr.Mode
	cpuTherm *thermal.Node
	memTherm *thermal.Node
	trip     thermal.Trip

	// weakGrowthPerDay is the DRAM weak-cell activation rate applied
	// across fast-forward gaps (expected new weak cells per DIMM per
	// day); zero — the default — keeps the fabricated population fixed
	// and draws nothing. See SetWeakGrowth.
	weakGrowthPerDay float64

	// Worst-CPU-margin cache, recomputed whenever a characterization
	// campaign installs a table (setTable). The published table is
	// treated as immutable, so the per-window and per-mode-entry paths
	// read the cache instead of re-scanning the table's components.
	worstComp   string
	worstMargin vfr.Margin

	// windowsRun counts RuntimeWindow invocations; Snapshot refuses to
	// capture once it is non-zero, unless the ecosystem sits on an
	// epoch boundary (see snapshot.go). atEpochBoundary is set by
	// FastForward — which re-seats the thermal state at ambient, the
	// property Restore relies on — and cleared by the next window.
	windowsRun      int
	atEpochBoundary bool

	// Per-window scratch state, owned by RuntimeWindow. None of it is
	// observable between windows; it exists so steady-state stepping
	// does not allocate (see DESIGN.md "Performance").
	coreNames []string       // precomputed "model/coreN" component names
	dramSrc   rng.Source     // reseeded child stream for the DRAM window
	dramHits  map[string]int // owner → errors, cleared every window
	curCore   int            // core sampled this window, read by coreOf
	coreOf    func(string) int
}

// dramwinLabel is the hoisted stream label of the per-window DRAM
// sample (stream-identical to SplitLabeled("dramwin") every window).
var dramwinLabel = rng.MakeLabel("dramwin")

// noCore is the component→core resolver for errors that have no CPU
// core behind them (DRAM events).
var noCore = func(string) int { return -1 }

// New builds an ecosystem. Pre-deployment characterization has not run
// yet; call PreDeployment before EnterMode.
func New(opts Options) (*Ecosystem, error) {
	if opts.Part.Cores == 0 {
		return nil, errors.New("core: options missing a CPU part (use DefaultOptions)")
	}
	if opts.AmbientCPUC == 0 {
		opts.AmbientCPUC = 28
	}
	if opts.AmbientDIMMC == 0 {
		opts.AmbientDIMMC = 34
	}
	src := rng.New(opts.Seed)
	clock := telemetry.NewClock(time.Date(2017, 2, 1, 0, 0, 0, 0, time.UTC))
	machine := cpu.NewMachine(opts.Part, opts.Seed)
	mem, err := dram.New(opts.Mem, dram.DefaultRetentionModel(), src.SplitLabeled("dram"))
	if err != nil {
		return nil, fmt.Errorf("core: building memory system: %w", err)
	}
	health := healthlog.New(healthlog.DefaultConfig(), clock, opts.HealthLogOut)
	refresh := power.DRAMRefreshModel{DeviceGb: opts.Mem.DeviceGb, TotalMemW: 12}
	stressd := stresslog.New(clock, machine, mem, health, refresh, opts.StressPeriod)
	health.OnStressTrigger(stressd.TriggerHandler())

	objects := hypervisor.NewObjectMap(hypervisor.DefaultProfiles(), src.SplitLabeled("objects"))
	hyp, err := hypervisor.New(opts.Hyp, objects, mem)
	if err != nil {
		return nil, fmt.Errorf("core: building hypervisor: %w", err)
	}

	e := &Ecosystem{
		Clock:      clock,
		Machine:    machine,
		Mem:        mem,
		Health:     health,
		Stress:     stressd,
		Model:      predictor.NewModel(),
		Hypervisor: hyp,
		opts:       opts,
		src:        src,
		power:      power.DefaultCPUModel(),
		refresh:    refresh,
		mode:       vfr.ModeNominal,
		cpuTherm:   thermal.CPUNode(opts.AmbientCPUC),
		memTherm:   thermal.DIMMNode(opts.AmbientDIMMC),
		trip:       thermal.DefaultTrip(),
		dramHits:   make(map[string]int),
	}
	e.coreNames = make([]string, opts.Part.Cores)
	for c := range e.coreNames {
		e.coreNames[c] = fmt.Sprintf("%s/core%d", opts.Part.Model, c)
	}
	e.coreOf = func(string) int { return e.curCore }
	return e, nil
}

// Temperatures returns the current die and DIMM temperatures.
func (e *Ecosystem) Temperatures() (cpuC, dimmC float64) {
	return e.cpuTherm.TempC, e.memTherm.TempC
}

// SetAmbient retargets the ambient temperatures the die and DIMM
// thermal nodes relax toward — the "variations of environmental
// conditions" lever scenario layers pull (seasonal heat, a failed CRAC
// unit, free cooling). The current temperatures are untouched; they
// drift toward the new ambient over the nodes' RC time constants.
func (e *Ecosystem) SetAmbient(cpuC, dimmC float64) {
	e.cpuTherm.AmbientC = cpuC
	e.memTherm.AmbientC = dimmC
}

// PreDeploymentReport summarizes the characterization phase.
type PreDeploymentReport struct {
	Margins          stresslog.MarginVector
	ProtectedObjects int
	FaultsInjected   int
	PredictorSamples int
	PredictorAcc     float64
}

// PreDeployment runs the full Section 3 pipeline: StressLog campaign
// (with viruses), hypervisor fault-injection characterization plus
// selective protection, and Predictor training on the labeled sweep
// data.
func (e *Ecosystem) PreDeployment() (PreDeploymentReport, error) {
	var rep PreDeploymentReport

	params := stresslog.DefaultTargetParams()
	vec, err := e.Stress.RunCampaign(params, e.src.SplitLabeled("campaign"))
	if err != nil {
		return rep, fmt.Errorf("core: stress campaign: %w", err)
	}
	e.setTable(vec.Table)
	rep.Margins = vec

	// Fault-injection characterization of the hypervisor (loaded run:
	// the paper shows load reveals an order of magnitude more faults).
	loaded, err := faultinject.RunCampaign(e.Hypervisor.Objects(), true,
		faultinject.PaperRuns, e.src.SplitLabeled("fi"))
	if err != nil {
		return rep, fmt.Errorf("core: fault injection: %w", err)
	}
	rep.FaultsInjected = loaded.Objects * loaded.Runs
	plan := faultinject.PlanProtection(loaded, 0.15)
	rep.ProtectedObjects = plan.Apply(e.Hypervisor.Objects())

	// Predictor training from labeled undervolt samples.
	samples := e.trainingSamples(3000)
	rep.PredictorSamples = len(samples)
	if err := e.Model.Fit(samples, 6, e.src.SplitLabeled("fit")); err != nil {
		return rep, fmt.Errorf("core: predictor training: %w", err)
	}
	rep.PredictorAcc = e.Model.Accuracy(samples)
	e.advisor = predictor.NewAdvisor(e.Model, e.table)

	// The machine returns to service: move past the HealthLog's
	// error window so campaign-provoked errors (which are expected,
	// not erratic behaviour) cannot re-trigger stress requests.
	e.Clock.Advance(2 * time.Hour)
	return rep, nil
}

// trainingSamples labels random operating points with crash outcomes
// from the machine simulator — the data the StressLog sweeps generate.
func (e *Ecosystem) trainingSamples(n int) []predictor.Sample {
	src := e.src.SplitLabeled("samples")
	suite := cpu.SPECSuite()
	out := make([]predictor.Sample, 0, n)
	for i := 0; i < n; i++ {
		b := suite[src.Intn(len(suite))]
		uv := src.Range(0, 16)
		v := int(float64(e.Machine.Spec.Nominal.VoltageMV) * (1 - uv/100))
		res := e.Machine.RunAt(src.Intn(e.Machine.Spec.Cores), b, v)
		out = append(out, predictor.Sample{
			F: predictor.Features{
				UndervoltPct:   uv,
				DroopIntensity: b.DroopIntensity,
				TempC:          src.Range(45, 70),
			},
			Crashed: res.Crashed,
		})
	}
	return out
}

// Table returns the published EOP table (nil before PreDeployment).
func (e *Ecosystem) Table() *vfr.EOPTable { return e.table }

// setTable installs a freshly published EOP table and precomputes the
// worst-CPU-margin lookup every mode entry and window used to rescan
// the table for. Characterization campaigns are the only writers of
// the table, so the cache is recomputed exactly when the answer can
// change.
func (e *Ecosystem) setTable(t *vfr.EOPTable) {
	e.table = t
	e.worstComp = ""
	for _, comp := range t.Components() {
		m, err := t.Lookup(comp)
		if err != nil || m.Component == "dram/relaxed" {
			continue
		}
		if e.worstComp == "" || m.Safe.VoltageMV > e.worstMargin.Safe.VoltageMV {
			e.worstComp, e.worstMargin = comp, m
		}
	}
}

// Mode returns the current operating mode.
func (e *Ecosystem) Mode() vfr.Mode { return e.mode }

// SetWeakGrowth arms DRAM weak-cell population growth across
// fast-forward gaps: the expected number of newly-activated weak cells
// per DIMM per day (AVATAR, DSN 2015: the weak-cell population in the
// field is not static). Zero — the default — keeps the fabricated
// population fixed and consumes no random draws, so pre-existing
// streams are untouched.
func (e *Ecosystem) SetWeakGrowth(cellsPerDIMMPerDay float64) {
	e.weakGrowthPerDay = cellsPerDIMMPerDay
}

// Advise consults the Predictor against the live EOP table for the
// operating point it would recommend in the given mode at the given
// risk target, without applying anything. It is the pure decision
// surface EnterMode applies and the adaptive policies (drift-gated
// re-characterization, closed-loop undervolting) query between
// campaigns.
func (e *Ecosystem) Advise(mode vfr.Mode, riskTarget float64, wl workload.Profile) (predictor.Advice, error) {
	if e.advisor == nil {
		return predictor.Advice{}, errors.New("core: run PreDeployment first")
	}
	// The system point must be safe for the worst core: the component
	// with the least headroom, precomputed when the table was published.
	worst := e.worstComp
	if worst == "" {
		return predictor.Advice{}, errors.New("core: no CPU margins in table")
	}
	return e.advisor.Advise(worst, mode, predictor.Features{
		DroopIntensity: wl.DroopIntensity,
		TempC:          55,
	}, riskTarget)
}

// EnterMode asks the Predictor for the component point satisfying the
// risk target and applies it through the Hypervisor: the CPU point
// from the worst core's margin, and the DRAM refresh margin on the
// relaxed domains.
func (e *Ecosystem) EnterMode(mode vfr.Mode, riskTarget float64, wl workload.Profile) (vfr.Point, error) {
	adv, err := e.Advise(mode, riskTarget, wl)
	if err != nil {
		return vfr.Point{}, err
	}
	if err := e.Hypervisor.ApplyPoint(adv.Point); err != nil {
		return vfr.Point{}, err
	}
	if dm, err := e.table.Lookup("dram/relaxed"); err == nil {
		if err := e.Hypervisor.ApplyRefresh(dm.Safe); err != nil {
			return vfr.Point{}, err
		}
	}
	e.mode = adv.Mode
	return adv.Point, nil
}

// PowerReport compares the node's CPU power at the current point
// against nominal for the given workload activity.
type PowerReport struct {
	Mode       vfr.Mode
	Point      vfr.Point
	NominalW   float64
	CurrentW   float64
	SavingsPct float64
	// RefreshSavingsPct is the memory-power saving from the relaxed
	// refresh interval.
	RefreshSavingsPct float64
}

// Power computes the report for a workload activity factor.
func (e *Ecosystem) Power(activity float64) PowerReport {
	nominal := e.Machine.Spec.Nominal
	cur := e.Hypervisor.Point()
	nomW := e.power.TotalW(nominal, activity, 55)
	curW := e.power.TotalW(cur, activity, 55)
	rep := PowerReport{
		Mode:       e.mode,
		Point:      cur,
		NominalW:   nomW,
		CurrentW:   curW,
		SavingsPct: 100 * (nomW - curW) / nomW,
	}
	if len(e.Mem.RelaxedDomains()) > 0 {
		rep.RefreshSavingsPct = e.refresh.SavingsPct(e.Mem.RelaxedDomains()[0].Refresh)
	}
	return rep
}

// WindowReport summarizes one runtime observation window.
type WindowReport struct {
	Crashed      bool
	Actions      []hypervisor.Action
	Correctable  int
	DRAMHits     map[string]int
	PendingTests int
	// CPUTempC and ThermalAlarm report the thermal state: alarm level
	// 1 is a warning event, 2 forced a fallback to nominal.
	CPUTempC     float64
	ThermalAlarm int
}

// RuntimeWindow advances the deployment by one observation window: the
// running guests execute at the current point, cache and DRAM errors
// are sampled, the HealthLog records the information vector, and the
// Hypervisor applies its masking/isolation policy. A crash (the
// Predictor got it wrong, or conditions drifted) is reported so the
// caller can fall back to nominal and trigger re-characterization.
func (e *Ecosystem) RuntimeWindow(wl workload.Profile) WindowReport {
	e.windowsRun++
	e.atEpochBoundary = false
	e.Clock.Advance(time.Minute)
	var rep WindowReport
	point := e.Hypervisor.Point()
	bench := cpu.Benchmark{
		Name:           wl.Name,
		DroopIntensity: wl.DroopIntensity,
		CacheStress:    0.5,
		Activity:       wl.CPUActivity,
	}
	core := e.src.Intn(e.Machine.Spec.Cores)
	e.curCore = core
	out := e.Machine.RunAt(core, bench, point.VoltageMV)
	comp := e.coreNames[core]

	// Thermal step: dissipated power heats the die; die temperature
	// feeds back into the leakage term next window. The DIMMs follow
	// the memory-subsystem power at the current refresh interval, and
	// the retention model sees the updated temperature.
	cpuW := e.power.TotalW(point, wl.CPUActivity, e.cpuTherm.TempC)
	rep.CPUTempC = e.cpuTherm.Step(cpuW, time.Minute)
	memW := e.refresh.TotalMemW
	if doms := e.Mem.RelaxedDomains(); len(doms) > 0 {
		memW = e.refresh.TotalW(doms[0].Refresh)
	}
	e.Mem.TempC = e.memTherm.Step(memW, time.Minute)

	vec := telemetry.InfoVector{
		Component: comp,
		Point:     point,
		Sensors: []telemetry.Reading{
			{Kind: telemetry.SensorVoltage, Value: float64(point.VoltageMV)},
			{Kind: telemetry.SensorPower, Value: cpuW},
			{Kind: telemetry.SensorTemperature, Value: rep.CPUTempC},
		},
	}
	rep.ThermalAlarm = e.trip.Check(rep.CPUTempC)
	if rep.ThermalAlarm > 0 {
		vec.Errors = append(vec.Errors, telemetry.ErrorEvent{
			Kind: telemetry.ErrThermal, Component: comp, Count: 1,
		})
		if rep.ThermalAlarm == 2 {
			// Thermal excursions shrink voltage margins: retreat to
			// nominal until conditions recover.
			_ = e.HandleCrash()
		}
	}
	if out.Crashed {
		rep.Crashed = true
		vec.Errors = append(vec.Errors, telemetry.ErrorEvent{
			Kind: telemetry.ErrCrash, Component: comp, Count: 1,
		})
	}
	if out.ECCErrors > 0 {
		rep.Correctable += out.ECCErrors
		vec.Errors = append(vec.Errors, telemetry.ErrorEvent{
			Kind: telemetry.ErrCorrectable, Component: comp, Count: out.ECCErrors,
		})
		act := e.Hypervisor.HandleError(telemetry.ErrorEvent{
			Kind: telemetry.ErrCorrectable, Component: comp, Count: out.ECCErrors,
		}, "", -1, e.coreOf)
		rep.Actions = append(rep.Actions, act)
	}
	e.Health.Record(vec)

	// DRAM window: retention errors land on owners; ECC corrects them
	// (correctable) and the hypervisor masks them from guests. The
	// child stream and the hit map are per-ecosystem scratch: stream-
	// identical to SplitLabeled("dramwin") and re-cleared every window.
	// The report's map is only materialized when errors actually struck
	// (rare at advised refresh intervals), so quiet windows hand out a
	// nil map and allocate nothing.
	e.dramSrc = e.src.SplitWith(dramwinLabel)
	clear(e.dramHits)
	e.Hypervisor.Allocator().SimulateWindowInto(&e.dramSrc, e.dramHits)
	for owner, n := range e.dramHits {
		if rep.DRAMHits == nil {
			rep.DRAMHits = make(map[string]int, len(e.dramHits))
		}
		rep.DRAMHits[owner] = n
		act := e.Hypervisor.HandleError(telemetry.ErrorEvent{
			Kind: telemetry.ErrCorrectable, Component: "dram", Count: n,
		}, owner, -1, noCore)
		rep.Actions = append(rep.Actions, act)
	}
	rep.PendingTests = len(e.Stress.Pending())
	return rep
}
