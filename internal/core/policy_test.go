package core

import (
	"testing"
	"time"

	"uniserver/internal/silicon"
	"uniserver/internal/vfr"
	"uniserver/internal/workload"
)

// startedDeployment is the adaptive-policy tests' fixture: a
// characterized ecosystem with a high-performance deployment entered
// and zero windows run.
func startedDeployment(t *testing.T, seed uint64) *Deployment {
	t.Helper()
	e, _ := readyEcosystem(t, seed)
	d, err := e.StartDeployment(vfr.ModeHighPerformance, 0.01, workload.WebFrontend())
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestScheduledCampaignPassthroughWhenDisarmed: without a drift
// policy the scheduler is exactly Stress.DuePeriodic, and the policy
// counters never move.
func TestScheduledCampaignPassthroughWhenDisarmed(t *testing.T) {
	d := startedDeployment(t, 41)
	e := d.eco
	if d.scheduledCampaignDue() {
		t.Fatal("campaign due immediately after characterization")
	}
	e.Clock.Advance(e.Stress.Period())
	if !d.scheduledCampaignDue() {
		t.Fatal("elapsed cadence not reported without a policy")
	}
	if d.sum.RecharTriggered != 0 || d.sum.RecharSuppressed != 0 {
		t.Fatalf("disarmed gate moved the counters: +%d -%d",
			d.sum.RecharTriggered, d.sum.RecharSuppressed)
	}
}

// TestDriftGateSuppressesFreshMargins: with no drift accumulated
// since the last campaign the gate closes, counts the suppression,
// and consumes the cadence slot so the decision recurs at the next
// tick rather than on every following window.
func TestDriftGateSuppressesFreshMargins(t *testing.T) {
	d := startedDeployment(t, 42)
	e := d.eco
	d.SetDriftPolicy(0.25)
	e.Clock.Advance(e.Stress.Period())
	if !e.Stress.DuePeriodic() {
		t.Fatal("precondition: cadence should have elapsed")
	}
	if d.scheduledCampaignDue() {
		t.Fatal("gate opened with zero accumulated drift")
	}
	if d.sum.RecharSuppressed != 1 {
		t.Fatalf("RecharSuppressed = %d, want 1", d.sum.RecharSuppressed)
	}
	if e.Stress.DuePeriodic() {
		t.Fatal("suppressed slot was not consumed")
	}
	if d.scheduledCampaignDue() || d.sum.RecharSuppressed != 1 {
		t.Fatal("suppression decision repeated before the next cadence tick")
	}
}

// TestDriftGateOpensOnAccumulatedDrift: enough aging since the last
// campaign clears any reasonable margin fraction, the gate opens and
// counts the trigger, and the campaign itself resets the drift
// baseline so the next tick is suppressed again.
func TestDriftGateOpensOnAccumulatedDrift(t *testing.T) {
	d := startedDeployment(t, 43)
	e := d.eco
	d.SetDriftPolicy(0.1)
	// A year of full-stress aging (~11 mV under the default power law)
	// clears a tenth of the advised headroom (~5-6 mV) comfortably.
	e.Machine.Chip.Age(silicon.DefaultAgingModel(), 365*24*time.Hour, 1)
	e.Clock.Advance(e.Stress.Period())
	if !d.scheduledCampaignDue() {
		t.Fatal("gate stayed closed after a year of aging")
	}
	if d.sum.RecharTriggered != 1 {
		t.Fatalf("RecharTriggered = %d, want 1", d.sum.RecharTriggered)
	}
	if err := d.RecharacterizeNow(); err != nil {
		t.Fatal(err)
	}
	e.Clock.Advance(e.Stress.Period())
	if d.scheduledCampaignDue() {
		t.Fatal("gate open with no drift since the campaign refreshed the baseline")
	}
	if d.sum.RecharSuppressed != 1 {
		t.Fatalf("RecharSuppressed = %d, want 1", d.sum.RecharSuppressed)
	}
}

// TestDriftGateZeroFractionAlwaysOpen pins the degenerate policy the
// cadence-equivalence acceptance test builds on: aging is monotone,
// so at MarginFrac 0 every due slot triggers.
func TestDriftGateZeroFractionAlwaysOpen(t *testing.T) {
	d := startedDeployment(t, 44)
	e := d.eco
	d.SetDriftPolicy(0)
	for tick := 1; tick <= 3; tick++ {
		e.Clock.Advance(e.Stress.Period())
		if !d.scheduledCampaignDue() {
			t.Fatalf("zero-margin gate closed at tick %d", tick)
		}
		if err := d.RecharacterizeNow(); err != nil {
			t.Fatal(err)
		}
	}
	if d.sum.RecharTriggered != 3 || d.sum.RecharSuppressed != 0 {
		t.Fatalf("counters = +%d -%d, want +3 -0",
			d.sum.RecharTriggered, d.sum.RecharSuppressed)
	}
}

// TestSetDriftPolicyNegativeDisarms: a negative fraction returns the
// scheduler to plain passthrough.
func TestSetDriftPolicyNegativeDisarms(t *testing.T) {
	d := startedDeployment(t, 45)
	e := d.eco
	d.SetDriftPolicy(10)
	d.SetDriftPolicy(-1)
	e.Clock.Advance(e.Stress.Period())
	if !d.scheduledCampaignDue() {
		t.Fatal("disarmed gate still filtering scheduled campaigns")
	}
	if d.sum.RecharTriggered != 0 || d.sum.RecharSuppressed != 0 {
		t.Fatal("disarmed gate counted a decision")
	}
}

// TestECCLoopConvergesAndHolds: quiet windows walk the point down in
// 5 mV steps to the 40 mV bound and hold there; every intermediate
// state keeps the controller invariants (bounded offset, step
// granularity, point = advised − offset, step/backoff ledger
// balance).
func TestECCLoopConvergesAndHolds(t *testing.T) {
	d := startedDeployment(t, 46)
	e := d.eco
	d.SetECCLoop(0)
	advised := e.Hypervisor.Point().VoltageMV
	for w := 0; w < 12; w++ {
		if err := d.eccStep(0); err != nil {
			t.Fatal(err)
		}
		checkECCInvariants(t, d, advised)
	}
	if d.eccExtraMV != eccMaxExtraMV {
		t.Fatalf("offset = %d after 12 quiet windows, want the %d bound", d.eccExtraMV, eccMaxExtraMV)
	}
	if d.sum.UndervoltSteps != eccMaxExtraMV/eccStepMV {
		t.Fatalf("UndervoltSteps = %d, want %d", d.sum.UndervoltSteps, eccMaxExtraMV/eccStepMV)
	}
	if got := e.Hypervisor.Point().VoltageMV; got != advised-eccMaxExtraMV {
		t.Fatalf("converged point %d mV, want %d", got, advised-eccMaxExtraMV)
	}
}

// TestECCLoopBacksOffOnOnset: once correctable errors cross the
// threshold the controller retreats one notch per window until it is
// back at the advised point, then holds — it never overvolts above
// it.
func TestECCLoopBacksOffOnOnset(t *testing.T) {
	d := startedDeployment(t, 47)
	e := d.eco
	d.SetECCLoop(0)
	advised := e.Hypervisor.Point().VoltageMV
	for w := 0; w < 12; w++ {
		if err := d.eccStep(0); err != nil {
			t.Fatal(err)
		}
	}
	for w := 0; w < 12; w++ {
		if err := d.eccStep(5); err != nil {
			t.Fatal(err)
		}
		checkECCInvariants(t, d, advised)
	}
	if d.eccExtraMV != 0 {
		t.Fatalf("offset = %d after sustained errors, want 0", d.eccExtraMV)
	}
	if got := e.Hypervisor.Point().VoltageMV; got != advised {
		t.Fatalf("retreated point %d mV, want the advised %d", got, advised)
	}
	if d.sum.ECCBackoffs != eccMaxExtraMV/eccStepMV {
		t.Fatalf("ECCBackoffs = %d, want %d", d.sum.ECCBackoffs, eccMaxExtraMV/eccStepMV)
	}
}

// checkECCInvariants asserts the closed-loop controller's state
// invariants after any decision.
func checkECCInvariants(t *testing.T, d *Deployment, advisedMV int) {
	t.Helper()
	if d.eccExtraMV < 0 || d.eccExtraMV > eccMaxExtraMV {
		t.Fatalf("offset %d outside [0, %d]", d.eccExtraMV, eccMaxExtraMV)
	}
	if d.eccExtraMV%eccStepMV != 0 {
		t.Fatalf("offset %d not a multiple of the %d mV step", d.eccExtraMV, eccStepMV)
	}
	if got := d.eco.Hypervisor.Point().VoltageMV; got != advisedMV-d.eccExtraMV {
		t.Fatalf("point %d mV != advised %d − offset %d", got, advisedMV, d.eccExtraMV)
	}
	if steps := d.sum.UndervoltSteps - d.sum.ECCBackoffs; steps*eccStepMV != d.eccExtraMV {
		t.Fatalf("ledger out of balance: %d steps − %d backoffs vs offset %d",
			d.sum.UndervoltSteps, d.sum.ECCBackoffs, d.eccExtraMV)
	}
}

// TestECCLoopRespectsThreshold: counts at the threshold are quiet,
// counts above it are onset.
func TestECCLoopRespectsThreshold(t *testing.T) {
	d := startedDeployment(t, 48)
	d.SetECCLoop(3)
	if err := d.eccStep(3); err != nil {
		t.Fatal(err)
	}
	if d.eccExtraMV != eccStepMV {
		t.Fatalf("count at the threshold did not step down: offset %d", d.eccExtraMV)
	}
	if err := d.eccStep(4); err != nil {
		t.Fatal(err)
	}
	if d.eccExtraMV != 0 {
		t.Fatalf("count above the threshold did not back off: offset %d", d.eccExtraMV)
	}
}

// TestECCLoopResetsOutsideTheLoop: a crash fallback parks the node at
// nominal and the controller must forget its offset instead of
// undervolting the guardbanded point; a mode switch re-derives the
// point through EnterMode and resets the offset too.
func TestECCLoopResetsOutsideTheLoop(t *testing.T) {
	d := startedDeployment(t, 49)
	e := d.eco
	d.SetECCLoop(0)
	for w := 0; w < 4; w++ {
		if err := d.eccStep(0); err != nil {
			t.Fatal(err)
		}
	}
	if d.eccExtraMV == 0 {
		t.Fatal("precondition: controller should hold an offset")
	}
	if err := e.HandleCrash(); err != nil {
		t.Fatal(err)
	}
	if err := d.eccStep(0); err != nil {
		t.Fatal(err)
	}
	if d.eccExtraMV != 0 {
		t.Fatalf("offset %d survived the nominal fallback", d.eccExtraMV)
	}
	if e.Hypervisor.Point() != e.Machine.Spec.Nominal {
		t.Fatal("controller moved the point while parked at nominal")
	}

	if err := d.SwitchMode(vfr.ModeHighPerformance, 0.01); err != nil {
		t.Fatal(err)
	}
	for w := 0; w < 4; w++ {
		if err := d.eccStep(0); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.SwitchMode(vfr.ModeLowPower, 0.02); err != nil {
		t.Fatal(err)
	}
	if d.eccExtraMV != 0 {
		t.Fatalf("offset %d survived the mode switch", d.eccExtraMV)
	}
}

// TestAdviceStableAcrossSnapshotRestore is the predictor↔core
// integration pin: the advice a live deployment gets from the
// characterized state must be byte-identical before a Snapshot and
// after its Restore — the advisor, model and table all travel through
// the deep copy intact.
func TestAdviceStableAcrossSnapshotRestore(t *testing.T) {
	e, _ := readyEcosystem(t, 50)
	snap, err := e.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	d, err := e.StartDeployment(vfr.ModeHighPerformance, 0.01, workload.WebFrontend())
	if err != nil {
		t.Fatal(err)
	}
	before, err := d.Advise()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := snap.Restore(RestoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	d2, err := restored.StartDeployment(vfr.ModeHighPerformance, 0.01, workload.WebFrontend())
	if err != nil {
		t.Fatal(err)
	}
	after, err := d2.Advise()
	if err != nil {
		t.Fatal(err)
	}
	if before != after {
		t.Fatalf("advice moved across snapshot/restore:\nbefore %+v\nafter  %+v", before, after)
	}
	// The restored deployment's policies start from the same clean
	// state a fresh node's would: nothing of the source deployment's
	// controller leaks through the ecosystem snapshot.
	if d2.eccExtraMV != 0 || d2.lastCampaignAge != restored.Machine.Chip.AgeShiftMV {
		t.Fatal("restored deployment inherited policy state")
	}
}

// TestWeakGrowthAcrossFastForward: an armed growth rate adds weak
// cells across a gap; a zero rate leaves the population — and, per
// the stream-isolation argument in FastForward, every downstream
// draw — untouched.
func TestWeakGrowthAcrossFastForward(t *testing.T) {
	count := func(e *Ecosystem) int {
		n := 0
		for _, dom := range e.Mem.Domains {
			for _, dimm := range dom.DIMMs {
				n += len(dimm.Weak)
			}
		}
		return n
	}
	grown, _ := readyEcosystem(t, 51)
	still, _ := readyEcosystem(t, 51)
	grown.SetWeakGrowth(25)
	before := count(grown)
	if before != count(still) {
		t.Fatal("precondition: same-seed ecosystems differ")
	}
	gap := Gap{Days: 30, Duty: 0.5}
	if err := grown.FastForward(gap, silicon.DefaultAgingModel()); err != nil {
		t.Fatal(err)
	}
	if err := still.FastForward(gap, silicon.DefaultAgingModel()); err != nil {
		t.Fatal(err)
	}
	if count(grown) <= before {
		t.Fatalf("30 days at 25 cells/DIMM/day grew nothing: %d -> %d", before, count(grown))
	}
	if count(still) != before {
		t.Fatalf("zero-rate ecosystem grew cells: %d -> %d", before, count(still))
	}
	// Stream isolation: the growth draws lived on the per-day child
	// streams, so the growth-free twin's main stream is exactly where
	// the pre-growth engine would have left it.
	if grown.src.Uint64() != still.src.Uint64() {
		t.Fatal("weak-cell growth moved the parent stream")
	}
}
