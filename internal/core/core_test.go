package core

import (
	"bytes"
	"testing"
	"time"

	"uniserver/internal/dram"
	"uniserver/internal/vfr"
	"uniserver/internal/workload"
)

// smallOptions shrinks the memory system so tests stay fast.
func smallOptions(seed uint64) Options {
	opts := DefaultOptions()
	opts.Seed = seed
	opts.Mem = dram.Config{Channels: 2, DIMMsPerChannel: 1, DIMMBytes: 8 << 30, DeviceGb: 2, TempC: 45}
	return opts
}

func readyEcosystem(t *testing.T, seed uint64) (*Ecosystem, PreDeploymentReport) {
	t.Helper()
	e, err := New(smallOptions(seed))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := e.PreDeployment()
	if err != nil {
		t.Fatal(err)
	}
	return e, rep
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Options{}); err == nil {
		t.Fatal("empty options accepted")
	}
}

func TestPreDeploymentPipeline(t *testing.T) {
	var logBuf bytes.Buffer
	opts := smallOptions(1)
	opts.HealthLogOut = &logBuf
	e, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := e.PreDeployment()
	if err != nil {
		t.Fatal(err)
	}
	if e.Table() == nil || e.Table().Len() < 3 {
		t.Fatal("EOP table not published")
	}
	if rep.ProtectedObjects == 0 {
		t.Fatal("no objects protected")
	}
	if rep.FaultsInjected != 16820*5 {
		t.Fatalf("faults injected = %d", rep.FaultsInjected)
	}
	if rep.PredictorAcc < 0.9 {
		t.Fatalf("predictor accuracy = %v", rep.PredictorAcc)
	}
	if rep.Margins.SafeRefresh < vfr.NominalRefresh {
		t.Fatal("no DRAM margin published")
	}
	if logBuf.Len() == 0 {
		t.Fatal("campaign wrote nothing to the system logfile")
	}
}

func TestEnterModeRequiresPreDeployment(t *testing.T) {
	e, err := New(smallOptions(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.EnterMode(vfr.ModeHighPerformance, 0.01, workload.WebFrontend()); err == nil {
		t.Fatal("EnterMode before PreDeployment accepted")
	}
}

func TestEnterHighPerformanceSavesPower(t *testing.T) {
	e, _ := readyEcosystem(t, 3)
	p, err := e.EnterMode(vfr.ModeHighPerformance, 0.05, workload.WebFrontend())
	if err != nil {
		t.Fatal(err)
	}
	if p.FreqMHz != e.Machine.Spec.Nominal.FreqMHz {
		t.Fatalf("high-performance mode changed frequency: %v", p)
	}
	if p.VoltageMV >= e.Machine.Spec.Nominal.VoltageMV {
		t.Fatalf("no undervolt applied: %v", p)
	}
	rep := e.Power(0.7)
	if rep.SavingsPct <= 5 {
		t.Fatalf("power savings = %.1f%%, want meaningful", rep.SavingsPct)
	}
	if rep.RefreshSavingsPct <= 0 {
		t.Fatalf("refresh savings = %.1f%%, want positive", rep.RefreshSavingsPct)
	}
	if e.Mode() != vfr.ModeHighPerformance {
		t.Fatalf("mode = %v", e.Mode())
	}
	// Relaxed domains actually reconfigured.
	for _, dom := range e.Mem.RelaxedDomains() {
		if dom.Refresh <= vfr.NominalRefresh {
			t.Fatalf("domain %s still at %v", dom.Name, dom.Refresh)
		}
	}
}

func TestEnterLowPowerSavesMore(t *testing.T) {
	e, _ := readyEcosystem(t, 4)
	if _, err := e.EnterMode(vfr.ModeHighPerformance, 0.05, workload.WebFrontend()); err != nil {
		t.Fatal(err)
	}
	hp := e.Power(0.7)
	if _, err := e.EnterMode(vfr.ModeLowPower, 0.05, workload.WebFrontend()); err != nil {
		t.Fatal(err)
	}
	lp := e.Power(0.7)
	if lp.CurrentW >= hp.CurrentW {
		t.Fatalf("low-power (%vW) should draw less than high-performance (%vW)",
			lp.CurrentW, hp.CurrentW)
	}
	if lp.Point.FreqMHz >= hp.Point.FreqMHz {
		t.Fatal("low-power should reduce frequency")
	}
}

func TestRuntimeWindowsMostlySafe(t *testing.T) {
	e, _ := readyEcosystem(t, 5)
	if _, err := e.EnterMode(vfr.ModeHighPerformance, 0.01, workload.WebFrontend()); err != nil {
		t.Fatal(err)
	}
	crashes := 0
	const windows = 300
	for i := 0; i < windows; i++ {
		rep := e.RuntimeWindow(workload.WebFrontend())
		if rep.Crashed {
			crashes++
		}
	}
	// The advised point sits a cushion above the crash region: crashes
	// must be rare (the paper's "sporadic errors may still occur").
	if crashes > windows/20 {
		t.Fatalf("%d crashes in %d windows at advised point", crashes, windows)
	}
}

func TestRuntimeWindowRecordsToHealthLog(t *testing.T) {
	e, _ := readyEcosystem(t, 6)
	if _, err := e.EnterMode(vfr.ModeHighPerformance, 0.05, workload.WebFrontend()); err != nil {
		t.Fatal(err)
	}
	before := e.Health.Stats().Recorded
	for i := 0; i < 10; i++ {
		e.RuntimeWindow(workload.WebFrontend())
	}
	if e.Health.Stats().Recorded != before+10 {
		t.Fatalf("recorded %d vectors", e.Health.Stats().Recorded-before)
	}
}

func TestDeterminism(t *testing.T) {
	e1, r1 := readyEcosystem(t, 7)
	e2, r2 := readyEcosystem(t, 7)
	if r1.ProtectedObjects != r2.ProtectedObjects || r1.PredictorAcc != r2.PredictorAcc {
		t.Fatal("pre-deployment not deterministic")
	}
	p1, err := e1.EnterMode(vfr.ModeHighPerformance, 0.05, workload.WebFrontend())
	if err != nil {
		t.Fatal(err)
	}
	p2, err := e2.EnterMode(vfr.ModeHighPerformance, 0.05, workload.WebFrontend())
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Fatalf("advised points diverged: %v vs %v", p1, p2)
	}
}

func TestPeriodicRecharacterizationDue(t *testing.T) {
	e, _ := readyEcosystem(t, 8)
	if e.Stress.DuePeriodic() {
		t.Fatal("fresh characterization should not be due")
	}
	e.Clock.Advance(80 * 24 * time.Hour)
	if !e.Stress.DuePeriodic() {
		t.Fatal("re-characterization should be due after ~2.5 months")
	}
}

// TestGuardbandVsEOPHeadline quantifies the headline claim: the EOP
// point recovers a double-digit percentage of CPU power relative to
// running at nominal guardbanded voltage.
func TestGuardbandVsEOPHeadline(t *testing.T) {
	e, _ := readyEcosystem(t, 9)
	if _, err := e.EnterMode(vfr.ModeHighPerformance, 0.05, workload.WebFrontend()); err != nil {
		t.Fatal(err)
	}
	rep := e.Power(0.7)
	if rep.SavingsPct < 10 {
		t.Fatalf("EOP recovers only %.1f%% CPU power", rep.SavingsPct)
	}
	if rep.CurrentW >= rep.NominalW {
		t.Fatal("EOP point draws more than nominal")
	}
}
