package core

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"uniserver/internal/rng"
	"uniserver/internal/vfr"
	"uniserver/internal/workload"
)

// deploymentTrace runs a supervised deployment on the ecosystem and
// serializes everything observable about it — every window report
// field, the per-window predicted failure probability (bit-exact), and
// the final summary — so two ecosystems produce equal traces iff their
// streams never diverged by a single draw.
func deploymentTrace(t *testing.T, eco *Ecosystem, windows int) string {
	t.Helper()
	d, err := eco.StartDeployment(vfr.ModeHighPerformance, 0.01, workload.WebFrontend())
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	for w := 0; w < windows; w++ {
		rep, err := d.Step()
		if err != nil {
			t.Fatal(err)
		}
		fp, err := eco.PredictedFailProb()
		if err != nil {
			t.Fatal(err)
		}
		dram := 0
		for _, n := range rep.DRAMHits {
			dram += n
		}
		fmt.Fprintf(&b, "w=%d crash=%t corr=%d dram=%d alarm=%d temp=%x acts=%d pend=%d fp=%x\n",
			w, rep.Crashed, rep.Correctable, dram, rep.ThermalAlarm,
			math.Float64bits(rep.CPUTempC), len(rep.Actions), rep.PendingTests,
			math.Float64bits(fp))
	}
	fmt.Fprintf(&b, "summary=%+v\n", d.Summary())
	fmt.Fprintf(&b, "clock=%v mode=%v point=%v temps=%v,%v\n",
		eco.Clock.Now(), eco.Mode(), eco.Hypervisor.Point(),
		tempBits(eco.cpuTherm.TempC), tempBits(eco.memTherm.TempC))
	return b.String()
}

func tempBits(c float64) uint64 { return math.Float64bits(c) }

// TestSnapshotRestoreEquivalence is the clone-equivalence contract the
// characterization cache rests on: an ecosystem restored from a
// post-characterization snapshot must be indistinguishable — window by
// window, bit by bit — from one freshly built and characterized with
// the same options, including when the restore re-seats the thermal
// nodes at a different ambient than the snapshot source was built
// with (that is what lets cells differing only in environment share
// one characterization).
func TestSnapshotRestoreEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("characterization is slow; skipping in -short")
	}
	const windows = 40
	for _, seed := range []uint64{3, 19} {
		for _, amb := range []struct{ cpu, dimm float64 }{{0, 0}, {38, 44}} {
			name := fmt.Sprintf("seed=%d/ambient=%v", seed, amb.cpu)
			t.Run(name, func(t *testing.T) {
				// Fresh path: built at the cell's ambient, characterized.
				fopts := smallOptions(seed)
				fopts.AmbientCPUC, fopts.AmbientDIMMC = amb.cpu, amb.dimm
				fresh, err := New(fopts)
				if err != nil {
					t.Fatal(err)
				}
				if _, err := fresh.PreDeployment(); err != nil {
					t.Fatal(err)
				}

				// Cached path: characterized at the DEFAULT ambient,
				// snapshotted, restored at the cell's ambient.
				proto, err := New(smallOptions(seed))
				if err != nil {
					t.Fatal(err)
				}
				if _, err := proto.PreDeployment(); err != nil {
					t.Fatal(err)
				}
				snap, err := proto.Snapshot()
				if err != nil {
					t.Fatal(err)
				}
				restored, err := snap.Restore(RestoreOptions{AmbientCPUC: amb.cpu, AmbientDIMMC: amb.dimm})
				if err != nil {
					t.Fatal(err)
				}

				want := deploymentTrace(t, fresh, windows)
				got := deploymentTrace(t, restored, windows)
				if got != want {
					t.Fatalf("restored deployment diverged from fresh characterization:\n--- fresh ---\n%s--- restored ---\n%s",
						want, got)
				}
			})
		}
	}
}

// TestSnapshotRestoresAreIndependent pins the alias-free property:
// multiple restores from one snapshot must not share any mutable
// state, so running one to completion (mutating its silicon aging,
// DRAM VRT states, healthlog history, hypervisor counters and rng
// positions) must leave a sibling's and the snapshot's own behaviour
// untouched.
func TestSnapshotRestoresAreIndependent(t *testing.T) {
	if testing.Short() {
		t.Skip("characterization is slow; skipping in -short")
	}
	eco, _ := readyEcosystem(t, 5)
	snap, err := eco.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	restore := func() *Ecosystem {
		r, err := snap.Restore(RestoreOptions{})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	a, b := restore(), restore()
	traceA := deploymentTrace(t, a, 30)
	// b runs only after a has fully mutated itself; any sharing would
	// make its trace differ from a's.
	traceB := deploymentTrace(t, b, 30)
	if traceA != traceB {
		t.Fatalf("sibling restores diverged — snapshot restores share mutable state:\n--- first ---\n%s--- second ---\n%s",
			traceA, traceB)
	}
	// A third restore taken after both runs must still match: the
	// snapshot itself was not written through by its children.
	traceC := deploymentTrace(t, restore(), 30)
	if traceC != traceA {
		t.Fatalf("snapshot state was mutated by its restores:\n--- before ---\n%s--- after ---\n%s",
			traceA, traceC)
	}
	// And the ecosystem the snapshot was taken from is equally
	// unaffected by all of the above.
	traceOrig := deploymentTrace(t, eco, 30)
	if traceOrig != traceA {
		t.Fatalf("snapshot source diverged from its restores:\n--- source ---\n%s--- restore ---\n%s",
			traceOrig, traceA)
	}
}

// TestSnapshotRefusesMidDeployment pins the capture-window guard:
// Restore re-derives thermal state from ambient, which is only exact
// before the first runtime window, so a later Snapshot must fail
// loudly instead of producing restores that silently diverge.
func TestSnapshotRefusesMidDeployment(t *testing.T) {
	if testing.Short() {
		t.Skip("characterization is slow; skipping in -short")
	}
	eco, _ := readyEcosystem(t, 11)
	if _, err := eco.Snapshot(); err != nil {
		t.Fatalf("pre-deployment snapshot refused: %v", err)
	}
	if _, err := eco.RunDeployment(vfr.ModeHighPerformance, 0.01, workload.WebFrontend(), 3); err != nil {
		t.Fatal(err)
	}
	if _, err := eco.Snapshot(); err == nil {
		t.Fatal("mid-deployment snapshot accepted; restores would silently lose thermal state")
	}
}

// restoreAllocBudget fences the allocation count of one Restore — the
// operation every cache hit pays instead of a full characterization.
// The dominant terms are O(weak cells) slice copies (two DIMMs here),
// the 16,820-object hypervisor inventory copy, and the HealthLog's
// retained characterization vectors; all are single-allocation bulk
// copies, so the count stays in the low hundreds (measured ~200). If
// this fence breaks, a clone started copying element-wise (or
// deep-copying something it used to bulk-copy) — fix the clone, don't
// raise the fence.
const restoreAllocBudget = 400

// templateRestoreAllocBudget fences the steady-state allocation count
// of a warm template stamp — the cost every fleet node actually pays
// now that the compiled path is default-on. Everything is stamped into
// reused arena storage; the only survivors are the two thermal-node
// constructions of the ambient re-seat (measured: 2). If this fence
// breaks, a stamp started allocating per element — fix the stamp,
// don't raise the fence.
const templateRestoreAllocBudget = 4

func TestSnapshotRestoreAllocBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("characterization is slow; skipping in -short")
	}
	eco, _ := readyEcosystem(t, 7)
	snap, err := eco.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(20, func() {
		if _, err := snap.Restore(RestoreOptions{}); err != nil {
			t.Fatal(err)
		}
	})
	t.Logf("Snapshot.Restore: %.0f allocs (budget %d)", avg, restoreAllocBudget)
	if avg > restoreAllocBudget {
		t.Fatalf("Snapshot.Restore allocates %.0f, budget is %d — the clone path regressed",
			avg, restoreAllocBudget)
	}

	// The compiled fast path: near zero steady-state allocations once
	// the arena is warm.
	tmpl := snap.Compile()
	arena := NewRestoreArena()
	if _, err := tmpl.RestoreInto(arena, RestoreOptions{}); err != nil {
		t.Fatal(err)
	}
	warm := testing.AllocsPerRun(50, func() {
		if _, err := tmpl.RestoreInto(arena, RestoreOptions{}); err != nil {
			t.Fatal(err)
		}
	})
	t.Logf("RestoreTemplate.RestoreInto (warm): %.0f allocs (budget %d)", warm, templateRestoreAllocBudget)
	if warm > templateRestoreAllocBudget {
		t.Fatalf("warm template stamp allocates %.0f, budget is %d — the stamp path regressed",
			warm, templateRestoreAllocBudget)
	}
}

// TestReseedRepositionsStreams pins the archetype-clone hook exactly:
// after Reseed(seed), the main stream sits at precisely the state a
// fresh New(seed) ecosystem carries into deployment (construction and
// PreDeployment consume only labeled child streams), and the machine's
// measurement stream sits at the "machine/runtime" labeled split of
// the same seed — repositioned in place, so the StressLog daemon's
// machine reference observes it too. Mid-epoch reseeds are refused for
// the same reason mid-epoch snapshots are.
func TestReseedRepositionsStreams(t *testing.T) {
	if testing.Short() {
		t.Skip("characterization is slow; skipping in -short")
	}
	eco, _ := readyEcosystem(t, 3)
	snap, err := eco.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	clone, err := snap.Restore(RestoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	const seed = 99
	if err := clone.Reseed(seed); err != nil {
		t.Fatal(err)
	}
	if got, want := clone.src.State(), rng.New(seed).State(); got != want {
		t.Fatalf("main stream at %#x after reseed, want fresh New(%d) state %#x", got, seed, want)
	}
	if got, want := clone.Machine.StreamState(), rng.New(seed).SplitLabeled("machine/runtime").State(); got != want {
		t.Fatalf("machine stream at %#x after reseed, want labeled split %#x", got, want)
	}
	// The characterized state stays the bin's: reseeding must not touch
	// the published table or the trained model.
	if clone.table == nil || clone.advisor == nil {
		t.Fatal("reseed dropped characterized state")
	}

	// A reseeded clone is deployable and deterministic in its new seed:
	// two restores reseeded alike must trace identically.
	clone2, err := snap.Restore(RestoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := clone2.Reseed(seed); err != nil {
		t.Fatal(err)
	}
	if a, b := deploymentTrace(t, clone, 10), deploymentTrace(t, clone2, 10); a != b {
		t.Fatalf("same-seed reseeded clones diverged:\n--- a ---\n%s--- b ---\n%s", a, b)
	}

	// Mid-epoch refusal: once runtime windows have run, the streams are
	// entangled with thermal state a reseed cannot reposition.
	if err := clone.Reseed(7); err == nil {
		t.Fatal("mid-deployment reseed accepted")
	}
}
