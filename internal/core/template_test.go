package core

import (
	"bytes"
	"fmt"
	"testing"

	"uniserver/internal/workload"

	"uniserver/internal/vfr"
)

// TestTemplateRestoreEquivalence pins the compiled fast path to the
// reference implementation: an ecosystem stamped from a compiled
// template must be indistinguishable — window by window, bit by bit —
// from one deep-restored by Snapshot.Restore, across ambients, on a
// cold arena, on a warm arena, and on an arena left dirty by a full
// deployment of the previous occupant.
func TestTemplateRestoreEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("characterization is slow; skipping in -short")
	}
	const windows = 40
	for _, seed := range []uint64{3, 19} {
		for _, amb := range []struct{ cpu, dimm float64 }{{0, 0}, {38, 44}} {
			t.Run(fmt.Sprintf("seed=%d/ambient=%v", seed, amb.cpu), func(t *testing.T) {
				eco, _ := readyEcosystem(t, seed)
				snap, err := eco.Snapshot()
				if err != nil {
					t.Fatal(err)
				}
				tmpl := snap.Compile()
				ropts := RestoreOptions{AmbientCPUC: amb.cpu, AmbientDIMMC: amb.dimm}

				legacy, err := snap.Restore(ropts)
				if err != nil {
					t.Fatal(err)
				}
				want := deploymentTrace(t, legacy, windows)

				arena := NewRestoreArena()
				// Cold stamp, warm stamp, dirty re-stamp: each must
				// reproduce the reference trace exactly. Each trace run
				// leaves the arena ecosystem fully mutated (aged silicon,
				// spent streams, advanced clock), so every iteration after
				// the first also proves the stamp overwrites all of it.
				for pass, label := range []string{"cold", "warm", "dirty"} {
					stamped, err := tmpl.RestoreInto(arena, ropts)
					if err != nil {
						t.Fatal(err)
					}
					if got := deploymentTrace(t, stamped, windows); got != want {
						t.Fatalf("pass %d (%s): template restore diverged from legacy restore:\n--- legacy ---\n%s--- template ---\n%s",
							pass, label, want, got)
					}
				}
			})
		}
	}
}

// TestTemplateRestoreHealthLogBytes pins the per-node log surface: the
// JSON-lines health log a stamped ecosystem writes during deployment
// must be byte-identical to the legacy restore's, since the fleet's
// golden health logs are fingerprinted from these bytes.
func TestTemplateRestoreHealthLogBytes(t *testing.T) {
	if testing.Short() {
		t.Skip("characterization is slow; skipping in -short")
	}
	eco, _ := readyEcosystem(t, 7)
	snap, err := eco.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	tmpl := snap.Compile()

	run := func(e *Ecosystem) {
		t.Helper()
		if _, err := e.RunDeployment(vfr.ModeHighPerformance, 0.01, workload.WebFrontend(), 25); err != nil {
			t.Fatal(err)
		}
	}
	var legacyLog, stampLog bytes.Buffer
	legacy, err := snap.Restore(RestoreOptions{HealthLogOut: &legacyLog})
	if err != nil {
		t.Fatal(err)
	}
	run(legacy)

	arena := NewRestoreArena()
	if _, err := tmpl.RestoreInto(arena, RestoreOptions{}); err != nil {
		t.Fatal(err) // cold stamp; the warm stamp below is the path under test
	}
	stamped, err := tmpl.RestoreInto(arena, RestoreOptions{HealthLogOut: &stampLog})
	if err != nil {
		t.Fatal(err)
	}
	run(stamped)

	if !bytes.Equal(legacyLog.Bytes(), stampLog.Bytes()) {
		t.Fatalf("health-log bytes diverged (legacy %d bytes, template %d bytes)",
			legacyLog.Len(), stampLog.Len())
	}
}

// TestTemplateRestoreReseed pins the archetype path through the
// template: stamp + Reseed must equal legacy restore + Reseed, stream
// for stream.
func TestTemplateRestoreReseed(t *testing.T) {
	if testing.Short() {
		t.Skip("characterization is slow; skipping in -short")
	}
	eco, _ := readyEcosystem(t, 5)
	snap, err := eco.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	tmpl := snap.Compile()
	const seed = 1234

	legacy, err := snap.Restore(RestoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := legacy.Reseed(seed); err != nil {
		t.Fatal(err)
	}
	want := deploymentTrace(t, legacy, 30)

	arena := NewRestoreArena()
	if _, err := tmpl.RestoreInto(arena, RestoreOptions{}); err != nil {
		t.Fatal(err)
	}
	stamped, err := tmpl.RestoreInto(arena, RestoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := stamped.Reseed(seed); err != nil {
		t.Fatal(err)
	}
	if got := deploymentTrace(t, stamped, 30); got != want {
		t.Fatalf("reseeded template restore diverged:\n--- legacy ---\n%s--- template ---\n%s", want, got)
	}
}

// TestTemplateRestoreEpochBoundary pins the lifetime-engine capture
// window: a snapshot taken on a fast-forward epoch boundary after an
// in-field re-characterization (the AVATAR growth path: aged silicon,
// grown VRT state, refreshed margins) must compile and stamp exactly
// as it deep-restores.
func TestTemplateRestoreEpochBoundary(t *testing.T) {
	if testing.Short() {
		t.Skip("characterization is slow; skipping in -short")
	}
	eco, _ := readyEcosystem(t, 11)
	d, err := eco.StartDeployment(vfr.ModeHighPerformance, 0.01, workload.WebFrontend())
	if err != nil {
		t.Fatal(err)
	}
	for w := 0; w < 15; w++ {
		if _, err := d.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.FastForward(Gap{Days: 60, Duty: 0.5, AmbientCPUC: 33, AmbientDIMMC: 39}); err != nil {
		t.Fatal(err)
	}
	if err := d.RecharacterizeNow(); err != nil {
		t.Fatal(err)
	}
	snap, err := eco.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	tmpl := snap.Compile()

	legacy, err := snap.Restore(RestoreOptions{AmbientCPUC: 33, AmbientDIMMC: 39})
	if err != nil {
		t.Fatal(err)
	}
	want := deploymentTrace(t, legacy, 30)

	arena := NewRestoreArena()
	ropts := RestoreOptions{AmbientCPUC: 33, AmbientDIMMC: 39}
	if _, err := tmpl.RestoreInto(arena, ropts); err != nil {
		t.Fatal(err)
	}
	stamped, err := tmpl.RestoreInto(arena, ropts)
	if err != nil {
		t.Fatal(err)
	}
	if got := deploymentTrace(t, stamped, 30); got != want {
		t.Fatalf("epoch-boundary template restore diverged:\n--- legacy ---\n%s--- template ---\n%s", want, got)
	}
}

// TestTemplateRestoreIndependence pins the alias-free property across
// arenas: running one stamped node to completion (mutating silicon
// aging, VRT telegraph state, health history, hypervisor counters,
// stream positions) must leave the template — and nodes stamped from
// it afterwards, on the same or other arenas — untouched.
func TestTemplateRestoreIndependence(t *testing.T) {
	if testing.Short() {
		t.Skip("characterization is slow; skipping in -short")
	}
	eco, _ := readyEcosystem(t, 13)
	snap, err := eco.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	tmpl := snap.Compile()

	a, b := NewRestoreArena(), NewRestoreArena()
	stamp := func(ar *RestoreArena) *Ecosystem {
		t.Helper()
		e, err := tmpl.RestoreInto(ar, RestoreOptions{})
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	traceA := deploymentTrace(t, stamp(a), 30)
	// b stamps only after a's node fully mutated itself; bleed into the
	// shared template would show up here.
	traceB := deploymentTrace(t, stamp(b), 30)
	if traceA != traceB {
		t.Fatalf("sibling arena stamps diverged — template state is shared mutable:\n--- first ---\n%s--- second ---\n%s",
			traceA, traceB)
	}
	// Re-stamping the dirty arenas must still reproduce the original.
	if traceC := deploymentTrace(t, stamp(a), 30); traceC != traceA {
		t.Fatalf("re-stamp after a full deployment diverged:\n--- before ---\n%s--- after ---\n%s",
			traceA, traceC)
	}
	// And the legacy path still sees the pristine snapshot.
	legacy, err := snap.Restore(RestoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if traceL := deploymentTrace(t, legacy, 30); traceL != traceA {
		t.Fatalf("snapshot mutated by template stamps:\n--- legacy ---\n%s--- stamped ---\n%s",
			traceL, traceA)
	}
}
