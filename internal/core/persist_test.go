package core

import (
	"bytes"
	"encoding/gob"
	"reflect"
	"testing"

	"uniserver/internal/vfr"
	"uniserver/internal/workload"
)

// TestSnapshotDiskRoundTrip is the disk-spill correctness pin: a
// snapshot serialized through Save and read back must restore an
// ecosystem whose entire forward behaviour — mode entry, every window
// report, the deployment summary, the health-log bytes — is
// bit-identical to a restore of the original in-memory snapshot.
func TestSnapshotDiskRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("characterization is slow; skipping in -short")
	}
	eco, err := New(lifetimeTestOptions(21))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eco.PreDeployment(); err != nil {
		t.Fatal(err)
	}
	snap, err := eco.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := snap.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}

	var logA, logB bytes.Buffer
	a, err := snap.Restore(RestoreOptions{HealthLogOut: &logA})
	if err != nil {
		t.Fatal(err)
	}
	b, err := loaded.Restore(RestoreOptions{HealthLogOut: &logB})
	if err != nil {
		t.Fatal(err)
	}
	wl := workload.WebFrontend()
	da, err := a.StartDeployment(vfr.ModeHighPerformance, 0.01, wl)
	if err != nil {
		t.Fatal(err)
	}
	db, err := b.StartDeployment(vfr.ModeHighPerformance, 0.01, wl)
	if err != nil {
		t.Fatal(err)
	}
	// Include a gap so the deserialized stream positions, VRT index
	// and stress schedule all get exercised, not just the first
	// windows.
	gap := Gap{Days: 80, Duty: 0.6, AmbientCPUC: 35, AmbientDIMMC: 41}
	for _, d := range []*Deployment{da, db} {
		for w := 0; w < 6; w++ {
			if _, err := d.Step(); err != nil {
				t.Fatal(err)
			}
		}
		if err := d.FastForward(gap); err != nil {
			t.Fatal(err)
		}
		if _, err := d.MaybeRecharacterize(); err != nil {
			t.Fatal(err)
		}
		for w := 0; w < 6; w++ {
			if _, err := d.Step(); err != nil {
				t.Fatal(err)
			}
		}
	}
	sa, sb := da.Summary(), db.Summary()
	if !reflect.DeepEqual(sa, sb) {
		t.Fatalf("deserialized snapshot diverged from the in-memory one:\n%+v\n%+v", sa, sb)
	}
	if sa.Recharacterized == 0 {
		t.Fatal("round trip exercised no re-characterization; the comparison proves too little")
	}
	if !bytes.Equal(logA.Bytes(), logB.Bytes()) {
		t.Fatal("health-log bytes diverged between in-memory and disk restores")
	}
	if a.Table().Len() != b.Table().Len() {
		t.Fatalf("EOP tables diverged: %d vs %d components", a.Table().Len(), b.Table().Len())
	}
}

// TestLoadSnapshotRefusesMismatchedVersion pins the version gate.
func TestLoadSnapshotRefusesMismatchedVersion(t *testing.T) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(SnapshotFormatVersion + 1); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadSnapshot(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("mismatched snapshot version accepted")
	}
}

// TestSaveRefusesPostDeploymentState: disk persistence covers the
// pre-deployment characterization checkpoint only; snapshots taken
// after mode entry (or mid-life) carry hypervisor state the wire form
// does not model and must refuse loudly.
func TestSaveRefusesPostDeploymentState(t *testing.T) {
	if testing.Short() {
		t.Skip("characterization is slow; skipping in -short")
	}
	eco, err := New(lifetimeTestOptions(22))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eco.PreDeployment(); err != nil {
		t.Fatal(err)
	}
	if _, err := eco.EnterMode(vfr.ModeHighPerformance, 0.01, workload.WebFrontend()); err != nil {
		t.Fatal(err)
	}
	snap, err := eco.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if err := snap.Save(&bytes.Buffer{}); err == nil {
		t.Fatal("serialized a snapshot taken after mode entry")
	}
}
