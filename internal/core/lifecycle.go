package core

import (
	"fmt"
	"time"

	"uniserver/internal/silicon"
	"uniserver/internal/stresslog"
	"uniserver/internal/vfr"
	"uniserver/internal/workload"
)

// HandleCrash is the ecosystem's safety response when a runtime window
// crashes at an extended operating point: fall back to the nominal
// guardbanded point immediately (the hypervisor reconfigures "to
// operate within safe margins"), and queue a re-characterization so
// the StressLog can publish updated margins.
func (e *Ecosystem) HandleCrash() error {
	nominal := e.Machine.Spec.Nominal
	if err := e.Hypervisor.ApplyPoint(nominal); err != nil {
		return fmt.Errorf("core: falling back to nominal: %w", err)
	}
	// DRAM falls back to the JEDEC interval too.
	for _, dom := range e.Mem.RelaxedDomains() {
		if err := dom.SetRefresh(vfr.NominalRefresh); err != nil {
			return err
		}
	}
	e.mode = vfr.ModeNominal
	return nil
}

// Recharacterize runs a fresh StressLog campaign (the machine goes
// offline for its duration), refreshes the EOP table and the advisor,
// and returns the new margin vector.
func (e *Ecosystem) Recharacterize() (stresslog.MarginVector, error) {
	vec, err := e.Stress.RunCampaign(stresslog.DefaultTargetParams(), e.src.Split())
	if err != nil {
		return stresslog.MarginVector{}, err
	}
	e.table = vec.Table
	e.advisor.Table = vec.Table
	// Flush campaign-provoked errors out of the trigger window.
	e.Clock.Advance(2 * time.Hour)
	return vec, nil
}

// DeploymentSummary aggregates a long-horizon supervised deployment.
type DeploymentSummary struct {
	Windows            int
	Crashes            int
	Fallbacks          int
	Recharacterized    int
	WindowsAtEOP       int
	WindowsAtNominal   int
	EnergySavedWh      float64
	CorrectableMasked  int
	FinalAgeShiftMV    float64
	FinalSafeVoltageMV int
}

// RunDeployment supervises `windows` observation windows of the given
// workload in the requested mode, implementing the full closed loop of
// Figure 2: crashes trigger an immediate nominal fallback plus
// re-characterization and mode re-entry; HealthLog error-threshold
// triggers and the periodic schedule also force campaigns; the silicon
// ages continuously so later campaigns publish drifted margins.
func (e *Ecosystem) RunDeployment(mode vfr.Mode, riskTarget float64, wl workload.Profile, windows int) (DeploymentSummary, error) {
	var sum DeploymentSummary
	if _, err := e.EnterMode(mode, riskTarget, wl); err != nil {
		return sum, err
	}
	aging := silicon.DefaultAgingModel()
	nominalW := e.power.TotalW(e.Machine.Spec.Nominal, wl.CPUActivity, 55)

	for w := 0; w < windows; w++ {
		rep := e.RuntimeWindow(wl)
		sum.Windows++
		sum.CorrectableMasked += rep.Correctable
		if e.mode == vfr.ModeNominal {
			sum.WindowsAtNominal++
		} else {
			sum.WindowsAtEOP++
		}
		// Energy ledger: each window is one simulated minute.
		curW := e.power.TotalW(e.Hypervisor.Point(), wl.CPUActivity, 55)
		sum.EnergySavedWh += (nominalW - curW) / 60

		// Continuous aging at the workload's stress level.
		e.Machine.Chip.Age(aging, time.Minute, wl.CPUActivity)

		needCampaign := false
		if rep.Crashed {
			sum.Crashes++
			sum.Fallbacks++
			if err := e.HandleCrash(); err != nil {
				return sum, err
			}
			needCampaign = true
		}
		if rep.PendingTests > 0 || e.Stress.DuePeriodic() {
			needCampaign = true
		}
		if needCampaign {
			if _, err := e.Recharacterize(); err != nil {
				return sum, err
			}
			sum.Recharacterized++
			if _, err := e.EnterMode(mode, riskTarget, wl); err != nil {
				return sum, err
			}
		}
	}

	sum.FinalAgeShiftMV = e.Machine.Chip.AgeShiftMV
	if m, err := e.worstCPUMargin(); err == nil {
		sum.FinalSafeVoltageMV = m.Safe.VoltageMV
	}
	return sum, nil
}

// worstCPUMargin returns the CPU margin with the least headroom.
func (e *Ecosystem) worstCPUMargin() (vfr.Margin, error) {
	var worst vfr.Margin
	found := false
	for _, comp := range e.table.Components() {
		m, err := e.table.Lookup(comp)
		if err != nil {
			return vfr.Margin{}, err
		}
		if m.Component == "dram/relaxed" {
			continue
		}
		if !found || m.Safe.VoltageMV > worst.Safe.VoltageMV {
			worst, found = m, true
		}
	}
	if !found {
		return vfr.Margin{}, fmt.Errorf("core: no CPU margins")
	}
	return worst, nil
}
