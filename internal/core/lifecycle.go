package core

import (
	"errors"
	"fmt"
	"time"

	"uniserver/internal/predictor"
	"uniserver/internal/silicon"
	"uniserver/internal/stresslog"
	"uniserver/internal/vfr"
	"uniserver/internal/workload"
)

// HandleCrash is the ecosystem's safety response when a runtime window
// crashes at an extended operating point: fall back to the nominal
// guardbanded point immediately (the hypervisor reconfigures "to
// operate within safe margins"), and queue a re-characterization so
// the StressLog can publish updated margins.
func (e *Ecosystem) HandleCrash() error {
	nominal := e.Machine.Spec.Nominal
	if err := e.Hypervisor.ApplyPoint(nominal); err != nil {
		return fmt.Errorf("core: falling back to nominal: %w", err)
	}
	// DRAM falls back to the JEDEC interval too.
	for _, dom := range e.Mem.RelaxedDomains() {
		if err := dom.SetRefresh(vfr.NominalRefresh); err != nil {
			return err
		}
	}
	e.mode = vfr.ModeNominal
	return nil
}

// Recharacterize runs a fresh StressLog campaign (the machine goes
// offline for its duration), refreshes the EOP table and the advisor,
// and returns the new margin vector.
func (e *Ecosystem) Recharacterize() (stresslog.MarginVector, error) {
	vec, err := e.Stress.RunCampaign(stresslog.DefaultTargetParams(), e.src.Split())
	if err != nil {
		return stresslog.MarginVector{}, err
	}
	e.setTable(vec.Table)
	e.advisor.Table = vec.Table
	// Flush campaign-provoked errors out of the trigger window.
	e.Clock.Advance(2 * time.Hour)
	return vec, nil
}

// DeploymentSummary aggregates a long-horizon supervised deployment.
type DeploymentSummary struct {
	Windows           int
	Crashes           int
	Fallbacks         int
	Recharacterized   int
	WindowsAtEOP      int
	WindowsAtNominal  int
	EnergySavedWh     float64
	CorrectableMasked int
	// DRAMCorrected counts DRAM retention errors corrected by SECDED
	// across all windows — the counter relaxed-refresh scenarios and
	// hot seasons move.
	DRAMCorrected int
	// MeanCPUTempC is the mean die temperature over the deployment —
	// the observable ambient-temperature scenarios exist to shift.
	MeanCPUTempC       float64
	FinalAgeShiftMV    float64
	FinalSafeVoltageMV int
	// Epochs is the per-epoch margin trajectory of a multi-epoch
	// lifetime (nil for plain single-epoch deployments, so existing
	// summaries — and their fingerprints — are untouched).
	Epochs []EpochSummary `json:"epochs,omitempty"`

	// Adaptive-policy counters. All four stay zero — and JSON-silent —
	// unless the corresponding policy is armed, so policy-less
	// deployments keep their existing summaries and fingerprints.
	//
	// RecharTriggered and RecharSuppressed count the drift gate's
	// decisions on scheduled campaigns: run (predicted margin drift
	// exceeded the armed fraction) versus skip (margins still fresh).
	RecharTriggered  int `json:"rechar_triggered,omitempty"`
	RecharSuppressed int `json:"rechar_suppressed,omitempty"`
	// UndervoltSteps and ECCBackoffs count the closed-loop controller's
	// moves below the advised point and its retreats on ECC onset.
	UndervoltSteps int `json:"undervolt_steps,omitempty"`
	ECCBackoffs    int `json:"ecc_backoffs,omitempty"`
}

// Deployment is a supervised closed-loop deployment in progress: the
// reentrant form of the Figure 2 runtime loop. Each Step advances one
// observation window; the caller owns the cadence, so a fleet engine
// can interleave many nodes' deployments on independent goroutines and
// barrier-synchronize them into cluster epochs. A Deployment is bound
// to one Ecosystem and inherits its single-goroutine discipline: never
// Step the same Deployment from two goroutines at once.
type Deployment struct {
	eco      *Ecosystem
	mode     vfr.Mode
	risk     float64
	wl       workload.Profile
	aging    silicon.AgingModel
	nominalW float64
	tempSumC float64
	sum      DeploymentSummary

	// Lifetime trajectory bookkeeping (lifetime.go): epochs holds the
	// closed epochs, the epoch* fields describe the one in progress.
	// The trajectory only materializes in Summary once FastForward has
	// run at least once, so single-epoch deployments are unchanged.
	epochs            []EpochSummary
	epochGapDays      int
	epochStartWindows int
	epochStartRechar  int
	epochEntryAge     float64
	epochEntrySafe    int

	// Drift policy (SetDriftPolicy): gate scheduled campaigns on the
	// predicted margin drift accumulated since the last one.
	driftOn         bool
	driftFrac       float64
	lastCampaignAge float64

	// ECC closed loop (SetECCLoop): creep the operating point below the
	// advised one while correctable errors stay at or under the
	// threshold; back off on onset. eccExtraMV is the controller's
	// current offset below the advised point.
	eccOn        bool
	eccThreshold int
	eccExtraMV   int
}

// Closed-loop undervolting constants (Bacha & Teodorescu, ISCA 2013:
// reclaim voltage guardbands online, using correctable ECC errors as
// the early-warning signal).
const (
	// eccStepMV is the controller's per-decision voltage step, matching
	// the advisor's 5 mV backoff granularity.
	eccStepMV = 5
	// eccMaxExtraMV bounds how far below the advised point the
	// controller will creep before holding.
	eccMaxExtraMV = 40
)

// StartDeployment enters the requested mode and returns a stepper for
// the supervised loop. The returned Deployment has run zero windows.
func (e *Ecosystem) StartDeployment(mode vfr.Mode, riskTarget float64, wl workload.Profile) (*Deployment, error) {
	if _, err := e.EnterMode(mode, riskTarget, wl); err != nil {
		return nil, err
	}
	d := &Deployment{
		eco:           e,
		mode:          mode,
		risk:          riskTarget,
		wl:            wl,
		aging:         silicon.DefaultAgingModel(),
		nominalW:      e.power.TotalW(e.Machine.Spec.Nominal, wl.CPUActivity, 55),
		epochEntryAge: e.Machine.Chip.AgeShiftMV,
	}
	if m, err := e.worstCPUMargin(); err == nil {
		d.epochEntrySafe = m.Safe.VoltageMV
	}
	d.lastCampaignAge = e.Machine.Chip.AgeShiftMV
	return d, nil
}

// SetDriftPolicy arms drift-gated re-characterization: scheduled
// (cadence) campaigns run only when the critical-voltage drift
// accumulated since the last campaign exceeds marginFrac of the
// headroom the Predictor's advised point currently reclaims below
// nominal. Crash- and error-threshold-triggered campaigns are the
// safety path and are never gated. marginFrac 0 is the degenerate
// "always due" policy — every scheduled campaign runs, reproducing the
// plain fixed cadence exactly. A negative marginFrac disarms.
func (d *Deployment) SetDriftPolicy(marginFrac float64) {
	if marginFrac < 0 {
		d.driftOn = false
		return
	}
	d.driftOn = true
	d.driftFrac = marginFrac
	d.lastCampaignAge = d.eco.Machine.Chip.AgeShiftMV
}

// SetECCLoop arms the correctable-ECC-feedback closed-loop undervolting
// controller (Bacha & Teodorescu, ISCA 2013): each quiet window — at
// most `threshold` correctable errors — steps the operating point one
// notch below the advised point, up to a bounded offset; a window over
// the threshold backs one notch off. Crashes, mode switches and
// re-characterizations re-derive the point through the usual EnterMode
// machinery and reset the controller. A negative threshold disarms.
func (d *Deployment) SetECCLoop(threshold int) {
	if threshold < 0 {
		d.eccOn = false
		return
	}
	d.eccOn = true
	d.eccThreshold = threshold
	d.eccExtraMV = 0
}

// Advise returns the operating point the Predictor currently
// recommends for the deployment's mode, risk target and workload —
// the pure decision surface the adaptive policies consult. Nothing is
// applied and no simulation state moves.
func (d *Deployment) Advise() (predictor.Advice, error) {
	return d.eco.Advise(d.mode, d.risk, d.wl)
}

// driftDue consults the Predictor against the live EOP table: the
// measured drift is the critical-voltage shift accumulated since the
// last campaign, and the gate opens when it reaches driftFrac of the
// headroom the advised point reclaims below nominal. With driftFrac 0
// it is always open (aging is monotone, so drift >= 0), which is what
// makes the zero policy degenerate to the plain cadence.
func (d *Deployment) driftDue() bool {
	adv, err := d.Advise()
	if err != nil {
		// Fail open: a broken decision surface is exactly what a fresh
		// characterization repairs.
		return true
	}
	m, err := d.eco.worstCPUMargin()
	if err != nil {
		return true
	}
	headroomMV := float64(m.Nominal.VoltageMV - adv.Point.VoltageMV)
	drift := d.eco.Machine.Chip.AgeShiftMV - d.lastCampaignAge
	return drift >= d.driftFrac*headroomMV
}

// scheduledCampaignDue reports whether a periodic-cadence campaign
// should run now. Without a drift policy it is exactly
// Stress.DuePeriodic. With one, a due slot runs only when driftDue;
// otherwise the slot is consumed (SkipPeriodic) so the decision
// recurs at the next cadence tick, not on every following window.
func (d *Deployment) scheduledCampaignDue() bool {
	if !d.eco.Stress.DuePeriodic() {
		return false
	}
	if !d.driftOn {
		return true
	}
	if !d.driftDue() {
		d.eco.Stress.SkipPeriodic()
		d.sum.RecharSuppressed++
		return false
	}
	d.sum.RecharTriggered++
	return true
}

// eccStep is one closed-loop controller decision, taken at the end of
// a window that neither crashed nor re-characterized. It is a pure
// function of the window's correctable-error count and the
// controller's own offset — no random draws — so it preserves the
// determinism contract untouched.
func (d *Deployment) eccStep(correctable int) error {
	e := d.eco
	if e.mode == vfr.ModeNominal {
		// A fallback re-derived the point at nominal; the controller
		// only creeps below an extended operating point.
		d.eccExtraMV = 0
		return nil
	}
	cur := e.Hypervisor.Point()
	switch {
	case correctable > d.eccThreshold:
		if d.eccExtraMV > 0 {
			d.eccExtraMV -= eccStepMV
			d.sum.ECCBackoffs++
			if err := e.Hypervisor.ApplyPoint(cur.WithVoltage(cur.VoltageMV + eccStepMV)); err != nil {
				return fmt.Errorf("core: ecc-loop backoff: %w", err)
			}
		}
	case d.eccExtraMV+eccStepMV <= eccMaxExtraMV:
		d.eccExtraMV += eccStepMV
		d.sum.UndervoltSteps++
		if err := e.Hypervisor.ApplyPoint(cur.WithVoltage(cur.VoltageMV - eccStepMV)); err != nil {
			return fmt.Errorf("core: ecc-loop step: %w", err)
		}
	}
	return nil
}

// Step advances the deployment by one observation window, implementing
// the full closed loop of Figure 2: the window runs at the current
// point, crashes trigger an immediate nominal fallback plus
// re-characterization and mode re-entry, HealthLog error-threshold
// triggers and the periodic schedule also force campaigns, and the
// silicon ages continuously so later campaigns publish drifted margins.
// The returned report is the window's raw observation (before any
// fallback the step performed in response to it).
func (d *Deployment) Step() (WindowReport, error) {
	e := d.eco
	rep := e.RuntimeWindow(d.wl)
	d.sum.Windows++
	d.sum.CorrectableMasked += rep.Correctable
	for _, n := range rep.DRAMHits {
		d.sum.DRAMCorrected += n
	}
	d.tempSumC += rep.CPUTempC
	if e.mode == vfr.ModeNominal {
		d.sum.WindowsAtNominal++
	} else {
		d.sum.WindowsAtEOP++
	}
	// Energy ledger: each window is one simulated minute.
	curW := e.power.TotalW(e.Hypervisor.Point(), d.wl.CPUActivity, 55)
	d.sum.EnergySavedWh += (d.nominalW - curW) / 60

	// Continuous aging at the workload's stress level.
	e.Machine.Chip.Age(d.aging, time.Minute, d.wl.CPUActivity)

	needCampaign := false
	if rep.Crashed {
		d.sum.Crashes++
		d.sum.Fallbacks++
		if err := e.HandleCrash(); err != nil {
			return rep, err
		}
		needCampaign = true
	}
	if rep.PendingTests > 0 {
		needCampaign = true
	}
	if !needCampaign && d.scheduledCampaignDue() {
		needCampaign = true
	}
	if needCampaign {
		if err := d.RecharacterizeNow(); err != nil {
			return rep, err
		}
	} else if d.eccOn {
		if err := d.eccStep(rep.Correctable); err != nil {
			return rep, err
		}
	}
	return rep, nil
}

// SwitchMode re-enters the deployment at a different operating mode
// and risk target mid-run — the "mode churn" lever: a fleet operator
// moving nodes between high-performance and low-power regimes as
// demand shifts. The advisor re-derives the V-F-R point from the
// current EOP table, so a switch after aging or re-characterization
// lands on the drifted margins, not the day-one ones.
func (d *Deployment) SwitchMode(mode vfr.Mode, riskTarget float64) error {
	if _, err := d.eco.EnterMode(mode, riskTarget, d.wl); err != nil {
		return err
	}
	d.mode = mode
	d.risk = riskTarget
	d.eccExtraMV = 0
	return nil
}

// SetWorkload swaps the guest profile the deployment steps with — the
// lever behind tenant churn and droop-virus attack injection. The
// energy ledger's nominal baseline is recomputed for the new activity
// factor so savings stay comparable across the switch.
func (d *Deployment) SetWorkload(wl workload.Profile) {
	d.wl = wl
	d.nominalW = d.eco.power.TotalW(d.eco.Machine.Spec.Nominal, wl.CPUActivity, 55)
}

// Workload returns the guest profile the deployment currently runs.
func (d *Deployment) Workload() workload.Profile { return d.wl }

// Summary returns the deployment totals so far, with the final margin
// and aging figures filled in from the ecosystem's current state.
func (d *Deployment) Summary() DeploymentSummary {
	sum := d.sum
	if sum.Windows > 0 {
		sum.MeanCPUTempC = d.tempSumC / float64(sum.Windows)
	}
	sum.FinalAgeShiftMV = d.eco.Machine.Chip.AgeShiftMV
	if m, err := d.eco.worstCPUMargin(); err == nil {
		sum.FinalSafeVoltageMV = m.Safe.VoltageMV
	}
	if len(d.epochs) > 0 {
		// Multi-epoch lifetime: close the in-progress epoch into a copy
		// of the trajectory (Summary must not mutate the deployment).
		sum.Epochs = append(append([]EpochSummary(nil), d.epochs...), d.openEpochRow())
	}
	return sum
}

// Ecosystem returns the node the deployment is supervising.
func (d *Deployment) Ecosystem() *Ecosystem { return d.eco }

// RunDeployment supervises `windows` observation windows of the given
// workload in the requested mode. It is the batch form of
// StartDeployment + Step: kept for callers that do not need the
// reentrant API.
func (e *Ecosystem) RunDeployment(mode vfr.Mode, riskTarget float64, wl workload.Profile, windows int) (DeploymentSummary, error) {
	d, err := e.StartDeployment(mode, riskTarget, wl)
	if err != nil {
		return DeploymentSummary{}, err
	}
	for w := 0; w < windows; w++ {
		if _, err := d.Step(); err != nil {
			return d.Summary(), err
		}
	}
	return d.Summary(), nil
}

// ErrNotCharacterized is returned by APIs that need PreDeployment to
// have run first.
var ErrNotCharacterized = errors.New("core: run PreDeployment first")

// worstCPUMargin returns the CPU margin with the least headroom, from
// the cache setTable maintains.
func (e *Ecosystem) worstCPUMargin() (vfr.Margin, error) {
	if e.worstComp == "" {
		return vfr.Margin{}, fmt.Errorf("core: no CPU margins")
	}
	return e.worstMargin, nil
}
