package core

import (
	"errors"
	"fmt"
	"time"

	"uniserver/internal/silicon"
	"uniserver/internal/stresslog"
	"uniserver/internal/vfr"
	"uniserver/internal/workload"
)

// HandleCrash is the ecosystem's safety response when a runtime window
// crashes at an extended operating point: fall back to the nominal
// guardbanded point immediately (the hypervisor reconfigures "to
// operate within safe margins"), and queue a re-characterization so
// the StressLog can publish updated margins.
func (e *Ecosystem) HandleCrash() error {
	nominal := e.Machine.Spec.Nominal
	if err := e.Hypervisor.ApplyPoint(nominal); err != nil {
		return fmt.Errorf("core: falling back to nominal: %w", err)
	}
	// DRAM falls back to the JEDEC interval too.
	for _, dom := range e.Mem.RelaxedDomains() {
		if err := dom.SetRefresh(vfr.NominalRefresh); err != nil {
			return err
		}
	}
	e.mode = vfr.ModeNominal
	return nil
}

// Recharacterize runs a fresh StressLog campaign (the machine goes
// offline for its duration), refreshes the EOP table and the advisor,
// and returns the new margin vector.
func (e *Ecosystem) Recharacterize() (stresslog.MarginVector, error) {
	vec, err := e.Stress.RunCampaign(stresslog.DefaultTargetParams(), e.src.Split())
	if err != nil {
		return stresslog.MarginVector{}, err
	}
	e.setTable(vec.Table)
	e.advisor.Table = vec.Table
	// Flush campaign-provoked errors out of the trigger window.
	e.Clock.Advance(2 * time.Hour)
	return vec, nil
}

// DeploymentSummary aggregates a long-horizon supervised deployment.
type DeploymentSummary struct {
	Windows           int
	Crashes           int
	Fallbacks         int
	Recharacterized   int
	WindowsAtEOP      int
	WindowsAtNominal  int
	EnergySavedWh     float64
	CorrectableMasked int
	// DRAMCorrected counts DRAM retention errors corrected by SECDED
	// across all windows — the counter relaxed-refresh scenarios and
	// hot seasons move.
	DRAMCorrected int
	// MeanCPUTempC is the mean die temperature over the deployment —
	// the observable ambient-temperature scenarios exist to shift.
	MeanCPUTempC       float64
	FinalAgeShiftMV    float64
	FinalSafeVoltageMV int
	// Epochs is the per-epoch margin trajectory of a multi-epoch
	// lifetime (nil for plain single-epoch deployments, so existing
	// summaries — and their fingerprints — are untouched).
	Epochs []EpochSummary `json:"epochs,omitempty"`
}

// Deployment is a supervised closed-loop deployment in progress: the
// reentrant form of the Figure 2 runtime loop. Each Step advances one
// observation window; the caller owns the cadence, so a fleet engine
// can interleave many nodes' deployments on independent goroutines and
// barrier-synchronize them into cluster epochs. A Deployment is bound
// to one Ecosystem and inherits its single-goroutine discipline: never
// Step the same Deployment from two goroutines at once.
type Deployment struct {
	eco      *Ecosystem
	mode     vfr.Mode
	risk     float64
	wl       workload.Profile
	aging    silicon.AgingModel
	nominalW float64
	tempSumC float64
	sum      DeploymentSummary

	// Lifetime trajectory bookkeeping (lifetime.go): epochs holds the
	// closed epochs, the epoch* fields describe the one in progress.
	// The trajectory only materializes in Summary once FastForward has
	// run at least once, so single-epoch deployments are unchanged.
	epochs            []EpochSummary
	epochGapDays      int
	epochStartWindows int
	epochStartRechar  int
	epochEntryAge     float64
	epochEntrySafe    int
}

// StartDeployment enters the requested mode and returns a stepper for
// the supervised loop. The returned Deployment has run zero windows.
func (e *Ecosystem) StartDeployment(mode vfr.Mode, riskTarget float64, wl workload.Profile) (*Deployment, error) {
	if _, err := e.EnterMode(mode, riskTarget, wl); err != nil {
		return nil, err
	}
	d := &Deployment{
		eco:           e,
		mode:          mode,
		risk:          riskTarget,
		wl:            wl,
		aging:         silicon.DefaultAgingModel(),
		nominalW:      e.power.TotalW(e.Machine.Spec.Nominal, wl.CPUActivity, 55),
		epochEntryAge: e.Machine.Chip.AgeShiftMV,
	}
	if m, err := e.worstCPUMargin(); err == nil {
		d.epochEntrySafe = m.Safe.VoltageMV
	}
	return d, nil
}

// Step advances the deployment by one observation window, implementing
// the full closed loop of Figure 2: the window runs at the current
// point, crashes trigger an immediate nominal fallback plus
// re-characterization and mode re-entry, HealthLog error-threshold
// triggers and the periodic schedule also force campaigns, and the
// silicon ages continuously so later campaigns publish drifted margins.
// The returned report is the window's raw observation (before any
// fallback the step performed in response to it).
func (d *Deployment) Step() (WindowReport, error) {
	e := d.eco
	rep := e.RuntimeWindow(d.wl)
	d.sum.Windows++
	d.sum.CorrectableMasked += rep.Correctable
	for _, n := range rep.DRAMHits {
		d.sum.DRAMCorrected += n
	}
	d.tempSumC += rep.CPUTempC
	if e.mode == vfr.ModeNominal {
		d.sum.WindowsAtNominal++
	} else {
		d.sum.WindowsAtEOP++
	}
	// Energy ledger: each window is one simulated minute.
	curW := e.power.TotalW(e.Hypervisor.Point(), d.wl.CPUActivity, 55)
	d.sum.EnergySavedWh += (d.nominalW - curW) / 60

	// Continuous aging at the workload's stress level.
	e.Machine.Chip.Age(d.aging, time.Minute, d.wl.CPUActivity)

	needCampaign := false
	if rep.Crashed {
		d.sum.Crashes++
		d.sum.Fallbacks++
		if err := e.HandleCrash(); err != nil {
			return rep, err
		}
		needCampaign = true
	}
	if rep.PendingTests > 0 || e.Stress.DuePeriodic() {
		needCampaign = true
	}
	if needCampaign {
		if err := d.RecharacterizeNow(); err != nil {
			return rep, err
		}
	}
	return rep, nil
}

// SwitchMode re-enters the deployment at a different operating mode
// and risk target mid-run — the "mode churn" lever: a fleet operator
// moving nodes between high-performance and low-power regimes as
// demand shifts. The advisor re-derives the V-F-R point from the
// current EOP table, so a switch after aging or re-characterization
// lands on the drifted margins, not the day-one ones.
func (d *Deployment) SwitchMode(mode vfr.Mode, riskTarget float64) error {
	if _, err := d.eco.EnterMode(mode, riskTarget, d.wl); err != nil {
		return err
	}
	d.mode = mode
	d.risk = riskTarget
	return nil
}

// SetWorkload swaps the guest profile the deployment steps with — the
// lever behind tenant churn and droop-virus attack injection. The
// energy ledger's nominal baseline is recomputed for the new activity
// factor so savings stay comparable across the switch.
func (d *Deployment) SetWorkload(wl workload.Profile) {
	d.wl = wl
	d.nominalW = d.eco.power.TotalW(d.eco.Machine.Spec.Nominal, wl.CPUActivity, 55)
}

// Workload returns the guest profile the deployment currently runs.
func (d *Deployment) Workload() workload.Profile { return d.wl }

// Summary returns the deployment totals so far, with the final margin
// and aging figures filled in from the ecosystem's current state.
func (d *Deployment) Summary() DeploymentSummary {
	sum := d.sum
	if sum.Windows > 0 {
		sum.MeanCPUTempC = d.tempSumC / float64(sum.Windows)
	}
	sum.FinalAgeShiftMV = d.eco.Machine.Chip.AgeShiftMV
	if m, err := d.eco.worstCPUMargin(); err == nil {
		sum.FinalSafeVoltageMV = m.Safe.VoltageMV
	}
	if len(d.epochs) > 0 {
		// Multi-epoch lifetime: close the in-progress epoch into a copy
		// of the trajectory (Summary must not mutate the deployment).
		sum.Epochs = append(append([]EpochSummary(nil), d.epochs...), d.openEpochRow())
	}
	return sum
}

// Ecosystem returns the node the deployment is supervising.
func (d *Deployment) Ecosystem() *Ecosystem { return d.eco }

// RunDeployment supervises `windows` observation windows of the given
// workload in the requested mode. It is the batch form of
// StartDeployment + Step: kept for callers that do not need the
// reentrant API.
func (e *Ecosystem) RunDeployment(mode vfr.Mode, riskTarget float64, wl workload.Profile, windows int) (DeploymentSummary, error) {
	d, err := e.StartDeployment(mode, riskTarget, wl)
	if err != nil {
		return DeploymentSummary{}, err
	}
	for w := 0; w < windows; w++ {
		if _, err := d.Step(); err != nil {
			return d.Summary(), err
		}
	}
	return d.Summary(), nil
}

// ErrNotCharacterized is returned by APIs that need PreDeployment to
// have run first.
var ErrNotCharacterized = errors.New("core: run PreDeployment first")

// worstCPUMargin returns the CPU margin with the least headroom, from
// the cache setTable maintains.
func (e *Ecosystem) worstCPUMargin() (vfr.Margin, error) {
	if e.worstComp == "" {
		return vfr.Margin{}, fmt.Errorf("core: no CPU margins")
	}
	return e.worstMargin, nil
}
