package core

import (
	"testing"
	"time"

	"uniserver/internal/openstack"
	"uniserver/internal/rng"
	"uniserver/internal/vfr"
	"uniserver/internal/workload"
)

func TestNodeExportRequiresPreDeployment(t *testing.T) {
	e, err := New(smallOptions(51))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Node("n0", 64<<30); err == nil {
		t.Fatal("node exported before characterization")
	}
}

func TestNodeExportReflectsOperatingPoint(t *testing.T) {
	e, _ := readyEcosystem(t, 52)

	nominalNode, err := e.Node("nominal", 64<<30)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.EnterMode(vfr.ModeHighPerformance, 0.05, workload.WebFrontend()); err != nil {
		t.Fatal(err)
	}
	eopNode, err := e.Node("eop", 64<<30)
	if err != nil {
		t.Fatal(err)
	}

	if eopNode.BusyPowerW >= nominalNode.BusyPowerW {
		t.Fatalf("EOP node busy power %.1fW not below nominal %.1fW",
			eopNode.BusyPowerW, nominalNode.BusyPowerW)
	}
	if eopNode.BaseFailProb < nominalNode.BaseFailProb {
		t.Fatalf("EOP node cannot be more reliable than nominal: %v vs %v",
			eopNode.BaseFailProb, nominalNode.BaseFailProb)
	}
	if eopNode.Mode != vfr.ModeHighPerformance {
		t.Fatalf("mode = %v", eopNode.Mode)
	}
	if eopNode.Cores != e.Hypervisor.AvailableCores() {
		t.Fatal("core count mismatch")
	}
}

func TestClusterSchedulesStream(t *testing.T) {
	ecos := make([]*Ecosystem, 3)
	for i := range ecos {
		e, _ := readyEcosystem(t, 60+uint64(i))
		ecos[i] = e
	}
	m, err := Cluster(ecos, vfr.ModeHighPerformance, 0.05, 64<<30, openstack.UniServerPolicy())
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Nodes()) != 3 {
		t.Fatalf("nodes = %d", len(m.Nodes()))
	}
	arrivals, err := workload.Stream(workload.StreamConfig{
		N: 12, MeanGap: 2 * time.Minute, MeanLifetime: time.Hour, MinLifetime: 10 * time.Minute,
	}, rng.New(61))
	if err != nil {
		t.Fatal(err)
	}
	cfg := openstack.DefaultSimConfig()
	cfg.Horizon = 3 * time.Hour
	res, err := openstack.RunStream(m, arrivals, cfg, rng.New(62))
	if err != nil {
		t.Fatal(err)
	}
	if res.Scheduled == 0 {
		t.Fatal("cluster scheduled nothing")
	}
	if res.EnergyKWh <= 0 {
		t.Fatal("no energy integrated")
	}
}

func TestClusterValidation(t *testing.T) {
	if _, err := Cluster(nil, vfr.ModeNominal, 0.05, 1<<30, openstack.UniServerPolicy()); err == nil {
		t.Fatal("empty cluster accepted")
	}
}
