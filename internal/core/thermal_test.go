package core

import (
	"testing"

	"uniserver/internal/telemetry"
	"uniserver/internal/vfr"
	"uniserver/internal/workload"
)

func TestRuntimeWindowHeatsTheDie(t *testing.T) {
	e, _ := readyEcosystem(t, 81)
	if _, err := e.EnterMode(vfr.ModeHighPerformance, 0.05, workload.BatchAnalytics()); err != nil {
		t.Fatal(err)
	}
	cpu0, dimm0 := e.Temperatures()
	var last WindowReport
	for i := 0; i < 30; i++ {
		last = e.RuntimeWindow(workload.BatchAnalytics())
	}
	cpu1, dimm1 := e.Temperatures()
	if cpu1 <= cpu0 {
		t.Fatalf("die did not heat under load: %v -> %v", cpu0, cpu1)
	}
	if dimm1 <= dimm0 {
		t.Fatalf("DIMMs did not heat: %v -> %v", dimm0, dimm1)
	}
	if last.CPUTempC != cpu1 {
		t.Fatal("window report temperature inconsistent")
	}
	if last.ThermalAlarm != 0 {
		t.Fatalf("micro-server should not trip thermally at %v C", cpu1)
	}
	// The DRAM retention model must see the DIMM temperature.
	if e.Mem.TempC != dimm1 {
		t.Fatal("memory system temperature not updated")
	}
	// Temperature sensor recorded in the information vectors.
	found := false
	for _, comp := range e.Health.Components() {
		for _, v := range e.Health.Query(comp, e.Clock.Now().Add(-2e9*60)) {
			if _, ok := v.Sensor(telemetry.SensorTemperature); ok {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("no temperature readings in the HealthLog")
	}
}

func TestThermalTripForcesNominal(t *testing.T) {
	e, _ := readyEcosystem(t, 82)
	if _, err := e.EnterMode(vfr.ModeHighPerformance, 0.05, workload.WebFrontend()); err != nil {
		t.Fatal(err)
	}
	// Simulate a cooling failure: the die is already past the trip
	// threshold when the next window executes.
	e.cpuTherm.AmbientC = 100
	e.cpuTherm.TempC = 99
	rep := e.RuntimeWindow(workload.WebFrontend())
	if rep.ThermalAlarm != 2 {
		t.Fatalf("alarm = %d, want trip", rep.ThermalAlarm)
	}
	if e.Mode() != vfr.ModeNominal {
		t.Fatal("thermal trip did not force nominal fallback")
	}
	if e.Hypervisor.Point() != e.Machine.Spec.Nominal {
		t.Fatal("operating point not restored to nominal")
	}
}

func TestThermalWarningRecorded(t *testing.T) {
	e, _ := readyEcosystem(t, 83)
	if _, err := e.EnterMode(vfr.ModeHighPerformance, 0.05, workload.WebFrontend()); err != nil {
		t.Fatal(err)
	}
	e.cpuTherm.AmbientC = 88
	e.cpuTherm.TempC = 87
	rep := e.RuntimeWindow(workload.WebFrontend())
	if rep.ThermalAlarm != 1 {
		t.Fatalf("alarm = %d, want warning", rep.ThermalAlarm)
	}
	// A warning does not force a fallback.
	if e.Mode() == vfr.ModeNominal {
		t.Fatal("warning should not force nominal")
	}
}
