package core

import (
	"testing"

	"uniserver/internal/vfr"
	"uniserver/internal/workload"
)

// stepAllocBudget is the per-window allocation allowance for a quiet
// steady-state Deployment.Step — the regression fence behind the
// zero-allocation stepping work (see DESIGN.md "Performance"). The
// budget is not literally zero because two allocations are design
// decisions, not leaks:
//
//   - the 3-reading sensor slice of the window's InfoVector, whose
//     ownership is handed off to the HealthLog retention history (a
//     reused buffer would alias the query-able history), and
//   - the amortized growth of that retention history itself.
//
// Everything else — the DRAM window stream and hit map, the component
// name, the core-resolver closure, the report — comes from per-
// ecosystem scratch or the stack. If this budget ever needs raising,
// the hot path grew a leak; find it instead.
const stepAllocBudget = 4.0

// TestStepAllocationBudget pins the steady-state allocation count of
// the inner loop of every fleet and campaign run. Windows with events
// (crashes, ECC bursts, re-characterization) legitimately allocate
// more; the measured span is chosen quiet, which the test verifies.
func TestStepAllocationBudget(t *testing.T) {
	eco, err := New(smallOptions(7))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eco.PreDeployment(); err != nil {
		t.Fatal(err)
	}
	d, err := eco.StartDeployment(vfr.ModeHighPerformance, 0.01, workload.WebFrontend())
	if err != nil {
		t.Fatal(err)
	}
	// Warm the scratch state and the healthlog history's first growth
	// steps so the measurement sees the steady state.
	for i := 0; i < 64; i++ {
		if _, err := d.Step(); err != nil {
			t.Fatal(err)
		}
	}
	crashesBefore := d.Summary().Crashes
	avg := testing.AllocsPerRun(300, func() {
		if _, err := d.Step(); err != nil {
			t.Fatal(err)
		}
	})
	if d.Summary().Crashes != crashesBefore {
		t.Fatalf("measured span was not quiet (crashes %d -> %d); pick another seed",
			crashesBefore, d.Summary().Crashes)
	}
	t.Logf("Deployment.Step: %.2f allocs/window (budget %.0f)", avg, stepAllocBudget)
	if avg > stepAllocBudget {
		t.Fatalf("Deployment.Step allocates %.2f/window, budget is %.0f — the hot path regressed",
			avg, stepAllocBudget)
	}
}
