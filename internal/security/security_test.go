package security

import (
	"testing"

	"uniserver/internal/cpu"
	"uniserver/internal/rng"
	"uniserver/internal/stress"
)

func TestRunChannelValidation(t *testing.T) {
	if _, err := RunChannel(ChannelConfig{Windows: 0, OnsetWindowMV: 15}, rng.New(1)); err == nil {
		t.Fatal("zero windows accepted")
	}
	if _, err := RunChannel(ChannelConfig{Windows: 10, OnsetWindowMV: 0}, rng.New(1)); err == nil {
		t.Fatal("zero onset window accepted")
	}
}

func TestChannelLeaksAtDeepEOP(t *testing.T) {
	res, err := RunChannel(DefaultChannelConfig(), rng.New(42))
	if err != nil {
		t.Fatal(err)
	}
	if res.BitsSent != DefaultChannelConfig().Windows {
		t.Fatalf("bits sent = %d", res.BitsSent)
	}
	if !res.Leaking || res.Accuracy < 0.85 {
		t.Fatalf("deep-EOP channel should leak strongly, accuracy = %.3f", res.Accuracy)
	}
}

func TestVoltageFloorClosesChannel(t *testing.T) {
	cfg := VoltageFloor(DefaultChannelConfig(), 0) // clamp to the onset boundary
	res, err := RunChannel(cfg, rng.New(43))
	if err != nil {
		t.Fatal(err)
	}
	if res.Leaking {
		t.Fatalf("voltage floor should close the channel, accuracy = %.3f", res.Accuracy)
	}
	if res.Accuracy > 0.56 {
		t.Fatalf("accuracy %0.3f too far above chance", res.Accuracy)
	}
	// Floor must not deepen a shallow config.
	shallow := ChannelConfig{UndervoltMV: 2, OnsetWindowMV: 15, BaseRate: 6, Windows: 64}
	if got := VoltageFloor(shallow, 5); got.UndervoltMV != 2 {
		t.Fatal("floor deepened a shallow configuration")
	}
	if got := VoltageFloor(shallow, -3); got.UndervoltMV != 0 {
		t.Fatal("negative floor not clamped")
	}
}

func TestNoiseInjectionDegradesChannel(t *testing.T) {
	clean, err := RunChannel(DefaultChannelConfig(), rng.New(44))
	if err != nil {
		t.Fatal(err)
	}
	noisy, err := RunChannel(WithNoiseInjection(DefaultChannelConfig(), 40), rng.New(44))
	if err != nil {
		t.Fatal(err)
	}
	if noisy.Accuracy >= clean.Accuracy {
		t.Fatalf("noise injection did not degrade the channel: %.3f >= %.3f",
			noisy.Accuracy, clean.Accuracy)
	}
	if noisy.Accuracy > 0.75 {
		t.Fatalf("heavily camouflaged channel still decodes at %.3f", noisy.Accuracy)
	}
}

func TestDetectorFlagsVirus(t *testing.T) {
	d := NewDetector(DefaultDetectorConfig())
	virus := stress.HandCodedViruses()[0] // dI/dt virus, intensity ~1
	flagged := false
	for w := 0; w < 5; w++ {
		flagged = d.Observe("evil-vm", virus.DroopIntensity)
	}
	if !flagged {
		t.Fatalf("virus with intensity %v not flagged", virus.DroopIntensity)
	}
	got := d.Flagged()
	if len(got) != 1 || got[0] != "evil-vm" {
		t.Fatalf("Flagged = %v", got)
	}
}

func TestDetectorIgnoresRealWorkloads(t *testing.T) {
	d := NewDetector(DefaultDetectorConfig())
	for w := 0; w < 100; w++ {
		for _, b := range cpu.SPECSuite() {
			if d.Observe(b.Name, b.DroopIntensity) {
				t.Fatalf("real workload %s flagged as virus", b.Name)
			}
		}
	}
	if len(d.Flagged()) != 0 {
		t.Fatalf("flagged: %v", d.Flagged())
	}
}

func TestDetectorDebounce(t *testing.T) {
	d := NewDetector(DetectorConfig{IntensityThreshold: 0.9, ConsecutiveWindows: 3})
	// Two exceedances, then calm: streak resets, no flag.
	d.Observe("vm", 0.95)
	d.Observe("vm", 0.95)
	d.Observe("vm", 0.1)
	if d.Observe("vm", 0.95) {
		t.Fatal("flagged before reaching consecutive threshold")
	}
	d.Observe("vm", 0.95)
	if !d.Observe("vm", 0.95) {
		t.Fatal("not flagged after 3 consecutive exceedances")
	}
}

func TestDetectorDefaultsOnBadConfig(t *testing.T) {
	d := NewDetector(DetectorConfig{})
	if d.cfg.IntensityThreshold != DefaultDetectorConfig().IntensityThreshold {
		t.Fatal("defaults not applied")
	}
	d2 := NewDetector(DetectorConfig{IntensityThreshold: 0.5, ConsecutiveWindows: 0})
	if d2.cfg.ConsecutiveWindows != 1 {
		t.Fatal("zero debounce not clamped")
	}
}

func TestFalsePositiveRateLowForBenign(t *testing.T) {
	fp := FalsePositiveRate(DefaultDetectorConfig(), 0.6, 0.1, 100, 200, rng.New(7))
	if fp > 0.05 {
		t.Fatalf("benign false-positive rate = %.3f, want <= 0.05", fp)
	}
	if got := FalsePositiveRate(DefaultDetectorConfig(), 0.6, 0.1, 0, 0, rng.New(7)); got != 0 {
		t.Fatal("degenerate inputs should return 0")
	}
}

func TestFalsePositiveRateHighForAggressive(t *testing.T) {
	// A workload hovering at the threshold should trip often —
	// confirming the detector actually has teeth.
	fp := FalsePositiveRate(DefaultDetectorConfig(), 0.97, 0.05, 100, 200, rng.New(8))
	if fp < 0.5 {
		t.Fatalf("near-virus workload flagged only %.3f of the time", fp)
	}
}
