// Package security implements the threat analysis the paper commits to
// for servers operating at extended operating points (innovation viii:
// "analyze security threats in servers operating under the new EOP and
// provide low cost countermeasures"), covering the two EOP-specific
// attack classes:
//
//  1. An error-rate side channel: near Vmin, correctable-error counts
//     correlate with co-tenant activity, so an attacker reading its own
//     ECC telemetry (or shared HealthLog counters) can decode a victim
//     VM's activity pattern. The countermeasures are an operating-point
//     floor (back away from the error-onset region) and telemetry noise
//     injection.
//
//  2. A droop (dI/dt) availability attack: a malicious VM executing a
//     voltage-noise virus can push an undervolted host past its crash
//     point. The countermeasure is a virus detector on the per-VM droop
//     intensity estimate, with eviction/point-raising as response.
package security

import (
	"errors"
	"sort"

	"uniserver/internal/rng"
)

// ChannelConfig parameterizes the error-rate side channel experiment.
type ChannelConfig struct {
	// UndervoltMV is how far below the ECC error-onset voltage the
	// host runs (0 = at onset; larger = deeper, leakier).
	UndervoltMV float64
	// OnsetWindowMV is the width of the error-onset region.
	OnsetWindowMV float64
	// BaseRate is the mean correctable-error count per window at the
	// bottom of the onset window under full activity.
	BaseRate float64
	// Windows is the number of observation windows (one transmitted
	// bit per window).
	Windows int
	// NoiseInjection adds Poisson camouflage events with this mean to
	// every reported count (the countermeasure; 0 disables).
	NoiseInjection float64
}

// DefaultChannelConfig returns a deep-EOP configuration where the
// channel is wide open.
func DefaultChannelConfig() ChannelConfig {
	return ChannelConfig{
		UndervoltMV:   12,
		OnsetWindowMV: 15,
		BaseRate:      6,
		Windows:       512,
	}
}

// errorRate returns the mean correctable-error count for one window
// given the victim's activity in [0,1].
func (c ChannelConfig) errorRate(activity float64) float64 {
	depth := c.UndervoltMV / c.OnsetWindowMV
	if depth < 0 {
		depth = 0
	}
	if depth > 1 {
		depth = 1
	}
	return c.BaseRate * depth * activity
}

// ChannelResult reports a side-channel experiment.
type ChannelResult struct {
	BitsSent    int
	BitsCorrect int
	// Accuracy is the attacker's decoding accuracy; 0.5 is chance.
	Accuracy float64
	// Leaking reports whether the accuracy is materially above chance.
	Leaking bool
}

// RunChannel simulates the covert/side channel: the victim encodes a
// random bit per window as high/low activity, errors accrue at the
// activity-dependent rate (plus injected camouflage noise), and the
// attacker decodes with a median threshold over the observed counts.
func RunChannel(cfg ChannelConfig, src *rng.Source) (ChannelResult, error) {
	if cfg.Windows <= 0 {
		return ChannelResult{}, errors.New("security: need positive window count")
	}
	if cfg.OnsetWindowMV <= 0 {
		return ChannelResult{}, errors.New("security: onset window must be positive")
	}
	bits := make([]bool, cfg.Windows)
	counts := make([]float64, cfg.Windows)
	for i := range bits {
		bits[i] = src.Bool()
		activity := 0.1
		if bits[i] {
			activity = 0.95
		}
		n := src.Poisson(cfg.errorRate(activity))
		if cfg.NoiseInjection > 0 {
			n += src.Poisson(cfg.NoiseInjection)
		}
		counts[i] = float64(n)
	}
	// Median-threshold decoder.
	sorted := append([]float64(nil), counts...)
	sort.Float64s(sorted)
	median := sorted[len(sorted)/2]
	res := ChannelResult{BitsSent: cfg.Windows}
	for i, c := range counts {
		decoded := c > median
		if decoded == bits[i] {
			res.BitsCorrect++
		}
	}
	res.Accuracy = float64(res.BitsCorrect) / float64(res.BitsSent)
	res.Leaking = res.Accuracy > 0.65
	return res, nil
}

// VoltageFloor is the first countermeasure: clamp the operating point
// so the host never enters the error-onset region deeper than
// maxDepthMV. It returns the clamped configuration.
func VoltageFloor(cfg ChannelConfig, maxDepthMV float64) ChannelConfig {
	if maxDepthMV < 0 {
		maxDepthMV = 0
	}
	if cfg.UndervoltMV > maxDepthMV {
		cfg.UndervoltMV = maxDepthMV
	}
	return cfg
}

// WithNoiseInjection is the second countermeasure: camouflage events
// in the telemetry stream. The cost is bounded and quantifiable: mean
// extra reported events per window.
func WithNoiseInjection(cfg ChannelConfig, mean float64) ChannelConfig {
	cfg.NoiseInjection = mean
	return cfg
}

// DetectorConfig tunes the droop-virus detector.
type DetectorConfig struct {
	// IntensityThreshold flags VMs whose estimated droop intensity
	// exceeds it; real workloads top out around 0.95 (mcf), so the
	// default sits just above.
	IntensityThreshold float64
	// ConsecutiveWindows is how many consecutive exceedances are
	// required before flagging (debounce).
	ConsecutiveWindows int
}

// DefaultDetectorConfig returns the standard detector tuning.
func DefaultDetectorConfig() DetectorConfig {
	return DetectorConfig{IntensityThreshold: 0.97, ConsecutiveWindows: 3}
}

// Detector flags VMs running droop-virus-like kernels on an
// undervolted host.
type Detector struct {
	cfg    DetectorConfig
	streak map[string]int
	flags  map[string]bool
}

// NewDetector returns a detector.
func NewDetector(cfg DetectorConfig) *Detector {
	if cfg.IntensityThreshold <= 0 {
		cfg = DefaultDetectorConfig()
	}
	if cfg.ConsecutiveWindows <= 0 {
		cfg.ConsecutiveWindows = 1
	}
	return &Detector{cfg: cfg, streak: make(map[string]int), flags: make(map[string]bool)}
}

// Observe ingests one window's droop-intensity estimate for a VM and
// returns true if the VM is (now) flagged.
func (d *Detector) Observe(vm string, intensity float64) bool {
	if intensity > d.cfg.IntensityThreshold {
		d.streak[vm]++
		if d.streak[vm] >= d.cfg.ConsecutiveWindows {
			d.flags[vm] = true
		}
	} else {
		d.streak[vm] = 0
	}
	return d.flags[vm]
}

// Flagged returns the flagged VM names, sorted.
func (d *Detector) Flagged() []string {
	out := make([]string, 0, len(d.flags))
	for vm := range d.flags {
		out = append(out, vm)
	}
	sort.Strings(out)
	return out
}

// FalsePositiveRate estimates, by simulation, how often a benign
// workload with the given mean intensity and jitter gets flagged over
// the given number of windows.
func FalsePositiveRate(cfg DetectorConfig, meanIntensity, jitter float64, windows, trials int, src *rng.Source) float64 {
	if trials <= 0 || windows <= 0 {
		return 0
	}
	flagged := 0
	for t := 0; t < trials; t++ {
		d := NewDetector(cfg)
		hit := false
		for w := 0; w < windows; w++ {
			v := meanIntensity + src.Normal(0, jitter)
			if v < 0 {
				v = 0
			}
			if v > 1 {
				v = 1
			}
			if d.Observe("vm", v) {
				hit = true
				break
			}
		}
		if hit {
			flagged++
		}
	}
	return float64(flagged) / float64(trials)
}
