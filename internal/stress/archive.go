package stress

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"

	"uniserver/internal/cpu"
	"uniserver/internal/rng"
)

// ArchiveEntry is one stored virus: the genome that produced it, the
// objective it was evolved for, and the fitness it achieved on the
// machine it was evolved against.
type ArchiveEntry struct {
	Name      string    `json:"name"`
	Objective Objective `json:"objective"`
	Genome    Genome    `json:"genome"`
	Fitness   float64   `json:"fitness"`
	Machine   string    `json:"machine"`
}

// Archive is the StressLog's persistent virus library: evolving a
// virus costs thousands of sweeps, so campaigns re-use archived
// genomes and only re-evolve when the archive has nothing for the
// target machine/objective (the AUDIT workflow the paper cites also
// archives its generated stress tests).
type Archive struct {
	entries map[string]ArchiveEntry // keyed by Name
}

// NewArchive returns an empty archive.
func NewArchive() *Archive {
	return &Archive{entries: make(map[string]ArchiveEntry)}
}

// Put stores or replaces an entry. Entries must be named.
func (a *Archive) Put(e ArchiveEntry) error {
	if e.Name == "" {
		return errors.New("stress: archive entry needs a name")
	}
	a.entries[e.Name] = e
	return nil
}

// Clone returns a deep copy of the archive. Entries are plain values
// (genomes carry no reference types), so a map copy fully detaches the
// two libraries.
func (a *Archive) Clone() *Archive {
	out := NewArchive()
	for name, e := range a.entries {
		out.entries[name] = e
	}
	return out
}

// CopyFrom replaces a's entries with a copy of src's, reusing a's map
// storage. The arena form of Clone: entries are plain values, so the
// two libraries are fully detached afterwards.
func (a *Archive) CopyFrom(src *Archive) {
	if a.entries == nil {
		a.entries = make(map[string]ArchiveEntry, len(src.entries))
	} else {
		clear(a.entries)
	}
	for name, e := range src.entries {
		a.entries[name] = e
	}
}

// Len returns the number of archived viruses.
func (a *Archive) Len() int { return len(a.entries) }

// Best returns the highest-fitness entry for the machine/objective
// pair, if any.
func (a *Archive) Best(machine string, obj Objective) (ArchiveEntry, bool) {
	var best ArchiveEntry
	found := false
	for _, e := range a.entries {
		if e.Machine != machine || e.Objective != obj {
			continue
		}
		if !found || e.Fitness > best.Fitness {
			best, found = e, true
		}
	}
	return best, found
}

// Entries returns all entries sorted by name.
func (a *Archive) Entries() []ArchiveEntry {
	out := make([]ArchiveEntry, 0, len(a.entries))
	for _, e := range a.entries {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// archiveJSON is the wire format.
type archiveJSON struct {
	Version int            `json:"version"`
	Entries []ArchiveEntry `json:"entries"`
}

const archiveVersion = 1

// Save writes the archive as JSON.
func (a *Archive) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(archiveJSON{Version: archiveVersion, Entries: a.Entries()}); err != nil {
		return fmt.Errorf("stress: saving archive: %w", err)
	}
	return nil
}

// LoadArchive reads an archive written by Save.
func LoadArchive(r io.Reader) (*Archive, error) {
	var in archiveJSON
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("stress: loading archive: %w", err)
	}
	if in.Version != archiveVersion {
		return nil, fmt.Errorf("stress: unsupported archive version %d", in.Version)
	}
	a := NewArchive()
	for _, e := range in.Entries {
		if err := a.Put(e); err != nil {
			return nil, err
		}
	}
	return a, nil
}

// ObtainVirus returns a virus for the machine/objective pair: the best
// archived genome when one exists (expressed without any evolution
// cost), otherwise it evolves a fresh one against the machine and
// archives it for the next campaign.
func ObtainVirus(a *Archive, cfg GAConfig, obj Objective, m *cpu.Machine, core int, src *rng.Source) (cpu.Benchmark, error) {
	if a == nil {
		return cpu.Benchmark{}, errors.New("stress: nil archive")
	}
	if e, ok := a.Best(m.Spec.Model, obj); ok {
		return e.Genome.Express(e.Name), nil
	}
	res, err := Evolve(cfg, obj, m, core, src)
	if err != nil {
		return cpu.Benchmark{}, err
	}
	entry := ArchiveEntry{
		Name:      fmt.Sprintf("%s-%s", m.Spec.Model, obj),
		Objective: obj,
		Genome:    res.Best,
		Fitness:   res.Fitness,
		Machine:   m.Spec.Model,
	}
	if err := a.Put(entry); err != nil {
		return cpu.Benchmark{}, err
	}
	return res.Virus, nil
}
