package stress_test

import (
	"fmt"

	"uniserver/internal/cpu"
	"uniserver/internal/stress"
)

// A genome is an instruction-mix recipe; expressing it yields a
// benchmark profile. Alternating vector bursts with idle slots at the
// PDN-resonant period maximizes the supply droop.
func ExampleGenome_Express() {
	didt := stress.Genome{VecFrac: 0.5, NopFrac: 0.5, BurstPeriod: 16}
	virus := didt.Express("didt-virus")
	fmt.Printf("droop intensity %.2f, activity %.2f\n", virus.DroopIntensity, virus.Activity)

	calm := stress.Genome{ALUFrac: 1, BurstPeriod: 16}.Express("calm")
	fmt.Printf("pure-ALU droop intensity %.2f\n", calm.DroopIntensity)
	// Output:
	// droop intensity 1.00, activity 0.50
	// pure-ALU droop intensity 0.00
}

// The hand-coded dI/dt virus out-stresses every real workload, which
// is what makes virus-derived margins safe.
func ExampleHandCodedViruses() {
	virus := stress.HandCodedViruses()[0]
	worst := 0.0
	for _, b := range cpu.SPECSuite() {
		if b.DroopIntensity > worst {
			worst = b.DroopIntensity
		}
	}
	fmt.Printf("virus %.2f > worst real workload %.2f: %v\n",
		virus.DroopIntensity, worst, virus.DroopIntensity > worst)
	// Output:
	// virus 1.00 > worst real workload 0.95: true
}
