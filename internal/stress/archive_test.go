package stress

import (
	"bytes"
	"strings"
	"testing"

	"uniserver/internal/cpu"
	"uniserver/internal/rng"
)

func sampleEntry(name, machine string, fitness float64) ArchiveEntry {
	return ArchiveEntry{
		Name:      name,
		Objective: MaxVoltageNoise,
		Genome:    Genome{VecFrac: 0.5, NopFrac: 0.5, BurstPeriod: 16},
		Fitness:   fitness,
		Machine:   machine,
	}
}

func TestArchivePutValidation(t *testing.T) {
	a := NewArchive()
	if err := a.Put(ArchiveEntry{}); err == nil {
		t.Fatal("unnamed entry accepted")
	}
	if err := a.Put(sampleEntry("v1", "m", 1)); err != nil {
		t.Fatal(err)
	}
	if a.Len() != 1 {
		t.Fatalf("len = %d", a.Len())
	}
	// Replacement, not duplication.
	if err := a.Put(sampleEntry("v1", "m", 2)); err != nil {
		t.Fatal(err)
	}
	if a.Len() != 1 {
		t.Fatal("replacement duplicated")
	}
}

func TestArchiveBest(t *testing.T) {
	a := NewArchive()
	for _, e := range []ArchiveEntry{
		sampleEntry("v1", "i5-4200U", 750),
		sampleEntry("v2", "i5-4200U", 760),
		sampleEntry("v3", "i7-3970X", 999),
	} {
		if err := a.Put(e); err != nil {
			t.Fatal(err)
		}
	}
	best, ok := a.Best("i5-4200U", MaxVoltageNoise)
	if !ok || best.Name != "v2" {
		t.Fatalf("Best = %+v, %v", best, ok)
	}
	if _, ok := a.Best("i5-4200U", MaxPower); ok {
		t.Fatal("wrong objective matched")
	}
	if _, ok := a.Best("unknown", MaxVoltageNoise); ok {
		t.Fatal("unknown machine matched")
	}
}

func TestArchiveSaveLoadRoundTrip(t *testing.T) {
	a := NewArchive()
	if err := a.Put(sampleEntry("v1", "i5-4200U", 750)); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := a.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadArchive(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 1 {
		t.Fatalf("len = %d", got.Len())
	}
	e := got.Entries()[0]
	if e.Name != "v1" || e.Genome.VecFrac != 0.5 || e.Fitness != 750 {
		t.Fatalf("entry = %+v", e)
	}
}

func TestLoadArchiveRejectsGarbage(t *testing.T) {
	if _, err := LoadArchive(strings.NewReader("{")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := LoadArchive(strings.NewReader(`{"version":7}`)); err == nil {
		t.Fatal("future version accepted")
	}
}

func TestObtainVirusEvolvesOnceThenReuses(t *testing.T) {
	a := NewArchive()
	m := cpu.NewMachine(cpu.PartI5_4200U(), 5)
	cfg := GAConfig{PopSize: 8, Generations: 3, TournamentK: 2, MutSigma: 0.1, Elite: 1}

	v1, err := ObtainVirus(a, cfg, MaxVoltageNoise, m, 0, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != 1 {
		t.Fatal("evolved virus not archived")
	}
	// Second call hits the archive: identical virus, no new entries,
	// regardless of the RNG handed in.
	v2, err := ObtainVirus(a, cfg, MaxVoltageNoise, m, 0, rng.New(999))
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != 1 {
		t.Fatal("archive grew on reuse")
	}
	if v1.DroopIntensity != v2.DroopIntensity || v1.CacheStress != v2.CacheStress {
		t.Fatal("archived virus differs from evolved one")
	}
	// A different objective evolves a second entry.
	if _, err := ObtainVirus(a, cfg, MaxPower, m, 0, rng.New(2)); err != nil {
		t.Fatal(err)
	}
	if a.Len() != 2 {
		t.Fatalf("len = %d", a.Len())
	}
	if _, err := ObtainVirus(nil, cfg, MaxPower, m, 0, rng.New(3)); err == nil {
		t.Fatal("nil archive accepted")
	}
}
