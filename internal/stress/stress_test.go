package stress

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"uniserver/internal/cpu"
	"uniserver/internal/rng"
)

func TestNormalizeSumsToOne(t *testing.T) {
	err := quick.Check(func(v, a, m, b, n float64, p int) bool {
		g := Genome{v, a, m, b, n, p}.Normalize()
		sum := g.VecFrac + g.ALUFrac + g.MemFrac + g.BranchFrac + g.NopFrac
		if math.Abs(sum-1) > 1e-9 {
			return false
		}
		if g.VecFrac < 0 || g.ALUFrac < 0 || g.MemFrac < 0 || g.BranchFrac < 0 || g.NopFrac < 0 {
			return false
		}
		return g.BurstPeriod >= 1 && g.BurstPeriod <= 256
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestNormalizeZeroGenome(t *testing.T) {
	g := Genome{}.Normalize()
	if g.NopFrac != 1 {
		t.Fatalf("zero genome should normalize to pure nops: %+v", g)
	}
}

func TestExpressBounds(t *testing.T) {
	err := quick.Check(func(v, a, m, b, n float64, p int) bool {
		bench := Genome{v, a, m, b, n, p}.Express("x")
		return bench.DroopIntensity >= 0 && bench.DroopIntensity <= 1 &&
			bench.CacheStress >= 0 && bench.CacheStress <= 1 &&
			bench.Activity > 0 && bench.Activity <= 1
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestResonantVirusBeatsOffResonance(t *testing.T) {
	onRes := Genome{VecFrac: 0.5, NopFrac: 0.5, BurstPeriod: resonantPeriod}.Express("on")
	offRes := Genome{VecFrac: 0.5, NopFrac: 0.5, BurstPeriod: 200}.Express("off")
	if onRes.DroopIntensity <= offRes.DroopIntensity {
		t.Fatalf("resonant virus (%v) should out-droop off-resonant (%v)",
			onRes.DroopIntensity, offRes.DroopIntensity)
	}
}

func TestDIDTVirusExceedsRealWorkloads(t *testing.T) {
	virus := HandCodedViruses()[0]
	for _, b := range cpu.SPECSuite() {
		if virus.DroopIntensity <= b.DroopIntensity {
			t.Fatalf("virus intensity %v does not exceed %s (%v)",
				virus.DroopIntensity, b.Name, b.DroopIntensity)
		}
	}
}

func TestCacheVirusStressesCaches(t *testing.T) {
	cacheVirus := HandCodedViruses()[1]
	if cacheVirus.CacheStress < 0.7 {
		t.Fatalf("cache virus stress = %v, want high", cacheVirus.CacheStress)
	}
}

func TestObjectiveString(t *testing.T) {
	if MaxVoltageNoise.String() != "max-voltage-noise" ||
		MaxCacheStress.String() != "max-cache-stress" ||
		MaxPower.String() != "max-power" {
		t.Fatal("objective names wrong")
	}
	if !strings.HasPrefix(Objective(9).String(), "Objective(") {
		t.Fatal("unknown objective fallback wrong")
	}
}

func TestGAConfigValidation(t *testing.T) {
	bad := []GAConfig{
		{PopSize: 1, Generations: 1, TournamentK: 1},
		{PopSize: 10, Generations: 0, TournamentK: 1},
		{PopSize: 10, Generations: 1, TournamentK: 0},
		{PopSize: 10, Generations: 1, TournamentK: 1, Elite: 10},
	}
	m := cpu.NewMachine(cpu.PartI5_4200U(), 1)
	for i, cfg := range bad {
		if _, err := Evolve(cfg, MaxPower, m, 0, rng.New(1)); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
	if _, err := Evolve(DefaultGAConfig(), MaxPower, m, 99, rng.New(1)); err == nil {
		t.Error("out-of-range core accepted")
	}
}

func TestEvolveDeterministic(t *testing.T) {
	cfg := GAConfig{PopSize: 8, Generations: 4, TournamentK: 2, MutSigma: 0.1, Elite: 1}
	m1 := cpu.NewMachine(cpu.PartI5_4200U(), 7)
	m2 := cpu.NewMachine(cpu.PartI5_4200U(), 7)
	r1, err := Evolve(cfg, MaxPower, m1, 0, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Evolve(cfg, MaxPower, m2, 0, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if r1.Best != r2.Best || r1.Fitness != r2.Fitness {
		t.Fatal("evolution not deterministic")
	}
}

func TestEvolveHistoryMonotone(t *testing.T) {
	m := cpu.NewMachine(cpu.PartI5_4200U(), 11)
	res, err := Evolve(DefaultGAConfig(), MaxVoltageNoise, m, 0, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.History) != DefaultGAConfig().Generations {
		t.Fatalf("history length = %d", len(res.History))
	}
	for i := 1; i < len(res.History); i++ {
		if res.History[i] < res.History[i-1] {
			t.Fatalf("best fitness regressed at generation %d", i)
		}
	}
}

func TestEvolveMaxPowerFindsHighActivity(t *testing.T) {
	m := cpu.NewMachine(cpu.PartI5_4200U(), 13)
	res, err := Evolve(DefaultGAConfig(), MaxPower, m, 0, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	// The optimum is a pure-vector kernel with activity ~1.
	if res.Virus.Activity < 0.95 {
		t.Fatalf("power virus activity = %v, want ~1", res.Virus.Activity)
	}
}

// TestEvolvedVoltageVirusRevealsSafeMargins verifies the Section 3.B
// claim chain: the GA virus crashes at a voltage at least as high as
// any real workload (it is the pathogenic worst case), so margins
// derived from it are safe for real workloads, while still being far
// below the manufacturer guardband.
func TestEvolvedVoltageVirusRevealsSafeMargins(t *testing.T) {
	m := cpu.NewMachine(cpu.PartI5_4200U(), 17)
	res, err := Evolve(DefaultGAConfig(), MaxVoltageNoise, m, 0, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	if res.Virus.DroopIntensity < 0.9 {
		t.Fatalf("voltage virus intensity = %v, want near max", res.Virus.DroopIntensity)
	}
	// Compare crash voltages: virus must crash at >= voltage of every
	// real benchmark (averaged over sweeps to damp run noise).
	virusCrash := 0
	for r := 0; r < 5; r++ {
		virusCrash += cpu.WorstCrash(m.UndervoltSweep(0, res.Virus, 1)).CrashVoltageMV
	}
	for _, b := range cpu.SPECSuite() {
		benchCrash := 0
		for r := 0; r < 5; r++ {
			benchCrash += cpu.WorstCrash(m.UndervoltSweep(0, b, 1)).CrashVoltageMV
		}
		if virusCrash < benchCrash {
			t.Errorf("virus crash (%d) below real workload %s (%d): margins would be unsafe",
				virusCrash/5, b.Name, benchCrash/5)
		}
	}
	// And the virus-revealed margin still beats the guardbanded rating.
	guard := m.Chip.GuardbandedVminMV(m.Spec.Nominal.FreqMHz)
	if float64(virusCrash/5) >= guard {
		t.Errorf("virus crash %d exceeds guardbanded Vmin %.0f: no recoverable margin",
			virusCrash/5, guard)
	}
}

func TestEvolveCacheStressObjective(t *testing.T) {
	m := cpu.NewMachine(cpu.PartI5_4200U(), 19)
	res, err := Evolve(GAConfig{PopSize: 16, Generations: 10, TournamentK: 3, MutSigma: 0.15, Elite: 2},
		MaxCacheStress, m, 0, rng.New(13))
	if err != nil {
		t.Fatal(err)
	}
	if res.Virus.CacheStress < 0.6 {
		t.Fatalf("cache virus stress = %v, want high", res.Virus.CacheStress)
	}
}

func TestDefaultSuite(t *testing.T) {
	viruses := HandCodedViruses()
	s := DefaultSuite(viruses...)
	if len(s.Benchmarks) != len(cpu.SPECSuite())+len(viruses) {
		t.Fatalf("suite size = %d", len(s.Benchmarks))
	}
	if s.Name == "" {
		t.Fatal("suite must be named")
	}
}

func BenchmarkEvolveVoltageNoise(b *testing.B) {
	cfg := GAConfig{PopSize: 8, Generations: 5, TournamentK: 2, MutSigma: 0.1, Elite: 1}
	m := cpu.NewMachine(cpu.PartI5_4200U(), 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Evolve(cfg, MaxVoltageNoise, m, 0, rng.New(uint64(i))); err != nil {
			b.Fatal(err)
		}
	}
}
