// Package stress implements the stress-test development layer of
// Section 3.B: diagnostic "viruses" that cause maximum voltage noise,
// power consumption and error rates, generated with a genetic
// algorithm (the paper cites AUDIT-style automatic stress-test
// generation). The viruses represent a pathogenic worst case that
// real-life workloads are unlikely to reach, so the margins they
// reveal are safe initial Extended Operating Points, while still being
// far less pessimistic than the manufacturer guardbands.
//
// A virus genome is an instruction-mix recipe: the fractions of
// vector-burst, scalar ALU, memory, branch and idle (nop) slots in the
// kernel's inner loop, plus the burst period that positions the
// current steps relative to the power-delivery network's resonance.
// Expressing a genome yields a cpu.Benchmark whose droop intensity,
// cache stress and activity derive mechanistically from the mix.
package stress

import (
	"fmt"
	"math"

	"uniserver/internal/cpu"
	"uniserver/internal/rng"
)

// Genome is an instruction-mix recipe for a stress kernel.
type Genome struct {
	// Instruction-class weights (relative, normalized on expression).
	VecFrac, ALUFrac, MemFrac, BranchFrac, NopFrac float64
	// BurstPeriod is the loop length in cycles between vector bursts;
	// current steps at the PDN resonant period excite the largest
	// droops.
	BurstPeriod int
}

// resonantPeriod is the burst period (in cycles) matching the modeled
// power-delivery network's first resonance.
const resonantPeriod = 16

// Normalize returns the genome with non-negative weights summing to 1
// and the burst period clamped to [1, 256]. A genome with all-zero
// weights normalizes to pure nops.
func (g Genome) Normalize() Genome {
	clamp := func(v float64) float64 {
		if v < 0 || math.IsNaN(v) {
			return 0
		}
		// Cap individual weights so that pathological inputs cannot
		// overflow the normalization sum.
		if v > 1e9 {
			return 1e9
		}
		return v
	}
	g.VecFrac, g.ALUFrac, g.MemFrac = clamp(g.VecFrac), clamp(g.ALUFrac), clamp(g.MemFrac)
	g.BranchFrac, g.NopFrac = clamp(g.BranchFrac), clamp(g.NopFrac)
	sum := g.VecFrac + g.ALUFrac + g.MemFrac + g.BranchFrac + g.NopFrac
	if sum == 0 {
		g.NopFrac = 1
		sum = 1
	}
	g.VecFrac /= sum
	g.ALUFrac /= sum
	g.MemFrac /= sum
	g.BranchFrac /= sum
	g.NopFrac /= sum
	if g.BurstPeriod < 1 {
		g.BurstPeriod = 1
	}
	if g.BurstPeriod > 256 {
		g.BurstPeriod = 256
	}
	return g
}

// resonance returns the droop amplification factor for the burst
// period: a Gaussian peak at the PDN resonant period.
func resonance(period int) float64 {
	d := float64(period - resonantPeriod)
	return math.Exp(-d * d / (2 * 36))
}

// Express compiles the genome into a benchmark profile. The droop
// intensity is maximized by alternating high-current vector bursts
// with idle slots (largest di/dt) at the resonant period; cache stress
// follows the memory fraction; activity follows the switching-heavy
// fractions.
func (g Genome) Express(name string) cpu.Benchmark {
	n := g.Normalize()
	didt := 4 * n.VecFrac * n.NopFrac // peaks at vec=nop=0.5
	intensity := 0.68*didt + 0.12*n.MemFrac + 0.32*didt*resonance(n.BurstPeriod)
	if intensity > 1 {
		intensity = 1
	}
	cacheStress := n.MemFrac*0.9 + 0.1*n.BranchFrac
	if cacheStress > 1 {
		cacheStress = 1
	}
	activity := n.VecFrac*1.0 + n.ALUFrac*0.7 + n.MemFrac*0.45 + n.BranchFrac*0.5
	if activity > 1 {
		activity = 1
	}
	if activity <= 0 {
		activity = 0.01
	}
	return cpu.Benchmark{
		Name:           name,
		DroopIntensity: intensity,
		CacheStress:    cacheStress,
		Activity:       activity,
	}
}

// Objective selects what the genetic algorithm maximizes.
type Objective int

const (
	// MaxVoltageNoise evolves a dI/dt virus: the kernel that crashes
	// the part at the highest supply voltage.
	MaxVoltageNoise Objective = iota
	// MaxCacheStress evolves a memory-array virus: the kernel that
	// provokes the most correctable cache ECC events near Vmin.
	MaxCacheStress
	// MaxPower evolves a thermal/power virus: the kernel with the
	// highest switching activity.
	MaxPower
)

// String implements fmt.Stringer.
func (o Objective) String() string {
	switch o {
	case MaxVoltageNoise:
		return "max-voltage-noise"
	case MaxCacheStress:
		return "max-cache-stress"
	case MaxPower:
		return "max-power"
	default:
		return fmt.Sprintf("Objective(%d)", int(o))
	}
}

// GAConfig tunes the genetic algorithm.
type GAConfig struct {
	PopSize     int
	Generations int
	TournamentK int
	// MutSigma is the Gaussian mutation step on weights.
	MutSigma float64
	// Elite is the number of top genomes copied unchanged.
	Elite int
}

// DefaultGAConfig returns a configuration that converges in a few
// hundred evaluations.
func DefaultGAConfig() GAConfig {
	return GAConfig{PopSize: 32, Generations: 25, TournamentK: 3, MutSigma: 0.12, Elite: 2}
}

func (c GAConfig) validate() error {
	if c.PopSize < 2 || c.Generations < 1 || c.TournamentK < 1 || c.Elite < 0 || c.Elite >= c.PopSize {
		return fmt.Errorf("stress: invalid GA config %+v", c)
	}
	return nil
}

// EvolveResult reports the outcome of a virus-generation run.
type EvolveResult struct {
	Best    Genome
	Virus   cpu.Benchmark
	Fitness float64
	// History is the best fitness per generation (monotone
	// non-decreasing thanks to elitism).
	History []float64
}

// fitness scores a genome on the target machine. Higher is more
// stressful.
func fitness(obj Objective, g Genome, m *cpu.Machine, core int) float64 {
	b := g.Express("candidate")
	switch obj {
	case MaxVoltageNoise:
		// The most stressful virus crashes at the highest voltage
		// (leaves the least undervolt headroom). Average a few sweeps
		// so run-to-run droop noise does not dominate selection.
		total := 0
		const sweeps = 3
		for i := 0; i < sweeps; i++ {
			total += cpu.WorstCrash(m.UndervoltSweep(core, b, 1)).CrashVoltageMV
		}
		return float64(total) / sweeps
	case MaxCacheStress:
		total := 0
		for _, r := range m.UndervoltSweep(core, b, 1) {
			total += r.ECCErrors
		}
		// Tie-break by cache stress so evolution has gradient even on
		// parts that hide ECC counts.
		return float64(total) + b.CacheStress
	case MaxPower:
		return b.Activity
	default:
		panic("stress: unknown objective")
	}
}

// mutate perturbs one genome.
func mutate(g Genome, sigma float64, src *rng.Source) Genome {
	g.VecFrac += src.Normal(0, sigma)
	g.ALUFrac += src.Normal(0, sigma)
	g.MemFrac += src.Normal(0, sigma)
	g.BranchFrac += src.Normal(0, sigma)
	g.NopFrac += src.Normal(0, sigma)
	if src.Bernoulli(0.3) {
		g.BurstPeriod += src.Intn(9) - 4
	}
	return g.Normalize()
}

// crossover blends two genomes uniformly.
func crossover(a, b Genome, src *rng.Source) Genome {
	pick := func(x, y float64) float64 {
		if src.Bool() {
			return x
		}
		return y
	}
	child := Genome{
		VecFrac:    pick(a.VecFrac, b.VecFrac),
		ALUFrac:    pick(a.ALUFrac, b.ALUFrac),
		MemFrac:    pick(a.MemFrac, b.MemFrac),
		BranchFrac: pick(a.BranchFrac, b.BranchFrac),
		NopFrac:    pick(a.NopFrac, b.NopFrac),
	}
	if src.Bool() {
		child.BurstPeriod = a.BurstPeriod
	} else {
		child.BurstPeriod = b.BurstPeriod
	}
	return child.Normalize()
}

// randomGenome samples a fresh genome.
func randomGenome(src *rng.Source) Genome {
	return Genome{
		VecFrac:     src.Float64(),
		ALUFrac:     src.Float64(),
		MemFrac:     src.Float64(),
		BranchFrac:  src.Float64(),
		NopFrac:     src.Float64(),
		BurstPeriod: 1 + src.Intn(64),
	}.Normalize()
}

// Evolve runs the genetic algorithm against one core of the target
// machine and returns the best virus found.
func Evolve(cfg GAConfig, obj Objective, m *cpu.Machine, core int, src *rng.Source) (EvolveResult, error) {
	if err := cfg.validate(); err != nil {
		return EvolveResult{}, err
	}
	if core < 0 || core >= m.Spec.Cores {
		return EvolveResult{}, fmt.Errorf("stress: core %d out of range", core)
	}

	pop := make([]scored, cfg.PopSize)
	for i := range pop {
		g := randomGenome(src)
		if i == 0 {
			// Seed the population with the hand-coded dI/dt kernel so
			// evolution starts from known stress patterns (the AUDIT
			// approach seeds from archived viruses too).
			g = Genome{VecFrac: 0.5, NopFrac: 0.5, BurstPeriod: resonantPeriod}
		}
		pop[i] = scored{g, fitness(obj, g, m, core)}
	}

	best := pop[0]
	for _, s := range pop[1:] {
		if s.f > best.f {
			best = s
		}
	}

	tournament := func() scored {
		w := pop[src.Intn(len(pop))]
		for i := 1; i < cfg.TournamentK; i++ {
			c := pop[src.Intn(len(pop))]
			if c.f > w.f {
				w = c
			}
		}
		return w
	}

	var history []float64
	for gen := 0; gen < cfg.Generations; gen++ {
		next := make([]scored, 0, cfg.PopSize)
		// Elitism: keep the current best genomes.
		sortByFitness(pop)
		next = append(next, pop[:cfg.Elite]...)
		for len(next) < cfg.PopSize {
			child := crossover(tournament().g, tournament().g, src)
			child = mutate(child, cfg.MutSigma, src)
			next = append(next, scored{child, fitness(obj, child, m, core)})
		}
		pop = next
		for _, s := range pop {
			if s.f > best.f {
				best = s
			}
		}
		history = append(history, best.f)
	}

	return EvolveResult{
		Best:    best.g,
		Virus:   best.g.Express(fmt.Sprintf("virus-%s", obj)),
		Fitness: best.f,
		History: history,
	}, nil
}

// scored pairs a genome with its evaluated fitness.
type scored struct {
	g Genome
	f float64
}

// sortByFitness sorts descending by fitness (insertion sort; the
// population is small).
func sortByFitness(pop []scored) {
	for i := 1; i < len(pop); i++ {
		for j := i; j > 0 && pop[j].f > pop[j-1].f; j-- {
			pop[j], pop[j-1] = pop[j-1], pop[j]
		}
	}
}

// Suite is the StressLog's workload suite: "different benchmarks and
// kernels that either represent real-life applications or are
// hand-coded to stress specific components of the system".
type Suite struct {
	Name       string
	Benchmarks []cpu.Benchmark
}

// DefaultSuite combines the SPEC-like real workloads with the given
// generated viruses.
func DefaultSuite(viruses ...cpu.Benchmark) Suite {
	s := Suite{Name: "stresslog-default", Benchmarks: cpu.SPECSuite()}
	s.Benchmarks = append(s.Benchmarks, viruses...)
	return s
}

// HandCodedViruses returns fixed stress kernels for deployments that
// skip GA generation: a dI/dt resonance virus and a cache thrasher.
func HandCodedViruses() []cpu.Benchmark {
	didt := Genome{VecFrac: 0.5, NopFrac: 0.5, BurstPeriod: resonantPeriod}.Express("virus-didt")
	cacheThrash := Genome{MemFrac: 0.85, BranchFrac: 0.15, BurstPeriod: 8}.Express("virus-cache")
	return []cpu.Benchmark{didt, cacheThrash}
}
