package scenario

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

// hookCampaign is the tiny grid the hook tests share: two scenarios,
// two seeds, four cells, small enough that the full grid runs in well
// under a second.
func hookCampaign() Campaign {
	base := Baseline().Scale(2, 6)
	churn := ModeChurn().Scale(2, 6)
	return Campaign{
		Scenarios: []Scenario{base, churn},
		Seeds:     []uint64{11, 12},
		Parallel:  1,
	}
}

// TestCampaignCancellationAtCellBoundaries: canceling the campaign
// context after the first cell completes must leave that cell whole
// (byte-identical to the uninterrupted run), mark every unstarted cell
// CellCanceled, and surface context.Canceled from RunCampaign.
func TestCampaignCancellationAtCellBoundaries(t *testing.T) {
	full, err := RunCampaign(hookCampaign())
	if err != nil {
		t.Fatalf("uninterrupted campaign: %v", err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	camp := hookCampaign()
	camp.Context = ctx
	var cells atomic.Int64
	camp.OnCell = func(gi int, res Result) {
		if cells.Add(1) == 1 {
			cancel() // hard stop after the first cell persists
		}
	}
	rep, err := RunCampaign(camp)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted campaign error = %v, want context.Canceled", err)
	}
	if rep.CanceledCells != 3 {
		t.Fatalf("CanceledCells = %d, want 3 (Parallel=1, canceled after cell 0)", rep.CanceledCells)
	}
	if got, want := rep.Results[0].Fingerprint, full.Results[0].Fingerprint; got != want {
		t.Errorf("interrupted cell 0 fingerprint diverged from the uninterrupted run")
	}
	for gi, res := range rep.Results[1:] {
		if res.Err != CellCanceled {
			t.Errorf("cell %d: Err = %q, want %q", gi+1, res.Err, CellCanceled)
		}
	}
}

// TestCampaignLookupServesCells: a Lookup hook fed from a prior run's
// results must serve every cell (marked Cached) without executing,
// and reproduce the campaign fingerprint byte for byte — the property
// the persistent result store's resume path rests on.
func TestCampaignLookupServesCells(t *testing.T) {
	full, err := RunCampaign(hookCampaign())
	if err != nil {
		t.Fatalf("uninterrupted campaign: %v", err)
	}
	type key struct {
		name string
		seed uint64
	}
	stored := map[key]Result{}
	for _, res := range full.Results {
		stored[key{res.Scenario, res.Seed}] = res
	}

	camp := hookCampaign()
	var executed atomic.Int64
	camp.Lookup = func(s Scenario, seed uint64) (Result, bool) {
		res, ok := stored[key{s.Name, seed}]
		return res, ok
	}
	camp.OnCell = func(gi int, res Result) {
		if !res.Cached {
			executed.Add(1)
		}
	}
	rep, err := RunCampaign(camp)
	if err != nil {
		t.Fatalf("lookup-served campaign: %v", err)
	}
	if executed.Load() != 0 {
		t.Errorf("%d cells executed despite a full Lookup", executed.Load())
	}
	if rep.CachedCells != len(full.Results) {
		t.Errorf("CachedCells = %d, want %d", rep.CachedCells, len(full.Results))
	}
	if rep.FingerprintSHA256 != full.FingerprintSHA256 {
		t.Errorf("lookup-served campaign fingerprint diverged:\n got %s\nwant %s",
			rep.FingerprintSHA256, full.FingerprintSHA256)
	}
}

// TestCampaignGateBoundsConcurrency: the Gate hook must be able to
// impose a pool narrower than Parallel — the mechanism a long-running
// service uses to share one bounded pool across submissions.
func TestCampaignGateBoundsConcurrency(t *testing.T) {
	camp := hookCampaign()
	camp.Parallel = 4 // four workers contending for a one-slot gate
	sem := make(chan struct{}, 1)
	var inFlight, maxInFlight int64
	var mu sync.Mutex
	camp.Gate = func(run func()) {
		sem <- struct{}{}
		defer func() { <-sem }()
		mu.Lock()
		inFlight++
		if inFlight > maxInFlight {
			maxInFlight = inFlight
		}
		mu.Unlock()
		run()
		mu.Lock()
		inFlight--
		mu.Unlock()
	}
	rep, err := RunCampaign(camp)
	if err != nil {
		t.Fatalf("gated campaign: %v", err)
	}
	if maxInFlight != 1 {
		t.Errorf("gate leaked: %d cells in flight at once, want 1", maxInFlight)
	}
	full, err := RunCampaign(hookCampaign())
	if err != nil {
		t.Fatalf("reference campaign: %v", err)
	}
	if rep.FingerprintSHA256 != full.FingerprintSHA256 {
		t.Errorf("gated campaign fingerprint diverged from the ungated run")
	}
}
