package scenario_test

import (
	"fmt"
	"log"

	"uniserver/internal/scenario"
)

// ExampleRunScenario picks a bundled preset, scales it down, and runs
// it at two worker counts: the scenario layer inherits the fleet
// engine's determinism, so the fingerprints match byte for byte.
func ExampleRunScenario() {
	preset, err := scenario.ByName("droop-attack")
	if err != nil {
		log.Fatal(err)
	}
	s := preset.Scale(2, 8) // 2 nodes, 8 windows: example-sized

	seq, err := scenario.RunScenario(s, 7, 1)
	if err != nil {
		log.Fatal(err)
	}
	par, err := scenario.RunScenario(s, 7, 4)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("scenario: %s (%d nodes, %d windows)\n", s.Name, s.Nodes, s.Windows)
	fmt.Printf("fingerprints identical across worker counts: %v\n",
		seq.Fingerprint == par.Fingerprint)
	// Output:
	// scenario: droop-attack (2 nodes, 8 windows)
	// fingerprints identical across worker counts: true
}

// ExampleRunCampaign sweeps a scenario×seed grid in parallel and
// reads the merged report: cells land in grid order — scenario-major,
// seed-minor — whatever order they finish in.
func ExampleRunCampaign() {
	rep, err := scenario.RunCampaign(scenario.Campaign{
		Scenarios: []scenario.Scenario{
			scenario.Baseline().Scale(2, 6),
			scenario.ModeChurn().Scale(2, 6),
		},
		Seeds:    []uint64{1, 2},
		Parallel: 4,
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, res := range rep.Results {
		fmt.Printf("%s seed=%d scheduled=%d\n", res.Scenario, res.Seed, res.Summary.Scheduled)
	}
	fmt.Printf("scenarios aggregated: %d\n", len(rep.Scenarios))
	// Output:
	// baseline seed=1 scheduled=1
	// baseline seed=2 scheduled=4
	// mode-churn seed=1 scheduled=1
	// mode-churn seed=2 scheduled=4
	// scenarios aggregated: 2
}
