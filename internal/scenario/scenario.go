// Package scenario is the declarative campaign layer over the
// concurrent fleet runtime: a Scenario names one reproducible fleet
// experiment — silicon-bin mix, ambient temperature model, VM arrival
// pattern, scheduled mode switches, droop-attack injections — and a
// campaign fans a scenario×seed grid out across fleet.Run invocations
// in parallel, merging the per-run Summary fingerprints and
// comparative metrics into a machine-readable Report.
//
// Scenarios are data, not code: every field is a plain value, and the
// compiler (FleetConfig) lowers them onto the fleet engine's pure
// per-node and per-window hooks. The determinism contract therefore
// carries over unchanged — the same (scenario, seed) pair produces a
// byte-identical fleet fingerprint at any worker count and any
// campaign parallelism, which is what lets independent runs be
// compared against each other at all.
package scenario

import (
	"fmt"
	"math"
	"time"

	"uniserver/internal/core"
	"uniserver/internal/cpu"
	"uniserver/internal/fleet"
	"uniserver/internal/rng"
	"uniserver/internal/vfr"
	"uniserver/internal/workload"
)

// Scenario declaratively describes one fleet experiment. The zero
// value of every optional field means "the baseline behaviour", so a
// Scenario is exactly the diff between the experiment and the plain
// homogeneous fleet.
type Scenario struct {
	Name        string
	Description string

	// Nodes, Windows and VMs size the experiment. VMs <= 0 means the
	// fleet default (3 per node). When Lifetime is enabled, Windows is
	// the per-epoch window count; the run simulates
	// Windows × Lifetime.Epochs windows in total.
	Nodes   int
	Windows int
	VMs     int

	// Mode and RiskTarget are the fleet-wide initial operating point.
	Mode       vfr.Mode
	RiskTarget float64

	// Bins assigns silicon bins round-robin across nodes by part
	// model name (see PartNames). Empty means a homogeneous fleet of
	// the default part.
	Bins []string

	// Ambient is the environment model (seasonal base, diurnal swing,
	// heatwave). The zero value is a constant air-conditioned room.
	Ambient AmbientModel

	// Arrival shapes the VM arrival pattern. The zero value is the
	// steady exponential stream.
	Arrival ArrivalModel

	// ModeSwitches are scheduled mid-run operating-mode changes.
	ModeSwitches []ModeSwitch

	// Attacks are droop-virus injections: a malicious guest profile
	// replaces the node's workload for a span of windows.
	Attacks []Attack

	// Lifetime stretches the scenario across aging epochs separated by
	// fast-forward gaps, with a scheduled re-characterization cadence.
	// The zero value is a plain single-epoch run.
	Lifetime LifetimeModel

	// DriftMarginFrac, when positive, arms drift-gated
	// re-characterization (fleet.DriftPolicy): scheduled cadence
	// campaigns run only when the predicted margin drift since the last
	// campaign exceeds this fraction of the advised headroom. Requires
	// an enabled Lifetime — the cadence it gates only ticks across
	// gaps. Zero disables (plain cadence).
	DriftMarginFrac float64

	// ECCLoop arms the per-node correctable-ECC-feedback closed-loop
	// undervolting controller (fleet.ECCPolicy); ECCThreshold is the
	// per-window correctable-error count it tolerates before backing
	// off (0 = back off on any error).
	ECCLoop      bool
	ECCThreshold int

	// WeakCellsPerDay, when positive, grows each node's DRAM weak-cell
	// population across lifetime gaps (expected newly-weak cells per
	// DIMM per day — AVATAR's non-static population). Requires an
	// enabled Lifetime: growth only advances across gaps.
	WeakCellsPerDay float64

	// Shards partitions the fleet's node range into sequentially
	// executed batches (fleet.Config.Shards). Shard count never changes
	// results — it bounds the engine's unfolded per-node backlog — so
	// it is an execution knob a scenario may pin for population-scale
	// runs. <= 0 means unsharded.
	Shards int

	// Archetypes switches the fleet to archetype-clone
	// characterization (fleet.Config.Archetypes): nodes sharing a
	// silicon/DRAM bin characterize once per bin and clone, so
	// characterization cost is O(bins) instead of O(nodes). An
	// archetype scenario is deliberately a different experiment than a
	// per-node one (the bin seed drives the silicon lottery), so
	// flipping this field changes fingerprints.
	Archetypes bool
}

// LifetimeModel is the scenario-level declaration of the lifetime
// engine: how many windowed epochs, how long the unsimulated gaps
// between them are, how hard the machine works across them, how often
// the StressLog re-characterizes, and which season each epoch lands
// in.
type LifetimeModel struct {
	// Epochs is the number of windowed epochs; <= 1 disables the
	// lifetime axis.
	Epochs int
	// GapDays is the fast-forward span between consecutive epochs, in
	// whole days.
	GapDays int
	// GapDuty is the mean silicon stress across gaps, in [0,1].
	GapDuty float64
	// RecharactEveryDays, when positive, retargets the StressLog's
	// periodic cadence and re-characterizes at every epoch entry where
	// it has elapsed. Zero keeps the core default (~2.5 months).
	RecharactEveryDays int
	// SeasonCPUC / SeasonDIMMC, when non-empty, retarget the ambient
	// temperatures per epoch: epoch e lands at Season*[e % len]. The
	// two slices must have equal length, and a lifetime season
	// trajectory excludes a dynamic AmbientModel (one ambient driver
	// at a time).
	SeasonCPUC  []float64
	SeasonDIMMC []float64
}

// enabled reports whether the scenario is multi-epoch.
func (l LifetimeModel) enabled() bool { return l.Epochs > 1 }

// seasonAt returns the season value for epoch e, 0 when unset.
func seasonAt(seasons []float64, e int) float64 {
	if len(seasons) == 0 {
		return 0
	}
	return seasons[e%len(seasons)]
}

// AmbientModel is a pure function of the window index: a seasonal
// base, an optional diurnal sinusoid, and an optional heatwave step.
type AmbientModel struct {
	// BaseCPUC / BaseDIMMC are the resting ambients; zero means the
	// core defaults (28 / 34 °C).
	BaseCPUC  float64
	BaseDIMMC float64
	// SwingC is the diurnal half-amplitude added as a sinusoid with
	// the given period (in windows). SwingC 0 disables the swing.
	SwingC        float64
	PeriodWindows int
	// HeatStart/HeatWindows/HeatDeltaC describe a heatwave: DeltaC is
	// added to both ambients for windows [HeatStart, HeatStart+HeatWindows).
	HeatStart   int
	HeatWindows int
	HeatDeltaC  float64
}

// static reports whether the model never changes after window 0.
func (a AmbientModel) static() bool {
	return a.SwingC == 0 && a.HeatWindows == 0
}

// At returns the ambient pair for window w.
func (a AmbientModel) At(w int) (cpuC, dimmC float64) {
	cpuC, dimmC = a.BaseCPUC, a.BaseDIMMC
	if cpuC == 0 {
		cpuC = 28
	}
	if dimmC == 0 {
		dimmC = 34
	}
	if a.SwingC != 0 && a.PeriodWindows > 0 {
		s := a.SwingC * math.Sin(2*math.Pi*float64(w)/float64(a.PeriodWindows))
		cpuC += s
		dimmC += s
	}
	if w >= a.HeatStart && w < a.HeatStart+a.HeatWindows {
		cpuC += a.HeatDeltaC
		dimmC += a.HeatDeltaC
	}
	return cpuC, dimmC
}

// ArrivalModel shapes the VM arrival intensity over time. Diurnal and
// burst components compose multiplicatively; the zero value is the
// steady stream.
type ArrivalModel struct {
	// DiurnalDepth in [0,1) oscillates the rate sinusoidally with
	// PeriodWindows; 0 disables.
	DiurnalDepth  float64
	PeriodWindows int
	// BurstFactor multiplies the rate inside [BurstStart,
	// BurstStart+BurstWindows); 0 disables.
	BurstStart   int
	BurstWindows int
	BurstFactor  float64
}

// steady reports whether the model is the plain exponential stream.
func (m ArrivalModel) steady() bool {
	return m.DiurnalDepth == 0 && m.BurstFactor == 0
}

// rate compiles the model into a workload.RateFn (windows are one
// simulated minute each).
func (m ArrivalModel) rate() workload.RateFn {
	diurnal := workload.SteadyRate()
	if m.DiurnalDepth != 0 && m.PeriodWindows > 0 {
		diurnal = workload.DiurnalRate(time.Duration(m.PeriodWindows)*time.Minute, m.DiurnalDepth)
	}
	burst := workload.SteadyRate()
	if m.BurstFactor != 0 {
		burst = workload.BurstRate(time.Duration(m.BurstStart)*time.Minute,
			time.Duration(m.BurstWindows)*time.Minute, m.BurstFactor)
	}
	return func(at time.Duration) float64 { return diurnal(at) * burst(at) }
}

// ModeSwitch schedules a mid-run operating-mode change.
type ModeSwitch struct {
	// Window is when the switch lands (before that window steps).
	Window int
	// Node selects the target node; -1 means every node.
	Node       int
	Mode       vfr.Mode
	RiskTarget float64
}

// Attack is one droop-virus injection: node Node runs the
// workload.DroopVirus profile for Windows windows starting at Window,
// then reverts to its scenario workload.
type Attack struct {
	Node    int
	Window  int
	Windows int
}

// PartNames lists the silicon bins Bins may name.
func PartNames() []string { return []string{"i5-4200U", "i7-3970X"} }

// partByName resolves a bin name to its part spec.
func partByName(name string) (cpu.PartSpec, error) {
	switch name {
	case "i5-4200U":
		return cpu.PartI5_4200U(), nil
	case "i7-3970X":
		return cpu.PartI7_3970X(), nil
	}
	return cpu.PartSpec{}, fmt.Errorf("scenario: unknown silicon bin %q (known: %v)", name, PartNames())
}

// totalWindows is the full simulated window axis: per-epoch windows
// times epochs. Scheduled features (mode switches, attacks, ambient
// phases, bursts) index this axis.
func (s Scenario) totalWindows() int {
	if s.Lifetime.enabled() {
		return s.Windows * s.Lifetime.Epochs
	}
	return s.Windows
}

// Validate reports declaration errors.
func (s Scenario) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("scenario: missing name")
	}
	if s.Nodes <= 0 {
		return fmt.Errorf("scenario %s: need at least one node", s.Name)
	}
	if s.Windows <= 0 {
		return fmt.Errorf("scenario %s: need at least one window", s.Name)
	}
	if s.RiskTarget <= 0 || s.RiskTarget >= 1 {
		return fmt.Errorf("scenario %s: risk target %g outside (0,1)", s.Name, s.RiskTarget)
	}
	if s.Shards < 0 {
		return fmt.Errorf("scenario %s: negative shard count", s.Name)
	}
	for _, b := range s.Bins {
		if _, err := partByName(b); err != nil {
			return err
		}
	}
	// Reject declarations whose periodic features are silently dead:
	// a depth or swing without a period would validate, compile to a
	// no-op, and make the experiment measure nothing.
	if s.Ambient.SwingC != 0 && s.Ambient.PeriodWindows <= 0 {
		return fmt.Errorf("scenario %s: ambient swing needs a positive PeriodWindows", s.Name)
	}
	if s.Ambient.HeatDeltaC != 0 && s.Ambient.HeatWindows <= 0 {
		return fmt.Errorf("scenario %s: heatwave needs a positive HeatWindows", s.Name)
	}
	if s.Arrival.DiurnalDepth != 0 && s.Arrival.PeriodWindows <= 0 {
		return fmt.Errorf("scenario %s: diurnal arrivals need a positive PeriodWindows", s.Name)
	}
	if s.Arrival.DiurnalDepth < 0 || s.Arrival.DiurnalDepth >= 1 {
		return fmt.Errorf("scenario %s: diurnal depth %g outside [0,1)", s.Name, s.Arrival.DiurnalDepth)
	}
	if s.Arrival.BurstFactor != 0 && s.Arrival.BurstWindows <= 0 {
		return fmt.Errorf("scenario %s: arrival burst needs a positive BurstWindows", s.Name)
	}
	// Lifetime declarations: reject both dead knobs (lifetime fields
	// without epochs would silently measure nothing) and conflicting
	// ambient drivers.
	l := s.Lifetime
	if !l.enabled() {
		if l.GapDays != 0 || l.GapDuty != 0 || l.RecharactEveryDays != 0 ||
			len(l.SeasonCPUC) > 0 || len(l.SeasonDIMMC) > 0 {
			return fmt.Errorf("scenario %s: lifetime fields set without Epochs > 1", s.Name)
		}
	} else {
		if l.GapDays <= 0 {
			return fmt.Errorf("scenario %s: lifetime needs positive GapDays", s.Name)
		}
		if l.GapDuty < 0 || l.GapDuty > 1 {
			return fmt.Errorf("scenario %s: lifetime gap duty %g outside [0,1]", s.Name, l.GapDuty)
		}
		if l.RecharactEveryDays < 0 {
			return fmt.Errorf("scenario %s: negative re-characterization cadence", s.Name)
		}
		if len(l.SeasonCPUC) != len(l.SeasonDIMMC) {
			return fmt.Errorf("scenario %s: SeasonCPUC and SeasonDIMMC lengths differ (%d vs %d)",
				s.Name, len(l.SeasonCPUC), len(l.SeasonDIMMC))
		}
		if len(l.SeasonCPUC) > 0 && !s.Ambient.static() {
			return fmt.Errorf("scenario %s: lifetime seasons and a dynamic ambient model both set; pick one ambient driver", s.Name)
		}
	}
	// Adaptive-policy declarations: same dead-knob discipline — a
	// policy field that could never act is a declaration error, not a
	// silent no-op.
	if s.DriftMarginFrac < 0 {
		return fmt.Errorf("scenario %s: negative drift margin fraction", s.Name)
	}
	if s.DriftMarginFrac > 0 && !s.Lifetime.enabled() {
		return fmt.Errorf("scenario %s: drift policy set without Epochs > 1 (the cadence it gates only ticks across lifetime gaps)", s.Name)
	}
	if s.ECCThreshold < 0 {
		return fmt.Errorf("scenario %s: negative ECC threshold", s.Name)
	}
	if s.ECCThreshold != 0 && !s.ECCLoop {
		return fmt.Errorf("scenario %s: ECCThreshold set without ECCLoop", s.Name)
	}
	if s.WeakCellsPerDay < 0 {
		return fmt.Errorf("scenario %s: negative weak-cell growth rate", s.Name)
	}
	if s.WeakCellsPerDay > 0 && !s.Lifetime.enabled() {
		return fmt.Errorf("scenario %s: weak-cell growth set without Epochs > 1 (growth only advances across lifetime gaps)", s.Name)
	}
	for _, sw := range s.ModeSwitches {
		if sw.Window < 0 || sw.Window >= s.totalWindows() {
			return fmt.Errorf("scenario %s: mode switch window %d outside [0,%d)", s.Name, sw.Window, s.totalWindows())
		}
		if sw.Node < -1 || sw.Node >= s.Nodes {
			return fmt.Errorf("scenario %s: mode switch node %d outside [-1,%d)", s.Name, sw.Node, s.Nodes)
		}
		if sw.RiskTarget <= 0 || sw.RiskTarget >= 1 {
			return fmt.Errorf("scenario %s: mode switch risk %g outside (0,1)", s.Name, sw.RiskTarget)
		}
	}
	for _, at := range s.Attacks {
		if at.Node < 0 || at.Node >= s.Nodes {
			return fmt.Errorf("scenario %s: attack node %d outside [0,%d)", s.Name, at.Node, s.Nodes)
		}
		if at.Window < 0 || at.Window >= s.totalWindows() {
			return fmt.Errorf("scenario %s: attack window %d outside [0,%d)", s.Name, at.Window, s.totalWindows())
		}
		if at.Windows <= 0 {
			return fmt.Errorf("scenario %s: attack duration must be positive", s.Name)
		}
	}
	return nil
}

// Scale returns a copy resized to the given node and window counts,
// with every window-indexed feature (mode switches, attacks, ambient
// phases, bursts) remapped proportionally and out-of-range node
// references clamped. It is how one preset serves both the full-size
// CLI run and the fast CI/test smoke grid without divergent
// declarations.
func (s Scenario) Scale(nodes, windows int) Scenario {
	if nodes <= 0 {
		nodes = s.Nodes
	}
	if windows <= 0 {
		windows = s.Windows
	}
	// Window-indexed features live on the total axis (all epochs
	// concatenated, totalWindows), so both the ratio and the clamp
	// bound must use totals — per-epoch Windows would fold a
	// later-epoch feature into epoch 0 on lifetime scenarios.
	oldTotal := s.totalWindows()
	scaled := s
	scaled.Windows = windows
	newTotal := scaled.totalWindows()
	remapW := func(w int) int {
		if oldTotal == 0 {
			return 0
		}
		nw := w * newTotal / oldTotal
		if nw >= newTotal {
			nw = newTotal - 1
		}
		return nw
	}
	remapSpan := func(n int) int {
		if oldTotal == 0 {
			return 0
		}
		nn := n * newTotal / oldTotal
		if n > 0 && nn < 1 {
			nn = 1
		}
		return nn
	}
	out := s
	out.Nodes = nodes
	out.Windows = windows
	if s.VMs > 0 && s.Nodes > 0 {
		out.VMs = max(1, s.VMs*nodes/s.Nodes)
	}
	out.Ambient.PeriodWindows = remapSpan(s.Ambient.PeriodWindows)
	out.Ambient.HeatStart = remapW(s.Ambient.HeatStart)
	out.Ambient.HeatWindows = remapSpan(s.Ambient.HeatWindows)
	out.Arrival.PeriodWindows = remapSpan(s.Arrival.PeriodWindows)
	out.Arrival.BurstStart = remapW(s.Arrival.BurstStart)
	out.Arrival.BurstWindows = remapSpan(s.Arrival.BurstWindows)
	out.ModeSwitches = make([]ModeSwitch, len(s.ModeSwitches))
	for i, sw := range s.ModeSwitches {
		sw.Window = remapW(sw.Window)
		if sw.Node >= nodes {
			sw.Node = nodes - 1
		}
		out.ModeSwitches[i] = sw
	}
	out.Attacks = make([]Attack, len(s.Attacks))
	for i, at := range s.Attacks {
		at.Window = remapW(at.Window)
		at.Windows = remapSpan(at.Windows)
		if at.Node >= nodes {
			at.Node = nodes - 1
		}
		out.Attacks[i] = at
	}
	return out
}

// pertKey addresses one (node, window) perturbation.
type pertKey struct{ i, w int }

// FleetConfig compiles the scenario into a fleet.Config for the given
// seed. Every hook it installs is a pure function of (node index,
// window index) over data frozen here, so the fleet engine's
// determinism guarantee — byte-identical fingerprints at any worker
// count — holds for every scenario.
func (s Scenario) FleetConfig(seed uint64) (fleet.Config, error) {
	if err := s.Validate(); err != nil {
		return fleet.Config{}, err
	}
	cfg := fleet.DefaultConfig(s.Nodes)
	cfg.Seed = seed
	cfg.Windows = s.Windows
	cfg.VMs = s.VMs
	cfg.Mode = s.Mode
	cfg.RiskTarget = s.RiskTarget
	cfg.Shards = s.Shards
	cfg.Archetypes = s.Archetypes

	// Lifetime axis: compile the model into a core plan — uniform
	// epochs of s.Windows windows, gaps with per-epoch season ambient
	// retargets, and the re-characterization cadence. The cloud layer
	// spans the concatenated epoch windows.
	if s.Lifetime.enabled() {
		l := s.Lifetime
		plan := core.UniformPlan(l.Epochs, s.Windows, l.GapDays, l.GapDuty)
		plan.RecharactEvery = time.Duration(l.RecharactEveryDays) * 24 * time.Hour
		for i := range plan.Gaps {
			// Gaps[i] precedes epoch i+1: the gap carries the node into
			// that epoch's season.
			plan.Gaps[i].AmbientCPUC = seasonAt(l.SeasonCPUC, i+1)
			plan.Gaps[i].AmbientDIMMC = seasonAt(l.SeasonDIMMC, i+1)
		}
		cfg.Lifetime = &plan
		cfg.Windows = plan.TotalWindows()
	}

	// Adaptive policies compile onto the fleet knobs directly.
	if s.DriftMarginFrac > 0 {
		cfg.Drift = &fleet.DriftPolicy{MarginFrac: s.DriftMarginFrac}
	}
	if s.ECCLoop {
		cfg.ECC = &fleet.ECCPolicy{Threshold: s.ECCThreshold}
	}
	cfg.WeakGrowthPerDay = s.WeakCellsPerDay

	// Per-node specs: silicon bins round-robin, window-0 ambient.
	bins := make([]cpu.PartSpec, len(s.Bins))
	for i, b := range s.Bins {
		p, err := partByName(b)
		if err != nil {
			return fleet.Config{}, err
		}
		bins[i] = p
	}
	base := cfg.BaseSpec()
	amb0CPU, amb0DIMM := s.Ambient.At(0)
	if s.Lifetime.enabled() {
		// Epoch 0 lands in season 0 (when declared): the initial spec
		// carries it, later epochs enter theirs through the gaps.
		if c := seasonAt(s.Lifetime.SeasonCPUC, 0); c != 0 {
			amb0CPU = c
		}
		if d := seasonAt(s.Lifetime.SeasonDIMMC, 0); d != 0 {
			amb0DIMM = d
		}
	}
	cfg.Node = func(i int) fleet.NodeSpec {
		spec := base
		if len(bins) > 0 {
			spec.Part = bins[i%len(bins)]
		}
		spec.AmbientCPUC, spec.AmbientDIMMC = amb0CPU, amb0DIMM
		return spec
	}

	// Arrival pattern: steady scenarios keep the fleet default stream
	// (same source label, same draws — byte-identical), patterned ones
	// pre-generate the schedule here.
	if !s.Arrival.steady() {
		arrivals, err := workload.PatternedStream(cfg.StreamDefaults(),
			s.Arrival.rate(), rng.New(seed).SplitLabeled("fleet/arrivals"))
		if err != nil {
			return fleet.Config{}, err
		}
		cfg.Arrivals = arrivals
	}

	// Scheduled interventions, expanded into a read-only (node,
	// window) table the hook indexes. Attacks install the droop-virus
	// profile at their start window and revert to the node's scenario
	// workload one window past their end.
	pert := make(map[pertKey]fleet.Perturbation)
	for _, sw := range s.ModeSwitches {
		lo, hi := sw.Node, sw.Node+1
		if sw.Node == -1 {
			lo, hi = 0, s.Nodes
		}
		for i := lo; i < hi; i++ {
			p := pert[pertKey{i, sw.Window}]
			p.Mode = &fleet.ModeChange{Mode: sw.Mode, RiskTarget: sw.RiskTarget}
			pert[pertKey{i, sw.Window}] = p
		}
	}
	virus := workload.DroopVirus()
	for _, at := range s.Attacks {
		p := pert[pertKey{at.Node, at.Window}]
		p.Workload = &virus
		pert[pertKey{at.Node, at.Window}] = p
		if end := at.Window + at.Windows; end < s.totalWindows() {
			wl := base.Workload
			p := pert[pertKey{at.Node, end}]
			p.Workload = &wl
			pert[pertKey{at.Node, end}] = p
		}
	}

	// Ambient trajectory, precomputed per window when dynamic. The
	// window axis spans all epochs (the validator rejects dynamic
	// ambients combined with lifetime seasons, so the two drivers
	// never fight).
	var ambient []fleet.Ambient
	if !s.Ambient.static() {
		ambient = make([]fleet.Ambient, s.totalWindows())
		for w := 0; w < s.totalWindows(); w++ {
			c, d := s.Ambient.At(w)
			ambient[w] = fleet.Ambient{CPUC: c, DIMMC: d}
		}
	}

	if len(pert) > 0 || ambient != nil {
		cfg.Perturb = func(i, w int) fleet.Perturbation {
			p := pert[pertKey{i, w}]
			if ambient != nil {
				p.Ambient = &ambient[w]
			}
			return p
		}
	}
	return cfg, nil
}
