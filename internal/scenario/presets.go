package scenario

import (
	"fmt"
	"sort"

	"uniserver/internal/vfr"
)

// Baseline is the reference operating point every other scenario is
// compared against: a homogeneous fleet at the paper's
// high-performance EOP under a steady tenant stream.
func Baseline() Scenario {
	return Scenario{
		Name:        "baseline",
		Description: "homogeneous fleet, high-performance EOP, steady arrivals",
		Nodes:       8,
		Windows:     120,
		Mode:        vfr.ModeHighPerformance,
		RiskTarget:  0.01,
	}
}

// DiurnalBurst models bursty tenants: a deep diurnal arrival swing
// with an onboarding wave at the afternoon peak, against twice the
// baseline VM pressure.
func DiurnalBurst() Scenario {
	s := Baseline()
	s.Name = "diurnal-burst"
	s.Description = "bursty tenants: diurnal arrival swing plus a 4x onboarding wave"
	s.Windows = 180
	s.VMs = 6 * s.Nodes
	s.Arrival = ArrivalModel{
		DiurnalDepth:  0.8,
		PeriodWindows: 90,
		BurstStart:    110,
		BurstWindows:  20,
		BurstFactor:   4,
	}
	return s
}

// HeteroBins models heterogeneous silicon: the fleet alternates
// between the low-end mobile bin and the high-end desktop bin of
// Table 2, so per-node margins, ECC exposure and power all differ.
func HeteroBins() Scenario {
	s := Baseline()
	s.Name = "hetero-bins"
	s.Description = "heterogeneous silicon: i5-4200U and i7-3970X bins interleaved"
	s.Bins = []string{"i5-4200U", "i7-3970X"}
	return s
}

// ThermalSummer models a hot machine room: elevated seasonal
// ambients with a diurnal swing and a mid-run heatwave, squeezing
// DRAM retention and leakage power.
func ThermalSummer() Scenario {
	s := Baseline()
	s.Name = "thermal-summer"
	s.Description = "hot season: 38°C ambient, diurnal swing, +18°C heatwave mid-run"
	s.Ambient = AmbientModel{
		BaseCPUC:      38,
		BaseDIMMC:     44,
		SwingC:        8,
		PeriodWindows: 60,
		HeatStart:     60,
		HeatWindows:   24,
		HeatDeltaC:    18,
	}
	return s
}

// ModeChurn models an operator moving the fleet between regimes as
// demand shifts: everyone drops to low-power a third of the way in,
// then returns to high-performance for the final third.
func ModeChurn() Scenario {
	s := Baseline()
	s.Name = "mode-churn"
	s.Description = "mid-run regime shifts: fleet-wide low-power dip, then back to high-performance"
	s.ModeSwitches = []ModeSwitch{
		{Window: 40, Node: -1, Mode: vfr.ModeLowPower, RiskTarget: 0.02},
		{Window: 80, Node: -1, Mode: vfr.ModeHighPerformance, RiskTarget: 0.01},
	}
	return s
}

// DroopAttack models the security analysis' availability attack: two
// nodes host a droop-virus guest for a span of windows while the
// fleet runs at a deep (risk 0.02) operating point.
func DroopAttack() Scenario {
	s := Baseline()
	s.Name = "droop-attack"
	s.Description = "droop-virus guests on two nodes at a deep EOP (availability attack)"
	s.RiskTarget = 0.02
	s.Attacks = []Attack{
		{Node: 0, Window: 40, Windows: 30},
		{Node: 3, Window: 40, Windows: 30},
	}
	return s
}

// AgingYear models the paper's lifetime story end to end: four
// windowed epochs spanning the seasons of a year, separated by
// 91-day fast-forward gaps that age the silicon and churn the DRAM
// telegraph noise, with a 90-day re-characterization cadence — so
// every epoch opens with a scheduled StressLog campaign publishing
// the drifted margins (Section 3.D: "periodically over the machine's
// lifetime (e.g. every 2-3 months) to track aging").
func AgingYear() Scenario {
	s := Baseline()
	s.Name = "aging-year"
	s.Description = "a year of lifetime: 4 seasonal epochs, 91-day gaps, 90-day re-characterization cadence"
	s.Windows = 60
	s.Lifetime = LifetimeModel{
		Epochs:             4,
		GapDays:            91,
		GapDuty:            0.6,
		RecharactEveryDays: 90,
		// Winter deployment, then spring, a hot summer machine room,
		// and autumn.
		SeasonCPUC:  []float64{24, 29, 38, 30},
		SeasonDIMMC: []float64{30, 35, 44, 36},
	}
	return s
}

// Fleet100k is the population-scale preset the scale-out engine
// exists for: a hundred thousand nodes drawn from the two Table 2
// silicon bins under archetype-clone characterization — two
// characterization campaigns serve the whole population — executed in
// eight shards with memory bounded by workers × ecosystem-size. The
// VM stream is explicitly small: the scheduler's placement scan is
// O(nodes) per VM, so at population scale VM count, not node count,
// is the cloud layer's cost driver. Scaled down by the smoke grid it
// doubles as the shard/archetype determinism specimen.
func Fleet100k() Scenario {
	s := Baseline()
	s.Name = "fleet-100k"
	s.Description = "population scale: 100k nodes, 2 archetype bins, 8 shards, bounded memory"
	s.Nodes = 100_000
	s.Windows = 30
	s.VMs = 2000
	s.Bins = []string{"i5-4200U", "i7-3970X"}
	s.Archetypes = true
	s.Shards = 8
	return s
}

// recharactCadence builds one leg of the cadence-comparison family:
// identical seven-epoch lifetimes (30-day gaps, ~6 months of aging)
// that differ only in the scheduled re-characterization cadence, so a
// campaign over the three legs isolates the cadence's effect on
// margin staleness, crashes and offline time.
func recharactCadence(name string, days int, human string) Scenario {
	s := Baseline()
	s.Name = name
	s.Description = fmt.Sprintf("re-characterization cadence study: 7 epochs, 30-day gaps, campaigns every %s", human)
	s.Nodes = 6
	s.Windows = 40
	s.Lifetime = LifetimeModel{
		Epochs:             7,
		GapDays:            30,
		GapDuty:            0.7,
		RecharactEveryDays: days,
	}
	return s
}

// RecharactCadences returns the 1/3/6-month cadence-comparison legs;
// run them in one campaign grid to compare schedules.
func RecharactCadences() []Scenario {
	return []Scenario{
		recharactCadence("recharact-1mo", 30, "month"),
		recharactCadence("recharact-3mo", 90, "3 months"),
		recharactCadence("recharact-6mo", 180, "6 months"),
	}
}

// DriftCadence is the Predictor-in-the-loop leg of the cadence family:
// the same seven-epoch monthly-schedule lifetime as recharact-1mo, but
// every scheduled campaign first consults the Predictor and runs only
// when the critical-voltage drift accumulated since the last campaign
// exceeds a tenth of the advised headroom — margin-aware
// re-characterization instead of a blind clock. Weak-cell growth is
// armed so the DRAM population drifts over life too (AVATAR's
// non-static field population), giving the gate real drift to track.
// Compare its recharacterization count, energy and availability
// against the recharact-* legs.
func DriftCadence() Scenario {
	s := recharactCadence("drift-cadence", 30, "month")
	s.Name = "drift-cadence"
	s.Description = "drift-gated cadence: monthly schedule, campaigns only above 10% predicted margin drift"
	s.DriftMarginFrac = 0.1
	s.WeakCellsPerDay = 2
	return s
}

// ECCClosedLoop is the closed-loop undervolting preset (Bacha &
// Teodorescu, ISCA 2013): the baseline fleet with each node's
// controller stepping the operating point below the advised one while
// correctable ECC stays silent, and backing off a notch on onset —
// margins reclaimed by feedback rather than by the risk model alone.
func ECCClosedLoop() Scenario {
	s := Baseline()
	s.Name = "ecc-closedloop"
	s.Description = "closed-loop undervolting: creep below the advised point while correctable ECC is quiet, back off on onset"
	s.ECCLoop = true
	return s
}

// Presets returns the bundled scenario catalogue, sorted by name.
func Presets() []Scenario {
	out := []Scenario{
		Baseline(),
		DiurnalBurst(),
		HeteroBins(),
		ThermalSummer(),
		ModeChurn(),
		DroopAttack(),
		AgingYear(),
		Fleet100k(),
		DriftCadence(),
		ECCClosedLoop(),
	}
	out = append(out, RecharactCadences()...)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Names returns the preset names in catalogue order.
func Names() []string {
	ps := Presets()
	names := make([]string, len(ps))
	for i, s := range ps {
		names[i] = s.Name
	}
	return names
}

// ByName returns the preset with the given name.
func ByName(name string) (Scenario, error) {
	for _, s := range Presets() {
		if s.Name == name {
			return s, nil
		}
	}
	return Scenario{}, fmt.Errorf("scenario: unknown preset %q (known: %v)", name, Names())
}
