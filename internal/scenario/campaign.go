package scenario

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"

	"uniserver/internal/fleet"
)

// Result is one grid cell of a campaign: a single (scenario, seed)
// fleet run. Fingerprint is the full multi-line fleet fingerprint
// (kept out of the JSON report for size); FingerprintSHA256 is its
// hash, which is what cross-run comparisons and the CLI print.
type Result struct {
	Scenario          string        `json:"scenario"`
	Seed              uint64        `json:"seed"`
	Fingerprint       string        `json:"-"`
	FingerprintSHA256 string        `json:"fingerprint_sha256,omitempty"`
	Summary           fleet.Summary `json:"summary"`
	Err               string        `json:"error,omitempty"`
	// Cached marks a cell served by Campaign.Lookup (typically a
	// persistent result store) instead of executed: the fleet never
	// ran, the bytes came from a prior identical run.
	Cached bool `json:"cached,omitempty"`
}

// CellCanceled is the Result.Err of cells a canceled Campaign.Context
// prevented from running. Canceled cells never executed — rerunning
// the campaign (against the same result store) picks them up.
const CellCanceled = "canceled"

// ScenarioReport aggregates one scenario's row of the grid across all
// seeds: the comparative metrics the campaign exists to surface, plus
// a hash over the per-seed fingerprints so an entire scenario row can
// be compared across hosts or worker counts with one string.
type ScenarioReport struct {
	Scenario    string `json:"scenario"`
	Description string `json:"description"`
	Runs        int    `json:"runs"`
	Failed      int    `json:"failed"`

	// Means across successful seeds.
	MeanAvailability float64 `json:"mean_availability"`
	EnergyKWh        float64 `json:"energy_kwh"`
	EnergySavedWh    float64 `json:"energy_saved_wh"`
	EOPFraction      float64 `json:"eop_fraction"`
	MeanCPUTempC     float64 `json:"mean_cpu_temp_c"`
	// MeanFinalAgeShiftMV is the fleet-mean accumulated aging drift at
	// end of life — the margin-trajectory headline lifetime scenarios
	// exist to surface (zero for single-epoch scenarios, whose runs
	// are too short for visible drift).
	MeanFinalAgeShiftMV float64 `json:"mean_final_age_shift_mv,omitempty"`

	// Totals across successful seeds.
	Crashes              int `json:"crashes"`
	Migrations           int `json:"migrations"`
	SLAViolations        int `json:"sla_violations"`
	UserFacingViolations int `json:"user_facing_violations"`
	Scheduled            int `json:"scheduled"`
	Rejected             int `json:"rejected"`
	// Recharacterized totals the StressLog campaigns run mid-life —
	// scheduled (cadence), threshold- and crash-triggered alike.
	Recharacterized int `json:"recharacterized"`
	// Adaptive-policy counters (omitted when no policy is armed): the
	// drift gate's run/skip decisions on scheduled campaigns and the
	// ECC closed loop's undervolt steps and backoffs.
	RecharTriggered  int `json:"rechar_triggered,omitempty"`
	RecharSuppressed int `json:"rechar_suppressed,omitempty"`
	UndervoltSteps   int `json:"undervolt_steps,omitempty"`
	ECCBackoffs      int `json:"ecc_backoffs,omitempty"`

	FingerprintSHA256 string `json:"fingerprint_sha256"`
}

// Report is the machine-readable campaign outcome: every grid cell in
// scenario-major, seed-minor order, the per-scenario aggregates, a
// campaign-level fingerprint hash over the whole grid, and the
// execution self-description (parallelism and snapshot-cache traffic)
// that makes a perf run interpretable without rerunning it. The
// execution fields never feed the fingerprint: they describe how the
// grid was computed, not what it computed.
type Report struct {
	Seeds             []uint64         `json:"seeds"`
	Results           []Result         `json:"results"`
	Scenarios         []ScenarioReport `json:"scenarios"`
	FingerprintSHA256 string           `json:"fingerprint_sha256"`

	// EffectiveParallel is the concurrent-cell fan-out RunCampaign
	// actually used (Campaign.EffectiveParallel at run time).
	EffectiveParallel int `json:"effective_parallel"`
	// CharactCacheHits / CharactCacheMisses count the campaign-wide
	// characterization snapshot cache's traffic: misses are full
	// characterizations run, hits are nodes served by restoring a
	// snapshot. Both are zero when the cache is disabled.
	// CharactDiskHits counts first consumers served from the attached
	// spill directory (Campaign.CharactDir) instead of characterizing.
	// CharactDiskErr carries the first best-effort spill failure, if
	// any: results are unaffected, but the directory did not
	// accumulate and the next run will re-characterize.
	// CharactCoalesced counts hits that arrived while their key's one
	// characterization was still in flight and waited on it instead of
	// duplicating it — contention telemetry (timing-dependent, unlike
	// hits/misses, which are deterministic in the grid).
	// CharactCompiled counts restore templates compiled — one per
	// characterized entry (fresh or disk-served); every cache hit after
	// that is a template stamp, not a deep restore.
	CharactCacheHits   uint64 `json:"charact_cache_hits"`
	CharactCacheMisses uint64 `json:"charact_cache_misses"`
	CharactCoalesced   uint64 `json:"charact_coalesced,omitempty"`
	CharactDiskHits    uint64 `json:"charact_disk_hits,omitempty"`
	CharactCompiled    uint64 `json:"charact_compiled,omitempty"`
	CharactDiskErr     string `json:"charact_disk_err,omitempty"`

	// CachedCells counts cells served by Campaign.Lookup (a result
	// store) instead of executed; CanceledCells counts cells a
	// canceled Campaign.Context prevented from running. Both zero on a
	// plain uninterrupted in-process campaign.
	CachedCells   int `json:"cached_cells,omitempty"`
	CanceledCells int `json:"canceled_cells,omitempty"`
}

// WriteJSON renders the report, indented, to w.
func (r Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// sha256Hex hashes a fingerprint string for compact comparison.
func sha256Hex(s string) string {
	h := sha256.Sum256([]byte(s))
	return hex.EncodeToString(h[:])
}

// RunScenario executes one scenario at one seed on the given fleet
// worker count and returns its result. Worker count never changes the
// fingerprint, only the wall-clock. The run goes through a run-private
// characterization snapshot cache: node seeds within one run are all
// distinct, so nothing is reused, but every node exercises the same
// Snapshot→Restore path campaigns rely on — which is what lets the
// preset golden tests pin that path byte for byte.
func RunScenario(s Scenario, seed uint64, workers int) (Result, error) {
	return runScenarioWith(s, seed, workers, fleet.NewCharactCache())
}

// runScenarioWith is RunScenario against a caller-supplied snapshot
// cache (nil disables caching entirely); campaigns pass their shared
// cache here.
func runScenarioWith(s Scenario, seed uint64, workers int, cache *fleet.CharactCache) (Result, error) {
	cfg, err := s.FleetConfig(seed)
	if err != nil {
		return Result{Scenario: s.Name, Seed: seed, Err: err.Error()}, err
	}
	cfg.Workers = workers
	cfg.Charact = cache
	sum, err := fleet.Run(cfg)
	if err != nil {
		return Result{Scenario: s.Name, Seed: seed, Err: err.Error()}, err
	}
	fp := sum.Fingerprint()
	return Result{
		Scenario:          s.Name,
		Seed:              seed,
		Fingerprint:       fp,
		FingerprintSHA256: sha256Hex(fp),
		Summary:           sum,
	}, nil
}

// Campaign is a scenario×seed sweep.
type Campaign struct {
	Scenarios []Scenario
	Seeds     []uint64
	// FleetWorkers is the worker count inside each fleet.Run; <= 0
	// means 1 (run-level parallelism usually saturates the host, and
	// nested pools only add scheduling noise to wall-clock, never to
	// results).
	FleetWorkers int
	// Parallel bounds how many grid cells run concurrently; <= 0
	// means GOMAXPROCS.
	Parallel int
	// DisableCharactShare turns off the campaign-wide characterization
	// snapshot cache. Sharing is on by default because cells at the
	// same seed re-characterize identical (seed, node spec) pairs once
	// per scenario; the cache runs each pair once and restores deep
	// ecosystem snapshots everywhere else, with byte-identical results
	// (pinned by the preset golden tests). Disable only to measure the
	// uncached cost or to bisect a suspected restore divergence.
	DisableCharactShare bool
	// CharactDir, when set (and sharing is on), spills characterized
	// snapshots to this versioned directory and serves later processes
	// from it — CLI reruns and CI legs share characterizations across
	// processes, byte-identically. Attaching refuses a directory
	// stamped by a different snapshot-format version.
	CharactDir string

	// Context, when non-nil, cancels the campaign at cell boundaries:
	// in-flight cells run to completion (their results are whole and,
	// with a store attached, persisted), unstarted cells are marked
	// CellCanceled, and RunCampaign returns a partial Report together
	// with an error wrapping context.Canceled. Nil means run to
	// completion.
	Context context.Context
	// Lookup, when set, is consulted before a cell executes. Returning
	// ok serves the cell from the returned Result (marked Cached)
	// without running the fleet — how a persistent result store makes
	// completed cells free on resume. It is called from worker
	// goroutines and must be safe for concurrent use. The determinism
	// contract makes this sound: a stored result for the same
	// (scenario, seed) is byte-identical to what the run would produce.
	Lookup func(s Scenario, seed uint64) (Result, bool)
	// OnCell, when set, receives every executed or Lookup-served cell
	// the moment it finishes — completion order, not grid order, and
	// from worker goroutines, so it must be safe for concurrent use.
	// Canceled cells are not reported. gridIndex is the cell's
	// scenario-major, seed-minor grid position.
	OnCell func(gridIndex int, res Result)
	// Gate, when set, wraps each cell's execution (Lookup included) —
	// the hook a long-running service uses to share one bounded worker
	// pool across concurrent campaigns. A Gate that returns without
	// invoking run (e.g. because the service is shutting down) marks
	// the cell CellCanceled.
	Gate func(run func())
}

// EffectiveParallel resolves the concurrent-cell count RunCampaign
// will use: non-positive Parallel means GOMAXPROCS, and never more
// workers than grid cells. Exposed so CLIs can report the actual
// fan-out instead of re-deriving (and drifting from) this policy.
func (c Campaign) EffectiveParallel() int {
	parallel := c.Parallel
	if parallel <= 0 {
		parallel = runtime.GOMAXPROCS(0)
	}
	if cells := len(c.Scenarios) * len(c.Seeds); parallel > cells {
		parallel = cells
	}
	return parallel
}

// SmokeCampaign returns the fast all-presets sanity grid used by CI
// and the -campaign smoke CLI verb: every bundled preset scaled down
// to `nodes` nodes (<= 0 means 4) and a short horizon, one seed.
func SmokeCampaign(nodes int) Campaign {
	if nodes <= 0 {
		nodes = 4
	}
	presets := Presets()
	scaled := make([]Scenario, len(presets))
	for i, s := range presets {
		scaled[i] = s.Scale(nodes, 16)
	}
	return Campaign{Scenarios: scaled, Seeds: []uint64{1}}
}

// RunCampaign fans the scenario×seed grid out across Parallel
// goroutines (each cell is an independent fleet.Run) and merges the
// results in grid order — scenario-major, seed-minor — so the Report
// is deterministic regardless of completion order. The returned error
// is the first failure in grid order; the Report still carries every
// cell, including failed ones.
func RunCampaign(c Campaign) (Report, error) {
	if len(c.Scenarios) == 0 {
		return Report{}, fmt.Errorf("scenario: campaign has no scenarios")
	}
	if len(c.Seeds) == 0 {
		return Report{}, fmt.Errorf("scenario: campaign has no seeds")
	}
	for _, s := range c.Scenarios {
		if err := s.Validate(); err != nil {
			return Report{}, err
		}
	}
	workers := c.FleetWorkers
	if workers <= 0 {
		workers = 1
	}
	parallel := c.EffectiveParallel()
	type cell struct{ si, ki int }
	grid := make([]cell, 0, len(c.Scenarios)*len(c.Seeds))
	for si := range c.Scenarios {
		for ki := range c.Seeds {
			grid = append(grid, cell{si, ki})
		}
	}

	// One snapshot cache spans the whole grid: cells sharing a seed
	// share their node characterizations across scenarios, which is
	// where the campaign's dominant cost used to be. The cache is
	// concurrency-safe, so cells racing on the same key serialize on
	// one characterization instead of duplicating it.
	var cache *fleet.CharactCache
	if !c.DisableCharactShare {
		cache = fleet.NewCharactCache()
		if c.CharactDir != "" {
			if err := cache.AttachDir(c.CharactDir); err != nil {
				return Report{}, err
			}
		}
	}

	// Fan out: workers pull grid cells off a shared atomic cursor the
	// moment they free up — no producer goroutine feeding them in grid
	// order, so an expensive early cell never stalls the handout of
	// later ones. Each worker writes only the slots it claimed; results
	// land in grid order whatever the completion order.
	results := make([]Result, len(grid))
	runCell := func(gi int) {
		g := grid[gi]
		s, seed := c.Scenarios[g.si], c.Seeds[g.ki]
		if c.Lookup != nil {
			if res, ok := c.Lookup(s, seed); ok {
				res.Scenario, res.Seed = s.Name, seed
				res.Cached = true
				if res.FingerprintSHA256 == "" && res.Fingerprint != "" {
					res.FingerprintSHA256 = sha256Hex(res.Fingerprint)
				}
				results[gi] = res
				return
			}
		}
		res, _ := runScenarioWith(s, seed, workers, cache)
		results[gi] = res
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for p := 0; p < parallel; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				gi := int(next.Add(1)) - 1
				if gi >= len(grid) {
					return
				}
				g := grid[gi]
				// Cancellation lands at cell boundaries only: a claimed
				// cell either runs whole or not at all, so every stored
				// result is a complete, fingerprinted cell.
				if c.Context != nil && c.Context.Err() != nil {
					results[gi] = Result{Scenario: c.Scenarios[g.si].Name, Seed: c.Seeds[g.ki], Err: CellCanceled}
					continue
				}
				if c.Gate != nil {
					c.Gate(func() { runCell(gi) })
				} else {
					runCell(gi)
				}
				if results[gi].Scenario == "" && results[gi].Err == "" {
					// The Gate declined to run the cell (shutdown race).
					results[gi] = Result{Scenario: c.Scenarios[g.si].Name, Seed: c.Seeds[g.ki], Err: CellCanceled}
				}
				if c.OnCell != nil && results[gi].Err != CellCanceled {
					c.OnCell(gi, results[gi])
				}
			}
		}()
	}
	wg.Wait()

	// Merge in grid order.
	rep := Report{
		Seeds:             append([]uint64(nil), c.Seeds...),
		Results:           results,
		EffectiveParallel: parallel,
	}
	if cache != nil {
		st := cache.Stats()
		rep.CharactCacheHits, rep.CharactCacheMisses = st.Hits, st.Misses
		rep.CharactCoalesced = st.Coalesced
		rep.CharactDiskHits = st.DiskHits
		rep.CharactCompiled = st.Compiled
		if err := cache.DiskErr(); err != nil {
			rep.CharactDiskErr = err.Error()
		}
	}
	var firstErr error
	allFPs := ""
	for si, s := range c.Scenarios {
		sr := ScenarioReport{Scenario: s.Name, Description: s.Description}
		rowFPs := ""
		for ki := range c.Seeds {
			res := results[si*len(c.Seeds)+ki]
			sr.Runs++
			if res.Err != "" {
				sr.Failed++
				if res.Err == CellCanceled {
					rep.CanceledCells++
				}
				if firstErr == nil {
					if res.Err == CellCanceled {
						firstErr = fmt.Errorf("scenario %s seed %d: %w", res.Scenario, res.Seed, context.Canceled)
					} else {
						firstErr = fmt.Errorf("scenario %s seed %d: %s", res.Scenario, res.Seed, res.Err)
					}
				}
				continue
			}
			if res.Cached {
				rep.CachedCells++
			}
			rowFPs += res.Fingerprint
			sum := res.Summary
			sr.MeanAvailability += sum.MeanAvailability
			sr.EnergyKWh += sum.EnergyKWh
			sr.EnergySavedWh += sum.EnergySavedWh
			sr.MeanCPUTempC += sum.MeanCPUTempC
			if sum.Nodes*sum.Windows > 0 {
				sr.EOPFraction += float64(sum.WindowsAtEOP) / float64(sum.Nodes*sum.Windows)
			}
			sr.Crashes += sum.Crashes
			sr.Migrations += sum.Migrations
			sr.SLAViolations += sum.SLAViolations
			sr.UserFacingViolations += sum.UserFacingViolations
			sr.Scheduled += sum.Scheduled
			sr.Rejected += sum.Rejected
			sr.Recharacterized += sum.Recharacterized
			sr.RecharTriggered += sum.RecharTriggered
			sr.RecharSuppressed += sum.RecharSuppressed
			sr.UndervoltSteps += sum.UndervoltSteps
			sr.ECCBackoffs += sum.ECCBackoffs
			if len(sum.PerNode) > 0 {
				nodeAge := 0.0
				for _, n := range sum.PerNode {
					nodeAge += n.FinalAgeShiftMV
				}
				sr.MeanFinalAgeShiftMV += nodeAge / float64(len(sum.PerNode))
			}
		}
		if ok := sr.Runs - sr.Failed; ok > 0 {
			sr.MeanAvailability /= float64(ok)
			sr.EnergyKWh /= float64(ok)
			sr.EnergySavedWh /= float64(ok)
			sr.EOPFraction /= float64(ok)
			sr.MeanCPUTempC /= float64(ok)
			sr.MeanFinalAgeShiftMV /= float64(ok)
		}
		sr.FingerprintSHA256 = sha256Hex(rowFPs)
		allFPs += rowFPs
		rep.Scenarios = append(rep.Scenarios, sr)
	}
	rep.FingerprintSHA256 = sha256Hex(allFPs)
	return rep, firstErr
}
