package scenario

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"uniserver/internal/fleet"
)

// testSize keeps runs fast: presets scale down to this grid for the
// determinism sweeps.
const (
	testNodes   = 3
	testWindows = 12
)

// TestPresetDeterminismAcrossWorkerCounts is the scenario layer's
// inherited contract: every bundled preset, compiled through
// FleetConfig, must produce byte-identical fleet fingerprints at 1, 4
// and 8 workers. Run with -race to also check the perturbation hooks
// are applied without data races.
func TestPresetDeterminismAcrossWorkerCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet characterization is slow; skipping in -short")
	}
	for _, preset := range Presets() {
		preset := preset
		t.Run(preset.Name, func(t *testing.T) {
			t.Parallel()
			s := preset.Scale(testNodes, testWindows)
			var want string
			for _, workers := range []int{1, 4, 8} {
				res, err := RunScenario(s, 11, workers)
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				if want == "" {
					want = res.Fingerprint
					continue
				}
				if res.Fingerprint != want {
					t.Fatalf("fingerprint diverged at workers=%d:\n--- workers=1 ---\n%s--- workers=%d ---\n%s",
						workers, want, workers, res.Fingerprint)
				}
			}
		})
	}
}

// TestBaselineEqualsPlainFleet pins the compiler's floor: the
// baseline scenario is exactly the plain homogeneous fleet — same
// stream labels, same ambient defaults — so its fingerprint must
// equal a hand-built fleet.DefaultConfig run.
func TestBaselineEqualsPlainFleet(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet characterization is slow; skipping in -short")
	}
	s := Baseline().Scale(2, 8)
	res, err := RunScenario(s, 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	cfg := fleet.DefaultConfig(2)
	cfg.Windows = 8
	cfg.Seed = 5
	cfg.Mode = s.Mode
	cfg.RiskTarget = s.RiskTarget
	sum, err := fleet.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Fingerprint != sum.Fingerprint() {
		t.Fatalf("baseline scenario diverged from the plain fleet:\n--- scenario ---\n%s--- fleet ---\n%s",
			res.Fingerprint, sum.Fingerprint())
	}
}

// TestCampaignDeterministicAcrossParallelism runs the same small grid
// at two campaign parallelism levels and requires identical reports
// (cell order, aggregates, fingerprints).
func TestCampaignDeterministicAcrossParallelism(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet characterization is slow; skipping in -short")
	}
	grid := Campaign{
		Scenarios: []Scenario{
			Baseline().Scale(2, 8),
			DroopAttack().Scale(2, 8),
		},
		Seeds: []uint64{3, 9},
	}
	run := func(parallel int) Report {
		c := grid
		c.Parallel = parallel
		rep, err := RunCampaign(c)
		if err != nil {
			t.Fatalf("parallel=%d: %v", parallel, err)
		}
		return rep
	}
	seq, par := run(1), run(4)
	if seq.FingerprintSHA256 != par.FingerprintSHA256 {
		t.Fatalf("campaign fingerprint diverged: %s vs %s", seq.FingerprintSHA256, par.FingerprintSHA256)
	}
	for i := range seq.Results {
		if seq.Results[i].Fingerprint != par.Results[i].Fingerprint {
			t.Fatalf("grid cell %d (%s seed %d) diverged across parallelism",
				i, seq.Results[i].Scenario, seq.Results[i].Seed)
		}
	}
}

// TestScenarioEffectsObservable checks each scenario lever actually
// reaches the simulation: hetero bins change the per-node part model,
// and a droop attack produces at least as many crashes as the same
// fleet without it.
func TestScenarioEffectsObservable(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet characterization is slow; skipping in -short")
	}
	hetero := HeteroBins().Scale(2, 6)
	res, err := RunScenario(hetero, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	models := map[string]bool{}
	for _, n := range res.Summary.PerNode {
		models[n.Model] = true
	}
	if len(models) < 2 {
		t.Fatalf("hetero-bins fleet has homogeneous models: %v", models)
	}

	attacked := DroopAttack().Scale(2, 16)
	clean := attacked
	clean.Attacks = nil
	resAtt, err := RunScenario(attacked, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	resClean, err := RunScenario(clean, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if resAtt.Summary.Crashes < resClean.Summary.Crashes {
		t.Fatalf("droop attack reduced crashes: %d with attack vs %d without",
			resAtt.Summary.Crashes, resClean.Summary.Crashes)
	}
	if resAtt.Fingerprint == resClean.Fingerprint {
		t.Fatal("attack scenario is indistinguishable from the clean run")
	}
}

// TestScaleKeepsDeclarationsValid scales every preset to several
// (nodes, windows) grids and requires the result to still validate —
// remapped switches, attacks and phases must stay in range.
func TestScaleKeepsDeclarationsValid(t *testing.T) {
	for _, preset := range Presets() {
		for _, size := range [][2]int{{1, 1}, {2, 5}, {4, 16}, {16, 400}} {
			s := preset.Scale(size[0], size[1])
			if err := s.Validate(); err != nil {
				t.Errorf("%s scaled to %v: %v", preset.Name, size, err)
			}
		}
	}
}

// TestValidateRejectsBadDeclarations spot-checks the validator.
func TestValidateRejectsBadDeclarations(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Scenario)
	}{
		{"zero nodes", func(s *Scenario) { s.Nodes = 0 }},
		{"zero windows", func(s *Scenario) { s.Windows = 0 }},
		{"risk out of range", func(s *Scenario) { s.RiskTarget = 1.5 }},
		{"unknown bin", func(s *Scenario) { s.Bins = []string{"z80"} }},
		{"switch window out of range", func(s *Scenario) {
			s.ModeSwitches = []ModeSwitch{{Window: s.Windows, Node: -1, RiskTarget: 0.01}}
		}},
		{"attack node out of range", func(s *Scenario) {
			s.Attacks = []Attack{{Node: s.Nodes, Window: 0, Windows: 1}}
		}},
	}
	for _, c := range cases {
		s := Baseline()
		c.mut(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: Validate accepted the declaration", c.name)
		}
	}
}

// TestByName covers the registry surface.
func TestByName(t *testing.T) {
	names := Names()
	if len(names) < 5 {
		t.Fatalf("want at least 5 presets, got %d: %v", len(names), names)
	}
	for _, n := range names {
		s, err := ByName(n)
		if err != nil {
			t.Fatal(err)
		}
		if s.Name != n {
			t.Fatalf("ByName(%q) returned %q", n, s.Name)
		}
	}
	if _, err := ByName("no-such-scenario"); err == nil {
		t.Fatal("ByName accepted an unknown name")
	}
}

// TestReportJSONRoundTrips checks the report is machine-readable: it
// marshals, unmarshals, and keeps the grid intact.
func TestReportJSONRoundTrips(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet characterization is slow; skipping in -short")
	}
	rep, err := RunCampaign(Campaign{
		Scenarios: []Scenario{Baseline().Scale(2, 4)},
		Seeds:     []uint64{1, 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "\"Fingerprint\":") {
		t.Fatal("full fingerprints leaked into the JSON report")
	}
	var back Report
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("report does not round-trip: %v", err)
	}
	if len(back.Results) != 2 || len(back.Scenarios) != 1 {
		t.Fatalf("round-tripped grid shape wrong: %d results, %d scenarios",
			len(back.Results), len(back.Scenarios))
	}
	if back.FingerprintSHA256 != rep.FingerprintSHA256 {
		t.Fatal("campaign fingerprint changed across the round trip")
	}
}
