package scenario

import (
	"bytes"
	"encoding/json"
	"runtime"
	"strings"
	"testing"

	"uniserver/internal/fleet"
)

// testSize keeps runs fast: presets scale down to this grid for the
// determinism sweeps.
const (
	testNodes   = 3
	testWindows = 12
)

// goldenPresetSHA pins each preset's fingerprint hash at the test
// grid (3 nodes, 12 windows, seed 11), recorded BEFORE the hot-path
// optimization pass: optimizations must reproduce these byte for byte
// at every worker count. The values are exact for the committed Go
// toolchain on linux/amd64 (the math library's transcendentals are
// what the simulation's floats flow through); re-record them — with a
// note in EXPERIMENTS.md — only when a PR intentionally changes
// simulation semantics.
// goldenPlatform reports whether this is the platform class the
// golden hashes were recorded on. Off it, a different math-library
// build can legitimately round transcendentals differently; the
// worker-count identity contract still holds and is still asserted,
// only the cross-platform byte comparison is skipped.
func goldenPlatform() bool {
	return runtime.GOOS == "linux" && runtime.GOARCH == "amd64"
}

var goldenPresetSHA = map[string]string{
	"baseline":       "e25488bbafbab6b81ced2b41a04f2623ef26f4389dc3693297fefcffee1b09e8",
	"diurnal-burst":  "a1df43ffb8200243b86caceed13f6f4ef26932bea1cf397e089bc0af30b49f91",
	"droop-attack":   "0f2fe02d2fbc50b34e0a4ea472ad82dafea87f8d69f6a993ee37168ad152974e",
	"hetero-bins":    "4636fc697de91580d275444f261540ab97331b9933b1201d6ec87b0c9eaf75aa",
	"mode-churn":     "be4df7810c70386a0008ffe05b2b66e54108516e8cda99db45f3f9e406c19b5d",
	"thermal-summer": "d2a94571c36750bf5a04310a60f82701e879818106b7f5a82bb52af587d8d29b",
	// Lifetime presets, recorded when the lifetime engine landed (the
	// six SHAs above were untouched by it — single-epoch fingerprints
	// carry no trajectory lines).
	"aging-year":    "7792eeb370756ceac92984599a08f4cceb0e944accd73aa8bc7a15d3f0217c41",
	"recharact-1mo": "ea97ed824196703113fcfa387e648416c106c9e062acbdb00d56afc15762955a",
	"recharact-3mo": "2a7b737e80d6ea8d3eb225289d5b813e7ecf6b27b9b89ad303db31308f428c5c",
	"recharact-6mo": "ba7a6bbb807c510bf137d46be93eafaeda2e3c9793ba158b9fb486510a95ac59",
	// Population-scale preset, recorded when the sharded scale-out
	// engine landed (every SHA above was untouched by it — sharding and
	// the fused per-node lifecycle reproduce the node-order merge byte
	// for byte). Archetype-clone characterization makes this one a
	// different experiment than a per-node-characterized fleet would
	// be, hence its own golden.
	"fleet-100k": "df20689c5310417805c44b08dbed9839027356908485d0934cc0dbc9367101e3",
	// Adaptive-policy presets, recorded when the predictor-in-the-loop
	// policies landed (every SHA above was untouched by that PR — the
	// policy counter lines are fingerprint-silent when the counters are
	// all zero, which they are for every policy-free preset). At the
	// test grid drift-cadence shows a mix of triggered and suppressed
	// campaigns and ecc-closedloop shows both undervolt steps and
	// backoffs, so the goldens pin real policy decisions, not idle
	// controllers.
	"drift-cadence":  "d8074be47df3d35dc4763f8e9b5942fe056065474744d010f01e60f0fed5ea1a",
	"ecc-closedloop": "dfe7a64d79bb7382edb7247e28c18d5dea38bb17dfb5e03a1da548df6c545a82",
}

// TestPresetDeterminismAcrossWorkerCounts is the scenario layer's
// inherited contract: every bundled preset, compiled through
// FleetConfig, must produce byte-identical fleet fingerprints at 1, 4
// and 8 workers — and those fingerprints must hash to the recorded
// pre-optimization goldens. Run with -race to also check the
// perturbation hooks are applied without data races.
func TestPresetDeterminismAcrossWorkerCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet characterization is slow; skipping in -short")
	}
	for _, preset := range Presets() {
		preset := preset
		t.Run(preset.Name, func(t *testing.T) {
			t.Parallel()
			s := preset.Scale(testNodes, testWindows)
			var want string
			for _, workers := range []int{1, 4, 8} {
				res, err := RunScenario(s, 11, workers)
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				if want == "" {
					want = res.Fingerprint
					golden := goldenPresetSHA[s.Name]
					switch {
					case !goldenPlatform():
						t.Logf("skipping golden comparison on %s/%s (recorded on linux/amd64)",
							runtime.GOOS, runtime.GOARCH)
					case res.FingerprintSHA256 != golden:
						t.Errorf("fingerprint diverged from the pre-optimization golden:\n got %s\nwant %s",
							res.FingerprintSHA256, golden)
					}
					continue
				}
				if res.Fingerprint != want {
					t.Fatalf("fingerprint diverged at workers=%d:\n--- workers=1 ---\n%s--- workers=%d ---\n%s",
						workers, want, workers, res.Fingerprint)
				}
			}
		})
	}
}

// TestShardInvariance is the scale-out engine's golden contract:
// shard count, like worker count, never changes results. Every
// (shards, workers) cell of a representative preset slice — the plain
// homogeneous fleet, the heterogeneous-bin fleet, the lifetime
// scenario, the archetype-clone population preset (whose pinned
// shard count the cells deliberately override), and the two
// adaptive-policy presets (whose per-node policy state must fold
// through the shard merge untouched) — must reproduce the recorded
// preset golden byte for byte. Run with -race: the shard loop's
// worker pools are exactly where an ordering bug would race.
func TestShardInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet characterization is slow; skipping in -short")
	}
	for _, name := range []string{"baseline", "hetero-bins", "aging-year", "fleet-100k", "drift-cadence", "ecc-closedloop"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			preset, err := ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			s := preset.Scale(testNodes, testWindows)
			var want string
			for _, shards := range []int{1, 2, 8} {
				for _, workers := range []int{1, 4, 8} {
					cell := s
					cell.Shards = shards
					res, err := RunScenario(cell, 11, workers)
					if err != nil {
						t.Fatalf("shards=%d workers=%d: %v", shards, workers, err)
					}
					if want == "" {
						want = res.Fingerprint
						golden := goldenPresetSHA[s.Name]
						switch {
						case !goldenPlatform():
							t.Logf("skipping golden comparison on %s/%s (recorded on linux/amd64)",
								runtime.GOOS, runtime.GOARCH)
						case res.FingerprintSHA256 != golden:
							t.Errorf("fingerprint diverged from the recorded golden:\n got %s\nwant %s",
								res.FingerprintSHA256, golden)
						}
						continue
					}
					if res.Fingerprint != want {
						t.Fatalf("fingerprint diverged at shards=%d workers=%d:\n--- first cell ---\n%s--- this cell ---\n%s",
							shards, workers, want, res.Fingerprint)
					}
				}
			}
		})
	}
}

// TestDriftZeroMarginEqualsPlainCadence pins the drift gate's
// degenerate case, the acceptance criterion for the policy layer: at
// MarginFrac = 0 every scheduled campaign's drift (aging is monotone,
// so drift >= 0) clears the threshold, the gate always opens, and the
// run must reproduce the plain fixed-cadence schedule exactly — same
// campaigns in the same epochs on every node, and a fingerprint that
// differs from the ungated run ONLY by the policy counter lines the
// nonzero RecharTriggered counter turns on. Stripping those lines
// must give the plain run's fingerprint byte for byte.
func TestDriftZeroMarginEqualsPlainCadence(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet characterization is slow; skipping in -short")
	}
	preset, err := ByName("recharact-1mo")
	if err != nil {
		t.Fatal(err)
	}
	s := preset.Scale(testNodes, testWindows)
	cfg, err := s.FleetConfig(11)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := fleet.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	gated := cfg
	gated.Drift = &fleet.DriftPolicy{MarginFrac: 0}
	drift, err := fleet.Run(gated)
	if err != nil {
		t.Fatal(err)
	}

	if drift.RecharSuppressed != 0 {
		t.Errorf("zero-margin gate suppressed %d campaigns; it must never close", drift.RecharSuppressed)
	}
	if drift.RecharTriggered == 0 {
		t.Error("zero-margin gate recorded no triggered campaigns; the gate never consulted the predictor")
	}
	if drift.Recharacterized != plain.Recharacterized {
		t.Errorf("campaign counts diverged: %d gated vs %d plain", drift.Recharacterized, plain.Recharacterized)
	}
	for i := range plain.PerNode {
		p, d := plain.PerNode[i], drift.PerNode[i]
		if p.Recharacterized != d.Recharacterized {
			t.Errorf("node %s: %d campaigns gated vs %d plain", p.Name, d.Recharacterized, p.Recharacterized)
		}
		for e := range p.Epochs {
			if p.Epochs[e] != d.Epochs[e] {
				t.Errorf("node %s epoch %d trajectory diverged under the zero-margin gate", p.Name, e)
			}
		}
	}

	var stripped strings.Builder
	for _, line := range strings.SplitAfter(drift.Fingerprint(), "\n") {
		if strings.HasPrefix(line, "policy ") || strings.Contains(line, " policy ") {
			continue
		}
		stripped.WriteString(line)
	}
	if stripped.String() != plain.Fingerprint() {
		t.Fatalf("zero-margin drift run is not the plain cadence plus counter lines:\n--- plain ---\n%s--- gated, policy lines stripped ---\n%s",
			plain.Fingerprint(), stripped.String())
	}
}

// TestBaselineEqualsPlainFleet pins the compiler's floor: the
// baseline scenario is exactly the plain homogeneous fleet — same
// stream labels, same ambient defaults — so its fingerprint must
// equal a hand-built fleet.DefaultConfig run.
func TestBaselineEqualsPlainFleet(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet characterization is slow; skipping in -short")
	}
	s := Baseline().Scale(2, 8)
	res, err := RunScenario(s, 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	cfg := fleet.DefaultConfig(2)
	cfg.Windows = 8
	cfg.Seed = 5
	cfg.Mode = s.Mode
	cfg.RiskTarget = s.RiskTarget
	sum, err := fleet.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Fingerprint != sum.Fingerprint() {
		t.Fatalf("baseline scenario diverged from the plain fleet:\n--- scenario ---\n%s--- fleet ---\n%s",
			res.Fingerprint, sum.Fingerprint())
	}
}

// TestCampaignDeterministicAcrossParallelism runs the same small grid
// at two campaign parallelism levels and requires identical reports
// (cell order, aggregates, fingerprints).
func TestCampaignDeterministicAcrossParallelism(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet characterization is slow; skipping in -short")
	}
	grid := Campaign{
		Scenarios: []Scenario{
			Baseline().Scale(2, 8),
			DroopAttack().Scale(2, 8),
		},
		Seeds: []uint64{3, 9},
	}
	run := func(parallel int) Report {
		c := grid
		c.Parallel = parallel
		rep, err := RunCampaign(c)
		if err != nil {
			t.Fatalf("parallel=%d: %v", parallel, err)
		}
		return rep
	}
	seq, par := run(1), run(4)
	if seq.FingerprintSHA256 != par.FingerprintSHA256 {
		t.Fatalf("campaign fingerprint diverged: %s vs %s", seq.FingerprintSHA256, par.FingerprintSHA256)
	}
	for i := range seq.Results {
		if seq.Results[i].Fingerprint != par.Results[i].Fingerprint {
			t.Fatalf("grid cell %d (%s seed %d) diverged across parallelism",
				i, seq.Results[i].Scenario, seq.Results[i].Seed)
		}
	}
}

// TestCampaignCharactShareByteIdentical pins the snapshot cache's
// campaign-level contract: sharing characterization across cells must
// not move a single byte of any cell's fingerprint, must actually
// reuse work (cells at the same seed share their node specs across
// scenarios), and must report its traffic in the Report so perf runs
// are self-describing.
func TestCampaignCharactShareByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet characterization is slow; skipping in -short")
	}
	grid := Campaign{
		Scenarios: []Scenario{
			Baseline().Scale(2, 8),
			ThermalSummer().Scale(2, 8), // differs only in environment: must share
			HeteroBins().Scale(2, 8),    // different silicon: must split per part
		},
		Seeds:    []uint64{3, 9},
		Parallel: 4,
	}
	shared, err := RunCampaign(grid)
	if err != nil {
		t.Fatal(err)
	}
	solo := grid
	solo.DisableCharactShare = true
	unshared, err := RunCampaign(solo)
	if err != nil {
		t.Fatal(err)
	}
	if shared.FingerprintSHA256 != unshared.FingerprintSHA256 {
		t.Fatalf("sharing characterization moved the campaign fingerprint: %s vs %s",
			shared.FingerprintSHA256, unshared.FingerprintSHA256)
	}
	for i := range shared.Results {
		if shared.Results[i].Fingerprint != unshared.Results[i].Fingerprint {
			t.Fatalf("cell %d (%s seed %d) diverged under sharing",
				i, shared.Results[i].Scenario, shared.Results[i].Seed)
		}
	}
	// 3 scenarios × 2 seeds × 2 nodes = 12 characterizations unshared.
	// Shared: per seed, node 0 (i5) + node 1 (i5) are shared by
	// baseline and thermal-summer and node 0 of hetero-bins; node 1 of
	// hetero-bins is the lone i7 — 3 misses per seed, 6 total.
	if got := shared.CharactCacheMisses; got != 6 {
		t.Errorf("want 6 cache misses, got %d", got)
	}
	if got := shared.CharactCacheHits; got != 6 {
		t.Errorf("want 6 cache hits, got %d", got)
	}
	if unshared.CharactCacheHits != 0 || unshared.CharactCacheMisses != 0 {
		t.Errorf("disabled cache reported traffic: %d hits / %d misses",
			unshared.CharactCacheHits, unshared.CharactCacheMisses)
	}
	if shared.EffectiveParallel != grid.EffectiveParallel() {
		t.Errorf("report parallelism %d != campaign's %d", shared.EffectiveParallel, grid.EffectiveParallel())
	}
}

// TestScenarioEffectsObservable checks each scenario lever actually
// reaches the simulation: hetero bins change the per-node part model,
// and a droop attack produces at least as many crashes as the same
// fleet without it.
func TestScenarioEffectsObservable(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet characterization is slow; skipping in -short")
	}
	hetero := HeteroBins().Scale(2, 6)
	res, err := RunScenario(hetero, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	models := map[string]bool{}
	for _, n := range res.Summary.PerNode {
		models[n.Model] = true
	}
	if len(models) < 2 {
		t.Fatalf("hetero-bins fleet has homogeneous models: %v", models)
	}

	attacked := DroopAttack().Scale(2, 16)
	clean := attacked
	clean.Attacks = nil
	resAtt, err := RunScenario(attacked, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	resClean, err := RunScenario(clean, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if resAtt.Summary.Crashes < resClean.Summary.Crashes {
		t.Fatalf("droop attack reduced crashes: %d with attack vs %d without",
			resAtt.Summary.Crashes, resClean.Summary.Crashes)
	}
	if resAtt.Fingerprint == resClean.Fingerprint {
		t.Fatal("attack scenario is indistinguishable from the clean run")
	}
}

// TestScaleKeepsDeclarationsValid scales every preset to several
// (nodes, windows) grids and requires the result to still validate —
// remapped switches, attacks and phases must stay in range.
func TestScaleKeepsDeclarationsValid(t *testing.T) {
	for _, preset := range Presets() {
		for _, size := range [][2]int{{1, 1}, {2, 5}, {4, 16}, {16, 400}} {
			s := preset.Scale(size[0], size[1])
			if err := s.Validate(); err != nil {
				t.Errorf("%s scaled to %v: %v", preset.Name, size, err)
			}
		}
	}
}

// TestValidateRejectsBadDeclarations spot-checks the validator.
func TestValidateRejectsBadDeclarations(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Scenario)
	}{
		{"zero nodes", func(s *Scenario) { s.Nodes = 0 }},
		{"zero windows", func(s *Scenario) { s.Windows = 0 }},
		{"risk out of range", func(s *Scenario) { s.RiskTarget = 1.5 }},
		{"unknown bin", func(s *Scenario) { s.Bins = []string{"z80"} }},
		{"switch window out of range", func(s *Scenario) {
			s.ModeSwitches = []ModeSwitch{{Window: s.Windows, Node: -1, RiskTarget: 0.01}}
		}},
		{"attack node out of range", func(s *Scenario) {
			s.Attacks = []Attack{{Node: s.Nodes, Window: 0, Windows: 1}}
		}},
	}
	for _, c := range cases {
		s := Baseline()
		c.mut(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: Validate accepted the declaration", c.name)
		}
	}
}

// TestByName covers the registry surface.
func TestByName(t *testing.T) {
	names := Names()
	if len(names) < 5 {
		t.Fatalf("want at least 5 presets, got %d: %v", len(names), names)
	}
	for _, n := range names {
		s, err := ByName(n)
		if err != nil {
			t.Fatal(err)
		}
		if s.Name != n {
			t.Fatalf("ByName(%q) returned %q", n, s.Name)
		}
	}
	if _, err := ByName("no-such-scenario"); err == nil {
		t.Fatal("ByName accepted an unknown name")
	}
}

// TestReportJSONRoundTrips checks the report is machine-readable: it
// marshals, unmarshals, and keeps the grid intact.
func TestReportJSONRoundTrips(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet characterization is slow; skipping in -short")
	}
	rep, err := RunCampaign(Campaign{
		Scenarios: []Scenario{Baseline().Scale(2, 4)},
		Seeds:     []uint64{1, 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "\"Fingerprint\":") {
		t.Fatal("full fingerprints leaked into the JSON report")
	}
	var back Report
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("report does not round-trip: %v", err)
	}
	if len(back.Results) != 2 || len(back.Scenarios) != 1 {
		t.Fatalf("round-tripped grid shape wrong: %d results, %d scenarios",
			len(back.Results), len(back.Scenarios))
	}
	if back.FingerprintSHA256 != rep.FingerprintSHA256 {
		t.Fatal("campaign fingerprint changed across the round trip")
	}
}

// TestLifetimeScenarioObservable is the acceptance pin for the
// lifetime axis: an aging-year campaign must show nonzero scheduled
// re-characterizations and a monotone margin-drift trajectory in its
// Report, and the cadence family must order as scheduled (a monthly
// cadence re-characterizes more often than a half-yearly one).
func TestLifetimeScenarioObservable(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet characterization is slow; skipping in -short")
	}
	grid := Campaign{
		Scenarios: []Scenario{AgingYear().Scale(2, 6)},
		Seeds:     []uint64{4},
	}
	grid.Scenarios = append(grid.Scenarios, RecharactCadences()...)
	for i := 1; i < len(grid.Scenarios); i++ {
		grid.Scenarios[i] = grid.Scenarios[i].Scale(2, 6)
	}
	rep, err := RunCampaign(grid)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]ScenarioReport{}
	for _, sr := range rep.Scenarios {
		byName[sr.Scenario] = sr
	}
	aging := byName["aging-year"]
	if aging.Recharacterized == 0 {
		t.Fatal("aging-year report shows zero re-characterizations")
	}
	if aging.MeanFinalAgeShiftMV <= 0 {
		t.Fatal("aging-year report shows no aging drift")
	}
	// Per-node margin trajectories: one row per epoch, monotone drift.
	for _, res := range rep.Results {
		if res.Scenario != "aging-year" {
			continue
		}
		for _, n := range res.Summary.PerNode {
			if len(n.Epochs) != 4 {
				t.Fatalf("aging-year node %s has %d trajectory rows, want 4", n.Name, len(n.Epochs))
			}
			for i := 1; i < len(n.Epochs); i++ {
				if n.Epochs[i].AgeShiftMV < n.Epochs[i-1].AgeShiftMV {
					t.Fatalf("aging-year node %s drift not monotone at epoch %d", n.Name, i)
				}
			}
		}
	}
	if r1, r6 := byName["recharact-1mo"].Recharacterized, byName["recharact-6mo"].Recharacterized; r1 <= r6 {
		t.Fatalf("monthly cadence ran %d campaigns, half-yearly %d; cadence has no effect", r1, r6)
	}
}

// TestCampaignCharactDirSharesAcrossInstances covers the CLI/CI
// cross-process path at the campaign level: a second campaign with a
// fresh cache but the same spill directory must reuse every
// characterization from disk and reproduce the grid byte for byte.
func TestCampaignCharactDirSharesAcrossInstances(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet characterization is slow; skipping in -short")
	}
	grid := Campaign{
		Scenarios:  []Scenario{Baseline().Scale(2, 6), ThermalSummer().Scale(2, 6)},
		Seeds:      []uint64{3},
		CharactDir: t.TempDir(),
	}
	cold, err := RunCampaign(grid)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := RunCampaign(grid)
	if err != nil {
		t.Fatal(err)
	}
	if cold.FingerprintSHA256 != warm.FingerprintSHA256 {
		t.Fatalf("disk-shared campaign diverged: %s vs %s", cold.FingerprintSHA256, warm.FingerprintSHA256)
	}
	if cold.CharactCacheMisses == 0 || cold.CharactDiskHits != 0 {
		t.Fatalf("cold campaign stats unexpected: %d misses, %d disk hits", cold.CharactCacheMisses, cold.CharactDiskHits)
	}
	if warm.CharactDiskHits == 0 || warm.CharactCacheMisses != 0 {
		t.Fatalf("warm campaign did not share across instances: %d misses, %d disk hits",
			warm.CharactCacheMisses, warm.CharactDiskHits)
	}
}

// TestScaleRemapsOnTotalWindowAxis: window-indexed features of a
// lifetime scenario live on the concatenated (total) window axis, and
// Scale must remap them against it — not against the per-epoch
// Windows, which would fold later-epoch features into epoch 0.
func TestScaleRemapsOnTotalWindowAxis(t *testing.T) {
	s := Baseline()
	s.Windows = 60
	s.Lifetime = LifetimeModel{Epochs: 4, GapDays: 30, GapDuty: 0.5}
	// A switch in epoch 2 (total axis: windows 120..179).
	s.ModeSwitches = []ModeSwitch{{Window: 150, Node: -1, Mode: s.Mode, RiskTarget: 0.01}}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	// Same-size rescale is the identity.
	if got := s.Scale(s.Nodes, 60).ModeSwitches[0].Window; got != 150 {
		t.Fatalf("identity rescale moved the switch to window %d", got)
	}
	// Halving per-epoch windows halves the total axis: 150 -> 75,
	// still in epoch 2 of the scaled scenario (60..89).
	half := s.Scale(s.Nodes, 30)
	if got := half.ModeSwitches[0].Window; got != 75 {
		t.Fatalf("halved rescale moved the switch to window %d, want 75", got)
	}
	if err := half.Validate(); err != nil {
		t.Fatal(err)
	}
}
