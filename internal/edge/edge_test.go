package edge

import (
	"math"
	"testing"
	"time"
)

func TestComputeBudget(t *testing.T) {
	s := PaperExample()
	cloudBudget, err := ComputeBudget(s, DefaultCloud())
	if err != nil {
		t.Fatal(err)
	}
	if cloudBudget != 100*time.Millisecond {
		t.Fatalf("cloud budget = %v, want 100ms (half of 200ms)", cloudBudget)
	}
	edgeBudget, err := ComputeBudget(s, DefaultEdge())
	if err != nil {
		t.Fatal(err)
	}
	if edgeBudget != 196*time.Millisecond {
		t.Fatalf("edge budget = %v", edgeBudget)
	}
	if _, err := ComputeBudget(s, Placement{Name: "mars", RTT: time.Second}); err == nil {
		t.Fatal("negative budget accepted")
	}
}

func TestMinFreqScale(t *testing.T) {
	s := PaperExample()
	cloudScale, err := MinFreqScale(s, DefaultCloud())
	if err != nil {
		t.Fatal(err)
	}
	if cloudScale < 0.9 || cloudScale > 1 {
		t.Fatalf("cloud scale = %v, should be near peak", cloudScale)
	}
	edgeScale, err := MinFreqScale(s, DefaultEdge())
	if err != nil {
		t.Fatal(err)
	}
	if edgeScale < 0.45 || edgeScale > 0.55 {
		t.Fatalf("edge scale = %v, paper's example runs at ~50%%", edgeScale)
	}
	if _, err := MinFreqScale(Service{Name: "x", TargetLatency: time.Second}, DefaultEdge()); err == nil {
		t.Fatal("zero-work service accepted")
	}
	heavy := Service{Name: "heavy", TargetLatency: 200 * time.Millisecond, WorkAtPeak: 150 * time.Millisecond}
	if _, err := MinFreqScale(heavy, DefaultCloud()); err == nil {
		t.Fatal("infeasible cloud placement accepted")
	}
}

func TestVoltageScaleCalibration(t *testing.T) {
	// Paper: 50% frequency pairs with 30% less voltage.
	if got := VoltageScaleFor(0.5); math.Abs(got-0.7) > 1e-12 {
		t.Fatalf("voltage scale at 0.5 = %v, want 0.7", got)
	}
	if VoltageScaleFor(1) != 1 {
		t.Fatal("peak frequency needs full voltage")
	}
	if VoltageScaleFor(1.5) != 1 {
		t.Fatal("scale must clamp at 1")
	}
	if VoltageScaleFor(0.01) < 0.4 {
		t.Fatal("voltage floor violated")
	}
	// Monotone.
	prev := 0.0
	for f := 0.1; f <= 1.0; f += 0.05 {
		v := VoltageScaleFor(f)
		if v < prev {
			t.Fatalf("voltage scale not monotone at %v", f)
		}
		prev = v
	}
}

// TestSection6DComparison reproduces the paper's worked example:
// running at the Edge at ~50% frequency and ~70% voltage yields ~75%
// less power and ~50% less energy than the cloud placement.
func TestSection6DComparison(t *testing.T) {
	c, err := Compare(PaperExample(), DefaultCloud(), DefaultEdge())
	if err != nil {
		t.Fatal(err)
	}
	if !c.CloudFeasible || !c.EdgeFeasible {
		t.Fatalf("both placements should be feasible: %+v", c)
	}
	if c.EdgePowerScale > 0.30 || c.EdgePowerScale < 0.18 {
		t.Errorf("edge power scale = %.3f, paper says ~0.25 (75%% less)", c.EdgePowerScale)
	}
	if c.EdgeEnergyScale > 0.58 || c.EdgeEnergyScale < 0.42 {
		t.Errorf("edge energy scale = %.3f, paper says ~0.5 (50%% less)", c.EdgeEnergyScale)
	}
	if c.EdgeFreqScale >= c.CloudFreqScale {
		t.Error("edge should run slower than cloud")
	}
}

func TestCompareCloudInfeasible(t *testing.T) {
	heavy := Service{Name: "heavy", TargetLatency: 200 * time.Millisecond, WorkAtPeak: 150 * time.Millisecond}
	c, err := Compare(heavy, DefaultCloud(), DefaultEdge())
	if err != nil {
		t.Fatal(err)
	}
	if c.CloudFeasible {
		t.Fatal("cloud should be infeasible for 150ms work with 100ms budget")
	}
	if !c.EdgeFeasible {
		t.Fatal("edge should host the heavy service")
	}
	if c.CloudFreqScale != 1 {
		t.Fatal("infeasible cloud should compare against peak")
	}
}

func TestCompareEdgeInfeasible(t *testing.T) {
	impossible := Service{Name: "impossible", TargetLatency: 50 * time.Millisecond, WorkAtPeak: 80 * time.Millisecond}
	if _, err := Compare(impossible, DefaultCloud(), DefaultEdge()); err == nil {
		t.Fatal("edge-infeasible service accepted")
	}
}
