// Package edge implements the Section 6.D edge-versus-cloud analysis:
// a latency-sensitive IoT service with a fixed end-to-end budget can
// spend its network savings on slower, lower-voltage execution when it
// runs at the Edge. The paper's worked example: a 200 ms service that
// loses half its budget to the cloud round trip can, at the Edge, run
// at 50% of peak frequency with 30% less voltage — 50% less energy and
// 75% less power for the same work.
package edge

import (
	"errors"
	"fmt"
	"time"

	"uniserver/internal/power"
)

// Service describes a latency-sensitive request pipeline.
type Service struct {
	Name string
	// TargetLatency is the end-to-end deadline (paper: 200 ms).
	TargetLatency time.Duration
	// WorkAtPeak is the pure processing time at peak frequency.
	WorkAtPeak time.Duration
}

// Placement describes where the service runs and what the network
// costs there.
type Placement struct {
	Name string
	// RTT is the network round-trip between the data source and the
	// compute (paper: a cloud round trip eats ~half of a 200 ms
	// budget; the Edge eliminates most of it).
	RTT time.Duration
}

// DefaultCloud returns the paper's cloud placement: ~100 ms of the
// 200 ms budget spent in the public network.
func DefaultCloud() Placement { return Placement{Name: "cloud", RTT: 100 * time.Millisecond} }

// DefaultEdge returns an on-premises Edge placement.
func DefaultEdge() Placement { return Placement{Name: "edge", RTT: 4 * time.Millisecond} }

// ComputeBudget returns the time available for processing at the
// placement: target latency minus network RTT.
func ComputeBudget(s Service, p Placement) (time.Duration, error) {
	b := s.TargetLatency - p.RTT
	if b <= 0 {
		return 0, fmt.Errorf("edge: placement %q leaves no compute budget for %q", p.Name, s.Name)
	}
	return b, nil
}

// MinFreqScale returns the smallest frequency scale (relative to peak)
// that still finishes the work inside the placement's compute budget.
// Runtime stretches inversely with frequency.
func MinFreqScale(s Service, p Placement) (float64, error) {
	if s.WorkAtPeak <= 0 {
		return 0, errors.New("edge: service has no work")
	}
	budget, err := ComputeBudget(s, p)
	if err != nil {
		return 0, err
	}
	scale := float64(s.WorkAtPeak) / float64(budget)
	if scale > 1 {
		return 0, fmt.Errorf("edge: %q cannot meet its deadline at %q even at peak frequency",
			s.Name, p.Name)
	}
	return scale, nil
}

// VoltageScaleFor returns a voltage scale commensurate with a
// frequency scale on the linearized Vf characteristic: slowing to
// scale f permits roughly voltage 0.4 + 0.6*f of nominal (calibrated
// so the paper's 50% frequency maps to 70% voltage).
func VoltageScaleFor(freqScale float64) float64 {
	if freqScale >= 1 {
		return 1
	}
	v := 0.4 + 0.6*freqScale
	if v < 0.5 {
		v = 0.5
	}
	return v
}

// Comparison reports the edge-versus-cloud outcome for one service.
type Comparison struct {
	Service Service
	Cloud   Placement
	Edge    Placement
	// CloudFreqScale/EdgeFreqScale are the minimum frequency scales
	// that meet the deadline at each placement.
	CloudFreqScale, EdgeFreqScale float64
	// EdgePowerScale/EdgeEnergyScale are the edge's power and energy
	// relative to running the same service at the cloud's required
	// operating point.
	EdgePowerScale, EdgeEnergyScale float64
	// Feasible placements.
	CloudFeasible, EdgeFeasible bool
}

// Compare evaluates the service at both placements. Power and energy
// scales use the CMOS arithmetic of the power package, relative to the
// cloud's required operating point.
func Compare(s Service, cloud, edge Placement) (Comparison, error) {
	c := Comparison{Service: s, Cloud: cloud, Edge: edge}
	cloudScale, errCloud := MinFreqScale(s, cloud)
	edgeScale, errEdge := MinFreqScale(s, edge)
	c.CloudFeasible = errCloud == nil
	c.EdgeFeasible = errEdge == nil
	if errEdge != nil {
		return c, fmt.Errorf("edge: service infeasible even at the edge: %w", errEdge)
	}
	c.EdgeFreqScale = edgeScale
	if c.CloudFeasible {
		c.CloudFreqScale = cloudScale
	} else {
		// The cloud cannot host the service at all; compare against
		// hypothetical peak-frequency execution.
		c.CloudFreqScale = 1
	}
	relFreq := c.EdgeFreqScale / c.CloudFreqScale
	relVolt := VoltageScaleFor(c.EdgeFreqScale) / VoltageScaleFor(c.CloudFreqScale)
	c.EdgePowerScale = power.DynamicScalingFactor(relVolt, relFreq)
	c.EdgeEnergyScale = power.EnergyScalingFactor(relVolt, relFreq)
	return c, nil
}

// PaperExample returns the worked example of Section 6.D: a 200 ms
// IoT service whose processing takes ~95 ms at peak frequency, so the
// cloud placement (100 ms RTT) forces nearly peak frequency while the
// Edge runs at about half frequency with ~30% less voltage.
func PaperExample() Service {
	return Service{
		Name:          "iot-200ms",
		TargetLatency: 200 * time.Millisecond,
		WorkAtPeak:    95 * time.Millisecond,
	}
}
