package edge_test

import (
	"fmt"

	"uniserver/internal/edge"
)

// The paper's Section 6.D worked example: the Edge placement runs the
// 200 ms IoT service at roughly half frequency and 70% voltage, for
// ~75% less power and ~50% less energy than the cloud placement.
func ExampleCompare() {
	c, _ := edge.Compare(edge.PaperExample(), edge.DefaultCloud(), edge.DefaultEdge())
	fmt.Printf("edge frequency: %.0f%%\n", 100*c.EdgeFreqScale/c.CloudFreqScale)
	fmt.Printf("power saved:  %.0f%%\n", (1-c.EdgePowerScale)*100)
	fmt.Printf("energy saved: %.0f%%\n", (1-c.EdgeEnergyScale)*100)
	// Output:
	// edge frequency: 51%
	// power saved:  74%
	// energy saved: 49%
}
