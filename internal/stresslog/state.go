package stresslog

import (
	"time"

	"uniserver/internal/cpu"
	"uniserver/internal/dram"
	"uniserver/internal/healthlog"
	"uniserver/internal/power"
	"uniserver/internal/stress"
	"uniserver/internal/telemetry"
)

// DaemonState is the daemon's serializable state: the periodic
// schedule position, queued on-demand triggers, the published-margin
// history, and the evolved-virus archive. The wired machine, memory
// system and HealthLog are identities, not state — the restorer
// passes its own reconstructed instances, exactly as Clone does.
type DaemonState struct {
	Period  time.Duration
	LastRun time.Time
	Pending []healthlog.TriggerReason
	History []MarginVector
	Archive []stress.ArchiveEntry
}

// ExportState captures the daemon's state for serialization. The
// margin vectors' EOP tables serialize through vfr's versioned
// format (see vfr.EOPTable.GobEncode).
func (d *Daemon) ExportState() DaemonState {
	d.mu.Lock()
	defer d.mu.Unlock()
	st := DaemonState{
		Period:  d.period,
		LastRun: d.lastRun,
		Pending: append([]healthlog.TriggerReason(nil), d.pending...),
		Archive: d.archive.Entries(),
	}
	st.History = make([]MarginVector, len(d.history))
	for i, vec := range d.history {
		if vec.Table != nil {
			vec.Table = vec.Table.Clone()
		}
		st.History[i] = vec
	}
	return st
}

// NewFromState reassembles a daemon from ExportState's capture,
// rewired to the given clock, machine under test, memory system and
// HealthLog. The caller re-hooks the trigger handler into its
// HealthLog, as New's wiring in core does.
func NewFromState(st DaemonState, clock *telemetry.Clock, m *cpu.Machine, mem *dram.MemorySystem,
	health *healthlog.Daemon, refresh power.DRAMRefreshModel) (*Daemon, error) {
	d := New(clock, m, mem, health, refresh, st.Period)
	d.lastRun = st.LastRun
	d.pending = append([]healthlog.TriggerReason(nil), st.Pending...)
	d.history = append([]MarginVector(nil), st.History...)
	for _, e := range st.Archive {
		if err := d.archive.Put(e); err != nil {
			return nil, err
		}
	}
	return d, nil
}
