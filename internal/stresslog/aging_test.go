package stresslog

import (
	"testing"
	"time"

	"uniserver/internal/rng"
	"uniserver/internal/silicon"
)

// TestRecharacterizationTracksAging is the Section 3.D story: margins
// published at deployment erode as the silicon ages, and the periodic
// StressLog campaign publishes updated (less aggressive) safe points
// that restore the cushion.
func TestRecharacterizationTracksAging(t *testing.T) {
	d, clock, _ := testRig(t, 21)

	fresh, err := d.RunCampaign(quickParams(), rng.New(21))
	if err != nil {
		t.Fatal(err)
	}
	freshMargin, err := fresh.Table.Lookup("i5-4200U/core0")
	if err != nil {
		t.Fatal(err)
	}

	// Six months of heavy service.
	served := 180 * 24 * time.Hour
	clock.Advance(served)
	d.machine.Chip.Age(silicon.DefaultAgingModel(), served, 0.9)
	if !d.DuePeriodic() {
		t.Fatal("periodic campaign should be due after six months")
	}

	aged, err := d.RunCampaign(quickParams(), rng.New(22))
	if err != nil {
		t.Fatal(err)
	}
	agedMargin, err := aged.Table.Lookup("i5-4200U/core0")
	if err != nil {
		t.Fatal(err)
	}

	if agedMargin.Safe.VoltageMV <= freshMargin.Safe.VoltageMV {
		t.Fatalf("aged campaign published %d mV, fresh published %d mV; aging must tighten margins",
			agedMargin.Safe.VoltageMV, freshMargin.Safe.VoltageMV)
	}
	// The drift should be small (a few VID steps), not a collapse.
	drift := agedMargin.Safe.VoltageMV - freshMargin.Safe.VoltageMV
	if drift > 30 {
		t.Fatalf("margin drift %d mV implausibly large", drift)
	}

	// The stale margin now sits inside the aged crash region's cushion:
	// running at the *fresh* safe point after aging leaves less cushion
	// than the campaign guarantees.
	agedCushion := freshMargin.Safe.VoltageMV - agedMargin.CrashPoint.VoltageMV
	if agedCushion >= freshMargin.CushionMV {
		t.Fatalf("aging did not erode the cushion: %d mV left of %d", agedCushion, freshMargin.CushionMV)
	}
}
