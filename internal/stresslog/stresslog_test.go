package stresslog

import (
	"testing"
	"time"

	"uniserver/internal/cpu"
	"uniserver/internal/dram"
	"uniserver/internal/healthlog"
	"uniserver/internal/power"
	"uniserver/internal/rng"
	"uniserver/internal/telemetry"
	"uniserver/internal/vfr"
)

func testRig(t *testing.T, seed uint64) (*Daemon, *telemetry.Clock, *healthlog.Daemon) {
	t.Helper()
	clock := telemetry.NewClock(time.Date(2017, 2, 1, 0, 0, 0, 0, time.UTC))
	machine := cpu.NewMachine(cpu.PartI5_4200U(), seed)
	cfg := dram.Config{Channels: 2, DIMMsPerChannel: 1, DIMMBytes: 8 << 30, DeviceGb: 2, TempC: 45}
	mem, err := dram.New(cfg, dram.DefaultRetentionModel(), rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	health := healthlog.New(healthlog.DefaultConfig(), clock, nil)
	refresh := power.DRAMRefreshModel{DeviceGb: 2, TotalMemW: 10}
	d := New(clock, machine, mem, health, refresh, 60*24*time.Hour) // ~2 months
	return d, clock, health
}

func quickParams() TargetParams {
	p := DefaultTargetParams()
	p.UseViruses = false // skip GA for speed in most tests
	p.Runs = 2
	p.DRAMPasses = 1
	return p
}

func TestParamValidation(t *testing.T) {
	d, _, _ := testRig(t, 1)
	bad := []TargetParams{
		{Runs: 0, DRAMPasses: 1},
		{Runs: 1, CushionMV: -1, DRAMPasses: 1},
		{Runs: 1, RefreshDerate: 2, DRAMPasses: 1},
		{Runs: 1, DRAMPasses: 0},
	}
	for i, p := range bad {
		if _, err := d.RunCampaign(p, rng.New(1)); err == nil {
			t.Errorf("params %d accepted: %+v", i, p)
		}
	}
}

func TestCampaignPublishesMargins(t *testing.T) {
	d, _, _ := testRig(t, 3)
	vec, err := d.RunCampaign(quickParams(), rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	// Per-core CPU margins plus the DRAM margin.
	comps := vec.Table.Components()
	if len(comps) != 3 { // 2 cores + dram
		t.Fatalf("components = %v", comps)
	}
	for _, c := range []string{"i5-4200U/core0", "i5-4200U/core1"} {
		m, err := vec.Table.Lookup(c)
		if err != nil {
			t.Fatal(err)
		}
		if m.Safe.VoltageMV >= m.Nominal.VoltageMV {
			t.Errorf("%s: no margin recovered", c)
		}
		if m.Safe.VoltageMV != m.CrashPoint.VoltageMV+cpu.SafeCushionMV {
			t.Errorf("%s: cushion not applied", c)
		}
	}
	if vec.SweepsRun == 0 || vec.CrashesSeen != vec.SweepsRun {
		t.Errorf("sweep bookkeeping wrong: %+v", vec)
	}
	if vec.ECCEvents == 0 {
		t.Error("i5 campaign should observe cache ECC events")
	}
}

func TestCampaignDRAMMargin(t *testing.T) {
	d, _, _ := testRig(t, 5)
	vec, err := d.RunCampaign(quickParams(), rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	if vec.ZeroErrorRefresh < 1500*time.Millisecond {
		t.Errorf("zero-error refresh = %v, paper saw >= 1.5s", vec.ZeroErrorRefresh)
	}
	if vec.SafeRefresh < vfr.NominalRefresh {
		t.Errorf("published refresh below nominal: %v", vec.SafeRefresh)
	}
	if vec.SafeRefresh > vec.ZeroErrorRefresh {
		t.Errorf("published refresh %v exceeds zero-error %v", vec.SafeRefresh, vec.ZeroErrorRefresh)
	}
	if vec.RefreshSavingsPct <= 0 {
		t.Errorf("refresh savings = %v, want positive", vec.RefreshSavingsPct)
	}
	m, err := vec.Table.Lookup("dram/relaxed")
	if err != nil {
		t.Fatal(err)
	}
	if m.Safe.Refresh != vec.SafeRefresh {
		t.Error("dram margin not in table")
	}
}

func TestCampaignFeedsHealthLog(t *testing.T) {
	d, _, health := testRig(t, 7)
	if _, err := d.RunCampaign(quickParams(), rng.New(7)); err != nil {
		t.Fatal(err)
	}
	stats := health.Stats()
	if stats.Recorded == 0 {
		t.Fatal("campaign recorded nothing to HealthLog")
	}
	if stats.Crashes == 0 {
		t.Fatal("campaign crashes not recorded")
	}
	vecs := health.Query("i5-4200U/core0", time.Time{})
	if len(vecs) == 0 {
		t.Fatal("no vectors for core0")
	}
	sawCrash := false
	for _, v := range vecs {
		if v.HasCrash() {
			sawCrash = true
		}
	}
	if !sawCrash {
		t.Fatal("no crash events in core0 history")
	}
}

func TestOfflineDuringCampaign(t *testing.T) {
	d, _, _ := testRig(t, 9)
	if !d.Online() {
		t.Fatal("machine should start online")
	}
	// Hook a HealthLog listener that observes the online flag: during
	// the campaign the machine must be offline.
	sawOffline := false
	d.health.Subscribe(func(telemetry.InfoVector) {
		if !d.Online() {
			sawOffline = true
		}
	})
	if _, err := d.RunCampaign(quickParams(), rng.New(9)); err != nil {
		t.Fatal(err)
	}
	if !sawOffline {
		t.Fatal("machine was never offline during campaign")
	}
	if !d.Online() {
		t.Fatal("machine not restored online")
	}
}

func TestPeriodicScheduling(t *testing.T) {
	d, clock, _ := testRig(t, 11)
	if !d.DuePeriodic() {
		t.Fatal("never-characterized machine should be due")
	}
	if _, err := d.RunCampaign(quickParams(), rng.New(11)); err != nil {
		t.Fatal(err)
	}
	if d.DuePeriodic() {
		t.Fatal("freshly characterized machine should not be due")
	}
	clock.Advance(61 * 24 * time.Hour)
	if !d.DuePeriodic() {
		t.Fatal("machine should be due after the period elapses")
	}
}

func TestTriggerQueue(t *testing.T) {
	d, _, health := testRig(t, 13)
	health.OnStressTrigger(d.TriggerHandler())
	// Flood one component with correctable errors to cross the
	// threshold (default 10 per hour).
	for i := 0; i < 12; i++ {
		health.Record(telemetry.InfoVector{
			Component: "i5-4200U/core0",
			Errors: []telemetry.ErrorEvent{
				{Kind: telemetry.ErrCorrectable, Component: "i5-4200U/core0", Count: 1},
			},
		})
	}
	if len(d.Pending()) == 0 {
		t.Fatal("error flood did not queue a stress request")
	}
	// Running the campaign clears pending requests.
	if _, err := d.RunCampaign(quickParams(), rng.New(13)); err != nil {
		t.Fatal(err)
	}
	if len(d.Pending()) != 0 {
		t.Fatal("pending requests not cleared after campaign")
	}
}

func TestHistoryAccumulates(t *testing.T) {
	d, _, _ := testRig(t, 15)
	if _, err := d.RunCampaign(quickParams(), rng.New(15)); err != nil {
		t.Fatal(err)
	}
	if _, err := d.RunCampaign(quickParams(), rng.New(16)); err != nil {
		t.Fatal(err)
	}
	h := d.History()
	if len(h) != 2 {
		t.Fatalf("history = %d entries", len(h))
	}
	if !h[1].Time.After(h[0].Time) {
		t.Fatal("history timestamps not increasing")
	}
}

func TestCampaignWithViruses(t *testing.T) {
	d, _, _ := testRig(t, 17)
	p := quickParams()
	p.UseViruses = true
	p.Runs = 1
	vec, err := d.RunCampaign(p, rng.New(17))
	if err != nil {
		t.Fatal(err)
	}
	// Virus-driven campaign must not publish a less safe (lower)
	// voltage than a benchmark-only campaign on an identical machine:
	// viruses only tighten margins.
	d2, _, _ := testRig(t, 17)
	p2 := quickParams()
	p2.Runs = 1
	vec2, err := d2.RunCampaign(p2, rng.New(17))
	if err != nil {
		t.Fatal(err)
	}
	m1, _ := vec.Table.Lookup("i5-4200U/core0")
	m2, _ := vec2.Table.Lookup("i5-4200U/core0")
	if m1.Safe.VoltageMV < m2.Safe.VoltageMV {
		t.Errorf("virus campaign published lower (less safe) voltage %d than bench-only %d",
			m1.Safe.VoltageMV, m2.Safe.VoltageMV)
	}
}

func TestConcurrentCampaignRejected(t *testing.T) {
	d, _, _ := testRig(t, 19)
	release := make(chan struct{})
	started := make(chan struct{})
	var once bool
	d.health.Subscribe(func(telemetry.InfoVector) {
		if !once {
			once = true
			close(started)
			<-release
		}
	})
	errCh := make(chan error, 1)
	go func() {
		_, err := d.RunCampaign(quickParams(), rng.New(19))
		errCh <- err
	}()
	<-started
	if _, err := d.RunCampaign(quickParams(), rng.New(20)); err == nil {
		t.Error("second concurrent campaign accepted")
	}
	close(release)
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}
}
