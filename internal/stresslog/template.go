package stresslog

import (
	"time"

	"uniserver/internal/cpu"
	"uniserver/internal/dram"
	"uniserver/internal/healthlog"
	"uniserver/internal/power"
	"uniserver/internal/stress"
	"uniserver/internal/telemetry"
)

// Compiled is an immutable image of a Daemon's characterization state:
// the schedule position, pending triggers, published-margin history
// and virus archive, detached from the source daemon so stamping needs
// no locks on shared state. History tables and the archive are
// referenced, not copied — a Compiled must only be built from a daemon
// that will never run again (a restore template's proto), which is
// what makes the shared references safe under concurrent stamps.
type Compiled struct {
	refresh power.DRAMRefreshModel
	period  time.Duration
	online  bool
	lastRun time.Time
	pending []healthlog.TriggerReason
	history []MarginVector // Table pointers shared with the source
	archive *stress.Archive
}

// Compile flattens the daemon into its immutable template image.
func (d *Daemon) Compile() *Compiled {
	d.mu.Lock()
	defer d.mu.Unlock()
	return &Compiled{
		refresh: d.refresh,
		period:  d.period,
		online:  d.online,
		lastRun: d.lastRun,
		pending: append([]healthlog.TriggerReason(nil), d.pending...),
		history: append([]MarginVector(nil), d.history...),
		archive: d.archive,
	}
}

// StampInto overwrites d with the compiled image, rebinding it to the
// arena's clock, machine, memory and health daemon. History tables are
// deep-copied into d's existing table storage (CopyFrom reuses map
// buckets), and the archive likewise, so a re-characterization on the
// stamped daemon evolves independently of the template. The caller
// owns d exclusively and re-hooks TriggerHandler, as after Clone.
func (c *Compiled) StampInto(d *Daemon, clock *telemetry.Clock, m *cpu.Machine,
	mem *dram.MemorySystem, health *healthlog.Daemon) {
	d.clock = clock
	d.machine = m
	d.mem = mem
	d.health = health
	d.refresh = c.refresh
	d.period = c.period
	d.online = c.online
	d.lastRun = c.lastRun
	d.pending = append(d.pending[:0], c.pending...)
	if d.archive == nil {
		d.archive = stress.NewArchive()
	}
	d.archive.CopyFrom(c.archive)

	old := d.history
	d.history = d.history[:0]
	for i, vec := range c.history {
		if vec.Table != nil {
			if i < len(old) && old[i].Table != nil {
				t := old[i].Table
				t.CopyFrom(vec.Table)
				vec.Table = t
			} else {
				vec.Table = vec.Table.Clone()
			}
		}
		d.history = append(d.history, vec)
	}
}
