package stresslog

import (
	"testing"

	"uniserver/internal/rng"
)

// TestVirusArchiveReusedAcrossCampaigns: the first virus-enabled
// campaign evolves and archives the voltage-noise virus; subsequent
// campaigns reuse it instead of re-evolving.
func TestVirusArchiveReusedAcrossCampaigns(t *testing.T) {
	d, _, _ := testRig(t, 25)
	p := quickParams()
	p.UseViruses = true
	p.Runs = 1

	if d.Archive().Len() != 0 {
		t.Fatal("archive not empty at start")
	}
	if _, err := d.RunCampaign(p, rng.New(25)); err != nil {
		t.Fatal(err)
	}
	if d.Archive().Len() != 1 {
		t.Fatalf("archive len = %d after first campaign", d.Archive().Len())
	}
	first := d.Archive().Entries()[0]

	if _, err := d.RunCampaign(p, rng.New(26)); err != nil {
		t.Fatal(err)
	}
	if d.Archive().Len() != 1 {
		t.Fatalf("second campaign re-evolved: archive len = %d", d.Archive().Len())
	}
	if d.Archive().Entries()[0] != first {
		t.Fatal("archived virus mutated across campaigns")
	}
	if first.Machine != "i5-4200U" {
		t.Fatalf("entry machine = %q", first.Machine)
	}
}
