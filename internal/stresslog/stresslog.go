// Package stresslog implements the StressLog monitor of Section 3.D:
// the mechanism that takes a machine offline, stress-tests it with the
// workload suite (real benchmarks plus diagnostic viruses), and
// produces the new safe V-F-R operating margins as an output vector
// for the higher system layers.
//
// The daemon runs in two regimes, as in the paper:
//
//   - periodically over the machine's lifetime ("e.g. every 2-3
//     months") to track aging, and
//   - on demand, triggered by higher layers when the HealthLog
//     observes erratic behaviour (its correctable-error threshold).
//
// While a campaign runs, the HealthLog records the system events the
// campaign provokes (errors, sensor values, performance counters), and
// the StressLog wraps the needed information into the margin vector it
// hands upward.
package stresslog

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"uniserver/internal/cpu"
	"uniserver/internal/dram"
	"uniserver/internal/healthlog"
	"uniserver/internal/power"
	"uniserver/internal/rng"
	"uniserver/internal/stress"
	"uniserver/internal/telemetry"
	"uniserver/internal/vfr"
)

// TargetParams are the "input stress target parameters from the higher
// system layers" that shape a campaign.
type TargetParams struct {
	// Runs is the number of consecutive sweeps per (core, benchmark).
	Runs int
	// CushionMV is the voltage cushion added above the worst observed
	// crash point before publishing.
	CushionMV int
	// RefreshIntervals is the DRAM sweep grid; empty uses the default.
	RefreshIntervals []time.Duration
	// RefreshDerate scales the longest error-free interval before
	// publishing (0 < derate <= 1); 0 uses the default 0.5.
	RefreshDerate float64
	// UseViruses includes GA/hand-coded stress viruses in the suite.
	UseViruses bool
	// DRAMPasses is the number of pattern-test passes per interval.
	DRAMPasses int
}

// DefaultTargetParams mirrors the paper's methodology: 3 consecutive
// runs, a cushion covering the ECC-onset window, a refresh sweep from
// nominal to 5 s, and viruses enabled.
func DefaultTargetParams() TargetParams {
	return TargetParams{
		Runs:      3,
		CushionMV: cpu.SafeCushionMV,
		RefreshIntervals: []time.Duration{
			64 * time.Millisecond, 128 * time.Millisecond, 256 * time.Millisecond,
			512 * time.Millisecond, time.Second, 1500 * time.Millisecond,
			2 * time.Second, 3 * time.Second, 4 * time.Second, 5 * time.Second,
		},
		RefreshDerate: 0.5,
		UseViruses:    true,
		DRAMPasses:    2,
	}
}

func (p TargetParams) validate() error {
	if p.Runs <= 0 {
		return errors.New("stresslog: Runs must be positive")
	}
	if p.CushionMV < 0 {
		return errors.New("stresslog: negative cushion")
	}
	if p.RefreshDerate < 0 || p.RefreshDerate > 1 {
		return errors.New("stresslog: RefreshDerate outside (0,1]")
	}
	if p.DRAMPasses <= 0 {
		return errors.New("stresslog: DRAMPasses must be positive")
	}
	return nil
}

// MarginVector is the output vector containing the new safe system
// V-F-R margins suggested to the software.
type MarginVector struct {
	Time time.Time
	// Table holds per-core safe margins plus the DRAM margin.
	Table *vfr.EOPTable
	// SafeRefresh is the published relaxed refresh interval for
	// non-reliable domains.
	SafeRefresh time.Duration
	// ZeroErrorRefresh is the longest interval observed error-free.
	ZeroErrorRefresh time.Duration
	// RefreshSavingsPct is the projected memory-power saving at
	// SafeRefresh versus nominal.
	RefreshSavingsPct float64
	// Campaign statistics.
	SweepsRun   int
	CrashesSeen int
	ECCEvents   int
}

// Daemon is the StressLog monitor.
type Daemon struct {
	clock   *telemetry.Clock
	machine *cpu.Machine
	mem     *dram.MemorySystem
	health  *healthlog.Daemon
	refresh power.DRAMRefreshModel
	period  time.Duration

	mu      sync.Mutex
	online  bool
	lastRun time.Time
	pending []healthlog.TriggerReason
	history []MarginVector
	archive *stress.Archive
}

// New wires a StressLog daemon to the machine under test, the memory
// system, the HealthLog (which records events during campaigns) and
// the periodic re-characterization interval (the paper suggests every
// 2-3 months; pass that duration here).
func New(clock *telemetry.Clock, m *cpu.Machine, mem *dram.MemorySystem,
	health *healthlog.Daemon, refresh power.DRAMRefreshModel, period time.Duration) *Daemon {
	d := &Daemon{
		clock:   clock,
		machine: m,
		mem:     mem,
		health:  health,
		refresh: refresh,
		period:  period,
		online:  true,
		archive: stress.NewArchive(),
	}
	return d
}

// Archive exposes the daemon's persistent virus library (evolved
// viruses are stored on first use and reused by later campaigns).
func (d *Daemon) Archive() *stress.Archive { return d.archive }

// Clone returns a deep copy of the daemon rewired to the given clock,
// machine under test, memory system and HealthLog (normally the
// corresponding clones of the originals): the periodic schedule
// position, pending triggers, published-margin history (each vector's
// EOP table deep-copied) and the virus archive all carry over, so a
// re-characterization on the clone replays exactly as it would have
// on the original. The caller re-hooks the clone's TriggerHandler into
// its HealthLog, as New's wiring in core does.
func (d *Daemon) Clone(clock *telemetry.Clock, m *cpu.Machine, mem *dram.MemorySystem,
	health *healthlog.Daemon) *Daemon {
	d.mu.Lock()
	defer d.mu.Unlock()
	c := &Daemon{
		clock:   clock,
		machine: m,
		mem:     mem,
		health:  health,
		refresh: d.refresh,
		period:  d.period,
		online:  d.online,
		lastRun: d.lastRun,
		pending: append([]healthlog.TriggerReason(nil), d.pending...),
		archive: d.archive.Clone(),
	}
	c.history = make([]MarginVector, len(d.history))
	for i, vec := range d.history {
		if vec.Table != nil {
			vec.Table = vec.Table.Clone()
		}
		c.history[i] = vec
	}
	return c
}

// TriggerHandler returns the callback higher layers hook into
// healthlog.OnStressTrigger: it queues an on-demand campaign request.
func (d *Daemon) TriggerHandler() func(healthlog.TriggerReason) {
	return func(r healthlog.TriggerReason) {
		d.mu.Lock()
		defer d.mu.Unlock()
		d.pending = append(d.pending, r)
	}
}

// Pending returns the queued on-demand trigger reasons.
func (d *Daemon) Pending() []healthlog.TriggerReason {
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]healthlog.TriggerReason(nil), d.pending...)
}

// Online reports whether the machine is serving load (true) or taken
// offline for a stress campaign (false).
func (d *Daemon) Online() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.online
}

// History returns the published margin vectors, oldest first.
func (d *Daemon) History() []MarginVector {
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]MarginVector(nil), d.history...)
}

// DuePeriodic reports whether the periodic re-characterization is due.
func (d *Daemon) DuePeriodic() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.clock.Now().Sub(d.lastRun) >= d.period
}

// Period returns the current periodic re-characterization interval.
func (d *Daemon) Period() time.Duration {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.period
}

// SetPeriod retargets the periodic re-characterization cadence — the
// paper's "every 2-3 months" dial, which lifetime scenarios sweep to
// compare 1/3/6-month schedules. Non-positive values are ignored.
func (d *Daemon) SetPeriod(p time.Duration) {
	if p <= 0 {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.period = p
}

// SkipPeriodic consumes the current periodic slot without running a
// campaign: lastRun advances to now, so DuePeriodic stays false until
// a full period elapses again. This is how a drift policy declines a
// scheduled campaign — the skipped slot waits for the next cadence
// tick instead of re-arming on every window.
func (d *Daemon) SkipPeriodic() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.lastRun = d.clock.Now()
}

// LastRun returns when the last campaign published its margin vector
// (the zero time before any campaign has run).
func (d *Daemon) LastRun() time.Time {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.lastRun
}

// RunCampaign takes the machine offline, executes the stress suite on
// every core, sweeps the DRAM refresh grid, publishes the resulting
// margin vector, and brings the machine back online.
func (d *Daemon) RunCampaign(params TargetParams, src *rng.Source) (MarginVector, error) {
	if err := params.validate(); err != nil {
		return MarginVector{}, err
	}

	d.mu.Lock()
	if !d.online {
		d.mu.Unlock()
		return MarginVector{}, errors.New("stresslog: campaign already in progress")
	}
	d.online = false
	d.mu.Unlock()
	defer func() {
		d.mu.Lock()
		d.online = true
		d.mu.Unlock()
	}()

	suite := cpu.SPECSuite()
	if params.UseViruses {
		suite = append(suite, stress.HandCodedViruses()...)
		// Reuse the archived virus when one exists; evolving is
		// thousands of sweeps, and re-characterization campaigns
		// should not pay it twice.
		if virus, err := stress.ObtainVirus(d.archive, stress.DefaultGAConfig(),
			stress.MaxVoltageNoise, d.machine, d.machine.Chip.WorstCore(),
			src.SplitLabeled("ga")); err == nil {
			suite = append(suite, virus)
		}
	}

	vec := MarginVector{Time: d.clock.Now(), Table: vfr.NewEOPTable()}
	spec := d.machine.Spec

	// CPU margins: worst crash across the whole suite per core.
	for core := 0; core < spec.Cores; core++ {
		worstCrash := 0
		for _, b := range suite {
			results := d.machine.UndervoltSweep(core, b, params.Runs)
			for _, r := range results {
				vec.SweepsRun++
				vec.CrashesSeen++
				vec.ECCEvents += r.ECCErrors
				d.recordSweep(core, b, r)
			}
			if w := cpu.WorstCrash(results); w.CrashVoltageMV > worstCrash {
				worstCrash = w.CrashVoltageMV
			}
		}
		safe := worstCrash + params.CushionMV
		vec.Table.Set(vfr.Margin{
			Component:  fmt.Sprintf("%s/core%d", spec.Model, core),
			Nominal:    spec.Nominal,
			CrashPoint: spec.Nominal.WithVoltage(worstCrash),
			Safe:       spec.Nominal.WithVoltage(safe),
			CushionMV:  params.CushionMV,
		})
		d.clock.Advance(time.Duration(len(suite)*params.Runs) * time.Minute)
	}

	// DRAM margin: longest zero-error refresh interval, derated.
	intervals := params.RefreshIntervals
	if len(intervals) == 0 {
		intervals = DefaultTargetParams().RefreshIntervals
	}
	points, err := d.mem.CharacterizeRefresh(intervals, params.DRAMPasses, src.SplitLabeled("dram"))
	if err != nil {
		return MarginVector{}, fmt.Errorf("stresslog: dram characterization: %w", err)
	}
	maxSafe, ok := dram.MaxSafeRefresh(points)
	if !ok {
		maxSafe = vfr.NominalRefresh
	}
	vec.ZeroErrorRefresh = maxSafe
	derate := params.RefreshDerate
	if derate == 0 {
		derate = 0.5
	}
	safeRefresh := time.Duration(float64(maxSafe) * derate)
	if safeRefresh < vfr.NominalRefresh {
		safeRefresh = vfr.NominalRefresh
	}
	vec.SafeRefresh = safeRefresh
	vec.RefreshSavingsPct = d.refresh.SavingsPct(safeRefresh)
	vec.Table.Set(vfr.Margin{
		Component:   "dram/relaxed",
		Nominal:     vfr.Point{VoltageMV: 1, FreqMHz: 1, Refresh: vfr.NominalRefresh},
		CrashPoint:  vfr.Point{VoltageMV: 1, FreqMHz: 1, Refresh: maxSafe},
		Safe:        vfr.Point{VoltageMV: 1, FreqMHz: 1, Refresh: safeRefresh},
		CushionTime: maxSafe - safeRefresh,
	})
	for range points {
		d.clock.Advance(time.Minute)
	}

	d.mu.Lock()
	d.lastRun = d.clock.Now()
	d.pending = nil
	d.history = append(d.history, vec)
	d.mu.Unlock()
	return vec, nil
}

// recordSweep feeds the HealthLog the events one sweep provoked, so
// the Predictor has labeled training data ("during a stress test, the
// HealthLog monitor will execute in parallel to record system
// events").
func (d *Daemon) recordSweep(core int, b cpu.Benchmark, r cpu.SweepResult) {
	if d.health == nil {
		return
	}
	comp := fmt.Sprintf("%s/core%d", d.machine.Spec.Model, core)
	v := telemetry.InfoVector{
		Time:      d.clock.Now(),
		Component: comp,
		Point:     d.machine.Spec.Nominal.WithVoltage(r.CrashVoltageMV),
		Sensors: []telemetry.Reading{
			{Kind: telemetry.SensorVoltage, Value: float64(r.CrashVoltageMV)},
			{Kind: telemetry.SensorFrequency, Value: float64(d.machine.Spec.Nominal.FreqMHz)},
		},
		Counters: telemetry.PerfCounters{
			Instructions: uint64(1e9 * b.Activity),
			Cycles:       1e9,
			CacheMisses:  uint64(1e6 * b.CacheStress),
		},
		Errors: []telemetry.ErrorEvent{
			{Kind: telemetry.ErrCrash, Component: comp, Count: 1, Detail: "stresslog sweep " + b.Name},
		},
	}
	if r.ECCErrors > 0 {
		v.Errors = append(v.Errors, telemetry.ErrorEvent{
			Kind: telemetry.ErrCorrectable, Component: comp + "/cache", Count: r.ECCErrors,
		})
	}
	d.health.Record(v)
}
