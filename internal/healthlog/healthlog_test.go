package healthlog

import (
	"bufio"
	"bytes"
	"errors"
	"strings"
	"testing"
	"time"

	"uniserver/internal/telemetry"
	"uniserver/internal/vfr"
)

func newTestDaemon(out *bytes.Buffer) (*Daemon, *telemetry.Clock) {
	clock := telemetry.NewClock(time.Date(2017, 6, 1, 0, 0, 0, 0, time.UTC))
	var w *bytes.Buffer
	if out != nil {
		w = out
	}
	cfg := Config{ErrorThreshold: 5, Window: time.Hour, RetainVectors: 100}
	if w == nil {
		return New(cfg, clock, nil), clock
	}
	return New(cfg, clock, w), clock
}

func vec(component string, correctable int) telemetry.InfoVector {
	v := telemetry.InfoVector{
		Component: component,
		Point:     vfr.Point{VoltageMV: 800, FreqMHz: 2600},
	}
	if correctable > 0 {
		v.Errors = []telemetry.ErrorEvent{{Kind: telemetry.ErrCorrectable, Component: component, Count: correctable}}
	}
	return v
}

func TestRecordStampsAndPersists(t *testing.T) {
	var buf bytes.Buffer
	d, clock := newTestDaemon(&buf)
	clock.Advance(time.Minute)
	d.Record(vec("core0", 1))
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1 {
		t.Fatalf("log has %d lines", len(lines))
	}
	got, err := telemetry.UnmarshalLine([]byte(lines[0]))
	if err != nil {
		t.Fatal(err)
	}
	if !got.Time.Equal(clock.Now()) {
		t.Fatalf("vector not stamped with clock time: %v vs %v", got.Time, clock.Now())
	}
	if err := d.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestExplicitTimestampPreserved(t *testing.T) {
	d, _ := newTestDaemon(nil)
	want := time.Date(2017, 7, 1, 3, 0, 0, 0, time.UTC)
	v := vec("core0", 0)
	v.Time = want
	d.Record(v)
	got := d.Query("core0", time.Time{})
	if len(got) != 1 || !got[0].Time.Equal(want) {
		t.Fatalf("timestamp overwritten: %v", got)
	}
}

func TestEventDrivenListeners(t *testing.T) {
	d, _ := newTestDaemon(nil)
	var seen []string
	d.Subscribe(func(v telemetry.InfoVector) { seen = append(seen, "a:"+v.Component) })
	d.Subscribe(func(v telemetry.InfoVector) { seen = append(seen, "b:"+v.Component) })
	d.Record(vec("core1", 0))
	if len(seen) != 2 || seen[0] != "a:core1" || seen[1] != "b:core1" {
		t.Fatalf("listener order/content wrong: %v", seen)
	}
}

func TestOnDemandQuery(t *testing.T) {
	d, clock := newTestDaemon(nil)
	d.Record(vec("core0", 1))
	clock.Advance(10 * time.Minute)
	mark := clock.Now()
	d.Record(vec("core0", 2))
	d.Record(vec("core1", 3))

	all := d.Query("core0", time.Time{})
	if len(all) != 2 {
		t.Fatalf("core0 history = %d", len(all))
	}
	recent := d.Query("core0", mark)
	if len(recent) != 1 || recent[0].CorrectableCount() != 2 {
		t.Fatalf("since-query wrong: %+v", recent)
	}
	if got := d.Query("ghost", time.Time{}); got != nil {
		t.Fatalf("unknown component query = %v", got)
	}
	comps := d.Components()
	if len(comps) != 2 {
		t.Fatalf("Components = %v", comps)
	}
}

func TestThresholdTrigger(t *testing.T) {
	d, clock := newTestDaemon(nil)
	var triggers []TriggerReason
	d.OnStressTrigger(func(r TriggerReason) { triggers = append(triggers, r) })

	// 5 errors = threshold, not above: no trigger.
	d.Record(vec("core0", 5))
	if len(triggers) != 0 {
		t.Fatalf("trigger fired at threshold: %v", triggers)
	}
	clock.Advance(time.Minute)
	d.Record(vec("core0", 1))
	if len(triggers) != 1 {
		t.Fatalf("trigger count = %d, want 1", len(triggers))
	}
	r := triggers[0]
	if r.Component != "core0" || r.WindowErrs != 6 || r.Threshold != 5 {
		t.Fatalf("trigger = %+v", r)
	}
	if !strings.Contains(r.String(), "core0") {
		t.Fatal("trigger string missing component")
	}
}

func TestThresholdWindowExpires(t *testing.T) {
	d, clock := newTestDaemon(nil)
	fired := 0
	d.OnStressTrigger(func(TriggerReason) { fired++ })
	d.Record(vec("core0", 5))
	// Push the old errors out of the 1h window.
	clock.Advance(2 * time.Hour)
	d.Record(vec("core0", 1))
	if fired != 0 {
		t.Fatalf("stale errors triggered stress test")
	}
}

func TestThresholdPerComponent(t *testing.T) {
	d, clock := newTestDaemon(nil)
	fired := 0
	d.OnStressTrigger(func(TriggerReason) { fired++ })
	d.Record(vec("core0", 4))
	clock.Advance(time.Minute)
	d.Record(vec("core1", 4))
	if fired != 0 {
		t.Fatal("errors on different components must not sum")
	}
}

func TestRetentionBound(t *testing.T) {
	clock := telemetry.NewClock(time.Unix(0, 0))
	d := New(Config{ErrorThreshold: 1000, Window: time.Hour, RetainVectors: 10}, clock, nil)
	for i := 0; i < 50; i++ {
		clock.Advance(time.Second)
		d.Record(vec("core0", 0))
	}
	if got := len(d.Query("core0", time.Time{})); got != 10 {
		t.Fatalf("retained %d vectors, want 10", got)
	}
}

func TestStats(t *testing.T) {
	d, _ := newTestDaemon(nil)
	d.Record(vec("core0", 1))
	crash := vec("core0", 0)
	crash.Errors = []telemetry.ErrorEvent{{Kind: telemetry.ErrCrash, Component: "core0", Count: 1}}
	d.Record(crash)
	s := d.Stats()
	if s.Recorded != 2 || s.Crashes != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

type failingWriter struct{}

func (failingWriter) Write([]byte) (int, error) { return 0, errors.New("disk full") }

func TestWriteErrorSurfaced(t *testing.T) {
	clock := telemetry.NewClock(time.Unix(0, 0))
	d := New(DefaultConfig(), clock, failingWriter{})
	d.Record(vec("core0", 0))
	if d.Err() == nil {
		t.Fatal("write error not surfaced")
	}
	// Daemon keeps functioning for queries after a write error.
	d.Record(vec("core0", 0))
	if len(d.Query("core0", time.Time{})) != 2 {
		t.Fatal("daemon stopped retaining after write error")
	}
}

func TestDefaultsApplied(t *testing.T) {
	clock := telemetry.NewClock(time.Unix(0, 0))
	d := New(Config{}, clock, nil)
	if d.cfg.ErrorThreshold != DefaultConfig().ErrorThreshold ||
		d.cfg.Window != DefaultConfig().Window ||
		d.cfg.RetainVectors != DefaultConfig().RetainVectors {
		t.Fatalf("defaults not applied: %+v", d.cfg)
	}
}

func TestLogfileIsValidJSONLines(t *testing.T) {
	var buf bytes.Buffer
	d, clock := newTestDaemon(&buf)
	for i := 0; i < 20; i++ {
		clock.Advance(time.Second)
		d.Record(vec("core0", i%3))
	}
	sc := bufio.NewScanner(&buf)
	n := 0
	for sc.Scan() {
		if _, err := telemetry.UnmarshalLine(sc.Bytes()); err != nil {
			t.Fatalf("line %d invalid: %v", n, err)
		}
		n++
	}
	if n != 20 {
		t.Fatalf("log has %d lines, want 20", n)
	}
}
