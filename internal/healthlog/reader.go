package healthlog

import (
	"bufio"
	"fmt"
	"io"
	"time"

	"uniserver/internal/telemetry"
)

// ReadLog parses a HealthLog JSON-lines system logfile back into
// information vectors — the offline path the Predictor uses to train
// on historical data and operators use for post-mortems. Blank lines
// are skipped; a malformed line aborts with its line number.
func ReadLog(r io.Reader) ([]telemetry.InfoVector, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	var out []telemetry.InfoVector
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		v, err := telemetry.UnmarshalLine(raw)
		if err != nil {
			return nil, fmt.Errorf("healthlog: line %d: %w", line, err)
		}
		out = append(out, v)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("healthlog: reading log: %w", err)
	}
	return out, nil
}

// Replay feeds logged vectors back into a daemon (e.g. after a daemon
// restart, to rebuild its in-memory window state). Vectors keep their
// original timestamps.
func Replay(d *Daemon, vectors []telemetry.InfoVector) {
	for _, v := range vectors {
		d.Record(v)
	}
}

// LogSummary aggregates a parsed logfile.
type LogSummary struct {
	Vectors       int
	Components    int
	Correctable   int
	Uncorrectable int
	Crashes       int
	First, Last   time.Time
}

// Summarize computes a LogSummary.
func Summarize(vectors []telemetry.InfoVector) LogSummary {
	var s LogSummary
	comps := map[string]bool{}
	for i, v := range vectors {
		s.Vectors++
		comps[v.Component] = true
		for _, e := range v.Errors {
			switch e.Kind {
			case telemetry.ErrCorrectable:
				s.Correctable += e.Count
			case telemetry.ErrUncorrectable:
				s.Uncorrectable += e.Count
			case telemetry.ErrCrash:
				s.Crashes += e.Count
			}
		}
		if i == 0 || v.Time.Before(s.First) {
			s.First = v.Time
		}
		if v.Time.After(s.Last) {
			s.Last = v.Time
		}
	}
	s.Components = len(comps)
	return s
}
