package healthlog

import (
	"io"
	"sort"
	"time"

	"uniserver/internal/telemetry"
)

// Compiled is an immutable flattened image of a Daemon's recorded
// state: every component's retained vectors with their sensor and
// error payloads concatenated into two slabs. Compile builds it once
// per restore template; StampInto replays it into a reusable arena
// daemon with bulk copies — no per-vector allocations, no locks on the
// shared image. A Compiled is safe for concurrent StampInto calls.
type Compiled struct {
	cfg      Config
	recorded uint64
	crashes  uint64
	writeErr error
	comps    []compiledComp
	vecs     []compiledVec
	sensors  []telemetry.Reading
	errs     []telemetry.ErrorEvent
}

type compiledComp struct {
	name         string
	vecLo, vecHi int // extent in Compiled.vecs
	winStart     int
	winErrs      int
	lastTime     time.Time
	dirty        bool
}

// compiledVec is an InfoVector with its slice payloads replaced by
// slab extents.
type compiledVec struct {
	vec            telemetry.InfoVector // Sensors/Errors nil
	sensLo, sensHi int
	errLo, errHi   int
}

// Compile flattens the daemon's recorded state into its immutable
// template image. Components are laid out in sorted name order so the
// image is reproducible regardless of map iteration.
func (d *Daemon) Compile() *Compiled {
	d.mu.Lock()
	defer d.mu.Unlock()
	c := &Compiled{
		cfg:      d.cfg,
		recorded: d.recorded,
		crashes:  d.crashes,
		writeErr: d.writeErr,
		comps:    make([]compiledComp, 0, len(d.byComp)),
	}
	names := make([]string, 0, len(d.byComp))
	for name := range d.byComp {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h := d.byComp[name]
		cc := compiledComp{
			name:     name,
			vecLo:    len(c.vecs),
			vecHi:    len(c.vecs) + len(h.vecs),
			winStart: h.winStart,
			winErrs:  h.winErrs,
			lastTime: h.lastTime,
			dirty:    h.dirty,
		}
		for _, v := range h.vecs {
			cv := compiledVec{
				vec:    v,
				sensLo: len(c.sensors),
				sensHi: len(c.sensors) + len(v.Sensors),
				errLo:  len(c.errs),
				errHi:  len(c.errs) + len(v.Errors),
			}
			c.sensors = append(c.sensors, v.Sensors...)
			c.errs = append(c.errs, v.Errors...)
			cv.vec.Sensors = nil
			cv.vec.Errors = nil
			c.vecs = append(c.vecs, cv)
		}
		c.comps = append(c.comps, cc)
	}
	return c
}

// StampInto overwrites d with the compiled image, timestamping with
// clock and writing future log lines to out. It reuses d's component
// histories, vector slices and sensor/error slabs; stamped vectors'
// Sensors/Errors alias the daemon-owned slabs (capacity-clamped, so a
// consumer appending to a queried vector reallocates instead of
// corrupting a neighbour). Listeners and trigger callbacks are
// dropped, exactly as Clone drops them — the caller re-subscribes.
//
// The caller must own d exclusively: StampInto is the arena path, not
// a concurrent mutation of a live daemon.
func (c *Compiled) StampInto(d *Daemon, clock *telemetry.Clock, out io.Writer) {
	d.cfg = c.cfg
	d.clock = clock
	d.out = out
	d.recorded = c.recorded
	d.crashes = c.crashes
	d.writeErr = c.writeErr
	// Truncate rather than nil: an empty slice means "no callbacks"
	// exactly like nil does, and keeps the storage a following
	// RewireStressTrigger refills without allocating.
	d.listeners = d.listeners[:0]
	d.onTrigger = d.onTrigger[:0]

	d.sensorSlab = append(d.sensorSlab[:0], c.sensors...)
	d.errorSlab = append(d.errorSlab[:0], c.errs...)

	if d.byComp == nil {
		d.byComp = make(map[string]*compHistory, len(c.comps))
	} else {
		// Sweep histories the template doesn't know (cross-template
		// arena reuse); same-template stamps find every key present.
		for name := range d.byComp {
			if !c.hasComp(name) {
				delete(d.byComp, name)
			}
		}
	}
	for _, cc := range c.comps {
		h := d.byComp[cc.name]
		if h == nil {
			h = &compHistory{}
			d.byComp[cc.name] = h
		}
		h.winStart = cc.winStart
		h.winErrs = cc.winErrs
		h.lastTime = cc.lastTime
		h.dirty = cc.dirty
		vecs := h.vecs[:0]
		for _, cv := range c.vecs[cc.vecLo:cc.vecHi] {
			v := cv.vec
			v.Sensors = d.sensorSlab[cv.sensLo:cv.sensHi:cv.sensHi]
			v.Errors = d.errorSlab[cv.errLo:cv.errHi:cv.errHi]
			vecs = append(vecs, v)
		}
		h.vecs = vecs
	}
}

func (c *Compiled) hasComp(name string) bool {
	for _, cc := range c.comps {
		if cc.name == name {
			return true
		}
	}
	return false
}

// RewireStressTrigger replaces every stress-trigger callback with f,
// reusing the callback slice's storage. Stamp-path use only: the
// caller must own the daemon exclusively (no concurrent Record), which
// is what licenses breaking the copy-on-write discipline OnStressTrigger
// maintains for live daemons.
func (d *Daemon) RewireStressTrigger(f func(TriggerReason)) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.onTrigger = append(d.onTrigger[:0], f)
}
