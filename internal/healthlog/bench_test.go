package healthlog

import (
	"bytes"
	"testing"
	"time"

	"uniserver/internal/telemetry"
)

func BenchmarkRecord(b *testing.B) {
	clock := telemetry.NewClock(time.Unix(0, 0))
	d := New(DefaultConfig(), clock, nil)
	v := vec("core0", 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clock.Advance(time.Second)
		d.Record(v)
	}
}

func BenchmarkRecordWithLogfile(b *testing.B) {
	clock := telemetry.NewClock(time.Unix(0, 0))
	var buf bytes.Buffer
	d := New(DefaultConfig(), clock, &buf)
	v := vec("core0", 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clock.Advance(time.Second)
		d.Record(v)
	}
}

func BenchmarkReadLog(b *testing.B) {
	clock := telemetry.NewClock(time.Unix(0, 0))
	var buf bytes.Buffer
	d := New(DefaultConfig(), clock, &buf)
	for i := 0; i < 1000; i++ {
		clock.Advance(time.Second)
		d.Record(vec("core0", i%3))
	}
	raw := buf.Bytes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ReadLog(bytes.NewReader(raw)); err != nil {
			b.Fatal(err)
		}
	}
}
