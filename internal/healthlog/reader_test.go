package healthlog

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"uniserver/internal/telemetry"
)

func TestReadLogRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	d, clock := newTestDaemon(&buf)
	for i := 0; i < 25; i++ {
		clock.Advance(time.Minute)
		d.Record(vec("core0", i%4))
	}
	vectors, err := ReadLog(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(vectors) != 25 {
		t.Fatalf("parsed %d vectors", len(vectors))
	}
	for i := 1; i < len(vectors); i++ {
		if !vectors[i].Time.After(vectors[i-1].Time) {
			t.Fatal("log order lost")
		}
	}
}

func TestReadLogSkipsBlankLines(t *testing.T) {
	v := telemetry.InfoVector{Component: "x", Time: time.Unix(5, 0)}
	line, err := v.MarshalLine()
	if err != nil {
		t.Fatal(err)
	}
	doc := "\n" + string(line) + "\n" + string(line)
	got, err := ReadLog(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("parsed %d", len(got))
	}
}

func TestReadLogReportsBadLine(t *testing.T) {
	v := telemetry.InfoVector{Component: "x"}
	line, _ := v.MarshalLine()
	doc := string(line) + "{broken\n"
	_, err := ReadLog(strings.NewReader(doc))
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("error = %v, want line number", err)
	}
}

func TestReplayRebuildsState(t *testing.T) {
	var buf bytes.Buffer
	d1, clock := newTestDaemon(&buf)
	for i := 0; i < 10; i++ {
		clock.Advance(time.Minute)
		d1.Record(vec("core0", 1))
	}
	vectors, err := ReadLog(&buf)
	if err != nil {
		t.Fatal(err)
	}
	d2, _ := newTestDaemon(nil)
	Replay(d2, vectors)
	if got := len(d2.Query("core0", time.Time{})); got != 10 {
		t.Fatalf("replayed daemon has %d vectors", got)
	}
	// Replay preserves the original timestamps.
	replayed := d2.Query("core0", time.Time{})
	original := d1.Query("core0", time.Time{})
	for i := range replayed {
		if !replayed[i].Time.Equal(original[i].Time) {
			t.Fatal("timestamps rewritten during replay")
		}
	}
}

func TestSummarize(t *testing.T) {
	vectors := []telemetry.InfoVector{
		{Component: "core0", Time: time.Unix(100, 0), Errors: []telemetry.ErrorEvent{
			{Kind: telemetry.ErrCorrectable, Count: 3},
		}},
		{Component: "core1", Time: time.Unix(50, 0), Errors: []telemetry.ErrorEvent{
			{Kind: telemetry.ErrUncorrectable, Count: 1},
			{Kind: telemetry.ErrCrash, Count: 1},
		}},
		{Component: "core0", Time: time.Unix(200, 0)},
	}
	s := Summarize(vectors)
	if s.Vectors != 3 || s.Components != 2 {
		t.Fatalf("summary = %+v", s)
	}
	if s.Correctable != 3 || s.Uncorrectable != 1 || s.Crashes != 1 {
		t.Fatalf("error counts = %+v", s)
	}
	if !s.First.Equal(time.Unix(50, 0)) || !s.Last.Equal(time.Unix(200, 0)) {
		t.Fatalf("time range = %v..%v", s.First, s.Last)
	}
	if z := Summarize(nil); z.Vectors != 0 {
		t.Fatal("empty summary wrong")
	}
}
