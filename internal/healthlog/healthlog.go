// Package healthlog implements the HealthLog monitor of Section 3.C:
// the runtime daemon that records every hardware event — errors
// (correctable or uncorrectable), system configuration values, sensor
// readings and performance counters — as information vectors in a
// system logfile, and exposes them to the higher layers.
//
// Per the paper, the daemon provides two service types:
//
//   - Event-driven services: subscribers (the Predictor, the
//     Hypervisor) are notified synchronously whenever a vector is
//     recorded, and a configurable correctable-error-rate threshold
//     raises a stress-test trigger ("if the number of errors rises
//     above a certain threshold a new stress-test cycle may be
//     triggered").
//   - On-demand services: the monitor answers queries from higher
//     layers for specific information (per component, per time range).
package healthlog

import (
	"fmt"
	"io"
	"sync"
	"time"

	"uniserver/internal/telemetry"
)

// Listener receives every recorded vector (event-driven service).
type Listener func(telemetry.InfoVector)

// TriggerReason explains why a stress-test trigger fired.
type TriggerReason struct {
	Component  string
	WindowErrs int
	Threshold  int
	At         time.Time
}

// String implements fmt.Stringer.
func (r TriggerReason) String() string {
	return fmt.Sprintf("component %s: %d correctable errors in window (threshold %d) at %s",
		r.Component, r.WindowErrs, r.Threshold, r.At.Format(time.RFC3339))
}

// Config tunes the daemon.
type Config struct {
	// ErrorThreshold is the number of correctable errors per component
	// per window above which a stress-test cycle is requested.
	ErrorThreshold int
	// Window is the sliding-window length for the threshold.
	Window time.Duration
	// RetainVectors bounds the in-memory history per component
	// (on-demand queries read from this buffer; the full stream also
	// goes to the log writer).
	RetainVectors int
}

// DefaultConfig returns sensible daemon defaults.
func DefaultConfig() Config {
	return Config{
		ErrorThreshold: 10,
		Window:         time.Hour,
		RetainVectors:  4096,
	}
}

// Daemon is the HealthLog monitor. It is safe for concurrent use.
type Daemon struct {
	cfg   Config
	clock *telemetry.Clock
	out   io.Writer // JSON-lines system logfile; may be nil

	mu sync.Mutex
	// byComp holds one history per component. listeners and onTrigger
	// are copy-on-write: Subscribe/OnStressTrigger replace the whole
	// slice, so Record can capture the header under the lock and range
	// it after unlocking without a defensive per-record copy.
	byComp    map[string]*compHistory
	listeners []Listener
	onTrigger []func(TriggerReason)
	recorded  uint64
	crashes   uint64
	writeErr  error

	// sensorSlab and errorSlab back the stamped vectors of an arena
	// daemon (Compiled.StampInto): one bulk copy per stamp instead of
	// two allocations per retained vector. Unused on live daemons.
	sensorSlab []telemetry.Reading
	errorSlab  []telemetry.ErrorEvent
}

// compHistory is one component's retained vectors plus the rolling
// sliding-window error bookkeeping: winStart indexes the first
// retained vector inside the current window and winErrs sums the
// correctable counts of vecs[winStart:]. The rolling form is valid
// only while record times are nondecreasing (the daemon clock only
// advances); an out-of-order record marks the history dirty and the
// threshold check falls back to the full scan, which is the rolling
// form's definition.
type compHistory struct {
	vecs     []telemetry.InfoVector
	winStart int
	winErrs  int
	lastTime time.Time
	dirty    bool
}

// New returns a daemon writing JSON lines to out (nil discards) and
// timestamping with the given clock.
func New(cfg Config, clock *telemetry.Clock, out io.Writer) *Daemon {
	if cfg.ErrorThreshold <= 0 {
		cfg.ErrorThreshold = DefaultConfig().ErrorThreshold
	}
	if cfg.Window <= 0 {
		cfg.Window = DefaultConfig().Window
	}
	if cfg.RetainVectors <= 0 {
		cfg.RetainVectors = DefaultConfig().RetainVectors
	}
	return &Daemon{
		cfg:    cfg,
		clock:  clock,
		out:    out,
		byComp: make(map[string]*compHistory),
	}
}

// Subscribe registers an event-driven listener. Listeners run
// synchronously on the recording goroutine, in registration order.
func (d *Daemon) Subscribe(l Listener) {
	d.mu.Lock()
	defer d.mu.Unlock()
	// Copy-on-write: never extend the slice Record may be ranging.
	d.listeners = append(append([]Listener(nil), d.listeners...), l)
}

// OnStressTrigger registers a callback invoked when a component's
// correctable-error rate crosses the configured threshold. The
// StressLog daemon subscribes here.
func (d *Daemon) OnStressTrigger(f func(TriggerReason)) {
	d.mu.Lock()
	defer d.mu.Unlock()
	// Copy-on-write, as for Subscribe.
	d.onTrigger = append(append([]func(TriggerReason){}, d.onTrigger...), f)
}

// Clone returns a deep copy of the daemon's recorded state — retained
// vectors (with their sensor and error slices duplicated), rolling
// window bookkeeping and activity counters — timestamping with clock
// and writing future log lines to out. Listeners and stress-trigger
// callbacks are deliberately NOT copied: they are closures over the
// original ecosystem's daemons, and the caller must re-subscribe the
// clone's own consumers (core's snapshot restore re-wires the
// StressLog trigger exactly as New does).
func (d *Daemon) Clone(clock *telemetry.Clock, out io.Writer) *Daemon {
	d.mu.Lock()
	defer d.mu.Unlock()
	c := &Daemon{
		cfg:      d.cfg,
		clock:    clock,
		out:      out,
		byComp:   make(map[string]*compHistory, len(d.byComp)),
		recorded: d.recorded,
		crashes:  d.crashes,
		writeErr: d.writeErr,
	}
	for name, h := range d.byComp {
		nh := &compHistory{
			vecs:     make([]telemetry.InfoVector, len(h.vecs)),
			winStart: h.winStart,
			winErrs:  h.winErrs,
			lastTime: h.lastTime,
			dirty:    h.dirty,
		}
		for i, v := range h.vecs {
			v.Sensors = append([]telemetry.Reading(nil), v.Sensors...)
			v.Errors = append([]telemetry.ErrorEvent(nil), v.Errors...)
			nh.vecs[i] = v
		}
		c.byComp[name] = nh
	}
	return c
}

// Record ingests one information vector: stamps it with the daemon
// clock if unstamped, persists it to the logfile, retains it for
// queries, notifies listeners, and evaluates the error threshold.
func (d *Daemon) Record(v telemetry.InfoVector) {
	if v.Time.IsZero() {
		v.Time = d.clock.Now()
	}

	d.mu.Lock()
	d.recorded++
	if v.HasCrash() {
		d.crashes++
	}
	h := d.byComp[v.Component]
	if h == nil {
		h = &compHistory{}
		d.byComp[v.Component] = h
	}
	if v.Time.Before(h.lastTime) {
		h.dirty = true // rolling window invalid; fall back to scans
	} else {
		h.lastTime = v.Time
	}
	h.vecs = append(h.vecs, v)
	if trim := len(h.vecs) - d.cfg.RetainVectors; trim > 0 {
		// Vectors falling out of retention also fall out of the
		// threshold window — the scan only ever saw retained history.
		for i := h.winStart; i < trim; i++ {
			h.winErrs -= h.vecs[i].CorrectableCount()
		}
		h.vecs = h.vecs[trim:]
		if h.winStart -= trim; h.winStart < 0 {
			h.winStart = 0
		}
	}

	if d.out != nil && d.writeErr == nil {
		if line, err := v.MarshalLine(); err == nil {
			if _, err := d.out.Write(line); err != nil {
				d.writeErr = fmt.Errorf("healthlog: logfile write: %w", err)
			}
		}
	}

	listeners := d.listeners
	var reason *TriggerReason
	if n := h.windowErrors(v, d.cfg.Window); n > d.cfg.ErrorThreshold {
		reason = &TriggerReason{
			Component:  v.Component,
			WindowErrs: n,
			Threshold:  d.cfg.ErrorThreshold,
			At:         v.Time,
		}
	}
	triggers := d.onTrigger
	d.mu.Unlock()

	for _, l := range listeners {
		l(v)
	}
	if reason != nil {
		for _, f := range triggers {
			f(*reason)
		}
	}
}

// windowErrors returns the component's correctable errors inside the
// sliding window ending at the just-recorded vector v. On the ordered
// fast path it advances the rolling cursor past expired vectors and
// adds v's count — O(expired) instead of O(retained) per record, with
// the exact same total the full scan produces. Caller holds d.mu.
func (h *compHistory) windowErrors(v telemetry.InfoVector, window time.Duration) int {
	cutoff := v.Time.Add(-window)
	if h.dirty {
		n := 0
		for _, w := range h.vecs {
			if w.Time.After(cutoff) && !w.Time.After(v.Time) {
				n += w.CorrectableCount()
			}
		}
		return n
	}
	for h.winStart < len(h.vecs)-1 && !h.vecs[h.winStart].Time.After(cutoff) {
		h.winErrs -= h.vecs[h.winStart].CorrectableCount()
		h.winStart++
	}
	h.winErrs += v.CorrectableCount()
	return h.winErrs
}

// Query returns the retained vectors for a component recorded at or
// after `since`, in record order (on-demand service).
func (d *Daemon) Query(component string, since time.Time) []telemetry.InfoVector {
	d.mu.Lock()
	defer d.mu.Unlock()
	h := d.byComp[component]
	if h == nil {
		return nil
	}
	var out []telemetry.InfoVector
	for _, v := range h.vecs {
		if !v.Time.Before(since) {
			out = append(out, v)
		}
	}
	return out
}

// Components returns the component names seen so far.
func (d *Daemon) Components() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]string, 0, len(d.byComp))
	for name := range d.byComp {
		out = append(out, name)
	}
	return out
}

// Stats summarizes the daemon's activity.
type Stats struct {
	Recorded uint64
	Crashes  uint64
}

// Stats returns activity counters.
func (d *Daemon) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return Stats{Recorded: d.recorded, Crashes: d.crashes}
}

// Err returns the first logfile write error, if any.
func (d *Daemon) Err() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.writeErr
}
