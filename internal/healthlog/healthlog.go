// Package healthlog implements the HealthLog monitor of Section 3.C:
// the runtime daemon that records every hardware event — errors
// (correctable or uncorrectable), system configuration values, sensor
// readings and performance counters — as information vectors in a
// system logfile, and exposes them to the higher layers.
//
// Per the paper, the daemon provides two service types:
//
//   - Event-driven services: subscribers (the Predictor, the
//     Hypervisor) are notified synchronously whenever a vector is
//     recorded, and a configurable correctable-error-rate threshold
//     raises a stress-test trigger ("if the number of errors rises
//     above a certain threshold a new stress-test cycle may be
//     triggered").
//   - On-demand services: the monitor answers queries from higher
//     layers for specific information (per component, per time range).
package healthlog

import (
	"fmt"
	"io"
	"sync"
	"time"

	"uniserver/internal/telemetry"
)

// Listener receives every recorded vector (event-driven service).
type Listener func(telemetry.InfoVector)

// TriggerReason explains why a stress-test trigger fired.
type TriggerReason struct {
	Component  string
	WindowErrs int
	Threshold  int
	At         time.Time
}

// String implements fmt.Stringer.
func (r TriggerReason) String() string {
	return fmt.Sprintf("component %s: %d correctable errors in window (threshold %d) at %s",
		r.Component, r.WindowErrs, r.Threshold, r.At.Format(time.RFC3339))
}

// Config tunes the daemon.
type Config struct {
	// ErrorThreshold is the number of correctable errors per component
	// per window above which a stress-test cycle is requested.
	ErrorThreshold int
	// Window is the sliding-window length for the threshold.
	Window time.Duration
	// RetainVectors bounds the in-memory history per component
	// (on-demand queries read from this buffer; the full stream also
	// goes to the log writer).
	RetainVectors int
}

// DefaultConfig returns sensible daemon defaults.
func DefaultConfig() Config {
	return Config{
		ErrorThreshold: 10,
		Window:         time.Hour,
		RetainVectors:  4096,
	}
}

// Daemon is the HealthLog monitor. It is safe for concurrent use.
type Daemon struct {
	cfg   Config
	clock *telemetry.Clock
	out   io.Writer // JSON-lines system logfile; may be nil

	mu        sync.Mutex
	byComp    map[string][]telemetry.InfoVector
	listeners []Listener
	onTrigger []func(TriggerReason)
	recorded  uint64
	crashes   uint64
	writeErr  error
}

// New returns a daemon writing JSON lines to out (nil discards) and
// timestamping with the given clock.
func New(cfg Config, clock *telemetry.Clock, out io.Writer) *Daemon {
	if cfg.ErrorThreshold <= 0 {
		cfg.ErrorThreshold = DefaultConfig().ErrorThreshold
	}
	if cfg.Window <= 0 {
		cfg.Window = DefaultConfig().Window
	}
	if cfg.RetainVectors <= 0 {
		cfg.RetainVectors = DefaultConfig().RetainVectors
	}
	return &Daemon{
		cfg:    cfg,
		clock:  clock,
		out:    out,
		byComp: make(map[string][]telemetry.InfoVector),
	}
}

// Subscribe registers an event-driven listener. Listeners run
// synchronously on the recording goroutine, in registration order.
func (d *Daemon) Subscribe(l Listener) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.listeners = append(d.listeners, l)
}

// OnStressTrigger registers a callback invoked when a component's
// correctable-error rate crosses the configured threshold. The
// StressLog daemon subscribes here.
func (d *Daemon) OnStressTrigger(f func(TriggerReason)) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.onTrigger = append(d.onTrigger, f)
}

// Record ingests one information vector: stamps it with the daemon
// clock if unstamped, persists it to the logfile, retains it for
// queries, notifies listeners, and evaluates the error threshold.
func (d *Daemon) Record(v telemetry.InfoVector) {
	if v.Time.IsZero() {
		v.Time = d.clock.Now()
	}

	d.mu.Lock()
	d.recorded++
	if v.HasCrash() {
		d.crashes++
	}
	hist := append(d.byComp[v.Component], v)
	if len(hist) > d.cfg.RetainVectors {
		hist = hist[len(hist)-d.cfg.RetainVectors:]
	}
	d.byComp[v.Component] = hist

	if d.out != nil && d.writeErr == nil {
		if line, err := v.MarshalLine(); err == nil {
			if _, err := d.out.Write(line); err != nil {
				d.writeErr = fmt.Errorf("healthlog: logfile write: %w", err)
			}
		}
	}

	listeners := append([]Listener(nil), d.listeners...)
	var reason *TriggerReason
	if n := d.windowErrorsLocked(v.Component, v.Time); n > d.cfg.ErrorThreshold {
		reason = &TriggerReason{
			Component:  v.Component,
			WindowErrs: n,
			Threshold:  d.cfg.ErrorThreshold,
			At:         v.Time,
		}
	}
	var triggers []func(TriggerReason)
	triggers = append(triggers, d.onTrigger...)
	d.mu.Unlock()

	for _, l := range listeners {
		l(v)
	}
	if reason != nil {
		for _, f := range triggers {
			f(*reason)
		}
	}
}

// windowErrorsLocked counts the component's correctable errors inside
// the sliding window ending at now. Caller holds d.mu.
func (d *Daemon) windowErrorsLocked(component string, now time.Time) int {
	cutoff := now.Add(-d.cfg.Window)
	n := 0
	for _, v := range d.byComp[component] {
		if v.Time.After(cutoff) && !v.Time.After(now) {
			n += v.CorrectableCount()
		}
	}
	return n
}

// Query returns the retained vectors for a component recorded at or
// after `since`, in record order (on-demand service).
func (d *Daemon) Query(component string, since time.Time) []telemetry.InfoVector {
	d.mu.Lock()
	defer d.mu.Unlock()
	var out []telemetry.InfoVector
	for _, v := range d.byComp[component] {
		if !v.Time.Before(since) {
			out = append(out, v)
		}
	}
	return out
}

// Components returns the component names seen so far.
func (d *Daemon) Components() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]string, 0, len(d.byComp))
	for name := range d.byComp {
		out = append(out, name)
	}
	return out
}

// Stats summarizes the daemon's activity.
type Stats struct {
	Recorded uint64
	Crashes  uint64
}

// Stats returns activity counters.
func (d *Daemon) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return Stats{Recorded: d.recorded, Crashes: d.crashes}
}

// Err returns the first logfile write error, if any.
func (d *Daemon) Err() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.writeErr
}
