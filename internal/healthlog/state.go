package healthlog

import (
	"io"
	"sort"
	"time"

	"uniserver/internal/telemetry"
)

// ComponentState is the wire form of one component's retained history
// and rolling-window bookkeeping — the persistence surface snapshot
// serialization flattens the daemon's private compHistory into.
type ComponentState struct {
	Component string
	Vecs      []telemetry.InfoVector
	WinStart  int
	WinErrs   int
	LastTime  time.Time
	Dirty     bool
}

// DaemonState is the daemon's full serializable state. Listeners and
// stress-trigger callbacks are deliberately absent: they are closures
// over sibling daemons, and the restorer re-subscribes its own, just
// as Clone's consumers do.
type DaemonState struct {
	Config     Config
	Components []ComponentState // sorted by component name
	Recorded   uint64
	Crashes    uint64
}

// ExportState captures the daemon's recorded state for serialization.
// Components are emitted in sorted name order so the encoding of a
// given daemon state is byte-stable.
func (d *Daemon) ExportState() DaemonState {
	d.mu.Lock()
	defer d.mu.Unlock()
	st := DaemonState{
		Config:   d.cfg,
		Recorded: d.recorded,
		Crashes:  d.crashes,
	}
	names := make([]string, 0, len(d.byComp))
	for name := range d.byComp {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h := d.byComp[name]
		cs := ComponentState{
			Component: name,
			Vecs:      make([]telemetry.InfoVector, len(h.vecs)),
			WinStart:  h.winStart,
			WinErrs:   h.winErrs,
			LastTime:  h.lastTime,
			Dirty:     h.dirty,
		}
		for i, v := range h.vecs {
			v.Sensors = append([]telemetry.Reading(nil), v.Sensors...)
			v.Errors = append([]telemetry.ErrorEvent(nil), v.Errors...)
			cs.Vecs[i] = v
		}
		st.Components = append(st.Components, cs)
	}
	return st
}

// NewFromState reassembles a daemon from ExportState's capture,
// timestamping with clock and writing future log lines to out (nil
// discards). The caller re-hooks stress triggers and listeners, as
// after Clone.
func NewFromState(st DaemonState, clock *telemetry.Clock, out io.Writer) *Daemon {
	d := New(st.Config, clock, out)
	d.recorded = st.Recorded
	d.crashes = st.Crashes
	for _, cs := range st.Components {
		d.byComp[cs.Component] = &compHistory{
			vecs:     append([]telemetry.InfoVector(nil), cs.Vecs...),
			winStart: cs.WinStart,
			winErrs:  cs.WinErrs,
			lastTime: cs.LastTime,
			dirty:    cs.Dirty,
		}
	}
	return d
}
