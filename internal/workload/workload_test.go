package workload

import (
	"testing"
	"time"

	"uniserver/internal/rng"
)

func TestProfilesCatalogue(t *testing.T) {
	ps := Profiles()
	if len(ps) != 4 {
		t.Fatalf("catalogue size = %d", len(ps))
	}
	seen := map[string]bool{}
	for _, p := range ps {
		if p.Name == "" || seen[p.Name] {
			t.Fatalf("bad or duplicate profile name %q", p.Name)
		}
		seen[p.Name] = true
		if p.CPUActivity <= 0 || p.CPUActivity > 1 {
			t.Errorf("%s: activity %v out of range", p.Name, p.CPUActivity)
		}
		if p.DroopIntensity < 0 || p.DroopIntensity > 1 {
			t.Errorf("%s: droop %v out of range", p.Name, p.DroopIntensity)
		}
		if p.MemTargetBytes == 0 {
			t.Errorf("%s: zero working set", p.Name)
		}
	}
}

func TestMemRampMonotone(t *testing.T) {
	p := LDBCSocialNetwork()
	prev := uint64(0)
	for w := 0; w < p.RampWindows; w++ {
		m := p.MemAtWindow(w)
		if m < prev {
			t.Fatalf("ramp not monotone at window %d", w)
		}
		prev = m
	}
	if got := p.MemAtWindow(p.RampWindows - 1); got != p.MemTargetBytes {
		t.Fatalf("ramp end = %d, want target %d", got, p.MemTargetBytes)
	}
}

func TestMemSteadyStateSawtooth(t *testing.T) {
	p := LDBCSocialNetwork()
	lo := p.MemTargetBytes - p.MemTargetBytes/20
	hi := p.MemTargetBytes + p.MemTargetBytes/20
	for w := p.RampWindows; w < p.RampWindows+32; w++ {
		m := p.MemAtWindow(w)
		if m < lo || m > hi {
			t.Fatalf("steady-state memory %d outside ±5%% of target at window %d", m, w)
		}
	}
	if p.MemAtWindow(-1) != 0 {
		t.Fatal("negative window should be 0")
	}
}

func TestLDBCStressesEverything(t *testing.T) {
	p := LDBCSocialNetwork()
	// Paper: "This application stresses the CPU, disk I/O and network."
	if p.CPUActivity < 0.5 {
		t.Error("LDBC should stress CPU")
	}
	if p.DiskIOPS < 1000 {
		t.Error("LDBC should stress disk")
	}
	if p.NetMbps < 100 {
		t.Error("LDBC should stress network")
	}
	if p.MemTargetBytes < 2<<30 {
		t.Error("LDBC working set should be GB-scale")
	}
}

func TestVMSpecValidate(t *testing.T) {
	p := IoTEdgeAnalytics()
	good := VMSpec{Name: "vm0", VCPUs: 2, MemBytes: p.MemTargetBytes * 2, Profile: p}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []VMSpec{
		{VCPUs: 1, MemBytes: 1 << 30, Profile: p},
		{Name: "x", VCPUs: 0, MemBytes: 1 << 30, Profile: p},
		{Name: "x", VCPUs: 1, MemBytes: 0, Profile: p},
		{Name: "x", VCPUs: 1, MemBytes: p.MemTargetBytes - 1, Profile: p},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("spec %d accepted: %+v", i, s)
		}
	}
}

func TestStreamValidation(t *testing.T) {
	if _, err := Stream(StreamConfig{N: 0, MeanGap: time.Second, MeanLifetime: time.Second}, rng.New(1)); err == nil {
		t.Fatal("N=0 accepted")
	}
	if _, err := Stream(StreamConfig{N: 1, MeanGap: 0, MeanLifetime: time.Second}, rng.New(1)); err == nil {
		t.Fatal("zero gap accepted")
	}
	if _, err := Stream(StreamConfig{N: 1, MeanGap: time.Second, MeanLifetime: 0}, rng.New(1)); err == nil {
		t.Fatal("zero lifetime accepted")
	}
}

func TestStreamShape(t *testing.T) {
	cfg := DefaultStreamConfig()
	arrivals, err := Stream(cfg, rng.New(42))
	if err != nil {
		t.Fatal(err)
	}
	if len(arrivals) != cfg.N {
		t.Fatalf("stream length = %d", len(arrivals))
	}
	prev := time.Duration(-1)
	names := map[string]bool{}
	for _, a := range arrivals {
		if a.At < prev {
			t.Fatal("arrivals not time-ordered")
		}
		prev = a.At
		if a.Lifetime < cfg.MinLifetime {
			t.Fatalf("lifetime %v below minimum", a.Lifetime)
		}
		if err := a.Spec.Validate(); err != nil {
			t.Fatalf("invalid generated spec: %v", err)
		}
		if names[a.Spec.Name] {
			t.Fatalf("duplicate VM name %q", a.Spec.Name)
		}
		names[a.Spec.Name] = true
	}
}

func TestStreamDeterministic(t *testing.T) {
	cfg := DefaultStreamConfig()
	a, err := Stream(cfg, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Stream(cfg, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].At != b[i].At || a[i].Lifetime != b[i].Lifetime || a[i].Spec.Name != b[i].Spec.Name {
			t.Fatalf("stream diverged at %d", i)
		}
	}
}

func TestStreamMixesProfiles(t *testing.T) {
	arrivals, err := Stream(DefaultStreamConfig(), rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	profiles := map[string]bool{}
	for _, a := range arrivals {
		profiles[a.Spec.Profile.Name] = true
	}
	if len(profiles) != len(Profiles()) {
		t.Fatalf("stream uses %d profiles, want %d", len(profiles), len(Profiles()))
	}
}
