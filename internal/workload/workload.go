// Package workload models the applications the paper evaluates with:
// the LDBC Social Network Benchmark running on a graph database inside
// VMs (the Figure 3 memory-footprint experiment: "four instances of
// VMs, each of which accommodates a graph database benchmark ... This
// application stresses the CPU, disk I/O and network"), an IoT edge
// analytics service for the Section 6.D edge scenario, and generic VM
// arrival streams for the resource-management experiments.
package workload

import (
	"fmt"
	"math"
	"time"

	"uniserver/internal/rng"
)

// Profile describes the steady behaviour of one application.
type Profile struct {
	Name string
	// CPUActivity is the average switching-activity factor in [0,1].
	CPUActivity float64
	// DroopIntensity positions the workload's di/dt behaviour in [0,1].
	DroopIntensity float64
	// MemTargetBytes is the steady-state working set.
	MemTargetBytes uint64
	// RampWindows is how many observation windows the working set
	// takes to reach its target from zero.
	RampWindows int
	// DiskIOPS and NetMbps characterize the I/O pressure (used by the
	// scheduler's interference model and the footprint experiment's
	// "stresses the CPU, disk I/O and network" claim).
	DiskIOPS float64
	NetMbps  float64
}

// MemAtWindow returns the working set at observation window w: a
// linear ramp to the target followed by a small deterministic sawtooth
// (±4%) that mimics query-driven churn.
func (p Profile) MemAtWindow(w int) uint64 {
	if w < 0 {
		return 0
	}
	if p.RampWindows > 0 && w < p.RampWindows {
		return p.MemTargetBytes * uint64(w+1) / uint64(p.RampWindows)
	}
	// Sawtooth over 8 windows: -4%..+4% of target.
	phase := w % 8
	delta := int64(p.MemTargetBytes / 25) // 4%
	offset := delta * int64(phase-4) / 4
	v := int64(p.MemTargetBytes) + offset
	if v < 0 {
		v = 0
	}
	return uint64(v)
}

// LDBCSocialNetwork returns the LDBC SNB interactive workload profile
// on a Sparksee-style graph database: a few-GB working set that ramps
// as the graph loads, with heavy disk and network activity.
func LDBCSocialNetwork() Profile {
	return Profile{
		Name:           "ldbc-snb-interactive",
		CPUActivity:    0.72,
		DroopIntensity: 0.55,
		MemTargetBytes: 3576 << 20, // ~3.5 GiB per VM instance
		RampWindows:    12,
		DiskIOPS:       2400,
		NetMbps:        320,
	}
}

// IoTEdgeAnalytics returns the latency-sensitive edge service of
// Section 6.D: a modest working set with strict end-to-end deadlines.
func IoTEdgeAnalytics() Profile {
	return Profile{
		Name:           "iot-edge-analytics",
		CPUActivity:    0.45,
		DroopIntensity: 0.30,
		MemTargetBytes: 512 << 20,
		RampWindows:    4,
		DiskIOPS:       150,
		NetMbps:        90,
	}
}

// WebFrontend returns a bursty user-facing service used to populate
// heterogeneous clusters in the scheduling experiments.
func WebFrontend() Profile {
	return Profile{
		Name:           "web-frontend",
		CPUActivity:    0.38,
		DroopIntensity: 0.42,
		MemTargetBytes: 1024 << 20,
		RampWindows:    2,
		DiskIOPS:       400,
		NetMbps:        210,
	}
}

// BatchAnalytics returns a throughput-oriented batch job that
// tolerates relaxed reliability (a natural tenant for deep EOP).
func BatchAnalytics() Profile {
	return Profile{
		Name:           "batch-analytics",
		CPUActivity:    0.88,
		DroopIntensity: 0.65,
		MemTargetBytes: 6 << 30,
		RampWindows:    6,
		DiskIOPS:       900,
		NetMbps:        80,
	}
}

// DroopVirus returns a malicious guest executing a voltage-noise
// virus: maximal di/dt excitation at high activity, the availability
// attack of the security analysis. A host running at a deep extended
// operating point can be pushed past its crash voltage by this
// profile; scenario layers inject it to measure the blast radius.
func DroopVirus() Profile {
	return Profile{
		Name:           "droop-virus",
		CPUActivity:    0.95,
		DroopIntensity: 0.98,
		MemTargetBytes: 256 << 20,
		RampWindows:    1,
		DiskIOPS:       50,
		NetMbps:        10,
	}
}

// Profiles returns the built-in profile catalogue.
func Profiles() []Profile {
	return []Profile{LDBCSocialNetwork(), IoTEdgeAnalytics(), WebFrontend(), BatchAnalytics()}
}

// VMSpec sizes a virtual machine and binds it to a workload profile.
type VMSpec struct {
	Name     string
	VCPUs    int
	MemBytes uint64
	Profile  Profile
}

// Validate reports configuration errors.
func (s VMSpec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("workload: VM spec missing name")
	}
	if s.VCPUs <= 0 {
		return fmt.Errorf("workload: VM %q has %d vCPUs", s.Name, s.VCPUs)
	}
	if s.MemBytes == 0 {
		return fmt.Errorf("workload: VM %q has zero memory", s.Name)
	}
	if s.MemBytes < s.Profile.MemTargetBytes {
		return fmt.Errorf("workload: VM %q memory %d below profile working set %d",
			s.Name, s.MemBytes, s.Profile.MemTargetBytes)
	}
	return nil
}

// Arrival is one VM arrival in a stream.
type Arrival struct {
	At       time.Duration // offset from stream start
	Spec     VMSpec
	Lifetime time.Duration
}

// StreamConfig shapes a VM arrival stream.
type StreamConfig struct {
	N            int
	MeanGap      time.Duration // mean inter-arrival gap (exponential)
	MeanLifetime time.Duration // mean VM lifetime (exponential)
	MinLifetime  time.Duration
}

// DefaultStreamConfig returns a stream of 50 VMs arriving every ~5
// minutes with hour-scale lifetimes.
func DefaultStreamConfig() StreamConfig {
	return StreamConfig{
		N:            50,
		MeanGap:      5 * time.Minute,
		MeanLifetime: 2 * time.Hour,
		MinLifetime:  10 * time.Minute,
	}
}

// Stream generates a deterministic arrival stream: VM specs cycle
// through the profile catalogue with exponential inter-arrival gaps
// and lifetimes ("real-world scenarios where OpenStack would manage
// streams of incoming and terminating VMs"). It is PatternedStream at
// the constant base rate — same draws, same gaps.
func Stream(cfg StreamConfig, src *rng.Source) ([]Arrival, error) {
	return PatternedStream(cfg, nil, src)
}

// RateFn modulates an arrival stream's instantaneous intensity: it
// returns a multiplier on the base arrival rate at offset `at` from
// stream start. 1 is the base rate, 4 is a 4x burst, values are
// clamped below at 0.05 so a quiet phase slows arrivals rather than
// stopping time. A RateFn must be a pure function of `at` — the
// determinism contract of every stream consumer depends on it.
type RateFn func(at time.Duration) float64

// SteadyRate is the identity pattern: a constant-rate Poisson stream,
// identical to Stream.
func SteadyRate() RateFn {
	return func(time.Duration) float64 { return 1 }
}

// DiurnalRate oscillates the arrival rate sinusoidally around 1 with
// the given period: rate(t) = 1 + depth*sin(2πt/period). depth in
// [0,1) keeps the rate positive; the peak-to-trough ratio is
// (1+depth)/(1-depth).
func DiurnalRate(period time.Duration, depth float64) RateFn {
	return func(at time.Duration) float64 {
		return 1 + depth*math.Sin(2*math.Pi*float64(at)/float64(period))
	}
}

// BurstRate multiplies the base rate by `factor` inside the window
// [start, start+width) — a tenant onboarding wave or a load spike.
func BurstRate(start, width time.Duration, factor float64) RateFn {
	return func(at time.Duration) float64 {
		if at >= start && at < start+width {
			return factor
		}
		return 1
	}
}

// PatternedStream generates a deterministic arrival stream whose
// instantaneous rate is the base rate (1/MeanGap) scaled by the
// pattern: the i-th inter-arrival gap is an exponential draw divided
// by rate(at). With SteadyRate it degenerates to Stream's arithmetic
// exactly (same draws, same gaps), so a steady scenario and a plain
// stream with the same source are byte-identical.
func PatternedStream(cfg StreamConfig, rate RateFn, src *rng.Source) ([]Arrival, error) {
	if rate == nil {
		rate = SteadyRate()
	}
	if cfg.N <= 0 {
		return nil, fmt.Errorf("workload: stream N must be positive")
	}
	if cfg.MeanGap <= 0 || cfg.MeanLifetime <= 0 {
		return nil, fmt.Errorf("workload: stream gaps and lifetimes must be positive")
	}
	profiles := Profiles()
	arrivals := make([]Arrival, 0, cfg.N)
	at := time.Duration(0)
	for i := 0; i < cfg.N; i++ {
		p := profiles[i%len(profiles)]
		life := time.Duration(src.Exponential(1) * float64(cfg.MeanLifetime))
		if life < cfg.MinLifetime {
			life = cfg.MinLifetime
		}
		mem := p.MemTargetBytes + p.MemTargetBytes/4 // 25% headroom
		arrivals = append(arrivals, Arrival{
			At: at,
			Spec: VMSpec{
				Name:     fmt.Sprintf("vm-%03d-%s", i, p.Name),
				VCPUs:    1 + i%4,
				MemBytes: mem,
				Profile:  p,
			},
			Lifetime: life,
		})
		r := rate(at)
		if r < 0.05 {
			r = 0.05
		}
		at += time.Duration(src.Exponential(1) * float64(cfg.MeanGap) / r)
	}
	return arrivals, nil
}
