package cpu

import (
	"strings"
	"testing"

	"uniserver/internal/vfr"
)

func TestSPECSuiteComposition(t *testing.T) {
	suite := SPECSuite()
	if len(suite) != 8 {
		t.Fatalf("suite has %d benchmarks, want 8", len(suite))
	}
	want := map[string]bool{"bzip2": true, "mcf": true, "namd": true, "milc": true,
		"hmmer": true, "h264ref": true, "gobmk": true, "zeusmp": true}
	for _, b := range suite {
		if !want[b.Name] {
			t.Errorf("unexpected benchmark %q", b.Name)
		}
		if b.DroopIntensity < 0 || b.DroopIntensity > 1 {
			t.Errorf("%s droop intensity out of range", b.Name)
		}
		if b.CacheStress < 0 || b.CacheStress > 1 {
			t.Errorf("%s cache stress out of range", b.Name)
		}
		if b.Activity <= 0 || b.Activity > 1 {
			t.Errorf("%s activity out of range", b.Name)
		}
	}
}

func TestBenchmarkByName(t *testing.T) {
	b, err := BenchmarkByName("mcf")
	if err != nil || b.Name != "mcf" {
		t.Fatalf("BenchmarkByName(mcf) = %+v, %v", b, err)
	}
	if _, err := BenchmarkByName("nope"); err == nil {
		t.Fatal("unknown benchmark should error")
	}
}

func TestPartSpecs(t *testing.T) {
	i5 := PartI5_4200U()
	if i5.Nominal.VoltageMV != 844 || i5.Nominal.FreqMHz != 2600 || i5.Cores != 2 {
		t.Fatalf("i5 spec wrong: %+v", i5)
	}
	if !i5.ExposesCacheECC {
		t.Fatal("i5 must expose cache ECC (paper observed errors only there)")
	}
	i7 := PartI7_3970X()
	if i7.Nominal.VoltageMV != 1365 || i7.Nominal.FreqMHz != 4000 || i7.Cores != 6 {
		t.Fatalf("i7 spec wrong: %+v", i7)
	}
	if i7.ExposesCacheECC {
		t.Fatal("i7 must not expose cache ECC")
	}
}

func TestMachineDeterministic(t *testing.T) {
	a := NewMachine(PartI5_4200U(), 1)
	b := NewMachine(PartI5_4200U(), 1)
	ra := a.UndervoltSweep(0, SPECSuite()[0], 3)
	rb := b.UndervoltSweep(0, SPECSuite()[0], 3)
	for i := range ra {
		if ra[i] != rb[i] {
			t.Fatalf("sweep diverged at run %d: %+v vs %+v", i, ra[i], rb[i])
		}
	}
}

func TestRunAtNominalNeverCrashes(t *testing.T) {
	m := NewMachine(PartI5_4200U(), 2)
	for _, b := range SPECSuite() {
		for core := 0; core < m.Spec.Cores; core++ {
			for r := 0; r < 5; r++ {
				out := m.RunAt(core, b, m.Spec.Nominal.VoltageMV)
				if out.Crashed {
					t.Fatalf("crash at nominal voltage: %s core %d", b.Name, core)
				}
				if out.ECCErrors != 0 {
					t.Fatalf("ECC errors at nominal voltage: %s core %d", b.Name, core)
				}
			}
		}
	}
}

func TestRunAtDeepUndervoltCrashes(t *testing.T) {
	m := NewMachine(PartI7_3970X(), 3)
	deep := m.Spec.Nominal.VoltageMV * 70 / 100 // -30%
	for _, b := range SPECSuite() {
		if out := m.RunAt(0, b, deep); !out.Crashed {
			t.Fatalf("no crash at -30%% undervolt for %s", b.Name)
		}
	}
}

func TestSweepFindsCrash(t *testing.T) {
	m := NewMachine(PartI5_4200U(), 4)
	rs := m.UndervoltSweep(0, SPECSuite()[0], 3)
	if len(rs) != 3 {
		t.Fatalf("got %d results, want 3", len(rs))
	}
	for _, r := range rs {
		if r.CrashVoltageMV <= 0 || r.CrashVoltageMV >= m.Spec.Nominal.VoltageMV {
			t.Fatalf("implausible crash voltage %d", r.CrashVoltageMV)
		}
		if r.CrashOffsetPct <= 0 {
			t.Fatalf("crash offset should be positive percent, got %v", r.CrashOffsetPct)
		}
		if r.ECCOnsetMV != 0 && r.ECCOnsetMV < r.CrashVoltageMV {
			t.Fatalf("ECC onset %d below crash %d", r.ECCOnsetMV, r.CrashVoltageMV)
		}
	}
}

func TestWorstCrashSelectsHighestVoltage(t *testing.T) {
	rs := []SweepResult{
		{CrashVoltageMV: 750}, {CrashVoltageMV: 762}, {CrashVoltageMV: 755},
	}
	if got := WorstCrash(rs); got.CrashVoltageMV != 762 {
		t.Fatalf("WorstCrash = %d, want 762", got.CrashVoltageMV)
	}
}

func TestWorstCrashPanicsEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	WorstCrash(nil)
}

// TestTable2I5 checks the i5-4200U row of Table 2: crash points around
// −10%..−11.2%, core-to-core variation 0%..2.7%, cache ECC errors in
// the 1..17 range with onset ~15 mV above crash. The simulator is
// calibrated, not fitted per-seed, so the assertions use tolerance
// bands around the published values.
func TestTable2I5(t *testing.T) {
	row := Characterize(PartI5_4200U(), SPECSuite(), 3, 42)
	if row.CrashMinPct < 9.0 || row.CrashMinPct > 11.5 {
		t.Errorf("i5 crash min = %.2f%%, want ~10%%", row.CrashMinPct)
	}
	if row.CrashMaxPct < 10.0 || row.CrashMaxPct > 12.5 {
		t.Errorf("i5 crash max = %.2f%%, want ~11.2%%", row.CrashMaxPct)
	}
	if row.CrashMaxPct <= row.CrashMinPct {
		t.Errorf("crash max (%.2f) must exceed min (%.2f)", row.CrashMaxPct, row.CrashMinPct)
	}
	if row.CoreVarMinPct > 1.0 {
		t.Errorf("i5 core-to-core min = %.2f%%, want ~0%%", row.CoreVarMinPct)
	}
	if row.CoreVarMaxPct > 5.0 {
		t.Errorf("i5 core-to-core max = %.2f%%, want ~2.7%%", row.CoreVarMaxPct)
	}
	if !row.HasECC {
		t.Fatal("i5 must expose ECC")
	}
	if row.ECCMin < 1 || row.ECCMin > 5 {
		t.Errorf("i5 ECC min = %d, want small (paper: 1)", row.ECCMin)
	}
	if row.ECCMax < 8 || row.ECCMax > 40 {
		t.Errorf("i5 ECC max = %d, want ~17", row.ECCMax)
	}
	if row.ECCOnsetGapMeanMV < 5 || row.ECCOnsetGapMeanMV > 25 {
		t.Errorf("i5 ECC onset gap = %.1f mV, want ~15", row.ECCOnsetGapMeanMV)
	}
}

// TestTable2I7 checks the i7-3970X row: crash points −8.4%..−15.4%,
// core-to-core variation 3.7%..8%, and no exposed cache ECC.
func TestTable2I7(t *testing.T) {
	row := Characterize(PartI7_3970X(), SPECSuite(), 3, 42)
	if row.CrashMinPct < 7.0 || row.CrashMinPct > 10.5 {
		t.Errorf("i7 crash min = %.2f%%, want ~8.4%%", row.CrashMinPct)
	}
	if row.CrashMaxPct < 13.0 || row.CrashMaxPct > 18.0 {
		t.Errorf("i7 crash max = %.2f%%, want ~15.4%%", row.CrashMaxPct)
	}
	if row.CoreVarMinPct < 1.0 || row.CoreVarMinPct > 6.5 {
		t.Errorf("i7 core-to-core min = %.2f%%, want ~3.7%%", row.CoreVarMinPct)
	}
	if row.CoreVarMaxPct < 5.0 || row.CoreVarMaxPct > 12.0 {
		t.Errorf("i7 core-to-core max = %.2f%%, want ~8%%", row.CoreVarMaxPct)
	}
	if row.HasECC || row.ECCMax != 0 {
		t.Errorf("i7 must not report ECC errors, got max=%d", row.ECCMax)
	}
	// The high-end part shows wider benchmark-driven spread than the
	// low-end part — the qualitative Table 2 shape.
	i5 := Characterize(PartI5_4200U(), SPECSuite(), 3, 42)
	if (row.CrashMaxPct - row.CrashMinPct) <= (i5.CrashMaxPct - i5.CrashMinPct) {
		t.Errorf("i7 crash spread should exceed i5 spread")
	}
}

func TestTable2RowString(t *testing.T) {
	row := Characterize(PartI5_4200U(), SPECSuite(), 3, 1)
	s := row.String()
	if !strings.Contains(s, "i5-4200U") || !strings.Contains(s, "crash points") {
		t.Fatalf("row rendering incomplete:\n%s", s)
	}
	row7 := Characterize(PartI7_3970X(), SPECSuite(), 3, 1)
	if !strings.Contains(row7.String(), "not exposed") {
		t.Fatal("i7 rendering should note ECC not exposed")
	}
}

func TestCoreToCoreVariationPct(t *testing.T) {
	if got := coreToCoreVariationPct([]float64{10, 10.27}); got < 2.6 || got > 2.8 {
		t.Fatalf("variation = %v, want ~2.7", got)
	}
	if got := coreToCoreVariationPct([]float64{10}); got != 0 {
		t.Fatalf("single-core variation = %v, want 0", got)
	}
	if got := coreToCoreVariationPct([]float64{0, 1}); got != 0 {
		t.Fatalf("degenerate variation = %v, want 0", got)
	}
}

func TestMarginsPublishSafePoints(t *testing.T) {
	spec := PartI5_4200U()
	margins := Margins(spec, SPECSuite(), 3, 9)
	if len(margins) != spec.Cores {
		t.Fatalf("got %d margins, want %d", len(margins), spec.Cores)
	}
	tab := vfr.NewEOPTable()
	for _, m := range margins {
		if m.Safe.VoltageMV != m.CrashPoint.VoltageMV+SafeCushionMV {
			t.Errorf("%s: safe %d != crash %d + cushion", m.Component, m.Safe.VoltageMV, m.CrashPoint.VoltageMV)
		}
		if m.Safe.VoltageMV >= spec.Nominal.VoltageMV {
			t.Errorf("%s: no recovered margin", m.Component)
		}
		if h := m.UndervoltHeadroomPct(); h < 5 {
			t.Errorf("%s: headroom %.1f%%, want >= 5%%", m.Component, h)
		}
		tab.Set(m)
	}
	worst, err := tab.WorstCase()
	if err != nil {
		t.Fatal(err)
	}
	if worst.VoltageMV >= spec.Nominal.VoltageMV {
		t.Fatal("even worst-case EOP should beat nominal")
	}
}

func BenchmarkUndervoltSweep(b *testing.B) {
	m := NewMachine(PartI5_4200U(), 1)
	bench := SPECSuite()[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.UndervoltSweep(i%m.Spec.Cores, bench, 1)
	}
}

func BenchmarkCharacterize(b *testing.B) {
	spec := PartI5_4200U()
	suite := SPECSuite()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Characterize(spec, suite, 3, uint64(i))
	}
}
