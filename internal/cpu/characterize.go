package cpu

import (
	"fmt"
	"strings"

	"uniserver/internal/stats"
	"uniserver/internal/vfr"
)

// Table2Row aggregates a full characterization campaign on one part
// into the quantities reported in Table 2 of the paper.
type Table2Row struct {
	Model string
	// CrashMinPct/CrashMaxPct are the minimum and maximum voltage
	// offsets below nominal (in positive percent) at which the system
	// crashed, across all benchmarks and cores.
	CrashMinPct, CrashMaxPct float64
	// CoreVarMinPct/CoreVarMaxPct are the minimum and maximum
	// core-to-core variability of the crash point among all cores for
	// the same benchmark (percent difference between the most and
	// least resilient core's crash offsets).
	CoreVarMinPct, CoreVarMaxPct float64
	// ECCMin/ECCMax are the minimum and maximum number of correctable
	// cache ECC errors observed in a single sweep that exposed any.
	ECCMin, ECCMax int
	// HasECC reports whether the part exposed cache ECC events at all.
	HasECC bool
	// ECCOnsetGapMeanMV is the mean gap between the voltage where ECC
	// errors first appeared and the crash voltage (paper: ~15 mV).
	ECCOnsetGapMeanMV float64
}

// String renders the row in the layout of Table 2.
func (r Table2Row) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s:\n", r.Model)
	fmt.Fprintf(&b, "  crash points below nominal VID: min=-%.1f%% max=-%.1f%%\n", r.CrashMinPct, r.CrashMaxPct)
	fmt.Fprintf(&b, "  core-to-core variation:         min=%.1f%% max=%.1f%%\n", r.CoreVarMinPct, r.CoreVarMaxPct)
	if r.HasECC {
		fmt.Fprintf(&b, "  cache ECC errors:               min=%d max=%d (onset %.0f mV above crash)\n",
			r.ECCMin, r.ECCMax, r.ECCOnsetGapMeanMV)
	} else {
		fmt.Fprintf(&b, "  cache ECC errors:               not exposed\n")
	}
	return b.String()
}

// Characterize runs the paper's Section 6.A campaign on one part:
// for every benchmark in the suite and every core, perform `runs`
// consecutive undervolt sweeps, then aggregate crash points,
// core-to-core variation and ECC statistics into a Table2Row.
func Characterize(spec PartSpec, suite []Benchmark, runs int, seed uint64) Table2Row {
	m := NewMachine(spec, seed)
	row := Table2Row{Model: spec.Model, HasECC: spec.ExposesCacheECC}

	var allOffsets []float64
	var coreVars []float64
	var onsetGaps []float64
	eccMin, eccMax := 0, 0

	for _, b := range suite {
		// Per-benchmark crash offset per core (worst of `runs`).
		perCore := make([]float64, spec.Cores)
		for core := 0; core < spec.Cores; core++ {
			results := m.UndervoltSweep(core, b, runs)
			worst := WorstCrash(results)
			perCore[core] = worst.CrashOffsetPct
			allOffsets = append(allOffsets, worst.CrashOffsetPct)
			for _, r := range results {
				if r.ECCErrors > 0 {
					if eccMin == 0 || r.ECCErrors < eccMin {
						eccMin = r.ECCErrors
					}
					if r.ECCErrors > eccMax {
						eccMax = r.ECCErrors
					}
					onsetGaps = append(onsetGaps, float64(r.ECCOnsetMV-r.CrashVoltageMV))
				}
			}
		}
		coreVars = append(coreVars, coreToCoreVariationPct(perCore))
	}

	row.CrashMinPct = stats.Min(allOffsets)
	row.CrashMaxPct = stats.Max(allOffsets)
	row.CoreVarMinPct = stats.Min(coreVars)
	row.CoreVarMaxPct = stats.Max(coreVars)
	row.ECCMin, row.ECCMax = eccMin, eccMax
	if len(onsetGaps) > 0 {
		row.ECCOnsetGapMeanMV = stats.Mean(onsetGaps)
	}
	return row
}

// coreToCoreVariationPct returns the percent difference between the
// largest and smallest crash offsets across cores for one benchmark,
// relative to the smallest: the "variability among all available cores
// for the same benchmark" of Table 2.
func coreToCoreVariationPct(offsets []float64) float64 {
	if len(offsets) < 2 {
		return 0
	}
	lo, hi := stats.Min(offsets), stats.Max(offsets)
	if lo <= 0 {
		return 0
	}
	return 100 * (hi - lo) / lo
}

// SafeCushionMV is the voltage cushion the StressLog adds above the
// observed crash point before publishing a safe extended operating
// point: it must cover at least the ECC-onset window so that the
// published point sits above the region where correctable errors ramp.
const SafeCushionMV = 25

// Margins converts a characterization campaign into per-core safe
// margins for the EOP table: each core's published safe voltage is its
// worst observed crash voltage across the suite plus SafeCushionMV.
func Margins(spec PartSpec, suite []Benchmark, runs int, seed uint64) []vfr.Margin {
	m := NewMachine(spec, seed)
	margins := make([]vfr.Margin, spec.Cores)
	for core := 0; core < spec.Cores; core++ {
		worstCrash := 0
		for _, b := range suite {
			w := WorstCrash(m.UndervoltSweep(core, b, runs))
			if w.CrashVoltageMV > worstCrash {
				worstCrash = w.CrashVoltageMV
			}
		}
		safe := worstCrash + SafeCushionMV
		margins[core] = vfr.Margin{
			Component:  fmt.Sprintf("%s/core%d", spec.Model, core),
			Nominal:    spec.Nominal,
			CrashPoint: spec.Nominal.WithVoltage(worstCrash),
			Safe:       spec.Nominal.WithVoltage(safe),
			CushionMV:  SafeCushionMV,
		}
	}
	return margins
}
