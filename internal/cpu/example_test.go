package cpu_test

import (
	"fmt"

	"uniserver/internal/cpu"
)

// Characterize one specimen of the paper's low-end part and read the
// Table 2 quantities off the result.
func ExampleCharacterize() {
	row := cpu.Characterize(cpu.PartI5_4200U(), cpu.SPECSuite(), 3, 42)
	fmt.Printf("crash band: -%.1f%% .. -%.1f%%\n", row.CrashMinPct, row.CrashMaxPct)
	fmt.Printf("cache ECC exposed: %v\n", row.HasECC)
	// Output:
	// crash band: -9.2% .. -10.4%
	// cache ECC exposed: true
}

// An undervolt sweep descends from nominal until the run crashes,
// collecting correctable cache ECC events on the way down.
func ExampleMachine_UndervoltSweep() {
	m := cpu.NewMachine(cpu.PartI5_4200U(), 7)
	bench, _ := cpu.BenchmarkByName("mcf")
	worst := cpu.WorstCrash(m.UndervoltSweep(0, bench, 3))
	fmt.Printf("mcf crashes core 0 at %d mV (%.1f%% below nominal)\n",
		worst.CrashVoltageMV, worst.CrashOffsetPct)
	// Output:
	// mcf crashes core 0 at 760 mV (10.0% below nominal)
}
