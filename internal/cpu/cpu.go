// Package cpu simulates the undervolting characterization the paper
// performs on two x86-64 parts (Section 6.A, Table 2): sweeping the
// supply voltage below nominal per core and per benchmark until the
// system crashes, while counting the cache ECC corrections that appear
// shortly before the crash point.
//
// The simulator reproduces the paper's three observables:
//
//  1. crash points below nominal VID (−10%..−11.2% for the i5-4200U,
//     −8.4%..−15.4% for the i7-3970X),
//  2. core-to-core variation of the crash points (0%..2.7% and
//     3.7%..8% respectively), and
//  3. cache ECC error counts before the crash (1..17, exposed only by
//     the low-end part), with errors first appearing on average ~15 mV
//     above the crash voltage.
//
// The mechanism: a core crashes at voltage Vcrit(core, f) + droop(w),
// where Vcrit carries die-to-die and within-die process variation
// (package silicon) and droop(w) is the workload-dependent supply
// noise. SRAM cells in the cache begin to fail slightly above the
// logic crash point, producing correctable ECC events at a rate that
// grows as the voltage approaches the crash point.
package cpu

import (
	"fmt"

	"uniserver/internal/rng"
	"uniserver/internal/silicon"
	"uniserver/internal/vfr"
)

// Benchmark describes the undervolting-relevant behaviour of one
// workload: how violently it excites the power-delivery network, how
// hard it hits the caches, and its average switching activity.
type Benchmark struct {
	Name string
	// DroopIntensity in [0,1] positions the workload between the
	// part's minimum and maximum di/dt droop.
	DroopIntensity float64
	// CacheStress in [0,1] scales the rate of correctable cache ECC
	// events near Vmin.
	CacheStress float64
	// Activity in [0,1] is the dynamic-power activity factor.
	Activity float64
}

// SPECSuite returns the eight SPEC CPU2006 benchmarks used in the
// paper ("8 benchmarks with diverse behaviors"). The profile values
// are behavioural stand-ins chosen to span the diversity the paper
// exploits: memory-bound codes (mcf, milc) excite large current steps,
// cache-resident integer codes (bzip2, gobmk) stress the SRAM arrays,
// and compute-dense FP codes (namd, zeusmp) run hot but smooth.
func SPECSuite() []Benchmark {
	return []Benchmark{
		{Name: "bzip2", DroopIntensity: 0.35, CacheStress: 0.80, Activity: 0.62},
		{Name: "mcf", DroopIntensity: 0.95, CacheStress: 0.55, Activity: 0.48},
		{Name: "namd", DroopIntensity: 0.10, CacheStress: 0.25, Activity: 0.85},
		{Name: "milc", DroopIntensity: 0.85, CacheStress: 0.50, Activity: 0.55},
		{Name: "hmmer", DroopIntensity: 0.25, CacheStress: 0.65, Activity: 0.80},
		{Name: "h264ref", DroopIntensity: 0.45, CacheStress: 0.70, Activity: 0.75},
		{Name: "gobmk", DroopIntensity: 0.55, CacheStress: 0.85, Activity: 0.58},
		{Name: "zeusmp", DroopIntensity: 0.05, CacheStress: 0.30, Activity: 0.70},
	}
}

// BenchmarkByName returns the suite benchmark with the given name.
func BenchmarkByName(name string) (Benchmark, error) {
	for _, b := range SPECSuite() {
		if b.Name == name {
			return b, nil
		}
	}
	return Benchmark{}, fmt.Errorf("cpu: unknown benchmark %q", name)
}

// PartSpec describes a commercial processor model as characterized in
// the paper, including the behavioural constants that calibrate the
// simulator to the measured Table 2 rows.
type PartSpec struct {
	Model   string
	Nominal vfr.Point
	Cores   int
	Proc    silicon.Process
	// DroopMinMV/DroopMaxMV bound the workload-induced supply droop.
	DroopMinMV, DroopMaxMV float64
	// ExposesCacheECC reports whether the part's MCA banks surface
	// correctable cache ECC events to software (the paper observed
	// them only on the low-end part).
	ExposesCacheECC bool
	// ECCOnsetMeanMV is the mean voltage gap above the crash point at
	// which cache ECC errors begin to appear (paper: ~15 mV).
	ECCOnsetMeanMV float64
	// ECCOnsetSigmaMV is the run-to-run spread of the onset gap.
	ECCOnsetSigmaMV float64
	// RunNoiseMV is the run-to-run measurement noise of the crash
	// voltage.
	RunNoiseMV float64
	// VIDStepMV is the voltage-offset granularity of the sweep.
	VIDStepMV int
}

// PartI5_4200U returns the low-end mobile part of Table 2
// (2 cores, 0.844 V nominal, 2.6 GHz).
func PartI5_4200U() PartSpec {
	return PartSpec{
		Model:   "i5-4200U",
		Nominal: vfr.Point{VoltageMV: 844, FreqMHz: 2600},
		Cores:   2,
		Proc: silicon.Process{
			Name:            "22nm-mobile",
			VthMV:           420,
			SlopeMVPerGHz:   125.2, // Vcrit(2.6GHz) ≈ 745.5 mV
			D2DSigmaMV:      2,
			WIDSigmaMV:      0.5,
			DroopPctTypical: 0.5,
			DroopPctWorst:   1.7,
		},
		DroopMinMV:      4,
		DroopMaxMV:      14,
		ExposesCacheECC: true,
		ECCOnsetMeanMV:  15,
		ECCOnsetSigmaMV: 3,
		RunNoiseMV:      0.4,
		VIDStepMV:       2,
	}
}

// PartI7_3970X returns the high-end desktop part of Table 2
// (6 cores, 1.365 V nominal, 4.0 GHz).
func PartI7_3970X() PartSpec {
	return PartSpec{
		Model:   "i7-3970X",
		Nominal: vfr.Point{VoltageMV: 1365, FreqMHz: 4000},
		Cores:   6,
		Proc: silicon.Process{
			Name:            "32nm-desktop",
			VthMV:           500,
			SlopeMVPerGHz:   160, // Vcrit(4.0GHz) ≈ 1140 mV
			D2DSigmaMV:      4,
			WIDSigmaMV:      3.2,
			DroopPctTypical: 1.1,
			DroopPctWorst:   8.0,
		},
		DroopMinMV:      15,
		DroopMaxMV:      110,
		ExposesCacheECC: false,
		ECCOnsetMeanMV:  15,
		ECCOnsetSigmaMV: 3,
		RunNoiseMV:      2.0,
		VIDStepMV:       2,
	}
}

// Machine is one physical specimen of a part: a fabricated die plus
// the measurement apparatus state.
type Machine struct {
	Spec PartSpec
	Chip *silicon.Chip
	src  *rng.Source
}

// NewMachine fabricates one specimen of the part. Machines built from
// the same spec and seed are identical.
func NewMachine(spec PartSpec, seed uint64) *Machine {
	src := rng.New(seed).SplitLabeled(spec.Model)
	chip := silicon.Fabricate(spec.Proc, spec.Model, spec.Cores, spec.Nominal, 1, src)
	return &Machine{Spec: spec, Chip: chip, src: src}
}

// Clone returns a deep copy of the machine: the same fabricated die
// (with its accumulated aging) and the same measurement-stream
// position, evolving independently of the original from here on.
func (m *Machine) Clone() *Machine {
	src := *m.src
	return &Machine{Spec: m.Spec, Chip: m.Chip.Clone(), src: &src}
}

// StampFrom overwrites m with a deep copy of src, reusing m's chip and
// stream storage. It is the arena form of Clone: m must already have
// been built by New or Clone (non-nil Chip and stream), and afterwards
// evolves independently of src exactly as a Clone would.
func (m *Machine) StampFrom(src *Machine) {
	m.Spec = src.Spec
	src.Chip.CopyInto(m.Chip)
	*m.src = *src.src
}

// StreamState returns the measurement stream's position — the
// persistence hook snapshot serialization uses alongside the chip's
// exported state.
func (m *Machine) StreamState() uint64 { return m.src.State() }

// ReseedStream repositions the measurement stream at the given state
// word — the archetype-clone hook: machines cloned from one
// characterized specimen share the fabricated die (same margins, same
// aging) but must draw independent measurement noise from here on.
// The stream is replaced in place, so every holder of the machine
// pointer (the StressLog daemon included) sees the repositioned
// stream.
func (m *Machine) ReseedStream(state uint64) { m.src = rng.FromState(state) }

// RestoreMachine reassembles a machine from serialized parts: the
// part spec, the fabricated (and possibly aged) chip, and the
// measurement-stream position StreamState captured. The result runs
// the exact sweep sequence the source machine would have.
func RestoreMachine(spec PartSpec, chip *silicon.Chip, stream uint64) *Machine {
	return &Machine{Spec: spec, Chip: chip, src: rng.FromState(stream)}
}

// droopMV samples the workload-induced droop for one run.
func (m *Machine) droopMV(b Benchmark) float64 {
	base := m.Spec.DroopMinMV + b.DroopIntensity*(m.Spec.DroopMaxMV-m.Spec.DroopMinMV)
	d := base + m.src.Normal(0, m.Spec.RunNoiseMV)
	if d < 0 {
		d = 0
	}
	return d
}

// crashVoltageMV returns the true (continuous) crash voltage for one
// run of benchmark b on the given core: the supply level below which
// the run crashes.
func (m *Machine) crashVoltageMV(core int, b Benchmark) float64 {
	return m.Chip.VcritMV(core, m.Spec.Nominal.FreqMHz) + m.droopMV(b)
}

// RunOutcome is the result of executing a benchmark run at a fixed
// voltage offset.
type RunOutcome struct {
	Crashed   bool
	ECCErrors int // correctable cache ECC events observed (0 if hidden)
}

// RunAt executes one run of b on the core at the given supply voltage
// and reports whether the system crashed and how many correctable
// cache ECC events were observed.
func (m *Machine) RunAt(core int, b Benchmark, voltageMV int) RunOutcome {
	crash := m.crashVoltageMV(core, b)
	if float64(voltageMV) < crash {
		return RunOutcome{Crashed: true}
	}
	return RunOutcome{ECCErrors: m.eccEventsAt(b, float64(voltageMV), crash)}
}

// eccEventsAt samples the correctable cache ECC events for a run at
// supply v given the run's crash voltage. Events appear only within
// the onset window above the crash point, at a rate that rises
// linearly toward the crash voltage and scales with cache stress.
func (m *Machine) eccEventsAt(b Benchmark, v, crash float64) int {
	if !m.Spec.ExposesCacheECC {
		return 0
	}
	onset := m.Spec.ECCOnsetMeanMV + m.src.Normal(0, m.Spec.ECCOnsetSigmaMV)
	if onset < 2 {
		onset = 2
	}
	gap := v - crash
	if gap >= onset {
		return 0
	}
	// Rate grows from ~0 at the onset boundary to its maximum just
	// above the crash point.
	closeness := 1 - gap/onset
	lambda := (0.5 + 3.5*b.CacheStress) * closeness
	return m.src.Poisson(lambda)
}

// SweepResult records one undervolt sweep of one benchmark run on one
// core: descending from nominal in VID steps until the crash.
type SweepResult struct {
	Core           int
	Bench          string
	Run            int
	CrashVoltageMV int     // first (highest) swept voltage that crashed
	CrashOffsetPct float64 // |offset| below nominal, positive percent
	ECCErrors      int     // total correctable events seen before crash
	ECCOnsetMV     int     // voltage of first ECC event (0 = none seen)
}

// UndervoltSweep performs `runs` consecutive descending voltage sweeps
// of benchmark b on the given core, mirroring the paper's methodology
// of 3 consecutive runs per benchmark.
func (m *Machine) UndervoltSweep(core int, b Benchmark, runs int) []SweepResult {
	results := make([]SweepResult, 0, runs)
	for r := 0; r < runs; r++ {
		crash := m.crashVoltageMV(core, b)
		res := SweepResult{Core: core, Bench: b.Name, Run: r}
		for v := m.Spec.Nominal.VoltageMV; v > 0; v -= m.Spec.VIDStepMV {
			if float64(v) < crash {
				res.CrashVoltageMV = v
				res.CrashOffsetPct = -vfr.Point{VoltageMV: v, FreqMHz: m.Spec.Nominal.FreqMHz}.
					VoltageOffsetPct(m.Spec.Nominal.VoltageMV)
				break
			}
			if n := m.eccEventsAt(b, float64(v), crash); n > 0 {
				if res.ECCOnsetMV == 0 {
					res.ECCOnsetMV = v
				}
				res.ECCErrors += n
			}
		}
		results = append(results, res)
	}
	return results
}

// WorstCrash returns the sweep result with the highest crash voltage
// (the least undervolt headroom) — the conservative estimate a
// characterization campaign must publish.
func WorstCrash(rs []SweepResult) SweepResult {
	if len(rs) == 0 {
		panic("cpu: WorstCrash of empty results")
	}
	worst := rs[0]
	for _, r := range rs[1:] {
		if r.CrashVoltageMV > worst.CrashVoltageMV {
			worst = r
		}
	}
	return worst
}
