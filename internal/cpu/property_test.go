package cpu

import (
	"testing"
	"testing/quick"
)

// TestCrashMonotoneInVoltageProperty: if a run crashes at voltage v,
// an identical run at any lower voltage also crashes (using a machine
// clone so both runs consume identical noise draws).
func TestCrashMonotoneInVoltageProperty(t *testing.T) {
	err := quick.Check(func(seed uint64, benchIdx, coreRaw uint8, uvRaw uint16) bool {
		spec := PartI5_4200U()
		b := SPECSuite()[int(benchIdx)%8]
		core := int(coreRaw) % spec.Cores
		uv := int(uvRaw)%150 + 1 // 1..150 mV below nominal

		m1 := NewMachine(spec, seed)
		m2 := NewMachine(spec, seed)
		hi := m1.RunAt(core, b, spec.Nominal.VoltageMV-uv)
		lo := m2.RunAt(core, b, spec.Nominal.VoltageMV-uv-20)
		// Crash at the higher voltage implies crash 20 mV lower.
		if hi.Crashed && !lo.Crashed {
			return false
		}
		return true
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

// TestSweepInvariantsProperty: every sweep terminates with a crash
// voltage strictly inside (0, nominal), offsets are consistent with
// the crash voltage, and ECC errors never appear on parts that hide
// them.
func TestSweepInvariantsProperty(t *testing.T) {
	err := quick.Check(func(seed uint64, benchIdx uint8, useI7 bool) bool {
		spec := PartI5_4200U()
		if useI7 {
			spec = PartI7_3970X()
		}
		m := NewMachine(spec, seed)
		b := SPECSuite()[int(benchIdx)%8]
		for _, r := range m.UndervoltSweep(0, b, 2) {
			if r.CrashVoltageMV <= 0 || r.CrashVoltageMV >= spec.Nominal.VoltageMV {
				return false
			}
			wantOffset := 100 * float64(spec.Nominal.VoltageMV-r.CrashVoltageMV) / float64(spec.Nominal.VoltageMV)
			if diff := r.CrashOffsetPct - wantOffset; diff > 1e-9 || diff < -1e-9 {
				return false
			}
			if !spec.ExposesCacheECC && r.ECCErrors != 0 {
				return false
			}
			if r.ECCErrors > 0 && r.ECCOnsetMV <= r.CrashVoltageMV {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 40})
	if err != nil {
		t.Fatal(err)
	}
}

// TestMarginsAlwaysBelowNominalProperty: published safe points always
// recover some margin yet stay above the observed crash point.
func TestMarginsAlwaysBelowNominalProperty(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		spec := PartI5_4200U()
		for _, m := range Margins(spec, SPECSuite(), 2, seed) {
			if m.Safe.VoltageMV >= spec.Nominal.VoltageMV {
				return false
			}
			if m.Safe.VoltageMV != m.CrashPoint.VoltageMV+SafeCushionMV {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 15})
	if err != nil {
		t.Fatal(err)
	}
}
