// Package predictor implements the machine-learning Predictor of
// Section 3.E: a failure-probability model trained on the vectors the
// HealthLog and StressLog produce, used to advise the Hypervisor on
// the best V-F-R mode (high-performance or low-power) for the current
// workload and runtime conditions.
//
// The model is an online logistic regression over operating-point and
// workload features. Logistic regression is a deliberate choice: the
// daemon must retrain in the field on a micro-server, its decisions
// must be explainable (the hypervisor logs why a point was rejected),
// and the failure boundary in (voltage-margin, stress) space is
// monotone — all properties the paper's "probability failure models"
// need.
package predictor

import (
	"errors"
	"fmt"
	"math"

	"uniserver/internal/rng"
	"uniserver/internal/vfr"
)

// FeatureCount is the dimensionality of the feature vector.
const FeatureCount = 4

// Features encodes one observation window for the model.
type Features struct {
	// UndervoltPct is how far below nominal the supply sits, in
	// percent (positive = undervolted).
	UndervoltPct float64
	// DroopIntensity in [0,1] characterizes the workload's di/dt
	// behaviour (estimated from performance counters at runtime).
	DroopIntensity float64
	// TempC is the die temperature.
	TempC float64
	// RefreshLogRatio is log2(refresh / 64 ms) for the DRAM domain the
	// workload's memory lives on (0 at nominal refresh).
	RefreshLogRatio float64
}

// vector returns the normalized feature vector.
func (f Features) vector() [FeatureCount]float64 {
	return [FeatureCount]float64{
		f.UndervoltPct / 10,   // ~1 at a 10% undervolt
		f.DroopIntensity,      // already [0,1]
		(f.TempC - 55) / 30,   // ~0 at 55°C, ±1 over ±30°C
		f.RefreshLogRatio / 6, // ~1 at 64x nominal refresh
	}
}

// Sample is one labeled training observation.
type Sample struct {
	F       Features
	Crashed bool
}

// Model is a logistic-regression failure-probability model. The zero
// value is untrained; use NewModel.
type Model struct {
	W       [FeatureCount]float64
	B       float64
	LR      float64 // SGD learning rate
	L2      float64 // ridge penalty
	Trained int     // samples consumed
}

// NewModel returns a model with standard hyperparameters.
func NewModel() *Model {
	return &Model{LR: 0.15, L2: 1e-4}
}

// Predict returns the model's crash probability for the features.
func (m *Model) Predict(f Features) float64 {
	x := f.vector()
	z := m.B
	for i, w := range m.W {
		z += w * x[i]
	}
	return 1 / (1 + math.Exp(-z))
}

// Update performs one SGD step on a single sample.
func (m *Model) Update(s Sample) {
	x := s.F.vector()
	y := 0.0
	if s.Crashed {
		y = 1
	}
	p := m.Predict(s.F)
	g := p - y
	for i := range m.W {
		m.W[i] -= m.LR * (g*x[i] + m.L2*m.W[i])
	}
	m.B -= m.LR * g
	m.Trained++
}

// Fit trains for the given number of epochs over the samples, shuffled
// each epoch with src.
func (m *Model) Fit(samples []Sample, epochs int, src *rng.Source) error {
	if len(samples) == 0 {
		return errors.New("predictor: no training samples")
	}
	if epochs <= 0 {
		return errors.New("predictor: epochs must be positive")
	}
	idx := make([]int, len(samples))
	for i := range idx {
		idx[i] = i
	}
	for e := 0; e < epochs; e++ {
		src.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		for _, i := range idx {
			m.Update(samples[i])
		}
	}
	return nil
}

// Accuracy returns the fraction of samples classified correctly at the
// 0.5 threshold. An empty sample set has no defined accuracy and
// returns NaN — consistent with Fit, which refuses to train on empty
// input, and distinguishable from a model that is genuinely 0%
// accurate.
func (m *Model) Accuracy(samples []Sample) float64 {
	if len(samples) == 0 {
		return math.NaN()
	}
	correct := 0
	for _, s := range samples {
		if (m.Predict(s.F) >= 0.5) == s.Crashed {
			correct++
		}
	}
	return float64(correct) / float64(len(samples))
}

// LogLoss returns the mean cross-entropy over the samples. An empty
// sample set has no defined loss and returns NaN — consistent with Fit
// and Accuracy — rather than a perfect-looking 0.
func (m *Model) LogLoss(samples []Sample) float64 {
	if len(samples) == 0 {
		return math.NaN()
	}
	const eps = 1e-12
	total := 0.0
	for _, s := range samples {
		p := m.Predict(s.F)
		if s.Crashed {
			total += -math.Log(p + eps)
		} else {
			total += -math.Log(1 - p + eps)
		}
	}
	return total / float64(len(samples))
}

// Advice is the Predictor's recommendation to the Hypervisor.
type Advice struct {
	Component string
	Mode      vfr.Mode
	Point     vfr.Point
	// PredictedFailProb is the model's crash probability at the
	// recommended point.
	PredictedFailProb float64
	// BackoffMV is how many millivolts of extra cushion the advisor
	// added beyond the published margin to meet the risk target.
	BackoffMV int
}

// Advisor combines the trained model with the StressLog's margin table
// to answer "which point should this component run at, in this mode,
// under this workload, at this risk budget".
type Advisor struct {
	Model *Model
	Table *vfr.EOPTable
	// MaxBackoffMV bounds how far the advisor will retreat from the
	// published margin before giving up and recommending nominal.
	MaxBackoffMV int
}

// NewAdvisor returns an advisor over the model and margin table.
func NewAdvisor(model *Model, table *vfr.EOPTable) *Advisor {
	return &Advisor{Model: model, Table: table, MaxBackoffMV: 80}
}

// Advise recommends an operating point for the component in the given
// mode such that the predicted failure probability stays at or below
// target. Low-power mode scales frequency to 50% and voltage toward
// the margin; high-performance mode holds nominal frequency and shaves
// voltage. Nominal mode always returns the manufacturer point.
func (a *Advisor) Advise(component string, mode vfr.Mode, workload Features, target float64) (Advice, error) {
	margin, err := a.Table.Lookup(component)
	if err != nil {
		return Advice{}, err
	}
	if target <= 0 || target >= 1 {
		return Advice{}, fmt.Errorf("predictor: target failure probability %v outside (0,1)", target)
	}

	nominal := margin.Nominal
	if mode == vfr.ModeNominal {
		return Advice{Component: component, Mode: mode, Point: nominal,
			PredictedFailProb: a.predictAt(nominal, nominal, workload)}, nil
	}

	candidate := margin.Safe
	if mode == vfr.ModeLowPower {
		// Half frequency needs less voltage: move the candidate down
		// by the critical-voltage slope implied by the margin table
		// being calibrated at nominal frequency. We conservatively
		// keep the characterized safe voltage and only halve
		// frequency, which strictly increases timing slack.
		candidate.FreqMHz = nominal.FreqMHz / 2
	}

	for backoff := 0; backoff <= a.MaxBackoffMV; backoff += 5 {
		p := candidate.WithVoltage(candidate.VoltageMV + backoff)
		if p.VoltageMV >= nominal.VoltageMV {
			break
		}
		prob := a.predictAt(p, nominal, workload)
		if prob <= target {
			return Advice{
				Component:         component,
				Mode:              mode,
				Point:             p,
				PredictedFailProb: prob,
				BackoffMV:         backoff,
			}, nil
		}
	}
	// Risk target unreachable below nominal: fall back to nominal.
	return Advice{
		Component:         component,
		Mode:              vfr.ModeNominal,
		Point:             nominal,
		PredictedFailProb: a.predictAt(nominal, nominal, workload),
		BackoffMV:         a.MaxBackoffMV,
	}, nil
}

// predictAt evaluates the model at an operating point, deriving the
// undervolt feature from the point and carrying the workload features
// through.
func (a *Advisor) predictAt(p, nominal vfr.Point, workload Features) float64 {
	f := workload
	f.UndervoltPct = -p.VoltageOffsetPct(nominal.VoltageMV)
	if p.Refresh > 0 {
		f.RefreshLogRatio = math.Log2(float64(p.Refresh) / float64(vfr.NominalRefresh))
	}
	return a.Model.Predict(f)
}
