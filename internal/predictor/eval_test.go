package predictor

import (
	"math"
	"strings"
	"testing"
)

func TestConfusionMatrixBasics(t *testing.T) {
	m, train := trainedModel(t)
	c := m.Confusion(train, 0.5)
	if c.TP+c.FP+c.TN+c.FN != len(train) {
		t.Fatal("confusion matrix loses samples")
	}
	if c.Precision() < 0.85 || c.Recall() < 0.85 {
		t.Fatalf("weak classifier: %s", c)
	}
	if c.F1() < 0.85 {
		t.Fatalf("F1 = %v", c.F1())
	}
	if !strings.Contains(c.String(), "precision=") {
		t.Fatal("rendering incomplete")
	}
}

func TestConfusionThresholdTradeoff(t *testing.T) {
	m, train := trainedModel(t)
	loose := m.Confusion(train, 0.1)  // flag almost everything risky
	strict := m.Confusion(train, 0.9) // flag almost nothing
	if loose.Recall() < strict.Recall() {
		t.Fatal("lower threshold should not reduce recall")
	}
	if loose.FalsePositiveRate() < strict.FalsePositiveRate() {
		t.Fatal("lower threshold should not reduce false-positive rate")
	}
}

func TestConfusionEdgeCases(t *testing.T) {
	var c ConfusionMatrix
	if c.Precision() != 0 || c.Recall() != 0 || c.F1() != 0 || c.FalsePositiveRate() != 0 {
		t.Fatal("empty matrix metrics should be 0")
	}
}

func TestAUCStrongModel(t *testing.T) {
	m, _ := trainedModel(t)
	test := syntheticDataset(77, 1500)
	auc, err := m.AUC(test)
	if err != nil {
		t.Fatal(err)
	}
	if auc < 0.95 {
		t.Fatalf("AUC = %.3f, want near-perfect separation", auc)
	}
}

func TestAUCChanceForUntrained(t *testing.T) {
	m := NewModel() // all-zero weights: constant prediction
	test := syntheticDataset(78, 800)
	auc, err := m.AUC(test)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(auc-0.5) > 0.02 {
		t.Fatalf("constant model AUC = %.3f, want 0.5 (tie handling)", auc)
	}
}

func TestAUCNeedsBothClasses(t *testing.T) {
	m := NewModel()
	onlySafe := []Sample{{Crashed: false}, {Crashed: false}}
	if _, err := m.AUC(onlySafe); err == nil {
		t.Fatal("single-class AUC accepted")
	}
}

func TestCalibration(t *testing.T) {
	m, train := trainedModel(t)
	bins, err := m.Calibration(train, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(bins) != 10 {
		t.Fatalf("bins = %d", len(bins))
	}
	total := 0
	for _, b := range bins {
		total += b.N
		if b.N > 0 && (b.ObservedRate < 0 || b.ObservedRate > 1) {
			t.Fatalf("observed rate out of range: %+v", b)
		}
	}
	if total != len(train) {
		t.Fatal("calibration loses samples")
	}
	ece := ExpectedCalibrationError(bins)
	if ece > 0.08 {
		t.Fatalf("expected calibration error = %.3f, want reasonably calibrated", ece)
	}
	if RenderCalibration(bins) == "" {
		t.Fatal("empty rendering")
	}
}

func TestCalibrationValidation(t *testing.T) {
	m := NewModel()
	if _, err := m.Calibration(nil, 0); err == nil {
		t.Fatal("zero bins accepted")
	}
	if ExpectedCalibrationError(nil) != 0 {
		t.Fatal("empty ECE should be 0")
	}
}
