package predictor

import (
	"math"
	"testing"

	"uniserver/internal/cpu"
	"uniserver/internal/rng"
	"uniserver/internal/vfr"
)

// syntheticDataset builds a labeled dataset from the CPU simulator:
// runs at varying undervolt depths with crash labels, exactly what the
// StressLog campaigns feed the Predictor.
func syntheticDataset(seed uint64, n int) []Sample {
	m := cpu.NewMachine(cpu.PartI5_4200U(), seed)
	suite := cpu.SPECSuite()
	src := rng.New(seed)
	samples := make([]Sample, 0, n)
	for i := 0; i < n; i++ {
		b := suite[src.Intn(len(suite))]
		undervolt := src.Range(0, 16) // percent
		v := int(float64(m.Spec.Nominal.VoltageMV) * (1 - undervolt/100))
		out := m.RunAt(src.Intn(m.Spec.Cores), b, v)
		samples = append(samples, Sample{
			F: Features{
				UndervoltPct:   undervolt,
				DroopIntensity: b.DroopIntensity,
				TempC:          src.Range(45, 70),
			},
			Crashed: out.Crashed,
		})
	}
	return samples
}

func trainedModel(t *testing.T) (*Model, []Sample) {
	t.Helper()
	train := syntheticDataset(1, 3000)
	m := NewModel()
	if err := m.Fit(train, 8, rng.New(2)); err != nil {
		t.Fatal(err)
	}
	return m, train
}

func TestFitValidation(t *testing.T) {
	m := NewModel()
	if err := m.Fit(nil, 1, rng.New(1)); err == nil {
		t.Fatal("empty dataset accepted")
	}
	if err := m.Fit([]Sample{{}}, 0, rng.New(1)); err == nil {
		t.Fatal("zero epochs accepted")
	}
}

func TestModelLearnsCrashBoundary(t *testing.T) {
	m, train := trainedModel(t)
	test := syntheticDataset(99, 1000)
	acc := m.Accuracy(test)
	if acc < 0.90 {
		t.Fatalf("held-out accuracy = %.3f, want >= 0.90", acc)
	}
	if m.Trained != 3000*8 {
		t.Fatalf("Trained = %d", m.Trained)
	}
	// Training loss should beat chance (log 2).
	if ll := m.LogLoss(train); ll > 0.45 {
		t.Fatalf("training log-loss = %.3f, want < 0.45", ll)
	}
}

func TestPredictionMonotoneInUndervolt(t *testing.T) {
	m, _ := trainedModel(t)
	f := Features{DroopIntensity: 0.5, TempC: 55}
	prev := -1.0
	for uv := 0.0; uv <= 16; uv += 1 {
		f.UndervoltPct = uv
		p := m.Predict(f)
		if p < prev {
			t.Fatalf("crash probability decreased at undervolt %v%%", uv)
		}
		prev = p
	}
	// Shallow undervolt must be safe, deep must be risky.
	f.UndervoltPct = 2
	if p := m.Predict(f); p > 0.2 {
		t.Errorf("P(crash | 2%% undervolt) = %.3f, want small", p)
	}
	f.UndervoltPct = 15
	if p := m.Predict(f); p < 0.8 {
		t.Errorf("P(crash | 15%% undervolt) = %.3f, want large", p)
	}
}

func TestDroopierWorkloadIsRiskier(t *testing.T) {
	m, _ := trainedModel(t)
	calm := Features{UndervoltPct: 10.5, DroopIntensity: 0.05, TempC: 55}
	angry := Features{UndervoltPct: 10.5, DroopIntensity: 0.95, TempC: 55}
	if m.Predict(angry) <= m.Predict(calm) {
		t.Fatal("high-droop workload should be riskier at equal undervolt")
	}
}

// TestMetricsEmptyInput pins the empty-sample-set contract: Fit
// refuses to train on an empty set, so the evaluation metrics treat it
// the same way — undefined, reported as NaN rather than a fake perfect
// (or perfectly bad) score a dashboard could mistake for a real one.
func TestMetricsEmptyInput(t *testing.T) {
	m := NewModel()
	cases := []struct {
		name    string
		samples []Sample
		metric  func([]Sample) float64
	}{
		{"accuracy nil", nil, m.Accuracy},
		{"accuracy empty", []Sample{}, m.Accuracy},
		{"logloss nil", nil, m.LogLoss},
		{"logloss empty", []Sample{}, m.LogLoss},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := c.metric(c.samples); !math.IsNaN(got) {
				t.Fatalf("empty sample set scored %v, want NaN", got)
			}
		})
	}
	// One sample is a defined input: the metrics must return real
	// numbers again.
	one := []Sample{{F: Features{UndervoltPct: 2, TempC: 55}}}
	if got := m.Accuracy(one); math.IsNaN(got) {
		t.Fatal("single-sample accuracy is NaN")
	}
	if got := m.LogLoss(one); math.IsNaN(got) {
		t.Fatal("single-sample log-loss is NaN")
	}
}

func marginTable() *vfr.EOPTable {
	tab := vfr.NewEOPTable()
	tab.Set(vfr.Margin{
		Component:  "i5-4200U/core0",
		Nominal:    vfr.Point{VoltageMV: 844, FreqMHz: 2600},
		CrashPoint: vfr.Point{VoltageMV: 756, FreqMHz: 2600},
		Safe:       vfr.Point{VoltageMV: 781, FreqMHz: 2600},
		CushionMV:  25,
	})
	return tab
}

func TestAdviseNominalMode(t *testing.T) {
	m, _ := trainedModel(t)
	a := NewAdvisor(m, marginTable())
	adv, err := a.Advise("i5-4200U/core0", vfr.ModeNominal, Features{DroopIntensity: 0.5, TempC: 55}, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if adv.Point.VoltageMV != 844 || adv.Mode != vfr.ModeNominal {
		t.Fatalf("nominal advice = %+v", adv)
	}
}

func TestAdviseHighPerformanceShavesVoltage(t *testing.T) {
	m, _ := trainedModel(t)
	a := NewAdvisor(m, marginTable())
	adv, err := a.Advise("i5-4200U/core0", vfr.ModeHighPerformance,
		Features{DroopIntensity: 0.3, TempC: 55}, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if adv.Point.FreqMHz != 2600 {
		t.Fatalf("high-performance mode changed frequency: %+v", adv)
	}
	if adv.Point.VoltageMV >= 844 {
		t.Fatalf("no voltage shaved: %+v", adv)
	}
	if adv.PredictedFailProb > 0.05 {
		t.Fatalf("advice violates risk target: %+v", adv)
	}
}

func TestAdviseLowPowerHalvesFrequency(t *testing.T) {
	m, _ := trainedModel(t)
	a := NewAdvisor(m, marginTable())
	adv, err := a.Advise("i5-4200U/core0", vfr.ModeLowPower,
		Features{DroopIntensity: 0.3, TempC: 55}, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if adv.Point.FreqMHz != 1300 {
		t.Fatalf("low-power frequency = %d, want 1300", adv.Point.FreqMHz)
	}
	if adv.Point.VoltageMV >= 844 {
		t.Fatalf("low-power mode should undervolt: %+v", adv)
	}
}

func TestAdviseTighterTargetBacksOff(t *testing.T) {
	m, _ := trainedModel(t)
	a := NewAdvisor(m, marginTable())
	w := Features{DroopIntensity: 0.9, TempC: 65}
	loose, err := a.Advise("i5-4200U/core0", vfr.ModeHighPerformance, w, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	tight, err := a.Advise("i5-4200U/core0", vfr.ModeHighPerformance, w, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if tight.Point.VoltageMV < loose.Point.VoltageMV {
		t.Fatalf("tighter target chose lower voltage: tight=%+v loose=%+v", tight, loose)
	}
	if tight.BackoffMV < loose.BackoffMV {
		t.Fatalf("tighter target backed off less: tight=%d loose=%d", tight.BackoffMV, loose.BackoffMV)
	}
}

func TestAdviseFallsBackToNominal(t *testing.T) {
	// An untrained-but-biased model that predicts certain doom
	// everywhere forces the nominal fallback.
	m := NewModel()
	m.B = 10 // sigmoid(10) ~ 1
	a := NewAdvisor(m, marginTable())
	adv, err := a.Advise("i5-4200U/core0", vfr.ModeHighPerformance, Features{}, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	if adv.Mode != vfr.ModeNominal || adv.Point.VoltageMV != 844 {
		t.Fatalf("doom model should force nominal: %+v", adv)
	}
}

func TestAdviseErrors(t *testing.T) {
	m, _ := trainedModel(t)
	a := NewAdvisor(m, marginTable())
	if _, err := a.Advise("ghost", vfr.ModeNominal, Features{}, 0.01); err == nil {
		t.Fatal("unknown component accepted")
	}
	if _, err := a.Advise("i5-4200U/core0", vfr.ModeNominal, Features{}, 0); err == nil {
		t.Fatal("zero target accepted")
	}
	if _, err := a.Advise("i5-4200U/core0", vfr.ModeNominal, Features{}, 1); err == nil {
		t.Fatal("unit target accepted")
	}
}

func TestFitDeterministic(t *testing.T) {
	train := syntheticDataset(5, 500)
	m1, m2 := NewModel(), NewModel()
	if err := m1.Fit(train, 3, rng.New(7)); err != nil {
		t.Fatal(err)
	}
	if err := m2.Fit(train, 3, rng.New(7)); err != nil {
		t.Fatal(err)
	}
	if m1.W != m2.W || m1.B != m2.B {
		t.Fatal("training not deterministic")
	}
}

func TestPredictProbabilityBounds(t *testing.T) {
	m, _ := trainedModel(t)
	for uv := -5.0; uv < 30; uv += 0.5 {
		p := m.Predict(Features{UndervoltPct: uv, DroopIntensity: 0.5, TempC: 55})
		if p < 0 || p > 1 || math.IsNaN(p) {
			t.Fatalf("probability out of bounds: %v", p)
		}
	}
}

func BenchmarkPredict(b *testing.B) {
	m := NewModel()
	f := Features{UndervoltPct: 8, DroopIntensity: 0.5, TempC: 55}
	for i := 0; i < b.N; i++ {
		_ = m.Predict(f)
	}
}

func BenchmarkFit(b *testing.B) {
	train := syntheticDataset(1, 1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := NewModel()
		if err := m.Fit(train, 1, rng.New(uint64(i))); err != nil {
			b.Fatal(err)
		}
	}
}
