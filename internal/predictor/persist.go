package predictor

import (
	"encoding/json"
	"fmt"
	"io"
)

// modelJSON is the wire form of a trained model.
type modelJSON struct {
	Version int                   `json:"version"`
	W       [FeatureCount]float64 `json:"weights"`
	B       float64               `json:"bias"`
	LR      float64               `json:"learning_rate"`
	L2      float64               `json:"l2"`
	Trained int                   `json:"trained_samples"`
}

// persistVersion guards the on-disk format.
const persistVersion = 1

// Save serializes the trained model; the Predictor daemon persists it
// so a restarted node advises from day one without retraining.
func (m *Model) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(modelJSON{
		Version: persistVersion,
		W:       m.W, B: m.B, LR: m.LR, L2: m.L2, Trained: m.Trained,
	}); err != nil {
		return fmt.Errorf("predictor: saving model: %w", err)
	}
	return nil
}

// LoadModel reads a model written by Save.
func LoadModel(r io.Reader) (*Model, error) {
	var in modelJSON
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("predictor: loading model: %w", err)
	}
	if in.Version != persistVersion {
		return nil, fmt.Errorf("predictor: unsupported model version %d", in.Version)
	}
	return &Model{W: in.W, B: in.B, LR: in.LR, L2: in.L2, Trained: in.Trained}, nil
}
