package predictor

import (
	"bytes"
	"strings"
	"testing"
)

func TestModelSaveLoadRoundTrip(t *testing.T) {
	m, _ := trainedModel(t)
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.W != m.W || got.B != m.B || got.Trained != m.Trained {
		t.Fatal("round trip lost parameters")
	}
	// The restored model predicts identically.
	f := Features{UndervoltPct: 9, DroopIntensity: 0.6, TempC: 60}
	if got.Predict(f) != m.Predict(f) {
		t.Fatal("restored model predicts differently")
	}
	// And keeps learning.
	got.Update(Sample{F: f, Crashed: true})
	if got.Trained != m.Trained+1 {
		t.Fatal("restored model cannot continue training")
	}
}

func TestLoadModelRejectsGarbage(t *testing.T) {
	if _, err := LoadModel(strings.NewReader("{")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := LoadModel(strings.NewReader(`{"version":9}`)); err == nil {
		t.Fatal("future version accepted")
	}
}
