package predictor

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// ConfusionMatrix tallies classification outcomes at a threshold.
type ConfusionMatrix struct {
	TP, FP, TN, FN int
}

// Confusion evaluates the model over samples at the given probability
// threshold.
func (m *Model) Confusion(samples []Sample, threshold float64) ConfusionMatrix {
	var c ConfusionMatrix
	for _, s := range samples {
		pred := m.Predict(s.F) >= threshold
		switch {
		case pred && s.Crashed:
			c.TP++
		case pred && !s.Crashed:
			c.FP++
		case !pred && !s.Crashed:
			c.TN++
		default:
			c.FN++
		}
	}
	return c
}

// Precision returns TP/(TP+FP), or 0 when nothing was predicted
// positive.
func (c ConfusionMatrix) Precision() float64 {
	if c.TP+c.FP == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FP)
}

// Recall returns TP/(TP+FN), or 0 when there were no positives.
func (c ConfusionMatrix) Recall() float64 {
	if c.TP+c.FN == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FN)
}

// F1 returns the harmonic mean of precision and recall.
func (c ConfusionMatrix) F1() float64 {
	p, r := c.Precision(), c.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// FalsePositiveRate returns FP/(FP+TN): the fraction of safe points
// the model would needlessly refuse — wasted energy savings.
func (c ConfusionMatrix) FalsePositiveRate() float64 {
	if c.FP+c.TN == 0 {
		return 0
	}
	return float64(c.FP) / float64(c.FP+c.TN)
}

// String renders the matrix compactly.
func (c ConfusionMatrix) String() string {
	return fmt.Sprintf("tp=%d fp=%d tn=%d fn=%d precision=%.3f recall=%.3f f1=%.3f",
		c.TP, c.FP, c.TN, c.FN, c.Precision(), c.Recall(), c.F1())
}

// AUC computes the area under the ROC curve over the samples by the
// rank statistic (probability a random crashed sample scores above a
// random safe one). It returns an error when one class is absent.
func (m *Model) AUC(samples []Sample) (float64, error) {
	type scored struct {
		p       float64
		crashed bool
	}
	xs := make([]scored, 0, len(samples))
	pos, neg := 0, 0
	for _, s := range samples {
		xs = append(xs, scored{m.Predict(s.F), s.Crashed})
		if s.Crashed {
			pos++
		} else {
			neg++
		}
	}
	if pos == 0 || neg == 0 {
		return 0, errors.New("predictor: AUC needs both classes")
	}
	sort.Slice(xs, func(i, j int) bool { return xs[i].p < xs[j].p })
	// Sum ranks of positive samples (average ranks over ties).
	rankSum := 0.0
	i := 0
	for i < len(xs) {
		j := i
		for j < len(xs) && xs[j].p == xs[i].p {
			j++
		}
		avgRank := float64(i+j+1) / 2 // 1-based average rank of the tie group
		for k := i; k < j; k++ {
			if xs[k].crashed {
				rankSum += avgRank
			}
		}
		i = j
	}
	u := rankSum - float64(pos)*float64(pos+1)/2
	return u / (float64(pos) * float64(neg)), nil
}

// CalibrationBin is one reliability-diagram bucket.
type CalibrationBin struct {
	Lo, Hi        float64
	N             int
	MeanPredicted float64
	ObservedRate  float64
}

// Calibration buckets the samples into `bins` equal-width predicted-
// probability bins and reports predicted-versus-observed crash rates.
func (m *Model) Calibration(samples []Sample, bins int) ([]CalibrationBin, error) {
	if bins <= 0 {
		return nil, errors.New("predictor: bins must be positive")
	}
	out := make([]CalibrationBin, bins)
	sums := make([]float64, bins)
	crashes := make([]int, bins)
	for i := range out {
		out[i].Lo = float64(i) / float64(bins)
		out[i].Hi = float64(i+1) / float64(bins)
	}
	for _, s := range samples {
		p := m.Predict(s.F)
		idx := int(p * float64(bins))
		if idx == bins {
			idx--
		}
		out[idx].N++
		sums[idx] += p
		if s.Crashed {
			crashes[idx]++
		}
	}
	for i := range out {
		if out[i].N > 0 {
			out[i].MeanPredicted = sums[i] / float64(out[i].N)
			out[i].ObservedRate = float64(crashes[i]) / float64(out[i].N)
		}
	}
	return out, nil
}

// ExpectedCalibrationError returns the N-weighted mean absolute gap
// between predicted and observed rates across bins.
func ExpectedCalibrationError(bins []CalibrationBin) float64 {
	total := 0
	weighted := 0.0
	for _, b := range bins {
		total += b.N
		gap := b.MeanPredicted - b.ObservedRate
		if gap < 0 {
			gap = -gap
		}
		weighted += float64(b.N) * gap
	}
	if total == 0 {
		return 0
	}
	return weighted / float64(total)
}

// RenderCalibration renders a reliability diagram as text.
func RenderCalibration(bins []CalibrationBin) string {
	var b strings.Builder
	for _, bin := range bins {
		if bin.N == 0 {
			continue
		}
		fmt.Fprintf(&b, "[%.2f,%.2f) n=%-5d predicted=%.3f observed=%.3f\n",
			bin.Lo, bin.Hi, bin.N, bin.MeanPredicted, bin.ObservedRate)
	}
	return b.String()
}
