// Package rng provides a small, deterministic pseudo-random number
// generator and the distribution samplers used throughout the UniServer
// simulators.
//
// Every stochastic component in this repository takes an explicit
// *Source so that experiments are exactly reproducible: the same seed
// always yields the same characterization results, fault-injection
// outcomes and scheduler decisions. The generator is SplitMix64
// (Steele, Lea, Flood; "Fast splittable pseudorandom number
// generators", OOPSLA 2014), which passes BigCrush and supports cheap
// stream splitting, making it well suited to hierarchical simulations
// where each chip, core, DIMM and daemon owns an independent stream.
package rng

import "math"

// goldenGamma is the odd constant used by SplitMix64 to advance the
// state; it is the closest odd integer to 2^64/phi.
const goldenGamma = 0x9E3779B97F4A7C15

// Source is a deterministic SplitMix64 random number generator.
// The zero value is a valid generator seeded with 0; prefer New so
// that intent is explicit.
type Source struct {
	state uint64
}

// New returns a Source seeded with the given value. Two Sources with
// the same seed produce identical streams.
func New(seed uint64) *Source {
	return &Source{state: seed}
}

// Split derives an independent child stream from s. The child's seed
// is drawn from the parent stream, so sibling order matters but the
// construction keeps parent and children statistically independent.
func (s *Source) Split() *Source {
	return &Source{state: s.Uint64()}
}

// SplitLabeled derives an independent child stream bound to a string
// label, so that adding a new consumer does not perturb the streams of
// existing consumers that use different labels.
func (s *Source) SplitLabeled(label string) *Source {
	return &Source{state: s.state ^ uint64(MakeLabel(label))}
}

// Label is a precomputed SplitLabeled key: the FNV-1a hash of the
// label string. Hot paths that split on the same label every window
// hoist the hash with MakeLabel (usually into a package-level var) and
// call SplitWith, which neither hashes nor heap-allocates.
type Label uint64

// MakeLabel hashes a label string once. MakeLabel + SplitWith is
// stream-identical to SplitLabeled on the same string.
func MakeLabel(label string) Label {
	h := uint64(14695981039346656037) // FNV-1a offset basis
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= 1099511628211
	}
	return Label(h)
}

// SplitWith derives the same child stream SplitLabeled would for the
// label behind l, returned by value so callers can keep it on the
// stack or in a reused scratch slot.
func (s *Source) SplitWith(l Label) Source {
	return Source{state: s.state ^ uint64(l)}
}

// Uint64 returns the next value of the stream.
func (s *Source) Uint64() uint64 {
	s.state += goldenGamma
	z := s.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(s.Uint64() % uint64(n))
}

// Int63 returns a non-negative 63-bit value.
func (s *Source) Int63() int64 {
	return int64(s.Uint64() >> 1)
}

// Bool returns true with probability 1/2.
func (s *Source) Bool() bool {
	return s.Uint64()&1 == 1
}

// Bernoulli returns true with probability p (clamped to [0, 1]).
func (s *Source) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return s.Float64() < p
}

// Range returns a uniform value in [lo, hi). It panics if hi < lo.
func (s *Source) Range(lo, hi float64) float64 {
	if hi < lo {
		panic("rng: Range with hi < lo")
	}
	return lo + (hi-lo)*s.Float64()
}

// Normal returns a sample from the normal distribution with the given
// mean and standard deviation, using the Marsaglia polar method.
func (s *Source) Normal(mean, stddev float64) float64 {
	for {
		u := 2*s.Float64() - 1
		v := 2*s.Float64() - 1
		q := u*u + v*v
		if q == 0 || q >= 1 {
			continue
		}
		return mean + stddev*u*math.Sqrt(-2*math.Log(q)/q)
	}
}

// LogNormal returns a sample whose natural logarithm is normally
// distributed with parameters mu and sigma. DRAM cell retention times
// are conventionally modeled as log-normal (Liu et al., ISCA 2013).
func (s *Source) LogNormal(mu, sigma float64) float64 {
	return math.Exp(s.Normal(mu, sigma))
}

// Exponential returns a sample from the exponential distribution with
// the given rate (lambda). It panics if rate <= 0.
func (s *Source) Exponential(rate float64) float64 {
	if rate <= 0 {
		panic("rng: Exponential with non-positive rate")
	}
	for {
		u := s.Float64()
		if u > 0 {
			return -math.Log(u) / rate
		}
	}
}

// Poisson returns a sample from the Poisson distribution with the
// given mean. For small means it uses Knuth's product method; for
// large means it falls back to a normal approximation, which is
// adequate for the event-count magnitudes used by the simulators.
func (s *Source) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 500 {
		v := s.Normal(mean, math.Sqrt(mean))
		if v < 0 {
			return 0
		}
		return int(v + 0.5)
	}
	limit := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= s.Float64()
		if p <= limit {
			return k
		}
		k++
	}
}

// Binomial returns the number of successes in n Bernoulli trials with
// success probability p. For large n·p it uses a Poisson or normal
// approximation so that simulating billions of DRAM cells stays cheap.
func (s *Source) Binomial(n int, p float64) int {
	if n <= 0 || p <= 0 {
		return 0
	}
	if p >= 1 {
		return n
	}
	mean := float64(n) * p
	switch {
	case n <= 64:
		k := 0
		for i := 0; i < n; i++ {
			if s.Float64() < p {
				k++
			}
		}
		return k
	case mean < 32:
		// Rare-event regime: Poisson approximation.
		k := s.Poisson(mean)
		if k > n {
			return n
		}
		return k
	default:
		v := s.Normal(mean, math.Sqrt(mean*(1-p)))
		if v < 0 {
			return 0
		}
		if v > float64(n) {
			return n
		}
		return int(v + 0.5)
	}
}

// Perm returns a random permutation of [0, n) using Fisher–Yates.
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes the first n elements using the provided swap
// function, mirroring math/rand.Shuffle.
func (s *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		swap(i, j)
	}
}

// Choice returns a uniformly chosen index weighted by the given
// non-negative weights. It panics if weights is empty or sums to zero.
func (s *Source) Choice(weights []float64) int {
	total := 0.0
	for _, w := range weights {
		if w < 0 {
			panic("rng: Choice with negative weight")
		}
		total += w
	}
	if len(weights) == 0 || total == 0 {
		panic("rng: Choice with empty or zero-sum weights")
	}
	x := s.Float64() * total
	for i, w := range weights {
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}

// State returns the generator's internal state word — the persistence
// hook snapshot serialization uses. A Source restored with FromState
// continues the exact stream of its origin.
func (s *Source) State() uint64 { return s.state }

// FromState reconstructs a Source at the given state word, resuming
// the stream exactly where State captured it.
func FromState(state uint64) *Source {
	return &Source{state: state}
}
