package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical values", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Split()
	c2 := parent.Split()
	if c1.Uint64() == c2.Uint64() {
		t.Fatal("sibling splits produced identical first values")
	}
}

func TestSplitLabeledStable(t *testing.T) {
	a := New(9).SplitLabeled("cpu")
	b := New(9).SplitLabeled("cpu")
	if a.Uint64() != b.Uint64() {
		t.Fatal("labeled splits with same label diverged")
	}
	c := New(9).SplitLabeled("dram")
	d := New(9).SplitLabeled("cpu")
	if c.Uint64() == d.Uint64() {
		t.Fatal("labeled splits with different labels collided")
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(3)
	for i := 0; i < 10000; i++ {
		v := s.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	s := New(11)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	s := New(5)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := s.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Fatalf("Intn(10) hit only %d distinct values in 1000 draws", len(seen))
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestNormalMoments(t *testing.T) {
	s := New(13)
	const n = 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := s.Normal(10, 3)
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean-10) > 0.05 {
		t.Errorf("normal mean = %v, want ~10", mean)
	}
	if math.Abs(math.Sqrt(variance)-3) > 0.05 {
		t.Errorf("normal stddev = %v, want ~3", math.Sqrt(variance))
	}
}

func TestLogNormalPositive(t *testing.T) {
	s := New(17)
	for i := 0; i < 10000; i++ {
		if v := s.LogNormal(0, 1); v <= 0 {
			t.Fatalf("LogNormal returned non-positive %v", v)
		}
	}
}

func TestExponentialMean(t *testing.T) {
	s := New(19)
	const n = 100000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += s.Exponential(2)
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.02 {
		t.Fatalf("exponential(2) mean = %v, want ~0.5", mean)
	}
}

func TestExponentialPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Exponential(0) did not panic")
		}
	}()
	New(1).Exponential(0)
}

func TestPoissonMean(t *testing.T) {
	s := New(23)
	for _, mean := range []float64{0.5, 4, 60, 800} {
		const n = 20000
		sum := 0.0
		for i := 0; i < n; i++ {
			sum += float64(s.Poisson(mean))
		}
		got := sum / n
		tol := 4 * math.Sqrt(mean/n) * 2
		if math.Abs(got-mean) > tol+0.05 {
			t.Errorf("Poisson(%v) mean = %v, want within %v", mean, got, tol)
		}
	}
}

func TestPoissonZeroMean(t *testing.T) {
	if got := New(1).Poisson(0); got != 0 {
		t.Fatalf("Poisson(0) = %d, want 0", got)
	}
}

func TestBinomialEdges(t *testing.T) {
	s := New(29)
	if got := s.Binomial(100, 0); got != 0 {
		t.Errorf("Binomial(100,0) = %d, want 0", got)
	}
	if got := s.Binomial(100, 1); got != 100 {
		t.Errorf("Binomial(100,1) = %d, want 100", got)
	}
	if got := s.Binomial(0, 0.5); got != 0 {
		t.Errorf("Binomial(0,0.5) = %d, want 0", got)
	}
}

func TestBinomialMean(t *testing.T) {
	s := New(31)
	cases := []struct {
		n int
		p float64
	}{
		{20, 0.3},     // exact path
		{1000, 0.001}, // Poisson path
		{100000, 0.4}, // normal path
	}
	for _, c := range cases {
		const trials = 5000
		sum := 0.0
		for i := 0; i < trials; i++ {
			v := s.Binomial(c.n, c.p)
			if v < 0 || v > c.n {
				t.Fatalf("Binomial(%d,%v) out of range: %d", c.n, c.p, v)
			}
			sum += float64(v)
		}
		mean := sum / trials
		want := float64(c.n) * c.p
		sd := math.Sqrt(float64(c.n) * c.p * (1 - c.p))
		if math.Abs(mean-want) > 5*sd/math.Sqrt(trials)+0.2 {
			t.Errorf("Binomial(%d,%v) mean = %v, want ~%v", c.n, c.p, mean, want)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		s := New(seed)
		n := 1 + s.Intn(50)
		p := s.Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestBernoulliExtremes(t *testing.T) {
	s := New(37)
	for i := 0; i < 100; i++ {
		if s.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !s.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
	}
}

func TestChoiceWeighting(t *testing.T) {
	s := New(41)
	counts := make([]int, 3)
	const n = 30000
	for i := 0; i < n; i++ {
		counts[s.Choice([]float64{1, 2, 7})]++
	}
	if !(counts[2] > counts[1] && counts[1] > counts[0]) {
		t.Fatalf("Choice ignored weights: %v", counts)
	}
	frac := float64(counts[2]) / n
	if math.Abs(frac-0.7) > 0.02 {
		t.Fatalf("Choice weight-7 fraction = %v, want ~0.7", frac)
	}
}

func TestChoicePanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Choice(nil) did not panic")
		}
	}()
	New(1).Choice(nil)
}

func TestRangeBounds(t *testing.T) {
	s := New(43)
	for i := 0; i < 1000; i++ {
		v := s.Range(-5, 5)
		if v < -5 || v >= 5 {
			t.Fatalf("Range out of bounds: %v", v)
		}
	}
}

func TestShuffleKeepsElements(t *testing.T) {
	s := New(47)
	xs := []int{1, 2, 3, 4, 5, 6}
	sum := 0
	for _, v := range xs {
		sum += v
	}
	s.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	got := 0
	for _, v := range xs {
		got += v
	}
	if got != sum {
		t.Fatalf("shuffle changed element sum: %d != %d", got, sum)
	}
}

func BenchmarkUint64(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		_ = s.Uint64()
	}
}

func BenchmarkNormal(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		_ = s.Normal(0, 1)
	}
}

func BenchmarkBinomialLarge(b *testing.B) {
	s := New(1)
	for i := 0; i < b.N; i++ {
		_ = s.Binomial(1<<30, 1e-9)
	}
}
