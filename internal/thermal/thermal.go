// Package thermal models die and DIMM temperature with a first-order
// RC network: temperature relaxes toward ambient plus the product of
// dissipated power and thermal resistance. Temperature matters twice
// in the UniServer stack — leakage power rises exponentially with die
// temperature (power package) and DRAM retention halves roughly every
// 10°C (dram package) — so the operating conditions the paper's EOP
// must adapt to ("variations of environmental conditions") are a
// first-class simulated quantity.
package thermal

import (
	"errors"
	"fmt"
	"math"
	"time"
)

// Node is one first-order thermal node.
type Node struct {
	// Name identifies the node (e.g. "cpu", "dimm0").
	Name string
	// AmbientC is the environment temperature the node relaxes toward.
	AmbientC float64
	// ResistanceCPerW converts dissipated watts into steady-state
	// degrees above ambient.
	ResistanceCPerW float64
	// TimeConstant is the RC time constant of the node.
	TimeConstant time.Duration
	// TempC is the current temperature.
	TempC float64
}

// NewNode returns a node settled at ambient.
func NewNode(name string, ambientC, resistanceCPerW float64, tau time.Duration) (*Node, error) {
	if resistanceCPerW <= 0 {
		return nil, errors.New("thermal: resistance must be positive")
	}
	if tau <= 0 {
		return nil, errors.New("thermal: time constant must be positive")
	}
	return &Node{
		Name:            name,
		AmbientC:        ambientC,
		ResistanceCPerW: resistanceCPerW,
		TimeConstant:    tau,
		TempC:           ambientC,
	}, nil
}

// SteadyStateC returns the temperature the node converges to while
// dissipating the given power.
func (n *Node) SteadyStateC(powerW float64) float64 {
	return n.AmbientC + powerW*n.ResistanceCPerW
}

// Step advances the node by dt while dissipating powerW, using the
// exact exponential solution of the first-order ODE (stable for any
// step size).
func (n *Node) Step(powerW float64, dt time.Duration) float64 {
	if dt <= 0 {
		return n.TempC
	}
	target := n.SteadyStateC(powerW)
	alpha := 1 - math.Exp(-float64(dt)/float64(n.TimeConstant))
	n.TempC += (target - n.TempC) * alpha
	return n.TempC
}

// CPUNode returns a node shaped like a micro-server SoC: ~0.8 °C/W
// with a ~20 s time constant in an air-conditioned room.
func CPUNode(ambientC float64) *Node {
	n, err := NewNode("cpu", ambientC, 0.8, 20*time.Second)
	if err != nil {
		panic(fmt.Sprintf("thermal: CPUNode construction: %v", err))
	}
	return n
}

// DIMMNode returns a node shaped like a DDR3 DIMM: slower and cooler
// than the SoC (~1.5 °C/W, ~90 s).
func DIMMNode(ambientC float64) *Node {
	n, err := NewNode("dimm", ambientC, 1.5, 90*time.Second)
	if err != nil {
		panic(fmt.Sprintf("thermal: DIMMNode construction: %v", err))
	}
	return n
}

// Trip is a thermal protection threshold.
type Trip struct {
	// WarnC raises a telemetry event; TripC forces a fallback to
	// nominal (thermal excursions shrink voltage margins).
	WarnC, TripC float64
}

// DefaultTrip returns server-class thresholds.
func DefaultTrip() Trip { return Trip{WarnC: 85, TripC: 95} }

// Check classifies a temperature against the trip thresholds:
// 0 = normal, 1 = warning, 2 = trip.
func (t Trip) Check(tempC float64) int {
	switch {
	case tempC >= t.TripC:
		return 2
	case tempC >= t.WarnC:
		return 1
	default:
		return 0
	}
}
