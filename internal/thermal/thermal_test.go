package thermal

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestNewNodeValidation(t *testing.T) {
	if _, err := NewNode("x", 25, 0, time.Second); err == nil {
		t.Fatal("zero resistance accepted")
	}
	if _, err := NewNode("x", 25, 1, 0); err == nil {
		t.Fatal("zero time constant accepted")
	}
}

func TestStartsAtAmbient(t *testing.T) {
	n := CPUNode(25)
	if n.TempC != 25 {
		t.Fatalf("initial temp = %v", n.TempC)
	}
}

func TestConvergesToSteadyState(t *testing.T) {
	n := CPUNode(25)
	const p = 20.0 // watts
	want := n.SteadyStateC(p)
	for i := 0; i < 100; i++ {
		n.Step(p, 5*time.Second)
	}
	if math.Abs(n.TempC-want) > 0.01 {
		t.Fatalf("temp = %v, steady state %v", n.TempC, want)
	}
	if want != 25+20*0.8 {
		t.Fatalf("steady state arithmetic wrong: %v", want)
	}
}

func TestCoolsBackToAmbient(t *testing.T) {
	n := CPUNode(25)
	for i := 0; i < 50; i++ {
		n.Step(30, 5*time.Second)
	}
	hot := n.TempC
	for i := 0; i < 100; i++ {
		n.Step(0, 5*time.Second)
	}
	if n.TempC >= hot || math.Abs(n.TempC-25) > 0.05 {
		t.Fatalf("did not cool to ambient: %v (was %v)", n.TempC, hot)
	}
}

func TestStepMonotoneTowardTarget(t *testing.T) {
	err := quick.Check(func(rawP, rawT uint8) bool {
		n := CPUNode(25)
		p := float64(rawP % 60)
		n.TempC = 25 + float64(rawT%70)
		before := n.TempC
		target := n.SteadyStateC(p)
		after := n.Step(p, time.Second)
		// The step must move toward the target without overshooting.
		if target > before {
			return after >= before && after <= target
		}
		return after <= before && after >= target
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestStepExactExponential(t *testing.T) {
	n := CPUNode(25)
	// One large step must equal many small steps (exact solution).
	big := CPUNode(25)
	for i := 0; i < 600; i++ {
		n.Step(15, 100*time.Millisecond)
	}
	big.Step(15, 60*time.Second)
	if math.Abs(n.TempC-big.TempC) > 1e-6 {
		t.Fatalf("step-size dependence: %v vs %v", n.TempC, big.TempC)
	}
	if n.Step(15, 0) != n.TempC {
		t.Fatal("zero step changed temperature")
	}
}

func TestDIMMSlowerAndCooler(t *testing.T) {
	cpu := CPUNode(25)
	dimm := DIMMNode(25)
	cpu.Step(10, 10*time.Second)
	dimm.Step(10, 10*time.Second)
	if dimm.TempC >= cpu.TempC {
		t.Fatalf("DIMM heated faster than SoC: %v vs %v", dimm.TempC, cpu.TempC)
	}
}

func TestTripThresholds(t *testing.T) {
	trip := DefaultTrip()
	if trip.Check(60) != 0 {
		t.Fatal("normal temp flagged")
	}
	if trip.Check(88) != 1 {
		t.Fatal("warning temp not flagged")
	}
	if trip.Check(96) != 2 {
		t.Fatal("trip temp not flagged")
	}
}
