// Package hypervisor implements the error-resilient, KVM-style
// symmetric hypervisor of Section 4.A: it gives VMs a reliable virtual
// execution environment on top of potentially unreliable hardware by
// (a) choosing safe extended operating points, (b) masking errors from
// upper layers, (c) isolating processing and memory resources with
// high error rates, and (d) protecting its own critical state through
// criticality-driven selective checkpointing, guided by the fault-
// injection characterization of Section 6.C.
package hypervisor

import (
	"fmt"

	"uniserver/internal/rng"
)

// Category labels a group of statically allocated hypervisor objects
// by subsystem, matching the x-axis of Figure 4 (plus "net", which the
// paper's text calls out as sensitive alongside fs and kernel).
type Category string

// The object categories of the fault-injection study.
const (
	CatBlock    Category = "block"
	CatDrivers  Category = "drivers"
	CatFS       Category = "fs"
	CatInit     Category = "init"
	CatKernel   Category = "kernel"
	CatMM       Category = "mm"
	CatNet      Category = "net"
	CatPCI      Category = "pci"
	CatPower    Category = "power"
	CatSecurity Category = "security"
	CatVDSO     Category = "vdso"
)

// Categories returns all categories in display order.
func Categories() []Category {
	return []Category{CatBlock, CatDrivers, CatFS, CatInit, CatKernel,
		CatMM, CatNet, CatPCI, CatPower, CatSecurity, CatVDSO}
}

// CategoryProfile captures how one subsystem's objects behave under
// fault injection: how many objects it has, what fraction are crucial
// (a corruption makes the hypervisor non-responsive if the object is
// consumed), and how likely an object is to be consumed during an
// observation window with and without VM load.
type CategoryProfile struct {
	Category Category
	// Count is the number of statically allocated objects.
	Count int
	// CrucialFrac is the fraction of objects whose corruption is fatal
	// when consumed (pointers, locks, invariant-bearing state).
	CrucialFrac float64
	// AccessLoaded/AccessUnloaded are the per-window probabilities
	// that an object is consumed, with active VMs and on an idle
	// hypervisor respectively. Load exercises the I/O and memory
	// paths roughly an order of magnitude harder (Figure 4's 10x).
	AccessLoaded, AccessUnloaded float64
	// MeanObjectBytes sizes the objects for footprint accounting.
	MeanObjectBytes int
}

// TotalObjects is the number of statically allocated hypervisor
// objects in the paper's characterization (Section 6.C).
const TotalObjects = 16820

// DefaultProfiles returns the category profiles calibrated so that a
// Figure 4-style campaign reproduces the paper's shape: fs, kernel and
// net dominate the failures, load amplifies failures by roughly an
// order of magnitude, and the sensitive categories are the same with
// and without load. Counts sum to TotalObjects.
func DefaultProfiles() []CategoryProfile {
	return []CategoryProfile{
		{CatBlock, 600, 0.40, 0.45, 0.050, 192},
		{CatDrivers, 5200, 0.20, 0.10, 0.012, 256},
		{CatFS, 2400, 0.50, 0.55, 0.050, 224},
		{CatInit, 300, 0.10, 0.02, 0.010, 128},
		{CatKernel, 3000, 0.45, 0.35, 0.040, 320},
		{CatMM, 1200, 0.40, 0.30, 0.030, 288},
		{CatNet, 2200, 0.45, 0.40, 0.035, 240},
		{CatPCI, 500, 0.15, 0.05, 0.010, 160},
		{CatPower, 350, 0.15, 0.06, 0.015, 96},
		{CatSecurity, 570, 0.20, 0.10, 0.020, 144},
		{CatVDSO, 500, 0.08, 0.03, 0.010, 64},
	}
}

// Object is one statically allocated hypervisor object.
type Object struct {
	ID       int
	Category Category
	Bytes    int
	// Crucial is the object's ground-truth sensitivity: corrupting it
	// and consuming it makes the hypervisor non-responsive. The
	// fault-injection campaign estimates this label empirically.
	Crucial bool
	// Protected marks objects covered by the selective-protection
	// mechanism (checked and restored from checkpoints).
	Protected bool
}

// ObjectMap is the hypervisor's statically allocated object inventory.
type ObjectMap struct {
	Objects  []Object
	profiles map[Category]CategoryProfile
}

// NewObjectMap fabricates the object inventory from the profiles.
func NewObjectMap(profiles []CategoryProfile, src *rng.Source) *ObjectMap {
	om := &ObjectMap{profiles: make(map[Category]CategoryProfile, len(profiles))}
	id := 0
	for _, p := range profiles {
		om.profiles[p.Category] = p
		for i := 0; i < p.Count; i++ {
			size := int(src.Normal(float64(p.MeanObjectBytes), float64(p.MeanObjectBytes)/4))
			if size < 8 {
				size = 8
			}
			om.Objects = append(om.Objects, Object{
				ID:       id,
				Category: p.Category,
				Bytes:    size,
				Crucial:  src.Bernoulli(p.CrucialFrac),
			})
			id++
		}
	}
	return om
}

// Clone returns a deep copy of the inventory, including each object's
// current Crucial and Protected labels.
func (om *ObjectMap) Clone() *ObjectMap {
	out := &ObjectMap{
		Objects:  append([]Object(nil), om.Objects...),
		profiles: make(map[Category]CategoryProfile, len(om.profiles)),
	}
	for c, p := range om.profiles {
		out.profiles[c] = p
	}
	return out
}

// Profiles returns the category profiles in category order — the
// persistence surface ObjectMapFromState reassembles an inventory
// from.
func (om *ObjectMap) Profiles() []CategoryProfile {
	out := make([]CategoryProfile, 0, len(om.profiles))
	for _, c := range Categories() {
		if p, ok := om.profiles[c]; ok {
			out = append(out, p)
		}
	}
	return out
}

// ObjectMapFromState reassembles an inventory from serialized parts:
// the fabricated objects (with their empirically learned Crucial and
// Protected labels) and the category profiles. Unlike NewObjectMap it
// fabricates nothing — the object population is taken verbatim.
func ObjectMapFromState(objects []Object, profiles []CategoryProfile) *ObjectMap {
	om := &ObjectMap{
		Objects:  append([]Object(nil), objects...),
		profiles: make(map[Category]CategoryProfile, len(profiles)),
	}
	for _, p := range profiles {
		om.profiles[p.Category] = p
	}
	return om
}

// Profile returns the category profile.
func (om *ObjectMap) Profile(c Category) (CategoryProfile, error) {
	p, ok := om.profiles[c]
	if !ok {
		return CategoryProfile{}, fmt.Errorf("hypervisor: unknown category %q", c)
	}
	return p, nil
}

// Len returns the number of objects.
func (om *ObjectMap) Len() int { return len(om.Objects) }

// StaticBytes returns the total size of the statically allocated
// objects (part of the hypervisor's base footprint).
func (om *ObjectMap) StaticBytes() uint64 {
	var total uint64
	for _, o := range om.Objects {
		total += uint64(o.Bytes)
	}
	return total
}

// CountByCategory returns the object count per category.
func (om *ObjectMap) CountByCategory() map[Category]int {
	out := make(map[Category]int)
	for _, o := range om.Objects {
		out[o.Category]++
	}
	return out
}

// AccessProb returns the per-window consumption probability for an
// object of category c under the given load condition.
func (om *ObjectMap) AccessProb(c Category, loaded bool) float64 {
	p, ok := om.profiles[c]
	if !ok {
		return 0
	}
	if loaded {
		return p.AccessLoaded
	}
	return p.AccessUnloaded
}

// Protect marks every object in the given categories as protected and
// returns the number of objects covered.
func (om *ObjectMap) Protect(categories ...Category) int {
	set := make(map[Category]bool, len(categories))
	for _, c := range categories {
		set[c] = true
	}
	n := 0
	for i := range om.Objects {
		if set[om.Objects[i].Category] && !om.Objects[i].Protected {
			om.Objects[i].Protected = true
			n++
		}
	}
	return n
}

// ProtectObjects marks the specific object IDs as protected.
func (om *ObjectMap) ProtectObjects(ids []int) int {
	n := 0
	for _, id := range ids {
		if id >= 0 && id < len(om.Objects) && !om.Objects[id].Protected {
			om.Objects[id].Protected = true
			n++
		}
	}
	return n
}

// ProtectedBytes returns the checkpoint footprint: the bytes of all
// protected objects (the cost of selective protection).
func (om *ObjectMap) ProtectedBytes() uint64 {
	var total uint64
	for _, o := range om.Objects {
		if o.Protected {
			total += uint64(o.Bytes)
		}
	}
	return total
}
