package hypervisor

import (
	"fmt"
	"testing"
)

func TestStartVMPinsVCPUs(t *testing.T) {
	h := testHypervisor(t, 71)
	if err := h.StartVM(vmSpec("vm1", 3)); err != nil {
		t.Fatal(err)
	}
	cores := h.Pinning("vm1")
	if len(cores) != 3 {
		t.Fatalf("pinned cores = %v", cores)
	}
	total := 0
	for c := 0; c < 8; c++ {
		total += h.CoreLoad(c)
	}
	if total != 3 {
		t.Fatalf("total core load = %d", total)
	}
	if err := h.StopVM("vm1"); err != nil {
		t.Fatal(err)
	}
	if len(h.Pinning("vm1")) != 0 {
		t.Fatal("pins not released on stop")
	}
}

func TestPinningBalancesLoad(t *testing.T) {
	h := testHypervisor(t, 73)
	for i := 0; i < 8; i++ {
		if err := h.StartVM(vmSpec(fmt.Sprintf("vm%d", i), 2)); err != nil {
			t.Fatal(err)
		}
	}
	// 16 vCPUs over 8 cores: perfectly balanced = 2 per core.
	for c := 0; c < 8; c++ {
		if got := h.CoreLoad(c); got != 2 {
			t.Fatalf("core %d load = %d, want 2", c, got)
		}
	}
}

func TestIsolateCoreRehomesVCPUs(t *testing.T) {
	h := testHypervisor(t, 75)
	if err := h.StartVM(vmSpec("vm1", 8)); err != nil {
		t.Fatal(err)
	}
	// One vCPU per core; isolate core 3 and expect its vCPU elsewhere.
	if err := h.IsolateCore(3); err != nil {
		t.Fatal(err)
	}
	if h.CoreLoad(3) != 0 {
		t.Fatalf("isolated core still loaded: %d", h.CoreLoad(3))
	}
	cores := h.Pinning("vm1")
	if len(cores) != 8 {
		t.Fatalf("vm1 lost vCPUs: %v", cores)
	}
	for _, c := range cores {
		if c == 3 {
			t.Fatal("vCPU still pinned to isolated core")
		}
	}
	if _, ok := h.VM("vm1"); !ok {
		t.Fatal("vm1 should survive the isolation")
	}
}

func TestIsolateCoreEvictsWhenFull(t *testing.T) {
	h := testHypervisor(t, 77)
	// Saturate: 8 cores x 4 oversubscription = 32 vCPUs.
	for i := 0; i < 8; i++ {
		if err := h.StartVM(vmSpec(fmt.Sprintf("vm%d", i), 4)); err != nil {
			t.Fatal(err)
		}
	}
	before := len(h.VMNames())
	if err := h.IsolateCore(0); err != nil {
		t.Fatal(err)
	}
	after := len(h.VMNames())
	if after >= before {
		t.Fatalf("full host isolation should evict at least one VM: %d -> %d", before, after)
	}
	if h.Stats().VMsEvicted == 0 {
		t.Fatal("eviction not counted")
	}
	// Survivors must not reference the isolated core.
	for _, name := range h.VMNames() {
		for _, c := range h.Pinning(name) {
			if c == 0 {
				t.Fatalf("%s still pinned to isolated core", name)
			}
		}
	}
}

func TestStartVMRefusedWhenCoresExhausted(t *testing.T) {
	h := testHypervisor(t, 79)
	for i := 0; i < 7; i++ {
		if err := h.IsolateCore(i); err != nil {
			t.Fatal(err)
		}
	}
	// One core left, oversub 4: a 5-vCPU VM cannot fit.
	if err := h.StartVM(vmSpec("big", 5)); err == nil {
		t.Fatal("over-capacity VM accepted on isolated host")
	}
	if err := h.StartVM(vmSpec("small", 4)); err != nil {
		t.Fatalf("4-vCPU VM should fit on the last core: %v", err)
	}
	if got := h.Pinning("small"); len(got) != 4 || got[0] != 7 {
		t.Fatalf("small pinned to %v, want 4x core 7", got)
	}
}
