package hypervisor

import (
	"testing"
	"time"

	"uniserver/internal/rng"
)

func migrationPair(t *testing.T) (*Hypervisor, *Hypervisor) {
	t.Helper()
	src := testHypervisor(t, 61)
	om2 := NewObjectMap(DefaultProfiles(), rng.New(62))
	dst, err := New(DefaultConfig(), om2, testMem(t, 62))
	if err != nil {
		t.Fatal(err)
	}
	return src, dst
}

func TestMigrateVMMovesGuest(t *testing.T) {
	src, dst := migrationPair(t)
	spec := vmSpec("traveller", 2)
	if err := src.StartVM(spec); err != nil {
		t.Fatal(err)
	}
	vm, _ := src.VM("traveller")
	vm.Windows = 17
	vm.Restarts = 2

	res, err := MigrateVM(src, dst, "traveller", DefaultMigrationConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, still := src.VM("traveller"); still {
		t.Fatal("guest still on source")
	}
	moved, ok := dst.VM("traveller")
	if !ok {
		t.Fatal("guest missing on destination")
	}
	if moved.Windows != 17 || moved.Restarts != 2 {
		t.Fatalf("runtime state lost: %+v", moved)
	}
	if len(src.Allocator().AllocationsOf("traveller")) != 0 {
		t.Fatal("source memory not released")
	}
	if len(dst.Allocator().AllocationsOf("traveller")) == 0 {
		t.Fatal("destination memory not allocated")
	}
	if res.CopiedBytes < spec.MemBytes {
		t.Fatalf("copied %d < guest memory %d", res.CopiedBytes, spec.MemBytes)
	}
	if res.Rounds < 1 || res.Downtime <= 0 || res.TotalTime < res.Downtime {
		t.Fatalf("implausible result: %+v", res)
	}
}

func TestMigrateDowntimeFarBelowTotal(t *testing.T) {
	src, dst := migrationPair(t)
	if err := src.StartVM(vmSpec("big", 2)); err != nil {
		t.Fatal(err)
	}
	res, err := MigrateVM(src, dst, "big", DefaultMigrationConfig())
	if err != nil {
		t.Fatal(err)
	}
	// The whole point of pre-copy: the blackout is a small fraction of
	// the transfer time.
	if res.Downtime*5 > res.TotalTime {
		t.Fatalf("downtime %v not small versus total %v", res.Downtime, res.TotalTime)
	}
	if res.Downtime > 200*time.Millisecond {
		t.Fatalf("downtime %v too long for a 10GbE link", res.Downtime)
	}
}

func TestMigrateWriteHeavyGuestNeedsMoreRounds(t *testing.T) {
	srcA, dstA := migrationPair(t)
	if err := srcA.StartVM(vmSpec("calm", 1)); err != nil {
		t.Fatal(err)
	}
	calmCfg := DefaultMigrationConfig()
	calmCfg.DirtyBytesPerSec = 1e7
	calm, err := MigrateVM(srcA, dstA, "calm", calmCfg)
	if err != nil {
		t.Fatal(err)
	}
	srcB, dstB := migrationPair(t)
	if err := srcB.StartVM(vmSpec("dirty", 1)); err != nil {
		t.Fatal(err)
	}
	dirtyCfg := DefaultMigrationConfig()
	dirtyCfg.DirtyBytesPerSec = 9e8
	dirtyCfg.StopCopyThresholdBytes = 1 << 20
	dirty, err := MigrateVM(srcB, dstB, "dirty", dirtyCfg)
	if err != nil {
		t.Fatal(err)
	}
	if dirty.Rounds <= calm.Rounds {
		t.Fatalf("write-heavy guest used %d rounds, calm used %d", dirty.Rounds, calm.Rounds)
	}
	if dirty.CopiedBytes <= calm.CopiedBytes {
		t.Fatal("write-heavy guest should re-send more")
	}
}

func TestMigrateValidation(t *testing.T) {
	src, dst := migrationPair(t)
	if err := src.StartVM(vmSpec("vm", 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := MigrateVM(src, src, "vm", DefaultMigrationConfig()); err == nil {
		t.Fatal("self-migration accepted")
	}
	if _, err := MigrateVM(src, dst, "ghost", DefaultMigrationConfig()); err == nil {
		t.Fatal("unknown VM accepted")
	}
	bad := DefaultMigrationConfig()
	bad.DirtyBytesPerSec = bad.LinkBytesPerSec
	if _, err := MigrateVM(src, dst, "vm", bad); err == nil {
		t.Fatal("non-converging config accepted")
	}
	bad = DefaultMigrationConfig()
	bad.LinkBytesPerSec = 0
	if _, err := MigrateVM(src, dst, "vm", bad); err == nil {
		t.Fatal("zero link accepted")
	}
	bad = DefaultMigrationConfig()
	bad.MaxRounds = 0
	if _, err := MigrateVM(src, dst, "vm", bad); err == nil {
		t.Fatal("zero rounds accepted")
	}
}

func TestMigrateDestinationRejectionLeavesSourceIntact(t *testing.T) {
	src, dst := migrationPair(t)
	if err := src.StartVM(vmSpec("vm", 1)); err != nil {
		t.Fatal(err)
	}
	// Saturate destination vCPUs so admission fails.
	for i := 0; i < 8; i++ {
		if err := dst.StartVM(vmSpec(string(rune('a'+i)), 4)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := MigrateVM(src, dst, "vm", DefaultMigrationConfig()); err == nil {
		t.Fatal("migration to full destination accepted")
	}
	if _, ok := src.VM("vm"); !ok {
		t.Fatal("failed migration lost the source VM")
	}
}
