package hypervisor

import (
	"errors"
	"fmt"
	"sort"

	"uniserver/internal/dram"
	"uniserver/internal/telemetry"
	"uniserver/internal/vfr"
	"uniserver/internal/workload"
)

// Config sizes the hypervisor host.
type Config struct {
	Name string
	// Cores is the number of physical cores available to vCPUs.
	Cores int
	// Nominal is the host CPU's manufacturer operating point.
	Nominal vfr.Point
	// BaseOverheadBytes is the hypervisor's dynamic base footprint
	// (code, heap, caches) beyond the statically allocated objects.
	BaseOverheadBytes uint64
	// PerVMFixedBytes and PerVMFrac model the per-guest overhead
	// (vCPU state, shadow/EPT tables, virtio rings): a fixed cost plus
	// a fraction of guest memory.
	PerVMFixedBytes uint64
	PerVMFrac       float64
	// OversubscribeVCPU bounds total vCPUs per available core.
	OversubscribeVCPU int
	// IsolationThreshold is the number of correctable errors on one
	// component after which the hypervisor isolates it.
	IsolationThreshold int
}

// DefaultConfig returns a host shaped like the paper's micro-server.
func DefaultConfig() Config {
	return Config{
		Name:               "uniserver-node",
		Cores:              8,
		Nominal:            vfr.Point{VoltageMV: 980, FreqMHz: 2100},
		BaseOverheadBytes:  120 << 20,
		PerVMFixedBytes:    30 << 20,
		PerVMFrac:          0.005,
		OversubscribeVCPU:  4,
		IsolationThreshold: 24,
	}
}

// VMState tracks a guest's lifecycle.
type VMState int

const (
	VMRunning VMState = iota
	VMStopped
)

// String implements fmt.Stringer.
func (s VMState) String() string {
	if s == VMRunning {
		return "running"
	}
	return "stopped"
}

// VM is one guest instance.
type VM struct {
	Spec    workload.VMSpec
	State   VMState
	Windows int // observation windows since start
	// Restarts counts error-triggered restarts (each one is an error
	// masked from the cloud layer as a reboot rather than a host
	// crash).
	Restarts int
}

// Action is the hypervisor's response to a hardware error event.
type Action int

const (
	// ActionMasked means the error was absorbed with no guest impact.
	ActionMasked Action = iota
	// ActionIsolated means the source component was quarantined.
	ActionIsolated
	// ActionVMRestart means one guest was restarted (its memory was
	// hit by an uncorrectable error); the host survived.
	ActionVMRestart
	// ActionRestored means a corrupted-but-protected hypervisor
	// object was restored from its checkpoint.
	ActionRestored
	// ActionPanic means the hypervisor itself was fatally corrupted.
	ActionPanic
)

// String implements fmt.Stringer.
func (a Action) String() string {
	switch a {
	case ActionMasked:
		return "masked"
	case ActionIsolated:
		return "isolated"
	case ActionVMRestart:
		return "vm-restart"
	case ActionRestored:
		return "restored"
	case ActionPanic:
		return "panic"
	default:
		return fmt.Sprintf("Action(%d)", int(a))
	}
}

// Stats aggregates the hypervisor's resilience bookkeeping.
type Stats struct {
	ErrorsMasked   uint64
	CoresIsolated  int
	VMRestarts     uint64
	VMsEvicted     uint64
	ObjectRestores uint64
	Panics         uint64
}

// Hypervisor is the error-resilient virtualization layer.
type Hypervisor struct {
	cfg     Config
	objects *ObjectMap
	mem     *dram.MemorySystem
	alloc   *dram.Allocator

	vms           map[string]*VM
	pins          *pinner
	point         vfr.Point
	isolatedCores map[int]bool
	errorCounts   map[string]int // correctable errors per component
	stats         Stats
	panicked      bool
}

// New builds a hypervisor on the host memory system. Its own state is
// placed on the reliable refresh domain (Section 6.C's "placing the
// whole Hypervisor in a reliable-memory domain"): the allocation fails
// if the memory system lacks one.
func New(cfg Config, objects *ObjectMap, mem *dram.MemorySystem) (*Hypervisor, error) {
	if cfg.Cores <= 0 {
		return nil, errors.New("hypervisor: config needs cores")
	}
	if cfg.OversubscribeVCPU <= 0 {
		cfg.OversubscribeVCPU = 1
	}
	if objects == nil || mem == nil {
		return nil, errors.New("hypervisor: nil object map or memory system")
	}
	h := &Hypervisor{
		cfg:           cfg,
		objects:       objects,
		mem:           mem,
		alloc:         dram.NewAllocator(mem),
		vms:           make(map[string]*VM),
		pins:          newPinner(cfg.OversubscribeVCPU),
		point:         cfg.Nominal,
		isolatedCores: make(map[int]bool),
		errorCounts:   make(map[string]int),
	}
	ownPages := (h.staticFootprint() + dram.PageSize - 1) / dram.PageSize
	if _, err := h.alloc.Alloc(cfg.Name+"/hypervisor", dram.CriticalityHypervisor, ownPages); err != nil {
		return nil, fmt.Errorf("hypervisor: placing own state: %w", err)
	}
	return h, nil
}

// Clone returns a deep copy of the hypervisor rebound to mem, which
// must be a dram Clone of the hypervisor's own memory system: the
// object inventory (protection labels included), guest set, vCPU
// pinning, memory placements, operating point, isolation state and
// resilience counters are all duplicated alias-free, so the copy's
// future error handling and guest churn leave the original untouched.
func (h *Hypervisor) Clone(mem *dram.MemorySystem) (*Hypervisor, error) {
	if mem == nil {
		return nil, errors.New("hypervisor: Clone needs a memory system")
	}
	alloc, err := h.alloc.CloneFor(mem)
	if err != nil {
		return nil, fmt.Errorf("hypervisor: rebinding allocator: %w", err)
	}
	out := &Hypervisor{
		cfg:           h.cfg,
		objects:       h.objects.Clone(),
		mem:           mem,
		alloc:         alloc,
		vms:           make(map[string]*VM, len(h.vms)),
		pins:          h.pins.clone(),
		point:         h.point,
		isolatedCores: make(map[int]bool, len(h.isolatedCores)),
		errorCounts:   make(map[string]int, len(h.errorCounts)),
		stats:         h.stats,
		panicked:      h.panicked,
	}
	for name, vm := range h.vms {
		cp := *vm
		out.vms[name] = &cp
	}
	for c, v := range h.isolatedCores {
		out.isolatedCores[c] = v
	}
	for comp, n := range h.errorCounts {
		out.errorCounts[comp] = n
	}
	return out, nil
}

// staticFootprint is the hypervisor's footprint before any guest runs.
func (h *Hypervisor) staticFootprint() uint64 {
	return h.objects.StaticBytes() + h.cfg.BaseOverheadBytes
}

// Objects exposes the object inventory (the fault-injection campaigns
// operate on it).
func (h *Hypervisor) Objects() *ObjectMap { return h.objects }

// Allocator exposes guest-memory placement for inspection.
func (h *Hypervisor) Allocator() *dram.Allocator { return h.alloc }

// Point returns the current CPU operating point.
func (h *Hypervisor) Point() vfr.Point { return h.point }

// ApplyPoint reconfigures the CPU domain. The hypervisor refuses
// points above nominal voltage (that would be overvolting, not in
// scope) and non-positive values.
func (h *Hypervisor) ApplyPoint(p vfr.Point) error {
	if !p.Valid() {
		return fmt.Errorf("hypervisor: invalid point %v", p)
	}
	if p.VoltageMV > h.cfg.Nominal.VoltageMV {
		return fmt.Errorf("hypervisor: refusing overvolt to %dmV (nominal %dmV)",
			p.VoltageMV, h.cfg.Nominal.VoltageMV)
	}
	h.point = p
	return nil
}

// ApplyRefresh relaxes every non-reliable DRAM domain to the interval.
func (h *Hypervisor) ApplyRefresh(interval vfr.Point) error {
	if interval.Refresh <= 0 {
		return errors.New("hypervisor: point carries no refresh interval")
	}
	for _, dom := range h.mem.RelaxedDomains() {
		if err := dom.SetRefresh(interval.Refresh); err != nil {
			return err
		}
	}
	return nil
}

// AvailableCores returns the physical cores not isolated.
func (h *Hypervisor) AvailableCores() int {
	return h.cfg.Cores - len(h.isolatedCores)
}

// usedVCPUs sums the vCPUs of running guests.
func (h *Hypervisor) usedVCPUs() int {
	n := 0
	for _, vm := range h.vms {
		if vm.State == VMRunning {
			n += vm.Spec.VCPUs
		}
	}
	return n
}

// StartVM admits a guest: capacity checks, then guest memory placement
// on relaxed domains (guests tolerate the EOP; the hypervisor masks
// what happens there).
func (h *Hypervisor) StartVM(spec workload.VMSpec) error {
	if h.panicked {
		return errors.New("hypervisor: host is down")
	}
	if err := spec.Validate(); err != nil {
		return err
	}
	if _, exists := h.vms[spec.Name]; exists {
		return fmt.Errorf("hypervisor: VM %q already exists", spec.Name)
	}
	if h.usedVCPUs()+spec.VCPUs > h.AvailableCores()*h.cfg.OversubscribeVCPU {
		return fmt.Errorf("hypervisor: vCPU capacity exhausted for %q", spec.Name)
	}
	pages := (spec.MemBytes + dram.PageSize - 1) / dram.PageSize
	if _, err := h.alloc.Alloc(spec.Name, dram.CriticalityNormal, pages); err != nil {
		return fmt.Errorf("hypervisor: guest memory for %q: %w", spec.Name, err)
	}
	overhead := h.cfg.PerVMFixedBytes + uint64(float64(spec.MemBytes)*h.cfg.PerVMFrac)
	ovhPages := (overhead + dram.PageSize - 1) / dram.PageSize
	if _, err := h.alloc.Alloc(spec.Name+"/overhead", dram.CriticalityHypervisor, ovhPages); err != nil {
		h.alloc.Free(spec.Name)
		return fmt.Errorf("hypervisor: overhead for %q: %w", spec.Name, err)
	}
	if err := h.pins.assign(spec.Name, spec.VCPUs, h.usableCores()); err != nil {
		h.alloc.Free(spec.Name)
		h.alloc.Free(spec.Name + "/overhead")
		return err
	}
	h.vms[spec.Name] = &VM{Spec: spec, State: VMRunning}
	return nil
}

// StopVM terminates a guest and releases its memory.
func (h *Hypervisor) StopVM(name string) error {
	vm, ok := h.vms[name]
	if !ok {
		return fmt.Errorf("hypervisor: unknown VM %q", name)
	}
	h.alloc.Free(name)
	h.alloc.Free(name + "/overhead")
	h.pins.release(name)
	delete(h.vms, name)
	_ = vm
	return nil
}

// VMNames returns the names of live guests, sorted.
func (h *Hypervisor) VMNames() []string {
	names := make([]string, 0, len(h.vms))
	for n := range h.vms {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// VM returns a guest by name.
func (h *Hypervisor) VM(name string) (*VM, bool) {
	vm, ok := h.vms[name]
	return vm, ok
}

// Tick advances every running guest by one observation window.
func (h *Hypervisor) Tick() {
	for _, vm := range h.vms {
		if vm.State == VMRunning {
			vm.Windows++
		}
	}
}

// HypervisorBytes returns the hypervisor's current footprint: static
// objects, base overhead and per-VM overheads.
func (h *Hypervisor) HypervisorBytes() uint64 {
	total := h.staticFootprint()
	for _, vm := range h.vms {
		if vm.State == VMRunning {
			total += h.cfg.PerVMFixedBytes + uint64(float64(vm.Spec.MemBytes)*h.cfg.PerVMFrac)
		}
	}
	return total
}

// GuestBytes returns the memory allocated to running guests.
func (h *Hypervisor) GuestBytes() uint64 {
	var total uint64
	for _, vm := range h.vms {
		if vm.State == VMRunning {
			total += vm.Spec.MemBytes
		}
	}
	return total
}

// FootprintRatioPct returns the hypervisor footprint as a percentage
// of total utilized memory (Figure 3's red line).
func (h *Hypervisor) FootprintRatioPct() float64 {
	hyp := h.HypervisorBytes()
	total := hyp + h.GuestBytes()
	return 100 * float64(hyp) / float64(total)
}

// IsolateCore quarantines a physical core: no new vCPU placement, and
// vCPUs currently pinned there are re-homed onto the remaining cores.
// Guests whose vCPUs cannot be re-homed are stopped (the cloud layer
// reschedules them on another node) and counted in Stats.VMsEvicted.
func (h *Hypervisor) IsolateCore(core int) error {
	if core < 0 || core >= h.cfg.Cores {
		return fmt.Errorf("hypervisor: core %d out of range", core)
	}
	if h.isolatedCores[core] {
		return nil
	}
	h.isolatedCores[core] = true
	h.stats.CoresIsolated++
	displaced := h.pins.evictCore(core)
	if len(displaced) > 0 {
		stopped := h.rehomeDisplaced(displaced)
		h.stats.VMsEvicted += uint64(len(stopped))
	}
	return nil
}

// IsolatedCores returns the quarantined core indices, sorted.
func (h *Hypervisor) IsolatedCores() []int {
	out := make([]int, 0, len(h.isolatedCores))
	for c := range h.isolatedCores {
		out = append(out, c)
	}
	sort.Ints(out)
	return out
}

// HandleError is the hypervisor's error-masking policy, fed from the
// HealthLog's event stream:
//
//   - correctable errors are masked and counted; a component whose
//     count crosses the isolation threshold is quarantined;
//   - uncorrectable errors in guest memory restart only that guest;
//   - uncorrectable errors in hypervisor state restore the object
//     from its checkpoint when protected, and are fatal otherwise.
//
// The coreOf function maps a component name to a physical core index,
// or -1 when the component is not a core (e.g. a DRAM domain).
func (h *Hypervisor) HandleError(ev telemetry.ErrorEvent, owner string, objectID int, coreOf func(string) int) Action {
	if h.panicked {
		return ActionPanic
	}
	switch ev.Kind {
	case telemetry.ErrCorrectable:
		h.stats.ErrorsMasked += uint64(ev.Count)
		h.errorCounts[ev.Component] += ev.Count
		if h.errorCounts[ev.Component] >= h.cfg.IsolationThreshold {
			h.errorCounts[ev.Component] = 0
			if core := coreOf(ev.Component); core >= 0 {
				if err := h.IsolateCore(core); err == nil {
					return ActionIsolated
				}
			}
		}
		return ActionMasked

	case telemetry.ErrUncorrectable, telemetry.ErrCrash:
		if vm, ok := h.vms[owner]; ok {
			vm.Restarts++
			h.stats.VMRestarts++
			return ActionVMRestart
		}
		// Hypervisor state was hit.
		if objectID >= 0 && objectID < h.objects.Len() {
			obj := &h.objects.Objects[objectID]
			if obj.Protected {
				h.stats.ObjectRestores++
				return ActionRestored
			}
			if !obj.Crucial {
				h.stats.ErrorsMasked++
				return ActionMasked
			}
		}
		h.panicked = true
		h.stats.Panics++
		return ActionPanic

	default:
		h.stats.ErrorsMasked += uint64(ev.Count)
		return ActionMasked
	}
}

// Panicked reports whether the host has fatally failed.
func (h *Hypervisor) Panicked() bool { return h.panicked }

// Stats returns resilience counters.
func (h *Hypervisor) Stats() Stats { return h.stats }
