package hypervisor

import (
	"fmt"
	"testing"

	"uniserver/internal/dram"
	"uniserver/internal/rng"
	"uniserver/internal/telemetry"
)

func benchHypervisor(b *testing.B) *Hypervisor {
	b.Helper()
	om := NewObjectMap(DefaultProfiles(), rng.New(1))
	cfg := dram.Config{Channels: 2, DIMMsPerChannel: 1, DIMMBytes: 8 << 30, DeviceGb: 2, TempC: 45}
	mem, err := dram.New(cfg, dram.DefaultRetentionModel(), rng.New(1))
	if err != nil {
		b.Fatal(err)
	}
	h, err := New(DefaultConfig(), om, mem)
	if err != nil {
		b.Fatal(err)
	}
	return h
}

func BenchmarkStartStopVM(b *testing.B) {
	h := benchHypervisor(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		name := fmt.Sprintf("vm-%d", i)
		if err := h.StartVM(vmSpec(name, 2)); err != nil {
			b.Fatal(err)
		}
		if err := h.StopVM(name); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHandleCorrectable(b *testing.B) {
	h := benchHypervisor(b)
	ev := telemetry.ErrorEvent{Kind: telemetry.ErrCorrectable, Component: "core0/L2", Count: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = h.HandleError(ev, "", -1, func(string) int { return -1 })
	}
}

func BenchmarkObjectMapConstruction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = NewObjectMap(DefaultProfiles(), rng.New(uint64(i)))
	}
}

func BenchmarkLiveMigration(b *testing.B) {
	// Ping-pong one guest between two hosts so per-iteration work is
	// just the migration itself.
	a := benchHypervisor(b)
	c := benchHypervisor(b)
	if err := a.StartVM(vmSpec("vm", 2)); err != nil {
		b.Fatal(err)
	}
	cfg := DefaultMigrationConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src, dst := a, c
		if i%2 == 1 {
			src, dst = c, a
		}
		if _, err := MigrateVM(src, dst, "vm", cfg); err != nil {
			b.Fatal(err)
		}
	}
}
