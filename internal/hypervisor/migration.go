package hypervisor

import (
	"errors"
	"fmt"
	"time"
)

// MigrationResult reports one live migration.
type MigrationResult struct {
	VM string
	// Rounds is the number of pre-copy iterations.
	Rounds int
	// CopiedBytes is the total traffic (guest memory + re-sent dirty
	// pages).
	CopiedBytes uint64
	// Downtime is the stop-and-copy blackout the guest observed.
	Downtime time.Duration
	// TotalTime is the wall time of the whole migration.
	TotalTime time.Duration
}

// MigrationConfig tunes the pre-copy algorithm.
type MigrationConfig struct {
	// LinkBytesPerSec is the migration-network bandwidth.
	LinkBytesPerSec float64
	// DirtyBytesPerSec is the guest's page-dirtying rate while running.
	DirtyBytesPerSec float64
	// StopCopyThresholdBytes switches to stop-and-copy when the
	// remaining dirty set falls below it.
	StopCopyThresholdBytes uint64
	// MaxRounds bounds pre-copy; reaching it forces stop-and-copy.
	MaxRounds int
}

// DefaultMigrationConfig returns a 10 GbE-class migration link with a
// moderately write-heavy guest.
func DefaultMigrationConfig() MigrationConfig {
	return MigrationConfig{
		LinkBytesPerSec:        1.1e9,
		DirtyBytesPerSec:       2.5e8,
		StopCopyThresholdBytes: 64 << 20,
		MaxRounds:              12,
	}
}

func (c MigrationConfig) validate() error {
	if c.LinkBytesPerSec <= 0 {
		return errors.New("hypervisor: migration link bandwidth must be positive")
	}
	if c.DirtyBytesPerSec < 0 {
		return errors.New("hypervisor: negative dirty rate")
	}
	if c.DirtyBytesPerSec >= c.LinkBytesPerSec {
		return errors.New("hypervisor: dirty rate at or above link rate never converges")
	}
	if c.MaxRounds <= 0 {
		return errors.New("hypervisor: MaxRounds must be positive")
	}
	return nil
}

// MigrateVM live-migrates a running guest from src to dst using the
// classic pre-copy algorithm: iteratively copy memory while the guest
// runs (each round re-sends what was dirtied during the previous
// copy), then stop-and-copy the final residue. This is the mechanism
// behind the OpenStack layer's "proactively migrate the running
// workloads on the healthy nodes".
func MigrateVM(src, dst *Hypervisor, name string, cfg MigrationConfig) (MigrationResult, error) {
	if err := cfg.validate(); err != nil {
		return MigrationResult{}, err
	}
	if src == dst {
		return MigrationResult{}, errors.New("hypervisor: migration to self")
	}
	vm, ok := src.VM(name)
	if !ok {
		return MigrationResult{}, fmt.Errorf("hypervisor: unknown VM %q", name)
	}
	if vm.State != VMRunning {
		return MigrationResult{}, fmt.Errorf("hypervisor: VM %q is not running", name)
	}

	// Admission on the destination first: a failed migration must
	// leave the source untouched.
	if err := dst.StartVM(vm.Spec); err != nil {
		return MigrationResult{}, fmt.Errorf("hypervisor: destination rejected %q: %w", name, err)
	}

	res := MigrationResult{VM: name}
	remaining := float64(vm.Spec.MemBytes)
	for {
		res.Rounds++
		copyTime := remaining / cfg.LinkBytesPerSec
		res.CopiedBytes += uint64(remaining)
		res.TotalTime += time.Duration(copyTime * float64(time.Second))
		dirtied := cfg.DirtyBytesPerSec * copyTime
		remaining = dirtied
		if remaining <= float64(cfg.StopCopyThresholdBytes) || res.Rounds >= cfg.MaxRounds {
			break
		}
	}
	// Stop-and-copy: the guest is paused while the residue transfers.
	res.Downtime = time.Duration(remaining / cfg.LinkBytesPerSec * float64(time.Second))
	res.CopiedBytes += uint64(remaining)
	res.TotalTime += res.Downtime

	// Commit: move the runtime state and release the source.
	if dvm, ok := dst.VM(name); ok {
		dvm.Windows = vm.Windows
		dvm.Restarts = vm.Restarts
	}
	if err := src.StopVM(name); err != nil {
		return MigrationResult{}, fmt.Errorf("hypervisor: releasing source copy: %w", err)
	}
	return res, nil
}
