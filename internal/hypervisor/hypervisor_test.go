package hypervisor

import (
	"strings"
	"testing"

	"uniserver/internal/dram"
	"uniserver/internal/rng"
	"uniserver/internal/telemetry"
	"uniserver/internal/vfr"
	"uniserver/internal/workload"
)

func testMem(t *testing.T, seed uint64) *dram.MemorySystem {
	t.Helper()
	cfg := dram.Config{Channels: 4, DIMMsPerChannel: 2, DIMMBytes: 8 << 30, DeviceGb: 2, TempC: 45}
	ms, err := dram.New(cfg, dram.DefaultRetentionModel(), rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return ms
}

func testHypervisor(t *testing.T, seed uint64) *Hypervisor {
	t.Helper()
	om := NewObjectMap(DefaultProfiles(), rng.New(seed))
	h, err := New(DefaultConfig(), om, testMem(t, seed))
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func vmSpec(name string, vcpus int) workload.VMSpec {
	p := workload.IoTEdgeAnalytics()
	return workload.VMSpec{Name: name, VCPUs: vcpus, MemBytes: p.MemTargetBytes * 2, Profile: p}
}

func TestObjectMapInventory(t *testing.T) {
	om := NewObjectMap(DefaultProfiles(), rng.New(1))
	if om.Len() != TotalObjects {
		t.Fatalf("object count = %d, want %d (paper)", om.Len(), TotalObjects)
	}
	counts := om.CountByCategory()
	if len(counts) != len(Categories()) {
		t.Fatalf("categories = %d, want %d", len(counts), len(Categories()))
	}
	total := 0
	for _, p := range DefaultProfiles() {
		if counts[p.Category] != p.Count {
			t.Errorf("%s count = %d, want %d", p.Category, counts[p.Category], p.Count)
		}
		total += p.Count
	}
	if total != TotalObjects {
		t.Fatalf("profile counts sum to %d", total)
	}
	if om.StaticBytes() == 0 {
		t.Fatal("objects have no size")
	}
}

func TestObjectMapAccessProbs(t *testing.T) {
	om := NewObjectMap(DefaultProfiles(), rng.New(2))
	for _, c := range Categories() {
		loaded := om.AccessProb(c, true)
		unloaded := om.AccessProb(c, false)
		if loaded <= unloaded {
			t.Errorf("%s: loaded access %v should exceed unloaded %v", c, loaded, unloaded)
		}
	}
	if om.AccessProb("nope", true) != 0 {
		t.Error("unknown category should have zero access prob")
	}
	if _, err := om.Profile("nope"); err == nil {
		t.Error("unknown category profile should error")
	}
}

func TestObjectMapProtect(t *testing.T) {
	om := NewObjectMap(DefaultProfiles(), rng.New(3))
	n := om.Protect(CatFS, CatKernel)
	want := 0
	for _, p := range DefaultProfiles() {
		if p.Category == CatFS || p.Category == CatKernel {
			want += p.Count
		}
	}
	if n != want {
		t.Fatalf("Protect covered %d objects, want %d", n, want)
	}
	if om.Protect(CatFS) != 0 {
		t.Fatal("re-protecting should cover nothing new")
	}
	if om.ProtectedBytes() == 0 {
		t.Fatal("protected bytes should be positive")
	}
	if got := om.ProtectObjects([]int{0, 0, -1, 1 << 30}); got > 1 {
		t.Fatalf("ProtectObjects out-of-range handling wrong: %d", got)
	}
}

func TestNewValidation(t *testing.T) {
	om := NewObjectMap(DefaultProfiles(), rng.New(4))
	mem := testMem(t, 4)
	if _, err := New(Config{}, om, mem); err == nil {
		t.Fatal("zero cores accepted")
	}
	if _, err := New(DefaultConfig(), nil, mem); err == nil {
		t.Fatal("nil object map accepted")
	}
	if _, err := New(DefaultConfig(), om, nil); err == nil {
		t.Fatal("nil memory accepted")
	}
}

func TestHypervisorOwnStateOnReliableDomain(t *testing.T) {
	h := testHypervisor(t, 5)
	allocs := h.Allocator().AllocationsOf(DefaultConfig().Name + "/hypervisor")
	if len(allocs) != 1 {
		t.Fatalf("hypervisor allocations = %d", len(allocs))
	}
	if !allocs[0].Domain.Reliable {
		t.Fatal("hypervisor state not on reliable domain")
	}
}

func TestStartStopVM(t *testing.T) {
	h := testHypervisor(t, 7)
	if err := h.StartVM(vmSpec("vm1", 2)); err != nil {
		t.Fatal(err)
	}
	if err := h.StartVM(vmSpec("vm1", 2)); err == nil {
		t.Fatal("duplicate VM accepted")
	}
	if names := h.VMNames(); len(names) != 1 || names[0] != "vm1" {
		t.Fatalf("VMNames = %v", names)
	}
	vm, ok := h.VM("vm1")
	if !ok || vm.State != VMRunning {
		t.Fatalf("VM lookup = %+v, %v", vm, ok)
	}
	// Guest memory must be on relaxed domains; overhead on reliable.
	for _, a := range h.Allocator().AllocationsOf("vm1") {
		if a.Domain.Reliable {
			t.Error("guest memory landed on reliable domain")
		}
	}
	for _, a := range h.Allocator().AllocationsOf("vm1/overhead") {
		if !a.Domain.Reliable {
			t.Error("VM overhead not on reliable domain")
		}
	}
	if err := h.StopVM("vm1"); err != nil {
		t.Fatal(err)
	}
	if err := h.StopVM("vm1"); err == nil {
		t.Fatal("double stop accepted")
	}
	if len(h.Allocator().AllocationsOf("vm1")) != 0 {
		t.Fatal("guest memory not freed")
	}
}

func TestVCPUCapacity(t *testing.T) {
	h := testHypervisor(t, 9)
	// 8 cores x 4 oversubscription = 32 vCPUs.
	for i := 0; i < 8; i++ {
		if err := h.StartVM(vmSpec(strings.Repeat("v", i+1), 4)); err != nil {
			t.Fatalf("VM %d rejected: %v", i, err)
		}
	}
	if err := h.StartVM(vmSpec("overflow", 1)); err == nil {
		t.Fatal("vCPU overflow accepted")
	}
}

func TestIsolationReducesCapacity(t *testing.T) {
	h := testHypervisor(t, 11)
	if h.AvailableCores() != 8 {
		t.Fatalf("available = %d", h.AvailableCores())
	}
	if err := h.IsolateCore(3); err != nil {
		t.Fatal(err)
	}
	if err := h.IsolateCore(3); err != nil {
		t.Fatal(err) // idempotent
	}
	if h.AvailableCores() != 7 {
		t.Fatalf("available after isolation = %d", h.AvailableCores())
	}
	if got := h.IsolatedCores(); len(got) != 1 || got[0] != 3 {
		t.Fatalf("IsolatedCores = %v", got)
	}
	if err := h.IsolateCore(99); err == nil {
		t.Fatal("out-of-range core accepted")
	}
	if h.Stats().CoresIsolated != 1 {
		t.Fatalf("stats = %+v", h.Stats())
	}
}

func TestApplyPoint(t *testing.T) {
	h := testHypervisor(t, 13)
	nominal := h.Point()
	if err := h.ApplyPoint(nominal.WithVoltage(nominal.VoltageMV - 80)); err != nil {
		t.Fatal(err)
	}
	if h.Point().VoltageMV != nominal.VoltageMV-80 {
		t.Fatal("point not applied")
	}
	if err := h.ApplyPoint(nominal.WithVoltage(nominal.VoltageMV + 10)); err == nil {
		t.Fatal("overvolt accepted")
	}
	if err := h.ApplyPoint(vfr.Point{}); err == nil {
		t.Fatal("invalid point accepted")
	}
}

func TestApplyRefresh(t *testing.T) {
	h := testHypervisor(t, 15)
	p := vfr.Point{VoltageMV: 1, FreqMHz: 1, Refresh: 1500 * 1e6} // 1.5s in ns
	if err := h.ApplyRefresh(p); err != nil {
		t.Fatal(err)
	}
	for _, dom := range h.mem.RelaxedDomains() {
		if dom.Refresh != p.Refresh {
			t.Fatalf("domain %s refresh = %v", dom.Name, dom.Refresh)
		}
	}
	if h.mem.ReliableDomain().Refresh != vfr.NominalRefresh {
		t.Fatal("reliable domain refresh was changed")
	}
	if err := h.ApplyRefresh(vfr.Point{}); err == nil {
		t.Fatal("zero refresh accepted")
	}
}

func coreOfNone(string) int { return -1 }

func TestHandleCorrectableMasks(t *testing.T) {
	h := testHypervisor(t, 17)
	ev := telemetry.ErrorEvent{Kind: telemetry.ErrCorrectable, Component: "core2/L2", Count: 3}
	if a := h.HandleError(ev, "", -1, coreOfNone); a != ActionMasked {
		t.Fatalf("action = %v", a)
	}
	if h.Stats().ErrorsMasked != 3 {
		t.Fatalf("masked = %d", h.Stats().ErrorsMasked)
	}
}

func TestHandleCorrectableIsolatesAfterThreshold(t *testing.T) {
	h := testHypervisor(t, 19)
	coreOf := func(comp string) int {
		if comp == "core2/L2" {
			return 2
		}
		return -1
	}
	var last Action
	for i := 0; i < 8; i++ {
		last = h.HandleError(telemetry.ErrorEvent{
			Kind: telemetry.ErrCorrectable, Component: "core2/L2", Count: 3,
		}, "", -1, coreOf)
	}
	if last != ActionIsolated {
		t.Fatalf("last action = %v, want isolation at threshold", last)
	}
	if got := h.IsolatedCores(); len(got) != 1 || got[0] != 2 {
		t.Fatalf("IsolatedCores = %v", got)
	}
}

func TestHandleUncorrectableInGuestRestartsVM(t *testing.T) {
	h := testHypervisor(t, 21)
	if err := h.StartVM(vmSpec("victim", 2)); err != nil {
		t.Fatal(err)
	}
	ev := telemetry.ErrorEvent{Kind: telemetry.ErrUncorrectable, Component: "dram/channel1", Count: 1}
	if a := h.HandleError(ev, "victim", -1, coreOfNone); a != ActionVMRestart {
		t.Fatalf("action = %v", a)
	}
	vm, _ := h.VM("victim")
	if vm.Restarts != 1 {
		t.Fatalf("restarts = %d", vm.Restarts)
	}
	if h.Panicked() {
		t.Fatal("guest error must not panic the host")
	}
}

func TestHandleUncorrectableInProtectedObjectRestores(t *testing.T) {
	h := testHypervisor(t, 23)
	// Find a crucial object and protect it.
	id := -1
	for i, o := range h.Objects().Objects {
		if o.Crucial {
			id = i
			break
		}
	}
	if id < 0 {
		t.Fatal("no crucial object found")
	}
	h.Objects().ProtectObjects([]int{id})
	ev := telemetry.ErrorEvent{Kind: telemetry.ErrUncorrectable, Component: "hypervisor", Count: 1}
	if a := h.HandleError(ev, "", id, coreOfNone); a != ActionRestored {
		t.Fatalf("action = %v, want restore", a)
	}
	if h.Panicked() {
		t.Fatal("protected object corruption must not panic")
	}
}

func TestHandleUncorrectableInCrucialObjectPanics(t *testing.T) {
	h := testHypervisor(t, 25)
	id := -1
	for i, o := range h.Objects().Objects {
		if o.Crucial && !o.Protected {
			id = i
			break
		}
	}
	ev := telemetry.ErrorEvent{Kind: telemetry.ErrUncorrectable, Component: "hypervisor", Count: 1}
	if a := h.HandleError(ev, "", id, coreOfNone); a != ActionPanic {
		t.Fatalf("action = %v, want panic", a)
	}
	if !h.Panicked() {
		t.Fatal("host should be down")
	}
	// A downed host refuses new guests.
	if err := h.StartVM(vmSpec("late", 1)); err == nil {
		t.Fatal("panicked host accepted a VM")
	}
	if h.HandleError(ev, "", id, coreOfNone) != ActionPanic {
		t.Fatal("panicked host should stay panicked")
	}
}

func TestHandleUncorrectableInNonCrucialObjectMasks(t *testing.T) {
	h := testHypervisor(t, 27)
	id := -1
	for i, o := range h.Objects().Objects {
		if !o.Crucial {
			id = i
			break
		}
	}
	ev := telemetry.ErrorEvent{Kind: telemetry.ErrUncorrectable, Component: "hypervisor", Count: 1}
	if a := h.HandleError(ev, "", id, coreOfNone); a != ActionMasked {
		t.Fatalf("action = %v, want masked", a)
	}
}

func TestActionAndStateStrings(t *testing.T) {
	for _, a := range []Action{ActionMasked, ActionIsolated, ActionVMRestart, ActionRestored, ActionPanic} {
		if strings.HasPrefix(a.String(), "Action(") {
			t.Errorf("action %d missing name", a)
		}
	}
	if !strings.HasPrefix(Action(42).String(), "Action(") {
		t.Error("unknown action fallback wrong")
	}
	if VMRunning.String() != "running" || VMStopped.String() != "stopped" {
		t.Error("VM state names wrong")
	}
}

// TestFigure3Footprint reproduces Figure 3: four LDBC VM instances,
// hypervisor footprint always below 7% of total utilized memory.
func TestFigure3Footprint(t *testing.T) {
	h := testHypervisor(t, 29)
	res, err := FootprintExperiment(h, 4, 96, workload.LDBCSocialNetwork())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Samples) != 96 {
		t.Fatalf("samples = %d", len(res.Samples))
	}
	if !res.Claim7Pct {
		t.Fatalf("footprint ratio reached %.2f%%, paper claims < 7%%", res.MaxRatio)
	}
	if res.MaxRatio <= 0 {
		t.Fatal("ratio should be positive")
	}
	// All four instances eventually run concurrently.
	max := 0
	for _, s := range res.Samples {
		if s.RunningVMs > max {
			max = s.RunningVMs
		}
		if s.TotalBytes != s.HypervisorBytes+s.GuestBytes {
			t.Fatal("sample total inconsistent")
		}
	}
	if max != 4 {
		t.Fatalf("max concurrent instances = %d, want 4", max)
	}
}

func TestFootprintExperimentValidation(t *testing.T) {
	h := testHypervisor(t, 31)
	if _, err := FootprintExperiment(h, 0, 10, workload.LDBCSocialNetwork()); err == nil {
		t.Fatal("zero instances accepted")
	}
	if _, err := FootprintExperiment(h, 1, 0, workload.LDBCSocialNetwork()); err == nil {
		t.Fatal("zero windows accepted")
	}
}

func TestFootprintRatioFallsWithMoreGuests(t *testing.T) {
	h := testHypervisor(t, 33)
	if err := h.StartVM(vmSpec("a", 1)); err != nil {
		t.Fatal(err)
	}
	one := h.FootprintRatioPct()
	if err := h.StartVM(vmSpec("b", 1)); err != nil {
		t.Fatal(err)
	}
	two := h.FootprintRatioPct()
	if two >= one {
		t.Fatalf("ratio should fall as guests grow: 1 VM %.2f%%, 2 VMs %.2f%%", one, two)
	}
}
