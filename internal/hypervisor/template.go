package hypervisor

import (
	"errors"
	"fmt"

	"uniserver/internal/dram"
)

// StampFrom overwrites h with a deep copy of src rebound to mem,
// reusing h's object inventory, allocator and map storage. It is the
// arena form of Clone: src must be quiescent (a restore template's
// proto hypervisor, which nothing ever runs again), h must be owned
// exclusively by the caller, and afterwards h's error handling and
// guest churn leave src untouched exactly as a Clone's would.
func (h *Hypervisor) StampFrom(src *Hypervisor, mem *dram.MemorySystem) error {
	if mem == nil {
		return errors.New("hypervisor: StampFrom needs a memory system")
	}
	h.cfg = src.cfg
	h.mem = mem
	if h.objects == nil {
		h.objects = &ObjectMap{}
	}
	h.objects.CopyFrom(src.objects)
	if h.alloc == nil {
		h.alloc = dram.NewAllocator(mem)
	}
	if err := h.alloc.StampFrom(src.alloc, mem); err != nil {
		return fmt.Errorf("hypervisor: rebinding allocator: %w", err)
	}

	if h.vms == nil {
		h.vms = make(map[string]*VM, len(src.vms))
	} else {
		clear(h.vms)
	}
	for name, vm := range src.vms {
		cp := *vm
		h.vms[name] = &cp
	}

	if h.pins == nil {
		h.pins = newPinner(src.pins.oversub)
	}
	h.pins.stampFrom(src.pins)

	h.point = src.point

	if h.isolatedCores == nil {
		h.isolatedCores = make(map[int]bool, len(src.isolatedCores))
	} else {
		clear(h.isolatedCores)
	}
	for c, v := range src.isolatedCores {
		h.isolatedCores[c] = v
	}

	if h.errorCounts == nil {
		h.errorCounts = make(map[string]int, len(src.errorCounts))
	} else {
		clear(h.errorCounts)
	}
	for comp, n := range src.errorCounts {
		h.errorCounts[comp] = n
	}

	h.stats = src.stats
	h.panicked = src.panicked
	return nil
}

// CopyFrom replaces om's inventory with a copy of src's, reusing om's
// object slice and profile map storage. The arena form of Clone — one
// bulk copy of the (large, plain-value) object slice.
func (om *ObjectMap) CopyFrom(src *ObjectMap) {
	om.Objects = append(om.Objects[:0], src.Objects...)
	if om.profiles == nil {
		om.profiles = make(map[Category]CategoryProfile, len(src.profiles))
	} else {
		clear(om.profiles)
	}
	for c, p := range src.profiles {
		om.profiles[c] = p
	}
}

// stampFrom overwrites p with a deep copy of src, reusing p's map
// storage.
func (p *pinner) stampFrom(src *pinner) {
	p.oversub = src.oversub
	if p.load == nil {
		p.load = make(map[int]int, len(src.load))
	} else {
		clear(p.load)
	}
	for c, n := range src.load {
		p.load[c] = n
	}
	if p.byVM == nil {
		p.byVM = make(map[string][]int, len(src.byVM))
	} else {
		clear(p.byVM)
	}
	for vm, cores := range src.byVM {
		p.byVM[vm] = append([]int(nil), cores...)
	}
}
