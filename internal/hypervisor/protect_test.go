package hypervisor

import (
	"testing"
	"time"

	"uniserver/internal/rng"
)

func TestCheckpointPolicyValidation(t *testing.T) {
	om := NewObjectMap(DefaultProfiles(), rng.New(1))
	bad := []CheckpointPolicy{
		{Interval: 0, CopyBandwidthBps: 1e9},
		{Interval: time.Second, CopyBandwidthBps: 0},
		{Interval: time.Second, CopyBandwidthBps: 1e9, CheckCostNsPerObject: -1},
	}
	for i, p := range bad {
		if _, err := om.CostOfProtection(p); err == nil {
			t.Errorf("policy %d accepted", i)
		}
	}
}

func TestCostOfNothingProtected(t *testing.T) {
	om := NewObjectMap(DefaultProfiles(), rng.New(2))
	cost, err := om.CostOfProtection(DefaultCheckpointPolicy())
	if err != nil {
		t.Fatal(err)
	}
	if cost.ProtectedObjects != 0 || cost.OverheadPct != 0 {
		t.Fatalf("empty protection has cost: %+v", cost)
	}
}

// TestSelectiveProtectionIsWorthIt is the Section 6.C criterion in
// numbers: the checkpoint overhead of the selectively protected set
// must sit far below the ~17% CPU power the EOP recovers, while
// protecting everything costs measurably more.
func TestSelectiveProtectionIsWorthIt(t *testing.T) {
	om := NewObjectMap(DefaultProfiles(), rng.New(3))
	om.Protect(CatFS, CatKernel, CatNet) // the sensitive cluster
	selective, err := om.CostOfProtection(DefaultCheckpointPolicy())
	if err != nil {
		t.Fatal(err)
	}
	if selective.ProtectedObjects == 0 {
		t.Fatal("nothing protected")
	}
	const eopSavingsPct = 17 // measured by the core package's tests
	if !selective.WorthIt(eopSavingsPct) {
		t.Fatalf("selective protection overhead %.3f%% devours the %.0f%% EOP savings",
			selective.OverheadPct, float64(eopSavingsPct))
	}
	if selective.OverheadPct <= 0 {
		t.Fatal("protection should have nonzero cost")
	}

	full := NewObjectMap(DefaultProfiles(), rng.New(3))
	full.Protect(Categories()...)
	fullCost, err := full.CostOfProtection(DefaultCheckpointPolicy())
	if err != nil {
		t.Fatal(err)
	}
	if fullCost.OverheadPct <= selective.OverheadPct {
		t.Fatal("full protection should cost more than selective")
	}
	if fullCost.MemoryOverheadBytes <= selective.MemoryOverheadBytes {
		t.Fatal("full protection should store more")
	}
}

func TestCostScalesWithInterval(t *testing.T) {
	om := NewObjectMap(DefaultProfiles(), rng.New(4))
	om.Protect(CatKernel)
	fast := DefaultCheckpointPolicy()
	fast.Interval = 100 * time.Millisecond
	slow := DefaultCheckpointPolicy()
	slow.Interval = 10 * time.Second
	fc, err := om.CostOfProtection(fast)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := om.CostOfProtection(slow)
	if err != nil {
		t.Fatal(err)
	}
	if fc.OverheadPct <= sc.OverheadPct {
		t.Fatal("tighter checkpoint interval must cost more")
	}
	if fc.PassTime != sc.PassTime {
		t.Fatal("pass time should not depend on interval")
	}
}
