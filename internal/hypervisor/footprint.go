package hypervisor

import (
	"fmt"

	"uniserver/internal/workload"
)

// FootprintSample is one point of the Figure 3 time series.
type FootprintSample struct {
	Window          int
	RunningVMs      int
	HypervisorBytes uint64
	GuestBytes      uint64
	TotalBytes      uint64
	RatioPct        float64
}

// FootprintResult is the outcome of the Figure 3 experiment.
type FootprintResult struct {
	Samples  []FootprintSample
	MaxRatio float64
	// Claim7Pct reports whether the paper's headline held: the
	// hypervisor footprint stayed below 7% of utilized memory.
	Claim7Pct bool
}

// FootprintExperiment reproduces the Figure 3 methodology: repeatedly
// execute `instances` VM instances of the given profile (the paper
// uses four LDBC SNB instances on Sparksee), sampling the hypervisor
// footprint against total utilized memory every window. VM starts are
// staggered, and each VM is restarted periodically ("repeatedly
// executing"), so the series exercises 1..instances concurrent guests.
func FootprintExperiment(h *Hypervisor, instances, windows int, profile workload.Profile) (FootprintResult, error) {
	if instances <= 0 || windows <= 0 {
		return FootprintResult{}, fmt.Errorf("hypervisor: footprint experiment needs instances and windows")
	}
	specFor := func(i, gen int) workload.VMSpec {
		return workload.VMSpec{
			Name:     fmt.Sprintf("ldbc-vm%d-gen%d", i, gen),
			VCPUs:    2,
			MemBytes: profile.MemTargetBytes + profile.MemTargetBytes/4,
			Profile:  profile,
		}
	}
	generation := make([]int, instances)
	started := 0

	var res FootprintResult
	restartEvery := windows / (2 * instances)
	if restartEvery < 4 {
		restartEvery = 4
	}
	for w := 0; w < windows; w++ {
		// Staggered starts: one new instance every 2 windows.
		if started < instances && w%2 == 0 {
			if err := h.StartVM(specFor(started, 0)); err != nil {
				return FootprintResult{}, fmt.Errorf("hypervisor: starting instance %d: %w", started, err)
			}
			started++
		}
		// Periodic restart of one instance, round-robin.
		if started == instances && w > 0 && w%restartEvery == 0 {
			i := (w / restartEvery) % instances
			old := specFor(i, generation[i])
			if _, ok := h.VM(old.Name); ok {
				if err := h.StopVM(old.Name); err != nil {
					return FootprintResult{}, err
				}
				generation[i]++
				if err := h.StartVM(specFor(i, generation[i])); err != nil {
					return FootprintResult{}, err
				}
			}
		}
		h.Tick()
		s := FootprintSample{
			Window:          w,
			RunningVMs:      len(h.VMNames()),
			HypervisorBytes: h.HypervisorBytes(),
			GuestBytes:      h.GuestBytes(),
		}
		s.TotalBytes = s.HypervisorBytes + s.GuestBytes
		s.RatioPct = h.FootprintRatioPct()
		if s.RatioPct > res.MaxRatio {
			res.MaxRatio = s.RatioPct
		}
		res.Samples = append(res.Samples, s)
	}
	res.Claim7Pct = res.MaxRatio < 7
	return res, nil
}
