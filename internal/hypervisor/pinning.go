package hypervisor

import (
	"fmt"
	"sort"
)

// pinner tracks the explicit vCPU-to-physical-core assignment, so that
// "isolating problematic processing resources" is a concrete
// re-placement operation rather than a capacity decrement.
type pinner struct {
	oversub int
	// load[core] is the number of vCPUs pinned to the core.
	load map[int]int
	// byVM[vm] lists the cores hosting the VM's vCPUs (one entry per
	// vCPU; a core may repeat).
	byVM map[string][]int
}

func newPinner(oversub int) *pinner {
	return &pinner{oversub: oversub, load: make(map[int]int), byVM: make(map[string][]int)}
}

// clone returns a deep copy of the pinner.
func (p *pinner) clone() *pinner {
	out := newPinner(p.oversub)
	for c, n := range p.load {
		out.load[c] = n
	}
	for vm, cores := range p.byVM {
		out.byVM[vm] = append([]int(nil), cores...)
	}
	return out
}

// pick returns the least-loaded usable core, or -1 when every usable
// core is at the oversubscription cap.
func (p *pinner) pick(usable []int) int {
	best := -1
	for _, c := range usable {
		if p.load[c] >= p.oversub {
			continue
		}
		if best == -1 || p.load[c] < p.load[best] {
			best = c
		}
	}
	return best
}

// assign pins n vCPUs of the VM onto the usable cores, least-loaded
// first. It either fully succeeds or leaves no partial assignment.
func (p *pinner) assign(vm string, n int, usable []int) error {
	var cores []int
	for i := 0; i < n; i++ {
		c := p.pick(usable)
		if c == -1 {
			// Roll back.
			for _, rc := range cores {
				p.load[rc]--
			}
			return fmt.Errorf("hypervisor: no core capacity for %d vCPUs of %q", n, vm)
		}
		p.load[c]++
		cores = append(cores, c)
	}
	p.byVM[vm] = append(p.byVM[vm], cores...)
	return nil
}

// release removes every pin of the VM.
func (p *pinner) release(vm string) {
	for _, c := range p.byVM[vm] {
		p.load[c]--
	}
	delete(p.byVM, vm)
}

// evictCore unpins every vCPU on the core and returns, per VM, how
// many vCPUs need a new home.
func (p *pinner) evictCore(core int) map[string]int {
	displaced := make(map[string]int)
	for vm, cores := range p.byVM {
		kept := cores[:0]
		for _, c := range cores {
			if c == core {
				displaced[vm]++
				p.load[core]--
				continue
			}
			kept = append(kept, c)
		}
		p.byVM[vm] = kept
	}
	return displaced
}

// Pinning returns the VM's vCPU core assignment, sorted.
func (h *Hypervisor) Pinning(vm string) []int {
	cores := append([]int(nil), h.pins.byVM[vm]...)
	sort.Ints(cores)
	return cores
}

// CoreLoad returns the number of vCPUs pinned to the core.
func (h *Hypervisor) CoreLoad(core int) int { return h.pins.load[core] }

// usableCores lists the non-isolated physical cores.
func (h *Hypervisor) usableCores() []int {
	var out []int
	for c := 0; c < h.cfg.Cores; c++ {
		if !h.isolatedCores[c] {
			out = append(out, c)
		}
	}
	return out
}

// rehomeDisplaced re-pins vCPUs evicted from an isolated core. VMs
// whose vCPUs cannot be re-homed are stopped (the cloud layer will
// reschedule them elsewhere); their names are returned.
func (h *Hypervisor) rehomeDisplaced(displaced map[string]int) []string {
	var stopped []string
	usable := h.usableCores()
	// Deterministic order.
	vms := make([]string, 0, len(displaced))
	for vm := range displaced {
		vms = append(vms, vm)
	}
	sort.Strings(vms)
	for _, vm := range vms {
		if err := h.pins.assign(vm, displaced[vm], usable); err != nil {
			h.pins.release(vm)
			if err := h.StopVM(vm); err == nil {
				stopped = append(stopped, vm)
			}
		}
	}
	return stopped
}
