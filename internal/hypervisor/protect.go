package hypervisor

import (
	"errors"
	"time"
)

// CheckpointPolicy prices the runtime cost of the selective-protection
// mechanism: protected objects are checked and checkpointed
// periodically, stealing memory bandwidth and CPU cycles from the
// guests. Section 6.C's constraint is explicit — "the overhead of
// resiliency should not outweigh the energy efficiency benefits
// achieved at EOP" — so the cost must be a first-class quantity.
type CheckpointPolicy struct {
	// Interval between checkpoint passes.
	Interval time.Duration
	// CopyBandwidthBps is the effective checkpoint copy rate.
	CopyBandwidthBps float64
	// CheckCostNsPerObject is the integrity-check cost per protected
	// object per pass.
	CheckCostNsPerObject float64
}

// DefaultCheckpointPolicy returns a 1-second pass with DDR3-class copy
// bandwidth.
func DefaultCheckpointPolicy() CheckpointPolicy {
	return CheckpointPolicy{
		Interval:             time.Second,
		CopyBandwidthBps:     6e9, // one DDR3 channel's worth
		CheckCostNsPerObject: 40,
	}
}

func (p CheckpointPolicy) validate() error {
	if p.Interval <= 0 {
		return errors.New("hypervisor: checkpoint interval must be positive")
	}
	if p.CopyBandwidthBps <= 0 {
		return errors.New("hypervisor: checkpoint bandwidth must be positive")
	}
	if p.CheckCostNsPerObject < 0 {
		return errors.New("hypervisor: negative check cost")
	}
	return nil
}

// ProtectionCost is the steady-state overhead of a protection set.
type ProtectionCost struct {
	// ProtectedObjects and ProtectedBytes size the checkpoint set.
	ProtectedObjects int
	ProtectedBytes   uint64
	// PassTime is the duration of one checkpoint pass.
	PassTime time.Duration
	// OverheadPct is the fraction of machine time spent checkpointing,
	// in percent (PassTime / Interval).
	OverheadPct float64
	// MemoryOverheadBytes is the checkpoint storage (a second copy of
	// every protected object).
	MemoryOverheadBytes uint64
}

// CostOfProtection computes the steady-state overhead of the current
// protection set under the policy.
func (om *ObjectMap) CostOfProtection(policy CheckpointPolicy) (ProtectionCost, error) {
	if err := policy.validate(); err != nil {
		return ProtectionCost{}, err
	}
	var cost ProtectionCost
	for _, o := range om.Objects {
		if o.Protected {
			cost.ProtectedObjects++
			cost.ProtectedBytes += uint64(o.Bytes)
		}
	}
	copySec := float64(cost.ProtectedBytes) / policy.CopyBandwidthBps
	checkSec := float64(cost.ProtectedObjects) * policy.CheckCostNsPerObject * 1e-9
	cost.PassTime = time.Duration((copySec + checkSec) * float64(time.Second))
	cost.OverheadPct = 100 * float64(cost.PassTime) / float64(policy.Interval)
	cost.MemoryOverheadBytes = cost.ProtectedBytes
	return cost, nil
}

// WorthIt reports whether the protection overhead stays below the
// energy saving EOP operation buys (both in percent): the Section 6.C
// viability criterion.
func (c ProtectionCost) WorthIt(energySavingsPct float64) bool {
	return c.OverheadPct < energySavingsPct
}
