// Package vfr defines the Voltage-Frequency-Refresh (V-F-R) operating
// point vocabulary shared by every UniServer layer, together with the
// guardband accounting that motivates the whole project (Table 1 of
// the paper) and the Extended Operating Point (EOP) tables the
// StressLog daemon produces and the hypervisor consumes.
//
// Operating points use integer millivolts and megahertz and a
// time.Duration refresh interval so that points compare exactly and
// can be used as map keys without floating-point identity traps.
package vfr

import (
	"errors"
	"fmt"
	"sort"
	"time"
)

// NominalRefresh is the JEDEC-standard DRAM retention window: every
// cell must be refreshed at least once every 64 ms.
const NominalRefresh = 64 * time.Millisecond

// Point is a V-F-R operating point. Voltage and frequency describe the
// CPU domain; Refresh describes the DRAM domain. A zero Refresh means
// "unspecified / CPU-only point".
type Point struct {
	VoltageMV int           // supply voltage in millivolts
	FreqMHz   int           // core clock in MHz
	Refresh   time.Duration // DRAM refresh interval (0 = unspecified)
}

// String renders the point compactly, e.g. "0.844V@2600MHz/64ms".
func (p Point) String() string {
	if p.Refresh == 0 {
		return fmt.Sprintf("%.3fV@%dMHz", float64(p.VoltageMV)/1000, p.FreqMHz)
	}
	return fmt.Sprintf("%.3fV@%dMHz/%s", float64(p.VoltageMV)/1000, p.FreqMHz, p.Refresh)
}

// Valid reports whether the point has physically meaningful values.
func (p Point) Valid() bool {
	return p.VoltageMV > 0 && p.FreqMHz > 0 && p.Refresh >= 0
}

// VoltageOffsetPct returns the relative offset of p's voltage from the
// given nominal voltage, in percent; negative values are undervolting.
func (p Point) VoltageOffsetPct(nominalMV int) float64 {
	return 100 * float64(p.VoltageMV-nominalMV) / float64(nominalMV)
}

// WithVoltage returns a copy of p at the given voltage.
func (p Point) WithVoltage(mv int) Point { p.VoltageMV = mv; return p }

// WithRefresh returns a copy of p at the given refresh interval.
func (p Point) WithRefresh(d time.Duration) Point { p.Refresh = d; return p }

// Mode labels the operating regimes the Predictor advises on.
type Mode int

const (
	// ModeNominal runs at manufacturer guardbands (baseline).
	ModeNominal Mode = iota
	// ModeHighPerformance holds nominal frequency while shaving the
	// voltage guardband revealed by characterization.
	ModeHighPerformance
	// ModeLowPower scales voltage and frequency down together for the
	// minimum-energy configuration that still meets the SLA.
	ModeLowPower
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ModeNominal:
		return "nominal"
	case ModeHighPerformance:
		return "high-performance"
	case ModeLowPower:
		return "low-power"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// GuardbandSource identifies one contributor to the manufacturer's
// pessimistic voltage margin (Table 1).
type GuardbandSource int

const (
	// GuardVoltageDroop covers di/dt supply noise events (~20%).
	GuardVoltageDroop GuardbandSource = iota
	// GuardVmin covers low-voltage SRAM reliability (~15%).
	GuardVmin
	// GuardCoreToCore covers within-die core variation (~5%).
	GuardCoreToCore
)

// String implements fmt.Stringer.
func (g GuardbandSource) String() string {
	switch g {
	case GuardVoltageDroop:
		return "voltage droops"
	case GuardVmin:
		return "Vmin"
	case GuardCoreToCore:
		return "core-to-core variations"
	default:
		return fmt.Sprintf("GuardbandSource(%d)", int(g))
	}
}

// Guardband is one row of Table 1: a source of variation and the
// voltage up-scaling (in percent of nominal) the manufacturer adds to
// cover it.
type Guardband struct {
	Source GuardbandSource
	Pct    float64
}

// Table1Guardbands returns the paper's Table 1: the conservative
// voltage guardbands adopted by manufacturers against each source of
// variation.
func Table1Guardbands() []Guardband {
	return []Guardband{
		{GuardVoltageDroop, 20},
		{GuardVmin, 15},
		{GuardCoreToCore, 5},
	}
}

// TotalGuardbandPct returns the summed voltage up-scaling across the
// given guardbands.
func TotalGuardbandPct(gs []Guardband) float64 {
	total := 0.0
	for _, g := range gs {
		total += g.Pct
	}
	return total
}

// Margin records, for one hardware component, the safe operating
// boundary discovered by characterization: the most aggressive point
// that completed all stress tests without uncorrected errors, plus the
// safety cushion the StressLog applies before publishing it.
type Margin struct {
	Component   string        // e.g. "core3", "dimm1"
	Nominal     Point         // manufacturer point
	CrashPoint  Point         // most aggressive point observed to fail
	Safe        Point         // published EOP = crash point + cushion
	CushionMV   int           // voltage cushion applied above crash
	CushionTime time.Duration // refresh cushion applied below failure
}

// UndervoltHeadroomPct returns how far (in percent of nominal voltage)
// the published safe point sits below nominal: the recovered margin.
func (m Margin) UndervoltHeadroomPct() float64 {
	return -m.Safe.VoltageOffsetPct(m.Nominal.VoltageMV)
}

// EOPTable is the set of per-component extended operating points the
// StressLog publishes to the system software. It is keyed by component
// name and safe for copying (the map is the identity; callers clone
// when mutating concurrently).
type EOPTable struct {
	margins map[string]Margin
}

// NewEOPTable returns an empty table.
func NewEOPTable() *EOPTable {
	return &EOPTable{margins: make(map[string]Margin)}
}

// ErrUnknownComponent is returned by Lookup for components that have
// not been characterized.
var ErrUnknownComponent = errors.New("vfr: component not characterized")

// Set records or replaces the margin for a component.
func (t *EOPTable) Set(m Margin) {
	t.margins[m.Component] = m
}

// Lookup returns the margin for a component.
func (t *EOPTable) Lookup(component string) (Margin, error) {
	m, ok := t.margins[component]
	if !ok {
		return Margin{}, fmt.Errorf("%w: %q", ErrUnknownComponent, component)
	}
	return m, nil
}

// Components returns the characterized component names in sorted order.
func (t *EOPTable) Components() []string {
	names := make([]string, 0, len(t.margins))
	for name := range t.margins {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Len returns the number of characterized components.
func (t *EOPTable) Len() int { return len(t.margins) }

// WorstCase returns the least aggressive safe point across all
// components — the system-wide point that is safe for every component,
// which is what a conservative (non-UniServer) deployment would use.
// It returns an error if the table is empty.
func (t *EOPTable) WorstCase() (Point, error) {
	if len(t.margins) == 0 {
		return Point{}, errors.New("vfr: empty EOP table")
	}
	var worst Point
	first := true
	for _, m := range t.margins {
		if first {
			worst = m.Safe
			first = false
			continue
		}
		if m.Safe.VoltageMV > worst.VoltageMV {
			worst.VoltageMV = m.Safe.VoltageMV
		}
		if m.Safe.FreqMHz < worst.FreqMHz {
			worst.FreqMHz = m.Safe.FreqMHz
		}
		if m.Safe.Refresh != 0 && (worst.Refresh == 0 || m.Safe.Refresh < worst.Refresh) {
			worst.Refresh = m.Safe.Refresh
		}
	}
	return worst, nil
}

// Clone returns a deep copy of the table.
func (t *EOPTable) Clone() *EOPTable {
	c := NewEOPTable()
	for k, v := range t.margins {
		c.margins[k] = v
	}
	return c
}

// CopyFrom replaces t's contents with a copy of src's, reusing t's map
// storage (Go maps keep their buckets across clear, so re-stamping the
// same shape allocates nothing). The arena form of Clone.
func (t *EOPTable) CopyFrom(src *EOPTable) {
	if t.margins == nil {
		t.margins = make(map[string]Margin, len(src.margins))
	} else {
		clear(t.margins)
	}
	for k, v := range src.margins {
		t.margins[k] = v
	}
}
