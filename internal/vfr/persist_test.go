package vfr

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func sampleTable() *EOPTable {
	t := NewEOPTable()
	t.Set(Margin{
		Component:  "part/core0",
		Nominal:    Point{VoltageMV: 844, FreqMHz: 2600},
		CrashPoint: Point{VoltageMV: 756, FreqMHz: 2600},
		Safe:       Point{VoltageMV: 781, FreqMHz: 2600},
		CushionMV:  25,
	})
	t.Set(Margin{
		Component:   "dram/relaxed",
		Nominal:     Point{VoltageMV: 1, FreqMHz: 1, Refresh: 64 * time.Millisecond},
		CrashPoint:  Point{VoltageMV: 1, FreqMHz: 1, Refresh: 3 * time.Second},
		Safe:        Point{VoltageMV: 1, FreqMHz: 1, Refresh: 1500 * time.Millisecond},
		CushionTime: 1500 * time.Millisecond,
	})
	return t
}

func TestSaveLoadRoundTrip(t *testing.T) {
	orig := sampleTable()
	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != orig.Len() {
		t.Fatalf("len = %d, want %d", got.Len(), orig.Len())
	}
	for _, name := range orig.Components() {
		a, _ := orig.Lookup(name)
		b, err := got.Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Fatalf("margin %s mismatched:\n%+v\n%+v", name, a, b)
		}
	}
}

func TestSaveIsHumanReadableJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleTable().Save(&buf); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	if !strings.Contains(s, "\"component\": \"part/core0\"") {
		t.Fatalf("unexpected serialization:\n%s", s)
	}
	if !strings.Contains(s, "\"version\": 1") {
		t.Fatal("missing version")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(strings.NewReader("{nope")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestLoadRejectsWrongVersion(t *testing.T) {
	if _, err := Load(strings.NewReader(`{"version":99,"margins":[]}`)); err == nil {
		t.Fatal("future version accepted")
	}
}

func TestLoadRejectsEmptyComponent(t *testing.T) {
	doc := `{"version":1,"margins":[{"component":""}]}`
	if _, err := Load(strings.NewReader(doc)); err == nil {
		t.Fatal("empty component accepted")
	}
}

func TestSaveEmptyTable(t *testing.T) {
	var buf bytes.Buffer
	if err := NewEOPTable().Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 0 {
		t.Fatal("empty table round trip gained margins")
	}
}
