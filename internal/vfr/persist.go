package vfr

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// marginJSON is the wire form of a Margin.
type marginJSON struct {
	Component   string        `json:"component"`
	Nominal     pointJSON     `json:"nominal"`
	CrashPoint  pointJSON     `json:"crash_point"`
	Safe        pointJSON     `json:"safe"`
	CushionMV   int           `json:"cushion_mv"`
	CushionTime time.Duration `json:"cushion_time_ns"`
}

// pointJSON is the wire form of a Point.
type pointJSON struct {
	VoltageMV int           `json:"voltage_mv"`
	FreqMHz   int           `json:"freq_mhz"`
	Refresh   time.Duration `json:"refresh_ns"`
}

func toPointJSON(p Point) pointJSON {
	return pointJSON{VoltageMV: p.VoltageMV, FreqMHz: p.FreqMHz, Refresh: p.Refresh}
}

func fromPointJSON(p pointJSON) Point {
	return Point{VoltageMV: p.VoltageMV, FreqMHz: p.FreqMHz, Refresh: p.Refresh}
}

// tableJSON is the wire form of an EOPTable.
type tableJSON struct {
	Version int          `json:"version"`
	Margins []marginJSON `json:"margins"`
}

// persistVersion guards against future format changes.
const persistVersion = 1

// Save writes the table as JSON, the format the StressLog persists its
// published margin vectors in between campaigns (margins survive node
// reboots; the paper's daemons write their outputs to system files).
func (t *EOPTable) Save(w io.Writer) error {
	out := tableJSON{Version: persistVersion}
	for _, name := range t.Components() {
		m := t.margins[name]
		out.Margins = append(out.Margins, marginJSON{
			Component:   m.Component,
			Nominal:     toPointJSON(m.Nominal),
			CrashPoint:  toPointJSON(m.CrashPoint),
			Safe:        toPointJSON(m.Safe),
			CushionMV:   m.CushionMV,
			CushionTime: m.CushionTime,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		return fmt.Errorf("vfr: saving EOP table: %w", err)
	}
	return nil
}

// Load reads a table previously written by Save.
func Load(r io.Reader) (*EOPTable, error) {
	var in tableJSON
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("vfr: loading EOP table: %w", err)
	}
	if in.Version != persistVersion {
		return nil, fmt.Errorf("vfr: unsupported EOP table version %d", in.Version)
	}
	t := NewEOPTable()
	for _, m := range in.Margins {
		if m.Component == "" {
			return nil, fmt.Errorf("vfr: margin with empty component name")
		}
		t.Set(Margin{
			Component:   m.Component,
			Nominal:     fromPointJSON(m.Nominal),
			CrashPoint:  fromPointJSON(m.CrashPoint),
			Safe:        fromPointJSON(m.Safe),
			CushionMV:   m.CushionMV,
			CushionTime: m.CushionTime,
		})
	}
	return t, nil
}

// GobEncode implements gob.GobEncoder via the versioned Save format,
// so structs embedding *EOPTable (margin-vector histories, snapshot
// state) serialize through encoding/gob without exposing the table's
// internals. The format carries only integers, strings and durations,
// so the round trip is exact.
func (t *EOPTable) GobEncode() ([]byte, error) {
	var b bytes.Buffer
	if err := t.Save(&b); err != nil {
		return nil, err
	}
	return b.Bytes(), nil
}

// GobDecode implements gob.GobDecoder, inverting GobEncode.
func (t *EOPTable) GobDecode(data []byte) error {
	loaded, err := Load(bytes.NewReader(data))
	if err != nil {
		return err
	}
	*t = *loaded
	return nil
}
