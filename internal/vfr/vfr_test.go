package vfr

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestPointString(t *testing.T) {
	p := Point{VoltageMV: 844, FreqMHz: 2600}
	if got := p.String(); got != "0.844V@2600MHz" {
		t.Fatalf("String = %q", got)
	}
	p.Refresh = 64 * time.Millisecond
	if got := p.String(); !strings.Contains(got, "64ms") {
		t.Fatalf("String with refresh = %q", got)
	}
}

func TestPointValid(t *testing.T) {
	if !(Point{VoltageMV: 800, FreqMHz: 1000}).Valid() {
		t.Error("valid point reported invalid")
	}
	if (Point{VoltageMV: 0, FreqMHz: 1000}).Valid() {
		t.Error("zero voltage reported valid")
	}
	if (Point{VoltageMV: 800, FreqMHz: 0}).Valid() {
		t.Error("zero frequency reported valid")
	}
	if (Point{VoltageMV: 800, FreqMHz: 100, Refresh: -time.Second}).Valid() {
		t.Error("negative refresh reported valid")
	}
}

func TestVoltageOffsetPct(t *testing.T) {
	p := Point{VoltageMV: 760, FreqMHz: 2600}
	got := p.VoltageOffsetPct(844)
	if got > -9.9 || got < -10 {
		t.Fatalf("offset = %v, want ~-9.95", got)
	}
	if (Point{VoltageMV: 844}).VoltageOffsetPct(844) != 0 {
		t.Fatal("offset at nominal should be 0")
	}
}

func TestWithHelpers(t *testing.T) {
	p := Point{VoltageMV: 844, FreqMHz: 2600}
	q := p.WithVoltage(800).WithRefresh(time.Second)
	if q.VoltageMV != 800 || q.Refresh != time.Second || q.FreqMHz != 2600 {
		t.Fatalf("WithVoltage/WithRefresh produced %v", q)
	}
	if p.VoltageMV != 844 || p.Refresh != 0 {
		t.Fatal("With helpers mutated receiver")
	}
}

func TestModeString(t *testing.T) {
	cases := map[Mode]string{
		ModeNominal:         "nominal",
		ModeHighPerformance: "high-performance",
		ModeLowPower:        "low-power",
		Mode(99):            "Mode(99)",
	}
	for m, want := range cases {
		if got := m.String(); got != want {
			t.Errorf("Mode(%d).String() = %q, want %q", int(m), got, want)
		}
	}
}

func TestTable1Guardbands(t *testing.T) {
	gs := Table1Guardbands()
	if len(gs) != 3 {
		t.Fatalf("Table 1 has %d rows, want 3", len(gs))
	}
	bySource := map[GuardbandSource]float64{}
	for _, g := range gs {
		bySource[g.Source] = g.Pct
	}
	if bySource[GuardVoltageDroop] != 20 {
		t.Errorf("droop guardband = %v, want 20", bySource[GuardVoltageDroop])
	}
	if bySource[GuardVmin] != 15 {
		t.Errorf("Vmin guardband = %v, want 15", bySource[GuardVmin])
	}
	if bySource[GuardCoreToCore] != 5 {
		t.Errorf("core-to-core guardband = %v, want 5", bySource[GuardCoreToCore])
	}
	if got := TotalGuardbandPct(gs); got != 40 {
		t.Errorf("total guardband = %v, want 40", got)
	}
}

func TestGuardbandSourceString(t *testing.T) {
	for _, g := range Table1Guardbands() {
		if strings.HasPrefix(g.Source.String(), "GuardbandSource(") {
			t.Errorf("source %d missing name", g.Source)
		}
	}
	if !strings.HasPrefix(GuardbandSource(42).String(), "GuardbandSource(") {
		t.Error("unknown source should use fallback formatting")
	}
}

func TestMarginHeadroom(t *testing.T) {
	m := Margin{
		Component: "core0",
		Nominal:   Point{VoltageMV: 1000, FreqMHz: 2000},
		Safe:      Point{VoltageMV: 900, FreqMHz: 2000},
	}
	if got := m.UndervoltHeadroomPct(); got != 10 {
		t.Fatalf("headroom = %v, want 10", got)
	}
}

func TestEOPTableBasics(t *testing.T) {
	tab := NewEOPTable()
	if tab.Len() != 0 {
		t.Fatal("new table not empty")
	}
	if _, err := tab.Lookup("core0"); !errors.Is(err, ErrUnknownComponent) {
		t.Fatalf("Lookup on empty table: %v", err)
	}
	m := Margin{Component: "core0", Nominal: Point{VoltageMV: 1000, FreqMHz: 2000},
		Safe: Point{VoltageMV: 900, FreqMHz: 2000}}
	tab.Set(m)
	got, err := tab.Lookup("core0")
	if err != nil || got.Safe.VoltageMV != 900 {
		t.Fatalf("Lookup = %+v, %v", got, err)
	}
	tab.Set(Margin{Component: "core1", Safe: Point{VoltageMV: 950, FreqMHz: 1800}})
	names := tab.Components()
	if len(names) != 2 || names[0] != "core0" || names[1] != "core1" {
		t.Fatalf("Components = %v", names)
	}
}

func TestEOPTableWorstCase(t *testing.T) {
	tab := NewEOPTable()
	if _, err := tab.WorstCase(); err == nil {
		t.Fatal("WorstCase on empty table should error")
	}
	tab.Set(Margin{Component: "core0", Safe: Point{VoltageMV: 900, FreqMHz: 2600, Refresh: 2 * time.Second}})
	tab.Set(Margin{Component: "core1", Safe: Point{VoltageMV: 950, FreqMHz: 2400, Refresh: time.Second}})
	tab.Set(Margin{Component: "core2", Safe: Point{VoltageMV: 870, FreqMHz: 2500}})
	worst, err := tab.WorstCase()
	if err != nil {
		t.Fatal(err)
	}
	if worst.VoltageMV != 950 {
		t.Errorf("worst voltage = %d, want 950 (least aggressive)", worst.VoltageMV)
	}
	if worst.FreqMHz != 2400 {
		t.Errorf("worst freq = %d, want 2400", worst.FreqMHz)
	}
	if worst.Refresh != time.Second {
		t.Errorf("worst refresh = %v, want 1s", worst.Refresh)
	}
}

func TestEOPTableClone(t *testing.T) {
	tab := NewEOPTable()
	tab.Set(Margin{Component: "core0", Safe: Point{VoltageMV: 900, FreqMHz: 2000}})
	c := tab.Clone()
	c.Set(Margin{Component: "core1", Safe: Point{VoltageMV: 800, FreqMHz: 2000}})
	if tab.Len() != 1 || c.Len() != 2 {
		t.Fatalf("clone not independent: orig=%d clone=%d", tab.Len(), c.Len())
	}
}

func TestVoltageOffsetSignProperty(t *testing.T) {
	err := quick.Check(func(nominal uint16, delta int8) bool {
		n := int(nominal)%2000 + 500 // 500..2499 mV
		p := Point{VoltageMV: n + int(delta), FreqMHz: 1000}
		off := p.VoltageOffsetPct(n)
		switch {
		case int(delta) < 0:
			return off < 0
		case int(delta) > 0:
			return off > 0
		default:
			return off == 0
		}
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}
