package vfr_test

import (
	"fmt"

	"uniserver/internal/vfr"
)

// Table 1 of the paper: the conservative voltage guardbands that the
// EOP machinery recovers.
func ExampleTable1Guardbands() {
	for _, g := range vfr.Table1Guardbands() {
		fmt.Printf("%s: ~%.0f%%\n", g.Source, g.Pct)
	}
	fmt.Printf("total: %.0f%%\n", vfr.TotalGuardbandPct(vfr.Table1Guardbands()))
	// Output:
	// voltage droops: ~20%
	// Vmin: ~15%
	// core-to-core variations: ~5%
	// total: 40%
}

// An EOP table maps characterized components to their safe points; the
// worst case over all components is the system-wide safe point.
func ExampleEOPTable_WorstCase() {
	t := vfr.NewEOPTable()
	t.Set(vfr.Margin{Component: "core0",
		Nominal: vfr.Point{VoltageMV: 844, FreqMHz: 2600},
		Safe:    vfr.Point{VoltageMV: 775, FreqMHz: 2600}})
	t.Set(vfr.Margin{Component: "core1",
		Nominal: vfr.Point{VoltageMV: 844, FreqMHz: 2600},
		Safe:    vfr.Point{VoltageMV: 781, FreqMHz: 2600}})
	worst, _ := t.WorstCase()
	fmt.Println(worst)
	// Output:
	// 0.781V@2600MHz
}
