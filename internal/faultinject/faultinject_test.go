package faultinject

import (
	"strings"
	"testing"

	"uniserver/internal/hypervisor"
	"uniserver/internal/rng"
)

func objectMap(seed uint64) *hypervisor.ObjectMap {
	return hypervisor.NewObjectMap(hypervisor.DefaultProfiles(), rng.New(seed))
}

func TestValidation(t *testing.T) {
	if _, err := RunCampaign(nil, true, 5, rng.New(1)); err == nil {
		t.Fatal("nil object map accepted")
	}
	if _, err := RunCampaign(objectMap(1), true, 0, rng.New(1)); err == nil {
		t.Fatal("zero runs accepted")
	}
}

func TestCampaignDeterministic(t *testing.T) {
	a, err := RunCampaign(objectMap(2), true, PaperRuns, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunCampaign(objectMap(2), true, PaperRuns, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if a.Total != b.Total {
		t.Fatalf("campaign not deterministic: %d vs %d", a.Total, b.Total)
	}
	for _, c := range hypervisor.Categories() {
		if a.Failures[c] != b.Failures[c] {
			t.Fatalf("category %s diverged", c)
		}
	}
}

// TestFigure4Shape verifies the paper's Figure 4 observations:
// (1) active VMs amplify fatal failures by roughly an order of
// magnitude, (2) fs, kernel and net dominate in both conditions,
// (3) the sensitive categories are the same regardless of load.
func TestFigure4Shape(t *testing.T) {
	om := objectMap(42)
	loaded, unloaded, err := Figure4(om, PaperRuns, rng.New(42))
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Objects != hypervisor.TotalObjects || loaded.Runs != PaperRuns {
		t.Fatalf("campaign shape wrong: %+v", loaded)
	}

	amp := LoadAmplification(loaded, unloaded)
	if amp < 6 || amp > 16 {
		t.Errorf("load amplification = %.1fx, paper saw ~10x", amp)
	}

	topLoaded := SensitiveCategories(loaded)[:3]
	topUnloaded := SensitiveCategories(unloaded)[:3]
	sensitive := map[hypervisor.Category]bool{
		hypervisor.CatFS: true, hypervisor.CatKernel: true, hypervisor.CatNet: true,
	}
	for _, c := range topLoaded {
		if !sensitive[c] {
			t.Errorf("loaded top-3 contains %s, want fs/kernel/net", c)
		}
	}
	// Same sensitive set irrespective of load.
	for _, c := range topUnloaded {
		if !sensitive[c] {
			t.Errorf("unloaded top-3 contains %s, want fs/kernel/net", c)
		}
	}

	// Magnitudes in the figure's ballpark: loaded max ~3000-3500,
	// unloaded max ~200-350.
	maxLoaded := loaded.Failures[topLoaded[0]]
	if maxLoaded < 2000 || maxLoaded > 4500 {
		t.Errorf("loaded peak failures = %d, want ~3300", maxLoaded)
	}
	maxUnloaded := unloaded.Failures[topUnloaded[0]]
	if maxUnloaded < 120 || maxUnloaded > 600 {
		t.Errorf("unloaded peak failures = %d, want ~300", maxUnloaded)
	}

	// Insensitive categories stay tiny.
	for _, c := range []hypervisor.Category{hypervisor.CatInit, hypervisor.CatVDSO, hypervisor.CatPCI} {
		if loaded.Failures[c] > maxLoaded/20 {
			t.Errorf("category %s unexpectedly sensitive: %d failures", c, loaded.Failures[c])
		}
	}
}

func TestCrucialMarkingSubsetOfTruth(t *testing.T) {
	om := objectMap(7)
	rep, err := RunCampaign(om, true, PaperRuns, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.MarkedCrucial) == 0 {
		t.Fatal("campaign marked nothing crucial")
	}
	for id := range rep.MarkedCrucial {
		if !om.Objects[id].Crucial {
			t.Fatalf("object %d marked crucial but is not", id)
		}
	}
	// More runs mark at least as many objects.
	om2 := objectMap(7)
	rep2, err := RunCampaign(om2, true, PaperRuns*4, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep2.MarkedCrucial) < len(rep.MarkedCrucial) {
		t.Fatal("more runs should not mark fewer objects")
	}
}

func TestReportString(t *testing.T) {
	rep, err := RunCampaign(objectMap(9), false, 2, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	s := rep.String()
	if !strings.Contains(s, "no workload") || !strings.Contains(s, "fs") {
		t.Fatalf("report rendering incomplete:\n%s", s)
	}
	repL, _ := RunCampaign(objectMap(9), true, 2, rng.New(9))
	if !strings.Contains(repL.String(), "with workload") {
		t.Fatal("loaded report mislabeled")
	}
}

func TestLoadAmplificationZeroDenominator(t *testing.T) {
	if LoadAmplification(Report{Total: 5}, Report{Total: 0}) != 0 {
		t.Fatal("zero-unloaded amplification should be 0")
	}
}

// TestSelectiveProtectionEffectiveness is the Section 6.C payoff: a
// protection plan derived from one campaign eliminates nearly all
// fatal failures in a subsequent campaign, at a checkpoint cost far
// below protecting everything.
func TestSelectiveProtectionEffectiveness(t *testing.T) {
	om := objectMap(11)
	baseline, err := RunCampaign(om, true, PaperRuns, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	plan := PlanProtection(baseline, 0.15)
	if len(plan.ObjectIDs) == 0 {
		t.Fatal("empty protection plan")
	}
	covered := plan.Apply(om)
	if covered == 0 {
		t.Fatal("plan covered nothing")
	}

	protected, err := RunCampaign(om, true, PaperRuns, rng.New(12))
	if err != nil {
		t.Fatal(err)
	}
	reduction := 1 - float64(protected.Total)/float64(baseline.Total)
	if reduction < 0.90 {
		t.Fatalf("protection reduced failures by only %.1f%%, want >= 90%%", reduction*100)
	}
	if protected.Restored == 0 {
		t.Fatal("protection never exercised")
	}
	// Selectivity: the checkpoint set must cost materially less than
	// the static object state (and far less than full-hypervisor
	// checkpointing, which would also cover the dynamic overhead).
	if float64(om.ProtectedBytes()) > 0.7*float64(om.StaticBytes()) {
		t.Fatalf("protection covers %d of %d bytes; not selective",
			om.ProtectedBytes(), om.StaticBytes())
	}
}

func TestPlanProtectionCategories(t *testing.T) {
	rep := Report{
		Total: 100,
		Failures: map[hypervisor.Category]int{
			hypervisor.CatFS:     60,
			hypervisor.CatKernel: 30,
			hypervisor.CatVDSO:   10,
		},
		MarkedCrucial: map[int]bool{3: true, 1: true},
	}
	plan := PlanProtection(rep, 0.25)
	if len(plan.Categories) != 2 {
		t.Fatalf("categories = %v", plan.Categories)
	}
	if plan.ObjectIDs[0] != 1 || plan.ObjectIDs[1] != 3 {
		t.Fatalf("object ids not sorted: %v", plan.ObjectIDs)
	}
	empty := PlanProtection(Report{MarkedCrucial: map[int]bool{}}, 0.5)
	if len(empty.ObjectIDs) != 0 || len(empty.Categories) != 0 {
		t.Fatal("empty report produced non-empty plan")
	}
}

func BenchmarkFigure4Campaign(b *testing.B) {
	om := objectMap(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Figure4(om, PaperRuns, rng.New(uint64(i))); err != nil {
			b.Fatal(err)
		}
	}
}
