// Package faultinject implements the QEMU-style fault-injection
// campaigns of Section 6.C: for each statically allocated hypervisor
// object, inject Silent Data Corruptions (SDCs) in independent
// executions and check whether the corruption leaves the hypervisor
// non-responsive, marking the object as crucial or non-crucial.
// Campaigns run both with and without VMs on top of the victim
// hypervisor, reproducing Figure 4's two series: active load drives
// roughly an order of magnitude more fatal failures, concentrated in
// the same sensitive categories (fs, kernel, net) regardless of load.
package faultinject

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"uniserver/internal/hypervisor"
	"uniserver/internal/rng"
)

// PaperRuns is the number of independent executions per object used in
// the paper ("in independent executions (total 5 executions)").
const PaperRuns = 5

// Report aggregates one campaign.
type Report struct {
	Loaded  bool
	Runs    int
	Objects int
	// Failures counts fatal (non-responsive hypervisor) outcomes per
	// category, summed over objects and runs.
	Failures map[hypervisor.Category]int
	// Total is the sum of Failures.
	Total int
	// MarkedCrucial is the set of object IDs with at least one fatal
	// outcome — the campaign's empirical criticality labels.
	MarkedCrucial map[int]bool
	// Restored counts corruptions absorbed by selective protection.
	Restored int
}

// failuresLine renders one category series like the Figure 4 axis.
func (r Report) String() string {
	var b strings.Builder
	cond := "no workload"
	if r.Loaded {
		cond = "with workload"
	}
	fmt.Fprintf(&b, "fault-injection (%s): %d objects x %d runs, %d fatal failures\n",
		cond, r.Objects, r.Runs, r.Total)
	for _, c := range hypervisor.Categories() {
		fmt.Fprintf(&b, "  %-10s %d\n", c, r.Failures[c])
	}
	return b.String()
}

// RunCampaign injects one SDC per object per run and observes the
// outcome window. A corruption is fatal when the object is consumed
// during the window (probability depends on category and load), the
// object is crucial, and it is not covered by selective protection
// (protected objects are detected and restored instead).
func RunCampaign(om *hypervisor.ObjectMap, loaded bool, runs int, src *rng.Source) (Report, error) {
	if om == nil {
		return Report{}, errors.New("faultinject: nil object map")
	}
	if runs <= 0 {
		return Report{}, errors.New("faultinject: runs must be positive")
	}
	r := Report{
		Loaded:        loaded,
		Runs:          runs,
		Objects:       om.Len(),
		Failures:      make(map[hypervisor.Category]int),
		MarkedCrucial: make(map[int]bool),
	}
	for _, obj := range om.Objects {
		p := om.AccessProb(obj.Category, loaded)
		for run := 0; run < runs; run++ {
			if !src.Bernoulli(p) {
				continue // corruption never consumed in this window
			}
			if obj.Protected {
				r.Restored++
				continue
			}
			if obj.Crucial {
				r.Failures[obj.Category]++
				r.Total++
				r.MarkedCrucial[obj.ID] = true
			}
		}
	}
	return r, nil
}

// Figure4 runs the paired campaign of the paper: the same object map
// under active VMs and unloaded.
func Figure4(om *hypervisor.ObjectMap, runs int, src *rng.Source) (loaded, unloaded Report, err error) {
	loaded, err = RunCampaign(om, true, runs, src.SplitLabeled("loaded"))
	if err != nil {
		return Report{}, Report{}, err
	}
	unloaded, err = RunCampaign(om, false, runs, src.SplitLabeled("unloaded"))
	if err != nil {
		return Report{}, Report{}, err
	}
	return loaded, unloaded, nil
}

// LoadAmplification returns the ratio of total fatal failures with
// load to without load (the paper observes about an order of
// magnitude).
func LoadAmplification(loaded, unloaded Report) float64 {
	if unloaded.Total == 0 {
		return 0
	}
	return float64(loaded.Total) / float64(unloaded.Total)
}

// SensitiveCategories returns the categories ordered by descending
// failure count.
func SensitiveCategories(r Report) []hypervisor.Category {
	cats := append([]hypervisor.Category(nil), hypervisor.Categories()...)
	sort.SliceStable(cats, func(i, j int) bool {
		return r.Failures[cats[i]] > r.Failures[cats[j]]
	})
	return cats
}

// ProtectionPlan derives the selective-protection recommendation from
// a campaign: protect every object the campaign marked crucial, plus
// optionally whole categories whose failure share exceeds
// shareThreshold (0..1).
type ProtectionPlan struct {
	ObjectIDs  []int
	Categories []hypervisor.Category
}

// PlanProtection builds the plan from a report.
func PlanProtection(r Report, shareThreshold float64) ProtectionPlan {
	var plan ProtectionPlan
	for id := range r.MarkedCrucial {
		plan.ObjectIDs = append(plan.ObjectIDs, id)
	}
	sort.Ints(plan.ObjectIDs)
	if r.Total > 0 && shareThreshold > 0 {
		for _, c := range hypervisor.Categories() {
			if float64(r.Failures[c])/float64(r.Total) >= shareThreshold {
				plan.Categories = append(plan.Categories, c)
			}
		}
	}
	return plan
}

// Apply installs the plan on the object map and returns the number of
// newly protected objects.
func (p ProtectionPlan) Apply(om *hypervisor.ObjectMap) int {
	n := om.ProtectObjects(p.ObjectIDs)
	n += om.Protect(p.Categories...)
	return n
}
