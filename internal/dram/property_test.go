package dram

import (
	"testing"
	"testing/quick"
	"time"

	"uniserver/internal/rng"
)

// TestFailProbMonotoneProperty: longer refresh intervals and higher
// temperatures never reduce the failure probability.
func TestFailProbMonotoneProperty(t *testing.T) {
	m := DefaultRetentionModel()
	err := quick.Check(func(rawIv uint32, rawDelta uint16, rawTemp uint8) bool {
		iv := time.Duration(rawIv%10_000_000)*time.Microsecond + time.Millisecond
		delta := time.Duration(rawDelta) * time.Millisecond
		temp := 30 + float64(rawTemp%60)
		if m.FailProb(iv+delta, temp) < m.FailProb(iv, temp) {
			return false
		}
		return m.FailProb(iv, temp+5) >= m.FailProb(iv, temp)
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

// TestWeakRetentionTailProperty: sampled weak retentions are always in
// (0, horizon) and deterministic per seed.
func TestWeakRetentionTailProperty(t *testing.T) {
	m := DefaultRetentionModel()
	err := quick.Check(func(seed uint64) bool {
		a := m.SampleWeakRetention(WeakCellHorizon, rng.New(seed))
		b := m.SampleWeakRetention(WeakCellHorizon, rng.New(seed))
		return a == b && a > 0 && a < WeakCellHorizon.Seconds()
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

// TestAllocatorConservationProperty: across an arbitrary sequence of
// allocations and frees, per-domain used bytes equal the sum of live
// allocations and never exceed capacity.
func TestAllocatorConservationProperty(t *testing.T) {
	cfg := Config{Channels: 2, DIMMsPerChannel: 1, DIMMBytes: 64 << 20, DeviceGb: 2, TempC: 45}
	err := quick.Check(func(ops []uint16, seed uint64) bool {
		ms, err := New(cfg, DefaultRetentionModel(), rng.New(seed))
		if err != nil {
			return false
		}
		al := NewAllocator(ms)
		owners := []string{"a", "b", "c", "kernel"}
		for _, op := range ops {
			owner := owners[int(op)%len(owners)]
			if op%3 == 0 {
				al.Free(owner)
				continue
			}
			crit := CriticalityNormal
			if owner == "kernel" {
				crit = CriticalityKernel
			}
			pages := uint64(op%512) + 1
			_, _ = al.Alloc(owner, crit, pages) // exhaustion is fine
		}
		// Conservation: recompute from live allocations.
		byDomain := map[*Domain]uint64{}
		for _, owner := range owners {
			for _, a := range al.AllocationsOf(owner) {
				byDomain[a.Domain] += a.Bytes()
			}
		}
		for _, dom := range ms.Domains {
			if al.UsedBytes(dom) != byDomain[dom] {
				return false
			}
			if al.UsedBytes(dom) > dom.Bits()/8 {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 30})
	if err != nil {
		t.Fatal(err)
	}
}
