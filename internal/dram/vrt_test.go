package dram

import (
	"math"
	"testing"
	"time"

	"uniserver/internal/rng"
	"uniserver/internal/vfr"
)

func TestVRTPopulationExists(t *testing.T) {
	d := NewDIMM(8<<30, 2, DefaultRetentionModel(), rng.New(91))
	vrt := 0
	for _, c := range d.Weak {
		if c.AltRetentionSec > 0 {
			vrt++
			if c.AltRetentionSec >= c.RetentionSec {
				t.Fatal("VRT short state not shorter than long state")
			}
		}
	}
	frac := float64(vrt) / float64(len(d.Weak))
	if frac < 0.05 || frac > 0.15 {
		t.Fatalf("VRT fraction = %.3f, want ~%.2f", frac, VRTFraction)
	}
}

func TestEffectiveRetentionHonoursState(t *testing.T) {
	ms := newTestSystem(t, 93)
	cell := WeakCell{RetentionSec: 6, AltRetentionSec: 4}
	long := ms.effectiveRetention(cell)
	cell.LowState = true
	short := ms.effectiveRetention(cell)
	if short >= long {
		t.Fatalf("low state retention %v not below long %v", short, long)
	}
	stable := WeakCell{RetentionSec: 6}
	stable.LowState = true // meaningless for stable cells
	if ms.effectiveRetention(stable) != long*(6.0/6.0) {
		t.Fatal("stable cell affected by state flag")
	}
}

func TestToggleVRTOnlyTouchesVRTCells(t *testing.T) {
	ms := newTestSystem(t, 95)
	dom := ms.RelaxedDomains()[0]
	before := make(map[int]bool)
	for i, c := range dom.DIMMs[0].Weak {
		if c.AltRetentionSec == 0 {
			before[i] = c.LowState
		}
	}
	src := rng.New(1)
	for k := 0; k < 50; k++ {
		toggleVRT(dom, src)
	}
	for i, want := range before {
		if dom.DIMMs[0].Weak[i].LowState != want {
			t.Fatal("stable cell state mutated")
		}
	}
}

// TestVRTJustifiesDerate is the reason the StressLog publishes a
// derated refresh interval: a VRT cell that sits in its long-retention
// state during characterization passes the longest swept interval,
// then fails in the field once it telegraph-switches into its short
// state. The derated interval stays clean. The cell is planted
// explicitly so the mechanism is demonstrated deterministically.
func TestVRTJustifiesDerate(t *testing.T) {
	// One DIMM with exactly one VRT cell: long retention 3 s, short
	// state 2 s, currently (and during characterization) in the long
	// state.
	dimm := &DIMM{
		CapacityBytes: 8 << 30,
		DeviceGb:      2,
		Weak: []WeakCell{{
			Offset:          12345,
			RetentionSec:    3,
			TrueCell:        true,
			AltRetentionSec: 2,
			LowState:        false,
		}},
	}
	dom := &Domain{Name: "planted", DIMMs: []*DIMM{dimm}, Refresh: vfr.NominalRefresh}
	ms := &MemorySystem{Model: DefaultRetentionModel(), Domains: []*Domain{dom}, TempC: 45}

	// Characterization with a toggle-free stream: the cell stays high.
	points, err := ms.CharacterizeRefresh(
		[]time.Duration{1250 * time.Millisecond, 2500 * time.Millisecond}, 1, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	maxSafe, ok := MaxSafeRefresh(points)
	if !ok || maxSafe != 2500*time.Millisecond {
		t.Fatalf("characterization should observe 2.5s as error-free (cell in long state): %v %v (points %+v)", maxSafe, ok, points)
	}

	fieldErrors := func(refresh time.Duration, windows int, seed uint64) int {
		if err := dom.SetRefresh(refresh); err != nil {
			t.Fatal(err)
		}
		// Reset the cell to the state characterization left it in.
		dimm.Weak[0].LowState = false
		total := 0
		src := rng.New(seed)
		for w := 0; w < windows; w++ {
			total += ms.RunPatternTest(dom, src).BitErrors
		}
		return total
	}

	const windows = 600 // P(no toggle) = 0.98^600 ~ 5e-6
	atMax := fieldErrors(maxSafe, windows, 5)
	atDerated := fieldErrors(maxSafe/2, windows, 6)
	if atMax == 0 {
		t.Fatal("field run at the observed-safe interval never hit the VRT cell")
	}
	if atDerated != 0 {
		t.Fatalf("derated interval produced %d field errors", atDerated)
	}
	t.Logf("field run: %d error windows at observed-safe %v, 0 at derated %v",
		atMax, maxSafe, maxSafe/2)
}

// TestCoarseToggleProbClosedForm pins the fast-forward closed form
// against brute-force window stepping: after n windows a cell has
// flipped iff it toggled an odd number of times, whose probability is
// 0.5*(1-(1-2p)^n).
func TestCoarseToggleProbClosedForm(t *testing.T) {
	if got := CoarseToggleProb(0); got != 0 {
		t.Fatalf("zero windows should never flip, got %g", got)
	}
	if got, want := CoarseToggleProb(1), VRTToggleProb; math.Abs(got-want) > 1e-15 {
		t.Fatalf("single window flip prob %g, want %g", got, want)
	}
	// Recurrence check: q(n+1) = q(n)*(1-p) + (1-q(n))*p.
	q := 0.0
	for n := 1; n <= 64; n++ {
		q = q*(1-VRTToggleProb) + (1-q)*VRTToggleProb
		if got := CoarseToggleProb(n); math.Abs(got-q) > 1e-12 {
			t.Fatalf("CoarseToggleProb(%d) = %g, recurrence gives %g", n, got, q)
		}
	}
	// A full day of windows fully mixes the telegraph state.
	if got := CoarseToggleProb(24 * 60); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("day-scale toggle prob %g, want ~0.5", got)
	}
}

// TestToggleVRTCoarseTouchesOnlyVRT checks the coarse toggle flips
// only VRT cells and matches the index-free path draw for draw.
func TestToggleVRTCoarseTouchesOnlyVRT(t *testing.T) {
	model := DefaultRetentionModel()
	mkDom := func(seed uint64) *Domain {
		return &Domain{
			Name:    "d",
			DIMMs:   []*DIMM{NewDIMM(1<<30, 2, model, rng.New(seed))},
			Refresh: 64 * time.Millisecond,
		}
	}
	a, b := mkDom(7), mkDom(7)
	// Strip b's index so it exercises the fallback scan; the resulting
	// states must be identical (same Bernoulli order).
	for _, dimm := range b.DIMMs {
		dimm.vrt = nil
	}
	ToggleVRTCoarse(a, 90*24*60, rng.New(3))
	ToggleVRTCoarse(b, 90*24*60, rng.New(3))
	for di, dimm := range a.DIMMs {
		for i, cell := range dimm.Weak {
			other := b.DIMMs[di].Weak[i]
			if cell.LowState != other.LowState {
				t.Fatalf("indexed and fallback coarse toggles diverged at cell %d", i)
			}
			if cell.AltRetentionSec == 0 && cell.LowState {
				t.Fatalf("coarse toggle flipped a non-VRT cell %d", i)
			}
		}
	}
}

// TestReindexRebuildsVRTIndex checks a cleared index is rebuilt
// equivalent to the fabricated one: the indexed fast path and a
// freshly reindexed system produce identical toggles.
func TestReindexRebuildsVRTIndex(t *testing.T) {
	model := DefaultRetentionModel()
	ms, err := New(Config{Channels: 2, DIMMsPerChannel: 1, DIMMBytes: 1 << 30, DeviceGb: 2, TempC: 45},
		model, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	ref := ms.Clone()
	for _, dom := range ms.Domains {
		for _, dimm := range dom.DIMMs {
			dimm.vrt = nil
		}
	}
	ms.Reindex()
	for di, dom := range ms.Domains {
		ToggleVRTCoarse(dom, 1440, rng.New(5))
		ToggleVRTCoarse(ref.Domains[di], 1440, rng.New(5))
		for dj, dimm := range dom.DIMMs {
			for i := range dimm.Weak {
				if dimm.Weak[i].LowState != ref.Domains[di].DIMMs[dj].Weak[i].LowState {
					t.Fatalf("reindexed toggle diverged at domain %d dimm %d cell %d", di, dj, i)
				}
			}
		}
	}
}
