package dram

import (
	"testing"
	"time"

	"uniserver/internal/rng"
	"uniserver/internal/vfr"
)

func TestVRTPopulationExists(t *testing.T) {
	d := NewDIMM(8<<30, 2, DefaultRetentionModel(), rng.New(91))
	vrt := 0
	for _, c := range d.Weak {
		if c.AltRetentionSec > 0 {
			vrt++
			if c.AltRetentionSec >= c.RetentionSec {
				t.Fatal("VRT short state not shorter than long state")
			}
		}
	}
	frac := float64(vrt) / float64(len(d.Weak))
	if frac < 0.05 || frac > 0.15 {
		t.Fatalf("VRT fraction = %.3f, want ~%.2f", frac, VRTFraction)
	}
}

func TestEffectiveRetentionHonoursState(t *testing.T) {
	ms := newTestSystem(t, 93)
	cell := WeakCell{RetentionSec: 6, AltRetentionSec: 4}
	long := ms.effectiveRetention(cell)
	cell.LowState = true
	short := ms.effectiveRetention(cell)
	if short >= long {
		t.Fatalf("low state retention %v not below long %v", short, long)
	}
	stable := WeakCell{RetentionSec: 6}
	stable.LowState = true // meaningless for stable cells
	if ms.effectiveRetention(stable) != long*(6.0/6.0) {
		t.Fatal("stable cell affected by state flag")
	}
}

func TestToggleVRTOnlyTouchesVRTCells(t *testing.T) {
	ms := newTestSystem(t, 95)
	dom := ms.RelaxedDomains()[0]
	before := make(map[int]bool)
	for i, c := range dom.DIMMs[0].Weak {
		if c.AltRetentionSec == 0 {
			before[i] = c.LowState
		}
	}
	src := rng.New(1)
	for k := 0; k < 50; k++ {
		toggleVRT(dom, src)
	}
	for i, want := range before {
		if dom.DIMMs[0].Weak[i].LowState != want {
			t.Fatal("stable cell state mutated")
		}
	}
}

// TestVRTJustifiesDerate is the reason the StressLog publishes a
// derated refresh interval: a VRT cell that sits in its long-retention
// state during characterization passes the longest swept interval,
// then fails in the field once it telegraph-switches into its short
// state. The derated interval stays clean. The cell is planted
// explicitly so the mechanism is demonstrated deterministically.
func TestVRTJustifiesDerate(t *testing.T) {
	// One DIMM with exactly one VRT cell: long retention 3 s, short
	// state 2 s, currently (and during characterization) in the long
	// state.
	dimm := &DIMM{
		CapacityBytes: 8 << 30,
		DeviceGb:      2,
		Weak: []WeakCell{{
			Offset:          12345,
			RetentionSec:    3,
			TrueCell:        true,
			AltRetentionSec: 2,
			LowState:        false,
		}},
	}
	dom := &Domain{Name: "planted", DIMMs: []*DIMM{dimm}, Refresh: vfr.NominalRefresh}
	ms := &MemorySystem{Model: DefaultRetentionModel(), Domains: []*Domain{dom}, TempC: 45}

	// Characterization with a toggle-free stream: the cell stays high.
	points, err := ms.CharacterizeRefresh(
		[]time.Duration{1250 * time.Millisecond, 2500 * time.Millisecond}, 1, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	maxSafe, ok := MaxSafeRefresh(points)
	if !ok || maxSafe != 2500*time.Millisecond {
		t.Fatalf("characterization should observe 2.5s as error-free (cell in long state): %v %v (points %+v)", maxSafe, ok, points)
	}

	fieldErrors := func(refresh time.Duration, windows int, seed uint64) int {
		if err := dom.SetRefresh(refresh); err != nil {
			t.Fatal(err)
		}
		// Reset the cell to the state characterization left it in.
		dimm.Weak[0].LowState = false
		total := 0
		src := rng.New(seed)
		for w := 0; w < windows; w++ {
			total += ms.RunPatternTest(dom, src).BitErrors
		}
		return total
	}

	const windows = 600 // P(no toggle) = 0.98^600 ~ 5e-6
	atMax := fieldErrors(maxSafe, windows, 5)
	atDerated := fieldErrors(maxSafe/2, windows, 6)
	if atMax == 0 {
		t.Fatal("field run at the observed-safe interval never hit the VRT cell")
	}
	if atDerated != 0 {
		t.Fatalf("derated interval produced %d field errors", atDerated)
	}
	t.Logf("field run: %d error windows at observed-safe %v, 0 at derated %v",
		atMax, maxSafe, maxSafe/2)
}
