package dram

import (
	"errors"
	"fmt"
	"time"

	"uniserver/internal/ecc"
	"uniserver/internal/rng"
)

// Controller is a SECDED-protected memory controller over one refresh
// domain: it stores 64-bit words as Hamming(72,64) codewords, lets
// retention failures corrupt stored bits when the refresh interval
// exceeds a weak cell's retention time, and corrects/detects on read.
//
// It is the mechanism behind the paper's Section 6.B note that
// "classical ECC-SECDED can handle error rates up to 1e-6": at the
// relaxed refresh intervals the characterization publishes, the raw
// bit error rate stays orders of magnitude below the SECDED limit, so
// reads come back clean (or corrected) and the relaxation is free.
type Controller struct {
	dom   *Domain
	model RetentionModel
	tempC float64

	// words maps word index -> stored codeword. Only written words
	// are tracked (the simulator does not allocate 8 GB).
	words map[uint64]ecc.Codeword
	// written remembers the write time of each word so retention
	// expiry applies per word.
	written map[uint64]time.Time
	// weakByWord indexes the domain's weak cells by word.
	weakByWord map[uint64][]WeakCell

	counters ecc.Counters
}

// NewController builds a controller over a domain.
func NewController(dom *Domain, model RetentionModel, tempC float64) (*Controller, error) {
	if dom == nil {
		return nil, errors.New("dram: controller needs a domain")
	}
	c := &Controller{
		dom:        dom,
		model:      model,
		tempC:      tempC,
		words:      make(map[uint64]ecc.Codeword),
		written:    make(map[uint64]time.Time),
		weakByWord: make(map[uint64][]WeakCell),
	}
	// Index weak cells by 72-bit codeword slot. Words are stored as
	// 72-bit codewords laid out consecutively; a weak cell's bit
	// offset lands in word offset/72, codeword bit offset%72.
	var base uint64
	for _, dimm := range dom.DIMMs {
		for _, cell := range dimm.Weak {
			abs := base + cell.Offset
			word := abs / 72
			c.weakByWord[word] = append(c.weakByWord[word], WeakCell{
				Offset:       abs % 72,
				RetentionSec: cell.RetentionSec,
				TrueCell:     cell.TrueCell,
			})
		}
		base += dimm.Bits()
	}
	return c, nil
}

// Words returns the number of addressable 64-bit words.
func (c *Controller) Words() uint64 { return c.dom.Bits() / 72 }

// Write stores a 64-bit word at the given word index at time now.
func (c *Controller) Write(word uint64, data uint64, now time.Time) error {
	if word >= c.Words() {
		return fmt.Errorf("dram: word %d out of range", word)
	}
	c.words[word] = ecc.Encode(data)
	c.written[word] = now
	return nil
}

// Read fetches a word at time now, applying any retention corruption
// the current refresh interval permits, then decoding through SECDED.
// The pattern sensitivity of retention failures is resolved by the
// stored bit value versus the cell's polarity: a true cell only leaks
// when it stores 1, an anti cell when it stores 0.
func (c *Controller) Read(word uint64, now time.Time, src *rng.Source) (uint64, ecc.Result, error) {
	cw, ok := c.words[word]
	if !ok {
		return 0, ecc.OK, fmt.Errorf("dram: word %d was never written", word)
	}
	interval := c.dom.Refresh.Seconds()
	tempScale := c.model.tempScale(c.tempC)
	// A cell loses its charge when its retention (at temperature) is
	// below the refresh interval; the data has then been wrong since
	// roughly one refresh window after the write.
	if now.Sub(c.written[word]).Seconds() >= interval {
		corrupted := cw
		flips := 0
		for _, cell := range c.weakByWord[word] {
			if cell.RetentionSec*tempScale >= interval {
				continue
			}
			// Polarity gate: leak direction must oppose stored value.
			bit := codewordBit(corrupted, uint(cell.Offset))
			leaks := (cell.TrueCell && bit == 1) || (!cell.TrueCell && bit == 0)
			if leaks {
				corrupted.FlipBit(uint(cell.Offset))
				flips++
			}
		}
		_ = flips
		cw = corrupted
	}
	data, res, _ := ecc.Decode(cw)
	c.counters.Observe(res)
	if res == ecc.Corrected {
		// Scrub: write back the corrected word.
		c.words[word] = ecc.Encode(data)
		c.written[word] = now
	}
	_ = src
	return data, res, nil
}

// codewordBit reads bit pos from a codeword without mutating it.
func codewordBit(c ecc.Codeword, pos uint) uint {
	if pos < 64 {
		return uint(c.Lo>>pos) & 1
	}
	return uint(c.Hi>>(pos-64)) & 1
}

// Counters returns the controller's ECC statistics.
func (c *Controller) Counters() ecc.Counters { return c.counters }

// ScrubPass reads back every written word at time now, correcting
// single-bit upsets and counting uncorrectable words. It returns the
// number of corrected and uncorrectable words in this pass.
func (c *Controller) ScrubPass(now time.Time, src *rng.Source) (corrected, uncorrectable int) {
	for word := range c.words {
		_, res, err := c.Read(word, now, src)
		if err != nil {
			continue
		}
		switch res {
		case ecc.Corrected:
			corrected++
		case ecc.Detected:
			uncorrectable++
		}
	}
	return corrected, uncorrectable
}

// WeakWordCount returns how many addressable words contain at least
// one tracked weak cell — the population at risk under deep refresh
// relaxation.
func (c *Controller) WeakWordCount() int { return len(c.weakByWord) }
