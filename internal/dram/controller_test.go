package dram

import (
	"testing"
	"time"

	"uniserver/internal/ecc"
	"uniserver/internal/rng"
	"uniserver/internal/vfr"
)

// controllerRig builds a controller over one relaxed domain of a small
// memory system.
func controllerRig(t *testing.T, seed uint64) (*MemorySystem, *Controller) {
	t.Helper()
	cfg := Config{Channels: 2, DIMMsPerChannel: 1, DIMMBytes: 8 << 30, DeviceGb: 2, TempC: 45}
	ms, err := New(cfg, DefaultRetentionModel(), rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	ctl, err := NewController(ms.RelaxedDomains()[0], ms.Model, ms.TempC)
	if err != nil {
		t.Fatal(err)
	}
	return ms, ctl
}

func TestNewControllerValidation(t *testing.T) {
	if _, err := NewController(nil, DefaultRetentionModel(), 45); err == nil {
		t.Fatal("nil domain accepted")
	}
}

func TestControllerRoundTripAtNominal(t *testing.T) {
	_, ctl := controllerRig(t, 1)
	now := time.Unix(0, 0)
	src := rng.New(2)
	for i := uint64(0); i < 100; i++ {
		if err := ctl.Write(i, i*0x9E3779B97F4A7C15, now); err != nil {
			t.Fatal(err)
		}
	}
	later := now.Add(time.Hour)
	for i := uint64(0); i < 100; i++ {
		data, res, err := ctl.Read(i, later, src)
		if err != nil {
			t.Fatal(err)
		}
		if res != ecc.OK {
			t.Fatalf("word %d: result %v at nominal refresh", i, res)
		}
		if data != i*0x9E3779B97F4A7C15 {
			t.Fatalf("word %d: data corrupted", i)
		}
	}
	if k := ctl.Counters(); k.Words != 100 || k.Corrected != 0 || k.Uncorrectable != 0 {
		t.Fatalf("counters = %+v", k)
	}
}

func TestControllerBoundsChecks(t *testing.T) {
	_, ctl := controllerRig(t, 3)
	now := time.Unix(0, 0)
	if err := ctl.Write(ctl.Words(), 1, now); err == nil {
		t.Fatal("out-of-range write accepted")
	}
	if _, _, err := ctl.Read(5, now, rng.New(1)); err == nil {
		t.Fatal("read of never-written word accepted")
	}
}

// TestControllerCorrectsRetentionUpsets plants data directly on weak
// words at an extreme refresh interval and verifies SECDED corrects
// the single-bit upsets — the mechanism behind the paper's "SECDED can
// handle rates up to 1e-6" argument.
func TestControllerCorrectsRetentionUpsets(t *testing.T) {
	ms, ctl := controllerRig(t, 5)
	dom := ms.RelaxedDomains()[0]
	// Find weak words with exactly one weak cell below 8s retention at
	// 45C so exactly one bit can flip.
	var singles []uint64
	for word, cells := range ctl.weakByWord {
		if len(cells) == 1 && cells[0].RetentionSec < 8 {
			singles = append(singles, word)
		}
		if len(singles) >= 50 {
			break
		}
	}
	if len(singles) == 0 {
		t.Skip("no single-weak-cell words in this fabrication")
	}
	if err := dom.SetRefresh(8 * time.Second); err != nil {
		t.Fatal(err)
	}
	now := time.Unix(0, 0)
	src := rng.New(7)
	corrected := 0
	for _, w := range singles {
		// Store the leak-sensitive pattern: all ones flips true cells,
		// all zeros flips anti cells; write both across words.
		data := uint64(0xFFFFFFFFFFFFFFFF)
		if !ctl.weakByWord[w][0].TrueCell {
			data = 0
		}
		if err := ctl.Write(w, data, now); err != nil {
			t.Fatal(err)
		}
		got, res, err := ctl.Read(w, now.Add(10*time.Second), src)
		if err != nil {
			t.Fatal(err)
		}
		if got != data {
			t.Fatalf("word %d: data lost despite SECDED (res=%v)", w, res)
		}
		if res == ecc.Corrected {
			corrected++
		}
	}
	if corrected == 0 {
		t.Fatal("no retention upset was ever corrected; the test exercised nothing")
	}
	// Scrubbed words must read clean immediately afterwards.
	for _, w := range singles {
		_, res, err := ctl.Read(w, now.Add(10*time.Second).Add(time.Millisecond), src)
		if err != nil {
			t.Fatal(err)
		}
		if res == ecc.Detected {
			t.Fatalf("word %d uncorrectable after scrub", w)
		}
	}
}

func TestControllerDataIntactBeforeRefreshWindow(t *testing.T) {
	ms, ctl := controllerRig(t, 9)
	dom := ms.RelaxedDomains()[0]
	if err := dom.SetRefresh(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	now := time.Unix(0, 0)
	if err := ctl.Write(42, 0xDEAD, now); err != nil {
		t.Fatal(err)
	}
	// Reading within the refresh window sees no corruption.
	data, res, err := ctl.Read(42, now.Add(time.Second), rng.New(1))
	if err != nil || res != ecc.OK || data != 0xDEAD {
		t.Fatalf("read within window: %v %v %v", data, res, err)
	}
}

func TestScrubPassCountsUpsets(t *testing.T) {
	ms, ctl := controllerRig(t, 11)
	dom := ms.RelaxedDomains()[0]
	if err := dom.SetRefresh(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	now := time.Unix(0, 0)
	// Write every weak word with the most leak-sensitive pattern.
	n := 0
	for word, cells := range ctl.weakByWord {
		data := uint64(0)
		if cells[0].TrueCell {
			data = ^uint64(0)
		}
		if err := ctl.Write(word, data, now); err != nil {
			t.Fatal(err)
		}
		n++
		if n >= 2000 {
			break
		}
	}
	corrected, _ := ctl.ScrubPass(now.Add(12*time.Second), rng.New(3))
	if corrected == 0 {
		t.Fatal("scrub at 10s refresh over weak words corrected nothing")
	}
	if ctl.WeakWordCount() == 0 {
		t.Fatal("controller lost its weak-word index")
	}
	// Restore nominal refresh for hygiene.
	if err := dom.SetRefresh(vfr.NominalRefresh); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkControllerRead(b *testing.B) {
	cfg := Config{Channels: 2, DIMMsPerChannel: 1, DIMMBytes: 1 << 30, DeviceGb: 2, TempC: 45}
	ms, err := New(cfg, DefaultRetentionModel(), rng.New(1))
	if err != nil {
		b.Fatal(err)
	}
	ctl, err := NewController(ms.RelaxedDomains()[0], ms.Model, ms.TempC)
	if err != nil {
		b.Fatal(err)
	}
	now := time.Unix(0, 0)
	if err := ctl.Write(1, 0xABCD, now); err != nil {
		b.Fatal(err)
	}
	src := rng.New(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := ctl.Read(1, now.Add(time.Second), src); err != nil {
			b.Fatal(err)
		}
	}
}
