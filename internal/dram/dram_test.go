package dram

import (
	"math"
	"testing"
	"time"

	"uniserver/internal/rng"
	"uniserver/internal/vfr"
)

func TestRetentionModelCalibration(t *testing.T) {
	m := DefaultRetentionModel()
	// Paper anchor: BER ~1e-9 at 5 s in an air-conditioned room.
	p5 := m.FailProb(5*time.Second, 45)
	if p5 < 0.5e-9 || p5 > 2e-9 {
		t.Errorf("P(fail @5s) = %v, want ~1e-9", p5)
	}
	// Paper anchor: zero errors at 1.5 s in 8 GB => expected bit
	// failures in 6.4e10 bits must be well below 1.
	p15 := m.FailProb(1500*time.Millisecond, 45)
	if exp := p15 * 64e9; exp > 0.5 {
		t.Errorf("expected failures at 1.5s in 8GB = %v, want < 0.5", exp)
	}
	// Nominal 64 ms must be absurdly safe.
	if p := m.FailProb(vfr.NominalRefresh, 45); p*64e9 > 1e-6 {
		t.Errorf("nominal refresh fail mass = %v, want ~0", p*64e9)
	}
}

func TestRetentionTemperatureDependence(t *testing.T) {
	m := DefaultRetentionModel()
	cool := m.FailProb(5*time.Second, 45)
	hot := m.FailProb(5*time.Second, 65)
	if hot <= cool {
		t.Fatalf("failure probability must rise with temperature: %v <= %v", hot, cool)
	}
	// +10C halves retention: failing at 5s@55C ~ failing at 10s@45C.
	a := m.FailProb(5*time.Second, 55)
	b := m.FailProb(10*time.Second, 45)
	if math.Abs(a-b)/b > 1e-9 {
		t.Fatalf("halving law violated: %v vs %v", a, b)
	}
}

func TestFailProbMonotoneInInterval(t *testing.T) {
	m := DefaultRetentionModel()
	prev := 0.0
	for _, iv := range []time.Duration{64 * time.Millisecond, 500 * time.Millisecond,
		time.Second, 2 * time.Second, 5 * time.Second, 20 * time.Second} {
		p := m.FailProb(iv, 45)
		if p < prev {
			t.Fatalf("FailProb not monotone at %v", iv)
		}
		prev = p
	}
	if m.FailProb(0, 45) != 0 {
		t.Fatal("zero interval should have zero failure probability")
	}
}

func TestSampleWeakRetentionBelowHorizon(t *testing.T) {
	m := DefaultRetentionModel()
	src := rng.New(3)
	for i := 0; i < 2000; i++ {
		r := m.SampleWeakRetention(WeakCellHorizon, src)
		if r <= 0 || r >= WeakCellHorizon.Seconds() {
			t.Fatalf("weak retention %v outside (0, %v)", r, WeakCellHorizon.Seconds())
		}
	}
}

func TestNewDIMMWeakPopulation(t *testing.T) {
	m := DefaultRetentionModel()
	d := NewDIMM(8<<30, 2, m, rng.New(7))
	if d.Bits() != 64<<30 {
		t.Fatalf("Bits = %d", d.Bits())
	}
	// Expected weak cells: 64e9 * P(<30s). Should be in the thousands,
	// not zero and not millions.
	if len(d.Weak) < 1000 || len(d.Weak) > 1000000 {
		t.Fatalf("weak cell count = %d, implausible", len(d.Weak))
	}
	for _, c := range d.Weak[:10] {
		if c.Offset >= d.Bits() {
			t.Fatalf("weak cell offset %d out of range", c.Offset)
		}
	}
}

func newTestSystem(t *testing.T, seed uint64) *MemorySystem {
	t.Helper()
	cfg := DefaultConfig()
	ms, err := New(cfg, DefaultRetentionModel(), rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return ms
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}, DefaultRetentionModel(), rng.New(1)); err == nil {
		t.Fatal("invalid config should error")
	}
}

func TestDomainLayout(t *testing.T) {
	ms := newTestSystem(t, 11)
	if got := len(ms.Domains); got != 4 {
		t.Fatalf("domains = %d, want 4", got)
	}
	rel := ms.ReliableDomain()
	if rel == nil || rel.Name != "channel0" {
		t.Fatalf("reliable domain = %+v", rel)
	}
	if got := len(ms.RelaxedDomains()); got != 3 {
		t.Fatalf("relaxed domains = %d, want 3", got)
	}
	if ms.TotalBits() != 4*2*(8<<30)*8 {
		t.Fatalf("TotalBits = %d", ms.TotalBits())
	}
}

func TestReliableDomainRefusesRelaxation(t *testing.T) {
	ms := newTestSystem(t, 13)
	rel := ms.ReliableDomain()
	if err := rel.SetRefresh(time.Second); err == nil {
		t.Fatal("reliable domain accepted relaxed refresh")
	}
	if err := rel.SetRefresh(32 * time.Millisecond); err != nil {
		t.Fatalf("reliable domain refused tightened refresh: %v", err)
	}
	if err := rel.SetRefresh(0); err == nil {
		t.Fatal("zero refresh accepted")
	}
}

func TestPatternTestAtNominalIsClean(t *testing.T) {
	ms := newTestSystem(t, 17)
	src := rng.New(1)
	for _, dom := range ms.Domains {
		res := ms.RunPatternTest(dom, src)
		if res.BitErrors != 0 {
			t.Fatalf("errors at nominal refresh on %s: %d", dom.Name, res.BitErrors)
		}
	}
}

// TestSection6BRefreshSweep reproduces the paper's DRAM result: no
// errors up to 1.5 s, and a cumulative BER of order 1e-9 at 5 s, which
// is within commercial DRAM targets and handled by SECDED.
func TestSection6BRefreshSweep(t *testing.T) {
	ms := newTestSystem(t, 20)
	intervals := []time.Duration{
		64 * time.Millisecond, 256 * time.Millisecond, 512 * time.Millisecond,
		time.Second, 1500 * time.Millisecond, 3 * time.Second, 5 * time.Second,
	}
	points, err := ms.CharacterizeRefresh(intervals, 3, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	byRefresh := map[time.Duration]SweepPoint{}
	for _, p := range points {
		byRefresh[p.Refresh] = p
	}
	for _, iv := range intervals[:5] { // up to and including 1.5 s
		if byRefresh[iv].BitErrors != 0 {
			t.Errorf("errors at %v: %d, paper saw none through 1.5s", iv, byRefresh[iv].BitErrors)
		}
	}
	p5 := byRefresh[5*time.Second]
	if p5.CumulativeBER > 1e-8 {
		t.Errorf("BER at 5s = %v, want order 1e-9", p5.CumulativeBER)
	}
	if !p5.SECDEDSafe {
		t.Error("5s BER should be within SECDED capability (1e-6)")
	}
	safe, ok := MaxSafeRefresh(points)
	if !ok || safe < 1500*time.Millisecond {
		t.Errorf("MaxSafeRefresh = %v, want >= 1.5s", safe)
	}
	// Domains restored to nominal after the campaign.
	for _, dom := range ms.RelaxedDomains() {
		if dom.Refresh != vfr.NominalRefresh {
			t.Errorf("domain %s left at %v", dom.Name, dom.Refresh)
		}
	}
}

func TestCharacterizeRefreshValidation(t *testing.T) {
	ms := newTestSystem(t, 23)
	if _, err := ms.CharacterizeRefresh([]time.Duration{time.Second}, 0, rng.New(1)); err == nil {
		t.Fatal("zero passes should error")
	}
}

func TestMaxSafeRefreshEmpty(t *testing.T) {
	if _, ok := MaxSafeRefresh(nil); ok {
		t.Fatal("empty sweep should report not found")
	}
	if _, ok := MaxSafeRefresh([]SweepPoint{{Refresh: time.Second, BitErrors: 5}}); ok {
		t.Fatal("all-failing sweep should report not found")
	}
}

func TestAllocatorPlacement(t *testing.T) {
	ms := newTestSystem(t, 29)
	al := NewAllocator(ms)
	k, err := al.Alloc("kernel", CriticalityKernel, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if !k.Domain.Reliable {
		t.Fatal("kernel allocation landed on relaxed domain")
	}
	h, err := al.Alloc("hypervisor", CriticalityHypervisor, 500)
	if err != nil {
		t.Fatal(err)
	}
	if !h.Domain.Reliable {
		t.Fatal("hypervisor allocation landed on relaxed domain")
	}
	v, err := al.Alloc("vm1", CriticalityNormal, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if v.Domain.Reliable {
		t.Fatal("normal allocation landed on reliable domain while relaxed space exists")
	}
}

func TestAllocatorRoundRobin(t *testing.T) {
	ms := newTestSystem(t, 31)
	al := NewAllocator(ms)
	domains := map[string]bool{}
	for i := 0; i < 6; i++ {
		a, err := al.Alloc("vm", CriticalityNormal, 10)
		if err != nil {
			t.Fatal(err)
		}
		domains[a.Domain.Name] = true
	}
	if len(domains) < 3 {
		t.Fatalf("round robin used only %d domains", len(domains))
	}
}

func TestAllocatorExhaustion(t *testing.T) {
	cfg := Config{Channels: 2, DIMMsPerChannel: 1, DIMMBytes: 1 << 20, DeviceGb: 2, TempC: 45}
	ms, err := New(cfg, DefaultRetentionModel(), rng.New(37))
	if err != nil {
		t.Fatal(err)
	}
	al := NewAllocator(ms)
	// 1 MiB per domain = 256 pages.
	if _, err := al.Alloc("big", CriticalityNormal, 257); err == nil {
		t.Fatal("overcommit should fail")
	}
	if _, err := al.Alloc("k", CriticalityKernel, 256); err != nil {
		t.Fatal(err)
	}
	if _, err := al.Alloc("k2", CriticalityKernel, 1); err == nil {
		t.Fatal("reliable domain exhaustion should fail")
	}
}

func TestAllocatorFreeAndOwners(t *testing.T) {
	ms := newTestSystem(t, 41)
	al := NewAllocator(ms)
	mustAlloc := func(owner string, c Criticality, pages uint64) {
		t.Helper()
		if _, err := al.Alloc(owner, c, pages); err != nil {
			t.Fatal(err)
		}
	}
	mustAlloc("kernel", CriticalityKernel, 10)
	mustAlloc("vm1", CriticalityNormal, 20)
	mustAlloc("vm1", CriticalityNormal, 20)
	owners := al.Owners()
	if len(owners) != 2 || owners[0] != "kernel" || owners[1] != "vm1" {
		t.Fatalf("Owners = %v", owners)
	}
	if n := len(al.AllocationsOf("vm1")); n != 2 {
		t.Fatalf("vm1 allocations = %d", n)
	}
	rel := ms.ReliableDomain()
	if al.UsedBytes(rel) != 10*PageSize {
		t.Fatalf("reliable used = %d", al.UsedBytes(rel))
	}
	if removed := al.Free("vm1"); removed != 2 {
		t.Fatalf("Free removed %d", removed)
	}
	if len(al.Owners()) != 1 {
		t.Fatal("vm1 not removed")
	}
	if al.Free("ghost") != 0 {
		t.Fatal("freeing unknown owner should remove nothing")
	}
}

func TestAllocValidation(t *testing.T) {
	ms := newTestSystem(t, 43)
	al := NewAllocator(ms)
	if _, err := al.Alloc("x", CriticalityNormal, 0); err == nil {
		t.Fatal("zero pages should error")
	}
}

// TestKernelIsolationPreventsErrors is the core Section 6.B safety
// argument: with the kernel on the reliable domain, relaxing every
// other domain to 5 s leaves the kernel unharmed, while the same
// kernel placed on a relaxed domain accumulates expected errors.
func TestKernelIsolationPreventsErrors(t *testing.T) {
	ms := newTestSystem(t, 47)
	al := NewAllocator(ms)
	if _, err := al.Alloc("kernel", CriticalityKernel, 1<<16); err != nil { // 256 MiB
		t.Fatal(err)
	}
	if _, err := al.Alloc("vm1", CriticalityNormal, 1<<18); err != nil { // 1 GiB
		t.Fatal(err)
	}
	for _, dom := range ms.RelaxedDomains() {
		if err := dom.SetRefresh(5 * time.Second); err != nil {
			t.Fatal(err)
		}
	}
	var kernelExp, vmExp float64
	for _, e := range al.Exposure() {
		switch e.Owner {
		case "kernel":
			kernelExp += e.ExpectedErrors
		case "vm1":
			vmExp += e.ExpectedErrors
		}
	}
	if kernelExp > 1e-9 {
		t.Errorf("kernel on reliable domain has exposure %v, want ~0", kernelExp)
	}
	if vmExp <= kernelExp {
		t.Errorf("vm exposure (%v) should exceed kernel exposure (%v)", vmExp, kernelExp)
	}
	// Sampled window should never strike the kernel.
	src := rng.New(5)
	for i := 0; i < 50; i++ {
		hits := al.SimulateWindow(src)
		if hits["kernel"] != 0 {
			t.Fatalf("kernel struck by retention error while on reliable domain")
		}
	}
}

func TestCriticalityString(t *testing.T) {
	if CriticalityKernel.String() != "kernel" ||
		CriticalityHypervisor.String() != "hypervisor" ||
		CriticalityNormal.String() != "normal" {
		t.Fatal("criticality names wrong")
	}
	if Criticality(9).String() == "" {
		t.Fatal("unknown criticality should still render")
	}
}

func BenchmarkPatternTest(b *testing.B) {
	cfg := DefaultConfig()
	ms, err := New(cfg, DefaultRetentionModel(), rng.New(1))
	if err != nil {
		b.Fatal(err)
	}
	dom := ms.RelaxedDomains()[0]
	if err := dom.SetRefresh(5 * time.Second); err != nil {
		b.Fatal(err)
	}
	src := rng.New(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ms.RunPatternTest(dom, src)
	}
}
