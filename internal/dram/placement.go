package dram

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"uniserver/internal/rng"
)

// PageSize is the allocation granularity (4 KiB, as in the paper's
// Linux testbed).
const PageSize = 4096

// Criticality labels how an allocation tolerates bit errors, driving
// its domain placement.
type Criticality int

const (
	// CriticalityKernel marks kernel code and stack data: a bit error
	// here can crash the whole system, so it must live on a reliable
	// domain (the paper's isolation experiment).
	CriticalityKernel Criticality = iota
	// CriticalityHypervisor marks hypervisor state, also placed on the
	// reliable domain per Section 6.C ("placing the whole Hypervisor
	// in a reliable-memory domain can help ensure non-disruptive
	// operation with low cost").
	CriticalityHypervisor
	// CriticalityNormal marks guest/application data that can ride on
	// relaxed-refresh domains.
	CriticalityNormal
)

// String implements fmt.Stringer.
func (c Criticality) String() string {
	switch c {
	case CriticalityKernel:
		return "kernel"
	case CriticalityHypervisor:
		return "hypervisor"
	case CriticalityNormal:
		return "normal"
	default:
		return fmt.Sprintf("Criticality(%d)", int(c))
	}
}

// Allocation is a contiguous page range placed on one domain.
type Allocation struct {
	Owner       string
	Criticality Criticality
	Pages       uint64
	Domain      *Domain
}

// Bytes returns the allocation size in bytes.
func (a Allocation) Bytes() uint64 { return a.Pages * PageSize }

// Allocator places page allocations on refresh domains according to
// criticality: kernel and hypervisor allocations go to the reliable
// domain, everything else round-robins over relaxed domains.
type Allocator struct {
	ms          *MemorySystem
	allocations []Allocation
	used        map[*Domain]uint64 // bytes allocated per domain
	nextRelaxed int
}

// NewAllocator returns an allocator over the memory system.
func NewAllocator(ms *MemorySystem) *Allocator {
	return &Allocator{ms: ms, used: make(map[*Domain]uint64)}
}

// CloneFor returns a deep copy of the allocator rebound to ms, which
// must be a Clone of the allocator's own memory system (same domain
// count in the same order): every allocation and per-domain usage
// entry is remapped positionally onto ms's domains, and the round-
// robin cursor carries over, so the copy places future allocations
// exactly as the original would have.
func (al *Allocator) CloneFor(ms *MemorySystem) (*Allocator, error) {
	if len(ms.Domains) != len(al.ms.Domains) {
		return nil, fmt.Errorf("dram: CloneFor target has %d domains, allocator's system has %d",
			len(ms.Domains), len(al.ms.Domains))
	}
	remap := make(map[*Domain]*Domain, len(al.ms.Domains))
	for i, d := range al.ms.Domains {
		remap[d] = ms.Domains[i]
	}
	out := &Allocator{
		ms:          ms,
		used:        make(map[*Domain]uint64, len(al.used)),
		nextRelaxed: al.nextRelaxed,
	}
	out.allocations = make([]Allocation, len(al.allocations))
	for i, a := range al.allocations {
		nd, ok := remap[a.Domain]
		if !ok {
			return nil, fmt.Errorf("dram: allocation %q points outside the allocator's memory system", a.Owner)
		}
		a.Domain = nd
		out.allocations[i] = a
	}
	for d, b := range al.used {
		nd, ok := remap[d]
		if !ok {
			return nil, errors.New("dram: usage entry points outside the allocator's memory system")
		}
		out.used[nd] = b
	}
	return out, nil
}

// ErrOutOfMemory is returned when no domain can host an allocation.
var ErrOutOfMemory = errors.New("dram: out of memory")

// Alloc places pages for the owner. Critical allocations require a
// reliable domain; an error is returned if none exists or capacity is
// exhausted.
func (al *Allocator) Alloc(owner string, crit Criticality, pages uint64) (Allocation, error) {
	if pages == 0 {
		return Allocation{}, errors.New("dram: zero-page allocation")
	}
	var candidates []*Domain
	if crit == CriticalityKernel || crit == CriticalityHypervisor {
		rel := al.ms.ReliableDomain()
		if rel == nil {
			return Allocation{}, errors.New("dram: no reliable domain for critical allocation")
		}
		candidates = []*Domain{rel}
	} else {
		candidates = al.ms.RelaxedDomains()
		if len(candidates) == 0 {
			candidates = al.ms.Domains
		}
		// Rotate the starting candidate for round-robin spreading.
		if len(candidates) > 1 {
			start := al.nextRelaxed % len(candidates)
			candidates = append(candidates[start:], candidates[:start]...)
			al.nextRelaxed++
		}
	}
	need := pages * PageSize
	for _, dom := range candidates {
		capacity := dom.Bits() / 8
		if al.used[dom]+need <= capacity {
			al.used[dom] += need
			a := Allocation{Owner: owner, Criticality: crit, Pages: pages, Domain: dom}
			al.allocations = append(al.allocations, a)
			return a, nil
		}
	}
	return Allocation{}, fmt.Errorf("%w: %d pages for %q", ErrOutOfMemory, pages, owner)
}

// Free releases every allocation of the owner and returns the number
// of allocations removed.
func (al *Allocator) Free(owner string) int {
	kept := al.allocations[:0]
	removed := 0
	for _, a := range al.allocations {
		if a.Owner == owner {
			al.used[a.Domain] -= a.Bytes()
			removed++
			continue
		}
		kept = append(kept, a)
	}
	al.allocations = kept
	return removed
}

// UsedBytes returns the bytes allocated on the domain.
func (al *Allocator) UsedBytes(dom *Domain) uint64 { return al.used[dom] }

// Owners returns the distinct owners with live allocations, sorted.
func (al *Allocator) Owners() []string {
	set := map[string]bool{}
	for _, a := range al.allocations {
		set[a.Owner] = true
	}
	out := make([]string, 0, len(set))
	for o := range set {
		out = append(out, o)
	}
	sort.Strings(out)
	return out
}

// AllocationsOf returns the owner's allocations.
func (al *Allocator) AllocationsOf(owner string) []Allocation {
	var out []Allocation
	for _, a := range al.allocations {
		if a.Owner == owner {
			out = append(out, a)
		}
	}
	return out
}

// ExposureReport quantifies how a refresh-relaxation campaign would
// impact each owner: the expected bit errors per refresh window
// landing in the owner's pages.
type ExposureReport struct {
	Owner          string
	Criticality    Criticality
	Bytes          uint64
	Domain         string
	Refresh        time.Duration
	ExpectedErrors float64
}

// Exposure computes per-allocation expected retention errors at the
// owners' current domain refresh intervals. It is how the hypervisor
// reasons about whether a placement is safe before committing to a
// relaxed refresh interval.
func (al *Allocator) Exposure() []ExposureReport {
	var out []ExposureReport
	for _, a := range al.allocations {
		p := al.ms.Model.FailProb(a.Domain.Refresh, al.ms.TempC) / 2 // pattern exposure
		bits := float64(a.Bytes() * 8)
		out = append(out, ExposureReport{
			Owner:          a.Owner,
			Criticality:    a.Criticality,
			Bytes:          a.Bytes(),
			Domain:         a.Domain.Name,
			Refresh:        a.Domain.Refresh,
			ExpectedErrors: bits * p,
		})
	}
	return out
}

// SimulateWindow samples the retention errors striking each owner over
// one refresh window at current settings, returning errors per owner.
// Owners on reliable domains see zero errors at nominal refresh by
// construction; a kernel owner placed on a relaxed domain is exactly
// the crash risk the paper's domain isolation removes.
func (al *Allocator) SimulateWindow(src *rng.Source) map[string]int {
	out := make(map[string]int)
	al.SimulateWindowInto(src, out)
	return out
}

// SimulateWindowInto is SimulateWindow writing into a caller-owned map
// (not cleared first), so a per-window stepper can reuse one scratch
// map for the whole deployment instead of allocating every window. The
// per-bit failure probability is a function of (domain refresh, system
// temperature) only, so it is evaluated once per domain rather than
// once per allocation; the Binomial draws consume the stream in the
// same allocation order with the same parameters as ever.
func (al *Allocator) SimulateWindowInto(src *rng.Source, out map[string]int) {
	var (
		pDom  [8]*Domain
		pVal  [8]float64
		nDoms int
	)
	probFor := func(dom *Domain) float64 {
		for i := 0; i < nDoms; i++ {
			if pDom[i] == dom {
				return pVal[i]
			}
		}
		p := al.ms.Model.FailProb(dom.Refresh, al.ms.TempC) / 2
		if nDoms < len(pDom) {
			pDom[nDoms], pVal[nDoms] = dom, p
			nDoms++
		}
		return p
	}
	for _, a := range al.allocations {
		n := src.Binomial(int(a.Bytes()*8), probFor(a.Domain))
		if n > 0 {
			out[a.Owner] += n
		}
	}
}
