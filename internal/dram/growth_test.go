package dram

import (
	"testing"

	"uniserver/internal/rng"
)

// TestGrowAppendsFabricationLikeCells: cells grown in the field draw
// from the same distributions fabrication does — in-range offsets,
// weak-tail retention, a VRT minority — and the private VRT index must
// keep addressing real VRT cells after the append.
func TestGrowAppendsFabricationLikeCells(t *testing.T) {
	m := DefaultRetentionModel()
	d := NewDIMM(8<<30, 2, m, rng.New(7))
	before, vrtBefore := len(d.Weak), len(d.vrt)
	d.Grow(500, m, rng.New(9))
	if got := len(d.Weak) - before; got != 500 {
		t.Fatalf("grew %d cells, want 500", got)
	}
	for _, c := range d.Weak[before:] {
		if c.Offset >= d.Bits() {
			t.Fatalf("grown cell offset %d out of range", c.Offset)
		}
		if c.RetentionSec <= 0 || c.RetentionSec >= WeakCellHorizon.Seconds() {
			t.Fatalf("grown cell retention %v outside the weak tail", c.RetentionSec)
		}
	}
	if len(d.vrt) == vrtBefore {
		t.Fatal("500 grown cells produced no VRT members at a 10% fraction")
	}
	for _, i := range d.vrt {
		if i < 0 || i >= len(d.Weak) {
			t.Fatalf("vrt index %d out of range after growth", i)
		}
		if d.Weak[i].AltRetentionSec == 0 {
			t.Fatalf("vrt index %d addresses a non-VRT cell", i)
		}
	}
}

// TestGrowNonPositiveIsNoOp: zero or negative growth touches neither
// the population nor the source stream — the stream-silence property
// the lifetime engine's determinism contract leans on.
func TestGrowNonPositiveIsNoOp(t *testing.T) {
	m := DefaultRetentionModel()
	d := NewDIMM(8<<30, 2, m, rng.New(7))
	before := len(d.Weak)
	src := rng.New(5)
	d.Grow(0, m, src)
	d.Grow(-3, m, src)
	if len(d.Weak) != before {
		t.Fatalf("no-op growth changed the population: %d -> %d", before, len(d.Weak))
	}
	if got, want := src.Uint64(), rng.New(5).Uint64(); got != want {
		t.Fatal("no-op growth consumed the source stream")
	}
}

// TestGrowWeakCellsDeterministicAndRateScaled: the domain-level grower
// is a pure function of (state, days, rate, stream), a zero rate is
// stream-silent, and the expected count scales with rate × days.
func TestGrowWeakCellsDeterministicAndRateScaled(t *testing.T) {
	m := DefaultRetentionModel()
	grow := func(days int, rate float64, seed uint64) *Domain {
		dom := &Domain{Name: "ch", DIMMs: []*DIMM{
			NewDIMM(8<<30, 2, m, rng.New(21)),
			NewDIMM(8<<30, 2, m, rng.New(22)),
		}}
		GrowWeakCells(dom, days, rate, m, rng.New(seed))
		return dom
	}
	count := func(dom *Domain) int {
		n := 0
		for _, d := range dom.DIMMs {
			n += len(d.Weak)
		}
		return n
	}

	a, b := grow(10, 50, 5), grow(10, 50, 5)
	if count(a) != count(b) {
		t.Fatalf("same seed grew different counts: %d vs %d", count(a), count(b))
	}
	for di := range a.DIMMs {
		for ci := range a.DIMMs[di].Weak {
			if a.DIMMs[di].Weak[ci] != b.DIMMs[di].Weak[ci] {
				t.Fatalf("same seed grew different cells at DIMM %d cell %d", di, ci)
			}
		}
	}

	baseline := count(grow(0, 50, 5))
	src := rng.New(5)
	zero := &Domain{Name: "ch", DIMMs: []*DIMM{NewDIMM(8<<30, 2, m, rng.New(21))}}
	GrowWeakCells(zero, 10, 0, m, src)
	if got, want := src.Uint64(), rng.New(5).Uint64(); got != want {
		t.Fatal("zero-rate growth consumed the source stream")
	}

	// 2 DIMMs × 50 cells/day × 10 days = 1000 expected new cells;
	// binomial noise is ~±32, so a wide band is safe.
	grown := count(a) - baseline
	if grown < 800 || grown > 1200 {
		t.Fatalf("10 days at 50 cells/DIMM/day grew %d cells, want ~1000", grown)
	}
}
