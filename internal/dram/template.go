package dram

import (
	"errors"
	"fmt"
	"time"
)

// FlatMemory is a compiled, pointer-free image of a MemorySystem: the
// weak-cell and VRT-index populations of every DIMM concatenated into
// two slabs, with per-DIMM extents recorded as index ranges. It is
// built once per restore template (Flatten) and stamped into reusable
// arena memory systems (StampInto) with two bulk copies instead of a
// per-DIMM allocation walk. A FlatMemory is immutable after Flatten
// and safe for concurrent StampInto calls from many workers.
type FlatMemory struct {
	model   RetentionModel
	tempC   float64
	domains []flatDomain
	dimms   []flatDIMM
	cells   []WeakCell // all DIMMs' Weak populations, concatenated
	vrt     []int      // all DIMMs' VRT indices, concatenated
}

type flatDomain struct {
	name           string
	refresh        time.Duration
	reliable       bool
	dimmLo, dimmHi int // extent in FlatMemory.dimms
}

type flatDIMM struct {
	capacityBytes  uint64
	deviceGb       int
	weakLo, weakHi int // extent in FlatMemory.cells
	vrtLo, vrtHi   int // extent in FlatMemory.vrt
}

// Flatten compiles the memory system into its pointer-free template
// image. The receiver must not be mutated concurrently.
func (ms *MemorySystem) Flatten() *FlatMemory {
	var nDIMMs, nCells, nVRT int
	for _, dom := range ms.Domains {
		nDIMMs += len(dom.DIMMs)
		for _, d := range dom.DIMMs {
			nCells += len(d.Weak)
			nVRT += len(d.vrt)
		}
	}
	f := &FlatMemory{
		model:   ms.Model,
		tempC:   ms.TempC,
		domains: make([]flatDomain, 0, len(ms.Domains)),
		dimms:   make([]flatDIMM, 0, nDIMMs),
		cells:   make([]WeakCell, 0, nCells),
		vrt:     make([]int, 0, nVRT),
	}
	for _, dom := range ms.Domains {
		fd := flatDomain{
			name:     dom.Name,
			refresh:  dom.Refresh,
			reliable: dom.Reliable,
			dimmLo:   len(f.dimms),
		}
		for _, d := range dom.DIMMs {
			f.dimms = append(f.dimms, flatDIMM{
				capacityBytes: d.CapacityBytes,
				deviceGb:      d.DeviceGb,
				weakLo:        len(f.cells),
				weakHi:        len(f.cells) + len(d.Weak),
				vrtLo:         len(f.vrt),
				vrtHi:         len(f.vrt) + len(d.vrt),
			})
			f.cells = append(f.cells, d.Weak...)
			f.vrt = append(f.vrt, d.vrt...)
		}
		fd.dimmHi = len(f.dimms)
		f.domains = append(f.domains, fd)
	}
	return f
}

// StampInto overwrites ms with the template image, reusing ms's
// Domain and DIMM objects and their slice storage when the shape
// matches (it always does when an arena is re-stamped from templates
// of the same spec). Domain pointer identity is preserved across
// same-shape stamps, which lets an Allocator stamped alongside keep
// its per-domain usage map keys stable.
func (f *FlatMemory) StampInto(ms *MemorySystem) {
	ms.Model = f.model
	ms.TempC = f.tempC
	if !f.shapeMatches(ms) {
		f.rebuild(ms)
		return
	}
	for di, fd := range f.domains {
		dom := ms.Domains[di]
		dom.Name = fd.name
		dom.Refresh = fd.refresh
		dom.Reliable = fd.reliable
		for i, fdim := range f.dimms[fd.dimmLo:fd.dimmHi] {
			d := dom.DIMMs[i]
			d.CapacityBytes = fdim.capacityBytes
			d.DeviceGb = fdim.deviceGb
			d.Weak = append(d.Weak[:0], f.cells[fdim.weakLo:fdim.weakHi]...)
			d.vrt = append(d.vrt[:0], f.vrt[fdim.vrtLo:fdim.vrtHi]...)
		}
	}
}

func (f *FlatMemory) shapeMatches(ms *MemorySystem) bool {
	if len(ms.Domains) != len(f.domains) {
		return false
	}
	for di, fd := range f.domains {
		dom := ms.Domains[di]
		if dom == nil || len(dom.DIMMs) != fd.dimmHi-fd.dimmLo {
			return false
		}
		for _, d := range dom.DIMMs {
			if d == nil {
				return false
			}
		}
	}
	return true
}

// rebuild replaces ms's domain graph wholesale — the cold path taken
// the first time an arena is stamped or when templates of different
// memory shapes share an arena.
func (f *FlatMemory) rebuild(ms *MemorySystem) {
	ms.Domains = make([]*Domain, len(f.domains))
	for di, fd := range f.domains {
		dom := &Domain{
			Name:     fd.name,
			Refresh:  fd.refresh,
			Reliable: fd.reliable,
			DIMMs:    make([]*DIMM, fd.dimmHi-fd.dimmLo),
		}
		for i, fdim := range f.dimms[fd.dimmLo:fd.dimmHi] {
			dom.DIMMs[i] = &DIMM{
				CapacityBytes: fdim.capacityBytes,
				DeviceGb:      fdim.deviceGb,
				Weak:          append([]WeakCell(nil), f.cells[fdim.weakLo:fdim.weakHi]...),
				vrt:           append([]int(nil), f.vrt[fdim.vrtLo:fdim.vrtHi]...),
			}
		}
		ms.Domains[di] = dom
	}
}

// StampFrom overwrites al with a copy of src rebound to ms, reusing
// al's allocation slice and usage-map storage. ms must be shaped like
// src's memory system (same domain count and order); allocations and
// usage entries are remapped positionally, exactly as CloneFor does.
func (al *Allocator) StampFrom(src *Allocator, ms *MemorySystem) error {
	if len(ms.Domains) != len(src.ms.Domains) {
		return fmt.Errorf("dram: StampFrom target has %d domains, source's system has %d",
			len(ms.Domains), len(src.ms.Domains))
	}
	al.ms = ms
	al.nextRelaxed = src.nextRelaxed
	al.allocations = append(al.allocations[:0], src.allocations...)
	for i := range al.allocations {
		nd := remapDomain(al.allocations[i].Domain, src.ms, ms)
		if nd == nil {
			return fmt.Errorf("dram: allocation %q points outside the allocator's memory system",
				al.allocations[i].Owner)
		}
		al.allocations[i].Domain = nd
	}
	if al.used == nil {
		al.used = make(map[*Domain]uint64, len(src.used))
	} else {
		clear(al.used)
	}
	for d, b := range src.used {
		nd := remapDomain(d, src.ms, ms)
		if nd == nil {
			return errors.New("dram: usage entry points outside the allocator's memory system")
		}
		al.used[nd] = b
	}
	return nil
}

// remapDomain maps a domain of from onto its positional twin in to.
// Linear scan: memory systems have a handful of domains, so this beats
// allocating a remap table on every stamp.
func remapDomain(d *Domain, from, to *MemorySystem) *Domain {
	for i, sd := range from.Domains {
		if sd == d {
			return to.Domains[i]
		}
	}
	return nil
}
