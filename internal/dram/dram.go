// Package dram simulates the DRAM retention behaviour behind the
// paper's Section 6.B experiment: 8 GB DDR3 DIMMs on a commodity
// server whose main memory is split into per-channel refresh domains
// with independently controllable refresh intervals, so that critical
// kernel code and stack data can live on a reliable (nominal-refresh)
// domain while the rest of memory runs at a relaxed rate.
//
// The physical model follows the experimental DRAM retention studies
// the paper cites (Liu et al., "An experimental study of data
// retention behavior in modern DRAM devices", ISCA 2013): cell
// retention times are log-normally distributed with an extremely thin
// failure tail at second-scale intervals, retention halves roughly
// every 10°C, and a cell only leaks visibly when it stores the
// charge-decay-sensitive value (so random patterns expose about half
// the weak cells).
//
// The calibration reproduces the paper's measurements: relaxing the
// refresh interval from the nominal 64 ms up to 1.5 s introduces no
// errors, and even at 5 s (78x nominal) the cumulative bit error rate
// stays in the order of 1e-9 — within what commercial DRAMs target and
// three orders of magnitude below the 1e-6 rate classical SECDED ECC
// can absorb.
package dram

import (
	"errors"
	"fmt"
	"math"
	"time"

	"uniserver/internal/rng"
	"uniserver/internal/stats"
	"uniserver/internal/vfr"
)

// RetentionModel parameterizes the log-normal cell retention-time
// distribution at a reference temperature.
type RetentionModel struct {
	// MuLog and SigmaLog are the parameters of ln(retention seconds)
	// at the reference temperature.
	MuLog, SigmaLog float64
	// RefTempC is the temperature the parameters are calibrated at.
	RefTempC float64
	// HalvingC is the temperature increase that halves retention time
	// (~10°C for DRAM).
	HalvingC float64
}

// DefaultRetentionModel returns the model calibrated to the paper's
// measurements in an air-conditioned server room (~45°C DRAM
// temperature): P(retention < 5 s) ≈ 1.3e-9 and
// P(retention < 1.5 s) ≈ 2e-14, so even a multi-pass campaign over
// tens of gigabytes shows zero errors through 1.5 s while the
// cumulative BER at 5 s stays in the order of 1e-9.
func DefaultRetentionModel() RetentionModel {
	return RetentionModel{MuLog: 6.086, SigmaLog: 0.7524, RefTempC: 45, HalvingC: 10}
}

// tempScale returns the retention multiplier at the given temperature:
// hotter cells leak faster.
func (m RetentionModel) tempScale(tempC float64) float64 {
	return math.Pow(2, (m.RefTempC-tempC)/m.HalvingC)
}

// FailProb returns the probability that a single cell's retention time
// (at the given temperature) is below the refresh interval — i.e. the
// per-bit raw failure probability, before pattern exposure.
func (m RetentionModel) FailProb(interval time.Duration, tempC float64) float64 {
	if interval <= 0 {
		return 0
	}
	t := interval.Seconds() / m.tempScale(tempC)
	z := (math.Log(t) - m.MuLog) / m.SigmaLog
	return stats.NormalCDF(z)
}

// SampleWeakRetention samples a retention time (seconds, at reference
// temperature) conditioned on it being below the given horizon, using
// inverse-CDF sampling of the truncated tail.
func (m RetentionModel) SampleWeakRetention(horizon time.Duration, src *rng.Source) float64 {
	return m.sampleWeakTail(m.FailProb(horizon, m.RefTempC), src)
}

// sampleWeakTail is SampleWeakRetention with the horizon's tail mass
// pH already evaluated: fabrication draws tens of thousands of cells
// against the same horizon, so the CDF evaluation is hoisted out of
// the per-cell loop.
func (m RetentionModel) sampleWeakTail(pH float64, src *rng.Source) float64 {
	u := src.Float64()
	for u == 0 {
		u = src.Float64()
	}
	return math.Exp(m.MuLog + m.SigmaLog*stats.NormalQuantile(u*pH))
}

// WeakCell is one cell in the retention-failure tail of a DIMM.
type WeakCell struct {
	// Offset is the bit offset of the cell within its DIMM.
	Offset uint64
	// RetentionSec is the cell's retention time at the model's
	// reference temperature (the long state, for VRT cells).
	RetentionSec float64
	// TrueCell reports the cell's polarity: a true cell leaks toward 0
	// and only corrupts data when storing 1; an anti cell the reverse.
	TrueCell bool
	// AltRetentionSec, when non-zero, marks a variable-retention-time
	// (VRT) cell: the cell random-telegraph-switches between
	// RetentionSec and this shorter retention. VRT is why a
	// characterization pass can miss a cell that later fails in the
	// field (Liu et al. [32]), and why the StressLog derates the
	// longest observed error-free interval before publishing it.
	AltRetentionSec float64
	// LowState reports whether a VRT cell currently sits in its
	// short-retention state.
	LowState bool
}

// VRT population constants, per the retention studies the paper cites:
// a noticeable minority of weak cells exhibit VRT with a modest
// retention ratio, switching states on second-to-minute timescales.
const (
	// VRTFraction is the fraction of weak cells that are VRT.
	VRTFraction = 0.10
	// VRTRetentionRatio divides the long-state retention to obtain the
	// short-state retention.
	VRTRetentionRatio = 1.5
	// VRTToggleProb is the per-observation-window probability that a
	// VRT cell switches state.
	VRTToggleProb = 0.02
)

// DIMM is one memory module with its explicit weak-cell population.
type DIMM struct {
	// CapacityBytes is the module size (the paper uses 8 GB modules).
	CapacityBytes uint64
	// DeviceGb is the per-device density in gigabits (refresh power).
	DeviceGb int
	// Weak holds every cell whose retention falls below the simulation
	// horizon; all other cells never fail at the intervals simulated.
	Weak []WeakCell

	// vrt indexes the VRT cells within Weak, in cell order, so the
	// per-window telegraph toggle touches only them instead of scanning
	// the whole weak population. Filled by NewDIMM; a literal-built
	// DIMM (nil vrt) falls back to the full scan.
	vrt []int
}

// WeakCellHorizon is the retention horizon below which cells are
// tracked explicitly. Cells above it cannot fail at any interval the
// simulator sweeps: 12 s covers 5 s sweeps with a 10°C temperature
// rise while keeping the explicit weak-cell population compact.
const WeakCellHorizon = 12 * time.Second

// NewDIMM fabricates a DIMM: the weak-cell count is drawn from the
// binomial tail of the retention model and each weak cell gets a
// position, a retention time and a polarity.
func NewDIMM(capacityBytes uint64, deviceGb int, model RetentionModel, src *rng.Source) *DIMM {
	bits := capacityBytes * 8
	pWeak := model.FailProb(WeakCellHorizon, model.RefTempC)
	n := src.Binomial(clampInt(bits), pWeak)
	d := &DIMM{CapacityBytes: capacityBytes, DeviceGb: deviceGb, Weak: make([]WeakCell, n)}
	for i := range d.Weak {
		cell := WeakCell{
			Offset:       src.Uint64() % bits,
			RetentionSec: model.sampleWeakTail(pWeak, src),
			TrueCell:     src.Bool(),
		}
		if src.Bernoulli(VRTFraction) {
			cell.AltRetentionSec = cell.RetentionSec / VRTRetentionRatio
			cell.LowState = src.Bool()
			d.vrt = append(d.vrt, i)
		}
		d.Weak[i] = cell
	}
	return d
}

func clampInt(v uint64) int {
	if v > uint64(math.MaxInt64/2) {
		return math.MaxInt64 / 2
	}
	return int(v)
}

// Bits returns the DIMM capacity in bits.
func (d *DIMM) Bits() uint64 { return d.CapacityBytes * 8 }

// Clone returns a deep copy of the DIMM: the same fabricated weak-cell
// population (including each VRT cell's current telegraph state) with
// no shared storage, so the copy's future VRT toggles and pattern
// tests leave the original untouched.
func (d *DIMM) Clone() *DIMM {
	out := *d
	out.Weak = append([]WeakCell(nil), d.Weak...)
	out.vrt = append([]int(nil), d.vrt...)
	return &out
}

// Grow appends n freshly-activated weak cells to the DIMM, drawing
// each exactly like fabrication does (position, retention from the
// weak tail, polarity, VRT membership) and keeping the private VRT
// index current. Field data says the weak-cell population is not
// static (Qureshi et al., AVATAR, DSN 2015: new weak cells keep
// appearing at a roughly constant rate over a device's life); Grow is
// the mechanism lifetime fast-forwards use to model that.
func (d *DIMM) Grow(n int, model RetentionModel, src *rng.Source) {
	if n <= 0 {
		return
	}
	bits := d.Bits()
	pWeak := model.FailProb(WeakCellHorizon, model.RefTempC)
	for i := 0; i < n; i++ {
		cell := WeakCell{
			Offset:       src.Uint64() % bits,
			RetentionSec: model.sampleWeakTail(pWeak, src),
			TrueCell:     src.Bool(),
		}
		if src.Bernoulli(VRTFraction) {
			cell.AltRetentionSec = cell.RetentionSec / VRTRetentionRatio
			cell.LowState = src.Bool()
			d.vrt = append(d.vrt, len(d.Weak))
		}
		d.Weak = append(d.Weak, cell)
	}
}

// GrowWeakCells advances the domain's weak-cell population by `days`
// of field aging at the given activation rate (expected newly-weak
// cells per DIMM per day). The count per DIMM is a binomial draw over
// the module's bits — the same distribution fabrication uses — so a
// zero rate draws nothing and leaves the source stream untouched.
func GrowWeakCells(dom *Domain, days int, cellsPerDIMMPerDay float64, model RetentionModel, src *rng.Source) {
	if days <= 0 || cellsPerDIMMPerDay <= 0 {
		return
	}
	for _, dimm := range dom.DIMMs {
		bits := dimm.Bits()
		if bits == 0 {
			continue
		}
		p := cellsPerDIMMPerDay * float64(days) / float64(bits)
		if p > 1 {
			p = 1
		}
		n := src.Binomial(clampInt(bits), p)
		dimm.Grow(n, model, src)
	}
}

// Domain is a refresh domain: a set of DIMMs (one memory channel in
// the paper's setup) sharing one refresh interval.
type Domain struct {
	Name     string
	DIMMs    []*DIMM
	Refresh  time.Duration
	Reliable bool // pinned to nominal refresh for critical data
}

// Bits returns the domain capacity in bits.
func (dom *Domain) Bits() uint64 {
	var total uint64
	for _, d := range dom.DIMMs {
		total += d.Bits()
	}
	return total
}

// SetRefresh changes the domain's refresh interval. Reliable domains
// refuse to relax beyond the nominal interval.
func (dom *Domain) SetRefresh(interval time.Duration) error {
	if interval <= 0 {
		return fmt.Errorf("dram: non-positive refresh interval %v", interval)
	}
	if dom.Reliable && interval > vfr.NominalRefresh {
		return fmt.Errorf("dram: domain %q is reliable; refusing refresh %v > nominal %v",
			dom.Name, interval, vfr.NominalRefresh)
	}
	dom.Refresh = interval
	return nil
}

// MemorySystem is the server's main memory: a set of refresh domains
// (channels) as instrumented in the paper's framework.
type MemorySystem struct {
	Model   RetentionModel
	Domains []*Domain
	// TempC is the current DRAM temperature.
	TempC float64
}

// Config describes the memory system to build.
type Config struct {
	Channels        int
	DIMMsPerChannel int
	DIMMBytes       uint64
	DeviceGb        int
	TempC           float64
}

// DefaultConfig mirrors the paper's testbed: a commodity server with
// multiple channels of 8 GB DDR3 DIMMs in an air-conditioned room.
func DefaultConfig() Config {
	return Config{
		Channels:        4,
		DIMMsPerChannel: 2,
		DIMMBytes:       8 << 30,
		DeviceGb:        2,
		TempC:           45,
	}
}

// New builds a memory system; channel 0 is marked reliable (nominal
// refresh) to host critical kernel code and stack data, mirroring the
// paper's isolation of the kernel on a nominal-refresh domain.
func New(cfg Config, model RetentionModel, src *rng.Source) (*MemorySystem, error) {
	if cfg.Channels <= 0 || cfg.DIMMsPerChannel <= 0 || cfg.DIMMBytes == 0 {
		return nil, errors.New("dram: invalid config")
	}
	ms := &MemorySystem{Model: model, TempC: cfg.TempC}
	for ch := 0; ch < cfg.Channels; ch++ {
		dom := &Domain{
			Name:     fmt.Sprintf("channel%d", ch),
			Refresh:  vfr.NominalRefresh,
			Reliable: ch == 0,
		}
		for i := 0; i < cfg.DIMMsPerChannel; i++ {
			dom.DIMMs = append(dom.DIMMs, NewDIMM(cfg.DIMMBytes, cfg.DeviceGb, model, src.Split()))
		}
		ms.Domains = append(ms.Domains, dom)
	}
	return ms, nil
}

// Clone returns a deep copy of the domain: its DIMMs (weak cells, VRT
// state) and its current refresh setting.
func (dom *Domain) Clone() *Domain {
	out := *dom
	out.DIMMs = make([]*DIMM, len(dom.DIMMs))
	for i, d := range dom.DIMMs {
		out.DIMMs[i] = d.Clone()
	}
	return &out
}

// Clone returns a deep copy of the memory system: every domain and
// DIMM is duplicated (same order, same refresh intervals, same weak
// cells in their current VRT states), so the copy can be relaxed,
// tested and heated independently. Allocators bound to the original
// are rebound with Allocator.CloneFor.
func (ms *MemorySystem) Clone() *MemorySystem {
	out := &MemorySystem{Model: ms.Model, TempC: ms.TempC}
	out.Domains = make([]*Domain, len(ms.Domains))
	for i, dom := range ms.Domains {
		out.Domains[i] = dom.Clone()
	}
	return out
}

// ReliableDomain returns the reliable domain.
func (ms *MemorySystem) ReliableDomain() *Domain {
	for _, d := range ms.Domains {
		if d.Reliable {
			return d
		}
	}
	return nil
}

// RelaxedDomains returns every non-reliable domain.
func (ms *MemorySystem) RelaxedDomains() []*Domain {
	var out []*Domain
	for _, d := range ms.Domains {
		if !d.Reliable {
			out = append(out, d)
		}
	}
	return out
}

// TotalBits returns the capacity of the whole memory system in bits.
func (ms *MemorySystem) TotalBits() uint64 {
	var total uint64
	for _, d := range ms.Domains {
		total += d.Bits()
	}
	return total
}

// PatternTestResult reports one pattern-test pass over a domain.
type PatternTestResult struct {
	Domain    string
	Refresh   time.Duration
	BitsRead  uint64
	BitErrors int
	BER       float64
}

// effectiveRetention returns the cell's retention at the system
// temperature, honouring a VRT cell's current state.
func (ms *MemorySystem) effectiveRetention(c WeakCell) float64 {
	r := c.RetentionSec
	if c.AltRetentionSec > 0 && c.LowState {
		r = c.AltRetentionSec
	}
	return r * ms.Model.tempScale(ms.TempC)
}

// toggleVRT advances the random-telegraph state of every VRT cell in
// the domain by one observation window.
func toggleVRT(dom *Domain, src *rng.Source) {
	toggleVRTWith(dom, VRTToggleProb, src)
}

// toggleVRTWith is the single telegraph walker behind the fine
// (per-window) and coarse (fast-forward) toggles: one Bernoulli(p)
// draw per VRT cell. Fabricated DIMMs carry a VRT index, so only the
// ~10% VRT minority is visited; the draw order (cell order) is
// identical to the full-scan fallback, so the stream — and therefore
// every downstream fingerprint — is the same on both paths.
func toggleVRTWith(dom *Domain, p float64, src *rng.Source) {
	for _, dimm := range dom.DIMMs {
		if dimm.vrt != nil {
			for _, i := range dimm.vrt {
				if src.Bernoulli(p) {
					dimm.Weak[i].LowState = !dimm.Weak[i].LowState
				}
			}
			continue
		}
		for i := range dimm.Weak {
			if dimm.Weak[i].AltRetentionSec > 0 && src.Bernoulli(p) {
				dimm.Weak[i].LowState = !dimm.Weak[i].LowState
			}
		}
	}
}

// CoarseToggleProb returns the probability that a VRT cell sits in the
// opposite telegraph state after `windows` back-to-back observation
// windows: the closed form of `windows` independent Bernoulli(p)
// toggles, 0.5·(1−(1−2p)^n). It is what lets a lifetime fast-forward
// advance months of random-telegraph switching in one draw per cell
// instead of stepping half a million windows.
func CoarseToggleProb(windows int) float64 {
	if windows <= 0 {
		return 0
	}
	return 0.5 * (1 - math.Pow(1-2*VRTToggleProb, float64(windows)))
}

// ToggleVRTCoarse advances every VRT cell in the domain by `windows`
// observation windows' worth of telegraph switching in a single
// Bernoulli draw per cell (probability CoarseToggleProb(windows)).
// It walks the cells exactly like the fine per-window toggle — same
// walker, different probability — so the draw sequence is a pure
// function of the source stream and the fabricated population.
func ToggleVRTCoarse(dom *Domain, windows int, src *rng.Source) {
	toggleVRTWith(dom, CoarseToggleProb(windows), src)
}

// Reindex rebuilds every DIMM's private VRT index from its weak-cell
// population. Deserialized memory systems call it once after decoding:
// the index is a pure derivation of the exported cells (the wire
// format does not carry it), and without it the per-window telegraph
// toggle would fall back to the full weak-cell scan.
func (ms *MemorySystem) Reindex() {
	for _, dom := range ms.Domains {
		for _, dimm := range dom.DIMMs {
			dimm.vrt = dimm.vrt[:0]
			for i := range dimm.Weak {
				if dimm.Weak[i].AltRetentionSec > 0 {
					dimm.vrt = append(dimm.vrt, i)
				}
			}
		}
	}
}

// RunPatternTest writes a random test pattern over the whole domain,
// waits one full refresh interval, reads it back and counts bit
// errors, replicating the paper's methodology ("using random test
// patterns and various refresh rates"). A weak cell corrupts data only
// if its retention (at temperature) is below the refresh interval and
// the random pattern stored the leak-sensitive polarity (probability
// 1/2 per cell).
func (ms *MemorySystem) RunPatternTest(dom *Domain, src *rng.Source) PatternTestResult {
	res := PatternTestResult{Domain: dom.Name, Refresh: dom.Refresh, BitsRead: dom.Bits()}
	toggleVRT(dom, src)
	interval := dom.Refresh.Seconds()
	// The temperature scale is per-system state, not per-cell: hoisting
	// it replaces a math.Pow per cell with one multiply, computing the
	// exact same product effectiveRetention would.
	scale := ms.Model.tempScale(ms.TempC)
	for _, dimm := range dom.DIMMs {
		for i := range dimm.Weak {
			cell := &dimm.Weak[i]
			r := cell.RetentionSec
			if cell.AltRetentionSec > 0 && cell.LowState {
				r = cell.AltRetentionSec
			}
			if r*scale < interval && src.Bool() {
				res.BitErrors++
			}
		}
	}
	if res.BitsRead > 0 {
		res.BER = float64(res.BitErrors) / float64(res.BitsRead)
	}
	return res
}

// SweepPoint is one row of the refresh-rate characterization sweep.
type SweepPoint struct {
	Refresh       time.Duration
	BitErrors     int
	CumulativeBER float64
	SECDEDSafe    bool // below the 1e-6 rate classical SECDED handles
}

// CharacterizeRefresh sweeps the given refresh intervals on every
// relaxed domain and reports cumulative errors and BER per interval —
// the Section 6.B experiment. Passes-per-interval emulates repeated
// testing (the paper reports cumulative BER over its campaign).
func (ms *MemorySystem) CharacterizeRefresh(intervals []time.Duration, passes int, src *rng.Source) ([]SweepPoint, error) {
	if passes <= 0 {
		return nil, errors.New("dram: passes must be positive")
	}
	points := make([]SweepPoint, 0, len(intervals))
	for _, interval := range intervals {
		totalErrors := 0
		var totalBits uint64
		for _, dom := range ms.RelaxedDomains() {
			if err := dom.SetRefresh(interval); err != nil {
				return nil, err
			}
			for p := 0; p < passes; p++ {
				r := ms.RunPatternTest(dom, src)
				totalErrors += r.BitErrors
				totalBits += r.BitsRead
			}
		}
		ber := 0.0
		if totalBits > 0 {
			ber = float64(totalErrors) / float64(totalBits)
		}
		points = append(points, SweepPoint{
			Refresh:       interval,
			BitErrors:     totalErrors,
			CumulativeBER: ber,
			SECDEDSafe:    ber <= 1e-6,
		})
	}
	// Restore nominal refresh after characterization.
	for _, dom := range ms.RelaxedDomains() {
		if err := dom.SetRefresh(vfr.NominalRefresh); err != nil {
			return nil, err
		}
	}
	return points, nil
}

// MaxSafeRefresh returns the longest swept interval with zero observed
// errors — the margin the StressLog would publish for the DRAM domain
// (before applying its cushion).
func MaxSafeRefresh(points []SweepPoint) (time.Duration, bool) {
	var best time.Duration
	found := false
	for _, p := range points {
		if p.BitErrors == 0 && p.Refresh > best {
			best = p.Refresh
			found = true
		}
	}
	return best, found
}
