// Package campaignd is the long-running campaign service behind
// `uniserver serve`: an HTTP API that accepts campaign submissions
// (scenario presets or inline specs, plus seeds and execution knobs),
// runs them on scenario.RunCampaign over a bounded worker pool shared
// across concurrent submissions, streams per-cell results to the
// client as NDJSON, and persists every completed cell into a
// content-addressed resultstore.Store.
//
// Persistence is the crash story: cells land in the store the moment
// they finish (atomic writes at cell boundaries), characterization
// snapshots spill into the store's charact directory
// (fleet.CharactCache.AttachDir, core.Snapshot under the hood), and a
// run's manifest stays "running" until its campaign completes. A
// killed server therefore resumes incomplete runs on the next start:
// completed cells are served from the store byte-identically (the
// determinism contract makes stored and re-run bytes equal), and only
// the missing cells execute.
package campaignd

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"

	"uniserver/internal/resultstore"
	"uniserver/internal/scenario"
)

// Options configure a Server.
type Options struct {
	// Store is the persistent result store (required).
	Store *resultstore.Store
	// Pool bounds the number of campaign cells executing at once
	// across ALL submissions; <= 0 means GOMAXPROCS. Cells from
	// concurrent submissions interleave fairly on the shared pool;
	// results are unaffected (the pool is an execution knob).
	Pool int
	// FleetWorkers is the default per-cell fleet worker count for
	// submissions that do not set one; <= 0 means 1.
	FleetWorkers int
}

// Server executes campaign runs against one store. It serves HTTP via
// Handler, but the engine itself is plain Go — tests drive it
// directly, and resumption runs in the background with no client.
type Server struct {
	store *resultstore.Store
	sem   chan struct{}
	opts  Options

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	mu     sync.Mutex
	active map[string]bool // run IDs currently executing in this process

	// testCellDone, when set (tests only), observes every finished
	// cell after it is persisted and streamed — the hook the
	// crash-resume test uses to kill the engine at a precise cell
	// boundary.
	testCellDone func(runID string, gridIndex int, res scenario.Result)
}

// New builds a Server over the store. Call Close to stop it: running
// campaigns halt at the next cell boundary with their manifests left
// "running", which is exactly the on-disk state ResumeIncomplete picks
// up after a restart.
func New(opts Options) *Server {
	pool := opts.Pool
	if pool <= 0 {
		pool = runtime.GOMAXPROCS(0)
	}
	ctx, cancel := context.WithCancel(context.Background())
	return &Server{
		store:  opts.Store,
		sem:    make(chan struct{}, pool),
		opts:   opts,
		ctx:    ctx,
		cancel: cancel,
		active: make(map[string]bool),
	}
}

// Store returns the server's result store.
func (s *Server) Store() *resultstore.Store { return s.store }

// Shutdown cancels running campaigns at their next cell boundary
// without waiting — the signal-handler half of Close. Completed cells
// are already persisted; interrupted manifests stay "running".
func (s *Server) Shutdown() { s.cancel() }

// Close stops the server: running campaigns are canceled at cell
// boundaries (completed cells are already persisted) and Close blocks
// until they have checkpointed. Manifests of interrupted runs stay
// "running" on disk — the resume signal.
func (s *Server) Close() {
	s.cancel()
	s.wg.Wait()
}

// planned is a resolved, identity-stamped campaign: the grid, its
// content-addressed cell keys, and the run ID they derive.
type planned struct {
	scenarios    []scenario.Scenario
	seeds        []uint64
	fleetWorkers int
	parallel     int
	cellKeys     []string
	runID        string
}

// plan resolves a grid into its content addresses and run identity.
func (s *Server) plan(scens []scenario.Scenario, seeds []uint64, fleetWorkers, parallel int) (planned, error) {
	if len(scens) == 0 {
		return planned{}, fmt.Errorf("campaignd: no scenarios")
	}
	if len(seeds) == 0 {
		return planned{}, fmt.Errorf("campaignd: no seeds")
	}
	if fleetWorkers <= 0 {
		fleetWorkers = s.opts.FleetWorkers
	}
	keys := make([]string, 0, len(scens)*len(seeds))
	for _, sc := range scens {
		if err := sc.Validate(); err != nil {
			return planned{}, err
		}
		for _, seed := range seeds {
			key, _, err := resultstore.CellKey(sc, seed)
			if err != nil {
				return planned{}, err
			}
			keys = append(keys, key)
		}
	}
	return planned{
		scenarios:    scens,
		seeds:        seeds,
		fleetWorkers: fleetWorkers,
		parallel:     parallel,
		cellKeys:     keys,
		runID:        resultstore.RunID(keys),
	}, nil
}

// manifest renders the planned run's on-disk manifest at the given
// status.
func (p planned) manifest(status string) resultstore.RunManifest {
	return resultstore.RunManifest{
		ID:           p.runID,
		Status:       status,
		Scenarios:    p.scenarios,
		Seeds:        p.seeds,
		FleetWorkers: p.fleetWorkers,
		Parallel:     p.parallel,
		CellKeys:     p.cellKeys,
	}
}

// tryActivate marks the run in-flight in this process; false means it
// already is (a duplicate concurrent submission attaches to nothing
// and is told so).
func (s *Server) tryActivate(runID string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.active[runID] {
		return false
	}
	s.active[runID] = true
	return true
}

func (s *Server) deactivate(runID string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.active, runID)
}

// execute runs a planned campaign to completion (or to the server's
// cancellation), persisting cells as they finish and reporting each
// through emit (nil for background runs). It owns the manifest
// lifecycle: running → complete/failed, or left running when the
// server shut down mid-campaign (the resume signal). The returned
// report is partial when interrupted.
func (s *Server) execute(p planned, emit func(gridIndex int, res scenario.Result)) (scenario.Report, error) {
	if err := s.store.PutRun(p.manifest(resultstore.RunRunning)); err != nil {
		return scenario.Report{}, err
	}

	var emitMu sync.Mutex
	camp := scenario.Campaign{
		Scenarios:    p.scenarios,
		Seeds:        p.seeds,
		FleetWorkers: p.fleetWorkers,
		Parallel:     p.parallel,
		CharactDir:   s.store.CharactDir(),
		Context:      s.ctx,
		Gate: func(run func()) {
			// The shared pool: one slot per executing cell, across every
			// concurrent submission. Declining on shutdown (instead of
			// blocking for a slot) is what lets Close return promptly —
			// the declined cell is marked canceled and resumes later.
			select {
			case s.sem <- struct{}{}:
				defer func() { <-s.sem }()
				run()
			case <-s.ctx.Done():
			}
		},
		Lookup: func(sc scenario.Scenario, seed uint64) (scenario.Result, bool) {
			key, _, err := resultstore.CellKey(sc, seed)
			if err != nil {
				return scenario.Result{}, false
			}
			rec, ok := s.store.GetCell(key)
			if !ok {
				return scenario.Result{}, false
			}
			return scenario.Result{
				Scenario:          rec.Scenario,
				Seed:              rec.Seed,
				Fingerprint:       rec.Fingerprint,
				FingerprintSHA256: rec.FingerprintSHA256,
				Summary:           rec.Summary,
			}, true
		},
		OnCell: func(gi int, res scenario.Result) {
			if res.Err == "" && !res.Cached {
				sc := p.scenarios[gi/len(p.seeds)]
				seed := p.seeds[gi%len(p.seeds)]
				key, canonical, err := resultstore.CellKey(sc, seed)
				if err == nil {
					// Best effort: a failed put costs a re-run after a
					// crash, never correctness.
					_ = s.store.PutCell(resultstore.CellRecord{
						Key:               key,
						Scenario:          res.Scenario,
						Seed:              res.Seed,
						Request:           canonical,
						Fingerprint:       res.Fingerprint,
						FingerprintSHA256: res.FingerprintSHA256,
						Summary:           res.Summary,
					})
				}
			}
			if emit != nil {
				emitMu.Lock()
				emit(gi, res)
				emitMu.Unlock()
			}
			if s.testCellDone != nil {
				s.testCellDone(p.runID, gi, res)
			}
		},
	}

	rep, err := scenario.RunCampaign(camp)
	switch {
	case s.ctx.Err() != nil || errors.Is(err, context.Canceled):
		// Interrupted: the manifest stays "running" on disk — completed
		// cells are persisted, and the next start (or the next identical
		// submission) resumes from them.
		return rep, fmt.Errorf("campaignd: run %s interrupted (%d of %d cells complete; will resume): %w",
			p.runID, len(p.cellKeys)-rep.CanceledCells, len(p.cellKeys), context.Canceled)
	case err != nil:
		m := p.manifest(resultstore.RunFailed)
		m.Error = err.Error()
		m.Report = &rep
		m.CachedCells = rep.CachedCells
		if perr := s.store.PutRun(m); perr != nil {
			return rep, perr
		}
		return rep, err
	default:
		m := p.manifest(resultstore.RunComplete)
		m.FingerprintSHA256 = rep.FingerprintSHA256
		m.CachedCells = rep.CachedCells
		m.Report = &rep
		if perr := s.store.PutRun(m); perr != nil {
			return rep, perr
		}
		return rep, nil
	}
}

// launch runs a planned campaign, refusing duplicates of a run already
// executing in this process. Used by both the HTTP submit path (with
// an emit) and background resumption (emit nil).
func (s *Server) launch(p planned, emit func(int, scenario.Result)) (scenario.Report, error) {
	if !s.tryActivate(p.runID) {
		return scenario.Report{}, errAlreadyRunning
	}
	defer s.deactivate(p.runID)
	s.wg.Add(1)
	defer s.wg.Done()
	return s.execute(p, emit)
}

var errAlreadyRunning = errors.New("campaignd: run already executing")

// Submit plans and synchronously runs a campaign against the store —
// the same path HTTP submissions take, exposed for the CLI's
// -result-store mode so one-shot runs and serve mode are literally the
// same code. Returns the content-derived run ID alongside the report;
// on interruption the report is partial and the error wraps
// context.Canceled.
func (s *Server) Submit(scens []scenario.Scenario, seeds []uint64, fleetWorkers, parallel int, onCell func(gridIndex int, res scenario.Result)) (string, scenario.Report, error) {
	p, err := s.plan(scens, seeds, fleetWorkers, parallel)
	if err != nil {
		return "", scenario.Report{}, err
	}
	rep, err := s.launch(p, onCell)
	return p.runID, rep, err
}

// ResumeIncomplete scans the store for runs whose manifests are still
// "running" — the fossil of a crash or shutdown — and relaunches them
// in the background. Completed cells are served from the store; only
// missing cells execute. Returns the number of runs relaunched.
func (s *Server) ResumeIncomplete() (int, error) {
	runs, err := s.store.ListRuns()
	if err != nil {
		return 0, err
	}
	n := 0
	for _, m := range runs {
		if m.Status != resultstore.RunRunning {
			continue
		}
		p, err := s.plan(m.Scenarios, m.Seeds, m.FleetWorkers, m.Parallel)
		if err != nil {
			// A manifest this build cannot re-plan (e.g. a declaration
			// its validator now rejects) is marked failed rather than
			// retried forever.
			m.Status = resultstore.RunFailed
			m.Error = "resume: " + err.Error()
			if perr := s.store.PutRun(m); perr != nil {
				return n, perr
			}
			continue
		}
		n++
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			// launch/execute manage their own wg add; this outer guard
			// keeps Close honest about the goroutine itself.
			_, _ = s.launch(p, nil)
		}()
	}
	return n, nil
}
