package campaignd

import (
	"testing"
	"time"

	"uniserver/internal/resultstore"
	"uniserver/internal/scenario"
)

// policyGrid is the adaptive-policy campaign grid: the drift-gated
// cadence preset and the closed-loop undervolting preset, scaled to
// the resume tests' cell size.
func policyGrid(t *testing.T) ([]scenario.Scenario, []uint64) {
	t.Helper()
	var scens []scenario.Scenario
	for _, name := range []string{"drift-cadence", "ecc-closedloop"} {
		s, err := scenario.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		scens = append(scens, s.Scale(2, 6))
	}
	return scens, []uint64{7}
}

// TestCrashResumePolicyPreset re-proves the crash-resume contract on
// cells whose deployments carry live policy state (drift baselines,
// closed-loop controller offsets): a run killed after its first cell
// must resume to the one-shot run's bytes, and the resumed report's
// policy counters must equal the one-shot report's — the counters
// travel through the store inside the persisted summaries, not
// through any in-process controller state.
func TestCrashResumePolicyPreset(t *testing.T) {
	scens, seeds := policyGrid(t)
	ref, err := scenario.RunCampaign(scenario.Campaign{Scenarios: scens, Seeds: seeds, Parallel: 1})
	if err != nil {
		t.Fatalf("reference campaign: %v", err)
	}
	refByName := map[string]scenario.ScenarioReport{}
	for _, sr := range ref.Scenarios {
		refByName[sr.Scenario] = sr
	}
	// The grid must actually exercise the policies, or the test proves
	// nothing about them.
	if dc := refByName["drift-cadence"]; dc.RecharTriggered+dc.RecharSuppressed == 0 {
		t.Fatal("drift-cadence cell made no gate decisions at this grid size")
	}
	if ec := refByName["ecc-closedloop"]; ec.UndervoltSteps == 0 {
		t.Fatal("ecc-closedloop cell took no controller steps at this grid size")
	}

	dir := t.TempDir()
	st1, err := resultstore.Open(dir)
	if err != nil {
		t.Fatalf("Open store: %v", err)
	}
	srv1 := New(Options{Store: st1, Pool: 1})
	srv1.testCellDone = func(runID string, gi int, res scenario.Result) {
		srv1.cancel()
	}
	p1, err := srv1.plan(scens, seeds, 0, 1)
	if err != nil {
		t.Fatalf("plan: %v", err)
	}
	if _, err = srv1.launch(p1, nil); err == nil {
		t.Fatalf("interrupted campaign reported success")
	}
	srv1.Close()

	st2, err := resultstore.Open(dir)
	if err != nil {
		t.Fatalf("re-Open store: %v", err)
	}
	srv2 := New(Options{Store: st2, Pool: 1})
	defer srv2.Close()
	if n, err := srv2.ResumeIncomplete(); err != nil || n != 1 {
		t.Fatalf("ResumeIncomplete = %d, %v; want 1 run", n, err)
	}
	deadline := time.Now().Add(2 * time.Minute)
	var final resultstore.RunManifest
	for {
		if m, ok := st2.GetRun(p1.runID); ok && m.Status != resultstore.RunRunning {
			final = m
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("resumed run did not complete in time")
		}
		time.Sleep(20 * time.Millisecond)
	}

	if final.Status != resultstore.RunComplete {
		t.Fatalf("resumed run finished %q (%s), want complete", final.Status, final.Error)
	}
	if final.FingerprintSHA256 != ref.FingerprintSHA256 {
		t.Errorf("resumed policy campaign diverged from the one-shot run:\n got %s\nwant %s",
			final.FingerprintSHA256, ref.FingerprintSHA256)
	}
	if final.CachedCells != 1 {
		t.Errorf("resumed run served %d cells from the store, want 1", final.CachedCells)
	}
	if final.Report == nil {
		t.Fatal("complete manifest carries no report")
	}
	for _, sr := range final.Report.Scenarios {
		want := refByName[sr.Scenario]
		if sr.RecharTriggered != want.RecharTriggered ||
			sr.RecharSuppressed != want.RecharSuppressed ||
			sr.UndervoltSteps != want.UndervoltSteps ||
			sr.ECCBackoffs != want.ECCBackoffs ||
			sr.Recharacterized != want.Recharacterized {
			t.Errorf("%s policy counters diverged after resume:\n got %+v\nwant %+v",
				sr.Scenario, sr, want)
		}
	}
	for i, key := range p1.cellKeys {
		rec, ok := st2.GetCell(key)
		if !ok {
			t.Fatalf("cell %d missing after resume", i)
		}
		if rec.Fingerprint != ref.Results[i].Fingerprint {
			t.Errorf("cell %d fingerprint diverged after resume (scenario %s seed %d)",
				i, rec.Scenario, rec.Seed)
		}
	}
}

// TestCrashResumeDeterminism is the satellite the result store exists
// for: a server hard-stopped mid-campaign (after at least one cell has
// persisted) must, on restart against the same store directory, finish
// the run with per-cell fingerprints byte-identical to an
// uninterrupted run — and must NOT re-execute the cells that already
// persisted (the store's hit counters prove it).
func TestCrashResumeDeterminism(t *testing.T) {
	ref := referenceReport(t)
	scens, seeds := testGrid()
	dir := t.TempDir()

	// --- First life: run with a one-slot pool and Parallel=1 so cells
	// complete strictly in grid order, and kill the server the moment
	// cell 0 lands.
	st1, err := resultstore.Open(dir)
	if err != nil {
		t.Fatalf("Open store: %v", err)
	}
	srv1 := New(Options{Store: st1, Pool: 1})
	srv1.testCellDone = func(runID string, gi int, res scenario.Result) {
		// The "crash": cancel the server's context at a cell boundary.
		// The cell is already persisted (testCellDone fires after the
		// put), so this models SIGKILL-after-fsync — the strongest state
		// a real crash can leave behind.
		srv1.cancel()
	}
	p1, err := srv1.plan(scens, seeds, 0, 1)
	if err != nil {
		t.Fatalf("plan: %v", err)
	}
	_, err = srv1.launch(p1, nil)
	if err == nil {
		t.Fatalf("interrupted campaign reported success")
	}
	srv1.Close()

	persisted, err := st1.CellCount()
	if err != nil {
		t.Fatalf("CellCount: %v", err)
	}
	if persisted != 1 {
		t.Fatalf("%d cells persisted before the crash, want exactly 1 (Parallel=1, pool=1, killed after cell 0)", persisted)
	}
	m, ok := st1.GetRun(p1.runID)
	if !ok || m.Status != resultstore.RunRunning {
		t.Fatalf("post-crash manifest = %+v (ok=%v), want status running — the resume signal", m, ok)
	}

	// --- Second life: a fresh Server over the same directory, as after
	// a process restart. ResumeIncomplete must find the running manifest
	// and finish the run in the background.
	st2, err := resultstore.Open(dir)
	if err != nil {
		t.Fatalf("re-Open store: %v", err)
	}
	srv2 := New(Options{Store: st2, Pool: 1})
	n, err := srv2.ResumeIncomplete()
	if err != nil {
		t.Fatalf("ResumeIncomplete: %v", err)
	}
	if n != 1 {
		t.Fatalf("ResumeIncomplete relaunched %d runs, want 1", n)
	}
	deadline := time.Now().Add(2 * time.Minute)
	var final resultstore.RunManifest
	for {
		if m, ok := st2.GetRun(p1.runID); ok && m.Status != resultstore.RunRunning {
			final = m
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("resumed run did not complete in time")
		}
		time.Sleep(20 * time.Millisecond)
	}
	srv2.Close()

	if final.Status != resultstore.RunComplete {
		t.Fatalf("resumed run finished %q (%s), want complete", final.Status, final.Error)
	}
	// The resumed campaign's fingerprint is byte-identical to the
	// uninterrupted direct run — stored cell plus re-executed cells
	// compose to the same bytes.
	if final.FingerprintSHA256 != ref.FingerprintSHA256 {
		t.Errorf("resumed campaign fingerprint diverged from the uninterrupted run:\n got %s\nwant %s",
			final.FingerprintSHA256, ref.FingerprintSHA256)
	}
	// Exactly the pre-crash cell was served from the store; the rest
	// executed. Hits are process-local to the second life, so one hit ==
	// one cell NOT re-executed.
	if final.CachedCells != 1 {
		t.Errorf("resumed run served %d cells from the store, want 1", final.CachedCells)
	}
	stats := st2.Stats()
	if stats.Hits != 1 {
		t.Errorf("store hits after resume = %d, want 1 (completed cells must not re-execute)", stats.Hits)
	}
	if stats.Puts != uint64(len(p1.cellKeys)-1) {
		t.Errorf("store puts after resume = %d, want %d (only the missing cells ran)", stats.Puts, len(p1.cellKeys)-1)
	}
	// Per-cell fingerprints, stored vs reference, byte for byte.
	for i, key := range p1.cellKeys {
		rec, ok := st2.GetCell(key)
		if !ok {
			t.Fatalf("cell %d missing after resume", i)
		}
		if rec.Fingerprint != ref.Results[i].Fingerprint {
			t.Errorf("cell %d fingerprint diverged after resume (scenario %s seed %d)",
				i, rec.Scenario, rec.Seed)
		}
	}

	// --- Third life: nothing to resume, everything cached. A fresh
	// server finds no running manifests, and re-submitting the campaign
	// touches no fleet at all.
	st3, err := resultstore.Open(dir)
	if err != nil {
		t.Fatalf("re-Open store: %v", err)
	}
	srv3 := New(Options{Store: st3, Pool: 1})
	defer srv3.Close()
	if n, err := srv3.ResumeIncomplete(); err != nil || n != 0 {
		t.Fatalf("third-life ResumeIncomplete = %d, %v; want 0 runs", n, err)
	}
	p3, err := srv3.plan(scens, seeds, 0, 1)
	if err != nil {
		t.Fatalf("plan: %v", err)
	}
	rep, err := srv3.launch(p3, nil)
	if err != nil {
		t.Fatalf("fully-cached rerun: %v", err)
	}
	if rep.CachedCells != len(p1.cellKeys) {
		t.Errorf("fully-cached rerun executed %d cells", len(p1.cellKeys)-rep.CachedCells)
	}
	if rep.FingerprintSHA256 != ref.FingerprintSHA256 {
		t.Errorf("fully-cached rerun fingerprint diverged")
	}
}
