package campaignd

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"uniserver/internal/resultstore"
	"uniserver/internal/scenario"
)

// testGrid is the small scenario grid the API tests submit: two
// presets scaled down to 4 fast cells.
func testGrid() ([]scenario.Scenario, []uint64) {
	return []scenario.Scenario{
		scenario.Baseline().Scale(2, 6),
		scenario.ModeChurn().Scale(2, 6),
	}, []uint64{11, 12}
}

// referenceReport runs the test grid directly on scenario.RunCampaign —
// the one-shot CLI path — for fingerprint comparison against serve
// mode.
func referenceReport(t *testing.T) scenario.Report {
	t.Helper()
	scens, seeds := testGrid()
	rep, err := scenario.RunCampaign(scenario.Campaign{Scenarios: scens, Seeds: seeds, Parallel: 1})
	if err != nil {
		t.Fatalf("reference campaign: %v", err)
	}
	return rep
}

func newTestServer(t *testing.T, pool int) (*Server, *httptest.Server) {
	t.Helper()
	st, err := resultstore.Open(t.TempDir())
	if err != nil {
		t.Fatalf("Open store: %v", err)
	}
	srv := New(Options{Store: st, Pool: pool})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, ts
}

// submit posts body to the campaign endpoint and decodes the NDJSON
// stream.
func submit(t *testing.T, ts *httptest.Server, body string) (int, []event) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/api/v1/campaigns", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /api/v1/campaigns: %v", err)
	}
	defer resp.Body.Close()
	var events []event
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var ev event
		if err := json.Unmarshal(line, &ev); err != nil {
			t.Fatalf("stream line is not JSON: %q: %v", line, err)
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("reading stream: %v", err)
	}
	return resp.StatusCode, events
}

// inlineSubmission renders the test grid as an inline-scenario
// submission (no preset rescaling ambiguity, byte-stable).
func inlineSubmission(t *testing.T) string {
	t.Helper()
	scens, seeds := testGrid()
	body, err := json.Marshal(SubmitRequest{Scenarios: scens, Seeds: seeds, Parallel: 1})
	if err != nil {
		t.Fatalf("marshaling submission: %v", err)
	}
	return string(body)
}

// TestSubmitStreamFetchRoundTrip drives the full API path: submit a
// campaign, watch the NDJSON stream, then fetch the run manifest, a
// cell record, and the store stats — and pin the streamed fingerprint
// against the direct scenario.RunCampaign path (serve mode must be
// byte-identical to the CLI).
func TestSubmitStreamFetchRoundTrip(t *testing.T) {
	ref := referenceReport(t)
	_, ts := newTestServer(t, 1)

	code, events := submit(t, ts, inlineSubmission(t))
	if code != http.StatusOK {
		t.Fatalf("submit status = %d, want 200", code)
	}
	if len(events) != 6 { // run + 4 cells + done
		t.Fatalf("stream has %d events, want 6: %+v", len(events), events)
	}
	if events[0].Type != "run" || events[0].Cells != 4 || events[0].RunID == "" {
		t.Fatalf("first event = %+v, want a run header with 4 cells", events[0])
	}
	for _, ev := range events[1:5] {
		if ev.Type != "cell" || ev.FingerprintSHA256 == "" || ev.Err != "" || ev.Summary == nil {
			t.Fatalf("cell event malformed: %+v", ev)
		}
	}
	done := events[5]
	if done.Type != "done" || done.Status != "complete" {
		t.Fatalf("last event = %+v, want done/complete", done)
	}
	if done.FingerprintSHA256 != ref.FingerprintSHA256 {
		t.Errorf("served campaign fingerprint diverged from the direct run:\n got %s\nwant %s",
			done.FingerprintSHA256, ref.FingerprintSHA256)
	}
	if done.Store == nil || done.Store.Puts != 4 {
		t.Errorf("done store stats = %+v, want 4 puts", done.Store)
	}

	// Fetch the run by ID: completed manifest with the full report.
	var m resultstore.RunManifest
	getJSON(t, ts, "/api/v1/runs/"+done.RunID, &m)
	if m.Status != resultstore.RunComplete || m.Report == nil {
		t.Fatalf("run manifest = status %q report %v, want complete with report", m.Status, m.Report != nil)
	}
	if m.FingerprintSHA256 != ref.FingerprintSHA256 {
		t.Errorf("manifest fingerprint diverged from the direct run")
	}
	if len(m.CellKeys) != 4 {
		t.Fatalf("manifest has %d cell keys, want 4", len(m.CellKeys))
	}

	// Fetch one cell by key: a full record whose fingerprint hash
	// matches the reference cell.
	var rec resultstore.CellRecord
	getJSON(t, ts, "/api/v1/cells/"+m.CellKeys[0], &rec)
	if rec.FingerprintSHA256 != ref.Results[0].FingerprintSHA256 {
		t.Errorf("stored cell 0 fingerprint diverged from the direct run")
	}

	// The run listing includes it; the store endpoint counts its cells.
	var rows []map[string]any
	getJSON(t, ts, "/api/v1/runs", &rows)
	if len(rows) != 1 || rows[0]["id"] != done.RunID {
		t.Errorf("run listing = %v, want the one run", rows)
	}
	var storeInfo struct {
		Cells int `json:"cells"`
	}
	getJSON(t, ts, "/api/v1/store", &storeInfo)
	if storeInfo.Cells != 4 {
		t.Errorf("store reports %d cells, want 4", storeInfo.Cells)
	}

	// Re-submitting the identical campaign serves every cell from the
	// store: zero executions, identical fingerprint.
	_, events2 := submit(t, ts, inlineSubmission(t))
	done2 := events2[len(events2)-1]
	if done2.Status != "complete" || done2.CachedCells != 4 {
		t.Fatalf("re-submit done = %+v, want complete with 4 cached cells", done2)
	}
	if done2.FingerprintSHA256 != ref.FingerprintSHA256 {
		t.Errorf("cache-served campaign fingerprint diverged")
	}
	if done2.RunID != done.RunID {
		t.Errorf("identical submission landed on a different run ID (content addressing broke)")
	}
}

func getJSON(t *testing.T, ts *httptest.Server, path string, v any) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s status = %d, want 200", path, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("decoding %s: %v", path, err)
	}
}

// TestSubmitRejectsMalformedRequests: every malformed submission is a
// 400 with a JSON error naming the problem — and never reaches the
// engine.
func TestSubmitRejectsMalformedRequests(t *testing.T) {
	_, ts := newTestServer(t, 1)
	cases := []struct {
		name, body, wantErr string
	}{
		{"bad preset", `{"presets":["no-such-preset"],"seeds":[1]}`, "unknown preset"},
		{"zero seeds", `{"presets":["baseline"],"seeds":[]}`, "no seeds"},
		{"missing seeds", `{"presets":["baseline"]}`, "no seeds"},
		{"negative shards", `{"presets":["baseline"],"seeds":[1],"shards":-2}`, "negative shards"},
		{"no scenarios", `{"seeds":[1]}`, "no scenarios"},
		{"unknown field", `{"presets":["baseline"],"seeds":[1],"bogus":true}`, "unknown field"},
		{"not json", `{{{`, "decoding"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Post(ts.URL+"/api/v1/campaigns", "application/json", strings.NewReader(tc.body))
			if err != nil {
				t.Fatalf("POST: %v", err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status = %d, want 400", resp.StatusCode)
			}
			var e struct {
				Error string `json:"error"`
			}
			if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
				t.Fatalf("error body is not JSON: %v", err)
			}
			if !strings.Contains(e.Error, tc.wantErr) {
				t.Errorf("error = %q, want it to mention %q", e.Error, tc.wantErr)
			}
		})
	}

	// Unknown run and cell lookups are 404s.
	for _, path := range []string{"/api/v1/runs/r0000000000000000", "/api/v1/cells/deadbeef"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s status = %d, want 404", path, resp.StatusCode)
		}
	}
}

// TestConcurrentSubmissionsShareOneStore submits two different
// campaigns concurrently against one server (and one store) and checks
// both complete with the fingerprints their direct runs produce — the
// shared pool and the shared store must not let the runs interfere.
// Meaningful under -race.
func TestConcurrentSubmissionsShareOneStore(t *testing.T) {
	scens, _ := testGrid()
	mkBody := func(seed uint64) string {
		body, err := json.Marshal(SubmitRequest{Scenarios: scens, Seeds: []uint64{seed}, Parallel: 2})
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		return string(body)
	}
	refFor := func(seed uint64) string {
		rep, err := scenario.RunCampaign(scenario.Campaign{Scenarios: scens, Seeds: []uint64{seed}})
		if err != nil {
			t.Fatalf("reference campaign seed %d: %v", seed, err)
		}
		return rep.FingerprintSHA256
	}
	wantA, wantB := refFor(21), refFor(22)

	_, ts := newTestServer(t, 2)
	var wg sync.WaitGroup
	got := make([]event, 2)
	for i, seed := range []uint64{21, 22} {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, events := submit(t, ts, mkBody(seed))
			got[i] = events[len(events)-1]
		}()
	}
	wg.Wait()

	for i, want := range []string{wantA, wantB} {
		if got[i].Status != "complete" {
			t.Fatalf("submission %d finished %q (%s), want complete", i, got[i].Status, got[i].Err)
		}
		if got[i].FingerprintSHA256 != want {
			t.Errorf("submission %d fingerprint diverged from its direct run", i)
		}
	}
	if got[0].RunID == got[1].RunID {
		t.Errorf("different submissions landed on the same run ID")
	}

	// Both runs' manifests are complete in the shared store.
	var rows []map[string]any
	getJSON(t, ts, "/api/v1/runs", &rows)
	if len(rows) != 2 {
		t.Fatalf("run listing has %d rows, want 2", len(rows))
	}
	for _, r := range rows {
		if r["status"] != resultstore.RunComplete {
			t.Errorf("run %v status = %v, want complete", r["id"], r["status"])
		}
	}
}

// TestDuplicateConcurrentSubmissionRefused: the same campaign submitted
// twice at once executes once; the duplicate is told the run is already
// executing rather than racing it on the same manifest.
func TestDuplicateConcurrentSubmissionRefused(t *testing.T) {
	srv, _ := newTestServer(t, 1)
	scens, seeds := testGrid()
	p, err := srv.plan(scens, seeds, 0, 1)
	if err != nil {
		t.Fatalf("plan: %v", err)
	}
	if !srv.tryActivate(p.runID) {
		t.Fatalf("fresh run ID already active")
	}
	defer srv.deactivate(p.runID)
	if _, err := srv.launch(p, nil); err != errAlreadyRunning {
		t.Fatalf("duplicate launch error = %v, want errAlreadyRunning", err)
	}
}

// TestHealthz pins the liveness endpoint CI polls while waiting for
// the server to come up.
func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, 1)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatalf("GET /healthz: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz status = %d, want 200", resp.StatusCode)
	}
}
