package campaignd

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"

	"uniserver/internal/resultstore"
	"uniserver/internal/scenario"
)

// SubmitRequest is the JSON body of POST /api/v1/campaigns. A
// submission names its grid either by preset (Presets, with optional
// Nodes/Windows rescaling) or inline (Scenarios, full declarations);
// the two can mix. Seeds is required. Shards, FleetWorkers and
// Parallel are execution knobs — they shape wall-clock and memory,
// never results, and never the run's identity.
type SubmitRequest struct {
	// Presets names bundled scenario presets ("aging-year", "baseline",
	// …, or "all" for the whole catalogue).
	Presets []string `json:"presets,omitempty"`
	// Scenarios carries inline scenario declarations, validated exactly
	// like preset-derived ones.
	Scenarios []scenario.Scenario `json:"scenarios,omitempty"`
	Seeds     []uint64            `json:"seeds"`

	// Nodes/Windows rescale preset scenarios (inline scenarios are
	// taken as declared); 0 keeps the preset size.
	Nodes   int `json:"nodes,omitempty"`
	Windows int `json:"windows,omitempty"`
	// Shards overrides each scenario's population shard count
	// (execution knob: canonicalized out of the content address).
	Shards int `json:"shards,omitempty"`

	FleetWorkers int `json:"fleet_workers,omitempty"`
	Parallel     int `json:"parallel,omitempty"`
}

// resolve turns the submission into the concrete scenario grid,
// rejecting malformed requests with errors suitable for a 400.
func (r SubmitRequest) resolve() ([]scenario.Scenario, error) {
	var scens []scenario.Scenario
	for _, name := range r.Presets {
		name = strings.TrimSpace(name)
		if name == "all" {
			for _, s := range scenario.Presets() {
				scens = append(scens, s)
			}
			continue
		}
		s, err := scenario.ByName(name)
		if err != nil {
			return nil, err
		}
		scens = append(scens, s)
	}
	if r.Nodes > 0 || r.Windows > 0 {
		for i, s := range scens {
			scens[i] = s.Scale(r.Nodes, r.Windows)
		}
	}
	scens = append(scens, r.Scenarios...)
	if len(scens) == 0 {
		return nil, fmt.Errorf("campaignd: submission names no scenarios (set presets or scenarios)")
	}
	if len(r.Seeds) == 0 {
		return nil, fmt.Errorf("campaignd: submission has no seeds")
	}
	if r.Shards < 0 {
		return nil, fmt.Errorf("campaignd: negative shards (%d)", r.Shards)
	}
	for i := range scens {
		if r.Shards > 0 {
			scens[i].Shards = r.Shards
		}
		if err := scens[i].Validate(); err != nil {
			return nil, err
		}
	}
	return scens, nil
}

// event is one NDJSON line of the submit stream. Type is "run" (first
// line: the run's identity and grid size), "cell" (one finished cell,
// completion order), or "done" (last line: final status, campaign
// fingerprint, store traffic).
type event struct {
	Type string `json:"type"`

	// run
	RunID string `json:"run_id,omitempty"`
	Cells int    `json:"cells,omitempty"`

	// cell
	GridIndex int    `json:"grid_index,omitempty"`
	Scenario  string `json:"scenario,omitempty"`
	Seed      uint64 `json:"seed,omitempty"`
	// Cached marks a cell served from the result store.
	Cached            bool         `json:"cached,omitempty"`
	FingerprintSHA256 string       `json:"fingerprint_sha256,omitempty"`
	Err               string       `json:"error,omitempty"`
	Summary           *cellSummary `json:"summary,omitempty"`

	// done
	Status        string             `json:"status,omitempty"`
	CachedCells   int                `json:"cached_cells,omitempty"`
	CanceledCells int                `json:"canceled_cells,omitempty"`
	Store         *resultstore.Stats `json:"store,omitempty"`
}

// cellSummary is the per-cell stream excerpt: the headline metrics,
// not the full fleet summary (fetch the cell record for that).
type cellSummary struct {
	MeanAvailability float64 `json:"mean_availability"`
	EnergyKWh        float64 `json:"energy_kwh"`
	Crashes          int     `json:"crashes"`
}

// Handler returns the service's HTTP API:
//
//	POST /api/v1/campaigns    submit a campaign; streams NDJSON events
//	GET  /api/v1/runs         list run manifests
//	GET  /api/v1/runs/{id}    one run manifest (report included when complete)
//	GET  /api/v1/cells/{key}  one stored cell record
//	GET  /api/v1/store        store stats and cell count
//	GET  /healthz             liveness
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /api/v1/campaigns", s.handleSubmit)
	mux.HandleFunc("GET /api/v1/runs", s.handleRuns)
	mux.HandleFunc("GET /api/v1/runs/{id}", s.handleRun)
	mux.HandleFunc("GET /api/v1/cells/{key}", s.handleCell)
	mux.HandleFunc("GET /api/v1/store", s.handleStore)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	return mux
}

func httpError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

// handleSubmit validates the submission, then runs it while streaming
// NDJSON events. The campaign runs under the SERVER's context, not the
// request's: a client that disconnects mid-stream abandons its view,
// not the run — cells keep landing in the store and the manifest
// completes. Only server shutdown interrupts execution.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SubmitRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("campaignd: decoding submission: %w", err))
		return
	}
	scens, err := req.resolve()
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	p, err := s.plan(scens, req.Seeds, req.FleetWorkers, req.Parallel)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	emit := func(ev event) {
		// Stream errors are ignored: the run outlives the client.
		enc.Encode(ev)
		if flusher != nil {
			flusher.Flush()
		}
	}

	emit(event{Type: "run", RunID: p.runID, Cells: len(p.cellKeys)})
	rep, err := s.launch(p, func(gi int, res scenario.Result) {
		emit(event{
			Type: "cell", GridIndex: gi,
			Scenario: res.Scenario, Seed: res.Seed,
			Cached: res.Cached, FingerprintSHA256: res.FingerprintSHA256, Err: res.Err,
			Summary: &cellSummary{
				MeanAvailability: res.Summary.MeanAvailability,
				EnergyKWh:        res.Summary.EnergyKWh,
				Crashes:          res.Summary.Crashes,
			},
		})
	})
	done := event{
		Type: "done", RunID: p.runID,
		CachedCells: rep.CachedCells, CanceledCells: rep.CanceledCells,
	}
	stats := s.store.Stats()
	done.Store = &stats
	switch {
	case err == errAlreadyRunning:
		done.Status = "already-running"
		done.Err = err.Error()
	case err != nil:
		done.Status = "interrupted"
		if s.ctx.Err() == nil {
			done.Status = "failed"
		}
		done.Err = err.Error()
		done.FingerprintSHA256 = rep.FingerprintSHA256
	default:
		done.Status = "complete"
		done.FingerprintSHA256 = rep.FingerprintSHA256
	}
	emit(done)
}

func (s *Server) handleRuns(w http.ResponseWriter, _ *http.Request) {
	runs, err := s.store.ListRuns()
	if err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	// The listing elides the per-cell reports — fetch a run by ID for
	// its full report.
	type runRow struct {
		ID                string `json:"id"`
		Status            string `json:"status"`
		Cells             int    `json:"cells"`
		CachedCells       int    `json:"cached_cells,omitempty"`
		FingerprintSHA256 string `json:"fingerprint_sha256,omitempty"`
		Error             string `json:"error,omitempty"`
	}
	rows := make([]runRow, 0, len(runs))
	for _, m := range runs {
		rows = append(rows, runRow{
			ID: m.ID, Status: m.Status, Cells: len(m.CellKeys),
			CachedCells: m.CachedCells, FingerprintSHA256: m.FingerprintSHA256, Error: m.Error,
		})
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(rows)
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	m, ok := s.store.GetRun(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("campaignd: unknown run %q", r.PathValue("id")))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(m)
}

func (s *Server) handleCell(w http.ResponseWriter, r *http.Request) {
	rec, ok := s.store.GetCell(r.PathValue("key"))
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("campaignd: no cell %q", r.PathValue("key")))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(rec)
}

func (s *Server) handleStore(w http.ResponseWriter, _ *http.Request) {
	n, err := s.store.CellCount()
	if err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(struct {
		Dir   string            `json:"dir"`
		Cells int               `json:"cells"`
		Stats resultstore.Stats `json:"stats"`
	}{s.store.Dir(), n, s.store.Stats()})
}
