package resultstore

import (
	"fmt"
	"io"

	"uniserver/internal/scenario"
)

// DiffOptions tune the regression thresholds. Zero values mean the
// defaults: an availability drop of more than 0.0005 or an energy
// increase of more than 2% flags a regression.
type DiffOptions struct {
	AvailEps  float64
	EnergyPct float64
}

func (o DiffOptions) withDefaults() DiffOptions {
	if o.AvailEps == 0 {
		o.AvailEps = 0.0005
	}
	if o.EnergyPct == 0 {
		o.EnergyPct = 2.0
	}
	return o
}

// DiffRow compares one scenario's aggregate row across two runs.
type DiffRow struct {
	Scenario string `json:"scenario"`

	// Present flags: a scenario may exist in only one run.
	InA bool `json:"in_a"`
	InB bool `json:"in_b"`

	// FingerprintMatch reports whether the scenario row's fingerprint
	// hash is byte-identical across the runs. For runs of the same
	// request this is the determinism contract; for intentionally
	// different requests a mismatch is expected and informational.
	FingerprintMatch bool `json:"fingerprint_match"`

	AvailA     float64 `json:"avail_a"`
	AvailB     float64 `json:"avail_b"`
	AvailDelta float64 `json:"avail_delta"`

	EnergyKWhA     float64 `json:"energy_kwh_a"`
	EnergyKWhB     float64 `json:"energy_kwh_b"`
	EnergyDeltaPct float64 `json:"energy_delta_pct"`

	SavedWhA float64 `json:"saved_wh_a"`
	SavedWhB float64 `json:"saved_wh_b"`

	FailedA int `json:"failed_a,omitempty"`
	FailedB int `json:"failed_b,omitempty"`

	// Flags carry everything noteworthy about the row:
	// "fingerprint-changed" (informational) and the regression class —
	// "availability-regression", "energy-regression", "new-failures",
	// "missing-in-b".
	Flags []string `json:"flags,omitempty"`
}

// DiffReport is the run-over-run comparison `uniserver diff` prints
// and CI archives.
type DiffReport struct {
	RunA string `json:"run_a"`
	RunB string `json:"run_b"`

	FingerprintA string `json:"fingerprint_a"`
	FingerprintB string `json:"fingerprint_b"`
	// Match reports whole-campaign fingerprint identity — true exactly
	// when the two runs computed byte-identical grids.
	Match bool `json:"match"`

	Rows []DiffRow `json:"rows"`

	// Regressions lists "scenario: flag" for every regression-class
	// row flag; empty means run B is no worse than run A under the
	// thresholds.
	Regressions []string `json:"regressions,omitempty"`
}

// DiffRuns compares two completed runs scenario row by scenario row.
// Both manifests must carry their reports (status complete or failed
// with a partial report).
func DiffRuns(a, b RunManifest, opts DiffOptions) (DiffReport, error) {
	opts = opts.withDefaults()
	if a.Report == nil {
		return DiffReport{}, fmt.Errorf("resultstore: run %s has no report (status %s); diff needs completed runs", a.ID, a.Status)
	}
	if b.Report == nil {
		return DiffReport{}, fmt.Errorf("resultstore: run %s has no report (status %s); diff needs completed runs", b.ID, b.Status)
	}
	rep := DiffReport{
		RunA:         a.ID,
		RunB:         b.ID,
		FingerprintA: a.Report.FingerprintSHA256,
		FingerprintB: b.Report.FingerprintSHA256,
	}
	rep.Match = rep.FingerprintA == rep.FingerprintB && rep.FingerprintA != ""

	rowsB := map[string]scenario.ScenarioReport{}
	for _, sr := range b.Report.Scenarios {
		rowsB[sr.Scenario] = sr
	}
	seen := map[string]bool{}
	for _, ra := range a.Report.Scenarios {
		seen[ra.Scenario] = true
		row := DiffRow{Scenario: ra.Scenario, InA: true}
		row.AvailA, row.EnergyKWhA, row.SavedWhA, row.FailedA = ra.MeanAvailability, ra.EnergyKWh, ra.EnergySavedWh, ra.Failed
		rb, ok := rowsB[ra.Scenario]
		if !ok {
			row.Flags = append(row.Flags, "missing-in-b")
			rep.Regressions = append(rep.Regressions, ra.Scenario+": missing-in-b")
			rep.Rows = append(rep.Rows, row)
			continue
		}
		row.InB = true
		row.AvailB, row.EnergyKWhB, row.SavedWhB, row.FailedB = rb.MeanAvailability, rb.EnergyKWh, rb.EnergySavedWh, rb.Failed
		row.AvailDelta = rb.MeanAvailability - ra.MeanAvailability
		if ra.EnergyKWh != 0 {
			row.EnergyDeltaPct = (rb.EnergyKWh - ra.EnergyKWh) / ra.EnergyKWh * 100
		}
		row.FingerprintMatch = ra.FingerprintSHA256 == rb.FingerprintSHA256
		if !row.FingerprintMatch {
			row.Flags = append(row.Flags, "fingerprint-changed")
		}
		if -row.AvailDelta > opts.AvailEps {
			row.Flags = append(row.Flags, "availability-regression")
			rep.Regressions = append(rep.Regressions, ra.Scenario+": availability-regression")
		}
		if row.EnergyDeltaPct > opts.EnergyPct {
			row.Flags = append(row.Flags, "energy-regression")
			rep.Regressions = append(rep.Regressions, ra.Scenario+": energy-regression")
		}
		if rb.Failed > ra.Failed {
			row.Flags = append(row.Flags, "new-failures")
			rep.Regressions = append(rep.Regressions, ra.Scenario+": new-failures")
		}
		rep.Rows = append(rep.Rows, row)
	}
	for _, rb := range b.Report.Scenarios {
		if seen[rb.Scenario] {
			continue
		}
		rep.Rows = append(rep.Rows, DiffRow{
			Scenario: rb.Scenario,
			InB:      true,
			AvailB:   rb.MeanAvailability, EnergyKWhB: rb.EnergyKWh, SavedWhB: rb.EnergySavedWh, FailedB: rb.Failed,
			Flags: []string{"missing-in-a"},
		})
	}
	return rep, nil
}

// WriteText renders the diff as the human-readable table the CLI
// prints.
func (d DiffReport) WriteText(w io.Writer) error {
	match := "MISMATCH"
	if d.Match {
		match = "match"
	}
	if _, err := fmt.Fprintf(w, "run %s vs %s — campaign fingerprints %s\n", d.RunA, d.RunB, match); err != nil {
		return err
	}
	fmt.Fprintf(w, "%-16s %9s %9s %8s %9s %9s %8s %5s  %s\n",
		"SCENARIO", "AVAIL_A", "AVAIL_B", "ΔAVAIL", "KWH_A", "KWH_B", "ΔKWH%", "FP", "FLAGS")
	for _, r := range d.Rows {
		fp := "≠"
		if r.FingerprintMatch {
			fp = "="
		}
		flags := "-"
		if len(r.Flags) > 0 {
			flags = fmt.Sprintf("%v", r.Flags)
		}
		fmt.Fprintf(w, "%-16s %9.4f %9.4f %+8.4f %9.3f %9.3f %+8.2f %5s  %s\n",
			r.Scenario, r.AvailA, r.AvailB, r.AvailDelta, r.EnergyKWhA, r.EnergyKWhB, r.EnergyDeltaPct, fp, flags)
	}
	if len(d.Regressions) > 0 {
		fmt.Fprintf(w, "REGRESSIONS (%d):\n", len(d.Regressions))
		for _, s := range d.Regressions {
			fmt.Fprintf(w, "  %s\n", s)
		}
	} else {
		fmt.Fprintln(w, "no regressions")
	}
	return nil
}
