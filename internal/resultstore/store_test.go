package resultstore

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"uniserver/internal/scenario"
)

// testRecord builds a small, internally consistent cell record.
func testRecord(t *testing.T) CellRecord {
	t.Helper()
	s := scenario.Baseline().Scale(2, 4)
	key, canonical, err := CellKey(s, 7)
	if err != nil {
		t.Fatalf("CellKey: %v", err)
	}
	fp := "nodes=2 windows=4 crashes=0\nuniserver-00 seed=7\n"
	return CellRecord{
		Key:               key,
		Scenario:          s.Name,
		Seed:              7,
		Request:           canonical,
		Fingerprint:       fp,
		FingerprintSHA256: sha256Hex(fp),
	}
}

func TestCellRoundTrip(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	rec := testRecord(t)
	if _, ok := st.GetCell(rec.Key); ok {
		t.Fatalf("empty store served a cell")
	}
	if err := st.PutCell(rec); err != nil {
		t.Fatalf("PutCell: %v", err)
	}
	got, ok := st.GetCell(rec.Key)
	if !ok {
		t.Fatalf("GetCell missed a stored key")
	}
	if !reflect.DeepEqual(got, rec) {
		t.Errorf("round trip diverged:\n got %+v\nwant %+v", got, rec)
	}
	stats := st.Stats()
	if stats.Hits != 1 || stats.Misses != 1 || stats.Puts != 1 || stats.Quarantined != 0 {
		t.Errorf("stats = %+v, want 1 hit / 1 miss / 1 put / 0 quarantined", stats)
	}
}

// TestCellKeyCanonicalization pins what the content address does and
// does not depend on: execution knobs that never change results
// (Shards) are canonicalized out; everything result-bearing — the
// seed, the declaration, the Archetypes experiment switch — splits
// the key.
func TestCellKeyCanonicalization(t *testing.T) {
	base := scenario.Baseline().Scale(2, 4)
	key0, _, err := CellKey(base, 7)
	if err != nil {
		t.Fatalf("CellKey: %v", err)
	}

	sharded := base
	sharded.Shards = 4
	if key, _, _ := CellKey(sharded, 7); key != key0 {
		t.Errorf("shard count split the content address (shards never change results)")
	}
	if key, _, _ := CellKey(base, 8); key == key0 {
		t.Errorf("seed did not split the content address")
	}
	arch := base
	arch.Archetypes = true
	if key, _, _ := CellKey(arch, 7); key == key0 {
		t.Errorf("Archetypes did not split the content address (it is a different experiment)")
	}
	wider := base.Scale(3, 0)
	if key, _, _ := CellKey(wider, 7); key == key0 {
		t.Errorf("node count did not split the content address")
	}
}

// TestTornFileRecovery: a truncated record — a torn write from a
// crashed process — must be quarantined and reported as a miss, never
// returned and never crashed on, and the slot must accept a fresh put.
func TestTornFileRecovery(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	rec := testRecord(t)
	if err := st.PutCell(rec); err != nil {
		t.Fatalf("PutCell: %v", err)
	}

	// Tear the record: keep the first half of the bytes.
	path := filepath.Join(dir, "cells", rec.Key+".json")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading record: %v", err)
	}
	if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
		t.Fatalf("tearing record: %v", err)
	}

	if _, ok := st.GetCell(rec.Key); ok {
		t.Fatalf("torn record served as a hit")
	}
	if st.Stats().Quarantined != 1 {
		t.Errorf("quarantined = %d, want 1", st.Stats().Quarantined)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Errorf("torn record still in place after quarantine")
	}
	if _, err := os.Stat(filepath.Join(dir, "quarantine", rec.Key+".json")); err != nil {
		t.Errorf("torn record not preserved in quarantine: %v", err)
	}

	// The slot must recover: re-put and re-read.
	if err := st.PutCell(rec); err != nil {
		t.Fatalf("re-put after quarantine: %v", err)
	}
	if got, ok := st.GetCell(rec.Key); !ok || got.Fingerprint != rec.Fingerprint {
		t.Errorf("slot did not recover after quarantine")
	}
}

// TestCorruptedFingerprintQuarantined: a record whose bytes parse but
// whose fingerprint hash does not match its fingerprint — bit rot, or
// a hand-edited file — fails integrity checking the same way.
func TestCorruptedFingerprintQuarantined(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	rec := testRecord(t)
	if err := st.PutCell(rec); err != nil {
		t.Fatalf("PutCell: %v", err)
	}
	path := filepath.Join(dir, "cells", rec.Key+".json")
	data, _ := os.ReadFile(path)
	tampered := strings.Replace(string(data), "crashes=0", "crashes=9", 1)
	if tampered == string(data) {
		t.Fatal("tamper target not found in record")
	}
	if err := os.WriteFile(path, []byte(tampered), 0o644); err != nil {
		t.Fatalf("tampering record: %v", err)
	}
	if _, ok := st.GetCell(rec.Key); ok {
		t.Fatalf("tampered record served as a hit")
	}
	if st.Stats().Quarantined != 1 {
		t.Errorf("quarantined = %d, want 1", st.Stats().Quarantined)
	}
}

// TestVersionMismatchRefusal mirrors the characterization cache's
// contract (TestSnapshotDiskRoundTrip): a store directory stamped by
// a different format version is refused at Open, loudly.
func TestVersionMismatchRefusal(t *testing.T) {
	dir := t.TempDir()
	if _, err := Open(dir); err != nil {
		t.Fatalf("first Open: %v", err)
	}
	if err := os.WriteFile(filepath.Join(dir, "VERSION"), []byte("999\n"), 0o644); err != nil {
		t.Fatalf("restamping: %v", err)
	}
	if _, err := Open(dir); err == nil {
		t.Fatalf("Open accepted a version-999 store")
	} else if !strings.Contains(err.Error(), "version 999") {
		t.Errorf("refusal does not name the offending version: %v", err)
	}
}

func TestRunManifestRoundTrip(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	s := scenario.Baseline().Scale(2, 4)
	keyA, _, _ := CellKey(s, 1)
	keyB, _, _ := CellKey(s, 2)
	m := RunManifest{
		ID:        RunID([]string{keyA, keyB}),
		Status:    RunRunning,
		Scenarios: []scenario.Scenario{s},
		Seeds:     []uint64{1, 2},
		CellKeys:  []string{keyA, keyB},
	}
	if err := st.PutRun(m); err != nil {
		t.Fatalf("PutRun: %v", err)
	}
	got, ok := st.GetRun(m.ID)
	if !ok {
		t.Fatalf("GetRun missed a stored manifest")
	}
	if got.Status != RunRunning || len(got.CellKeys) != 2 || len(got.Scenarios) != 1 {
		t.Errorf("manifest round trip diverged: %+v", got)
	}
	// The resolved scenario must survive the JSON round trip exactly —
	// resume re-runs from these bytes.
	if !reflect.DeepEqual(got.Scenarios[0], s) {
		t.Errorf("scenario did not survive the manifest round trip:\n got %+v\nwant %+v", got.Scenarios[0], s)
	}
	runs, err := st.ListRuns()
	if err != nil || len(runs) != 1 || runs[0].ID != m.ID {
		t.Errorf("ListRuns = %v, %v; want the one manifest", runs, err)
	}

	// RunID is content-derived and order-sensitive.
	if RunID([]string{keyA, keyB}) != m.ID {
		t.Errorf("RunID not stable")
	}
	if RunID([]string{keyB, keyA}) == m.ID {
		t.Errorf("RunID ignores grid order")
	}
}

// TestDiffRuns exercises the comparison: identical runs match with no
// regressions; a degraded run flags availability/energy regressions
// and fingerprint changes.
func TestDiffRuns(t *testing.T) {
	repA := &scenario.Report{
		FingerprintSHA256: "aaaa",
		Scenarios: []scenario.ScenarioReport{
			{Scenario: "baseline", MeanAvailability: 0.999, EnergyKWh: 10, FingerprintSHA256: "fa"},
			{Scenario: "mode-churn", MeanAvailability: 0.99, EnergyKWh: 12, FingerprintSHA256: "fb"},
		},
	}
	a := RunManifest{ID: "ra", Status: RunComplete, Report: repA}
	same, err := DiffRuns(a, a, DiffOptions{})
	if err != nil {
		t.Fatalf("DiffRuns: %v", err)
	}
	if !same.Match || len(same.Regressions) != 0 {
		t.Errorf("self-diff reported differences: %+v", same)
	}

	repB := &scenario.Report{
		FingerprintSHA256: "bbbb",
		Scenarios: []scenario.ScenarioReport{
			{Scenario: "baseline", MeanAvailability: 0.99, EnergyKWh: 11, FingerprintSHA256: "fc"},
			{Scenario: "mode-churn", MeanAvailability: 0.99, EnergyKWh: 12, FingerprintSHA256: "fb"},
		},
	}
	b := RunManifest{ID: "rb", Status: RunComplete, Report: repB}
	d, err := DiffRuns(a, b, DiffOptions{})
	if err != nil {
		t.Fatalf("DiffRuns: %v", err)
	}
	if d.Match {
		t.Errorf("diverged runs reported as matching")
	}
	var baseRow DiffRow
	for _, r := range d.Rows {
		if r.Scenario == "baseline" {
			baseRow = r
		}
	}
	wantFlags := []string{"fingerprint-changed", "availability-regression", "energy-regression"}
	if !reflect.DeepEqual(baseRow.Flags, wantFlags) {
		t.Errorf("baseline flags = %v, want %v", baseRow.Flags, wantFlags)
	}
	if len(d.Regressions) != 2 {
		t.Errorf("regressions = %v, want availability + energy", d.Regressions)
	}

	// Runs without reports are refused.
	if _, err := DiffRuns(RunManifest{ID: "rx", Status: RunRunning}, a, DiffOptions{}); err == nil {
		t.Errorf("diff accepted a report-less run")
	}
}

// TestManifestReportJSONStable guards the manifest's report embedding:
// a round-tripped report keeps its fingerprint and row hashes (the
// fields diff reads).
func TestManifestReportJSONStable(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	rep := &scenario.Report{
		FingerprintSHA256: "cafe",
		Scenarios: []scenario.ScenarioReport{
			{Scenario: "baseline", MeanAvailability: 0.5, FingerprintSHA256: "f00d"},
		},
	}
	m := RunManifest{ID: "rz", Status: RunComplete, FingerprintSHA256: "cafe", Report: rep}
	if err := st.PutRun(m); err != nil {
		t.Fatalf("PutRun: %v", err)
	}
	got, ok := st.GetRun("rz")
	if !ok || got.Report == nil {
		t.Fatalf("manifest with report did not round trip")
	}
	a, _ := json.Marshal(rep)
	b, _ := json.Marshal(got.Report)
	if string(a) != string(b) {
		t.Errorf("embedded report changed across the round trip:\n got %s\nwant %s", b, a)
	}
}
