// Package resultstore is the persistent, content-addressed campaign
// result store behind `uniserver serve`, `uniserver diff` and the
// CLI's -result-store flag: one record per (scenario, seed) campaign
// cell, keyed by the sha256 of the cell's canonical request, plus one
// manifest per campaign run, all under a versioned directory written
// atomically.
//
// Content addressing is sound because the fleet engine is
// deterministic: a cell's canonical request — the resolved Scenario
// declaration (execution knobs excluded) and the seed — fully
// determines its fingerprint, so a stored record is byte-identical to
// what re-running the cell would produce, and a campaign interrupted
// at any cell boundary resumes by serving completed cells from the
// store and executing only the missing ones.
//
// The store never trusts its own bytes: every read re-derives the
// record's fingerprint hash and checks it (and the content address)
// against what the file claims. A torn, truncated or corrupted record
// — a crash mid-write on a filesystem without atomic rename, a flipped
// bit — is quarantined and reported as a miss, never returned and
// never crashed on; the cell simply re-runs and overwrites it.
package resultstore

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"

	"uniserver/internal/fleet"
	"uniserver/internal/scenario"
)

// FormatVersion identifies the store's on-disk record encoding. The
// directory is stamped with it on creation; opening a directory
// stamped with any other version is refused (mirroring the
// characterization snapshot cache), because silently mixing record
// layouts would corrupt cross-run comparisons rather than merely miss.
const FormatVersion = 1

const (
	versionFile   = "VERSION"
	cellsDir      = "cells"
	runsDir       = "runs"
	quarantineDir = "quarantine"
	charactSubdir = "charact"
)

// Store is a content-addressed on-disk result store. It is safe for
// concurrent use by any number of goroutines and — because every write
// is a whole-file atomic rename of content that is a pure function of
// its key — by any number of processes sharing the directory.
type Store struct {
	dir string

	hits, misses, puts, quarantined atomic.Uint64
}

// Open roots a store at dir, creating and version-stamping it if
// needed. A directory stamped by a different format version is
// refused: clear it or point the store elsewhere.
func Open(dir string) (*Store, error) {
	for _, d := range []string{dir, filepath.Join(dir, cellsDir), filepath.Join(dir, runsDir), filepath.Join(dir, quarantineDir)} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, fmt.Errorf("resultstore: creating %s: %w", d, err)
		}
	}
	vpath := filepath.Join(dir, versionFile)
	want := strconv.Itoa(FormatVersion)
	if data, err := os.ReadFile(vpath); err == nil {
		if got := strings.TrimSpace(string(data)); got != want {
			return nil, fmt.Errorf("resultstore: %s is version %s, this build writes version %s; refusing mismatched versions (clear the dir or use another)",
				dir, got, want)
		}
	} else if os.IsNotExist(err) {
		if err := os.WriteFile(vpath, []byte(want+"\n"), 0o644); err != nil {
			return nil, fmt.Errorf("resultstore: stamping %s: %w", dir, err)
		}
	} else {
		return nil, fmt.Errorf("resultstore: reading version stamp: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's root directory.
func (st *Store) Dir() string { return st.dir }

// CharactDir returns the store's characterization-snapshot spill
// directory — hand it to Campaign.CharactDir (it is created and
// version-stamped by fleet.CharactCache.AttachDir on first use), so
// resumed campaigns skip not only completed cells but also the
// pre-deployment characterizations of incomplete ones.
func (st *Store) CharactDir() string { return filepath.Join(st.dir, charactSubdir) }

// Stats counts the store's traffic: a hit is a cell served from disk,
// a miss a key not present (or quarantined), a put a record written,
// and quarantined the records integrity checking pulled aside.
type Stats struct {
	Hits        uint64 `json:"hits"`
	Misses      uint64 `json:"misses"`
	Puts        uint64 `json:"puts"`
	Quarantined uint64 `json:"quarantined,omitempty"`
}

// Stats returns the store's counters (process-local, not persisted).
func (st *Store) Stats() Stats {
	return Stats{
		Hits:        st.hits.Load(),
		Misses:      st.misses.Load(),
		Puts:        st.puts.Load(),
		Quarantined: st.quarantined.Load(),
	}
}

// cellRequest is the canonical content a cell's address hashes: the
// format version, the seed, and the resolved scenario declaration.
type cellRequest struct {
	V        int               `json:"v"`
	Seed     uint64            `json:"seed"`
	Scenario scenario.Scenario `json:"scenario"`
}

// CellKey derives the content address of one (scenario, seed) cell:
// the hex sha256 of its canonical request JSON, plus the request bytes
// themselves (stored in the record for auditability). Execution knobs
// that never change results are canonicalized out — Shards is zeroed
// (the shard-invariance contract) — while every result-bearing field,
// Archetypes included, stays in. Two requests therefore share a record
// exactly when the determinism contract guarantees byte-identical
// results.
func CellKey(s scenario.Scenario, seed uint64) (key string, canonical []byte, err error) {
	s.Shards = 0
	canonical, err = json.Marshal(cellRequest{V: FormatVersion, Seed: seed, Scenario: s})
	if err != nil {
		return "", nil, fmt.Errorf("resultstore: canonicalizing cell request: %w", err)
	}
	sum := sha256.Sum256(canonical)
	return hex.EncodeToString(sum[:]), canonical, nil
}

// CellRecord is one stored campaign cell. Fingerprint is the full
// multi-line fleet fingerprint (what campaign-level hashes
// concatenate); FingerprintSHA256 is its hash and doubles as the
// record's integrity check.
type CellRecord struct {
	Key               string          `json:"key"`
	Scenario          string          `json:"scenario"`
	Seed              uint64          `json:"seed"`
	Request           json.RawMessage `json:"request"`
	Fingerprint       string          `json:"fingerprint"`
	FingerprintSHA256 string          `json:"fingerprint_sha256"`
	Summary           fleet.Summary   `json:"summary"`
}

func sha256Hex(s string) string {
	h := sha256.Sum256([]byte(s))
	return hex.EncodeToString(h[:])
}

// valid reports whether the record's internal integrity holds under
// the given content address.
func (r CellRecord) valid(key string) bool {
	return r.Key == key && r.Fingerprint != "" && sha256Hex(r.Fingerprint) == r.FingerprintSHA256
}

func (st *Store) cellPath(key string) string {
	return filepath.Join(st.dir, cellsDir, key+".json")
}

// PutCell writes rec atomically (temp file + rename into place), so a
// concurrent reader — or another process sharing the store — observes
// either the whole record or none of it. Re-putting a key is
// idempotent: content addressing means the bytes are equal.
func (st *Store) PutCell(rec CellRecord) error {
	if !rec.valid(rec.Key) {
		return fmt.Errorf("resultstore: refusing to store inconsistent cell record for %s.%d", rec.Scenario, rec.Seed)
	}
	if err := st.writeAtomic(st.cellPath(rec.Key), rec); err != nil {
		return err
	}
	st.puts.Add(1)
	return nil
}

// GetCell serves key from disk. Missing keys are plain misses; a
// record that fails integrity checking (torn write, truncation,
// corruption, a record filed under the wrong address) is moved to the
// quarantine directory and reported as a miss — the caller re-runs the
// cell and overwrites it, and the quarantined bytes stay available for
// post-mortem.
func (st *Store) GetCell(key string) (CellRecord, bool) {
	path := st.cellPath(key)
	data, err := os.ReadFile(path)
	if err != nil {
		st.misses.Add(1)
		return CellRecord{}, false
	}
	var rec CellRecord
	if err := json.Unmarshal(data, &rec); err != nil || !rec.valid(key) {
		st.quarantine(path)
		st.misses.Add(1)
		return CellRecord{}, false
	}
	st.hits.Add(1)
	return rec, true
}

// CellCount reports how many cell records the store holds on disk.
func (st *Store) CellCount() (int, error) {
	entries, err := os.ReadDir(filepath.Join(st.dir, cellsDir))
	if err != nil {
		return 0, fmt.Errorf("resultstore: listing cells: %w", err)
	}
	n := 0
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".json") {
			n++
		}
	}
	return n, nil
}

// quarantine moves a failed record aside (best effort — if even the
// rename fails the file is removed so the next put can land).
func (st *Store) quarantine(path string) {
	st.quarantined.Add(1)
	dst := filepath.Join(st.dir, quarantineDir, filepath.Base(path))
	if err := os.Rename(path, dst); err != nil {
		os.Remove(path)
	}
}

// Run statuses. A manifest stays RunRunning across a crash — that is
// the resume signal — and moves to RunComplete or RunFailed only when
// its campaign finishes.
const (
	RunRunning  = "running"
	RunComplete = "complete"
	RunFailed   = "failed"
)

// RunManifest is one submitted campaign: its identity, the resolved
// request (sufficient to re-run it), the cells it addresses, and — on
// completion — the full report. The ID is content-derived (RunID over
// the cell keys), so the same campaign submitted from the CLI and the
// server lands on the same manifest.
type RunManifest struct {
	ID     string `json:"id"`
	Status string `json:"status"`

	// Scenarios and Seeds are the resolved grid — presets already
	// looked up and scaled — so resume never re-interprets the
	// submission against a possibly-changed preset table.
	Scenarios []scenario.Scenario `json:"scenarios"`
	Seeds     []uint64            `json:"seeds"`
	// FleetWorkers and Parallel are execution knobs replayed on
	// resume; they never feed the run's identity.
	FleetWorkers int `json:"fleet_workers,omitempty"`
	Parallel     int `json:"parallel,omitempty"`

	CellKeys []string `json:"cell_keys"`

	// FingerprintSHA256 and Report land when the run completes.
	// CachedCells counts cells the (re)run served from the store.
	FingerprintSHA256 string           `json:"fingerprint_sha256,omitempty"`
	CachedCells       int              `json:"cached_cells,omitempty"`
	Report            *scenario.Report `json:"report,omitempty"`
	Error             string           `json:"error,omitempty"`
}

// RunID derives a run's content-addressed identity from its cell keys
// (order-sensitive: the grid order is part of the campaign
// fingerprint).
func RunID(cellKeys []string) string {
	sum := sha256.Sum256([]byte(strings.Join(cellKeys, "\n")))
	return "r" + hex.EncodeToString(sum[:8])
}

func (st *Store) runPath(id string) string {
	return filepath.Join(st.dir, runsDir, id+".json")
}

// PutRun writes a run manifest atomically.
func (st *Store) PutRun(m RunManifest) error {
	if m.ID == "" {
		return fmt.Errorf("resultstore: run manifest without an ID")
	}
	return st.writeAtomic(st.runPath(m.ID), m)
}

// GetRun loads a run manifest. A torn or corrupted manifest is
// quarantined and reported as absent, like a cell record.
func (st *Store) GetRun(id string) (RunManifest, bool) {
	path := st.runPath(id)
	data, err := os.ReadFile(path)
	if err != nil {
		return RunManifest{}, false
	}
	var m RunManifest
	if err := json.Unmarshal(data, &m); err != nil || m.ID != id {
		st.quarantine(path)
		return RunManifest{}, false
	}
	return m, true
}

// ListRuns returns every readable run manifest, sorted by ID for a
// stable listing.
func (st *Store) ListRuns() ([]RunManifest, error) {
	entries, err := os.ReadDir(filepath.Join(st.dir, runsDir))
	if err != nil {
		return nil, fmt.Errorf("resultstore: listing runs: %w", err)
	}
	var runs []RunManifest
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".json") {
			continue
		}
		if m, ok := st.GetRun(strings.TrimSuffix(name, ".json")); ok {
			runs = append(runs, m)
		}
	}
	sort.Slice(runs, func(i, j int) bool { return runs[i].ID < runs[j].ID })
	return runs, nil
}

// writeAtomic marshals v and renames it into place, so no reader —
// in-process or cross-process — ever observes a partial record.
// Records are written compact, not indented: indentation would rewrite
// the embedded canonical Request bytes (json.RawMessage is re-indented
// by the encoder), breaking the byte-exact round trip the content
// address audits against.
func (st *Store) writeAtomic(path string, v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("resultstore: marshaling %s: %w", filepath.Base(path), err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return fmt.Errorf("resultstore: temp file: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(append(data, '\n')); err != nil {
		tmp.Close()
		return fmt.Errorf("resultstore: writing %s: %w", filepath.Base(path), err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("resultstore: closing %s: %w", filepath.Base(path), err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("resultstore: committing %s: %w", filepath.Base(path), err)
	}
	return nil
}
