package silicon

import (
	"strings"
	"testing"
	"time"

	"uniserver/internal/rng"
	"uniserver/internal/vfr"
)

func agedChip(seed uint64) *Chip {
	return Fabricate(Process28nm(), "aging-part", 4,
		vfr.Point{VoltageMV: 844, FreqMHz: 2600}, 1, rng.New(seed))
}

func TestAgingShiftMonotone(t *testing.T) {
	m := DefaultAgingModel()
	prev := -1.0
	for _, h := range []float64{0, 100, 1000, 5000, 20000} {
		s := m.ShiftMV(h)
		if s < prev {
			t.Fatalf("shift not monotone at %v hours", h)
		}
		prev = s
	}
	if m.ShiftMV(0) != 0 || m.ShiftMV(-5) != 0 {
		t.Fatal("non-positive stressed time should not shift")
	}
}

func TestAgingSublinear(t *testing.T) {
	m := DefaultAgingModel()
	// Power law with exponent < 1: doubling time less than doubles
	// the shift.
	if m.ShiftMV(2000) >= 2*m.ShiftMV(1000) {
		t.Fatal("aging should be sub-linear in time")
	}
}

func TestAgingMagnitudeFirstYear(t *testing.T) {
	m := DefaultAgingModel()
	year := m.ShiftMV(8760) // one year fully stressed
	if year < 5 || year > 25 {
		t.Fatalf("first-year shift = %.1f mV, want a few VID steps", year)
	}
}

func TestChipAgeRaisesVcrit(t *testing.T) {
	c := agedChip(1)
	before := c.VcritMV(0, 2600)
	fmaxBefore := c.FMaxMHz(0, 844)
	c.Age(DefaultAgingModel(), 90*24*time.Hour, 0.8)
	after := c.VcritMV(0, 2600)
	if after <= before {
		t.Fatalf("aging did not raise Vcrit: %v -> %v", before, after)
	}
	if c.FMaxMHz(0, 844) > fmaxBefore {
		t.Fatal("aging should not raise fmax")
	}
	if c.StressedHours() <= 0 {
		t.Fatal("stressed hours not accumulated")
	}
}

func TestChipAgeAccumulates(t *testing.T) {
	c := agedChip(2)
	c.Age(DefaultAgingModel(), 1000*time.Hour, 1)
	s1 := c.AgeShiftMV
	c.Age(DefaultAgingModel(), 1000*time.Hour, 1)
	if c.AgeShiftMV <= s1 {
		t.Fatal("second aging period did not accumulate")
	}
	if c.StressedHours() != 2000 {
		t.Fatalf("stressed hours = %v", c.StressedHours())
	}
}

func TestChipAgeStressScaling(t *testing.T) {
	idle := agedChip(3)
	busy := agedChip(3)
	idle.Age(DefaultAgingModel(), 1000*time.Hour, 0.1)
	busy.Age(DefaultAgingModel(), 1000*time.Hour, 1.0)
	if busy.AgeShiftMV <= idle.AgeShiftMV {
		t.Fatal("heavier stress should age faster")
	}
	// Clamping.
	c := agedChip(4)
	c.Age(DefaultAgingModel(), 100*time.Hour, 5)
	if c.StressedHours() != 100 {
		t.Fatalf("stress not clamped to 1: %v", c.StressedHours())
	}
	c.Age(DefaultAgingModel(), -time.Hour, 1)
	if c.StressedHours() != 100 {
		t.Fatal("negative duration aged the chip")
	}
}

func TestAgingReport(t *testing.T) {
	c := agedChip(5)
	c.Age(DefaultAgingModel(), 500*time.Hour, 1)
	s := c.AgingReport()
	if !strings.Contains(s, "aging-part") || !strings.Contains(s, "mV") {
		t.Fatalf("report = %q", s)
	}
}
