package silicon

import (
	"fmt"
	"math"
	"time"
)

// AgingModel captures the slow critical-voltage drift of transistor
// aging (BTI/HCI): the threshold voltage shifts as a sub-linear power
// law of stressed time, so a margin published at deployment erodes
// over months. This is exactly why the StressLog re-characterizes
// periodically ("these new values may need to be updated several times
// over the lifetime of a server due to the aging effects of the
// machine", Section 3.D).
type AgingModel struct {
	// CoeffMVPerKHour is the Vcrit shift after 1,000 stressed hours at
	// full stress, in millivolts.
	CoeffMVPerKHour float64
	// Exponent is the power-law exponent (BTI: ~0.15-0.25).
	Exponent float64
}

// DefaultAgingModel returns a model that erodes roughly 8-15 mV of
// margin over the first year of heavy use — a few VID steps, enough to
// matter against a 25 mV cushion.
func DefaultAgingModel() AgingModel {
	return AgingModel{CoeffMVPerKHour: 7, Exponent: 0.2}
}

// ShiftMV returns the accumulated Vcrit shift after the given total
// stressed-time in hours.
func (m AgingModel) ShiftMV(stressedHours float64) float64 {
	if stressedHours <= 0 {
		return 0
	}
	k := stressedHours / 1000
	return m.CoeffMVPerKHour * pow(k, m.Exponent)
}

// pow is math.Pow with a base<=0 guard (negative stressed time means
// no shift, never NaN).
func pow(base, exp float64) float64 {
	if base <= 0 {
		return 0
	}
	return math.Pow(base, exp)
}

// Age advances the chip's aging state by the given wall time at the
// given average stress in [0,1] (voltage/temperature acceleration is
// folded into stress). The chip's critical voltages rise accordingly.
func (c *Chip) Age(model AgingModel, d time.Duration, stress float64) {
	if d <= 0 {
		return
	}
	if stress < 0 {
		stress = 0
	}
	if stress > 1 {
		stress = 1
	}
	c.stressedHours += d.Hours() * stress
	c.AgeShiftMV = model.ShiftMV(c.stressedHours)
}

// StressedHours returns the accumulated stress-time used by the aging
// model.
func (c *Chip) StressedHours() float64 { return c.stressedHours }

// SetStressedHours overwrites the accumulated stress-time — the
// persistence hook snapshot serialization uses to restore a chip's
// hidden aging state bit for bit. It does not touch AgeShiftMV (the
// serialized value is restored alongside), so a restored chip resumes
// the exact power-law trajectory of its source.
func (c *Chip) SetStressedHours(h float64) { c.stressedHours = h }

// AgingReport summarizes a chip's aging state.
func (c *Chip) AgingReport() string {
	return fmt.Sprintf("%s: %.0f stressed hours, Vcrit shift +%.1f mV",
		c.Model, c.stressedHours, c.AgeShiftMV)
}
