package silicon

import (
	"testing"

	"uniserver/internal/rng"
	"uniserver/internal/vfr"
)

func BenchmarkFabricate(b *testing.B) {
	src := rng.New(1)
	nominal := vfr.Point{VoltageMV: 844, FreqMHz: 2600}
	for i := 0; i < b.N; i++ {
		_ = Fabricate(Process28nm(), "part", 8, nominal, 1, src)
	}
}

func BenchmarkBinPopulation(b *testing.B) {
	nominal := vfr.Point{VoltageMV: 844, FreqMHz: 2600}
	ladder := BinLadder(3600, 100, 12)
	for i := 0; i < b.N; i++ {
		_ = BinPopulation(Process28nm(), 500, 4, nominal, ladder, rng.New(uint64(i)))
	}
}

func BenchmarkDroopEvent(b *testing.B) {
	c := Fabricate(Process28nm(), "part", 4, vfr.Point{VoltageMV: 844, FreqMHz: 2600}, 1, rng.New(1))
	src := rng.New(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = c.DroopEvent(0.5, src)
	}
}
