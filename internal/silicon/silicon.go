// Package silicon models the manufactured-hardware variability at the
// root of the UniServer thesis: every fabricated die, and every core
// within a die, lands at a different point of the process distribution
// and therefore has intrinsically different voltage/frequency
// capabilities (Figure 1 of the paper).
//
// The model follows the standard decomposition of process variation
// into die-to-die (D2D) and within-die (WID) components, both normal,
// applied to each core's critical voltage. Frequency capability uses
// the alpha-power law in its common linearized form: a core sustains
// frequency f at supply voltage V when V >= Vcrit(f), with Vcrit
// increasing linearly in f. Voltage droops are modeled as transient
// supply dips whose magnitude the manufacturer's guardband (Table 1)
// must cover.
package silicon

import (
	"fmt"
	"math"

	"uniserver/internal/rng"
	"uniserver/internal/vfr"
)

// Process captures a fabrication process corner and its variability.
type Process struct {
	// Name of the process, e.g. "28nm-LP".
	Name string
	// VthMV is the nominal threshold-ish intercept of the linearized
	// Vcrit(f) relation, in millivolts.
	VthMV float64
	// SlopeMVPerGHz is the linear coefficient of Vcrit(f): how many
	// additional millivolts one more GHz of clock demands.
	SlopeMVPerGHz float64
	// D2DSigmaMV is the die-to-die standard deviation of the critical
	// voltage, in millivolts.
	D2DSigmaMV float64
	// WIDSigmaMV is the within-die (core-to-core) standard deviation
	// of the critical voltage, in millivolts.
	WIDSigmaMV float64
	// DroopPctTypical and DroopPctWorst bound the di/dt supply-droop
	// magnitude as a percentage of nominal voltage; workloads sit
	// between the two depending on their current-step behaviour.
	DroopPctTypical float64
	DroopPctWorst   float64
}

// Process28nm returns parameters representative of the 28 nm planar
// node discussed in the paper (">30% timing and voltage margins in
// 28nm" per Whatmough et al.).
func Process28nm() Process {
	return Process{
		Name:            "28nm-LP",
		VthMV:           420,
		SlopeMVPerGHz:   120,
		D2DSigmaMV:      18,
		WIDSigmaMV:      7,
		DroopPctTypical: 8,
		DroopPctWorst:   20,
	}
}

// Core is one fabricated core: its intrinsic critical-voltage offset
// from the die mean, fixed at fabrication time.
type Core struct {
	Index int
	// VcritOffsetMV is the core's deviation from the die-mean critical
	// voltage (WID variation), in millivolts.
	VcritOffsetMV float64
}

// Chip is one fabricated die.
type Chip struct {
	Proc Process
	// Model is a human-readable part name, e.g. "i5-4200U".
	Model string
	// Nominal is the manufacturer-rated operating point (with the full
	// conservative guardband applied).
	Nominal vfr.Point
	// D2DOffsetMV is the die's deviation from the process-mean
	// critical voltage.
	D2DOffsetMV float64
	// Cores lists the fabricated cores.
	Cores []Core
	// MarginSpreadScale scales how strongly workload-dependent stress
	// widens the crash-point spread on this part; high-end desktop
	// parts with deep power delivery show wider spreads (Table 2's
	// i7-3970X row) than low-power mobile parts.
	MarginSpreadScale float64
	// AgeShiftMV is the accumulated critical-voltage drift from
	// transistor aging (see aging.go); it raises every core's Vcrit.
	AgeShiftMV float64

	stressedHours float64
}

// Fabricate manufactures a chip with the given core count on the
// process, drawing its variation from src. Model and nominal describe
// the rated part.
func Fabricate(proc Process, model string, cores int, nominal vfr.Point, spreadScale float64, src *rng.Source) *Chip {
	if cores <= 0 {
		panic("silicon: Fabricate with no cores")
	}
	c := &Chip{
		Proc:              proc,
		Model:             model,
		Nominal:           nominal,
		D2DOffsetMV:       src.Normal(0, proc.D2DSigmaMV),
		Cores:             make([]Core, cores),
		MarginSpreadScale: spreadScale,
	}
	for i := range c.Cores {
		c.Cores[i] = Core{
			Index: i,
			// WID variation is one-sided-ish in practice (a die has a
			// worst core); we keep it normal and let order statistics
			// produce the spread.
			VcritOffsetMV: src.Normal(0, proc.WIDSigmaMV),
		}
	}
	return c
}

// Clone returns a deep copy of the chip: an identical specimen whose
// cores, accumulated aging drift and stress history evolve
// independently of the original. Snapshot/restore of characterized
// ecosystems relies on it.
func (c *Chip) Clone() *Chip {
	out := *c
	out.Cores = append([]Core(nil), c.Cores...)
	return &out
}

// CopyInto overwrites dst with a deep copy of c, reusing dst's core
// slice storage when it has capacity. It is the allocation-free arena
// form of Clone: after the call dst is an independent specimen exactly
// as Clone would have produced, including unexported stress history.
func (c *Chip) CopyInto(dst *Chip) {
	cores := dst.Cores
	*dst = *c
	dst.Cores = append(cores[:0], c.Cores...)
}

// VcritMV returns the critical (minimum sustaining) voltage in
// millivolts for the given core at the given frequency, excluding any
// workload-induced droop. Below this voltage the core mis-times and
// the system crashes.
func (c *Chip) VcritMV(coreIdx int, freqMHz int) float64 {
	core := c.Cores[coreIdx]
	ghz := float64(freqMHz) / 1000
	return c.Proc.VthMV + c.Proc.SlopeMVPerGHz*ghz + c.D2DOffsetMV + core.VcritOffsetMV + c.AgeShiftMV
}

// FMaxMHz returns the maximum frequency the given core sustains at the
// given supply voltage (inverse of VcritMV), or 0 when the voltage is
// below the intercept.
func (c *Chip) FMaxMHz(coreIdx int, voltageMV int) int {
	core := c.Cores[coreIdx]
	v := float64(voltageMV) - c.Proc.VthMV - c.D2DOffsetMV - core.VcritOffsetMV - c.AgeShiftMV
	if v <= 0 {
		return 0
	}
	return int(v / c.Proc.SlopeMVPerGHz * 1000)
}

// WorstCore returns the index of the core with the highest critical
// voltage — the core that constrains a worst-case-binned part.
func (c *Chip) WorstCore() int {
	worst := 0
	for i := 1; i < len(c.Cores); i++ {
		if c.Cores[i].VcritOffsetMV > c.Cores[worst].VcritOffsetMV {
			worst = i
		}
	}
	return worst
}

// BestCore returns the index of the core with the lowest critical
// voltage.
func (c *Chip) BestCore() int {
	best := 0
	for i := 1; i < len(c.Cores); i++ {
		if c.Cores[i].VcritOffsetMV < c.Cores[best].VcritOffsetMV {
			best = i
		}
	}
	return best
}

// GuardbandedVminMV returns the voltage a conservative manufacturer
// rates the part at for the given frequency: the process-mean critical
// voltage plus the full Table 1 guardband, independent of this
// specific die's capabilities. The difference between this and a
// die's true VcritMV is exactly the margin UniServer recovers.
func (c *Chip) GuardbandedVminMV(freqMHz int) float64 {
	ghz := float64(freqMHz) / 1000
	base := c.Proc.VthMV + c.Proc.SlopeMVPerGHz*ghz
	guard := vfr.TotalGuardbandPct(vfr.Table1Guardbands()) / 100
	return base * (1 + guard)
}

// DroopEvent samples a transient voltage droop (in millivolts) for a
// workload with the given current-step intensity in [0,1]; intensity 1
// corresponds to a synchronized power virus hitting the worst-case
// di/dt droop.
func (c *Chip) DroopEvent(intensity float64, src *rng.Source) float64 {
	if intensity < 0 {
		intensity = 0
	}
	if intensity > 1 {
		intensity = 1
	}
	pct := c.Proc.DroopPctTypical + (c.Proc.DroopPctWorst-c.Proc.DroopPctTypical)*intensity
	// Droop events jitter around their magnitude by ~10%.
	pct *= 1 + src.Normal(0, 0.1)
	if pct < 0 {
		pct = 0
	}
	return float64(c.Nominal.VoltageMV) * pct / 100
}

// Bin is a speed grade assigned by product binning (Figure 1).
type Bin struct {
	// GradeMHz is the rated frequency of the bin.
	GradeMHz int
	// Label is a human-readable bin name.
	Label string
}

// BinLadder returns the standard descending speed-grade ladder used to
// bin a population of parts, from topMHz down in stepMHz decrements.
func BinLadder(topMHz, stepMHz, grades int) []Bin {
	if grades <= 0 || stepMHz <= 0 {
		panic("silicon: invalid bin ladder")
	}
	ladder := make([]Bin, grades)
	for i := range ladder {
		mhz := topMHz - i*stepMHz
		ladder[i] = Bin{GradeMHz: mhz, Label: fmt.Sprintf("grade-%dMHz", mhz)}
	}
	return ladder
}

// AssignBin returns the highest bin whose frequency every core of the
// chip sustains at the given supply voltage, or ok=false when the part
// fails even the lowest grade (a discard, reducing yield — the paper's
// Section 5.A argument).
func AssignBin(c *Chip, ladder []Bin, voltageMV int) (Bin, bool) {
	worst := c.FMaxMHz(c.WorstCore(), voltageMV)
	for _, b := range ladder {
		if worst >= b.GradeMHz {
			return b, true
		}
	}
	return Bin{}, false
}

// PopulationStats summarizes a fabricated population for Figure 1.
type PopulationStats struct {
	Total     int
	Discarded int
	PerBin    map[int]int // keyed by GradeMHz
}

// BinPopulation fabricates n chips and bins them at the given voltage,
// returning the bin histogram that reproduces Figure 1's "each chip is
// intrinsically different" distribution.
func BinPopulation(proc Process, n, coresPerChip int, nominal vfr.Point, ladder []Bin, src *rng.Source) PopulationStats {
	stats := PopulationStats{Total: n, PerBin: make(map[int]int)}
	for i := 0; i < n; i++ {
		chip := Fabricate(proc, fmt.Sprintf("die-%d", i), coresPerChip, nominal, 1, src)
		b, ok := AssignBin(chip, ladder, nominal.VoltageMV)
		if !ok {
			stats.Discarded++
			continue
		}
		stats.PerBin[b.GradeMHz]++
	}
	return stats
}

// Yield returns the fraction of the population that binned successfully.
func (p PopulationStats) Yield() float64 {
	if p.Total == 0 {
		return 0
	}
	return 1 - float64(p.Discarded)/float64(p.Total)
}

// SpreadMV returns the spread (max-min) of per-core critical voltages
// within the chip at the given frequency — the within-die
// heterogeneity UniServer exposes per component instead of hiding
// behind the core-to-core guardband.
func (c *Chip) SpreadMV(freqMHz int) float64 {
	lo := math.Inf(1)
	hi := math.Inf(-1)
	for i := range c.Cores {
		v := c.VcritMV(i, freqMHz)
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return hi - lo
}
