package silicon

import (
	"testing"
	"testing/quick"

	"uniserver/internal/rng"
	"uniserver/internal/vfr"
)

func testChip(seed uint64) *Chip {
	src := rng.New(seed)
	return Fabricate(Process28nm(), "test-part", 4,
		vfr.Point{VoltageMV: 844, FreqMHz: 2600}, 1, src)
}

func TestFabricateDeterministic(t *testing.T) {
	a := testChip(5)
	b := testChip(5)
	if a.D2DOffsetMV != b.D2DOffsetMV {
		t.Fatal("same seed produced different D2D offsets")
	}
	for i := range a.Cores {
		if a.Cores[i].VcritOffsetMV != b.Cores[i].VcritOffsetMV {
			t.Fatalf("core %d offsets differ", i)
		}
	}
}

func TestFabricatePanicsOnZeroCores(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Fabricate(Process28nm(), "x", 0, vfr.Point{VoltageMV: 844, FreqMHz: 2600}, 1, rng.New(1))
}

func TestVcritIncreasesWithFrequency(t *testing.T) {
	c := testChip(7)
	if c.VcritMV(0, 2600) <= c.VcritMV(0, 1300) {
		t.Fatal("Vcrit should increase with frequency")
	}
}

func TestFMaxInvertsVcrit(t *testing.T) {
	c := testChip(11)
	for core := range c.Cores {
		for _, f := range []int{1000, 2000, 2600, 3500} {
			vcrit := c.VcritMV(core, f)
			fmax := c.FMaxMHz(core, int(vcrit)+1)
			if fmax < f-10 {
				t.Fatalf("core %d: fmax(Vcrit(%d)) = %d, want >= %d", core, f, fmax, f-10)
			}
		}
	}
}

func TestFMaxZeroBelowIntercept(t *testing.T) {
	c := testChip(13)
	if got := c.FMaxMHz(0, 100); got != 0 {
		t.Fatalf("FMax at 100mV = %d, want 0", got)
	}
}

func TestWorstBestCore(t *testing.T) {
	c := testChip(17)
	w, b := c.WorstCore(), c.BestCore()
	for i := range c.Cores {
		if c.Cores[i].VcritOffsetMV > c.Cores[w].VcritOffsetMV {
			t.Fatal("WorstCore is not worst")
		}
		if c.Cores[i].VcritOffsetMV < c.Cores[b].VcritOffsetMV {
			t.Fatal("BestCore is not best")
		}
	}
	if c.VcritMV(w, 2600) < c.VcritMV(b, 2600) {
		t.Fatal("worst core should need at least as much voltage as best")
	}
}

func TestGuardbandedVminExceedsTrueVcrit(t *testing.T) {
	// The conservative rating must cover essentially all fabricated
	// parts: check across a population.
	src := rng.New(23)
	exceed := 0
	const n = 500
	for i := 0; i < n; i++ {
		c := Fabricate(Process28nm(), "p", 4, vfr.Point{VoltageMV: 844, FreqMHz: 2600}, 1, src)
		guard := c.GuardbandedVminMV(2600)
		if guard > c.VcritMV(c.WorstCore(), 2600) {
			exceed++
		}
	}
	if exceed < n*99/100 {
		t.Fatalf("guardbanded Vmin covers only %d/%d parts", exceed, n)
	}
}

func TestGuardbandRecoverableMarginIsSubstantial(t *testing.T) {
	c := testChip(29)
	guard := c.GuardbandedVminMV(2600)
	truth := c.VcritMV(c.WorstCore(), 2600)
	marginPct := 100 * (guard - truth) / guard
	// Paper: >30% margins measured in 28nm ARM parts; our model should
	// recover a double-digit margin for a typical die.
	if marginPct < 10 {
		t.Fatalf("recoverable margin = %.1f%%, want >= 10%%", marginPct)
	}
}

func TestDroopEventBounds(t *testing.T) {
	c := testChip(31)
	src := rng.New(1)
	for i := 0; i < 1000; i++ {
		d := c.DroopEvent(1, src)
		if d < 0 {
			t.Fatalf("negative droop %v", d)
		}
		// Worst case 20% of 844mV is ~169mV; with 10% jitter allow 250.
		if d > 250 {
			t.Fatalf("droop %vmV implausibly large", d)
		}
	}
	// Intensity clamping.
	if d := c.DroopEvent(-5, src); d < 0 {
		t.Fatal("clamped intensity produced negative droop")
	}
}

func TestDroopIntensityOrdering(t *testing.T) {
	c := testChip(37)
	srcLow := rng.New(2)
	srcHigh := rng.New(2)
	low, high := 0.0, 0.0
	for i := 0; i < 500; i++ {
		low += c.DroopEvent(0, srcLow)
		high += c.DroopEvent(1, srcHigh)
	}
	if high <= low {
		t.Fatal("virus-intensity droops should exceed idle droops on average")
	}
}

func TestBinLadder(t *testing.T) {
	ladder := BinLadder(3000, 200, 4)
	if len(ladder) != 4 {
		t.Fatalf("ladder len = %d", len(ladder))
	}
	if ladder[0].GradeMHz != 3000 || ladder[3].GradeMHz != 2400 {
		t.Fatalf("ladder grades wrong: %+v", ladder)
	}
	for i := 1; i < len(ladder); i++ {
		if ladder[i].GradeMHz >= ladder[i-1].GradeMHz {
			t.Fatal("ladder not descending")
		}
	}
}

func TestBinLadderPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	BinLadder(3000, 0, 4)
}

func TestAssignBinRespectsWorstCore(t *testing.T) {
	c := testChip(41)
	ladder := BinLadder(4000, 100, 30)
	b, ok := AssignBin(c, ladder, 844)
	if !ok {
		t.Fatal("typical part failed to bin")
	}
	worstF := c.FMaxMHz(c.WorstCore(), 844)
	if b.GradeMHz > worstF {
		t.Fatalf("bin %d exceeds worst-core fmax %d", b.GradeMHz, worstF)
	}
}

func TestAssignBinDiscard(t *testing.T) {
	c := testChip(43)
	ladder := BinLadder(9000, 100, 2) // impossible grades
	if _, ok := AssignBin(c, ladder, 844); ok {
		t.Fatal("part should be discarded at impossible grades")
	}
}

func TestBinPopulationSpreadsAcrossBins(t *testing.T) {
	src := rng.New(47)
	nominal := vfr.Point{VoltageMV: 844, FreqMHz: 2600}
	ladder := BinLadder(3600, 100, 12)
	stats := BinPopulation(Process28nm(), 2000, 4, nominal, ladder, src)
	if stats.Total != 2000 {
		t.Fatalf("total = %d", stats.Total)
	}
	if len(stats.PerBin) < 3 {
		t.Fatalf("population fell into only %d bins; Figure 1 needs spread", len(stats.PerBin))
	}
	counted := stats.Discarded
	for _, n := range stats.PerBin {
		counted += n
	}
	if counted != stats.Total {
		t.Fatalf("bin histogram loses parts: %d != %d", counted, stats.Total)
	}
	if y := stats.Yield(); y < 0.9 {
		t.Fatalf("yield = %v, expected high yield at these grades", y)
	}
	if (PopulationStats{}).Yield() != 0 {
		t.Fatal("empty population yield should be 0")
	}
}

func TestSpreadMVNonNegativeProperty(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		c := testChip(seed)
		return c.SpreadMV(2600) >= 0
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestSpreadMatchesWorstBestGap(t *testing.T) {
	c := testChip(53)
	want := c.VcritMV(c.WorstCore(), 2600) - c.VcritMV(c.BestCore(), 2600)
	if got := c.SpreadMV(2600); got != want {
		t.Fatalf("SpreadMV = %v, want %v", got, want)
	}
}
