// Package ecc implements the SECDED (single-error-correct,
// double-error-detect) Hamming(72,64) code used throughout server
// memory systems, and which the paper relies on both for on-chip cache
// arrays near Vmin (Section 6.A) and as the classical DRAM protection
// reference ("classical ECC-SECDED can handle error rates up to 1e-6",
// Section 6.B).
//
// The code is the textbook extended Hamming construction: 64 data bits
// are spread over codeword positions 1..71 skipping the powers of two,
// 7 parity bits sit at positions 1, 2, 4, ..., 64, and an overall
// parity bit at position 0 upgrades single-error correction to
// double-error detection.
package ecc

import "math/bits"

// Codeword is a 72-bit SECDED codeword. Bit positions 0..63 live in Lo
// and positions 64..71 live in Hi.
type Codeword struct {
	Lo uint64
	Hi uint8
}

// bit returns codeword bit at position pos (0..71).
func (c Codeword) bit(pos uint) uint {
	if pos < 64 {
		return uint(c.Lo>>pos) & 1
	}
	return uint(c.Hi>>(pos-64)) & 1
}

// setBit sets codeword bit pos to v (0 or 1).
func (c *Codeword) setBit(pos, v uint) {
	if pos < 64 {
		c.Lo = c.Lo&^(1<<pos) | uint64(v&1)<<pos
	} else {
		c.Hi = c.Hi&^(1<<(pos-64)) | uint8(v&1)<<(pos-64)
	}
}

// FlipBit inverts codeword bit pos (0..71). It is the fault-injection
// hook used by the memory simulators. Out-of-range positions panic.
func (c *Codeword) FlipBit(pos uint) {
	if pos >= 72 {
		panic("ecc: FlipBit position out of range")
	}
	c.setBit(pos, c.bit(pos)^1)
}

// isPowerOfTwo reports whether p is a power of two (parity position).
func isPowerOfTwo(p uint) bool { return p != 0 && p&(p-1) == 0 }

// dataPositions lists the 64 codeword positions that carry data bits,
// in increasing order: 3, 5, 6, 7, 9, ..., 71.
var dataPositions = func() [64]uint {
	var ps [64]uint
	i := 0
	for p := uint(1); p <= 71; p++ {
		if !isPowerOfTwo(p) {
			ps[i] = p
			i++
		}
	}
	if i != 64 {
		panic("ecc: data position table construction failed")
	}
	return ps
}()

// Encode computes the SECDED codeword for 64 data bits.
func Encode(data uint64) Codeword {
	var c Codeword
	for i, pos := range dataPositions {
		c.setBit(pos, uint(data>>i)&1)
	}
	// Hamming parity bits: parity at position 2^k covers every
	// position with bit k set in its index.
	for k := uint(0); k < 7; k++ {
		pp := uint(1) << k
		parity := uint(0)
		for p := uint(1); p <= 71; p++ {
			if p&pp != 0 && !isPowerOfTwo(p) {
				parity ^= c.bit(p)
			}
		}
		c.setBit(pp, parity)
	}
	// Overall parity at position 0 covers positions 1..71.
	c.setBit(0, c.parityOf1to71())
	return c
}

func (c Codeword) parityOf1to71() uint {
	p := uint(bits.OnesCount64(c.Lo >> 1))
	p += uint(bits.OnesCount8(c.Hi))
	return p & 1
}

// Result classifies the outcome of decoding a codeword.
type Result int

const (
	// OK means the codeword was error-free.
	OK Result = iota
	// Corrected means a single-bit error was detected and corrected.
	Corrected
	// Detected means a double-bit error was detected; the returned
	// data is unreliable and the consumer must treat the word as lost.
	Detected
)

// String implements fmt.Stringer.
func (r Result) String() string {
	switch r {
	case OK:
		return "ok"
	case Corrected:
		return "corrected"
	case Detected:
		return "detected-uncorrectable"
	default:
		return "unknown"
	}
}

// Decode extracts the data word from a codeword, correcting a
// single-bit error if present and flagging double-bit errors.
// The returned position is the corrected bit position (0..71) when
// result is Corrected, and 0 otherwise.
func Decode(c Codeword) (data uint64, result Result, position uint) {
	syndrome := uint(0)
	for p := uint(1); p <= 71; p++ {
		if c.bit(p) == 1 {
			syndrome ^= p
		}
	}
	overall := c.parityOf1to71() ^ c.bit(0) // 1 when total parity is odd

	switch {
	case syndrome == 0 && overall == 0:
		result = OK
	case syndrome == 0 && overall == 1:
		// The overall parity bit itself flipped.
		c.setBit(0, c.bit(0)^1)
		result, position = Corrected, 0
	case syndrome != 0 && overall == 1:
		// Single-bit error at the syndrome position.
		if syndrome > 71 {
			// Syndrome points outside the codeword: at least two
			// errors produced an aliased syndrome.
			return extract(c), Detected, 0
		}
		c.setBit(syndrome, c.bit(syndrome)^1)
		result, position = Corrected, syndrome
	default: // syndrome != 0 && overall == 0
		return extract(c), Detected, 0
	}
	return extract(c), result, position
}

func extract(c Codeword) uint64 {
	var data uint64
	for i, pos := range dataPositions {
		data |= uint64(c.bit(pos)) << i
	}
	return data
}

// Counters aggregates the correctable/uncorrectable error statistics a
// memory controller exposes and the HealthLog daemon scrapes.
type Counters struct {
	Words         uint64 // codewords decoded
	Corrected     uint64 // single-bit errors corrected
	Uncorrectable uint64 // double-bit errors detected
}

// Observe folds one decode result into the counters.
func (k *Counters) Observe(r Result) {
	k.Words++
	switch r {
	case Corrected:
		k.Corrected++
	case Detected:
		k.Uncorrectable++
	}
}

// Add merges other into k.
func (k *Counters) Add(other Counters) {
	k.Words += other.Words
	k.Corrected += other.Corrected
	k.Uncorrectable += other.Uncorrectable
}

// CorrectableRate returns corrected errors per decoded word.
func (k Counters) CorrectableRate() float64 {
	if k.Words == 0 {
		return 0
	}
	return float64(k.Corrected) / float64(k.Words)
}

// MaxCorrectableBER is the per-bit error rate up to which SECDED
// protection keeps the uncorrectable-word probability negligible; the
// paper quotes 1e-6 for classical SECDED DIMMs.
const MaxCorrectableBER = 1e-6
