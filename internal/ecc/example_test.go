package ecc_test

import (
	"fmt"

	"uniserver/internal/ecc"
)

// A single-bit upset anywhere in the 72-bit codeword is corrected; a
// double-bit upset is detected but not miscorrected.
func Example() {
	cw := ecc.Encode(0xCAFEBABE)

	cw.FlipBit(13) // retention upset
	data, res, pos := ecc.Decode(cw)
	fmt.Printf("%v at bit %d, data %#x\n", res, pos, data)

	cw.FlipBit(40) // a second upset in the same word
	_, res, _ = ecc.Decode(cw)
	fmt.Println(res)

	// Output:
	// corrected at bit 13, data 0xcafebabe
	// detected-uncorrectable
}
