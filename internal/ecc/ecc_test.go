package ecc

import (
	"testing"
	"testing/quick"

	"uniserver/internal/rng"
)

func TestRoundTripNoError(t *testing.T) {
	for _, data := range []uint64{0, 1, 0xFFFFFFFFFFFFFFFF, 0xDEADBEEFCAFEBABE, 1 << 63} {
		c := Encode(data)
		got, res, _ := Decode(c)
		if res != OK {
			t.Fatalf("clean codeword for %#x decoded as %v", data, res)
		}
		if got != data {
			t.Fatalf("round trip %#x -> %#x", data, got)
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	err := quick.Check(func(data uint64) bool {
		got, res, _ := Decode(Encode(data))
		return res == OK && got == data
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestSingleBitCorrectionAllPositions(t *testing.T) {
	data := uint64(0xA5A5_5A5A_0F0F_F0F0)
	for pos := uint(0); pos < 72; pos++ {
		c := Encode(data)
		c.FlipBit(pos)
		got, res, corrPos := Decode(c)
		if res != Corrected {
			t.Fatalf("flip at %d: result = %v, want Corrected", pos, res)
		}
		if got != data {
			t.Fatalf("flip at %d: data = %#x, want %#x", pos, got, data)
		}
		if corrPos != pos {
			t.Fatalf("flip at %d: reported position %d", pos, corrPos)
		}
	}
}

func TestSingleBitCorrectionProperty(t *testing.T) {
	err := quick.Check(func(data uint64, rawPos uint8) bool {
		pos := uint(rawPos) % 72
		c := Encode(data)
		c.FlipBit(pos)
		got, res, _ := Decode(c)
		return res == Corrected && got == data
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestDoubleBitDetectionAllPairsSample(t *testing.T) {
	data := uint64(0x0123_4567_89AB_CDEF)
	// Exhaustive over all 72*71/2 = 2556 pairs: cheap enough.
	for a := uint(0); a < 72; a++ {
		for b := a + 1; b < 72; b++ {
			c := Encode(data)
			c.FlipBit(a)
			c.FlipBit(b)
			_, res, _ := Decode(c)
			if res != Detected {
				t.Fatalf("double flip (%d,%d): result = %v, want Detected", a, b, res)
			}
		}
	}
}

func TestDoubleBitDetectionProperty(t *testing.T) {
	err := quick.Check(func(data uint64, ra, rb uint8) bool {
		a := uint(ra) % 72
		b := uint(rb) % 72
		if a == b {
			return true
		}
		c := Encode(data)
		c.FlipBit(a)
		c.FlipBit(b)
		_, res, _ := Decode(c)
		return res == Detected
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestFlipTwiceIsIdentity(t *testing.T) {
	err := quick.Check(func(data uint64, rawPos uint8) bool {
		pos := uint(rawPos) % 72
		c := Encode(data)
		orig := c
		c.FlipBit(pos)
		c.FlipBit(pos)
		return c == orig
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestFlipBitPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("FlipBit(72) did not panic")
		}
	}()
	c := Encode(0)
	c.FlipBit(72)
}

func TestCodewordsDistinct(t *testing.T) {
	// Distinct data words must yield distinct codewords (the code is
	// systematic and injective).
	seen := map[Codeword]uint64{}
	s := rng.New(99)
	for i := 0; i < 5000; i++ {
		d := s.Uint64()
		c := Encode(d)
		if prev, ok := seen[c]; ok && prev != d {
			t.Fatalf("codeword collision between %#x and %#x", prev, d)
		}
		seen[c] = d
	}
}

func TestResultString(t *testing.T) {
	if OK.String() != "ok" || Corrected.String() != "corrected" ||
		Detected.String() != "detected-uncorrectable" || Result(9).String() != "unknown" {
		t.Fatal("Result.String mismatch")
	}
}

func TestCounters(t *testing.T) {
	var k Counters
	k.Observe(OK)
	k.Observe(Corrected)
	k.Observe(Corrected)
	k.Observe(Detected)
	if k.Words != 4 || k.Corrected != 2 || k.Uncorrectable != 1 {
		t.Fatalf("counters = %+v", k)
	}
	if got := k.CorrectableRate(); got != 0.5 {
		t.Fatalf("CorrectableRate = %v, want 0.5", got)
	}
	var k2 Counters
	k2.Add(k)
	k2.Add(k)
	if k2.Words != 8 || k2.Corrected != 4 {
		t.Fatalf("Add = %+v", k2)
	}
	if (Counters{}).CorrectableRate() != 0 {
		t.Fatal("empty counters rate should be 0")
	}
}

func TestRandomSoak(t *testing.T) {
	s := rng.New(7)
	for i := 0; i < 2000; i++ {
		data := s.Uint64()
		c := Encode(data)
		switch s.Intn(3) {
		case 0:
			got, res, _ := Decode(c)
			if res != OK || got != data {
				t.Fatalf("clean decode failed: %v %#x", res, got)
			}
		case 1:
			c.FlipBit(uint(s.Intn(72)))
			got, res, _ := Decode(c)
			if res != Corrected || got != data {
				t.Fatalf("single-error decode failed: %v %#x", res, got)
			}
		default:
			a := uint(s.Intn(72))
			b := uint(s.Intn(72))
			for b == a {
				b = uint(s.Intn(72))
			}
			c.FlipBit(a)
			c.FlipBit(b)
			if _, res, _ := Decode(c); res != Detected {
				t.Fatalf("double-error decode returned %v", res)
			}
		}
	}
}

func BenchmarkEncode(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = Encode(uint64(i) * 0x9E3779B97F4A7C15)
	}
}

func BenchmarkDecodeClean(b *testing.B) {
	c := Encode(0xDEADBEEF)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _, _ = Decode(c)
	}
}

func BenchmarkDecodeCorrect(b *testing.B) {
	c := Encode(0xDEADBEEF)
	c.FlipBit(17)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _, _ = Decode(c)
	}
}
