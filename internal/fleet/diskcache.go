package fleet

import (
	"bytes"
	"crypto/sha256"
	"encoding/gob"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"uniserver/internal/core"
)

// The on-disk spill of the characterization snapshot cache: a cache
// with an attached directory persists every characterized snapshot
// (plus its report and captured health-log bytes) as one versioned
// gob file, and serves later processes — CLI reruns, CI legs — from
// disk instead of re-running the campaign. Correctness rests on the
// same property as the in-memory cache: characterization is a pure
// function of the key, and core's snapshot wire format restores
// bit-identical ecosystems (pinned by core's TestSnapshotDiskRoundTrip
// and the fleet-level disk byte-identity test).

// charactDirVersionFile names the directory's version stamp.
const charactDirVersionFile = "VERSION"

// AttachDir enables the on-disk spill rooted at dir, creating it if
// needed. The directory is stamped with core.SnapshotFormatVersion;
// attaching to a directory stamped with any other version is refused
// — the wire form mirrors simulator internals, so a cross-version
// read would corrupt results rather than merely miss. Point different
// builds at different directories (or clear the stale one).
func (c *CharactCache) AttachDir(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("fleet: creating characterization cache dir: %w", err)
	}
	vpath := filepath.Join(dir, charactDirVersionFile)
	want := strconv.Itoa(core.SnapshotFormatVersion)
	if data, err := os.ReadFile(vpath); err == nil {
		if got := strings.TrimSpace(string(data)); got != want {
			return fmt.Errorf("fleet: characterization cache dir %s is version %s, this build writes version %s; refusing mismatched versions (clear the dir or use another)",
				dir, got, want)
		}
	} else if os.IsNotExist(err) {
		if err := os.WriteFile(vpath, []byte(want+"\n"), 0o644); err != nil {
			return fmt.Errorf("fleet: stamping characterization cache dir: %w", err)
		}
	} else {
		return fmt.Errorf("fleet: reading characterization cache version: %w", err)
	}
	c.dir.Store(dir)
	return nil
}

// diskEntryState is one spilled cache entry: the key (verified on
// load — the filename is only its hash), the core snapshot wire
// bytes, the characterization report, and the captured health-log
// bytes consumers replay.
type diskEntryState struct {
	Key      string
	Snapshot []byte
	Pre      core.PreDeploymentReport
	Log      []byte
}

// spillDir returns the attached spill directory ("" when disabled).
// The atomic load keeps worker goroutines and a late AttachDir from
// racing without putting a lock on the characterization path.
func (c *CharactCache) spillDir() string {
	if d, ok := c.dir.Load().(string); ok {
		return d
	}
	return ""
}

// entryPath maps a cache key to its spill file.
func (c *CharactCache) entryPath(key string) string {
	sum := sha256.Sum256([]byte(key))
	return filepath.Join(c.spillDir(), hex.EncodeToString(sum[:])+".charact")
}

// loadDisk tries to serve key from the spill directory. A missing or
// unreadable entry is a plain miss (the characterization recomputes
// and overwrites it); only the version stamp refuses loudly, and that
// happens at AttachDir.
func (c *CharactCache) loadDisk(key string) (*core.Snapshot, core.PreDeploymentReport, []byte, bool) {
	f, err := os.Open(c.entryPath(key))
	if err != nil {
		return nil, core.PreDeploymentReport{}, nil, false
	}
	defer f.Close()
	var st diskEntryState
	if err := gob.NewDecoder(f).Decode(&st); err != nil || st.Key != key {
		return nil, core.PreDeploymentReport{}, nil, false
	}
	snap, err := core.LoadSnapshot(bytes.NewReader(st.Snapshot))
	if err != nil {
		return nil, core.PreDeploymentReport{}, nil, false
	}
	return snap, st.Pre, st.Log, true
}

// spillDisk persists an entry, atomically (temp file + rename), so
// concurrent processes sharing the directory never observe a torn
// write. Spill failures never fail the simulation — the in-memory
// result is already correct — but the first one is retained for the
// caller to surface (DiskErr).
func (c *CharactCache) spillDisk(key string, snap *core.Snapshot, pre core.PreDeploymentReport, log []byte) {
	var sb bytes.Buffer
	if err := snap.Save(&sb); err != nil {
		c.noteDiskErr(err)
		return
	}
	st := diskEntryState{Key: key, Snapshot: sb.Bytes(), Pre: pre, Log: log}
	final := c.entryPath(key)
	tmp, err := os.CreateTemp(c.spillDir(), ".charact-*")
	if err != nil {
		c.noteDiskErr(err)
		return
	}
	defer os.Remove(tmp.Name())
	if err := gob.NewEncoder(tmp).Encode(&st); err != nil {
		tmp.Close()
		c.noteDiskErr(err)
		return
	}
	if err := tmp.Close(); err != nil {
		c.noteDiskErr(err)
		return
	}
	if err := os.Rename(tmp.Name(), final); err != nil {
		c.noteDiskErr(err)
	}
}

// noteDiskErr retains the first spill failure.
func (c *CharactCache) noteDiskErr(err error) {
	c.diskErrMu.Lock()
	defer c.diskErrMu.Unlock()
	if c.diskErr == nil {
		c.diskErr = err
	}
}

// DiskErr returns the first disk-spill failure, if any. Spills are
// best effort — results are unaffected — but a CLI should tell the
// operator their cache directory is not accumulating.
func (c *CharactCache) DiskErr() error {
	c.diskErrMu.Lock()
	defer c.diskErrMu.Unlock()
	return c.diskErr
}
