package fleet_test

import (
	"fmt"
	"log"

	"uniserver/internal/fleet"
)

// Example runs a small fleet twice — once sequentially, once on four
// workers — and shows the determinism contract: worker count changes
// wall-clock, never results.
func Example() {
	cfg := fleet.DefaultConfig(2)
	cfg.Seed = 42
	cfg.Windows = 8
	cfg.Workers = 1
	seq, err := fleet.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}

	cfg.Workers = 4
	par, err := fleet.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("nodes=%d windows=%d\n", seq.Nodes, seq.Windows)
	fmt.Printf("windows at EOP: %d of %d\n", seq.WindowsAtEOP, seq.Nodes*seq.Windows)
	fmt.Printf("fingerprints identical across worker counts: %v\n",
		seq.Fingerprint() == par.Fingerprint())
	// Output:
	// nodes=2 windows=8
	// windows at EOP: 16 of 16
	// fingerprints identical across worker counts: true
}
