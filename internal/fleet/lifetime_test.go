package fleet

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"uniserver/internal/core"
)

// lifetimeConfig is a small multi-epoch fleet: three epochs separated
// by 80-day gaps against the default 75-day stress period, so every
// epoch entry is due for a scheduled campaign.
func lifetimeConfig(nodes, workers int) Config {
	cfg := DefaultConfig(nodes)
	cfg.Workers = workers
	cfg.Seed = 7
	plan := core.UniformPlan(3, 8, 80, 0.6)
	cfg.Lifetime = &plan
	return cfg
}

// TestFleetLifetimeDeterministic extends the engine's core contract
// to multi-epoch runs: byte-identical fingerprints at 1, 4 and 8
// workers, with the lifetime observables actually present — nonzero
// scheduled re-characterizations, per-epoch trajectory lines in the
// fingerprint, and monotone aging drift.
func TestFleetLifetimeDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet characterization is slow; skipping in -short")
	}
	var want Summary
	for _, workers := range []int{1, 4, 8} {
		sum, err := Run(lifetimeConfig(2, workers))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if workers == 1 {
			want = sum
			continue
		}
		if sum.Fingerprint() != want.Fingerprint() {
			t.Fatalf("lifetime fingerprint diverged at workers=%d:\n--- workers=1 ---\n%s--- workers=%d ---\n%s",
				workers, want.Fingerprint(), workers, sum.Fingerprint())
		}
	}
	if want.Windows != 24 {
		t.Fatalf("plan's total windows not honoured: got %d, want 24", want.Windows)
	}
	if want.Recharacterized == 0 {
		t.Fatal("lifetime run produced no re-characterizations; the cadence is dead")
	}
	if !strings.Contains(want.Fingerprint(), "epoch=2") {
		t.Fatal("margin trajectory missing from the fingerprint")
	}
	for _, n := range want.PerNode {
		if len(n.Epochs) != 3 {
			t.Fatalf("node %s has %d trajectory rows, want 3", n.Name, len(n.Epochs))
		}
		for i := 1; i < len(n.Epochs); i++ {
			if n.Epochs[i].AgeShiftMV < n.Epochs[i-1].AgeShiftMV {
				t.Fatalf("node %s margin drift not monotone at epoch %d", n.Name, i)
			}
		}
		if n.FinalAgeShiftMV <= 0 {
			t.Fatalf("node %s reports no final aging drift", n.Name)
		}
	}
}

// TestFleetSingleEpochFingerprintUnchanged guards the goldens: a
// plain run must emit no trajectory lines — the lifetime fields stay
// fingerprint-silent until a plan is set.
func TestFleetSingleEpochFingerprintUnchanged(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet characterization is slow; skipping in -short")
	}
	cfg := smallConfig(2, 2)
	cfg.Windows = 6
	sum, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sum.Fingerprint(), "epoch=") || strings.Contains(sum.Fingerprint(), "lifetime") {
		t.Fatalf("single-epoch fingerprint grew lifetime lines:\n%s", sum.Fingerprint())
	}
	for _, n := range sum.PerNode {
		if n.Epochs != nil {
			t.Fatalf("node %s has a trajectory without a lifetime plan", n.Name)
		}
	}
}

// TestCharactCacheDiskSharing is the cross-process contract of the
// spill directory: a second, fresh cache instance pointed at the same
// directory must serve every characterization from disk — zero
// campaigns run — and produce byte-identical fleet results, health
// log included.
func TestCharactCacheDiskSharing(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet characterization is slow; skipping in -short")
	}
	dir := t.TempDir()
	run := func() (Summary, string, CacheStats) {
		cache := NewCharactCache()
		if err := cache.AttachDir(dir); err != nil {
			t.Fatal(err)
		}
		cfg := smallConfig(2, 2)
		cfg.Windows = 6
		cfg.Charact = cache
		var log strings.Builder
		cfg.HealthLogOut = &log
		sum, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := cache.DiskErr(); err != nil {
			t.Fatalf("disk spill failed: %v", err)
		}
		return sum, log.String(), cache.Stats()
	}
	cold, coldLog, coldStats := run()
	warm, warmLog, warmStats := run()
	// A fresh cache instance stands in for a fresh process; only the
	// directory is shared. The cold run must characterize everything,
	// the warm one must run zero campaigns.
	if coldStats.Misses == 0 || coldStats.DiskHits != 0 {
		t.Fatalf("cold run stats unexpected: %+v", coldStats)
	}
	if warmStats.DiskHits == 0 || warmStats.Misses != 0 {
		t.Fatalf("warm run did not serve from disk: %+v", warmStats)
	}
	if cold.Fingerprint() != warm.Fingerprint() {
		t.Fatalf("disk-served run diverged from the characterizing run:\n--- cold ---\n%s--- warm ---\n%s",
			cold.Fingerprint(), warm.Fingerprint())
	}
	if coldLog != warmLog {
		t.Fatal("health-log bytes diverged between cold and warm cache runs")
	}
}

// TestAttachDirRefusesMismatchedVersion pins the version gate on the
// spill directory.
func TestAttachDirRefusesMismatchedVersion(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "VERSION"), []byte("999\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := NewCharactCache().AttachDir(dir); err == nil {
		t.Fatal("mismatched cache-dir version accepted")
	}
	// A fresh dir is stamped and accepted.
	fresh := t.TempDir()
	if err := NewCharactCache().AttachDir(fresh); err != nil {
		t.Fatal(err)
	}
	if err := NewCharactCache().AttachDir(fresh); err != nil {
		t.Fatalf("re-attach to a same-version dir refused: %v", err)
	}
}

// TestFleetLifetimeGapFailure checks a plan whose gaps are invalid is
// rejected up front, not mid-run.
func TestFleetLifetimeGapFailure(t *testing.T) {
	cfg := DefaultConfig(1)
	plan := core.LifetimePlan{EpochWindows: []int{2, 2}, Gaps: []core.Gap{{Days: -1}}}
	cfg.Lifetime = &plan
	if _, err := Run(cfg); err == nil {
		t.Fatal("invalid lifetime plan accepted")
	}
}
