package fleet

import "testing"

// epochAllocBudget bounds the allocations one node-window adds to a
// fleet run: the node's own Deployment.Step budget (see the core
// package's TestStepAllocationBudget) plus the coordinator's replay
// share — the health-buffer append and the cloud layer's per-epoch
// accounting. The fence exists so the batched epoch engine can't
// silently regrow per-window garbage (maps, closures, health slices)
// without a test noticing.
const epochAllocBudget = 8.0

// TestEpochLoopAllocationBudget measures the fleet engine's marginal
// allocation cost per node-window by differencing two runs that share
// the identical characterization phase and differ only in horizon.
func TestEpochLoopAllocationBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet characterization is slow; skipping in -short")
	}
	run := func(windows int) float64 {
		cfg := smallConfig(2, 1)
		cfg.Windows = windows
		return testing.AllocsPerRun(1, func() {
			if _, err := Run(cfg); err != nil {
				t.Fatal(err)
			}
		})
	}
	const shortW, longW = 20, 120
	short, long := run(shortW), run(longW)
	perNodeWindow := (long - short) / float64(longW-shortW) / 2 // 2 nodes
	t.Logf("fleet epoch loop: %.2f allocs/node-window (budget %.0f; %g vs %g total)",
		perNodeWindow, epochAllocBudget, short, long)
	if perNodeWindow > epochAllocBudget {
		t.Fatalf("fleet epoch loop allocates %.2f/node-window, budget is %.0f — the batched stepper regressed",
			perNodeWindow, epochAllocBudget)
	}
}
