package fleet

import (
	"bytes"
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"uniserver/internal/core"
	"uniserver/internal/rng"
)

// CharactCache memoizes pre-deployment characterization results by
// (node seed, characterization-relevant NodeSpec): the first consumer
// of a key pays the full core.New + PreDeployment cost and publishes a
// core.Snapshot; every later consumer — typically the same node index
// in another campaign cell — restores an independent deep copy in
// microseconds instead of re-running the multi-second campaign. This
// is the biggest campaign-cost multiplier: a scenario×seed grid
// re-characterized each seed's spec set once per scenario.
//
// The cache is safe for concurrent use from any number of fleet runs,
// and it is contention-free by construction: entries live in a
// sync.Map (hits never take a lock), and each entry is a per-key
// singleflight — the first arrival characterizes, duplicate arrivals
// on the same in-flight key coalesce onto that one run (counted in
// Stats.Coalesced) instead of duplicating it, and misses on distinct
// keys characterize fully in parallel. Disk-spill I/O happens after
// the entry publishes, so coalesced waiters are released while the
// characterizing goroutine is still writing the spill file. Because
// characterization is a pure function of the key — the excluded spec
// fields only shape what happens after Restore — results are
// byte-identical no matter which consumer populates an entry first, at
// any worker count or campaign parallelism: who computes a key is
// unobservable in the results.
type CharactCache struct {
	// entries maps key → *charactEntry. A sync.Map instead of a
	// mutex-guarded map because the steady state of a campaign is
	// read-mostly (every node of every cell probes the cache; only the
	// first consumer per key writes), which is exactly the sync.Map
	// sweet spot — the hot hit path is lock-free.
	entries sync.Map

	// dir, when non-empty, roots the on-disk spill (diskcache.go):
	// characterized snapshots persist across processes, and keys not
	// yet seen in memory are first sought on disk. Held in an
	// atomic.Value so worker goroutines never contend on a lock just
	// to learn whether spilling is enabled.
	dir atomic.Value // string

	// diskErr retains the first best-effort spill failure for the CLI
	// to surface; its mutex is touched only on the (rare) error path.
	diskErrMu sync.Mutex
	diskErr   error

	hits, misses, coalesced, diskHits, compiled atomic.Uint64
}

// charactEntry is one key's singleflight slot. The creating goroutine
// writes the result fields and then closes done; everyone else waits
// on done and reads the fields afterwards (the channel close is the
// happens-before edge). Fields are read-only once done is closed.
type charactEntry struct {
	done chan struct{}
	snap *core.Snapshot
	// tmpl is the snapshot compiled for mass restoration
	// (core.RestoreTemplate): built once by the entry's creator before
	// done closes, then shared read-only by every consumer — the stamp
	// path takes zero lock acquisitions on shared state.
	tmpl *core.RestoreTemplate
	pre  core.PreDeploymentReport
	log  []byte
	err  error
}

// NewCharactCache returns an empty cache.
func NewCharactCache() *CharactCache {
	return &CharactCache{}
}

// CacheStats counts cache outcomes: a miss is a characterization
// actually run, a hit is a node served from an in-memory snapshot,
// and a disk hit is a key's first consumer served from the attached
// spill directory instead of re-running the campaign. Coalesced is
// the subset of hits that arrived while the key's characterization
// was still in flight and blocked on it instead of duplicating it.
// Hits, misses and disk hits are deterministic functions of the run
// (misses = distinct keys characterized); Coalesced depends on
// goroutine timing and is execution telemetry, like wall-clock.
type CacheStats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Coalesced uint64 `json:"coalesced,omitempty"`
	DiskHits  uint64 `json:"disk_hits,omitempty"`
	// Compiled counts restore templates built (one per successfully
	// characterized entry, whether it came from a fresh run or the
	// disk spill) — the compile cost amortized across every stamp.
	Compiled uint64 `json:"compiled,omitempty"`
}

// Stats returns the cache's hit/miss/coalesced counters.
func (c *CharactCache) Stats() CacheStats {
	return CacheStats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Coalesced: c.coalesced.Load(),
		DiskHits:  c.diskHits.Load(),
		Compiled:  c.compiled.Load(),
	}
}

// entry returns key's singleflight slot and whether this caller
// created it (and therefore owns running the characterization).
func (c *CharactCache) entry(key string) (*charactEntry, bool) {
	if v, ok := c.entries.Load(key); ok {
		return v.(*charactEntry), false
	}
	v, loaded := c.entries.LoadOrStore(key, &charactEntry{done: make(chan struct{})})
	return v.(*charactEntry), !loaded
}

// characterized returns the snapshot, characterization report and
// captured health-log bytes for key, invoking characterize at most
// once per key across all goroutines: the entry's creator runs it,
// duplicate concurrent arrivals coalesce onto the in-flight run, and
// later arrivals are plain hits. When wantLog is set the
// characterization writes its health log into a cache-owned buffer
// whose bytes every consumer replays into its own node log — the
// lines are identical to what a fresh characterization would have
// written, because characterization is deterministic in the key.
func (c *CharactCache) characterized(key string, wantLog bool,
	characterize func(out io.Writer) (*core.Ecosystem, core.PreDeploymentReport, error),
) (*core.Snapshot, *core.RestoreTemplate, core.PreDeploymentReport, []byte, error) {
	e, creator := c.entry(key)
	if !creator {
		// Served from the cache. Distinguish a completed entry (plain
		// hit) from an in-flight one (coalesced: we block on the single
		// characterization instead of running our own). The distinction
		// is timing-dependent telemetry; the total hit count is not.
		select {
		case <-e.done:
		default:
			c.coalesced.Add(1)
			<-e.done
		}
		c.hits.Add(1)
		return e.snap, e.tmpl, e.pre, e.log, e.err
	}

	// This goroutine owns the key's one characterization. The attached
	// spill directory serves a key's first consumer in this process
	// when another process already characterized it; anything
	// unreadable falls through to a fresh run.
	fromDisk := false
	if c.spillDir() != "" {
		if snap, pre, log, ok := c.loadDisk(key); ok {
			fromDisk = true
			e.snap, e.pre, e.log = snap, pre, log
		}
	}
	if !fromDisk {
		var buf *bytes.Buffer
		var out io.Writer
		if wantLog {
			buf = &bytes.Buffer{}
			out = buf
		}
		eco, pre, err := characterize(out)
		if err == nil {
			var snap *core.Snapshot
			snap, err = eco.Snapshot()
			if err == nil {
				e.snap, e.pre = snap, pre
				if buf != nil {
					e.log = buf.Bytes()
				}
			}
		}
		e.err = err
	}
	// Compile the restore template before publishing: the close below
	// is the happens-before edge that makes e.tmpl visible to every
	// waiter, after which stamping is lock-free and shared read-only.
	if e.err == nil && e.snap != nil {
		e.tmpl = e.snap.Compile()
		c.compiled.Add(1)
	}
	// Publish before spilling: closing done releases every coalesced
	// waiter, so the disk write below happens outside the key's
	// critical section — waiters restore snapshots while the creator
	// is still persisting the entry.
	close(e.done)
	if fromDisk {
		c.diskHits.Add(1)
	} else {
		c.misses.Add(1)
		if e.err == nil && c.spillDir() != "" {
			c.spillDisk(key, e.snap, e.pre, e.log)
		}
	}
	return e.snap, e.tmpl, e.pre, e.log, e.err
}

// ArchetypeBin canonically renders the characterization identity of a
// NodeSpec: every field PreDeployment actually reads — the silicon
// part (with its full process corner) and the DRAM configuration
// (whose initial temperature the retention pattern tests consult) —
// and nothing else. Mode, risk target, workload, schedulable memory
// and the ambient temperatures are deliberately excluded: they only
// shape the deployment that runs after Restore (mode entry re-derives
// the operating point from the restored table, and Restore re-seats
// the thermal nodes), so specs differing only in those
// deployment-phase fields land in the same bin. A zero Part is
// canonicalized to the part DefaultOptions resolves it to, so
// explicit-default and implicit-default specs collide.
//
// The same string serves two consumers: charactKey scopes it by node
// seed for the per-node snapshot cache, and archetype-clone
// characterization (Config.Archetypes) uses it seedless, as the bin
// identity all same-spec nodes share. The %+v renderings are
// deterministic (the structs contain no maps) and intentionally
// field-exhaustive: a field added to PartSpec, Process or dram.Config
// changes the bin and conservatively splits the cache rather than
// silently sharing across a difference.
func ArchetypeBin(spec NodeSpec) string {
	part := spec.Part
	if part.Cores == 0 {
		part = core.DefaultOptions().Part
	}
	return fmt.Sprintf("part=%+v mem=%+v", part, spec.Mem)
}

// ArchetypeSeed derives the characterization seed of an archetype bin
// from the fleet seed — the bin-level analogue of NodeSeed, and like
// it a pure function, so which node first characterizes a bin can
// never matter.
func ArchetypeSeed(seed uint64, bin string) uint64 {
	return rng.New(seed).SplitLabeled("fleet/archetype/" + bin).Uint64()
}

// charactKey scopes a characterization identity by the seed that
// drives it (the node seed on the per-node path, the bin seed under
// Config.Archetypes). wantLog is part of the key because log bytes are
// captured only when a health log was requested.
func charactKey(seed uint64, spec NodeSpec, wantLog bool) string {
	return fmt.Sprintf("seed=%d log=%t %s", seed, wantLog, ArchetypeBin(spec))
}
