package fleet

import (
	"bytes"
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"uniserver/internal/core"
	"uniserver/internal/rng"
)

// CharactCache memoizes pre-deployment characterization results by
// (node seed, characterization-relevant NodeSpec): the first consumer
// of a key pays the full core.New + PreDeployment cost and publishes a
// core.Snapshot; every later consumer — typically the same node index
// in another campaign cell — restores an independent deep copy in
// microseconds instead of re-running the multi-second campaign. This
// is the biggest campaign-cost multiplier: a scenario×seed grid
// re-characterized each seed's spec set once per scenario.
//
// The cache is safe for concurrent use from any number of fleet runs.
// Each key is characterized exactly once (later arrivals block on the
// in-flight characterization rather than duplicating it), and because
// characterization is a pure function of the key — the excluded spec
// fields only shape what happens after Restore — results are
// byte-identical no matter which cell populates an entry first, at any
// worker count or campaign parallelism.
type CharactCache struct {
	mu      sync.Mutex
	entries map[string]*charactEntry

	// dir, when non-empty, roots the on-disk spill (diskcache.go):
	// characterized snapshots persist across processes, and keys not
	// yet seen in memory are first sought on disk. diskErr retains the
	// first best-effort spill failure for the CLI to surface.
	dir     string
	diskErr error

	hits, misses, diskHits atomic.Uint64
}

// charactEntry is one key's characterization outcome. once gates the
// single characterization run; the remaining fields are written inside
// it and read-only afterwards.
type charactEntry struct {
	once sync.Once
	snap *core.Snapshot
	pre  core.PreDeploymentReport
	log  []byte
	err  error
}

// NewCharactCache returns an empty cache.
func NewCharactCache() *CharactCache {
	return &CharactCache{entries: make(map[string]*charactEntry)}
}

// CacheStats counts cache outcomes: a miss is a characterization
// actually run, a hit is a node served from an in-memory snapshot,
// and a disk hit is a key's first consumer served from the attached
// spill directory instead of re-running the campaign.
type CacheStats struct {
	Hits     uint64 `json:"hits"`
	Misses   uint64 `json:"misses"`
	DiskHits uint64 `json:"disk_hits,omitempty"`
}

// Stats returns the cache's hit/miss counters.
func (c *CharactCache) Stats() CacheStats {
	return CacheStats{Hits: c.hits.Load(), Misses: c.misses.Load(), DiskHits: c.diskHits.Load()}
}

// entry returns (creating if needed) the slot for key.
func (c *CharactCache) entry(key string) *charactEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	e := c.entries[key]
	if e == nil {
		e = &charactEntry{}
		c.entries[key] = e
	}
	return e
}

// characterized returns the snapshot, characterization report and
// captured health-log bytes for key, invoking characterize at most
// once per key across all goroutines. When wantLog is set the
// characterization writes its health log into a cache-owned buffer
// whose bytes every consumer replays into its own node log — the
// lines are identical to what a fresh characterization would have
// written, because characterization is deterministic in the key.
func (c *CharactCache) characterized(key string, wantLog bool,
	characterize func(out io.Writer) (*core.Ecosystem, core.PreDeploymentReport, error),
) (*core.Snapshot, core.PreDeploymentReport, []byte, error) {
	e := c.entry(key)
	ran, fromDisk := false, false
	e.once.Do(func() {
		ran = true
		// The attached spill directory serves a key's first consumer
		// in this process when another process already characterized
		// it; anything unreadable falls through to a fresh run.
		if c.spillDir() != "" {
			if snap, pre, log, ok := c.loadDisk(key); ok {
				fromDisk = true
				e.snap, e.pre, e.log = snap, pre, log
				return
			}
		}
		var buf *bytes.Buffer
		var out io.Writer
		if wantLog {
			buf = &bytes.Buffer{}
			out = buf
		}
		eco, pre, err := characterize(out)
		if err != nil {
			e.err = err
			return
		}
		snap, err := eco.Snapshot()
		if err != nil {
			e.err = err
			return
		}
		e.snap, e.pre = snap, pre
		if buf != nil {
			e.log = buf.Bytes()
		}
		if c.spillDir() != "" {
			c.spillDisk(key, snap, pre, e.log)
		}
	})
	switch {
	case ran && fromDisk:
		c.diskHits.Add(1)
	case ran:
		c.misses.Add(1)
	default:
		c.hits.Add(1)
	}
	return e.snap, e.pre, e.log, e.err
}

// ArchetypeBin canonically renders the characterization identity of a
// NodeSpec: every field PreDeployment actually reads — the silicon
// part (with its full process corner) and the DRAM configuration
// (whose initial temperature the retention pattern tests consult) —
// and nothing else. Mode, risk target, workload, schedulable memory
// and the ambient temperatures are deliberately excluded: they only
// shape the deployment that runs after Restore (mode entry re-derives
// the operating point from the restored table, and Restore re-seats
// the thermal nodes), so specs differing only in those
// deployment-phase fields land in the same bin. A zero Part is
// canonicalized to the part DefaultOptions resolves it to, so
// explicit-default and implicit-default specs collide.
//
// The same string serves two consumers: charactKey scopes it by node
// seed for the per-node snapshot cache, and archetype-clone
// characterization (Config.Archetypes) uses it seedless, as the bin
// identity all same-spec nodes share. The %+v renderings are
// deterministic (the structs contain no maps) and intentionally
// field-exhaustive: a field added to PartSpec, Process or dram.Config
// changes the bin and conservatively splits the cache rather than
// silently sharing across a difference.
func ArchetypeBin(spec NodeSpec) string {
	part := spec.Part
	if part.Cores == 0 {
		part = core.DefaultOptions().Part
	}
	return fmt.Sprintf("part=%+v mem=%+v", part, spec.Mem)
}

// ArchetypeSeed derives the characterization seed of an archetype bin
// from the fleet seed — the bin-level analogue of NodeSeed, and like
// it a pure function, so which node first characterizes a bin can
// never matter.
func ArchetypeSeed(seed uint64, bin string) uint64 {
	return rng.New(seed).SplitLabeled("fleet/archetype/" + bin).Uint64()
}

// charactKey scopes a characterization identity by the seed that
// drives it (the node seed on the per-node path, the bin seed under
// Config.Archetypes). wantLog is part of the key because log bytes are
// captured only when a health log was requested.
func charactKey(seed uint64, spec NodeSpec, wantLog bool) string {
	return fmt.Sprintf("seed=%d log=%t %s", seed, wantLog, ArchetypeBin(spec))
}
