package fleet

import (
	"bytes"
	"testing"

	"uniserver/internal/core"
	"uniserver/internal/cpu"
	"uniserver/internal/workload"
)

// TestCharactCacheByteIdentical pins the cache's safety contract at
// the fleet level: a run through the snapshot cache must produce the
// same fingerprint AND the same health-log bytes as the direct path —
// the characterization-era log lines are replayed from the cache's
// capture, and the deployment-era lines flow from the restored
// ecosystems.
func TestCharactCacheByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet characterization is slow; skipping in -short")
	}
	run := func(cache *CharactCache) (Summary, *bytes.Buffer) {
		var log bytes.Buffer
		cfg := smallConfig(3, 2)
		cfg.HealthLogOut = &log
		cfg.Charact = cache
		sum, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return sum, &log
	}
	direct, directLog := run(nil)
	cached, cachedLog := run(NewCharactCache())
	if cached.Fingerprint() != direct.Fingerprint() {
		t.Fatalf("cached run diverged from direct run:\n--- direct ---\n%s--- cached ---\n%s",
			direct.Fingerprint(), cached.Fingerprint())
	}
	if !bytes.Equal(cachedLog.Bytes(), directLog.Bytes()) {
		t.Fatalf("cached run's health log diverged from the direct run's (%d vs %d bytes)",
			cachedLog.Len(), directLog.Len())
	}
}

// TestCharactCacheReuse verifies the cache actually reuses work: a
// second run with the same config hits for every node, and the
// summaries stay byte-identical — the restored-at-hit ecosystems carry
// the exact state the characterizing run published.
func TestCharactCacheReuse(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet characterization is slow; skipping in -short")
	}
	cache := NewCharactCache()
	cfg := smallConfig(3, 1)
	cfg.Charact = cache
	first, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st := cache.Stats()
	if st.Misses != 3 || st.Hits != 0 {
		t.Fatalf("first run: want 3 misses / 0 hits (all node seeds distinct), got %d / %d",
			st.Misses, st.Hits)
	}
	second, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st = cache.Stats()
	if st.Misses != 3 || st.Hits != 3 {
		t.Fatalf("second run: want 3 misses / 3 hits, got %d / %d", st.Misses, st.Hits)
	}
	if second.Fingerprint() != first.Fingerprint() {
		t.Fatalf("warm-cache run diverged from the cold run:\n--- cold ---\n%s--- warm ---\n%s",
			first.Fingerprint(), second.Fingerprint())
	}
}

// TestCharactKeyCanonicalization pins what does and does not split the
// cache: deployment-only fields (mode, risk, workload, memory export,
// ambient) share a key; characterization inputs (seed, part, DRAM
// shape, log capture) split it; and an explicitly-defaulted part
// collides with an implicit zero part.
func TestCharactKeyCanonicalization(t *testing.T) {
	base := DefaultConfig(2).BaseSpec()
	key := charactKey(42, base, false)

	deployment := base
	deployment.Mode = 2
	deployment.RiskTarget = 0.5
	deployment.MemBytes = 1 << 30
	deployment.AmbientCPUC, deployment.AmbientDIMMC = 40, 46
	if got := charactKey(42, deployment, false); got != key {
		t.Fatalf("deployment-only fields split the key:\n%s\nvs\n%s", key, got)
	}

	explicit := base
	explicit.Part = core.DefaultOptions().Part
	if got := charactKey(42, explicit, false); got != key {
		t.Fatalf("explicit default part split the key:\n%s\nvs\n%s", key, got)
	}

	if got := charactKey(43, base, false); got == key {
		t.Fatal("seed did not split the key")
	}
	mem := base
	mem.Mem.Channels++
	if got := charactKey(42, mem, false); got == key {
		t.Fatal("DRAM config did not split the key")
	}
	if got := charactKey(42, base, true); got == key {
		t.Fatal("log capture did not split the key")
	}
}

// TestArchetypeBinFieldAudit is the field-by-field audit of archetype
// binning: every NodeSpec field is listed with whether it splits the
// bin. Characterization inputs — the silicon part and every DRAM
// configuration field, initial DIMM temperature included (the
// retention pattern tests read it) — split; deployment-phase fields —
// operating point, workload, schedulable memory, ambient — do not,
// because they only shape what happens after Restore. A field missing
// from this table is a review prompt: decide which side it binning
// falls on and add it.
func TestArchetypeBinFieldAudit(t *testing.T) {
	t.Parallel()
	base := DefaultConfig(2).BaseSpec()
	baseBin := ArchetypeBin(base)
	cases := []struct {
		field  string
		mutate func(*NodeSpec)
		splits bool
	}{
		{"Mode", func(s *NodeSpec) { s.Mode = 2 }, false},
		{"RiskTarget", func(s *NodeSpec) { s.RiskTarget = 0.5 }, false},
		{"Workload", func(s *NodeSpec) { s.Workload = workload.BatchAnalytics() }, false},
		{"MemBytes", func(s *NodeSpec) { s.MemBytes = 1 << 30 }, false},
		{"AmbientCPUC", func(s *NodeSpec) { s.AmbientCPUC = 40 }, false},
		{"AmbientDIMMC", func(s *NodeSpec) { s.AmbientDIMMC = 46 }, false},
		{"Part (explicit default)", func(s *NodeSpec) { s.Part = core.DefaultOptions().Part }, false},
		{"Part (different bin)", func(s *NodeSpec) { s.Part = cpu.PartI7_3970X() }, true},
		{"Mem.Channels", func(s *NodeSpec) { s.Mem.Channels++ }, true},
		{"Mem.DIMMsPerChannel", func(s *NodeSpec) { s.Mem.DIMMsPerChannel++ }, true},
		{"Mem.DIMMBytes", func(s *NodeSpec) { s.Mem.DIMMBytes *= 2 }, true},
		{"Mem.DeviceGb", func(s *NodeSpec) { s.Mem.DeviceGb *= 2 }, true},
		{"Mem.TempC", func(s *NodeSpec) { s.Mem.TempC += 10 }, true},
	}
	for _, tc := range cases {
		spec := base
		tc.mutate(&spec)
		got := ArchetypeBin(spec)
		if tc.splits && got == baseBin {
			t.Errorf("%s: characterization-relevant field did not split the bin", tc.field)
		}
		if !tc.splits && got != baseBin {
			t.Errorf("%s: deployment-phase field split the bin:\n%s\nvs\n%s", tc.field, baseBin, got)
		}
	}
}
